"""Fig. 3 — HipMCL iteration times, 1 layer vs more layers.

The paper plugs BatchedSUMMA3D into HipMCL and shows (a) early iterations
need multiple batches, (b) batch counts shrink as pruning sparsifies the
matrix, and (c) the application simply cannot run without batching.  This
bench runs the first HipMCL iterations of a protein-similarity stand-in
under a tight memory budget and prints the per-iteration series the
figure annotates (batch count + runtime), for l = 1 and l = 4.
"""

import pytest

from _helpers import print_series
from repro.apps import markov_cluster
from repro.data import protein_similarity
from repro.errors import SpmdError
from repro.sparse.matrix import BYTES_PER_NONZERO
from repro.summa import batched_summa3d


@pytest.fixture(scope="module")
def network():
    return protein_similarity(300, intra_density=0.4, noise_degree=1.0, seed=9)


def test_fig3_iteration_series(network, benchmark):
    budget = 14 * network.nnz * BYTES_PER_NONZERO
    results = {}
    for layers in (1, 4):
        results[layers] = markov_cluster(
            network,
            nprocs=4,
            layers=layers,
            memory_budget=budget,
            max_iterations=10,
            keep_per_column=24,
        )
    rows = []
    for it in range(max(len(r.iterations) for r in results.values())):
        row = [it]
        for layers in (1, 4):
            its = results[layers].iterations
            if it < len(its):
                row += [its[it].batches, round(its[it].step_times.total(), 4)]
            else:
                row += ["-", "-"]
        rows.append(row)
    print_series(
        "Fig. 3: HipMCL first iterations (p=4, tight memory)",
        ["iter", "b (l=1)", "time (l=1)", "b (l=4)", "time (l=4)"],
        rows,
    )
    # paper shape: the dense early/middle iterations need multiple batches;
    # pruning then sparsifies the matrix until a single batch suffices
    series_b = [it.batches for it in results[1].iterations]
    assert max(series_b) > 1
    assert series_b[-1] == 1
    assert series_b.index(max(series_b)) < len(series_b) - 1
    # both layer settings produce the same clustering
    mapping = {}
    for la, lb in zip(results[1].labels.tolist(), results[4].labels.tolist()):
        assert mapping.setdefault(la, lb) == lb

    benchmark.pedantic(
        lambda: markov_cluster(network, nprocs=4, memory_budget=budget,
                               max_iterations=2),
        rounds=1, iterations=1,
    )


def test_fig3_without_batching_is_infeasible(benchmark):
    """Paper: 'HipMCL cannot even cluster Isolates-small ... if batching is
    not used.'  Forcing b=1 on the expansion step of a protein-similarity
    matrix blows far past the per-process share the batched run fits in."""
    from repro.data import load_dataset

    network, _ = load_dataset("eukarya").operands(seed=0)
    budget = 6 * network.nnz * BYTES_PER_NONZERO
    batched = batched_summa3d(
        network, network, nprocs=4, memory_budget=budget, keep_output=False
    )
    assert batched.batches > 1
    unbatched = batched_summa3d(
        network, network, nprocs=4, batches=1, keep_output=False
    )
    per_proc = budget / 4
    print_series(
        "Fig. 3 feasibility: per-process memory high water vs budget share",
        ["mode", "batches", "high water (B)", "budget share (B)"],
        [
            ["batched", batched.batches, batched.max_local_bytes, int(per_proc)],
            ["unbatched", 1, unbatched.max_local_bytes, int(per_proc)],
        ],
    )
    # the unbatched run needs substantially more memory per process and
    # overshoots the budget share by >2x; the batched run is the only
    # feasible configuration
    assert unbatched.max_local_bytes > batched.max_local_bytes * 1.4
    assert unbatched.max_local_bytes > per_proc * 2
    benchmark(lambda: batched_summa3d(
        network, network, nprocs=4, batches=2, keep_output=False
    ))
