"""Ablations of the design choices DESIGN.md calls out.

* **Batch scheme** — the paper chooses block-cyclic batching (Fig. 1(i))
  "so each batch touches every layer evenly"; the contiguous block split
  is measured as the imbalance counterfactual.
* **Merge policy** — the paper merges once after all stages (Alg. 1
  line 8) because incremental merging "is computationally more expensive
  in the worst case" [34]; the memory/time tradeoff is measured.
* **Row vs column batching** — Sec. IV-B notes column batching is
  expensive when ``nnz(A) >> nnz(B)``; the transposed (row) batching
  fixes it, measured on a skewed operand pair.
"""

import time

import numpy as np
import pytest

from _helpers import print_series
from repro.data import load_dataset
from repro.simmpi import CommTracker
from repro.sparse import SparseMatrix, random_sparse
from repro.summa import batched_summa3d, batched_summa3d_rows


def test_ablation_batch_scheme_fiber_balance(benchmark):
    # column-skewed B: mass concentrated in the low columns
    rng = np.random.default_rng(111)
    n = 64
    rows = rng.integers(0, n, 900)
    cols = (rng.random(900) ** 3 * n).astype(np.int64)  # heavy head
    b = SparseMatrix.from_coo(n, n, rows, cols, np.ones(900))
    a = random_sparse(n, n, nnz=700, seed=112)

    stats = {}
    for scheme in ("block-cyclic", "block"):
        r = batched_summa3d(
            a, b, nprocs=4, layers=4, batches=4, batch_scheme=scheme
        )
        per_batch = np.array(r.info["fiber_piece_nnz"], dtype=float)
        totals = per_batch.sum(axis=0)
        stats[scheme] = totals.max() / max(totals.mean(), 1.0)
    print_series(
        "Merge-Fiber load imbalance (max/mean over batches)",
        ["scheme", "imbalance"],
        [[s, round(v, 3)] for s, v in stats.items()],
    )
    # the paper's rationale for Fig. 1(i): cyclic batching balances fibers
    assert stats["block-cyclic"] <= stats["block"]
    benchmark(lambda: batched_summa3d(
        a, b, nprocs=4, layers=4, batches=4, batch_scheme="block-cyclic"
    ))


def test_ablation_merge_policy_tradeoff(benchmark):
    a, _ = load_dataset("eukarya").operands(seed=0)
    results = {}
    for policy in ("deferred", "incremental"):
        t0 = time.perf_counter()
        r = batched_summa3d(
            a, a, nprocs=16, batches=1, merge_policy=policy,
            keep_output=False,
        )
        wall = time.perf_counter() - t0
        results[policy] = (r.max_local_bytes, r.step_times.get("Merge-Layer"), wall)
    print_series(
        "merge policy: transient memory vs merge time (Eukarya^2, p=16)",
        ["policy", "high water (B)", "Merge-Layer (s)", "wall (s)"],
        [[p, hw, round(mt, 4), round(w, 3)] for p, (hw, mt, w) in results.items()],
    )
    # the tradeoff the paper describes: incremental merging holds less...
    assert results["incremental"][0] <= results["deferred"][0]
    benchmark(lambda: batched_summa3d(
        a, a, nprocs=4, batches=1, merge_policy="incremental",
        keep_output=False,
    ))


def test_ablation_row_vs_column_batching(benchmark):
    """Sec. IV-B: with nnz(A) >> nnz(B), column batching re-broadcasts the
    heavy operand b times; row batching re-broadcasts the light one."""
    a = random_sparse(48, 48, nnz=1200, seed=113)  # heavy
    b = random_sparse(48, 48, nnz=120, seed=114)   # light
    volumes = {}
    for label, fn in (("column", batched_summa3d), ("row", batched_summa3d_rows)):
        tracker = CommTracker()
        r = fn(a, b, nprocs=4, batches=4, tracker=tracker)
        volumes[label] = tracker.total_bytes()
        reference = volumes.setdefault("_matrix", r.matrix)
        assert r.matrix.allclose(reference)
    print_series(
        "batch axis with nnz(A) = 10 x nnz(B), b=4",
        ["axis", "total transmitted bytes"],
        [["column", volumes["column"]], ["row", volumes["row"]]],
    )
    assert volumes["row"] < volumes["column"]
    benchmark(lambda: batched_summa3d_rows(a, b, nprocs=4, batches=2))


def test_ablation_kernel_suites_all_agree_and_rank(benchmark):
    """All five kernel suites on one distributed multiply: identical
    results; the vectorised ESC suite is the fastest in CPython (why it
    is the default), and hash beats heap (the paper's claim)."""
    a, _ = load_dataset("eukarya").operands(seed=0)
    times = {}
    reference = None
    for suite in ("esc", "unsorted-hash", "sorted-heap", "hybrid", "spa"):
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            r = batched_summa3d(a, a, nprocs=4, layers=1, batches=1, suite=suite)
            best = min(best, time.perf_counter() - t0)
        times[suite] = best
        if reference is None:
            reference = r.matrix
        else:
            assert r.matrix.allclose(reference), suite
    print_series(
        "kernel suites on Eukarya^2 (p=4, wall seconds, best of 2)",
        ["suite", "seconds"],
        [[s, round(t, 4)] for s, t in sorted(times.items(), key=lambda kv: kv[1])],
    )
    assert times["esc"] == min(times.values())
    assert times["unsorted-hash"] < times["sorted-heap"]
    benchmark(lambda: batched_summa3d(a, a, nprocs=4, batches=1, suite="esc"))
