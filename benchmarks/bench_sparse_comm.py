"""Communication backends head-to-head — dense collectives vs. SpComm3D-
style sparse point-to-point (see :mod:`repro.comm`).

Sweeps operand sparsity at fixed grid size and meters both backends on
the simulator.  The qualitative claim: on hypersparse operands the
sparse backend ships measurably fewer broadcast bytes (it only moves
tile segments the receiver's symbolic plan requests), at the price of
more, smaller messages plus the bit-packed Comm-Plan handshake — the
tradeoff the extended α–β model (``choose_backend``) prices.
"""

import json

from _helpers import print_series
from repro.simmpi import CommTracker
from repro.sparse import random_sparse
from repro.summa import batched_summa3d, choose_backend

BCAST_STEPS = ("A-Broadcast", "B-Broadcast")


def _metered(a, b, *, backend, nprocs=16, layers=1, batches=2):
    tracker = CommTracker()
    result = batched_summa3d(
        a, b, nprocs=nprocs, layers=layers, batches=batches,
        comm_backend=backend, tracker=tracker,
    )
    bcast_bytes = sum(tracker.total_bytes(s) for s in BCAST_STEPS)
    bcast_msgs = sum(tracker.message_count(s) for s in BCAST_STEPS)
    plan_bytes = tracker.total_bytes("Comm-Plan")
    return result, bcast_bytes, bcast_msgs, plan_bytes


def test_sparse_backend_saves_bytes_on_hypersparse(benchmark):
    n, nprocs = 256, 16
    rows = []
    series = []
    for nnz in (200, 800, 3200, 12800):
        a = random_sparse(n, n, nnz=nnz, seed=nnz)
        b = random_sparse(n, n, nnz=nnz, seed=nnz + 1)
        rd, d_bytes, d_msgs, _ = _metered(a, b, backend="dense")
        rs, s_bytes, s_msgs, plan = _metered(a, b, backend="sparse")
        assert rd.matrix.allclose(rs.matrix)
        density = nnz / (n * n)
        rows.append([
            nnz, f"{density:.2%}", d_bytes, s_bytes,
            round(s_bytes / d_bytes, 3), d_msgs, s_msgs, plan,
        ])
        series.append(dict(
            nnz=nnz, density=density,
            dense_bcast_bytes=d_bytes, sparse_bcast_bytes=s_bytes,
            dense_bcast_messages=d_msgs, sparse_bcast_messages=s_msgs,
            plan_bytes=plan,
            model_choice=choose_backend(a, b, nprocs=nprocs, layers=1,
                                        batches=2),
        ))
    print_series(
        f"Backend broadcast volume vs sparsity (n={n}, p={nprocs}, l=1, b=2)",
        ["nnz", "density", "dense B", "sparse B", "ratio",
         "dense msgs", "sparse msgs", "plan B"],
        rows,
    )
    print(json.dumps({"bench": "sparse_comm_sweep", "n": n,
                      "nprocs": nprocs, "series": series}, indent=2))
    # hypersparse end: sparse must ship measurably fewer broadcast bytes
    hyper = series[0]
    assert hyper["sparse_bcast_bytes"] < 0.8 * hyper["dense_bcast_bytes"]
    # savings shrink monotonically as the operands densify
    ratios = [s["sparse_bcast_bytes"] / s["dense_bcast_bytes"] for s in series]
    assert ratios == sorted(ratios)
    # p2p always sends more, smaller messages than the tree broadcasts
    assert all(
        s["sparse_bcast_messages"] > s["dense_bcast_messages"] for s in series
    )
    a = random_sparse(n, n, nnz=200, seed=0)
    benchmark(lambda: choose_backend(a, a, nprocs=nprocs, layers=1, batches=2))


def test_backend_tags_in_tracker_table(benchmark):
    a = random_sparse(128, 128, nnz=500, seed=3)
    tracker = CommTracker()
    batched_summa3d(a, a, nprocs=16, layers=1, comm_backend="sparse",
                    tracker=tracker)
    table = tracker.format_table()
    print(table)
    assert "sparse" in table
    by_backend = tracker.by_backend()
    assert by_backend["sparse"]["nbytes"] > 0
    benchmark(lambda: tracker.by_backend())


def test_plan_overhead_is_small(benchmark):
    # the symbolic prologue is bit-packed: its volume must stay a small
    # fraction of what it saves on hypersparse operands
    a = random_sparse(256, 256, nnz=300, seed=5)
    b = random_sparse(256, 256, nnz=300, seed=6)
    _, d_bytes, _, _ = _metered(a, b, backend="dense")
    _, s_bytes, _, plan = _metered(a, b, backend="sparse")
    saved = d_bytes - s_bytes
    print(f"\nsaved {saved} broadcast bytes for {plan} plan bytes "
          f"(ratio {plan / saved:.3f})")
    assert saved > 0
    assert plan < saved
    benchmark(lambda: random_sparse(256, 256, nnz=300, seed=5))
