"""Overlap study — depth-1 pipelined executor vs. sequential.

The simulator moves payloads instantly (threads sharing an address
space), so wall clock cannot show a broadcast hiding behind a multiply;
what the runtime *does* establish is that the pipelined executor moves
identical bytes and produces bit-identical output.  The time axis
therefore comes from the calibrated α–β model: per-stage communication
``c`` and computation ``m`` combine as ``c + (stages-1)*max(c, m) + m``
(:func:`repro.model.overlapped_makespan`).  On a broadcast-bound
configuration the overlapped critical path must sit strictly below the
sequential sum; as flops grow the benefit shrinks toward zero — the
crossover the bench prints.
"""

import numpy as np
import pytest

from _helpers import print_series
from repro.data.generators import erdos_renyi
from repro.model import CORI_KNL, overlapped_makespan, predict_steps
from repro.simmpi import CommTracker
from repro.summa import batched_summa3d
from repro.summa.trace import validate_chrome_trace_file

#: paper-scale broadcast-bound point: huge operands, modest expansion
BCAST_BOUND = dict(
    nnz_a=4 * 10**9, nnz_b=4 * 10**9, nnz_c=5 * 10**8, flops=8 * 10**8,
)


def test_overlap_hides_broadcasts_when_comm_bound(benchmark):
    nprocs, layers, batches = 4096, 4, 4
    stages = 32  # sqrt(4096 / 4)
    times = predict_steps(
        CORI_KNL, nprocs=nprocs, layers=layers, batches=batches,
        **BCAST_BOUND,
    )
    sequential = times.total()
    overlapped = benchmark(
        lambda: overlapped_makespan(times, stages=stages, overlap="depth1")
    )
    bcast = times.get("A-Broadcast") + times.get("B-Broadcast")
    mult = times.get("Local-Multiply")
    print_series(
        "Overlap @ 65,536 cores (broadcast-bound)",
        ["mode", "makespan s", "bcast s", "multiply s"],
        [
            ["sequential", round(sequential, 4), round(bcast, 4),
             round(mult, 4)],
            ["depth1", round(overlapped, 4), "(hidden)", "(hiding)"],
        ],
    )
    # the headline acceptance claim: strictly below the sequential path
    assert overlapped < sequential
    # broadcasts dominate here, so the multiply hides almost entirely:
    # the saving is all but one stage's worth of it
    assert sequential - overlapped == pytest.approx(
        mult * (stages - 1) / stages
    )


def test_overlap_benefit_shrinks_with_compute(benchmark):
    """Sweep the flop/byte ratio: the saving is capped by min(comm, comp),
    so it rises while the multiply still fits under the broadcasts and
    falls off once compute dominates the stage."""
    nprocs, layers = 1024, 1
    stages = 32
    rows = []
    savings = []
    for flop_scale in (0.1, 1.0, 16.0, 64.0, 512.0):
        stats = dict(BCAST_BOUND)
        stats["flops"] = int(stats["flops"] * flop_scale * 100)
        stats["nnz_c"] = min(stats["nnz_c"], stats["flops"])
        times = predict_steps(
            CORI_KNL, nprocs=nprocs, layers=layers, batches=1, **stats
        )
        seq = times.total()
        ov = overlapped_makespan(times, stages=stages)
        rows.append([
            flop_scale, round(seq, 4), round(ov, 4),
            f"{100 * (seq - ov) / seq:.1f}%",
        ])
        savings.append((seq - ov) / seq)
    print_series(
        "Overlap saving vs flop/byte ratio (p=1024, l=1)",
        ["flop scale", "sequential s", "depth1 s", "saving"],
        rows,
    )
    assert all(s >= 0 for s in savings)
    # relative saving eventually decays once the multiply dominates
    assert savings[-1] < max(savings)
    benchmark(lambda: overlapped_makespan(
        predict_steps(CORI_KNL, nprocs=nprocs, layers=1, batches=1,
                      **BCAST_BOUND),
        stages=stages,
    ))


def test_overlap_runtime_identical_and_trace_valid(benchmark, tmp_path):
    """The runtime half of the bargain, also run as the CI smoke step:
    both executors produce bit-identical output and equal byte totals,
    and the exported timeline validates against the chrome trace-event
    schema."""
    a = erdos_renyi(48, avg_degree=5.0, seed=51)
    b = erdos_renyi(48, avg_degree=5.0, seed=52)

    def run(overlap):
        tracker = CommTracker()
        result = batched_summa3d(
            a, b, nprocs=16, layers=4, batches=2, overlap=overlap,
            tracker=tracker,
        )
        return result, tracker

    (seq, seq_tracker) = run("off")
    (pipe, pipe_tracker), _ = benchmark(lambda: (run("depth1"), None))
    assert np.array_equal(
        seq.matrix.canonical().to_dense(), pipe.matrix.canonical().to_dense()
    )
    assert seq_tracker.total_bytes() == pipe_tracker.total_bytes()

    trace_path = str(tmp_path / "overlap_trace.json")
    pipe.export_trace(trace_path)
    events = validate_chrome_trace_file(trace_path)
    print_series(
        "Executor parity (p=16, l=4, b=2)",
        ["executor", "bytes moved", "trace events"],
        [
            ["sequential", seq_tracker.total_bytes(), "-"],
            ["depth1", pipe_tracker.total_bytes(), events],
        ],
    )
    assert events > 0
