"""Resilience study — what fault tolerance costs, fault-free and faulty.

Two questions, both answered in the tracker's deterministic byte/message
currency (wall clock in a threaded simulator says nothing about a real
network):

1. **Fault-free overhead** — what do checksums and checkpointing cost a
   healthy run?  Checksums must price at exactly
   ``CHECKSUM_NBYTES`` per enveloped message (metadata-only, nothing
   payload-proportional); checkpointing adds only the batch-boundary
   barriers (zero payload bytes) plus driver-side disk writes outside
   the communication path.

2. **Recovery cost** — a crash at batch ``i`` of ``b``, then
   ``resume=True``: the recomputed communication volume must scale with
   the ``b - i`` lost batches, not with the whole run.  The later the
   crash, the cheaper the recovery — the curve the bench prints.
"""

import shutil
import tempfile

import pytest

from _helpers import print_series
from repro.data.generators import erdos_renyi
from repro.errors import SpmdError
from repro.simmpi import CommTracker, FaultPlan
from repro.simmpi.serialization import CHECKSUM_NBYTES
from repro.summa import batched_summa3d

NPROCS, BATCHES = 4, 4


@pytest.fixture(scope="module")
def operands():
    a = erdos_renyi(96, avg_degree=6.0, seed=11)
    return a, a


def _run(a, b, **kwargs):
    tracker = CommTracker()
    result = batched_summa3d(
        a, b, nprocs=NPROCS, batches=BATCHES, tracker=tracker,
        timeout=30, **kwargs,
    )
    return tracker, result


def test_fault_free_overhead_is_metadata_only(operands, benchmark):
    a, b = operands
    plain_tracker, plain = _run(a, b)
    sum_tracker, summed = benchmark(lambda: _run(a, b, checksums=True))
    ckpt_dir = tempfile.mkdtemp()
    try:
        ck_tracker, ck = _run(a, b, checkpoint_dir=ckpt_dir)
    finally:
        shutil.rmtree(ckpt_dir, ignore_errors=True)

    plain_bytes = plain_tracker.total_bytes()
    sum_bytes = sum_tracker.total_bytes()
    ck_bytes = ck_tracker.total_bytes()
    print_series(
        "Fault-free overhead (bytes on the wire)",
        ["mode", "total bytes", "messages", "overhead"],
        [
            ["baseline", plain_bytes, plain_tracker.message_count(), "-"],
            ["checksums", sum_bytes, sum_tracker.message_count(),
             f"+{sum_bytes - plain_bytes}"],
            ["checkpointing", ck_bytes, ck_tracker.message_count(),
             f"+{ck_bytes - plain_bytes}"],
        ],
    )
    # products identical in every mode
    assert summed.matrix.allclose(plain.matrix)
    assert ck.matrix.allclose(plain.matrix)
    # checksums: per-message metadata, nothing payload-proportional
    overhead = sum_bytes - plain_bytes
    assert 0 < overhead < 0.05 * plain_bytes
    assert overhead % CHECKSUM_NBYTES == 0
    # checkpointing moves no extra payload bytes at all (barriers are
    # zero-byte); durability is bought with disk writes, not bandwidth
    assert ck_bytes == plain_bytes


def test_recovery_cost_scales_with_lost_batches(operands):
    a, b = operands
    full_tracker, base = _run(a, b)
    full_bytes = full_tracker.total_bytes()

    rows = [["full run", "-", full_bytes, "1.00"]]
    resumed_bytes = []
    for crash_batch in range(1, BATCHES):
        ckpt_dir = tempfile.mkdtemp()
        try:
            with pytest.raises(SpmdError):
                _run(a, b, checkpoint_dir=ckpt_dir,
                     faults=FaultPlan([f"crash:rank=1,batch={crash_batch}"]))
            tracker = CommTracker()
            result = batched_summa3d(
                a, b, nprocs=NPROCS, tracker=tracker, timeout=30,
                checkpoint_dir=ckpt_dir, resume=True,
            )
        finally:
            shutil.rmtree(ckpt_dir, ignore_errors=True)
        assert result.matrix.allclose(base.matrix)
        assert result.info["resilience"]["resumed_from_batch"] == crash_batch
        nbytes = tracker.total_bytes()
        resumed_bytes.append(nbytes)
        rows.append([
            f"resume after crash@{crash_batch}", BATCHES - crash_batch,
            nbytes, f"{nbytes / full_bytes:.2f}",
        ])
    print_series(
        "Recovery cost vs crash point",
        ["run", "batches recomputed", "comm bytes", "vs full"],
        rows,
    )
    # the later the crash, the cheaper the recovery — strictly
    assert all(x > y for x, y in zip(resumed_bytes, resumed_bytes[1:]))
    # and every recovery is cheaper than recomputing from scratch
    assert all(x < full_bytes for x in resumed_bytes)
