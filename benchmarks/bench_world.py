"""Execution worlds head-to-head — the threaded simulator vs one OS
process per rank (``repro.mp``).

The threaded world is the deterministic reference but serialises all
local multiplies behind the GIL; the process world runs them truly in
parallel and moves large operands through ``multiprocessing.shared_memory``
instead of pickle.  This bench sweeps ``p`` in {1, 2, 4, 8} over both
communication backends on a compute-bound SpGEMM, verifies the two
worlds produce bit-identical products, and prints wall-clock speedup
plus the shm traffic the transport registry reports.

The speedup assertion (>= 2x at p = 4) only fires on machines with at
least 4 cores — on fewer cores the process world has nothing to run in
parallel *on*, and only correctness is checked.

Runs two ways:

* ``pytest benchmarks/bench_world.py`` — the normal harness; or
* ``python benchmarks/bench_world.py --smoke`` — the CI world step:
  CI-sized operands, exit code 1 on any mismatch.
"""

import argparse
import os
import sys
import time

import numpy as np

from repro.sparse import random_sparse
from repro.summa import batched_summa3d

#: (nprocs, layers) points — every p/l is a perfect square
SWEEP = ((1, 1), (2, 2), (4, 1), (8, 2))
BACKENDS = ("dense", "sparse")

#: minimum process-world speedup over threads at p = 4 (ISSUE acceptance),
#: asserted only when the machine actually has >= 4 cores
SPEEDUP_FLOOR = 2.0


def _print_series(title, header, rows):
    try:
        from _helpers import print_series
    except ImportError:  # running as a script from anywhere
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from _helpers import print_series
    print_series(title, header, rows)


def _wall(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def run_sweep(*, n=400, nnz=40000, batches=2, seed=7):
    """Threads vs processes over SWEEP x BACKENDS.

    Returns printable rows
    ``[backend, p, l, threads_s, procs_s, speedup, shm_MB, shm_segs]``.
    The operand density makes Local-Multiply dominate, so the process
    world's parallelism is actually visible in the wall clock.
    """
    a = random_sparse(n, n, nnz=nnz, seed=seed)
    b = random_sparse(n, n, nnz=nnz, seed=seed + 1)
    rows = []
    for backend in BACKENDS:
        for p, layers in SWEEP:
            t_s, rt = _wall(lambda: batched_summa3d(
                a, b, nprocs=p, layers=layers, batches=batches,
                comm_backend=backend,
            ))
            p_s, rp = _wall(lambda: batched_summa3d(
                a, b, nprocs=p, layers=layers, batches=batches,
                comm_backend=backend, world="processes",
            ))
            assert np.array_equal(
                rt.matrix.to_dense(), rp.matrix.to_dense()
            ), f"worlds diverge at backend={backend} p={p}"
            winfo = rp.info["world"]
            rows.append([
                backend, p, layers, round(t_s, 4), round(p_s, 4),
                round(t_s / p_s, 2),
                round(winfo["shm_bytes"] / 1e6, 3),
                winfo["shm_segments"],
            ])
    return rows


def check_sweep(rows):
    """Print the sweep; assert the acceptance speedup where it can hold."""
    _print_series(
        "Execution worlds: threads vs processes (sweep p x backend)",
        ["backend", "p", "l", "threads s", "procs s", "speedup",
         "shm MB", "shm segs"],
        rows,
    )
    cores = os.cpu_count() or 1
    if cores >= 4:
        for backend in BACKENDS:
            at4 = [r for r in rows if r[0] == backend and r[1] == 4]
            assert at4 and at4[0][5] >= SPEEDUP_FLOOR, (
                f"process world under {SPEEDUP_FLOOR}x at p=4 "
                f"({backend}): {at4}"
            )
    else:
        print(f"  ({cores} core(s): speedup floor not asserted, "
              "correctness only)")


def test_worlds_agree_and_processes_scale(benchmark):
    rows = benchmark(run_sweep)
    check_sweep(rows)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized sweep; exit nonzero on any world mismatch",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("this bench runs under pytest or with --smoke")
    try:
        rows = run_sweep(n=120, nnz=3000)
        check_sweep(rows)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print("world smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
