"""Fig. 10 — A·Aᵀ with Metaclust20m: layers vs batching interplay.

The paper's subtle result: on 64 nodes the 16-layer run needs 12 batches
where 1 layer needs 6 (layering inflates the per-process intermediate),
so communication avoidance is nearly cancelled by re-broadcasting A more
often; at 1024 nodes the 16-layer run is ~2x faster even though the
1-layer run needs no batching at all.

Reproduced on two axes: the simulator verifies that more layers can
*increase* the symbolic batch count at fixed memory (the mechanism), and
the α–β model shows the low-vs-high-concurrency crossover (the outcome).
"""

import pytest

from _helpers import print_series
from repro.data import load_dataset
from repro.model import CORI_KNL, estimate_batches, predict_steps
from repro.sparse import transpose
from repro.summa import batched_summa3d, symbolic3d


def test_fig10_layers_inflate_batch_count(benchmark):
    a, at = load_dataset("metaclust20m").operands(seed=0)
    budget = 110 * a.nnz * 24
    bs = {}
    for layers in (1, 16):
        bs[layers] = symbolic3d(
            a, at, nprocs=16, layers=layers, memory_budget=budget
        ).batches
    print_series(
        "Fig. 10 mechanism (simulated, p=16): symbolic b vs layers",
        ["layers", "batches"],
        [[l, b] for l, b in sorted(bs.items())],
    )
    # the paper's observation: the multi-layer grid needs at least as many
    # batches (12 vs 6 on 64 nodes) because per-layer intermediates merge less
    assert bs[16] >= bs[1]
    benchmark(lambda: symbolic3d(
        a, at, nprocs=16, layers=1, memory_budget=budget
    ))


def test_fig10_crossover_low_vs_high_concurrency(benchmark):
    paper = load_dataset("metaclust20m").paper
    stats = dict(nnz_a=int(paper.nnz_a), nnz_b=int(paper.nnz_a),
                 nnz_c=int(paper.nnz_c), flops=int(paper.flops))

    def total(cores, layers):
        nprocs = CORI_KNL.procs_for_cores(cores)
        budget = CORI_KNL.aggregate_memory(cores)
        b = estimate_batches(
            memory_budget=budget, nprocs=nprocs, layers=layers, **stats
        )
        t = predict_steps(
            CORI_KNL, nprocs=nprocs, layers=layers, batches=b, **stats
        )
        return b, t.total()

    rows = []
    results = {}
    for cores in (4096, 65536):
        for layers in (1, 16):
            b, tt = total(cores, layers)
            results[(cores, layers)] = (b, tt)
            rows.append([cores, layers, b, round(tt, 2)])
    print_series(
        "Fig. 10 (modelled, Metaclust20m AAT on Cori-KNL)",
        ["cores", "l", "b", "total (s)"],
        rows,
    )
    # low concurrency: 16 layers needs more batches, gains are small
    b_1_low, t_1_low = results[(4096, 1)]
    b_16_low, t_16_low = results[(4096, 16)]
    assert b_16_low >= b_1_low
    # high concurrency: 16 layers clearly faster (paper: ~2x)
    _b1, t_1_high = results[(65536, 1)]
    _b16, t_16_high = results[(65536, 16)]
    assert t_16_high < t_1_high
    # and the advantage of 16 layers grows with concurrency
    assert (t_1_high / t_16_high) > (t_1_low / t_16_low)
    benchmark(lambda: total(65536, 16))


def test_fig10_correctness_of_aat_with_batching(benchmark):
    a, at = load_dataset("metaclust20m").operands(seed=0)
    from repro.sparse import multiply

    expected = multiply(a, at)
    r = batched_summa3d(a, at, nprocs=16, layers=4, batches=3)
    assert r.matrix.allclose(expected)
    benchmark(lambda: batched_summa3d(a, at, nprocs=4, layers=1, batches=2))
