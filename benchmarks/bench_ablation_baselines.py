"""Ablation — distributed algorithm families head-to-head.

The paper's Sec. II-C taxonomy made measurable: 1D row distribution,
Cannon's algorithm, SUMMA2D and SUMMA3D multiply the same matrices on the
same simulated machine; metered communication shows why the paper builds
on 2D/3D SUMMA (1D volume grows with p; layering cuts broadcast volume
further).
"""

import pytest

from _helpers import print_series
from repro.data import load_dataset
from repro.simmpi import CommTracker
from repro.summa import summa2d, summa3d
from repro.summa.baselines import cannon2d, spgemm_1d


@pytest.fixture(scope="module")
def matrix():
    a, _ = load_dataset("eukarya").operands(seed=0)
    return a


def _volume(fn, a, **kw):
    tracker = CommTracker()
    result = fn(a, a, tracker=tracker, **kw)
    return tracker.total_bytes(), result.matrix


def test_ablation_algorithm_families(matrix, benchmark):
    nprocs = 16
    vol_1d, m_1d = _volume(spgemm_1d, matrix, nprocs=nprocs)
    vol_cn, m_cn = _volume(cannon2d, matrix, nprocs=nprocs)
    vol_2d, m_2d = _volume(summa2d, matrix, nprocs=nprocs)
    vol_3d, m_3d = _volume(summa3d, matrix, nprocs=nprocs, layers=4)
    rows = [
        ["1D row", vol_1d],
        ["Cannon", vol_cn],
        ["SUMMA2D", vol_2d],
        ["SUMMA3D l=4", vol_3d],
    ]
    print_series(
        f"algorithm families: transmitted bytes at p={nprocs} (Eukarya^2)",
        ["algorithm", "total bytes"],
        rows,
    )
    # all compute the same product
    assert m_1d.allclose(m_2d) and m_cn.allclose(m_2d) and m_3d.allclose(m_2d)
    # the paper's taxonomy: 1D moves the most data; 2D improves on it
    assert vol_2d < vol_1d
    benchmark(lambda: _volume(summa2d, matrix, nprocs=4))


def test_ablation_1d_volume_grows_with_p(matrix, benchmark):
    volumes = {}
    for nprocs in (4, 16):
        volumes[nprocs], _ = _volume(spgemm_1d, matrix, nprocs=nprocs)
    print_series(
        "1D allgather volume vs p",
        ["p", "bytes"],
        [[p, v] for p, v in sorted(volumes.items())],
    )
    # aggregate 1D volume grows ~linearly with p — the non-scaling
    # communication that motivates 2D (paper Sec. II-C)
    assert volumes[16] > 3 * volumes[4]
    benchmark(lambda: _volume(spgemm_1d, matrix, nprocs=4))


def test_ablation_summa2d_volume_grows_slower(matrix, benchmark):
    v2 = {}
    for nprocs in (4, 16):
        v2[nprocs], _ = _volume(summa2d, matrix, nprocs=nprocs)
    v1 = {}
    for nprocs in (4, 16):
        v1[nprocs], _ = _volume(spgemm_1d, matrix, nprocs=nprocs)
    growth_2d = v2[16] / v2[4]
    growth_1d = v1[16] / v1[4]
    print(f"\nvolume growth 4->16 procs: 1D {growth_1d:.2f}x, "
          f"SUMMA2D {growth_2d:.2f}x")
    assert growth_2d < growth_1d
    benchmark(lambda: _volume(summa2d, matrix, nprocs=16))
