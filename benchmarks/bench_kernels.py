"""Local-kernel family head-to-head — SpGEMM vs SpMM vs SDDMM vs masked
SpGEMM through the identical batched 3D schedule.

One communication-avoiding dataflow, four workloads: this bench runs
each registered kernel over ``p`` in {1, 4} and both communication
backends on one problem family (sparse operator, dense factor panels,
shared sampling pattern), verifies every result against its dense-numpy
reference, and prints wall clock, measured memory high water, and the
kernel's own ``predict_memory`` estimate side by side.

The model assertion is the ISSUE acceptance criterion: for the dense
kernels (``spmm``, ``sddmm``) — whose footprint model is closed-form
geometry, no symbolic pass — the prediction must land within
``MODEL_BAND`` (1.3x) of the measured high water in both directions.

Runs two ways:

* ``pytest benchmarks/bench_kernels.py`` — the normal harness; or
* ``python benchmarks/bench_kernels.py --smoke`` — the CI kernels step:
  CI-sized operands, exit code 1 on any mismatch.
"""

import argparse
import os
import sys
import time

import numpy as np

from repro.kernels import available_kernels
from repro.sparse import random_sparse
from repro.summa import batched_summa3d

#: (nprocs, layers) sweep points
SWEEP = ((1, 1), (4, 1))
BACKENDS = ("dense", "sparse")

#: acceptance band for predicted vs measured high water (dense kernels)
MODEL_BAND = 1.3

#: kernels whose memory model is exact geometry (assertable); sparse
#: kernels defer to the symbolic Table III form, checked elsewhere
DENSE_MODEL_KERNELS = ("spmm", "sddmm")


def _print_series(title, header, rows):
    try:
        from _helpers import print_series
    except ImportError:  # running as a script from anywhere
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from _helpers import print_series
    print_series(title, header, rows)


def _problem(n, nnz, rank, seed=7):
    """One shared problem family for all four kernels."""
    rng = np.random.default_rng(seed)
    a = random_sparse(n, n, nnz=nnz, seed=seed)
    b = random_sparse(n, n, nnz=nnz, seed=seed + 1)
    u = np.ascontiguousarray(rng.standard_normal((n, rank)))
    vt = np.ascontiguousarray(rng.standard_normal((rank, n)))
    panel = np.ascontiguousarray(rng.standard_normal((n, rank)))
    sample = random_sparse(n, n, nnz=nnz // 2, seed=seed + 2)
    mask = random_sparse(n, n, nnz=nnz, seed=seed + 3)
    return {
        "spgemm": (a, b, {}),
        "spmm": (a, panel, {}),
        "sddmm": (u, vt, {"sample": sample}),
        "masked_spgemm": (a, b, {"mask": mask}),
    }


def _reference(kernel, a, b, extra):
    dense = (lambda x: x.to_dense() if hasattr(x, "to_dense") else x)
    product = dense(a) @ dense(b)
    if kernel == "sddmm":
        return product * extra["sample"].to_dense()
    if kernel == "masked_spgemm":
        return product * (extra["mask"].to_dense() != 0)
    return product


def run_sweep(*, n=256, nnz=8000, rank=16, batches=2, seed=7):
    """Every kernel x SWEEP x BACKENDS.

    Returns printable rows
    ``[kernel, backend, p, l, wall_s, measured_MB, model_MB, ratio]``
    (``ratio`` is model/measured; ``-`` when the kernel defers to the
    symbolic model and no closed form is attached).
    """
    problems = _problem(n, nnz, rank, seed)
    rows = []
    for kernel in available_kernels():
        a, b, extra = problems[kernel]
        expected = _reference(kernel, a, b, extra)
        for backend in BACKENDS:
            for p, layers in SWEEP:
                t0 = time.perf_counter()
                r = batched_summa3d(
                    a, b, nprocs=p, layers=layers, batches=batches,
                    comm_backend=backend, kernel=kernel, **extra,
                )
                wall = time.perf_counter() - t0
                out = (
                    r.matrix.to_dense()
                    if hasattr(r.matrix, "to_dense") else r.matrix
                )
                assert np.allclose(out, expected), (
                    f"{kernel} diverges from reference at "
                    f"backend={backend} p={p}"
                )
                measured = r.memory["high_water_total"]
                model = r.memory.get("model", {}).get("high_water_total")
                ratio = model / measured if model and measured else None
                if kernel in DENSE_MODEL_KERNELS:
                    assert model is not None, (
                        f"{kernel} must attach its closed-form memory model"
                    )
                    assert 1 / MODEL_BAND <= ratio <= MODEL_BAND, (
                        f"{kernel} model off by {ratio:.2f}x at "
                        f"backend={backend} p={p} "
                        f"(model {model}, measured {measured})"
                    )
                rows.append([
                    kernel, backend, p, layers, wall,
                    measured / 1e6,
                    model / 1e6 if model else float("nan"),
                    f"{ratio:.2f}" if ratio else "-",
                ])
    return rows


def print_rows(rows):
    _print_series(
        "Kernel family: wall clock and memory model fidelity",
        ["kernel", "backend", "p", "l", "wall_s", "meas_MB",
         "model_MB", "model/meas"],
        rows,
    )


def test_kernel_sweep():
    print_rows(run_sweep())


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized operands; exit 1 on any reference or model mismatch",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        rows = run_sweep(n=128, nnz=3000, rank=8)
    else:
        rows = run_sweep()
    print_rows(rows)
    print("kernel family OK "
          f"({len(rows)} configurations, model band {MODEL_BAND}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
