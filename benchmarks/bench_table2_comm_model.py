"""Table II — communication complexity of BatchedSUMMA3D steps.

Validates the paper's closed-form communication model against byte-exact
volumes metered on the simulated runtime, across (p, l, b), and prints
the closed-form table the paper states.
"""

import math

import pytest

from _helpers import print_series
from repro.model import comm_complexity
from repro.simmpi import CommTracker
from repro.sparse import random_sparse
from repro.sparse.matrix import BYTES_PER_NONZERO
from repro.summa import batched_summa3d

CONFIGS = [(4, 1, 1), (4, 1, 4), (16, 4, 1), (16, 4, 4), (16, 16, 2)]


def _measured_volumes(a, nprocs, layers, batches):
    tracker = CommTracker()
    batched_summa3d(a, a, nprocs=nprocs, layers=layers, batches=batches,
                    tracker=tracker)
    return tracker.by_step()


def test_table2_broadcast_volumes_match_closed_form(benchmark):
    a = random_sparse(64, 64, nnz=1024, seed=1)
    rows = []
    for nprocs, layers, batches in CONFIGS:
        agg = _measured_volumes(a, nprocs, layers, batches)
        # A is re-broadcast once per batch in total across the grid
        expected_a = batches * a.nnz * BYTES_PER_NONZERO
        measured_a = agg["A-Broadcast"]["nbytes"]
        assert expected_a <= measured_a <= expected_a * 1.4, (nprocs, layers, batches)
        # B's volume is batch-independent
        expected_b = a.nnz * BYTES_PER_NONZERO
        measured_b = agg["B-Broadcast"]["nbytes"]
        assert expected_b <= measured_b <= expected_b * 2.2
        rows.append([
            f"{nprocs}/{layers}/{batches}",
            measured_a, expected_a,
            measured_b, expected_b,
        ])
    print_series(
        "Table II validation: metered vs closed-form broadcast volumes (bytes)",
        ["p/l/b", "A-Bcast meas", "A-Bcast model", "B-Bcast meas", "B-Bcast model"],
        rows,
    )
    benchmark(lambda: _measured_volumes(a, 16, 4, 2))


def test_table2_closed_form_scalings(benchmark):
    """The analytic rows of Table II at paper scale."""
    stats = dict(nnz_a=10**9, nnz_b=10**9, flops=10**11)
    benchmark(lambda: comm_complexity(nprocs=4096, layers=4, batches=8, **stats))
    rows = []
    for layers in (1, 4, 16):
        c = comm_complexity(nprocs=4096, layers=layers, batches=8, **stats)
        rows.append([
            layers,
            c["A-Broadcast"]["bytes"],
            c["B-Broadcast"]["bytes"],
            c["AllToAll-Fiber"]["bytes"],
            c["A-Broadcast"]["latency_hops"],
        ])
    print_series(
        "Table II closed forms at p=4096, b=8",
        ["l", "A-Bcast bytes", "B-Bcast bytes", "AllToAll bytes", "A lat hops"],
        rows,
    )
    # bandwidth of the broadcasts falls like 1/sqrt(l)
    assert rows[1][1] == pytest.approx(rows[0][1] / 2)
    assert rows[2][1] == pytest.approx(rows[0][1] / 4)
    # total A-Bcast latency hops fall with l too (fewer, smaller comms)
    assert rows[2][4] < rows[0][4]


def test_table2_alltoall_message_counts(benchmark):
    a = random_sparse(48, 48, nnz=700, seed=2)
    benchmark(lambda: _measured_volumes(a, 16, 4, 1))
    for nprocs, layers, batches in [(16, 4, 1), (16, 4, 3)]:
        agg = _measured_volumes(a, nprocs, layers, batches)
        # one alltoall per fiber per batch; p/l fibers
        assert agg["AllToAll-Fiber"]["messages"] == batches * (nprocs // layers)
        # latency hops per alltoall = l - 1
        assert agg["AllToAll-Fiber"]["latency_hops"] == \
            batches * (nprocs // layers) * (layers - 1)
