"""Table VI — direction of change of every step w.r.t. l and b.

The paper's summary table of arrows:

    b up (l fixed):  A-Bcast UP, B-Bcast flat, Local-Multiply flat,
                     Merge-Layer flat, Merge-Fiber flat, AllToAll flat
    l up (b fixed):  A-Bcast DOWN, B-Bcast DOWN, Local-Multiply DOWN,
                     Merge-Layer flat, Merge-Fiber UP, AllToAll UP

Asserted on metered communication volumes (byte-exact) and on the α–β
model for the time dimension; printed as an arrow table.
"""

import pytest

from _helpers import print_series
from repro.model import CORI_KNL, predict_steps
from repro.simmpi import CommTracker
from repro.sparse import random_sparse
from repro.summa import batched_summa3d

STATS = dict(nnz_a=10**9, nnz_b=10**9, nnz_c=10**10, flops=10**12)


def _volumes(a, nprocs, layers, batches):
    tracker = CommTracker()
    batched_summa3d(a, a, nprocs=nprocs, layers=layers, batches=batches,
                    tracker=tracker)
    agg = tracker.by_step()
    # total_bytes = bytes actually transmitted: payloads times receivers.
    # (summed payloads are l-invariant — what communication avoidance
    # changes is how many processes each byte must reach)
    return {s: agg.get(s, {"total_bytes": 0})["total_bytes"] for s in
            ("A-Broadcast", "B-Broadcast", "AllToAll-Fiber")}


def _arrow(before, after, tol=0.15):
    if after > before * (1 + tol):
        return "UP"
    if after < before * (1 - tol):
        return "DOWN"
    return "flat"


def test_table6_trends_measured_volumes(benchmark):
    a = random_sparse(64, 64, nnz=1200, seed=3)
    base = _volumes(a, 64, 4, 2)
    more_b = _volumes(a, 64, 4, 8)
    more_l = _volumes(a, 64, 16, 2)

    rows = [
        [step, _arrow(base[step], more_b[step]), _arrow(base[step], more_l[step])]
        for step in base
    ]
    print_series(
        "Table VI (measured volumes): arrows vs (b up) and (l up) at p=64",
        ["step", "b: 2->8", "l: 4->16"],
        rows,
    )
    arrows = {r[0]: (r[1], r[2]) for r in rows}
    assert arrows["A-Broadcast"] == ("UP", "DOWN")
    assert arrows["B-Broadcast"] == ("flat", "DOWN")
    assert arrows["AllToAll-Fiber"] == ("flat", "UP")
    benchmark(lambda: _volumes(a, 16, 4, 2))


def test_table6_trends_modelled_times(benchmark):
    benchmark(lambda: predict_steps(
        CORI_KNL, nprocs=4096, layers=4, batches=4, **STATS
    ))
    base = predict_steps(CORI_KNL, nprocs=4096, layers=4, batches=4, **STATS)
    more_b = predict_steps(CORI_KNL, nprocs=4096, layers=4, batches=32, **STATS)
    more_l = predict_steps(CORI_KNL, nprocs=4096, layers=16, batches=4, **STATS)
    steps = ("A-Broadcast", "B-Broadcast", "Local-Multiply",
             "Merge-Layer", "Merge-Fiber", "AllToAll-Fiber")
    rows = [
        [s, _arrow(base.get(s), more_b.get(s)), _arrow(base.get(s), more_l.get(s))]
        for s in steps
    ]
    print_series(
        "Table VI (alpha-beta model) at p=4096",
        ["step", "b: 4->32", "l: 4->16"],
        rows,
    )
    arrows = {r[0]: (r[1], r[2]) for r in rows}
    # the paper's arrow table, verbatim
    assert arrows["A-Broadcast"] == ("UP", "DOWN")
    assert arrows["B-Broadcast"][1] == "DOWN"
    assert arrows["Local-Multiply"] == ("flat", "flat")
    assert arrows["Merge-Fiber"] == ("flat", "UP")
    assert arrows["AllToAll-Fiber"][1] == "UP"
