"""Ablation — SpGEMM formulation taxonomy (Sec. II-C of the paper).

Gustavson column-wise (all our suites), the outer-product / propagation-
blocking formulation [27], and the resident-vs-broadcast distribution
strategy are compared on identical operands: identical results, different
cost structure.
"""

import time

import pytest

from _helpers import print_series
from repro.data import load_dataset, planted_partition
from repro.simmpi import CommTracker
from repro.sparse import multiply
from repro.sparse.spgemm.outer import spgemm_outer


def test_ablation_gustavson_vs_outer(benchmark):
    a, _ = load_dataset("eukarya").operands(seed=0)
    timings = {}
    reference = multiply(a, a)
    for label, fn in (
        ("gustavson/esc", lambda: multiply(a, a)),
        ("outer bs=16", lambda: spgemm_outer(a, a, block_size=16)),
        ("outer bs=256", lambda: spgemm_outer(a, a, block_size=256)),
    ):
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
        assert out.allclose(reference), label
        timings[label] = best
    print_series(
        "SpGEMM formulations on Eukarya^2 (seconds, best of 2)",
        ["formulation", "seconds"],
        [[k, round(v, 4)] for k, v in timings.items()],
    )
    # larger outer blocks amortise the per-round merge (the propagation-
    # blocking tradeoff): coarse blocking must not be slower than fine
    assert timings["outer bs=256"] <= timings["outer bs=16"] * 1.2
    benchmark(lambda: spgemm_outer(a, a, block_size=256))


def test_ablation_resident_vs_broadcast_mcl(benchmark):
    """Resident handles eliminate per-iteration re-distribution; the
    redistribution alltoalls they pay instead move less than the operand
    tiles the broadcast path re-extracts every iteration (the CombBLAS
    argument for persistent distributed matrices)."""
    from repro.apps import markov_cluster, markov_cluster_resident

    adj, _ = planted_partition(60, 4, p_in=0.65, p_out=0.02, seed=311)
    t_broadcast = CommTracker()
    std = markov_cluster(adj, nprocs=4, max_iterations=12,
                         tracker=t_broadcast)
    t_resident = CommTracker()
    res = markov_cluster_resident(adj, nprocs=4, max_iterations=12,
                                  tracker=t_resident)
    rows = [
        ["broadcast", t_broadcast.total_bytes(),
         t_broadcast.total_bytes("Redistribute")],
        ["resident", t_resident.total_bytes(),
         t_resident.total_bytes("Redistribute")],
    ]
    print_series(
        "MCL engines: transmitted bytes over 12 iterations (p=4)",
        ["engine", "total bytes", "redistribute bytes"],
        rows,
    )
    # identical clusterings
    mapping = {}
    for la, lb in zip(std.labels.tolist(), res.labels.tolist()):
        assert mapping.setdefault(la, lb) == lb
    # resident pays redistribution; broadcast pays none
    assert t_resident.total_bytes("Redistribute") > 0
    assert t_broadcast.total_bytes("Redistribute") == 0
    benchmark(lambda: markov_cluster_resident(adj, nprocs=4, max_iterations=3))
