"""Eq. (2) — the batch-requirement curve over memory budgets.

The paper's core relation: the required batch count is inversely
proportional to the memory left after the inputs (Eq. 2), with the exact
value produced by the symbolic step.  Swept here on both the analytic
model (paper scale) and the live symbolic step (simulator), with the
exact count bracketed by the paper's lower/upper bounds (contribution 3).
"""

import pytest

from _helpers import print_series
from repro.data import load_dataset
from repro.model.sweeps import batch_requirement_sweep
from repro.sparse.matrix import BYTES_PER_NONZERO
from repro.sparse.spgemm.symbolic import symbolic_flops, symbolic_nnz
from repro.summa import batches_lower_bound, batches_upper_bound, symbolic3d


def test_eq2_model_curve_at_paper_scale(benchmark):
    paper = load_dataset("isolates").paper
    stats = dict(nnz_a=int(paper.nnz_a), nnz_b=int(paper.nnz_a),
                 nnz_c=int(paper.nnz_c), flops=int(paper.flops))
    # the machine sizes the paper actually ran: 256 / 1024 / 4096 KNL
    # nodes have 0.029 / 0.115 / 0.459 PB aggregate memory
    budgets = [int(0.029e15), int(0.115e15), int(0.459e15)]
    rows = batch_requirement_sweep(
        nprocs=16384, layers=16, memory_budgets=budgets, **stats
    )
    print_series(
        "Eq. 2 at paper scale (Isolates @ 262K-core grid): b vs aggregate memory",
        ["budget (PB)", "batches"],
        [[round(r["memory_budget"] / 1e15, 3), r["batches"]] for r in rows],
    )
    bs = [r["batches"] for r in rows]
    assert all(r["feasible"] for r in rows)
    assert bs == sorted(bs, reverse=True)
    # the paper's regime: at 256 nodes the multiply MUST batch (they
    # measured b = 125 there); with the full 4096-node memory b collapses
    assert bs[0] >= 2
    assert bs[-1] < bs[0]
    benchmark(lambda: batch_requirement_sweep(
        nprocs=16384, layers=16, memory_budgets=budgets, **stats
    ))


def test_eq2_exact_bracketed_by_bounds(benchmark):
    """Contribution 3: lower bound <= exact (symbolic) <= upper bound,
    with the imbalance factor Alg. 3 budgets for."""
    a, _ = load_dataset("eukarya").operands(seed=0)
    nnz_c = symbolic_nnz(a, a)
    flops = symbolic_flops(a, a)
    rows = []
    for mult in (5, 6, 8, 12):
        budget = mult * a.nnz * BYTES_PER_NONZERO
        lower = batches_lower_bound(nnz_c, a.nnz, a.nnz, budget)
        upper = batches_upper_bound(flops, a.nnz, a.nnz, budget)
        exact = symbolic3d(a, a, nprocs=4, memory_budget=budget).batches
        rows.append([mult, lower, exact, upper])
        imbalance = 2.0
        assert lower / imbalance <= exact <= upper * imbalance, mult
    print_series(
        "Eq. 2 bounds vs exact symbolic b (Eukarya^2, p=4)",
        ["budget (x nnz(A) x r)", "lower bound", "exact", "upper bound"],
        rows,
    )
    benchmark(lambda: symbolic3d(
        a, a, nprocs=4, memory_budget=8 * a.nnz * BYTES_PER_NONZERO
    ))
