"""Ablation — load imbalance and the symbolic batch count (Sec. IV-A).

The paper: "the SYMBOLIC3D function considers the maximum unmerged
nonzeros stored by a process so that no process exhausts its available
memory. ... in comparison to perfectly-balanced computation, SYMBOLIC3D
will estimate more batches for load-imbalanced cases."

Measured here two ways: a skewed R-MAT needs more batches than an
Erdős–Rényi matrix of the same size and density under the same budget,
and applying CombBLAS's random symmetric permutation to the skewed matrix
recovers (most of) the difference.
"""

import pytest

from _helpers import print_series
from repro.data import erdos_renyi, rmat
from repro.grid import ProcGrid3D
from repro.sparse.matrix import BYTES_PER_NONZERO
from repro.sparse.ops import random_symmetric_permutation
from repro.sparse.stats import degree_stats, tile_imbalance
from repro.summa import symbolic3d


def test_ablation_skew_inflates_batch_count(benchmark):
    scale = 9  # 512 vertices
    skewed = rmat(scale, edge_factor=10, seed=121)
    uniform = erdos_renyi(1 << scale, avg_degree=2 * 10, seed=122)
    grid = ProcGrid3D(16, 4)

    rows = []
    batches = {}
    for name, m in (("rmat (skewed)", skewed), ("erdos-renyi", uniform)):
        budget = 18 * m.nnz * BYTES_PER_NONZERO
        b = symbolic3d(m, m, nprocs=16, layers=4, memory_budget=budget).batches
        batches[name] = b
        rows.append([
            name,
            m.nnz,
            round(degree_stats(m).skew_ratio, 2),
            round(tile_imbalance(m, grid), 2),
            b,
        ])
    print_series(
        "symbolic batch count vs degree skew (same budget multiple)",
        ["matrix", "nnz", "degree skew", "tile imbalance", "b"],
        rows,
    )
    assert batches["rmat (skewed)"] >= batches["erdos-renyi"]
    assert tile_imbalance(skewed, grid) > tile_imbalance(uniform, grid)
    benchmark(lambda: symbolic3d(
        uniform, uniform, nprocs=4, memory_budget=10**9
    ))


def test_ablation_random_permutation_rebalances(benchmark):
    """The CombBLAS remedy: one random symmetric permutation balances the
    tiles of a skewed matrix, lowering the per-process maxima Alg. 3
    budgets for."""
    skewed = rmat(9, edge_factor=10, seed=123)
    permuted, _perm = random_symmetric_permutation(skewed, seed=124)
    grid = ProcGrid3D(16, 4)
    before = tile_imbalance(skewed, grid)
    after = tile_imbalance(permuted, grid)
    budget = 18 * skewed.nnz * BYTES_PER_NONZERO
    b_before = symbolic3d(skewed, skewed, nprocs=16, layers=4,
                          memory_budget=budget).batches
    b_after = symbolic3d(permuted, permuted, nprocs=16, layers=4,
                         memory_budget=budget).batches
    print_series(
        "random symmetric permutation",
        ["matrix", "tile imbalance", "symbolic b"],
        [
            ["skewed", round(before, 2), b_before],
            ["permuted", round(after, 2), b_after],
        ],
    )
    assert after < before
    assert b_after <= b_before
    benchmark(lambda: random_symmetric_permutation(skewed, seed=0))
