"""Traffic replay against the serving layer — overload behaviour in
numbers.

A synthetic multi-tenant trace (mixed matrix sizes, open-loop arrivals at
a chosen multiple of the pool's measured capacity, optionally one tenant
injecting rank crashes) is replayed against a live
:class:`repro.serve.SpgemmService`.  The report is the serving quartet:

* throughput (completed jobs/s) — overall and per tenant;
* latency — accepted-job p50/p99, split into queue wait and execution;
* rejection rate — by classified reason (``queue-full``, ``overload``,
  ``deadline``, ...), never an unclassified error;
* heal counts — crashes survived online, invisible to the tenant.

``python benchmarks/bench_serve.py --smoke`` runs the CI-sized overload
acceptance: three tenants at ~2x capacity on a small pool must shed load
only through classified rejections, every tenant's throughput must stay
above zero (DRR fair share), and the accepted-job execution p99 must stay
within a fixed bound of the idle single-job baseline.  Add
``--world processes --crash`` to make one tenant's jobs crash a real
forked rank mid-run and count the heals.
"""

import argparse
import shutil
import sys
import tempfile
import threading
import time

from _helpers import print_series
from repro.data.generators import erdos_renyi
from repro.errors import AdmissionRejected, DeadlineExceededError
from repro.serve import REJECT_REASONS, SpgemmService
from repro.simmpi import FaultPlan

#: accepted-job execution p99 must stay within this factor of the idle
#: single-job baseline (plus a scheduling-noise floor) — the smoke bound
P99_FACTOR = 10.0
P99_FLOOR_S = 0.5

SIZES = (32, 48, 64)


def build_workload(tenants, jobs_per_tenant, *, seed=7, crash_tenant=None):
    """Mixed-size round-robin trace: ``[(tenant, matrix, faults), ...]``
    in per-tenant submission order."""
    mats = {
        n: erdos_renyi(n, avg_degree=4.0, seed=seed + n) for n in SIZES
    }
    trace = {}
    for t_i, tenant in enumerate(tenants):
        jobs = []
        for j in range(jobs_per_tenant):
            m = mats[SIZES[(t_i + j) % len(SIZES)]]
            faults = (
                FaultPlan(["crash:rank=1,op=bcast,nth=2"])
                if tenant == crash_tenant and j % 2 == 0 else None
            )
            jobs.append((m, faults))
        trace[tenant] = jobs
    return trace


def measure_baseline(svc, matrix):
    """Idle single-job execution latency (s) — the overload yardstick."""
    r = svc.submit(tenant="baseline", a=matrix).result(timeout=120)
    return max(r.latency_s - r.queued_s, 1e-4)


def replay(svc, trace, *, arrival_interval_s, timeout_s=300.0):
    """Open-loop replay: each tenant submits its jobs at the given
    interval without waiting for completions, then everything drains."""
    results = {t: [] for t in trace}
    rejections = {t: [] for t in trace}
    unclassified = []
    lock = threading.Lock()

    def tenant_loop(tenant, jobs):
        handles = []
        for matrix, faults in jobs:
            try:
                handles.append(
                    svc.submit(tenant=tenant, a=matrix, faults=faults)
                )
            except AdmissionRejected as exc:
                with lock:
                    rejections[tenant].append(exc.reason)
            time.sleep(arrival_interval_s)
        for h in handles:
            try:
                r = h.result(timeout=timeout_s)
                with lock:
                    results[tenant].append(r)
            except (AdmissionRejected, DeadlineExceededError) as exc:
                with lock:
                    rejections[tenant].append(
                        getattr(exc, "reason", "deadline")
                    )
            except Exception as exc:  # noqa: BLE001 - report, don't hide
                with lock:
                    unclassified.append((tenant, exc))

    t0 = time.monotonic()
    threads = [
        threading.Thread(target=tenant_loop, args=(t, jobs))
        for t, jobs in trace.items()
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return {
        "wall_s": time.monotonic() - t0,
        "results": results,
        "rejections": rejections,
        "unclassified": unclassified,
    }


def _pctl(values, q):
    if not values:
        return None
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def report(replayed, baseline_s):
    results, rejections = replayed["results"], replayed["rejections"]
    rows = []
    for tenant in results:
        done = results[tenant]
        execs = [r.latency_s - r.queued_s for r in done]
        rows.append([
            tenant,
            len(done),
            len(rejections[tenant]),
            f"{sum(r.heals for r in done)}",
            f"{(_pctl(execs, 0.50) or 0) * 1e3:.1f} ms",
            f"{(_pctl(execs, 0.99) or 0) * 1e3:.1f} ms",
        ])
    print_series(
        "Traffic replay (per tenant)",
        ["tenant", "completed", "rejected", "heals", "exec p50", "exec p99"],
        rows,
    )
    all_done = [r for rs in results.values() for r in rs]
    all_rej = [r for rs in rejections.values() for r in rs]
    execs = [r.latency_s - r.queued_s for r in all_done]
    total = len(all_done) + len(all_rej)
    summary = {
        "throughput_jobs_per_s": len(all_done) / replayed["wall_s"],
        "rejection_rate": (len(all_rej) / total) if total else 0.0,
        "exec_p50_s": _pctl(execs, 0.50),
        "exec_p99_s": _pctl(execs, 0.99),
        "heals": sum(r.heals for r in all_done),
        "baseline_s": baseline_s,
    }
    print_series(
        "Serving summary",
        ["metric", "value"],
        [
            ["throughput", f"{summary['throughput_jobs_per_s']:.2f} jobs/s"],
            ["rejection rate", f"{summary['rejection_rate'] * 100:.1f} %"],
            ["exec p50", f"{(summary['exec_p50_s'] or 0) * 1e3:.1f} ms"],
            ["exec p99", f"{(summary['exec_p99_s'] or 0) * 1e3:.1f} ms"],
            ["baseline", f"{baseline_s * 1e3:.1f} ms"],
            ["heals", summary["heals"]],
        ],
    )
    return summary


def run_smoke(world="threads", crash=False):
    tenants = ("alice", "bob", "mallory")
    ckpt_root = tempfile.mkdtemp(prefix="bench_serve_ck_")
    heal_kwargs = (
        dict(heal="spare", world_spares=1, checkpoint_root=ckpt_root)
        if crash else {}
    )
    try:
        with SpgemmService(
            grids=2, nprocs=4, world=world, timeout=60.0,
            queue_capacity=2, max_backlog_s=1e9, **heal_kwargs,
        ) as svc:
            baseline_s = measure_baseline(svc, erdos_renyi(
                SIZES[-1], avg_degree=4.0, seed=7 + SIZES[-1],
            ))
            # open-loop at ~2x capacity: pool serves grids/baseline
            # jobs/s, so each of the T tenants submits every
            # T*baseline/(2*grids)
            interval = len(tenants) * baseline_s / (2.0 * 2)
            trace = build_workload(
                tenants, 8, crash_tenant="mallory" if crash else None,
            )
            replayed = replay(svc, trace, arrival_interval_s=interval)
            summary = report(replayed, baseline_s)
    finally:
        shutil.rmtree(ckpt_root, ignore_errors=True)

    # --- overload acceptance -----------------------------------------
    assert not replayed["unclassified"], (
        f"unclassified failures under overload: {replayed['unclassified']}"
    )
    for tenant, reasons in replayed["rejections"].items():
        bad = [r for r in reasons if r not in REJECT_REASONS]
        assert not bad, f"{tenant} saw unclassified rejections: {bad}"
    for tenant, done in replayed["results"].items():
        assert done, f"tenant {tenant} was starved (fair share violated)"
    bound = P99_FACTOR * baseline_s + P99_FLOOR_S
    assert summary["exec_p99_s"] <= bound, (
        f"accepted-job exec p99 {summary['exec_p99_s']:.3f}s exceeds "
        f"{P99_FACTOR}x baseline + {P99_FLOOR_S}s = {bound:.3f}s"
    )
    if crash:
        assert summary["heals"] >= 1, "crash leg recorded no heals"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized overload acceptance; exit nonzero on violation",
    )
    parser.add_argument(
        "--world", default="threads", choices=["threads", "processes"],
        help="execution world for the replay",
    )
    parser.add_argument(
        "--crash", action="store_true",
        help="one tenant injects real rank crashes (requires heal; "
        "pair with --world processes for SIGKILL deaths)",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("this bench runs with --smoke")
    try:
        run_smoke(world=args.world, crash=args.crash)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"serve smoke OK (world={args.world}, crash={args.crash})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
