"""Ablation — the joint (layers, batches) auto-tuner.

The paper tunes l manually ("we set l = 16 as it usually gives the best
result") and observes the l-vs-b tension in Fig. 10.  The auto-tuner
resolves it: for every valid layer count it runs the exact symbolic step,
scores the α–β total, and picks the argmin.  Asserted: the tuned plan is
never worse than any fixed-layer policy under the same model, and it
skips genuinely infeasible layouts.
"""

import pytest

from _helpers import print_series
from repro.data import load_dataset
from repro.sparse.matrix import BYTES_PER_NONZERO
from repro.summa import auto_config


def test_ablation_autotuner_beats_fixed_policies(benchmark):
    a, _ = load_dataset("eukarya").operands(seed=0)
    budget = 10 * a.nnz * BYTES_PER_NONZERO
    plan = auto_config(a, a, nprocs=16, memory_budget=budget)
    rows = [
        [layers, batches, round(seconds, 5),
         "<- chosen" if layers == plan.layers else ""]
        for layers, batches, seconds in plan.candidates
    ]
    print_series(
        "auto-tuner candidate table (Eukarya^2, p=16, tight budget)",
        ["l", "b", "predicted (s)", ""],
        rows,
    )
    # argmin by construction, and strictly at least as good as every
    # fixed-l policy the paper would have had to try by hand
    assert plan.predicted_seconds == min(t for _l, _b, t in plan.candidates)
    benchmark(lambda: auto_config(a, a, nprocs=16, memory_budget=budget))


def test_ablation_autotuner_finds_feasibility_frontier(benchmark):
    """Under a budget where flat layouts cannot even hold their input
    tiles (heavy diagonal blocks), the tuner must discover that *only*
    layered grids are feasible — the paper's synergy claim (Sec. VI) in
    planner form: communication avoidance and memory constraints help
    each other."""
    a, _ = load_dataset("eukarya").operands(seed=0)
    budget = 8 * a.nnz * BYTES_PER_NONZERO
    plan = auto_config(a, a, nprocs=16, memory_budget=budget)
    feasible_layers = {l for l, _b, _t in plan.candidates}
    print(f"\nfeasible layer counts under the tight budget: "
          f"{sorted(feasible_layers)} (chosen: l={plan.layers}, "
          f"b={plan.batches})")
    assert 1 not in feasible_layers
    assert plan.layers > 1
    benchmark(lambda: auto_config(a, a, nprocs=4, memory_budget=None))
