"""Benchmark-suite configuration: make the shared helpers importable and
keep pytest-benchmark runs short (every experiment is deterministic)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
