"""Table IV — the evaluation platform.

Table IV describes Cori's two partitions; this reproduction encodes them
as machine presets.  The bench prints the presets next to the paper's
rows and asserts the derived quantities the experiments depend on: node
counts, aggregate memory (the paper quotes 1.09 PB for the KNL
partition), thread mappings, and the relative compute/communication
speeds of Fig. 13.
"""

import pytest

from _helpers import print_series
from repro.model import CORI_HASWELL, CORI_KNL, CORI_KNL_HT

GB = 1024**3
PAPER = {
    # (cores/node, threads/core, mem/node GB, total nodes, threads/process)
    "cori-knl": (68, 4, 112, 9668, 16),
    "cori-haswell": (32, 2, 128, 2388, 6),
}


def test_table4_platform_presets(benchmark):
    rows = []
    for machine in (CORI_KNL, CORI_HASWELL):
        paper = PAPER[machine.name]
        rows.append([
            machine.name,
            f"{machine.cores_per_node} ({paper[0]})",
            f"{machine.threads_per_core} ({paper[1]})",
            f"{machine.mem_per_node // GB} ({paper[2]})",
            f"{machine.threads_per_process} ({paper[4]})",
        ])
        assert machine.cores_per_node == paper[0]
        assert machine.threads_per_core == paper[1]
        assert machine.mem_per_node == paper[2] * GB
        assert machine.threads_per_process == paper[4]
    print_series(
        "Table IV: machine presets (ours (paper))",
        ["machine", "cores/node", "ht/core", "mem/node GB", "thr/proc"],
        rows,
    )
    # the paper's aggregate-memory quote: 9,668 KNL nodes ~ 1.09 PB
    total_knl = PAPER["cori-knl"][3] * CORI_KNL.mem_per_node
    assert total_knl == pytest.approx(1.09e15, rel=0.07)
    # Fig. 13 relative speeds are encoded in the presets
    assert CORI_HASWELL.sparse_rate / CORI_KNL.sparse_rate == pytest.approx(2.1)
    assert CORI_KNL.beta / CORI_HASWELL.beta == pytest.approx(1.4)
    # the hyperthreaded preset keeps the same node geometry
    assert CORI_KNL_HT.cores_per_node == CORI_KNL.cores_per_node
    benchmark(lambda: CORI_KNL.aggregate_memory(65536))


def test_table4_thread_mappings(benchmark):
    """The paper's MPI+OpenMP mapping: 16 threads/process on KNL, 6 on
    Haswell, one thread per core unless hyperthreading."""
    assert CORI_KNL.procs_for_cores(65536) == 4096
    assert CORI_KNL.procs_for_cores(65536, hyperthreads=True) == 16384
    assert CORI_HASWELL.procs_for_cores(8192) == 8192 // 6
    benchmark(lambda: CORI_KNL.procs_for_cores(262144))
