"""Fig. 7 — strong scaling of the two biggest matrices, 16K -> 262K cores.

Isolates (301 Tflops) and Metaclust50 (92 Tflops) on Cori-KNL with l=16.
Paper speedups over the 16x core increase: 13x (Isolates) and 6.3x
(Metaclust50 — sparser, so communication dominates sooner and efficiency
drops).  The bench asserts both magnitudes-within-band and the *relative*
claim that Metaclust50 scales worse than Isolates.
"""

import pytest

from _helpers import print_series
from repro.data import load_dataset
from repro.model import CORI_KNL, strong_scaling_series

CORES = [16384, 65536, 262144]
PAPER_SPEEDUP = {"isolates": 13.0, "metaclust50": 6.3}


def _series(name):
    paper = load_dataset(name).paper
    return strong_scaling_series(
        CORI_KNL,
        core_counts=CORES,
        layers=16,
        nnz_a=int(paper.nnz_a),
        nnz_b=int(paper.nnz_a),
        nnz_c=int(paper.nnz_c),
        flops=int(paper.flops),
        memory_fraction=0.35,
    )


def test_fig7_strong_scaling_largest_matrices(benchmark):
    speedups = {}
    for name in ("isolates", "metaclust50"):
        series = _series(name)
        rows = [
            [pt.cores, pt.nprocs, pt.batches,
             round(pt.times.get("A-Broadcast"), 2),
             round(pt.times.get("Local-Multiply"), 1),
             round(pt.total, 1)]
            for pt in series
        ]
        print_series(
            f"Fig. 7 ({name} @ paper scale, l=16, modelled)",
            ["cores", "procs", "b", "A-Bcast", "LocalMul", "total"],
            rows,
        )
        speedups[name] = series[0].total / series[-1].total
        print(f"{name}: 16x cores -> {speedups[name]:.1f}x "
              f"(paper {PAPER_SPEEDUP[name]}x)")
        # batch counts fall with memory but less than linearly in memory
        # (paper: 'their relationship is not straightforward')
        bs = [pt.batches for pt in series]
        assert bs == sorted(bs, reverse=True)
        assert bs[0] > 1
    # shape band: substantial strong scaling for both giants.  The band is
    # asymmetric for metaclust50: its paper-measured 6.3x is depressed by
    # latency-bound small-message effects at 262K cores that a two-term
    # alpha-beta instantiation cannot capture (recorded in EXPERIMENTS.md).
    assert PAPER_SPEEDUP["isolates"] / 2.5 <= speedups["isolates"] \
        <= PAPER_SPEEDUP["isolates"] * 2.5
    assert PAPER_SPEEDUP["metaclust50"] / 2.5 <= speedups["metaclust50"] \
        <= PAPER_SPEEDUP["metaclust50"] * 3.5
    # the paper's mechanism for Metaclust50 scaling worse: communication
    # takes a larger share of its runtime at every scale (paper: 48% vs
    # 36% on 4096 nodes)
    from _helpers import comm_comp_split

    fracs = {}
    for name in ("isolates", "metaclust50"):
        pt = _series(name)[-1]
        comm, comp = comm_comp_split(pt.times)
        fracs[name] = comm / (comm + comp)
        print(f"{name} comm fraction @ 262K cores: {fracs[name]:.2f} "
              f"(paper: {'36%' if name == 'isolates' else '48%'})")
    assert fracs["metaclust50"] > fracs["isolates"]
    benchmark(lambda: _series("isolates"))


def test_fig7_sparser_matrix_moves_more_bytes_per_flop(benchmark):
    """Paper: Metaclust50 is the sparser of the two giants, so its
    communication dominates sooner (48% vs 36% of total on 4096 nodes).

    The structural driver is bytes-communicated-per-flop: Metaclust50
    carries ~1.8x more input data per unit of multiply work, which is the
    quantity the α–β broadcasts charge for.  (The paper's measured 48%
    also includes skew-induced waiting our critical-path model does not
    charge to communication; EXPERIMENTS.md records the divergence.)
    """
    ratios = {}
    for name in ("isolates", "metaclust50"):
        paper = load_dataset(name).paper
        ratios[name] = paper.nnz_a / paper.flops
        print(f"{name}: nnz(A)/flops = {ratios[name]:.2e}")
    assert ratios["metaclust50"] > 1.5 * ratios["isolates"]
    benchmark(lambda: _series("metaclust50"))
