"""Fig. 12 — hyperthreading at extreme scale (Metaclust50, 4096 nodes).

With all 4 hardware threads per core the process count quadruples: the
paper finds computation gets faster, communication gets slower (NIC
contention), and the total still improves because this workload is
computation-dominated — while noting HT "may not help when SpGEMM becomes
communication-bound".  Both halves are asserted on the machine model.
"""

import pytest

from _helpers import COMM_STEPS, COMP_STEPS, print_series
from repro.data import load_dataset
from repro.model import CORI_KNL, CORI_KNL_HT, predict_steps


def _split(times):
    comm = sum(times.get(s) for s in COMM_STEPS)
    comp = sum(times.get(s) for s in COMP_STEPS)
    return comm, comp


def test_fig12_hyperthreading_tradeoff(benchmark):
    paper = load_dataset("metaclust50").paper
    stats = dict(nnz_a=int(paper.nnz_a), nnz_b=int(paper.nnz_a),
                 nnz_c=int(paper.nnz_c), flops=int(paper.flops))
    cores = 262144  # 4096 nodes
    rows = []
    results = {}
    for layers in (16, 64):
        plain = predict_steps(
            CORI_KNL, nprocs=CORI_KNL.procs_for_cores(cores),
            layers=layers, batches=4, **stats,
        )
        ht = predict_steps(
            CORI_KNL_HT,
            nprocs=CORI_KNL_HT.procs_for_cores(cores, hyperthreads=True),
            layers=layers, batches=4, **stats,
        )
        results[layers] = (plain, ht)
        for label, t in (("HT=No", plain), ("HT=Yes", ht)):
            comm, comp = _split(t)
            rows.append([layers, label, round(comp, 1), round(comm, 1),
                         round(t.total(), 1)])
    print_series(
        "Fig. 12 (modelled, Metaclust50 @ 4096 nodes)",
        ["l", "mode", "comp (s)", "comm (s)", "total (s)"],
        rows,
    )
    for layers, (plain, ht) in results.items():
        comm_p, comp_p = _split(plain)
        comm_h, comp_h = _split(ht)
        # HT reduces computation time but increases communication time
        assert comp_h < comp_p, layers
        assert comm_h > comm_p, layers
    # where computation dominates (l=64 in the paper), HT wins overall
    plain64, ht64 = results[64]
    assert ht64.total() < plain64.total()
    benchmark(lambda: predict_steps(
        CORI_KNL_HT, nprocs=65536, layers=16, batches=4, **stats
    ))


def test_fig12_ht_does_not_help_when_comm_bound(benchmark):
    """The paper's caveat: a communication-bound SpGEMM gains nothing."""
    paper = load_dataset("rice_kmers").paper  # the comm-bound workload
    stats = dict(nnz_a=int(paper.nnz_a), nnz_b=int(paper.nnz_a),
                 nnz_c=int(paper.nnz_c), flops=int(paper.flops))
    cores = 65536
    plain = predict_steps(
        CORI_KNL, nprocs=CORI_KNL.procs_for_cores(cores),
        layers=1, batches=1, **stats,
    )
    ht = predict_steps(
        CORI_KNL_HT,
        nprocs=CORI_KNL_HT.procs_for_cores(cores, hyperthreads=True),
        layers=1, batches=1, **stats,
    )
    print(f"\ncomm-bound workload: HT=No {plain.total():.2f}s, "
          f"HT=Yes {ht.total():.2f}s")
    assert ht.total() > plain.total()
    benchmark(lambda: predict_steps(
        CORI_KNL, nprocs=4096, layers=1, batches=1, **stats
    ))
