"""Fig. 11 — A·Aᵀ with Rice-kmers: communication-bound, no batching.

Rice-kmers has ~2 nonzeros per column and nnz(A·Aᵀ) ≈ nnz(A), so b = 1
and the run is dominated by communication (including the symbolic step's
broadcasts).  The paper: 16 layers makes the whole computation ~6x faster
at 65,536 cores — communication avoidance pays even *without* batching.
"""

import pytest

from _helpers import COMM_STEPS, print_series
from repro.data import load_dataset
from repro.model import CORI_KNL, predict_steps
from repro.simmpi import CommTracker
from repro.sparse import multiply
from repro.summa import batched_summa3d


def test_fig11_no_batching_needed(benchmark):
    a, at = load_dataset("rice_kmers").operands(seed=0)
    budget = CORI_KNL.mem_per_node  # one node's worth is already plenty
    r = batched_summa3d(a, at, nprocs=4, layers=1, memory_budget=budget)
    assert r.batches == 1
    assert r.matrix.allclose(multiply(a, at))
    print(f"\nrice stand-in: nnz(A) = {a.nnz}, nnz(AAT) = {r.matrix.nnz} "
          f"(expansion {r.matrix.nnz / a.nnz:.2f}) -> b = 1")
    benchmark(lambda: batched_summa3d(a, at, nprocs=4, layers=1, batches=1))


def test_fig11_communication_dominates_and_layers_help(benchmark):
    """Modelled at paper scale: the run is comm-bound at l = 1 and layers
    shrink the total substantially (paper: 6x with 16 layers)."""
    paper = load_dataset("rice_kmers").paper
    stats = dict(nnz_a=int(paper.nnz_a), nnz_b=int(paper.nnz_a),
                 nnz_c=int(paper.nnz_c), flops=int(paper.flops))
    rows = []
    totals = {}
    comm_frac = {}
    for layers in (1, 4, 16):
        t = predict_steps(
            CORI_KNL, nprocs=4096, layers=layers, batches=1, **stats
        )
        comm = sum(t.get(s) for s in COMM_STEPS)
        totals[layers] = t.total()
        comm_frac[layers] = comm / t.total()
        rows.append([layers, round(comm, 2), round(t.total() - comm, 2),
                     round(t.total(), 2)])
    print_series(
        "Fig. 11 (modelled, Rice-kmers AAT @ 65,536 cores, b=1)",
        ["l", "comm (s)", "comp (s)", "total (s)"],
        rows,
    )
    # comm-bound at one layer (Rice-kmers: ~2 nnz per column)
    assert comm_frac[1] > 0.5
    # more layers help markedly even with b = 1 (paper: 6x at l=16)
    speedup = totals[1] / totals[16]
    print(f"l=16 speedup over l=1: {speedup:.1f}x (paper: ~6x)")
    assert speedup > 2.0
    benchmark(lambda: predict_steps(
        CORI_KNL, nprocs=4096, layers=16, batches=1, **stats
    ))


def test_fig11_simulated_comm_reduction(benchmark):
    """The same effect measured in bytes on the simulator."""
    a, at = load_dataset("rice_kmers").operands(seed=0)
    volumes = {}
    for layers in (1, 4):
        tracker = CommTracker()
        batched_summa3d(a, at, nprocs=16, layers=layers, batches=1,
                        tracker=tracker)
        volumes[layers] = sum(
            tracker.total_bytes(s) for s in ("A-Broadcast", "B-Broadcast")
        )
    print_series(
        "Fig. 11 (simulated, p=16): broadcast volume vs layers",
        ["l", "broadcast bytes"],
        [[l, v] for l, v in sorted(volumes.items())],
    )
    assert volumes[4] < volumes[1]
    benchmark(lambda: batched_summa3d(a, at, nprocs=16, layers=4, batches=1))
