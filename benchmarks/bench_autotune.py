"""Mid-run replanning vs fixed configurations on adversarial inputs.

The planner's static choice of ``b`` is only as good as its priors; a
skewed workload punishes a large ``b`` by paying the per-batch *fixed*
cost (the full-A re-broadcast of column batching) ``b`` times while the
per-batch scaled work shrinks towards nothing.  Mid-run replanning
(``replan="auto"``) measures exactly that at the first batch boundary
and shrinks ``b``, restarting through the re-batch path.

Two adversarial inputs:

* **SpMM, narrow panel** — A carries 12k nonzeros, the dense feature
  panel is 64 columns wide; at ``b=32`` each batch moves 2 panel columns
  but re-broadcasts all of A.  The fixed sweep's makespan climbs ~4x
  from ``b=1`` to ``b=32``; the replanned run cascades ``32 -> 16 -> 8``
  (the backend-flip lever is structurally off for SpMM, so the
  trajectory is deterministic).  This sweep carries the makespan
  assertions: the replanned run is never worse than the *worst* fixed
  configuration (with wall-clock slack), and the distance to the *best*
  is reported as the restart's price.

* **SpGEMM, nnz(A) = 20x nnz(B)** — the same fixed-cost skew in the
  sparse-output kernel; asserts the shrink fires and the product is
  bit-identical to the fixed-plan run of the final configuration
  (replanning never changes the product).

Runs two ways:

* ``pytest benchmarks/bench_autotune.py`` — the normal harness; or
* ``python benchmarks/bench_autotune.py --smoke`` — the CI plan step,
  no pytest fixtures, exit code 1 on any violated assertion.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

import numpy as np

from repro.sparse import random_sparse
from repro.summa import batched_summa3d

#: every fixed batch count the replanned run is raced against
FIXED_SWEEP = (1, 2, 4, 8, 16, 32)

#: the adversarial run starts at the worst end of the sweep
ADVERSARIAL_START = 32

#: wall-clock slack on the never-worse-than-worst assertion (timings on
#: the simulated-MPI grid are real wall seconds, hence noisy)
SLACK = 1.2

#: median-of-N wall clock per configuration
REPEATS = 3


def _print_series(title, header, rows):
    try:
        from _helpers import print_series
    except ImportError:  # running as a script from anywhere
        import os

        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from _helpers import print_series
    print_series(title, header, rows)


def spmm_operands(seed=5):
    """Broadcast-bound SpMM: a 12k-nonzero A against a 64-column panel —
    at large ``b`` the full-A re-broadcast dwarfs each batch's work."""
    a = random_sparse(192, 192, nnz=12000, seed=seed)
    panel = np.ascontiguousarray(
        np.random.default_rng(seed + 2).standard_normal((192, 64))
    )
    return a, panel


def spgemm_operands(seed=5):
    """The same skew for SpGEMM: A carries 20x B's nonzeros."""
    a = random_sparse(192, 192, nnz=12000, seed=seed)
    b = random_sparse(192, 192, nnz=600, seed=seed + 1)
    return a, b


def _identical(x, y) -> bool:
    if isinstance(x, np.ndarray):
        return np.array_equal(x, y)
    return (
        x.shape == y.shape
        and np.array_equal(x.indptr, y.indptr)
        and np.array_equal(x.rowidx, y.rowidx)
        and np.array_equal(x.values, y.values)
    )


def _timed(run):
    """(median wall seconds over REPEATS, last result)."""
    walls, result = [], None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = run()
        walls.append(time.perf_counter() - t0)
    return statistics.median(walls), result


def run_sweep(*, nprocs=4, seed=5):
    """Race replan="auto" (starting at the adversarial ``b``) against
    every fixed SpMM configuration; returns (rows, summary)."""
    a, panel = spmm_operands(seed)
    fixed = {}
    rows = []
    for bb in FIXED_SWEEP:
        wall, result = _timed(
            lambda bb=bb: batched_summa3d(
                a, panel, nprocs, batches=bb, kernel="spmm",
            )
        )
        fixed[bb] = (wall, result)
        rows.append([f"fixed b={bb}", f"{wall * 1e3:.2f}", 0, "-"])

    wall_r, replanned = _timed(
        lambda: batched_summa3d(
            a, panel, nprocs, batches=ADVERSARIAL_START, kernel="spmm",
            replan="auto", replan_min_batches=1, max_replans=2,
        )
    )
    plan = replanned.info["plan"]
    events = (replanned.info.get("resilience") or {}).get("replans", [])
    trajectory = " -> ".join(
        [str(ADVERSARIAL_START)] + [str(e["to"]["batches"]) for e in events]
    )
    rows.append(
        ["replan=auto", f"{wall_r * 1e3:.2f}", plan["revision"], trajectory]
    )

    walls = {bb: w for bb, (w, _) in fixed.items()}
    best_b = min(walls, key=walls.get)
    worst_b = max(walls, key=walls.get)
    summary = {
        "wall_replanned": wall_r,
        "plan": plan,
        "events": events,
        "fixed_walls": walls,
        "best": best_b,
        "worst": worst_b,
        "replanned_result": replanned,
        "fixed_results": {bb: r for bb, (_, r) in fixed.items()},
    }
    return rows, summary


def check(summary) -> list[str]:
    """The recovery property as a list of failures (empty = pass)."""
    failures = []
    plan = summary["plan"]
    events = summary["events"]
    if not events or plan["revision"] < 1:
        failures.append(
            "mid-run replanning did not fire on the adversarial input"
        )
        return failures
    final_b = plan["batches"]
    if final_b >= ADVERSARIAL_START:
        failures.append(
            f"expected a shrink from b={ADVERSARIAL_START}, got b={final_b}"
        )
    ref = summary["fixed_results"].get(final_b)
    if ref is None:
        failures.append(
            f"final configuration b={final_b} not in the fixed sweep"
        )
    elif not _identical(summary["replanned_result"].matrix, ref.matrix):
        failures.append(
            "replanned product differs from the fixed-plan run of the "
            f"final configuration (b={final_b}) — replanning changed "
            "the product"
        )
    worst_wall = summary["fixed_walls"][summary["worst"]]
    if summary["wall_replanned"] > worst_wall * SLACK:
        failures.append(
            f"replanned makespan {summary['wall_replanned'] * 1e3:.2f}ms "
            f"worse than the worst fixed configuration "
            f"{worst_wall * 1e3:.2f}ms (slack {SLACK}x)"
        )
    return failures


def check_spgemm_fires(*, nprocs=4, seed=5) -> list[str]:
    """The SpGEMM skew: the shrink must fire and the product must be
    bit-identical to the fixed-plan run of the final configuration."""
    a, b = spgemm_operands(seed)
    replanned = batched_summa3d(
        a, b, nprocs, batches=8, replan="auto", replan_min_batches=1,
    )
    plan = replanned.info["plan"]
    events = (replanned.info.get("resilience") or {}).get("replans", [])
    if not events or plan["revision"] < 1:
        return ["SpGEMM skew did not trigger a mid-run replan"]
    fixed = batched_summa3d(
        a, b, nprocs, batches=plan["batches"],
        comm_backend=plan["backend"],
    )
    if not _identical(replanned.matrix, fixed.matrix):
        return [
            "SpGEMM replanned product differs from the fixed-plan run "
            f"of b={plan['batches']}, backend={plan['backend']}"
        ]
    print(
        f"spgemm skew: replan fired at batch {events[0]['at_batch']} "
        f"[{events[0]['reason']}], product bit-identical to fixed "
        f"b={plan['batches']}"
    )
    return []


def report(rows, summary):
    _print_series(
        "replan=auto vs fixed b: SpMM, broadcast-bound narrow panel",
        ["config", "wall ms", "revisions", "b trajectory"],
        rows,
    )
    best_wall = summary["fixed_walls"][summary["best"]]
    gap = summary["wall_replanned"] / best_wall if best_wall > 0 else 1.0
    for event in summary["events"]:
        print(
            f"replan fired at batch {event['at_batch']} "
            f"[{event['reason']}]: b {event['from']['batches']} -> "
            f"{event['to']['batches']}"
        )
    print(
        f"distance to best fixed config (b={summary['best']}): "
        f"{gap:.2f}x (the restart's price)"
    )


# ---------------------------------------------------------------------- #
# pytest harness
# ---------------------------------------------------------------------- #

def test_replan_recovers_from_adversarial_plan():
    rows, summary = run_sweep()
    report(rows, summary)
    failures = check(summary)
    assert not failures, "; ".join(failures)


def test_replan_fires_on_spgemm_skew():
    failures = check_spgemm_fires()
    assert not failures, "; ".join(failures)


# ---------------------------------------------------------------------- #
# CLI smoke (CI plan step)
# ---------------------------------------------------------------------- #

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the sweep once and exit 1 on any violated assertion",
    )
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("run under pytest, or pass --smoke")
    rows, summary = run_sweep(seed=args.seed)
    report(rows, summary)
    failures = check(summary)
    failures += check_spgemm_fires(seed=args.seed)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("replan recovery property holds")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
