"""Fig. 8 — computation vs communication inside the symbolic step.

The paper shows the symbolic step's communication shrinking >4x from 1 to
16 layers (>2x total), because SYMBOLIC3D reuses the communication-
avoiding broadcasts while its local computation is light.  Measured here
on the simulator: transmitted symbolic volume falls with l while the
symbolic *work* (flops examined) is l-invariant; the modelled times at
paper scale show the same split the figure plots.
"""

import pytest

from _helpers import print_series
from repro.data import load_dataset
from repro.model import CORI_KNL, comm_complexity
from repro.simmpi import CommTracker
from repro.summa import symbolic3d


@pytest.fixture(scope="module")
def matrix():
    a, _ = load_dataset("isolates_small").operands(seed=0)
    return a


def test_fig8_symbolic_comm_shrinks_with_layers(matrix, benchmark):
    budget = 10**9
    volumes = {}
    batch_counts = {}
    for layers in (1, 4, 16):
        tracker = CommTracker()
        r = symbolic3d(matrix, matrix, nprocs=64, layers=layers,
                       memory_budget=budget, tracker=tracker)
        volumes[layers] = tracker.total_bytes("Symbolic")
        batch_counts[layers] = r.batches
    rows = [[l, volumes[l], batch_counts[l]] for l in sorted(volumes)]
    print_series(
        "Fig. 8: symbolic-step transmitted bytes vs layers (p=64)",
        ["l", "symbolic comm bytes", "computed b"],
        rows,
    )
    # the figure's claim: communication falls substantially with layers
    assert volumes[16] < volumes[1] / 2
    assert volumes[4] < volumes[1]
    benchmark(lambda: symbolic3d(
        matrix, matrix, nprocs=16, layers=4, memory_budget=budget
    ))


def test_fig8_modelled_split_at_paper_scale(benchmark):
    paper = load_dataset("isolates_small").paper
    rows = []
    split = {}
    for layers in (1, 4, 16):
        c = comm_complexity(
            nprocs=4096, layers=layers, batches=1,
            nnz_a=int(paper.nnz_a), nnz_b=int(paper.nnz_a),
            flops=int(paper.flops),
        )["Symbolic"]
        comm = CORI_KNL.alpha * c["latency_hops"] + CORI_KNL.beta * c["bytes"]
        comp = paper.flops / 4096 / CORI_KNL.symbolic_rate
        split[layers] = (comm, comp)
        rows.append([layers, round(comm, 2), round(comp, 2)])
    print_series(
        "Fig. 8 (modelled, Isolates-small @ 65,536 cores)",
        ["l", "symbolic comm (s)", "symbolic comp (s)"],
        rows,
    )
    # communication shrinks with l; computation is l-invariant
    assert split[16][0] < split[1][0] / 2
    assert split[16][1] == split[1][1]
    benchmark(lambda: comm_complexity(
        nprocs=4096, layers=16, batches=1,
        nnz_a=int(paper.nnz_a), nnz_b=int(paper.nnz_a), flops=int(paper.flops),
    ))
