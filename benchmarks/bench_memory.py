"""Memory-model closed loop — measured ledger marks vs the Table III
estimate.

Every run's :class:`~repro.mem.MemoryLedger` reports a per-rank
high-water mark; :func:`repro.model.predict_memory` claims the same
number from three symbolic statistics.  This bench sweeps the batch
count (``b`` in 1..8) over both communication backends, prints measured
vs predicted side by side, and fails if the prediction ever leaves the
acceptance band (within 2x of measured, either direction).  A final
:func:`repro.model.fit_memory_model` pass shows how much of the residual
a single calibration factor removes.

Runs two ways:

* ``pytest benchmarks/bench_memory.py`` — the normal harness; or
* ``python benchmarks/bench_memory.py --smoke`` — the CI memory step,
  no pytest fixtures, exit code 1 on any out-of-band prediction.
"""

import argparse
import sys

from repro.mem import CATEGORIES
from repro.model import fit_memory_model, predict_memory
from repro.sparse import multiply, random_sparse
from repro.summa import batched_summa3d, symbolic3d

#: acceptance band for predicted / measured (the ISSUE's "within 2x")
MODEL_ERROR_BAND = (0.5, 2.0)

BATCH_SWEEP = (1, 2, 4, 8)
BACKENDS = ("dense", "sparse")


def _print_series(title, header, rows):
    try:
        from _helpers import print_series
    except ImportError:  # running as a script from anywhere
        import os

        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from _helpers import print_series
    print_series(title, header, rows)


def run_sweep(*, nprocs=4, n=96, nnz=900, seed=11):
    """Measured vs predicted high-water for b in BATCH_SWEEP x BACKENDS.

    Returns (rows, observations): printable table rows and the
    (predicted, measured) pairs :func:`fit_memory_model` consumes.
    """
    a = random_sparse(n, n, nnz=nnz, seed=seed)
    ref = multiply(a, a)
    # one symbolic pass supplies the three Table III statistics
    sym = symbolic3d(a, a, nprocs=nprocs, memory_budget_per_rank=10**6)
    rows, observations = [], []
    for backend in BACKENDS:
        for b in BATCH_SWEEP:
            result = batched_summa3d(
                a, a, nprocs=nprocs, batches=b, comm_backend=backend
            )
            assert result.matrix.allclose(ref)
            measured = result.memory
            predicted = predict_memory(
                nprocs=nprocs, layers=1, batches=b,
                max_nnz_a=sym.max_nnz_a, max_nnz_b=sym.max_nnz_b,
                max_nnz_c=sym.max_nnz_c, nnz_c=ref.nnz, keep_output=True,
            )
            err = predicted["high_water_total"] / measured["high_water_total"]
            rows.append([
                backend, b, measured["high_water_total"],
                predicted["high_water_total"], round(err, 3),
            ])
            observations.append((predicted, measured))
    return rows, observations


def check_sweep(rows, observations):
    """Assert the acceptance band and the fit's sanity; print both."""
    _print_series(
        "Memory model vs ledger (p=4, sweep b x backend)",
        ["backend", "b", "measured B", "predicted B", "pred/meas"],
        rows,
    )
    lo, hi = MODEL_ERROR_BAND
    bad = [r for r in rows if not lo <= r[4] <= hi]
    assert not bad, f"model_error outside [{lo}, {hi}]: {bad}"
    # batching must actually shrink the measured footprint
    for backend in BACKENDS:
        series = [r[2] for r in rows if r[0] == backend]
        assert series[-1] < series[0]
    fit = fit_memory_model(observations)
    _print_series(
        "Calibration fit (predicted -> measured)",
        ["scale", "mean |err|", "categories fitted"],
        [[round(fit.scale, 4), round(fit.mean_abs_error, 4),
          sum(1 for c in CATEGORIES if c in fit.category_scale)]],
    )
    # a near-unity scale means the closed loop is already calibrated
    assert lo <= fit.scale <= hi
    assert fit.mean_abs_error < 1.0
    return fit


def test_model_tracks_ledger_across_batches(benchmark):
    rows, observations = benchmark(run_sweep)
    check_sweep(rows, observations)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI-sized sweep and exit nonzero on any "
             "out-of-band model error",
    )
    parser.add_argument("--nprocs", type=int, default=4)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("this bench runs under pytest or with --smoke")
    try:
        rows, observations = run_sweep(nprocs=args.nprocs)
        check_sweep(rows, observations)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print("memory smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
