"""Shared utilities for the per-figure/per-table benchmark harness.

Every bench prints the same rows/series its paper counterpart reports
(visible with ``pytest benchmarks/... -s``) and *asserts* the shape —
who wins, in which direction each step moves, where crossovers fall — so
``pytest benchmarks/ --benchmark-only`` green means the paper's
qualitative claims reproduce.
"""

from __future__ import annotations

from repro.simmpi import CommTracker
from repro.summa import batched_summa3d
from repro.utils.timing import StepTimes

#: the paper's step breakdown, in presentation order
STEPS = (
    "Symbolic",
    "A-Broadcast",
    "B-Broadcast",
    "Local-Multiply",
    "Merge-Layer",
    "AllToAll-Fiber",
    "Merge-Fiber",
)

COMM_STEPS = ("Symbolic", "A-Broadcast", "B-Broadcast", "AllToAll-Fiber")
COMP_STEPS = ("Local-Multiply", "Merge-Layer", "Merge-Fiber")


def run_breakdown(a, b, *, nprocs, layers, batches=None, memory_budget=None,
                  suite="esc"):
    """One metered BatchedSUMMA3D run -> (StepTimes, CommTracker, result)."""
    tracker = CommTracker()
    result = batched_summa3d(
        a, b, nprocs=nprocs, layers=layers, batches=batches,
        memory_budget=memory_budget, suite=suite, tracker=tracker,
    )
    return result.step_times, tracker, result


def comm_comp_split(times: StepTimes) -> tuple[float, float]:
    """(communication seconds, computation seconds) of a breakdown."""
    comm = sum(times.get(s) for s in COMM_STEPS)
    comp = sum(times.get(s) for s in COMP_STEPS)
    return comm, comp


def print_series(title: str, header: list[str], rows: list[list]) -> None:
    """Print one figure's data series as an aligned table."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)
