"""Fig. 5 — A-Broadcast time falls like 1/sqrt(l) at fixed b.

The paper plots observed A-Broadcast times against dashed "expected"
lines that halve for every 4x increase in l.  Here the observed series is
the per-process transmitted A-Broadcast volume metered on the simulator
(time ~ volume under the bandwidth-bound α–β model) and the modelled
series is Table II's closed form; both must track the 1/sqrt(l) law.
"""

import math

import pytest

from _helpers import print_series
from repro.data import load_dataset
from repro.model import CORI_KNL, comm_complexity
from repro.simmpi import CommTracker
from repro.summa import batched_summa3d


def test_fig5_abcast_follows_inverse_sqrt_l(benchmark):
    a, _ = load_dataset("friendster").operands(seed=0)
    nprocs = 64
    batches = 4
    observed = {}
    for layers in (1, 4, 16):
        tracker = CommTracker()
        batched_summa3d(a, a, nprocs=nprocs, layers=layers, batches=batches,
                        tracker=tracker)
        observed[layers] = tracker.by_step()["A-Broadcast"]["total_bytes"]
    # asymptotically volume ~ 1/sqrt(l); at finite p each broadcast reaches
    # sqrt(p/l) - 1 receivers, so the exact law carries the -1 correction
    def receivers(layers):
        return math.sqrt(nprocs / layers) - 1

    asymptotic = {l: observed[1] / math.sqrt(l) for l in observed}
    exact = {
        l: observed[1] * receivers(l) / receivers(1) for l in observed
    }
    rows = [
        [l, observed[l], round(asymptotic[l]), round(exact[l])]
        for l in sorted(observed)
    ]
    print_series(
        "Fig. 5: A-Broadcast transmitted volume vs l (p=64, b=4)",
        ["l", "observed bytes", "1/sqrt(l) dashed line", "finite-p law"],
        rows,
    )
    # the exact finite-p law holds tightly (indptr metadata gives slack)
    for layers in (4, 16):
        assert observed[layers] == pytest.approx(exact[layers], rel=0.15)
    # and the figure's visual claim: strictly decreasing in l
    assert observed[16] < observed[4] < observed[1]
    benchmark(lambda: comm_complexity(
        nprocs=4096, layers=16, batches=16,
        nnz_a=10**9, nnz_b=10**9, flops=10**12,
    ))


def test_fig5_model_exact_at_paper_scale(benchmark):
    stats = dict(nnz_a=36 * 10**8, nnz_b=36 * 10**8, flops=14 * 10**11)
    times = {}
    for layers in (1, 4, 16, 64):
        c = comm_complexity(nprocs=4096, layers=layers, batches=16, **stats)
        times[layers] = (
            CORI_KNL.alpha * c["A-Broadcast"]["latency_hops"]
            + CORI_KNL.beta * c["A-Broadcast"]["bytes"]
        )
    rows = [
        [l, round(times[l], 3), round(times[1] / math.sqrt(l), 3)]
        for l in sorted(times)
    ]
    print_series(
        "Fig. 5 (modelled A-Broadcast seconds @ 65,536 cores, b=16)",
        ["l", "modelled", "1/sqrt(l) line"],
        rows,
    )
    for layers in (4, 16, 64):
        assert times[layers] == pytest.approx(
            times[1] / math.sqrt(layers), rel=0.25
        )
    benchmark(lambda: comm_complexity(nprocs=4096, layers=16, batches=16, **stats))
