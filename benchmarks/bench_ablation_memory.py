"""Ablation — the memory-vs-batches curve (the paper's core promise).

Batching exists to bound transient memory: the per-process high water
should fall roughly like ``inputs + transient / b`` as the batch count
grows (the paper's 0.5 PB vs 2.2 PB headline is this curve at scale).
Measured with the honest per-rank memory meter on real runs.
"""

import pytest

from _helpers import print_series
from repro.data import load_dataset
from repro.summa import batched_summa3d


def test_ablation_high_water_falls_with_batches(benchmark):
    a, _ = load_dataset("eukarya").operands(seed=0)
    series = {}
    for batches in (1, 2, 4, 8, 16):
        r = batched_summa3d(
            a, a, nprocs=4, batches=batches, keep_output=False
        )
        series[batches] = r.max_local_bytes
    inputs_floor = 2 * (a.nnz // 4) * 24  # two tiles stay resident
    rows = [
        [b, hw, round(hw / series[1], 3)] for b, hw in sorted(series.items())
    ]
    print_series(
        "per-process memory high water vs batch count (Eukarya^2, p=4)",
        ["b", "high water (B)", "fraction of b=1"],
        rows,
    )
    # strictly decreasing up to the floor set by the resident inputs
    values = [series[b] for b in (1, 2, 4, 8, 16)]
    assert values == sorted(values, reverse=True)
    # and the big-b regime approaches the input floor: transient bounded
    assert series[16] < series[1] * 0.6
    assert series[16] > inputs_floor  # the floor is real, not an artefact
    benchmark(lambda: batched_summa3d(
        a, a, nprocs=4, batches=4, keep_output=False
    ))


def test_ablation_headline_ratio(benchmark):
    """The paper's headline: batching made a 2.2 PB problem fit in 0.5 PB —
    a ~4.4x memory reduction.  On the scaled instance, compare the
    unbatched transient requirement to the batched one at the symbolic
    step's chosen b for a quarter-sized budget."""
    a, _ = load_dataset("isolates_small").operands(seed=0)
    unbatched = batched_summa3d(a, a, nprocs=4, batches=1, keep_output=False)
    budget = int(unbatched.max_local_bytes * 4 * 0.45)  # ~45% of what b=1 needs
    constrained = batched_summa3d(
        a, a, nprocs=4, memory_budget=budget, keep_output=False
    )
    ratio = unbatched.max_local_bytes / constrained.max_local_bytes
    print(f"\nb=1 needs {unbatched.max_local_bytes:,} B/process; "
          f"with b={constrained.batches} the same multiply runs in "
          f"{constrained.max_local_bytes:,} B/process ({ratio:.2f}x less)")
    assert constrained.batches > 1
    assert ratio > 1.5
    benchmark(lambda: batched_summa3d(
        a, a, nprocs=4, batches=2, keep_output=False
    ))
