"""Table VII — local computation improvements from sort-free kernels.

The paper replaces the prior heap-based Local-Multiply/merge with
unsorted-hash kernels and reports large merge speedups (an order of
magnitude on Merge-Layer/Merge-Fiber) while Local-Multiply is comparable
or moderately faster.  This bench times the actual kernels on the same
partial results a SUMMA run produces, "Previous" (sorted-heap [13]) vs
"Now" (unsorted-hash, this paper), at several layer counts.
"""

import time

import pytest

from _helpers import print_series
from repro.data import load_dataset
from repro.sparse import (
    merge_hash,
    merge_heap,
    spgemm_hash,
    spgemm_heap,
)
from repro.sparse.ops import col_split


@pytest.fixture(scope="module")
def workload():
    a, _ = load_dataset("eukarya").operands(seed=0)
    return a


def _time(fn, *args):
    """Best-of-3 wall time (the minimum is the least noisy estimator)."""
    best = float("inf")
    out = None
    for _ in range(3):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, out


def _stage_partials(a, stages, kernel):
    """Partial products of a SUMMA2D-like stage structure: split the inner
    dimension into `stages` blocks and multiply each pair."""
    blocks = col_split(a, stages)
    from repro.sparse.ops import submatrix, split_bounds

    bounds = split_bounds(a.nrows, stages)
    partials = []
    for s in range(stages):
        a_part = blocks[s]                       # A(:, block s)
        b_part = submatrix(a, int(bounds[s]), int(bounds[s + 1]), 0, a.ncols)
        partials.append(kernel(a_part, b_part))
    return partials


def test_table7_multiply_and_merge(workload, benchmark):
    rows = []
    speedups = {}
    for stages in (2, 4):
        # --- Local-Multiply: heap (previous) vs hash (now) --------------
        t_heap_mul, partial_heap = _time(
            lambda: _stage_partials(workload, stages, spgemm_heap)
        )
        t_hash_mul, partial_hash = _time(
            lambda: _stage_partials(workload, stages, spgemm_hash)
        )
        # --- Merge: heap-merge on sorted vs hash-merge on unsorted ------
        t_heap_merge, merged_heap = _time(merge_heap, partial_heap)
        t_hash_merge, merged_hash = _time(merge_hash, partial_hash)
        assert merged_heap.allclose(merged_hash)
        rows.append([
            stages, t_heap_mul, t_hash_mul, t_heap_merge, t_hash_merge,
            round(t_heap_merge / t_hash_merge, 2),
        ])
        speedups[stages] = t_heap_merge / t_hash_merge
    print_series(
        "Table VII: previous (heap) vs now (hash) local kernels, seconds",
        ["k-way", "mul prev", "mul now", "merge prev", "merge now",
         "merge speedup"],
        rows,
    )
    # the headline claim: the sort-free hash merge beats the heap merge at
    # every k (the paper reports ~10x on Cori; the CPython constant
    # differs but the ordering must hold)
    assert all(s > 1.0 for s in speedups.values())
    benchmark(lambda: merge_hash(_stage_partials(workload, 2, spgemm_hash)))


def test_table7_merge_speedup_grows_with_pieces(workload, benchmark):
    """More layers -> more pieces to merge -> bigger hash-vs-heap gap."""
    partials = _stage_partials(workload, 8, spgemm_hash)
    sorted_partials = [p.sort_indices() for p in partials]
    t_heap, _ = _time(merge_heap, sorted_partials)
    t_hash, _ = _time(merge_hash, partials)
    print_series(
        "8-way merge",
        ["kernel", "seconds"],
        [["heap (prev)", t_heap], ["hash (now)", t_hash]],
    )
    assert t_hash < t_heap
    benchmark(lambda: merge_hash(partials))
