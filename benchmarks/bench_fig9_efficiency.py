"""Fig. 9 — parallel efficiency of BatchedSUMMA3D on the four big matrices.

The paper plots efficiency (P1/P2)(T(P1)/T(P2)) and finds it stays near
(or above — superlinear) 1 for three matrices, while the sparser
Metaclust50 drops to ~0.4 at 262K cores because communication dominates.
"""

import pytest

from _helpers import print_series
from repro.data import load_dataset
from repro.model import CORI_KNL, parallel_efficiency, strong_scaling_series

MATRICES = ["friendster", "isolates_small", "isolates", "metaclust50"]


def _efficiency(name, cores):
    paper = load_dataset(name).paper
    series = strong_scaling_series(
        CORI_KNL,
        core_counts=cores,
        layers=16,
        nnz_a=int(paper.nnz_a),
        nnz_b=int(paper.nnz_a),
        nnz_c=int(paper.nnz_c),
        flops=int(paper.flops),
        memory_fraction=0.35,
    )
    return parallel_efficiency(series)


def test_fig9_parallel_efficiency(benchmark):
    # the paper scales the smaller matrices to 65K cores (Fig. 6) and the
    # giants to 262K (Fig. 7); Fig. 9 overlays the efficiency of all four
    core_ranges = {
        "friendster": [4096, 16384, 65536],
        "isolates_small": [4096, 16384, 65536],
        "isolates": [16384, 65536, 262144],
        "metaclust50": [16384, 65536, 262144],
    }
    table = {name: _efficiency(name, core_ranges[name]) for name in MATRICES}
    rows = [
        [name, core_ranges[name][-1]] + [round(e, 3) for e in table[name]]
        for name in MATRICES
    ]
    print_series(
        "Fig. 9: parallel efficiency at 1x / 4x / 16x the base cores "
        "(modelled, l=16)",
        ["matrix", "max cores", "eff@1x", "eff@4x", "eff@16x"],
        rows,
    )
    # every series starts at 1 by definition
    for effs in table.values():
        assert effs[0] == pytest.approx(1.0)
    finals = {name: effs[-1] for name, effs in table.items()}
    # paper: efficiency remains close to 1 (superlinear points above 1 come
    # from the falling batch count, which the paper observes too)
    for name, final in finals.items():
        assert final > 0.5, name
    # at a FIXED batch count the superlinear b-effect disappears and
    # communication (plus the coarser merging at finer stage granularity)
    # must pull efficiency strictly below 1 for both giants — Fig. 9's
    # sub-ideal regime.  The paper's further claim that Metaclust50 is the
    # laggard (0.4 at 262K cores) rests on latency/contention effects the
    # two-term alpha-beta model does not carry; EXPERIMENTS.md records the
    # divergence, while bench_fig7 asserts the mechanism the model does
    # reproduce (Metaclust50's higher communication fraction).
    fixed = {}
    for name in ("isolates", "metaclust50"):
        paper = load_dataset(name).paper
        pts = []
        from repro.model import predict_steps

        for cores in (16384, 262144):
            nprocs = CORI_KNL.procs_for_cores(cores)
            t = predict_steps(
                CORI_KNL, nprocs=nprocs, layers=16, batches=4,
                nnz_a=int(paper.nnz_a), nnz_b=int(paper.nnz_a),
                nnz_c=int(paper.nnz_c), flops=int(paper.flops),
            )
            pts.append((nprocs, t.total()))
        (p1, t1), (p2, t2) = pts
        fixed[name] = (p1 / p2) * (t1 / t2)
        print(f"{name}: fixed-b efficiency at 16x cores = {fixed[name]:.3f}")
    assert all(0.4 < e < 1.0 for e in fixed.values())
    benchmark(lambda: _efficiency("isolates", core_ranges["isolates"]))
