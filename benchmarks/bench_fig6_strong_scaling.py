"""Fig. 6 — strong scaling of Friendster and Isolates-small, 4K -> 65K cores.

The paper reports total speedups of 14x (Friendster) and 17.3x
(Isolates-small, superlinear thanks to the falling batch count) over a
16x core increase on Cori-KNL, with per-step breakdowns.  This bench
projects the same series from the Table II/III model fed with the paper's
Table V statistics and asserts the figure's shape: strong overall
speedup, shrinking batch counts, and near-linear computation scaling.
"""

import pytest

from _helpers import print_series
from repro.data import load_dataset
from repro.model import CORI_KNL, strong_scaling_series

CORES = [4096, 16384, 65536]
PAPER_SPEEDUP = {"friendster": 14.0, "isolates_small": 17.3}


def _series(name, memory_fraction):
    paper = load_dataset(name).paper
    return strong_scaling_series(
        CORI_KNL,
        core_counts=CORES,
        layers=16,
        nnz_a=int(paper.nnz_a),
        nnz_b=int(paper.nnz_a),
        nnz_c=int(paper.nnz_c),
        flops=int(paper.flops),
        memory_fraction=memory_fraction,
    )


@pytest.mark.parametrize("name,memfrac", [
    ("friendster", 0.35),
    ("isolates_small", 0.35),
])
def test_fig6_strong_scaling(name, memfrac, benchmark):
    series = _series(name, memfrac)
    rows = [
        [pt.cores, pt.nprocs, pt.batches,
         round(pt.times.get("A-Broadcast"), 2),
         round(pt.times.get("Local-Multiply"), 2),
         round(pt.times.get("AllToAll-Fiber"), 3),
         round(pt.total, 2)]
        for pt in series
    ]
    print_series(
        f"Fig. 6 ({name} @ paper scale, l=16, modelled)",
        ["cores", "procs", "b", "A-Bcast", "LocalMul", "AllToAll", "total"],
        rows,
    )
    speedup = series[0].total / series[-1].total
    paper = PAPER_SPEEDUP[name]
    print(f"16x cores -> {speedup:.1f}x speedup (paper: {paper}x)")
    # the shape band: strong scaling holds, within a factor 2 of the paper
    assert paper / 2 <= speedup <= paper * 2
    # batch count falls as aggregate memory grows
    bs = [pt.batches for pt in series]
    assert bs[0] > bs[-1]
    # computation scales near-linearly: Local-Multiply drops ~16x
    comp = [pt.times.get("Local-Multiply") for pt in series]
    assert comp[0] / comp[-1] == pytest.approx(16, rel=0.1)
    benchmark(lambda: _series(name, memfrac))


def test_fig6_abcast_superlinear(benchmark):
    """Paper: A-Broadcast can shrink superlinearly (45.4x for Isolates-small
    over 16x cores) because b falls on top of the 1/sqrt(pl) bandwidth."""
    series = _series("isolates_small", 0.35)
    abcast = [pt.times.get("A-Broadcast") for pt in series]
    reduction = abcast[0] / abcast[-1]
    print(f"\nA-Broadcast reduction over 16x cores: {reduction:.1f}x "
          f"(paper: 45.4x; superlinear means > 16x)")
    assert reduction > 16
    benchmark(lambda: _series("isolates_small", 0.35))
