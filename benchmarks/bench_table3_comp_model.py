"""Table III — computational complexity of the local kernels.

Checks the paper's two computational claims on the live simulator:
Local-Multiply work is invariant in (l, b) (it always totals flops/p),
while the merge steps pay the logarithmic k-way factors — Merge-Layer
work shrinks as layers absorb stages, Merge-Fiber work appears with
layers.  Prints the closed-form table alongside measured critical-path
times.
"""

import pytest

from _helpers import print_series, run_breakdown
from repro.data import load_dataset
from repro.model import comp_complexity
from repro.sparse.spgemm.symbolic import symbolic_flops


@pytest.fixture(scope="module")
def matrix():
    a, _ = load_dataset("eukarya").operands(seed=0)
    return a


def test_table3_closed_forms(benchmark):
    flops = 10**12
    benchmark(
        lambda: comp_complexity(nprocs=4096, layers=16, batches=8, flops=flops)
    )
    rows = []
    for layers in (1, 4, 16):
        c = comp_complexity(nprocs=4096, layers=layers, batches=8, flops=flops)
        rows.append([layers, c["Local-Multiply"], c["Merge-Layer"], c["Merge-Fiber"]])
    print_series(
        "Table III closed forms at p=4096, b=8 (operations per process)",
        ["l", "Local-Multiply", "Merge-Layer", "Merge-Fiber"],
        rows,
    )
    assert rows[0][1] == rows[2][1]                  # multiply invariant in l
    assert rows[2][2] < rows[0][2]                   # layer merge shrinks
    assert rows[0][3] == 0 and rows[2][3] > 0        # fiber merge appears


def test_table3_local_multiply_invariant_in_batches(matrix, benchmark):
    """Measured Local-Multiply time stays ~flat as b grows (Table VI row 1)."""
    times = {}
    for batches in (1, 4):
        st, _tr, _res = run_breakdown(
            matrix, matrix, nprocs=4, layers=1, batches=batches
        )
        times[batches] = st.get("Local-Multiply")
    print_series(
        "measured Local-Multiply seconds vs b (p=4, l=1)",
        ["b", "seconds"],
        [[b, t] for b, t in sorted(times.items())],
    )
    # flat within noise: allow 60% (simulator timing under the GIL is coarse)
    assert times[4] < times[1] * 1.6 + 0.05
    benchmark(
        lambda: run_breakdown(matrix, matrix, nprocs=4, layers=1, batches=2)
    )


def test_table3_flops_conservation(matrix, benchmark):
    """Summed over all ranks, stages and batches, the expansion work done by
    Local-Multiply equals exactly the sequential flops — the invariant
    behind Table III's Local-Multiply row."""
    from repro.grid import ProcGrid3D
    from repro.grid.distribution import extract_a_tile, extract_b_tile

    flops_seq = symbolic_flops(matrix, matrix)

    def distributed_flops(nprocs, layers):
        grid = ProcGrid3D(nprocs, layers)
        total = 0
        for k in range(layers):
            for i in range(grid.pr):
                for j in range(grid.pc):
                    # stage s multiplies A tile (i, s, k) by B tile (s, j, k)
                    for s in range(grid.stages):
                        at = extract_a_tile(matrix, grid, grid.rank_of(i, s, k))
                        bt = extract_b_tile(matrix, grid, grid.rank_of(s, j, k))
                        total += symbolic_flops(at, bt)
        return total

    for nprocs, layers in [(4, 1), (8, 2), (16, 4)]:
        assert distributed_flops(nprocs, layers) == flops_seq, (nprocs, layers)
    benchmark(lambda: distributed_flops(4, 1))
