"""Fig. 15 — BatchedSUMMA3D vs the prior SUMMA3D of [13].

The paper's head-to-head: squaring Eukarya with 4 layers and no batching,
this paper's implementation (sort-free hash kernels) against the previous
CombBLAS SUMMA3D (sorted heap kernels).  Computation is >8x faster,
communication slightly faster.  Reproduced by running the *same*
distributed algorithm with the two kernel suites swapped — the one-line
ablation the library's KernelSuite design exists for.
"""

import time

import pytest

from _helpers import COMP_STEPS, print_series
from repro.data import load_dataset
from repro.summa import batched_summa3d


def _run(a, suite):
    t0 = time.perf_counter()
    result = batched_summa3d(a, a, nprocs=16, layers=4, batches=1, suite=suite)
    wall = time.perf_counter() - t0
    comp = sum(result.step_times.get(s) for s in COMP_STEPS)
    return wall, comp, result


def test_fig15_new_kernels_beat_prior(benchmark):
    a, _ = load_dataset("eukarya").operands(seed=0)
    results = {}
    for label, suite in (
        ("prior SUMMA3D (sorted-heap)", "sorted-heap"),
        ("this paper (unsorted-hash)", "unsorted-hash"),
    ):
        best = (float("inf"), float("inf"), None)
        for _ in range(2):  # best-of-2 to tame scheduler noise
            wall, comp, res = _run(a, suite)
            if comp < best[1]:
                best = (wall, comp, res)
        results[label] = best
    rows = [
        [label, round(comp, 3), round(wall, 3)]
        for label, (wall, comp, _res) in results.items()
    ]
    print_series(
        "Fig. 15: Eukarya^2, p=16, l=4, b=1 (live simulator)",
        ["implementation", "computation (s)", "wall (s)"],
        rows,
    )
    prior_comp = results["prior SUMMA3D (sorted-heap)"][1]
    new_comp = results["this paper (unsorted-hash)"][1]
    speedup = prior_comp / new_comp
    print(f"computation speedup: {speedup:.2f}x "
          f"(paper: >8x on Cori; CPython constants differ, ordering must hold)")
    # the paper's qualitative claim: the sort-free kernels win on computation
    assert speedup > 1.2
    # and both produce the same matrix
    m_prior = results["prior SUMMA3D (sorted-heap)"][2].matrix
    m_new = results["this paper (unsorted-hash)"][2].matrix
    assert m_prior.allclose(m_new)
    benchmark(lambda: batched_summa3d(
        a, a, nprocs=4, layers=1, batches=1, suite="unsorted-hash"
    ))


def test_fig15_modelled_at_paper_scale(benchmark):
    """The same comparison through the machine model: Table III's heap
    factors vs the hash merge's linear cost at the paper's 256-node run."""
    from repro.data import load_dataset as _ld
    from repro.model import CORI_KNL, predict_steps

    paper = _ld("eukarya").paper
    stats = dict(nnz_a=int(paper.nnz_a), nnz_b=int(paper.nnz_a),
                 nnz_c=int(paper.nnz_c), flops=int(paper.flops))
    heap = predict_steps(CORI_KNL, nprocs=1024, layers=4, batches=1,
                         merge_kernel="heap", **stats)
    hash_ = predict_steps(CORI_KNL, nprocs=1024, layers=4, batches=1,
                          merge_kernel="hash", **stats)
    comp_heap = sum(heap.get(s) for s in COMP_STEPS)
    comp_hash = sum(hash_.get(s) for s in COMP_STEPS)
    print_series(
        "Fig. 15 (modelled, Eukarya @ 256 nodes)",
        ["kernels", "computation (s)", "total (s)"],
        [
            ["heap (prior)", round(comp_heap, 2), round(heap.total(), 2)],
            ["hash (new)", round(comp_hash, 2), round(hash_.total(), 2)],
        ],
    )
    speedup = comp_heap / comp_hash
    print(f"modelled computation speedup: {speedup:.1f}x (paper: >8x)")
    assert speedup > 2.0
    assert hash_.total() < heap.total()
    benchmark(lambda: predict_steps(
        CORI_KNL, nprocs=1024, layers=4, batches=1, merge_kernel="hash", **stats
    ))
