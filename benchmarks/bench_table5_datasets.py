"""Table V — statistics of the test matrices.

Prints the paper's reported statistics next to the achieved statistics of
the scaled stand-ins and asserts that each stand-in preserves the regime
that drives the paper's experiments: strong output expansion and high
compression factor for the squaring datasets, near-unit expansion for
Rice-kmers, extreme expansion for Metaclust20m.
"""

import pytest

from _helpers import print_series
from repro.data import DATASETS, load_dataset


def test_table5_dataset_statistics(benchmark):
    rows = []
    achieved = {}
    for name, spec in DATASETS.items():
        stats = spec.achieved_stats(seed=0)
        achieved[name] = stats
        rows.append([
            name,
            spec.operation,
            f"{spec.paper.nnz_a:.1e}",
            stats["nnz_a"],
            f"{spec.paper.expansion:.1f}",
            round(stats["expansion"], 1),
            f"{spec.paper.cf:.1f}",
            round(stats["cf"], 1),
        ])
    print_series(
        "Table V: paper vs scaled stand-in statistics",
        ["matrix", "op", "nnzA paper", "nnzA ours",
         "exp paper", "exp ours", "cf paper", "cf ours"],
        rows,
    )

    # squaring datasets must expand and compress like the paper's
    for name in ("eukarya", "isolates_small", "friendster", "isolates",
                 "metaclust50"):
        assert achieved[name]["expansion"] > 1.0, name
        assert achieved[name]["cf"] > 1.5, name
    # friendster-like social squaring has the largest expansion of the AA set
    squarings = ["eukarya", "isolates_small", "friendster", "isolates",
                 "metaclust50"]
    assert max(squarings, key=lambda n: achieved[n]["expansion"]) == "friendster"
    # rice: output comparable to input (no batching regime)
    assert achieved["rice_kmers"]["expansion"] < 8.0
    # metaclust20m: extreme expansion (batching essential)
    assert achieved["metaclust20m"]["expansion"] > 20.0
    # isolates is the flop-heaviest protein dataset, as in the paper
    assert achieved["isolates"]["flops"] > achieved["eukarya"]["flops"]

    benchmark(lambda: load_dataset("eukarya").generate(seed=0))
