"""Heal study — what online recovery costs, by strategy and crash point.

Three ways to survive a rank crash at batch ``i`` of ``b``, compared in
the tracker's deterministic byte currency plus the heal layer's own
meters (recovery latency, operand bytes redistributed to the repaired
position):

* **spare-promotion** (``heal="spare"``) — a parked spare rank takes
  over the dead grid position; the run continues in place.
* **shrink-redistribute** (``heal="shrink"``) — the host pool shrinks
  and the dead position respawns oversubscribed on a survivor host;
  the run continues in place.
* **full restart** (the PR 3 baseline) — the run aborts with a
  checkpoint pointer and a second invocation resumes from the last
  durable batch.

All three must produce bit-identical products; the interesting numbers
are the extra communication each pays and how it scales with the crash
point.  Restart pays the whole prefix replay machinery again (process
launch, symbolic step, re-broadcasts from batch ``i``); healing pays one
agreement round plus re-entry from batch ``i`` — and only the repaired
position's operand tiles move again.

``python benchmarks/bench_heal.py --smoke [--world processes]`` runs the
CI-sized version: one crash point, every strategy, in the chosen
execution world — under ``--world processes`` the injected crash is a
real ``SIGKILL`` of a forked worker and the heal latency is a genuine
cross-process agreement round.
"""

import argparse
import shutil
import sys
import tempfile

import numpy as np
import pytest

from _helpers import print_series
from repro.data.generators import erdos_renyi
from repro.errors import SpmdError
from repro.simmpi import CommTracker, FaultPlan
from repro.summa import batched_summa3d

NPROCS, BATCHES = 4, 4


@pytest.fixture(scope="module")
def operands():
    a = erdos_renyi(96, avg_degree=6.0, seed=23)
    return a, a


@pytest.fixture(scope="module")
def baseline(operands):
    a, b = operands
    tracker = CommTracker()
    result = batched_summa3d(
        a, b, nprocs=NPROCS, batches=BATCHES, tracker=tracker, timeout=30
    )
    return tracker.total_bytes(), result


def _heal_run(a, b, ckpt_dir, crash_batch, mode, spares, world="threads"):
    tracker = CommTracker()
    result = batched_summa3d(
        a, b, nprocs=NPROCS, batches=BATCHES, tracker=tracker, timeout=30,
        checkpoint_dir=ckpt_dir,
        faults=FaultPlan([f"crash:rank=1,batch={crash_batch}"]),
        heal=mode, world_spares=spares, world=world,
    )
    heal = result.info["resilience"]["heal"]
    assert heal["heals"] == 1
    return {
        "bytes": tracker.total_bytes(),
        "extra": heal["extra_bytes_moved"],
        "latency_s": heal["events"][0]["latency_s"],
        "matrix": result.matrix,
    }


def _restart_run(a, b, ckpt_dir, crash_batch, world="threads"):
    crashed = CommTracker()
    with pytest.raises(SpmdError):
        batched_summa3d(
            a, b, nprocs=NPROCS, batches=BATCHES, tracker=crashed, timeout=30,
            checkpoint_dir=ckpt_dir,
            faults=FaultPlan([f"crash:rank=1,batch={crash_batch}"]),
            world=world,
        )
    resumed = CommTracker()
    result = batched_summa3d(
        a, b, nprocs=NPROCS, tracker=resumed, timeout=30,
        checkpoint_dir=ckpt_dir, resume=True, world=world,
    )
    return {
        "bytes": crashed.total_bytes() + resumed.total_bytes(),
        "extra": resumed.total_bytes(),
        "latency_s": None,
        "matrix": result.matrix,
    }


def test_heal_vs_restart_by_crash_batch(operands, baseline):
    a, b = operands
    base_bytes, base = baseline

    rows = [["fault-free", "-", base_bytes, 0, "-"]]
    by_strategy: dict[str, list[dict]] = {}
    for crash_batch in range(1, BATCHES):
        for strategy in ("spare", "shrink", "restart"):
            ckpt_dir = tempfile.mkdtemp()
            try:
                if strategy == "restart":
                    run = _restart_run(a, b, ckpt_dir, crash_batch)
                else:
                    run = _heal_run(
                        a, b, ckpt_dir, crash_batch, strategy,
                        spares=1 if strategy == "spare" else 0,
                    )
            finally:
                shutil.rmtree(ckpt_dir, ignore_errors=True)
            # every strategy must end bit-identical to fault-free
            assert np.array_equal(run["matrix"].values, base.matrix.values)
            assert np.array_equal(run["matrix"].rowidx, base.matrix.rowidx)
            by_strategy.setdefault(strategy, []).append(run)
            latency = (
                f"{run['latency_s'] * 1e3:.2f} ms"
                if run["latency_s"] is not None else "n/a (new process)"
            )
            rows.append([
                f"{strategy} crash@{crash_batch}", BATCHES - crash_batch,
                run["bytes"], run["extra"], latency,
            ])
    print_series(
        "Crash recovery cost by strategy and crash point",
        ["run", "batches recomputed", "comm bytes", "extra bytes", "latency"],
        rows,
    )

    # restart's recovery traffic is the whole resumed run: it shrinks as
    # the crash moves later (fewer batches left to replay) — strictly
    restart_extra = [r["extra"] for r in by_strategy["restart"]]
    assert all(x > y for x, y in zip(restart_extra, restart_extra[1:]))
    for strategy in ("spare", "shrink"):
        extras = [r["extra"] for r in by_strategy[strategy]]
        # healing's recovery traffic is the repaired position's operand
        # tiles — a constant, independent of the crash point...
        assert len(set(extras)) == 1, strategy
        # ...and far below what any restart re-moves
        assert all(
            healed < restarted
            for healed, restarted in zip(extras, restart_extra)
        ), strategy
        # continuing in place stays near the fault-free volume: the
        # completed prefix is never recomputed, only re-entered batches
        totals = [r["bytes"] for r in by_strategy[strategy]]
        assert all(t < 1.25 * base_bytes for t in totals), strategy
    # a restart always pays more than one fault-free run in aggregate
    # (the crashed attempt's traffic is sunk cost)
    assert all(r["bytes"] > base_bytes for r in by_strategy["restart"])


def test_spare_vs_shrink_redistribution_is_tile_sized(operands, baseline):
    """Both heal modes move exactly the repaired position's operand
    tiles — the redistribution meter must be small next to a full run."""
    a, b = operands
    base_bytes, _ = baseline
    for mode, spares in (("spare", 1), ("shrink", 0)):
        ckpt_dir = tempfile.mkdtemp()
        try:
            run = _heal_run(a, b, ckpt_dir, 2, mode, spares)
        finally:
            shutil.rmtree(ckpt_dir, ignore_errors=True)
        assert 0 < run["extra"] < base_bytes / NPROCS


def run_smoke(world: str) -> None:
    """CI-sized sweep: one crash point, every strategy, in ``world``."""
    a = erdos_renyi(96, avg_degree=6.0, seed=23)
    base = batched_summa3d(
        a, a, nprocs=NPROCS, batches=BATCHES, timeout=30, world=world
    )
    rows = []
    for strategy in ("spare", "shrink", "restart"):
        ckpt_dir = tempfile.mkdtemp()
        try:
            if strategy == "restart":
                run = _restart_run(a, a, ckpt_dir, 2, world=world)
            else:
                run = _heal_run(
                    a, a, ckpt_dir, 2, strategy,
                    spares=1 if strategy == "spare" else 0, world=world,
                )
        finally:
            shutil.rmtree(ckpt_dir, ignore_errors=True)
        assert np.array_equal(run["matrix"].values, base.matrix.values), (
            f"{strategy} product diverged from fault-free under {world}"
        )
        latency = (
            f"{run['latency_s'] * 1e3:.2f} ms"
            if run["latency_s"] is not None else "n/a (new process)"
        )
        rows.append([f"{strategy} crash@2", run["extra"], latency])
    print_series(
        f"Crash recovery smoke (world={world})",
        ["run", "extra bytes", "latency"],
        rows,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized sweep; exit nonzero on any divergence",
    )
    parser.add_argument(
        "--world", default="threads", choices=["threads", "processes"],
        help="execution world for the sweep (processes: real SIGKILL "
        "crashes, parent-coordinated healing)",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("this bench runs under pytest or with --smoke")
    try:
        run_smoke(args.world)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"heal smoke OK (world={args.world})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
