"""Fig. 13 — same grid, faster processors (Cori-KNL vs Cori-Haswell).

The paper squares Isolates-small on 256 nodes of each partition with the
same process grid (16 layers, 23 batches): computation is ~2.1x faster on
Haswell, communication ~1.4x faster (same Aries network, faster data
handling around MPI calls), so communication takes a *larger fraction* of
the total on the faster processor — the motivation for communication
avoidance on future machines.
"""

import pytest

from _helpers import COMM_STEPS, COMP_STEPS, print_series
from repro.data import load_dataset
from repro.model import CORI_HASWELL, CORI_KNL, predict_steps


def test_fig13_knl_vs_haswell(benchmark):
    paper = load_dataset("isolates_small").paper
    stats = dict(nnz_a=int(paper.nnz_a), nnz_b=int(paper.nnz_a),
                 nnz_c=int(paper.nnz_c), flops=int(paper.flops))
    # 256 nodes of each; the paper fixes the same process grid on both
    nprocs = 1024
    layers, batches = 16, 23
    times = {
        "KNL": predict_steps(CORI_KNL, nprocs=nprocs, layers=layers,
                             batches=batches, **stats),
        "Haswell": predict_steps(CORI_HASWELL, nprocs=nprocs, layers=layers,
                                 batches=batches, **stats),
    }
    rows = []
    split = {}
    # pure communication steps only: the Symbolic step mixes in local
    # computation, which would contaminate the comm-speedup measurement
    pure_comm = ("A-Broadcast", "B-Broadcast", "AllToAll-Fiber")
    for name, t in times.items():
        comm = sum(t.get(s) for s in pure_comm)
        comp = sum(t.get(s) for s in COMP_STEPS)
        split[name] = (comm, comp)
        rows.append([name, round(comp, 1), round(comm, 1),
                     round(comm / (comm + comp), 3)])
    print_series(
        "Fig. 13 (modelled, Isolates-small @ 256 nodes, l=16, b=23)",
        ["machine", "comp (s)", "comm (s)", "comm fraction"],
        rows,
    )
    comp_speedup = split["KNL"][1] / split["Haswell"][1]
    comm_speedup = split["KNL"][0] / split["Haswell"][0]
    print(f"computation speedup: {comp_speedup:.2f}x (paper 2.1x); "
          f"communication speedup: {comm_speedup:.2f}x (paper 1.4x)")
    # paper's arrowheads
    assert comp_speedup == pytest.approx(2.1, rel=0.05)
    assert comm_speedup == pytest.approx(1.4, rel=0.05)
    # the structural consequence: comm fraction grows on the faster CPU
    frac_knl = split["KNL"][0] / sum(split["KNL"])
    frac_hsw = split["Haswell"][0] / sum(split["Haswell"])
    assert frac_hsw > frac_knl
    benchmark(lambda: predict_steps(
        CORI_HASWELL, nprocs=nprocs, layers=layers, batches=batches, **stats
    ))
