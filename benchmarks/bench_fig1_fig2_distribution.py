"""Figs. 1 & 2 — the data-distribution and execution illustrations.

Fig. 1 draws the 3D distribution on a 2x2x2 grid (A split along columns
into layer slices, B along rows, block-cyclic batches); Fig. 2 walks one
batch through the seven steps.  This bench *executes* the exact example
(p = 8, l = 2, b = 2, one matrix used for both operands) and asserts the
figure's structural claims on the real data and the real step trace.
"""

import numpy as np
import pytest

from _helpers import print_series
from repro.grid import ProcGrid3D
from repro.grid.distribution import (
    a_tile_range,
    b_tile_range,
    batch_layer_blocks,
    extract_a_tile,
    extract_b_tile,
)
from repro.simmpi import CommTracker
from repro.sparse import multiply, random_sparse
from repro.summa import batched_summa3d


def test_fig1_distribution_geometry(benchmark):
    n = 16
    a = random_sparse(n, n, nnz=80, seed=401)
    grid = ProcGrid3D(8, layers=2)
    rows = []
    for rank in range(8):
        i, j, k = grid.coords(rank)
        ar = a_tile_range(grid, n, n, i, j, k)
        br = b_tile_range(grid, n, n, i, j, k)
        rows.append([
            rank, f"({i},{j},{k})",
            f"rows {ar[0]}:{ar[1]} cols {ar[2]}:{ar[3]}",
            f"rows {br[0]}:{br[1]} cols {br[2]}:{br[3]}",
        ])
    print_series(
        "Fig. 1: tile geometry on the 2x2x2 grid (n=16)",
        ["rank", "(i,j,k)", "A tile", "B tile"],
        rows,
    )
    # Fig. 1(d,e): A tiles are tall and skinny — nrows = l * ncols
    for rank in range(8):
        tile = extract_a_tile(a, grid, rank)
        assert tile.nrows == 2 * tile.ncols
    # Fig. 1(g,h): B tiles are short and fat — ncols = l * nrows
    for rank in range(8):
        tile = extract_b_tile(a, grid, rank)
        assert tile.ncols == 2 * tile.nrows
    # Fig. 1(i): with b=2 each batch owns one block per layer
    blocks = batch_layer_blocks(8, 2, 2, 0)
    assert len(blocks) == 2
    assert blocks == [(0, 2), (4, 6)]   # interleaved with batch 1's blocks
    benchmark(lambda: [extract_a_tile(a, grid, r) for r in range(8)])


def test_fig2_execution_trace(benchmark):
    """One batch through the seven steps of Fig. 2, on the Fig. 1 grid."""
    n = 16
    a = random_sparse(n, n, nnz=80, seed=402)
    tracker = CommTracker()
    result = batched_summa3d(
        a, a, nprocs=8, layers=2, batches=2, tracker=tracker
    )
    assert result.matrix.allclose(multiply(a, a))
    steps_seen = {e.step for e in tracker.events}
    trace = [
        [s, tracker.message_count(s), tracker.total_bytes(s)]
        for s in ("A-Broadcast", "B-Broadcast", "AllToAll-Fiber")
    ]
    print_series(
        "Fig. 2: communication trace of the 2x2x2, b=2 execution",
        ["step", "collectives", "bytes moved"],
        trace,
    )
    # the figure's step inventory, in communication terms
    assert {"A-Broadcast", "B-Broadcast", "AllToAll-Fiber"} <= steps_seen
    # per batch: 2 SUMMA stages x 2 rows x 2 layers = 8 bcasts each of A
    # and B; 4 fibers exchange once -> over 2 batches: 16 / 16 / 8
    assert tracker.message_count("A-Broadcast") == 16
    assert tracker.message_count("B-Broadcast") == 16
    assert tracker.message_count("AllToAll-Fiber") == 8
    # computation steps present in the measured breakdown
    for step in ("Local-Multiply", "Merge-Layer", "Merge-Fiber"):
        assert step in result.step_times.seconds
    benchmark(lambda: batched_summa3d(a, a, nprocs=8, layers=2, batches=2))
