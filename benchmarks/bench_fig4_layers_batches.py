"""Fig. 4 — impact of layers (l) and batches (b) on each step.

The paper squares Friendster and Isolates-small while sweeping l in
{1, 4, 16} and b in {1..64}, showing per-step stacked bars.  Here the
same sweep runs on the simulated runtime with the scaled stand-ins; the
figure's observations are asserted on metered communication volumes (the
byte-exact quantity) and on the α–β model for the time axis.
"""

import pytest

from _helpers import print_series
from repro.data import load_dataset
from repro.model import CORI_KNL, predict_steps
from repro.simmpi import CommTracker
from repro.summa import batched_summa3d

STEPS = ("A-Broadcast", "B-Broadcast", "AllToAll-Fiber")


@pytest.fixture(scope="module")
def friendster():
    a, _ = load_dataset("friendster").operands(seed=0)
    return a


def _sweep(a, nprocs, configs):
    out = {}
    for layers, batches in configs:
        tracker = CommTracker()
        batched_summa3d(a, a, nprocs=nprocs, layers=layers, batches=batches,
                        tracker=tracker)
        agg = tracker.by_step()
        out[(layers, batches)] = {
            s: agg.get(s, {"total_bytes": 0})["total_bytes"] for s in STEPS
        }
    return out


def test_fig4_measured_sweep(friendster, benchmark):
    configs = [(1, 1), (1, 4), (4, 1), (4, 4), (16, 4)]
    sweep = _sweep(friendster, 16, configs)
    rows = [
        [f"l={l}, b={b}"] + [sweep[(l, b)][s] for s in STEPS]
        for (l, b) in configs
    ]
    print_series(
        "Fig. 4 (measured volumes, p=16, Friendster stand-in)",
        ["config"] + list(STEPS),
        rows,
    )
    # A-Broadcast grows ~linearly with b at fixed l
    assert sweep[(1, 4)]["A-Broadcast"] > 3 * sweep[(1, 1)]["A-Broadcast"]
    # ... and shrinks with l at fixed b
    assert sweep[(4, 4)]["A-Broadcast"] < sweep[(1, 4)]["A-Broadcast"]
    # B-Broadcast is b-invariant
    assert sweep[(1, 4)]["B-Broadcast"] < 1.35 * sweep[(1, 1)]["B-Broadcast"]
    # fiber exchange grows with l
    assert sweep[(16, 4)]["AllToAll-Fiber"] > sweep[(4, 4)]["AllToAll-Fiber"]
    benchmark(lambda: _sweep(friendster, 16, [(4, 2)]))


def test_fig4_modelled_paper_scale(benchmark):
    """The same sweep at the paper's 65,536-core scale via the model."""
    paper = load_dataset("friendster").paper
    stats = dict(nnz_a=int(paper.nnz_a), nnz_b=int(paper.nnz_a),
                 nnz_c=int(paper.nnz_c), flops=int(paper.flops))
    benchmark(lambda: predict_steps(
        CORI_KNL, nprocs=4096, layers=16, batches=16, **stats
    ))
    rows = []
    table = {}
    for layers in (1, 4, 16):
        for batches in (1, 16, 64):
            t = predict_steps(
                CORI_KNL, nprocs=4096, layers=layers, batches=batches, **stats
            )
            table[(layers, batches)] = t
            rows.append([
                f"l={layers}, b={batches}",
                round(t.get("A-Broadcast"), 2),
                round(t.get("B-Broadcast"), 3),
                round(t.get("Local-Multiply"), 2),
                round(t.get("AllToAll-Fiber"), 3),
                round(t.get("Merge-Fiber"), 3),
                round(t.total(), 2),
            ])
    print_series(
        "Fig. 4 (modelled, Friendster @ 65,536 cores)",
        ["config", "A-Bcast", "B-Bcast", "LocalMul", "AllToAll",
         "Merge-F", "total"],
        rows,
    )
    # paper observation: with b=64, going 1 -> 16 layers cuts A-Broadcast
    assert table[(16, 64)].get("A-Broadcast") < \
        table[(1, 64)].get("A-Broadcast") / 2
    # Local-Multiply time does not change with b
    assert table[(4, 64)].get("Local-Multiply") == pytest.approx(
        table[(4, 1)].get("Local-Multiply")
    )
