"""Fig. 14 — small matrix (Eukarya) at low concurrency.

The paper squares its smallest matrix on 16 and 256 nodes: on 16 nodes
communication is insignificant so SUMMA3D does not help (and 16 layers
even forces 2 batches); on 256 nodes a *moderate* layer count (4) wins,
while 16 layers stops helping because AllToAll-Fiber becomes the new
bottleneck.  Asserted on the model plus a live-simulator sanity check
that layering leaves the result untouched.
"""

import pytest

from _helpers import COMM_STEPS, print_series
from repro.data import load_dataset
from repro.model import CORI_KNL, predict_steps
from repro.sparse import multiply
from repro.summa import batched_summa3d


def test_fig14_low_concurrency_layer_sweep(benchmark):
    paper = load_dataset("eukarya").paper
    stats = dict(nnz_a=int(paper.nnz_a), nnz_b=int(paper.nnz_a),
                 nnz_c=int(paper.nnz_c), flops=int(paper.flops))
    rows = []
    table = {}
    for nodes, nprocs in ((16, 64), (256, 1024)):
        for layers in (1, 4, 16):
            t = predict_steps(
                CORI_KNL, nprocs=nprocs, layers=layers, batches=1, **stats
            )
            comm = sum(t.get(s) for s in COMM_STEPS)
            table[(nodes, layers)] = t
            rows.append([nodes, layers, round(comm, 2),
                         round(t.total() - comm, 2), round(t.total(), 2)])
    print_series(
        "Fig. 14 (modelled, Eukarya on Cori-KNL)",
        ["nodes", "l", "comm (s)", "comp (s)", "total (s)"],
        rows,
    )
    # on 16 nodes communication is a small share, so layers barely matter:
    # total(l=4) within 20% of total(l=1)
    t16 = {l: table[(16, l)].total() for l in (1, 4, 16)}
    assert abs(t16[4] - t16[1]) / t16[1] < 0.2
    # on 256 nodes l=4 helps ...
    t256 = {l: table[(256, l)].total() for l in (1, 4, 16)}
    assert t256[4] < t256[1]
    # ... but pushing to l=16 gives no real further improvement because
    # the fiber costs eat the broadcast savings
    assert t256[16] > t256[4] * 0.9
    benchmark(lambda: predict_steps(
        CORI_KNL, nprocs=1024, layers=4, batches=1, **stats
    ))


def test_fig14_live_simulator_correctness_across_layers(benchmark):
    """The layer sweep of Fig. 14, executed for real at small scale: every
    configuration returns the identical product."""
    a, _ = load_dataset("eukarya").operands(seed=0)
    expected = multiply(a, a)
    for nprocs, layers in ((16, 1), (16, 4), (16, 16)):
        r = batched_summa3d(a, a, nprocs=nprocs, layers=layers, batches=1)
        assert r.matrix.allclose(expected), (nprocs, layers)
    benchmark(lambda: batched_summa3d(a, a, nprocs=16, layers=4, batches=1))
