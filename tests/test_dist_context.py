"""Tests for the persistent distributed-matrix context."""

import pytest

from repro.dist import DistContext
from repro.errors import DistributionError, ShapeError
from repro.sparse import multiply, random_sparse
from repro.sparse.semiring import MIN_PLUS


@pytest.fixture(scope="module")
def matrix():
    return random_sparse(40, 40, nnz=420, seed=141)


@pytest.fixture
def ctx():
    return DistContext(nprocs=4, layers=1)


class TestHandles:
    def test_distribute_gather_roundtrip_a(self, ctx, matrix):
        h = ctx.distribute(matrix, "A")
        assert h.to_global().allclose(matrix)
        assert h.layout == "A"
        assert h.shape == (40, 40)

    def test_distribute_gather_roundtrip_b(self, ctx, matrix):
        h = ctx.distribute(matrix, "B")
        assert h.to_global().allclose(matrix)

    def test_nnz_sums_tiles(self, ctx, matrix):
        h = ctx.distribute(matrix)
        assert h.nnz == matrix.nnz

    def test_rectangular(self, ctx):
        m = random_sparse(30, 50, nnz=200, seed=142)
        for layout in ("A", "B"):
            assert ctx.distribute(m, layout).to_global().allclose(m)

    def test_unknown_layout(self, ctx, matrix):
        with pytest.raises(DistributionError):
            ctx.distribute(matrix, "Z")

    def test_free_invalidates(self, ctx, matrix):
        h = ctx.distribute(matrix)
        ctx.free(h)
        with pytest.raises(DistributionError):
            ctx.gather(h)

    def test_foreign_handle_rejected(self, ctx, matrix):
        other = DistContext(nprocs=4)
        h = other.distribute(matrix)
        with pytest.raises(DistributionError):
            ctx.gather(h)

    def test_memory_accounting(self, ctx, matrix):
        before = ctx.memory_bytes()
        ctx.distribute(matrix)
        assert ctx.memory_bytes() == before + matrix.nnz * 24

    def test_repr(self, ctx, matrix):
        assert "layout='A'" in repr(ctx.distribute(matrix))


class TestRedistribute:
    @pytest.mark.parametrize("nprocs,layers", [(4, 1), (8, 2), (16, 4)])
    def test_a_to_b_roundtrip(self, matrix, nprocs, layers):
        ctx = DistContext(nprocs=nprocs, layers=layers)
        ha = ctx.distribute(matrix, "A")
        hb = ctx.redistribute(ha, "B")
        assert hb.layout == "B"
        assert hb.to_global().allclose(matrix)
        back = ctx.redistribute(hb, "A")
        assert back.to_global().allclose(matrix)

    def test_same_layout_is_identity(self, ctx, matrix):
        h = ctx.distribute(matrix, "A")
        assert ctx.redistribute(h, "A") is h

    def test_redistribution_metered(self, matrix):
        ctx = DistContext(nprocs=4)
        h = ctx.distribute(matrix, "A")
        ctx.redistribute(h, "B")
        assert ctx.tracker.total_bytes("Redistribute") > 0

    def test_preserves_nnz(self, ctx, matrix):
        h = ctx.distribute(matrix, "A")
        assert ctx.redistribute(h, "B").nnz == matrix.nnz


class TestMultiply:
    @pytest.mark.parametrize("nprocs,layers", [(4, 1), (8, 2), (16, 4)])
    @pytest.mark.parametrize("batches", [1, 3])
    def test_matches_local(self, matrix, nprocs, layers, batches):
        ctx = DistContext(nprocs=nprocs, layers=layers)
        ha = ctx.distribute(matrix, "A")
        hb = ctx.distribute(matrix, "B")
        hc, result = ctx.multiply(ha, hb, batches=batches)
        assert hc.to_global().allclose(multiply(matrix, matrix))
        assert result.batches == batches
        assert result.matrix is None

    def test_chained_squaring(self, matrix):
        """The HipMCL pattern: square, redistribute, square again —
        no global matrix ever re-distributed from scratch."""
        ctx = DistContext(nprocs=4)
        ha = ctx.distribute(matrix, "A")
        hb = ctx.distribute(matrix, "B")
        hc, _ = ctx.multiply(ha, hb, batches=2)
        hc_b = ctx.redistribute(hc, "B")
        hc2, _ = ctx.multiply(ha, hc_b, batches=2)
        expected = multiply(matrix, multiply(matrix, matrix))
        assert hc2.to_global().allclose(expected)

    def test_layout_enforced(self, ctx, matrix):
        ha = ctx.distribute(matrix, "A")
        hb = ctx.distribute(matrix, "B")
        with pytest.raises(DistributionError):
            ctx.multiply(hb, hb)
        with pytest.raises(DistributionError):
            ctx.multiply(ha, ha)

    def test_shape_mismatch(self, ctx):
        a = ctx.distribute(random_sparse(10, 12, nnz=20, seed=143), "A")
        b = ctx.distribute(random_sparse(9, 10, nnz=20, seed=144), "B")
        with pytest.raises(ShapeError):
            ctx.multiply(a, b)

    def test_memory_budget_batching(self, matrix):
        ctx = DistContext(nprocs=4)
        ha = ctx.distribute(matrix, "A")
        hb = ctx.distribute(matrix, "B")
        budget = 8 * matrix.nnz * 24
        hc, result = ctx.multiply(ha, hb, batches=None, memory_budget=budget)
        assert result.batches >= 1
        assert hc.to_global().allclose(multiply(matrix, matrix))

    def test_semiring(self, ctx, matrix):
        ha = ctx.distribute(matrix, "A")
        hb = ctx.distribute(matrix, "B")
        hc, _ = ctx.multiply(ha, hb, semiring=MIN_PLUS)
        assert hc.to_global().allclose(multiply(matrix, matrix, semiring=MIN_PLUS))

    def test_rectangular_chain(self, ctx):
        a = random_sparse(24, 30, nnz=150, seed=145)
        b = random_sparse(30, 18, nnz=140, seed=146)
        ha = ctx.distribute(a, "A")
        hb = ctx.distribute(b, "B")
        hc, _ = ctx.multiply(ha, hb)
        assert hc.shape == (24, 18)
        assert hc.to_global().allclose(multiply(a, b))


class TestResidentPostprocess:
    def test_pruning_inside_resident_multiply(self, matrix):
        """HipMCL's access pattern on resident matrices: prune each batch
        of the product inside the multiply."""
        from repro.sparse.ops import prune_topk_per_column

        ctx = DistContext(nprocs=4)
        ha = ctx.distribute(matrix, "A")
        hb = ctx.distribute(matrix, "B")

        def prune(batch, c0, c1, block):
            return prune_topk_per_column(block, 5)

        hc, _ = ctx.multiply(ha, hb, batches=2, postprocess=prune)
        pruned = hc.to_global()
        expected = prune_topk_per_column(multiply(matrix, matrix), 5)
        assert pruned.allclose(expected)

    def test_resident_squaring_chain_with_pruning(self, matrix):
        from repro.sparse.ops import prune_topk_per_column

        def prune(batch, c0, c1, block):
            return prune_topk_per_column(block, 8)

        ctx = DistContext(nprocs=4)
        ha = ctx.distribute(matrix, "A")
        hb = ctx.distribute(matrix, "B")
        hc, _ = ctx.multiply(ha, hb, batches=2, postprocess=prune)
        hc2, _ = ctx.multiply(
            ctx.redistribute(hc, "A"), ctx.redistribute(hc, "B"),
            batches=2, postprocess=prune,
        )
        m1 = prune_topk_per_column(multiply(matrix, matrix), 8)
        m2 = prune_topk_per_column(multiply(m1, m1), 8)
        assert hc2.to_global().allclose(m2)


class TestDistributedTranspose:
    @pytest.mark.parametrize("nprocs,layers", [(4, 1), (16, 4)])
    def test_a_handle_becomes_bt(self, nprocs, layers):
        from repro.sparse import transpose

        a = random_sparse(36, 28, nnz=250, seed=351)
        ctx = DistContext(nprocs=nprocs, layers=layers)
        ha = ctx.distribute(a, "A")
        ht = ctx.transpose(ha)
        assert ht.layout == "B"
        assert ht.shape == (28, 36)
        assert ht.to_global().allclose(transpose(a))

    def test_b_handle_becomes_at(self):
        from repro.sparse import transpose

        a = random_sparse(30, 30, nnz=200, seed=352)
        ctx = DistContext(nprocs=4)
        hb = ctx.distribute(a, "B")
        ht = ctx.transpose(hb)
        assert ht.layout == "A"
        assert ht.to_global().allclose(transpose(a))

    def test_resident_aat(self):
        """The BELLA workload on resident matrices: A @ Aᵀ without ever
        assembling either operand globally."""
        from repro.sparse import multiply, transpose

        a = random_sparse(32, 48, nnz=300, seed=353)
        ctx = DistContext(nprocs=4)
        ha = ctx.distribute(a, "A")
        hat = ctx.transpose(ha)      # Aᵀ in B layout: ready to multiply
        hc, _ = ctx.multiply(ha, hat, batches=2)
        assert hc.to_global().allclose(multiply(a, transpose(a)))

    def test_transpose_metered(self):
        a = random_sparse(24, 24, nnz=120, seed=354)
        ctx = DistContext(nprocs=4)
        ctx.transpose(ctx.distribute(a, "A"))
        assert ctx.tracker.total_bytes("Transpose") > 0

    def test_double_transpose_roundtrip(self):
        a = random_sparse(26, 22, nnz=150, seed=355)
        ctx = DistContext(nprocs=4)
        h = ctx.distribute(a, "A")
        back = ctx.transpose(ctx.transpose(h))
        assert back.layout == "A"
        assert back.to_global().allclose(a)

    def test_rejects_product_layout(self):
        a = random_sparse(20, 20, nnz=100, seed=356)
        ctx = DistContext(nprocs=4)
        ha = ctx.distribute(a, "A")
        hb = ctx.distribute(a, "B")
        hc, _ = ctx.multiply(ha, hb, batches=3)
        if hc.layout == "C":
            with pytest.raises(DistributionError):
                ctx.transpose(hc)


class TestLifecycle:
    """Satellite (ISSUE 9): DistContext as a reusable, resource-safe
    context manager — close() always sweeps and is idempotent, closed
    contexts refuse work with a typed error, and the exception path
    cleans up too."""

    def test_context_manager_reuse_within_block(self, matrix):
        with DistContext(nprocs=4) as ctx:
            for _ in range(2):
                ha = ctx.distribute(matrix, "A")
                hb = ctx.distribute(matrix, "B")
                hc, _ = ctx.multiply(ha, hb, batches=2)
                assert hc.to_global().allclose(multiply(matrix, matrix))
                for h in (ha, hb, hc):
                    ctx.free(h)
            assert ctx.memory_bytes() == 0
        assert ctx.closed

    def test_closed_context_refuses_work(self, matrix):
        ctx = DistContext(nprocs=4)
        ctx.distribute(matrix, "A")
        ctx.close()
        with pytest.raises(DistributionError, match="closed"):
            ctx.distribute(matrix, "A")

    def test_close_is_idempotent_and_frees_tiles(self, matrix):
        ctx = DistContext(nprocs=4)
        ctx.distribute(matrix, "A")
        assert ctx.memory_bytes() > 0
        ctx.close()
        assert ctx.memory_bytes() == 0
        ctx.close()  # second close is a no-op
        assert ctx.closed

    def test_exception_path_still_closes(self, matrix):
        ctx = DistContext(nprocs=4)
        with pytest.raises(RuntimeError, match="boom"):
            with ctx:
                ctx.distribute(matrix, "A")
                raise RuntimeError("boom")
        assert ctx.closed
        assert ctx.memory_bytes() == 0

    def test_handle_operations_fail_after_close(self, matrix):
        ctx = DistContext(nprocs=4)
        h = ctx.distribute(matrix, "A")
        ctx.close()
        with pytest.raises(DistributionError):
            ctx.transpose(h)

    def test_process_world_close_sweeps_shm(self, matrix):
        """In the process world every run's shm segments are gone after
        close() — the serving pool relies on this for slot hygiene."""
        import glob

        def shm_names():
            return {
                n for n in map(
                    lambda p: p.rsplit("/", 1)[-1],
                    glob.glob("/dev/shm/repro_*"),
                )
            }

        before = shm_names()
        ctx = DistContext(nprocs=4, world="processes", timeout=60.0)
        try:
            ha = ctx.distribute(matrix, "A")
            hb = ctx.distribute(matrix, "B")
            hc, _ = ctx.multiply(ha, hb, batches=2)
            assert hc.to_global().allclose(multiply(matrix, matrix))
        finally:
            ctx.close()
        assert shm_names() <= before
        assert ctx.last_world_info.get("world") == "processes"
