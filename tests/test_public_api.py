"""Packaging-level tests of the public API surface.

Everything the package exports must be importable, documented, and
consistent — the contract a downstream user relies on before reading any
code.
"""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.sparse",
    "repro.simmpi",
    "repro.grid",
    "repro.summa",
    "repro.model",
    "repro.apps",
    "repro.data",
    "repro.dist",
    "repro.utils",
    "repro.cli",
]


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_exported_callables_documented(self):
        undocumented = [
            name for name in repro.__all__
            if callable(getattr(repro, name))
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_version_matches_changelog(self):
        assert repro.__version__ == "1.0.0"

    def test_error_hierarchy(self):
        from repro import (
            CommError,
            DistributionError,
            FormatError,
            GridError,
            MemoryBudgetError,
            PlannerError,
            ReproError,
            ShapeError,
            SpmdError,
        )

        for exc in (ShapeError, FormatError, GridError, DistributionError,
                    MemoryBudgetError, CommError, SpmdError, PlannerError):
            assert issubclass(exc, ReproError)


class TestSubpackages:
    @pytest.mark.parametrize("module", SUBPACKAGES)
    def test_importable_and_documented(self, module):
        mod = importlib.import_module(module)
        assert (mod.__doc__ or "").strip(), f"{module} lacks a docstring"

    @pytest.mark.parametrize("module", [
        "repro.sparse", "repro.simmpi", "repro.summa", "repro.model",
        "repro.apps", "repro.data", "repro.dist",
    ])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists {name}"


class TestScipyIsolation:
    def test_library_never_imports_scipy(self):
        """scipy is a test oracle only — the library must stand alone."""
        import subprocess
        import sys

        code = (
            "import sys\n"
            "sys.modules['scipy'] = None\n"  # poison the import
            "import repro\n"
            "import repro.apps, repro.dist, repro.model, repro.cli\n"
            "a = repro.random_sparse(10, 10, nnz=20, seed=1)\n"
            "r = repro.batched_summa3d(a, a, nprocs=4, batches=2)\n"
            "assert r.matrix.nnz > 0\n"
            "print('scipy-free OK')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
        )
        assert out.returncode == 0, out.stderr
        assert "scipy-free OK" in out.stdout
