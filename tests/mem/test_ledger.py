"""Unit tests for repro.mem — the MemoryLedger and its helpers."""

import numpy as np
import pytest

from repro.errors import MemoryBudgetExceededError, MemoryPressureError
from repro.mem import (
    CATEGORIES,
    ENFORCE_MODES,
    MemoryLedger,
    nbytes_of,
    resolve_budget,
)
from repro.sparse import random_sparse
from repro.sparse.dcsc import to_dcsc


class TestNbytesOf:
    def test_none_is_free(self):
        assert nbytes_of(None) == 0

    def test_sparse_matrix_at_r_per_nonzero(self):
        a = random_sparse(16, 16, nnz=40, seed=1)
        assert nbytes_of(a) == a.nbytes == 40 * 24

    def test_dcsc_counts_real_arrays(self):
        a = random_sparse(64, 64, nnz=30, seed=2)
        d = to_dcsc(a)
        assert nbytes_of(d) == d.nbytes

    def test_numpy_array(self):
        arr = np.zeros(10, dtype=np.float64)
        assert nbytes_of(arr) == 80

    def test_sequences_sum(self):
        a = random_sparse(8, 8, nnz=10, seed=3)
        assert nbytes_of([a, a, None]) == 2 * a.nbytes
        assert nbytes_of((a,)) == a.nbytes

    def test_unknown_objects_are_free(self):
        assert nbytes_of(object()) == 0


class TestResolveBudget:
    def test_aggregate_to_per_rank(self):
        assert resolve_budget(4000, None, 4) == (4000, 1000)

    def test_per_rank_to_aggregate(self):
        assert resolve_budget(None, 1000, 4) == (4000, 1000)

    def test_neither(self):
        assert resolve_budget(None, None, 4) == (None, None)

    def test_both_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_budget(4000, 1000, 4)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            resolve_budget(0, None, 4)
        with pytest.raises(ValueError):
            resolve_budget(None, -5, 4)


class TestLedgerAccounting:
    def test_acquire_release_moves_current(self):
        led = MemoryLedger()
        h = led.acquire("a_piece", 100)
        assert led.current("a_piece") == 100
        assert led.current_total == 100
        led.release(h)
        assert led.current_total == 0
        assert led.high_water_total == 100  # marks are monotone

    def test_release_is_idempotent_and_none_safe(self):
        led = MemoryLedger()
        h = led.acquire("recv_buffer", 50)
        led.release(h)
        led.release(h)  # double release: no-op, no negative charge
        led.release(None)
        assert led.current_total == 0

    def test_unknown_category_rejected(self):
        led = MemoryLedger()
        with pytest.raises(ValueError, match="unknown ledger category"):
            led.acquire("bogus", 10)
        with pytest.raises(ValueError, match="unknown ledger category"):
            led.touch("bogus", 10)

    def test_per_category_high_water_independent(self):
        led = MemoryLedger()
        a = led.acquire("a_piece", 100)
        led.release(a)
        led.acquire("b_piece", 60)
        assert led.high_water("a_piece") == 100
        assert led.high_water("b_piece") == 60
        assert led.high_water_total == 100

    def test_scope_releases_on_exception(self):
        led = MemoryLedger()
        with pytest.raises(RuntimeError):
            with led.scope("checkpoint", 500):
                assert led.current("checkpoint") == 500
                raise RuntimeError("boom")
        assert led.current("checkpoint") == 0
        assert led.high_water("checkpoint") == 500

    def test_touch_moves_marks_not_current(self):
        led = MemoryLedger()
        led.touch("recv_buffer", 300)
        assert led.current_total == 0
        assert led.high_water("recv_buffer") == 300
        assert led.high_water_total == 300

    def test_resize_adjusts_live_allocation(self):
        led = MemoryLedger()
        h = led.acquire("output_batch", 100)
        led.resize(h, 40)
        assert led.current("output_batch") == 40
        assert led.high_water("output_batch") == 100
        led.release(h)
        assert led.current_total == 0
        with pytest.raises(ValueError, match="released"):
            led.resize(h, 10)

    def test_overrelease_is_an_accounting_bug(self):
        led = MemoryLedger()
        h = led.acquire("merge_scratch", 10)
        h.nbytes = 20  # corrupt the handle to force a negative balance
        with pytest.raises(ValueError, match="negative"):
            led.release(h)

    def test_batch_peaks(self):
        led = MemoryLedger()
        led.enter_batch(0)
        h0 = led.acquire("merge_scratch", 100)
        led.release(h0)
        led.enter_batch(1)
        led.acquire("merge_scratch", 30)
        peaks = led.report()["batch_peaks"]
        assert peaks[0] == 100
        assert peaks[1] == 30


class TestEnforcement:
    def test_off_never_raises(self):
        led = MemoryLedger(budget=10, enforce="off")
        led.acquire("a_piece", 100)
        led.check(batch=0, stage=0)

    def test_strict_raises_deterministically(self):
        led = MemoryLedger(rank=3, budget=50, enforce="strict", batches=2)
        led.acquire("a_piece", 60)
        with pytest.raises(MemoryBudgetExceededError) as exc_info:
            led.check(batch=1, stage=0)
        err = exc_info.value
        assert isinstance(err, MemoryPressureError)  # degradation path
        assert err.batches == 2
        assert err.context["rank"] == 3
        assert err.context["high_water_total"] == 60
        assert err.context["budget_per_rank"] == 50

    def test_strict_under_budget_passes(self):
        led = MemoryLedger(budget=100, enforce="strict")
        led.acquire("a_piece", 100)
        led.check(batch=0, stage=0)

    def test_warn_records_once(self):
        led = MemoryLedger(rank=1, budget=50, enforce="warn")
        led.acquire("a_piece", 60)
        led.check(batch=0, stage=0)
        led.check(batch=0, stage=1)
        warnings = led.report()["warnings"]
        assert len(warnings) == 1
        assert warnings[0]["rank"] == 1

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="enforce"):
            MemoryLedger(enforce="shout")
        assert set(ENFORCE_MODES) == {"off", "warn", "strict"}


class TestReports:
    def test_report_shape(self):
        led = MemoryLedger(rank=0, budget=1000, enforce="warn")
        led.acquire("a_piece", 10)
        rep = led.report()
        assert rep["rank"] == 0
        assert rep["budget_per_rank"] == 1000
        assert rep["enforce"] == "warn"
        assert rep["categories"] == {"a_piece": {"high_water": 10, "current": 10}}
        # untouched categories are omitted from the report
        assert "recv_buffer" not in rep["categories"]

    def test_merge_takes_maxima(self):
        reports = []
        for rank, (a_bytes, r_bytes) in enumerate([(100, 30), (80, 70)]):
            led = MemoryLedger(rank=rank)
            led.enter_batch(0)
            led.acquire("a_piece", a_bytes)
            led.touch("recv_buffer", r_bytes)
            reports.append(led.report())
        merged = MemoryLedger.merge_reports(reports)
        assert merged["high_water_total"] == 150  # rank 1: 80 + 70
        assert merged["per_rank_high_water"] == [130, 150]
        assert merged["categories"]["a_piece"]["high_water"] == 100
        assert merged["categories"]["recv_buffer"]["high_water"] == 70
        assert merged["batch_peaks"][0] == 150

    def test_merge_empty(self):
        merged = MemoryLedger.merge_reports([])
        assert merged["high_water_total"] == 0
        assert merged["categories"] == {}

    def test_all_categories_known(self):
        assert CATEGORIES == (
            "a_piece", "b_piece", "recv_buffer", "merge_scratch",
            "output_batch", "checkpoint",
        )
