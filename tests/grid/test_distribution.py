"""Tests for the 3D distribution index arithmetic (paper Fig. 1)."""

import numpy as np
import pytest

from repro.errors import DistributionError
from repro.grid import ProcGrid3D
from repro.grid.distribution import (
    a_tile_range,
    b_tile_range,
    batch_layer_blocks,
    batch_local_columns,
    c_tile_columns,
    extract_a_tile,
    extract_b_tile,
    gather_tiles,
    nested_slice,
)
from repro.sparse import SparseMatrix, random_sparse


class TestNestedSlice:
    def test_divisible(self):
        # 12 cols, 2 super-blocks, 3 slices: super 1 slice 0 = [6, 8)
        assert nested_slice(12, 2, 1, 3, 0) == (6, 8)

    def test_non_divisible(self):
        # 10 into 3 super-blocks: [0,4) [4,7) [7,10); block 0 into 2: [0,2) [2,4)
        assert nested_slice(10, 3, 0, 2, 1) == (2, 4)

    def test_covers_dimension(self):
        n, outer, inner = 23, 3, 4
        spans = [
            nested_slice(n, outer, j, inner, k)
            for j in range(outer)
            for k in range(inner)
        ]
        covered = sorted(spans)
        assert covered[0][0] == 0 and covered[-1][1] == n
        for (s0, e0), (s1, _e1) in zip(covered, covered[1:]):
            assert e0 == s1


@pytest.mark.parametrize("nprocs,layers", [(1, 1), (4, 1), (8, 2), (16, 4), (4, 4)])
class TestTileCoverage:
    def test_a_tiles_partition(self, nprocs, layers):
        grid = ProcGrid3D(nprocs, layers)
        a = random_sparse(37, 41, nnz=300, seed=1)
        total = 0
        seen = set()
        for rank in range(nprocs):
            tile = extract_a_tile(a, grid, rank)
            total += tile.nnz
            i, j, k = grid.coords(rank)
            r0, r1, c0, c1 = a_tile_range(grid, 37, 41, i, j, k)
            assert tile.shape == (r1 - r0, c1 - c0)
            seen.add((r0, r1, c0, c1))
        assert total == a.nnz
        assert len(seen) == nprocs

    def test_b_tiles_partition(self, nprocs, layers):
        grid = ProcGrid3D(nprocs, layers)
        b = random_sparse(41, 29, nnz=250, seed=2)
        total = sum(
            extract_b_tile(b, grid, rank).nnz for rank in range(nprocs)
        )
        assert total == b.nnz

    def test_gather_reconstructs_a(self, nprocs, layers):
        grid = ProcGrid3D(nprocs, layers)
        a = random_sparse(37, 41, nnz=300, seed=3)
        pieces = []
        for rank in range(nprocs):
            i, j, k = grid.coords(rank)
            r0, _r1, c0, _c1 = a_tile_range(grid, 37, 41, i, j, k)
            pieces.append((r0, c0, extract_a_tile(a, grid, rank)))
        assert gather_tiles(37, 41, pieces).allclose(a)

    def test_inner_dimension_alignment(self, nprocs, layers):
        """A's stage-s column block must equal B's stage-s row block."""
        grid = ProcGrid3D(nprocs, layers)
        n = 33
        for k in range(layers):
            for s in range(grid.stages):
                _r0, _r1, ac0, ac1 = a_tile_range(grid, n, n, 0, s, k)
                br0, br1, _c0, _c1 = b_tile_range(grid, n, n, s, 0, k)
                assert (ac0, ac1) == (br0, br1)


class TestBatchBlocks:
    def test_blocks_cover_batches(self):
        width, b, l = 29, 3, 4
        cols = np.concatenate(
            [batch_local_columns(width, b, l, batch) for batch in range(b)]
        )
        assert np.array_equal(np.sort(cols), np.arange(width))

    def test_block_cyclic_structure(self):
        # width 12, 2 batches, 3 layers: bounds at multiples of 2
        blocks = batch_layer_blocks(12, 2, 3, 0)
        assert blocks == [(0, 2), (4, 6), (8, 10)]
        blocks = batch_layer_blocks(12, 2, 3, 1)
        assert blocks == [(2, 4), (6, 8), (10, 12)]

    def test_single_batch_is_layer_slices(self):
        assert batch_layer_blocks(10, 1, 2, 0) == [(0, 5), (5, 10)]

    def test_batch_out_of_range(self):
        with pytest.raises(DistributionError):
            batch_layer_blocks(10, 2, 2, 5)

    def test_c_columns_consistent_with_blocks(self):
        grid = ProcGrid3D(8, layers=2)
        ncols, batches = 26, 3
        spans = []
        for batch in range(batches):
            for j in range(grid.pc):
                for k in range(grid.layers):
                    spans.append(c_tile_columns(grid, ncols, batches, batch, j, k))
        covered = sorted(spans)
        assert covered[0][0] == 0 and covered[-1][1] == ncols
        for (s0, e0), (s1, _) in zip(covered, covered[1:]):
            assert e0 == s1

    def test_width_smaller_than_blocks(self):
        # degenerate: more blocks than columns -> some empty blocks, no crash
        blocks = batch_layer_blocks(3, 4, 2, 3)
        assert all(e >= s for s, e in blocks)


class TestGatherTiles:
    def test_empty(self):
        assert gather_tiles(4, 4, []).nnz == 0

    def test_overlap_detected(self):
        t = SparseMatrix.from_coo(2, 2, [0], [0], [1.0])
        with pytest.raises(DistributionError):
            gather_tiles(4, 4, [(0, 0, t), (0, 0, t)])

    def test_offsets_applied(self):
        t = SparseMatrix.from_coo(2, 2, [1], [1], [5.0])
        out = gather_tiles(4, 4, [(2, 2, t)])
        assert out.to_dense()[3, 3] == 5.0
