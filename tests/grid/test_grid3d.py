"""Tests for process-grid geometry and communicator construction."""

import pytest

from repro.errors import GridError
from repro.grid import ProcGrid3D
from repro.grid.grid3d import GridComms
from repro.simmpi import run_spmd


class TestGeometry:
    def test_shape_2d(self):
        g = ProcGrid3D(9, layers=1)
        assert g.shape == (3, 3, 1)
        assert g.stages == 3

    def test_shape_3d(self):
        g = ProcGrid3D(16, layers=4)
        assert g.shape == (2, 2, 4)

    def test_single_process(self):
        g = ProcGrid3D(1)
        assert g.shape == (1, 1, 1)

    def test_all_layers(self):
        g = ProcGrid3D(4, layers=4)
        assert g.shape == (1, 1, 4)

    def test_coords_rank_roundtrip(self):
        g = ProcGrid3D(18, layers=2)
        for rank in range(18):
            i, j, k = g.coords(rank)
            assert g.rank_of(i, j, k) == rank

    def test_coords_layer_major(self):
        g = ProcGrid3D(8, layers=2)
        assert g.coords(0) == (0, 0, 0)
        assert g.coords(3) == (1, 1, 0)
        assert g.coords(4) == (0, 0, 1)

    def test_invalid_nprocs(self):
        with pytest.raises(GridError):
            ProcGrid3D(0)
        with pytest.raises(GridError):
            ProcGrid3D(-4)

    def test_invalid_layers(self):
        with pytest.raises(GridError):
            ProcGrid3D(4, layers=0)
        with pytest.raises(GridError):
            ProcGrid3D(4, layers=3)

    def test_non_square_layer(self):
        with pytest.raises(GridError, match="perfect square"):
            ProcGrid3D(8, layers=1)

    def test_rank_out_of_range(self):
        g = ProcGrid3D(4)
        with pytest.raises(GridError):
            g.coords(4)
        with pytest.raises(GridError):
            g.rank_of(2, 0, 0)

    def test_equality_hash(self):
        assert ProcGrid3D(8, 2) == ProcGrid3D(8, 2)
        assert ProcGrid3D(8, 2) != ProcGrid3D(16, 4)
        assert hash(ProcGrid3D(4)) == hash(ProcGrid3D(4))

    def test_repr(self):
        assert "2x2x2" in repr(ProcGrid3D(8, 2))


class TestGridComms:
    def test_comm_sizes(self):
        grid = ProcGrid3D(16, layers=4)

        def prog(comm):
            comms = GridComms.build(comm, grid)
            return (comms.row.size, comms.col.size, comms.fiber.size,
                    comms.layer.size)

        out = run_spmd(16, prog)
        assert all(o == (2, 2, 4, 4) for o in out)

    def test_local_ranks_match_grid_coords(self):
        grid = ProcGrid3D(8, layers=2)

        def prog(comm):
            comms = GridComms.build(comm, grid)
            i, j, k = grid.coords(comm.rank)
            return (
                comms.row.rank == j,
                comms.col.rank == i,
                comms.fiber.rank == k,
                (comms.i, comms.j, comms.k) == (i, j, k),
            )

        assert all(all(o) for o in run_spmd(8, prog))

    def test_row_comm_members_share_row_and_layer(self):
        grid = ProcGrid3D(16, layers=4)

        def prog(comm):
            comms = GridComms.build(comm, grid)
            members = comms.row.allgather(comm.rank)
            coords = [grid.coords(m) for m in members]
            return all(
                c[0] == comms.i and c[2] == comms.k for c in coords
            )

        assert all(run_spmd(16, prog))

    def test_fiber_members_share_row_col(self):
        grid = ProcGrid3D(16, layers=4)

        def prog(comm):
            comms = GridComms.build(comm, grid)
            members = comms.fiber.allgather(comm.rank)
            coords = [grid.coords(m) for m in members]
            return all(
                c[0] == comms.i and c[1] == comms.j for c in coords
            )

        assert all(run_spmd(16, prog))

    def test_world_size_mismatch(self):
        grid = ProcGrid3D(4)

        def prog(comm):
            GridComms.build(comm, grid)

        with pytest.raises(Exception):
            run_spmd(9, prog)
