"""SpgemmService behaviour in the threaded world: correctness of every
job kind, deadlines/cancellation, overload classification, fair-share
under sustained pressure, and resident-context hygiene."""

import threading
import time

import numpy as np
import pytest

from repro.data.generators import erdos_renyi
from repro.errors import (
    AdmissionRejected,
    DeadlineExceededError,
    JobCancelledError,
    ServeError,
)
from repro.serve import SpgemmService
from repro.sparse import random_sparse
from repro.summa import batched_summa3d


@pytest.fixture(scope="module")
def a():
    return erdos_renyi(60, avg_degree=4.0, seed=21)


def assert_bit_identical(m, ref):
    assert np.array_equal(m.indptr, ref.indptr)
    assert np.array_equal(m.rowidx, ref.rowidx)
    assert np.array_equal(m.values, ref.values)


class TestJobKinds:
    def test_multiply_matches_direct_run(self, a):
        with SpgemmService(grids=1, nprocs=4) as svc:
            r = svc.submit(tenant="t", a=a).result(timeout=30)
            ref = batched_summa3d(
                a, a, nprocs=4, layers=r.plan["layers"],
                batches=r.plan["batches"], comm_backend=r.plan["backend"],
            )
            assert_bit_identical(r.matrix, ref.matrix)
            assert r.latency_s > 0 and r.queued_s >= 0
            assert r.slot == 0

    def test_masked_spgemm(self, a):
        mask = random_sparse(60, 60, nnz=200, seed=22)
        with SpgemmService(grids=1, nprocs=4) as svc:
            r = svc.submit(
                tenant="t", a=a, kind="masked_spgemm", mask=mask
            ).result(timeout=30)
            ref = batched_summa3d(
                a, a, nprocs=4, layers=r.plan["layers"],
                batches=r.plan["batches"], kernel="masked_spgemm",
                mask=mask,
            )
            assert_bit_identical(r.matrix, ref.matrix)

    def test_spmm(self, a):
        x = np.random.default_rng(23).standard_normal((a.ncols, 6))
        with SpgemmService(grids=1, nprocs=4) as svc:
            r = svc.submit(tenant="t", a=a, b=x, kind="spmm").result(
                timeout=30
            )
            assert r.matrix.shape == (a.nrows, 6)
            ref = batched_summa3d(
                a, x, nprocs=4, layers=r.plan["layers"],
                batches=r.plan["batches"], kernel="spmm",
            )
            assert np.array_equal(r.matrix, ref.matrix)

    def test_square_chain_runs_on_resident_grid(self, a):
        with SpgemmService(grids=1, nprocs=4) as svc:
            r = svc.submit(
                tenant="t", a=a, kind="square_chain", rounds=2
            ).result(timeout=60)
            assert r.matrix.nnz > 0
            slot_ctx = svc.pool.slots[0]._ctx
            assert slot_ctx is not None
            # the resident context must not accumulate tiles across jobs
            assert slot_ctx.memory_bytes() == 0

    def test_repeat_traffic_hits_the_plan_cache(self, a):
        with SpgemmService(grids=1, nprocs=4) as svc:
            r1 = svc.submit(tenant="t", a=a).result(timeout=30)
            r2 = svc.submit(tenant="t", a=a).result(timeout=30)
            assert not r1.cache_hit and r2.cache_hit
            assert_bit_identical(r1.matrix, r2.matrix)
            assert svc.stats()["plan_cache"]["hits"] >= 1


class TestDeadlinesAndCancellation:
    def test_queued_deadline_expires_classified(self, a):
        svc = SpgemmService(grids=1, nprocs=4, auto_start=False)
        # workers are not running yet: the job can only sit in the queue
        h = svc.submit(tenant="t", a=a, deadline_s=0.05)
        time.sleep(0.15)
        svc.start()
        with pytest.raises(DeadlineExceededError) as info:
            h.result(timeout=10)
        assert info.value.phase == "queued"
        assert info.value.context["tenant"] == "t"
        assert h.state == "expired"
        svc.shutdown()

    def test_cancel_while_queued(self, a):
        svc = SpgemmService(grids=1, nprocs=4, auto_start=False)
        h = svc.submit(tenant="t", a=a)
        assert h.cancel()
        with pytest.raises(JobCancelledError):
            h.result(timeout=5)
        assert h.state == "cancelled"
        assert not h.cancel()  # idempotent: already terminal
        svc.shutdown()

    def test_shutdown_cancels_queued_jobs(self, a):
        svc = SpgemmService(grids=1, nprocs=4)
        h = svc.submit(tenant="t", a=a)
        svc.shutdown()
        # either it ran before the drain or it was cancelled — never hangs
        try:
            r = h.result(timeout=10)
            assert r.matrix is not None
        except (JobCancelledError, ServeError):
            pass

    def test_submit_after_shutdown_is_classified(self, a):
        svc = SpgemmService(grids=1, nprocs=4)
        svc.start()
        svc.shutdown()
        with pytest.raises(AdmissionRejected) as info:
            svc.submit(tenant="t", a=a)
        assert info.value.reason == "shutdown"


class TestOverloadAndFairness:
    def test_sustained_overload_sheds_classified_only(self, a):
        """At well past admission capacity every refusal is a classified
        AdmissionRejected and every accepted job completes."""
        with SpgemmService(
            grids=1, nprocs=4, queue_capacity=3, max_backlog_s=1e9,
        ) as svc:
            handles, rejected = [], []
            for _ in range(40):
                try:
                    handles.append(svc.submit(tenant="flood", a=a))
                except AdmissionRejected as exc:
                    rejected.append(exc)
            assert rejected, "burst beyond queue capacity must shed"
            assert all(e.reason == "queue-full" for e in rejected)
            done = [h.result(timeout=60) for h in handles]
            assert all(r.matrix is not None for r in done)

    def test_fair_share_keeps_every_tenant_flowing(self, a):
        """Three tenants flooding concurrently: all of them complete
        work (DRR), none is starved by the others' backlog."""
        completed = {"t0": 0, "t1": 0, "t2": 0}
        lock = threading.Lock()
        with SpgemmService(
            grids=2, nprocs=4, queue_capacity=4, max_backlog_s=1e9,
        ) as svc:
            def flood(tenant):
                for _ in range(10):
                    try:
                        h = svc.submit(tenant=tenant, a=a)
                        h.result(timeout=60)
                        with lock:
                            completed[tenant] += 1
                    except AdmissionRejected:
                        time.sleep(0.005)
            threads = [
                threading.Thread(target=flood, args=(t,)) for t in completed
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
        assert all(n > 0 for n in completed.values()), completed

    def test_tenant_budget_frees_after_completion(self, a):
        with SpgemmService(grids=1, nprocs=4) as svc:
            svc.register_tenant("t", memory_budget=1 << 40)
            svc.submit(tenant="t", a=a).result(timeout=30)
            admission = svc.stats()["admission"]["tenants"]["t"]
            assert admission["completed"] == 1
            assert admission["in_flight_bytes"] == 0


class TestStats:
    def test_stats_shape(self, a):
        with SpgemmService(grids=2, nprocs=4) as svc:
            svc.submit(tenant="t", a=a).result(timeout=30)
            s = svc.stats()
        assert s["counters"]["completed"] == 1
        assert s["latency_s"]["p50"] is not None
        assert s["latency_s"]["p99"] >= s["latency_s"]["p50"]
        assert len(s["slots"]) == 2
        for slot in s["slots"]:
            assert slot["breaker"]["state"] == "healthy"
        assert s["throughput_jobs_per_s"] is None or (
            s["throughput_jobs_per_s"] >= 0
        )
