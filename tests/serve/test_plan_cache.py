"""Plan-cache keying, invalidation, and the cached-plan-is-harmless
property (ISSUE 9 satellite: sketch equality/miss behaviour, invalidation
on kernel/backend/overlap/sparsity change, and a property test that a
cached plan never changes the product)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import erdos_renyi
from repro.errors import PlannerError
from repro.serve import MatrixSketch, PlanCache, sketch_of
from repro.sparse import SparseMatrix, random_sparse
from repro.summa import batched_summa3d


@pytest.fixture(scope="module")
def a():
    return erdos_renyi(80, avg_degree=5.0, seed=3)


@pytest.fixture(scope="module")
def b():
    return erdos_renyi(80, avg_degree=4.0, seed=4)


class TestSketch:
    def test_same_structure_same_sketch(self, a):
        clone = SparseMatrix(
            a.nrows, a.ncols, a.indptr.copy(), a.rowidx.copy(),
            a.values.copy(),
        )
        assert sketch_of(a) == sketch_of(clone)

    def test_values_do_not_enter_the_sketch(self, a):
        """Plans are value-independent, so the sketch must be too —
        that is what makes caching across HipMCL iterations sound."""
        scaled = SparseMatrix(
            a.nrows, a.ncols, a.indptr, a.rowidx, a.values * 3.7,
        )
        assert sketch_of(a) == sketch_of(scaled)

    def test_sparsity_change_moves_the_sketch(self, a):
        sk = sketch_of(a)
        dropped = SparseMatrix(  # same shape, column 0 emptied
            a.nrows, a.ncols,
            np.concatenate([[0], a.indptr[1:] - a.indptr[1]]),
            a.rowidx[a.indptr[1]:],
            a.values[a.indptr[1]:],
        )
        assert sketch_of(dropped) != sk

    def test_shape_change_moves_the_sketch(self, a):
        wider = SparseMatrix(
            a.nrows, a.ncols + 1,
            np.concatenate([a.indptr, a.indptr[-1:]]),
            a.rowidx, a.values,
        )
        assert sketch_of(wider) != sketch_of(a)

    def test_dense_panel_sketch_is_geometry_only(self):
        x = np.ones((40, 8))
        y = np.random.default_rng(0).standard_normal((40, 8))
        assert sketch_of(x) == sketch_of(y)
        assert sketch_of(x) != sketch_of(np.ones((40, 9)))
        assert sketch_of(x).kind == "dense"

    def test_sketch_is_hashable(self, a):
        sk = sketch_of(a)
        assert isinstance(sk, MatrixSketch)
        assert len({sk, sketch_of(a)}) == 1


class TestCacheKeying:
    def test_hit_on_repeat_traffic(self, a, b):
        cache = PlanCache()
        p1, hit1 = cache.plan(a, b, nprocs=4)
        p2, hit2 = cache.plan(a, b, nprocs=4)
        assert (hit1, hit2) == (False, True)
        assert p2 is p1
        assert cache.stats() == {
            "size": 1, "capacity": 128, "hits": 1, "misses": 1,
            "evictions": 0,
        }

    @pytest.mark.parametrize("change", [
        dict(kernel="masked_spgemm"),
        dict(backend="sparse"),
        dict(overlap="depth1"),
        dict(nprocs=16),
        dict(memory_budget=1 << 30),
    ])
    def test_config_change_misses(self, a, b, change):
        cache = PlanCache()
        base = dict(nprocs=4, memory_budget=None, kernel="spgemm",
                    backend="dense", overlap="off")
        k1 = cache.key(a, b, **base)
        k2 = cache.key(a, b, **{**base, **change})
        assert k1 != k2

    def test_sparsity_change_misses(self, a):
        cache = PlanCache()
        cache.plan(a, a, nprocs=4)
        denser = erdos_renyi(80, avg_degree=9.0, seed=5)
        _, hit = cache.plan(denser, denser, nprocs=4)
        assert not hit
        assert cache.stats()["misses"] == 2

    def test_mask_is_part_of_the_key(self, a, b):
        m1 = random_sparse(80, 80, nnz=100, seed=6)
        m2 = random_sparse(80, 80, nnz=100, seed=7)
        k1 = PlanCache.key(a, b, nprocs=4, memory_budget=None,
                           kernel="masked_spgemm", mask=m1)
        k2 = PlanCache.key(a, b, nprocs=4, memory_budget=None,
                           kernel="masked_spgemm", mask=m2)
        assert k1 != k2

    def test_lru_eviction(self, a):
        cache = PlanCache(capacity=2)
        mats = [erdos_renyi(40, avg_degree=3.0, seed=s) for s in range(3)]
        for m in mats:
            cache.plan(m, m, nprocs=4)
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        # oldest (mats[0]) was evicted; re-planning misses
        _, hit = cache.plan(mats[0], mats[0], nprocs=4)
        assert not hit

    def test_infeasible_is_classified_and_not_cached(self, a, b):
        cache = PlanCache()
        tiny = 1024  # cannot even hold the inputs
        with pytest.raises(PlannerError):
            cache.plan(a, b, nprocs=4, memory_budget=tiny)
        assert cache.stats()["size"] == 0


class TestCachedPlanNeverChangesProduct:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=50),
        degree=st.floats(min_value=2.0, max_value=6.0),
    )
    def test_property(self, seed, degree):
        """The product under a cached plan is bit-identical to the
        product under a freshly computed plan — caching is a pure
        optimisation, never a semantic change."""
        m = erdos_renyi(48, avg_degree=degree, seed=seed)
        cache = PlanCache()
        fresh, hit1 = cache.plan(m, m, nprocs=4)
        cached, hit2 = cache.plan(m, m, nprocs=4)
        assert (hit1, hit2) == (False, True)
        assert (cached.layers, cached.batches, cached.backend) == (
            fresh.layers, fresh.batches, fresh.backend
        )
        r1 = batched_summa3d(m, m, nprocs=4, layers=fresh.layers,
                             batches=fresh.batches,
                             comm_backend=fresh.backend)
        r2 = batched_summa3d(m, m, nprocs=4, layers=cached.layers,
                             batches=cached.batches,
                             comm_backend=cached.backend)
        assert np.array_equal(r1.matrix.indptr, r2.matrix.indptr)
        assert np.array_equal(r1.matrix.rowidx, r2.matrix.rowidx)
        assert np.array_equal(r1.matrix.values, r2.matrix.values)
