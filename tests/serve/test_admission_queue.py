"""Admission gates, classified rejections, DRR fairness, and the circuit
breaker state machine — the serve layer's control plane, tested without
spinning up execution."""

import pytest

from repro.data.generators import erdos_renyi
from repro.errors import AdmissionRejected
from repro.serve import (
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    REJECT_REASONS,
    AdmissionController,
    CircuitBreaker,
    FairQueue,
    PlanCache,
)
from repro.serve.job import Job, JobSpec


@pytest.fixture(scope="module")
def a():
    return erdos_renyi(60, avg_degree=4.0, seed=11)


def controller(a, **kw):
    queue = FairQueue(capacity=kw.pop("capacity", 4))
    kw.setdefault("nprocs", 4)
    return AdmissionController(queue=queue, plan_cache=PlanCache(), **kw), queue


class TestAdmissionGates:
    def test_accept_returns_planned_job(self, a):
        ctrl, _ = controller(a)
        job = ctrl.admit(JobSpec(tenant="t", a=a))
        assert job.plan is not None
        assert job.cost_s > 0
        assert job.charge  # tenant ledger charged
        assert ctrl.tenant("t").in_flight_bytes() > 0
        ctrl.release(job, outcome="done")
        assert ctrl.tenant("t").in_flight_bytes() == 0

    def test_shutdown_reason(self, a):
        ctrl, _ = controller(a)
        with pytest.raises(AdmissionRejected) as info:
            ctrl.admit(JobSpec(tenant="t", a=a), shutting_down=True)
        assert info.value.reason == "shutdown"
        assert info.value.context["tenant"] == "t"

    def test_queue_full_reason(self, a):
        ctrl, queue = controller(a, capacity=2)
        for _ in range(2):
            assert queue.push(ctrl.admit(JobSpec(tenant="t", a=a)))
        with pytest.raises(AdmissionRejected) as info:
            ctrl.admit(JobSpec(tenant="t", a=a))
        assert info.value.reason == "queue-full"
        assert info.value.context["capacity"] == 2
        # a different tenant is unaffected: the bound is per-tenant
        assert ctrl.admit(JobSpec(tenant="other", a=a)) is not None

    def test_overload_reason(self, a):
        ctrl, queue = controller(a, capacity=1000, max_backlog_s=1e-9)
        queue.push(ctrl.admit(JobSpec(tenant="t", a=a)))
        with pytest.raises(AdmissionRejected) as info:
            ctrl.admit(JobSpec(tenant="t", a=a))
        assert info.value.reason == "overload"

    def test_memory_reason(self, a):
        ctrl, _ = controller(a, memory_budget=2048)
        with pytest.raises(AdmissionRejected) as info:
            ctrl.admit(JobSpec(tenant="t", a=a))
        assert info.value.reason == "memory"
        assert info.value.context["memory_budget"] == 2048

    def test_tenant_budget_reason(self, a):
        ctrl, _ = controller(a)
        ctrl.register_tenant("poor", memory_budget=1)
        with pytest.raises(AdmissionRejected) as info:
            ctrl.admit(JobSpec(tenant="poor", a=a))
        assert info.value.reason == "tenant-budget"
        assert info.value.context["tenant_budget"] == 1

    def test_deadline_reason_after_calibration(self, a):
        ctrl, queue = controller(a, max_backlog_s=1e6)
        # before calibration the gate abstains (no wall model yet)
        job = ctrl.admit(JobSpec(tenant="t", a=a, deadline_s=1e-9))
        # one observation calibrates modelled -> wall
        ctrl.observe(modelled_s=job.cost_s, wall_s=10.0)
        queue.push(job)
        with pytest.raises(AdmissionRejected) as info:
            ctrl.admit(JobSpec(tenant="t", a=a, deadline_s=1e-9))
        assert info.value.reason == "deadline"

    def test_all_reasons_are_in_the_taxonomy(self, a):
        assert set(REJECT_REASONS) == {
            "queue-full", "overload", "deadline", "tenant-budget",
            "memory", "unsupported", "shutdown",
        }

    def test_rejection_context_is_uniform(self, a):
        ctrl, _ = controller(a, memory_budget=2048)
        with pytest.raises(AdmissionRejected) as info:
            ctrl.admit(JobSpec(tenant="t", a=a, label="my-job"))
        ctx = info.value.context
        assert ctx["reason"] == info.value.reason
        assert ctx["tenant"] == "t"
        assert ctx["job"] == "my-job"


def _job(tenant, cost, a):
    spec = JobSpec(tenant=tenant, a=a)
    job = Job(spec, cost_s=cost)
    return job


class TestFairQueue:
    def test_fifo_within_tenant(self, a):
        q = FairQueue(capacity=8)
        jobs = [_job("t", 0.01, a) for _ in range(3)]
        for j in jobs:
            assert q.push(j)
        assert [q.pop(0.1) for _ in range(3)] == jobs

    def test_bounded_per_tenant(self, a):
        q = FairQueue(capacity=2)
        assert q.push(_job("t", 1, a))
        assert q.push(_job("t", 1, a))
        assert not q.push(_job("t", 1, a))
        assert q.push(_job("u", 1, a))  # other tenants unaffected

    def test_drr_interleaves_unequal_tenants(self, a):
        """A tenant with expensive jobs cannot starve a cheap-job tenant:
        over a window, both make progress."""
        q = FairQueue(capacity=32, quantum_s=1.0)
        for _ in range(4):
            q.push(_job("big", 10.0, a))
        for _ in range(4):
            q.push(_job("small", 1.0, a))
        order = [q.pop(0.1).spec.tenant for _ in range(8)]
        # 'small' must not wait behind all of 'big''s backlog
        assert "small" in order[:2]
        # and both drain completely
        assert order.count("big") == 4 and order.count("small") == 4

    def test_drr_cost_share_is_fair(self, a):
        """Served cost per backlogged tenant tracks the (equal) quantum
        ratio: after N pops the cheap tenant has been served ~as much
        cost as the expensive one, i.e. many more jobs."""
        q = FairQueue(capacity=64, quantum_s=0.5)
        for _ in range(20):
            q.push(_job("big", 4.0, a))
        for _ in range(20):
            q.push(_job("small", 1.0, a))
        served = {"big": 0.0, "small": 0.0}
        jobs = {"big": 0, "small": 0}
        for _ in range(15):
            j = q.pop(0.1)
            served[j.spec.tenant] += j.cost_s
            jobs[j.spec.tenant] += 1
        assert jobs["small"] >= 3 * jobs["big"] - 2
        assert served["small"] >= served["big"] - 4.0

    def test_cancelled_jobs_drop_out(self, a):
        q = FairQueue(capacity=8)
        j1, j2 = _job("t", 1, a), _job("t", 1, a)
        q.push(j1)
        q.push(j2)
        j1.fail(RuntimeError("cancelled"), state="cancelled")
        assert q.pop(0.1) is j2

    def test_backlog_seconds_tracks_pushes_and_pops(self, a):
        q = FairQueue(capacity=8)
        q.push(_job("t", 2.0, a))
        q.push(_job("t", 3.0, a))
        assert q.backlog_seconds() == pytest.approx(5.0)
        q.pop(0.1)
        assert q.backlog_seconds() == pytest.approx(3.0)

    def test_pop_times_out_empty(self):
        q = FairQueue(capacity=2)
        assert q.pop(timeout=0.05) is None

    def test_close_wakes_poppers(self, a):
        q = FairQueue(capacity=2)
        q.close()
        assert q.pop(timeout=5.0) is None  # returns immediately
        assert not q.push(_job("t", 1, a))


class TestCircuitBreaker:
    def test_states_progress_and_reset(self):
        br = CircuitBreaker(degrade_after=2, quarantine_after=4)
        assert br.state == HEALTHY
        br.record_heal()
        assert br.state == HEALTHY
        br.record_heal()
        assert br.state == DEGRADED
        br.record_failure()
        assert br.state == QUARANTINED
        assert br.stats()["trips"] == 1
        br.reset()
        assert br.state == HEALTHY
        assert br.stats()["trips"] == 1  # history survives reset

    def test_shm_leaks_trip_fast(self):
        br = CircuitBreaker(degrade_after=2, quarantine_after=4)
        br.record_shm_leak()
        br.record_shm_leak()
        assert br.state == QUARANTINED

    def test_success_decays_the_score(self):
        br = CircuitBreaker(degrade_after=2, quarantine_after=4)
        br.record_heal()
        br.record_heal()
        assert br.state == DEGRADED
        br.record_success()
        assert br.state == HEALTHY
