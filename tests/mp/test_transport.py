"""Unit tests for the process-world wire formats (``repro.mp.transport``).

Everything here runs in one process: a single :class:`SegmentRegistry`
plays both sender and receiver, which exercises the exact encode /
adopt / view / release lifecycle the workers run, minus the queue hop.
"""

import gc

import numpy as np
import pytest

from repro.mp.shm import SegmentRegistry, leaked_segments
from repro.mp.transport import (
    AUTO_THRESHOLD,
    AutoTransport,
    NaiveTransport,
    ShmTransport,
    get_transport,
)
from repro.simmpi.serialization import payload_checksum, wrap_payload
from repro.sparse import random_sparse


@pytest.fixture
def registry(request):
    run_id = f"repro-test-{abs(hash(request.node.name)) % 10**8}"
    reg = SegmentRegistry(run_id, rank=0)
    yield reg
    # every test must leave /dev/shm clean for its run prefix
    gc.collect()
    reg.reap()
    reg.abandon()
    assert leaked_segments(run_id) == []


def roundtrip(transport, obj, receivers=1):
    wire = transport.encode(obj, receivers=receivers)
    return wire, transport.decode(wire)


PAYLOADS = [
    None,
    7,
    3.5,
    "stage-label",
    {"batch": 2, "sizes": [1, 2, 3]},
    (1, None, [True, "x"]),
]


class TestNaive:
    @pytest.mark.parametrize("obj", PAYLOADS)
    def test_python_payloads_pass_through(self, registry, obj):
        wire, out = roundtrip(NaiveTransport(registry), obj)
        assert wire[0] == "py"
        assert out == obj or (obj is None and out is None)

    def test_arrays_stay_inline(self, registry):
        arr = np.arange(10_000, dtype=np.float64)
        wire, out = roundtrip(NaiveTransport(registry), arr)
        assert wire[0] == "py"
        assert out is arr
        assert registry.segments == 0

    def test_stats_count_naive_traffic(self, registry):
        t = NaiveTransport(registry)
        t.encode(np.arange(8, dtype=np.float64))
        stats = t.stats()
        assert stats["naive_msgs"] == 1
        assert stats["naive_bytes"] == 64
        assert stats["shm_segments"] == 0


class TestShm:
    def test_ndarray_roundtrip_is_exact_and_readonly(self, registry):
        arr = np.arange(4096, dtype=np.int64).reshape(64, 64)
        wire, out = roundtrip(ShmTransport(registry), arr)
        assert wire[0] == "shm"
        assert out.dtype == arr.dtype and out.shape == arr.shape
        assert np.array_equal(out, arr)
        assert not out.flags.writeable
        with pytest.raises(ValueError):
            out[0, 0] = -1

    def test_sparse_matrix_roundtrip(self, registry):
        m = random_sparse(80, 60, nnz=500, seed=3)
        _, out = roundtrip(ShmTransport(registry), m)
        assert out.nrows == m.nrows and out.ncols == m.ncols
        assert np.array_equal(out.indptr, m.indptr)
        assert np.array_equal(out.rowidx, m.rowidx)
        assert np.array_equal(out.values, m.values)

    def test_envelope_crc_survives_the_segment(self, registry):
        env = wrap_payload(random_sparse(50, 50, nnz=300, seed=4))
        _, out = roundtrip(ShmTransport(registry), env)
        assert out.crc == env.crc
        assert payload_checksum(out.payload) == out.crc

    def test_nested_containers_share_one_segment(self, registry):
        obj = {
            "a": np.arange(100, dtype=np.float64),
            "b": [np.ones(50), (np.zeros(25), "tag")],
            "n": None,
        }
        before = registry.segments
        _, out = roundtrip(ShmTransport(registry), obj)
        assert registry.segments == before + 1
        assert np.array_equal(out["a"], obj["a"])
        assert np.array_equal(out["b"][0], obj["b"][0])
        assert np.array_equal(out["b"][1][0], obj["b"][1][0])
        assert out["b"][1][1] == "tag"
        assert out["n"] is None

    def test_views_are_zero_copy(self, registry):
        arr = np.arange(1000, dtype=np.float64)
        _, out = roundtrip(ShmTransport(registry), arr)
        # the decoded array views the mapped segment, not a copy
        (name,) = registry.adopted
        assert out.base is not None
        assert registry.adopted[name].refs == 1

    def test_mapping_closes_when_last_view_dies(self, registry):
        _, out = roundtrip(
            ShmTransport(registry), np.arange(1000, dtype=np.float64)
        )
        assert len(registry.adopted) == 1
        del out
        gc.collect()
        assert registry.adopted == {}

    def test_multi_receiver_acks_drain_ownership(self, registry):
        acks = []
        t = ShmTransport(registry, post_ack=lambda creator, name:
                         acks.append((creator, name)))
        wire = t.encode(np.arange(512, dtype=np.float64), receivers=2)
        name = wire[1]
        assert registry.pending == {name: 2}
        # two receivers decode (same process here) and ack
        t.decode(wire)
        t.decode(wire)
        assert acks == [(0, name)] * 2
        registry.ack([name for _, name in acks])
        assert registry.pending == {}
        assert registry.outstanding() == 0

    def test_empty_and_object_arrays_fall_back_to_pickle(self, registry):
        t = ShmTransport(registry)
        assert t.encode(np.empty(0, dtype=np.float64))[0] == "py"
        assert t.encode(np.array([{"k": 1}], dtype=object))[0] == "py"


class TestAuto:
    def test_threshold_splits_small_from_large(self, registry):
        t = AutoTransport(registry)
        small = np.zeros(AUTO_THRESHOLD // 8 - 1, dtype=np.float64)
        large = np.zeros(AUTO_THRESHOLD // 8, dtype=np.float64)
        assert t.encode(small)[0] == "py"
        wire = t.encode(large)
        assert wire[0] == "shm"
        t.decode(wire)  # complete the ownership handoff (unlinks)

    def test_mixed_payload_packs_only_large_buffers(self, registry):
        t = AutoTransport(registry)
        obj = [np.zeros(AUTO_THRESHOLD, dtype=np.uint8), np.zeros(4)]
        wire = t.encode(obj)
        assert wire[0] == "shm"
        out = t.decode(wire)
        assert np.array_equal(out[0], obj[0])
        assert np.array_equal(out[1], obj[1])
        # the small array rides in the spec, not the segment
        assert out[1].flags.writeable


def test_registry_resolves_names():
    assert get_transport("naive") is NaiveTransport
    assert get_transport("shm") is ShmTransport
    assert get_transport("auto") is AutoTransport
    with pytest.raises(ValueError, match="unknown transport"):
        get_transport("rdma")
