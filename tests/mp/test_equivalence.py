"""Threads-vs-processes equivalence: same algorithms, bit-identical output.

The threaded simulator is the deterministic reference; the process world
must reproduce it exactly — same products to the last bit, same
communication-meter aggregates, same memory high-water marks.  This is
the contract that makes ``world="processes"`` a pure performance knob.
"""

import numpy as np
import pytest

from repro.dist import DistContext
from repro.simmpi import CommTracker
from repro.sparse import multiply, random_sparse
from repro.summa import (
    batched_summa3d,
    batched_summa3d_rows,
    summa2d,
    summa3d,
    symbolic3d,
)


@pytest.fixture(scope="module")
def operands():
    a = random_sparse(60, 60, nnz=500, seed=31)
    b = random_sparse(60, 60, nnz=500, seed=32)
    return a, b


def dense_equal(x, y):
    return (
        x is not None and y is not None
        and x.nnz == y.nnz
        and np.array_equal(x.to_dense(), y.to_dense())
    )


def by_step(tracker):
    return tracker.by_step()


DRIVERS = {
    "summa2d": lambda a, b, **kw: summa2d(a, b, nprocs=4, **kw),
    "summa3d": lambda a, b, **kw: summa3d(a, b, nprocs=8, layers=2, **kw),
    "batched": lambda a, b, **kw: batched_summa3d(
        a, b, nprocs=4, layers=1, batches=2, **kw
    ),
}


class TestDriverMatrix:
    @pytest.mark.parametrize("overlap", ["off", "depth1"])
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("driver", sorted(DRIVERS))
    def test_bit_identical_products_and_meters(
        self, operands, driver, backend, overlap
    ):
        a, b = operands
        run = DRIVERS[driver]
        tt, tp = CommTracker(), CommTracker()
        rt = run(a, b, comm_backend=backend, overlap=overlap, tracker=tt)
        rp = run(a, b, comm_backend=backend, overlap=overlap, tracker=tp,
                 world="processes")
        assert dense_equal(rt.matrix, rp.matrix)
        # meter aggregates agree (event order may differ: per-rank
        # streams are merged in rank order, threads interleave live)
        assert by_step(tt) == by_step(tp)
        assert tt.total_bytes() == tp.total_bytes()

    @pytest.mark.parametrize("transport", ["naive", "shm", "auto"])
    def test_every_transport_reproduces_the_reference(
        self, operands, transport
    ):
        a, b = operands
        rt = batched_summa3d(a, b, nprocs=4, batches=2)
        rp = batched_summa3d(a, b, nprocs=4, batches=2,
                             world="processes", transport=transport)
        assert dense_equal(rt.matrix, rp.matrix)
        assert rp.info["world"]["transport"] == transport

    def test_memory_reports_match(self, operands):
        a, b = operands
        kw = dict(nprocs=4, batches=2, memory_budget_per_rank=10**6)
        rt = batched_summa3d(a, b, **kw)
        rp = batched_summa3d(a, b, world="processes", **kw)
        mt, mp_ = rt.memory, rp.memory
        assert mt["high_water_total"] == mp_["high_water_total"]
        cats_t = {k: v["high_water"] for k, v in mt["categories"].items()}
        cats_p = {k: v["high_water"] for k, v in mp_["categories"].items()}
        assert cats_t == cats_p


class TestSurfaces:
    def test_symbolic3d(self, operands):
        a, b = operands
        st = symbolic3d(a, b, nprocs=4, memory_budget_per_rank=10**5)
        sp = symbolic3d(a, b, nprocs=4, memory_budget_per_rank=10**5,
                        world="processes")
        assert st.batches == sp.batches
        assert (st.max_nnz_a, st.max_nnz_b, st.max_nnz_c) == \
               (sp.max_nnz_a, sp.max_nnz_b, sp.max_nnz_c)

    def test_rows_wrapper(self, operands):
        a, b = operands
        rt = batched_summa3d_rows(a, b, nprocs=4, batches=2)
        rp = batched_summa3d_rows(a, b, nprocs=4, batches=2,
                                  world="processes")
        assert dense_equal(rt.matrix, rp.matrix)

    def test_streaming_on_batch_runs_in_the_parent(self, operands):
        a, b = operands
        ref = multiply(a, b)
        seen = {}

        def hook(batch, spans, mat):
            seen[batch] = mat

        result = batched_summa3d(
            a, b, nprocs=4, batches=3, keep_output=False,
            on_batch=hook, world="processes",
        )
        assert result.matrix is None
        assert sorted(seen) == [0, 1, 2]
        assert sum(m.nnz for m in seen.values()) == ref.nnz

    def test_checkpoint_roundtrip(self, operands, tmp_path):
        a, b = operands
        result = batched_summa3d(
            a, b, nprocs=4, batches=2, world="processes",
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        assert result.matrix.allclose(multiply(a, b))
        resumed = batched_summa3d(
            a, b, nprocs=4, batches=2, world="processes",
            checkpoint_dir=str(tmp_path / "ckpt"), resume=True,
        )
        assert dense_equal(resumed.matrix, result.matrix)

    def test_dist_context_multiply(self, operands):
        a, b = operands
        ref = multiply(a, b)
        out = {}
        for world in ("threads", "processes"):
            ctx = DistContext(nprocs=4, world=world)
            ha = ctx.distribute(a, layout="A")
            hb = ctx.distribute(b, layout="B")
            hc, _ = ctx.multiply(ha, hb)
            out[world] = ctx.gather(hc)
        assert out["threads"].allclose(ref)
        assert dense_equal(out["threads"], out["processes"])
