"""Zero-copy receive accounting: a payload that crosses a process
boundary through shared memory is charged exactly once, to the
receiver's ``recv_buffer`` category, priced identically to an owned
copy.  Double counting would make the process world *appear* to need
more memory than the threaded reference it must reproduce.
"""

import gc

import numpy as np
import pytest

from repro.mem import nbytes_of
from repro.mp.shm import SegmentRegistry, leaked_segments
from repro.mp.transport import ShmTransport
from repro.sparse import random_sparse
from repro.summa import batched_summa3d


class TestNbytesOf:
    def test_shm_view_prices_like_an_owned_array(self):
        reg = SegmentRegistry("repro-test-acct", rank=0)
        try:
            t = ShmTransport(reg)
            arr = np.arange(5000, dtype=np.float64)
            out = t.decode(t.encode(arr))
            # a zero-copy view reports its mapped extent, same as a copy
            assert nbytes_of(out) == nbytes_of(arr) == arr.nbytes
            del out
        finally:
            gc.collect()
            reg.reap()
            reg.abandon()
        assert leaked_segments("repro-test-acct") == []

    def test_memoryview_reports_mapped_bytes(self):
        buf = memoryview(bytearray(1024))
        assert nbytes_of(buf) == 1024

    def test_containers_of_views_sum_once(self):
        a = np.ones(10, dtype=np.float64)
        assert nbytes_of([a, a[:5]]) == 80 + 40


class TestRecvBufferParity:
    @pytest.mark.parametrize("transport", ["naive", "shm", "auto"])
    def test_recv_buffer_high_water_matches_threads(self, transport):
        """The receive-side charge happens at delivery (once), never in
        transport decode — so every transport meters exactly what the
        threaded world meters."""
        a = random_sparse(80, 80, nnz=2000, seed=17)
        kw = dict(nprocs=4, batches=2, memory_budget_per_rank=10**7)
        ref = batched_summa3d(a, a, **kw)
        run = batched_summa3d(a, a, world="processes",
                              transport=transport, **kw)
        cat_ref = ref.memory["categories"]["recv_buffer"]
        cat_run = run.memory["categories"]["recv_buffer"]
        assert cat_run["high_water"] == cat_ref["high_water"]
        assert run.memory["high_water_total"] == \
            ref.memory["high_water_total"]
