"""Guardrails of the process world: explicit gates for the features that
stay thread-world-only, a watchdog that names the stuck *process*, and
no shared-memory litter under either exit path.
"""

import os

import pytest

from repro.errors import HangError, SpmdError
from repro.mp.shm import SHM_DIR
from repro.simmpi import run_spmd
from repro.sparse import random_sparse
from repro.summa import batched_summa3d


def _noop(comm):
    return comm.rank


def _shm_names():
    return set(os.listdir(SHM_DIR)) if os.path.isdir(SHM_DIR) else set()


class TestThreadOnlyGates:
    def test_faults_raise_not_implemented(self):
        with pytest.raises(NotImplementedError, match="thread-world-only"):
            run_spmd(2, _noop, world="processes",
                     faults=["crash:rank=1,batch=0"])

    def test_faults_gate_names_the_reference_world(self):
        with pytest.raises(NotImplementedError, match="world='threads'"):
            run_spmd(2, _noop, world="processes", faults=["x"])

    def test_heal_and_spares_raise_not_implemented(self):
        with pytest.raises(NotImplementedError):
            run_spmd(2, _noop, world="processes", heal="spare",
                     world_spares=1)
        with pytest.raises(NotImplementedError):
            run_spmd(2, _noop, world="processes", world_spares=2)

    def test_driver_forwards_the_gate(self):
        a = random_sparse(30, 30, nnz=100, seed=1)
        with pytest.raises(NotImplementedError, match="thread-world-only"):
            batched_summa3d(a, a, nprocs=4, world="processes",
                            faults=["crash:rank=1,batch=0"])

    def test_unknown_world_rejected(self):
        with pytest.raises(ValueError, match="threads.*processes"):
            run_spmd(2, _noop, world="ranks")


class TestWatchdog:
    def test_hang_dump_names_the_stuck_process_pid(self):
        """A receiver whose sender never shows up must time out with a
        per-rank dump carrying the worker's real OS pid."""

        def prog(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=3)
            return None  # rank 1 exits without sending

        parent_pid = os.getpid()
        with pytest.raises(SpmdError) as info:
            run_spmd(2, prog, world="processes", timeout=2.0)
        hangs = {r: e for r, e in info.value.failures.items()
                 if isinstance(e, HangError)}
        assert hangs, f"no HangError among {info.value.failures!r}"
        err = next(iter(hangs.values()))
        assert err.kind == "timeout"
        state = err.dump[0]
        assert state["op"] == "recv"
        assert state["tag"] == 3
        assert state["pending"] == [1]
        assert state["blocked_s"] >= 0
        # the pid is a real child process, named in dump and message
        assert state["pid"] != parent_pid
        assert str(state["pid"]) in str(err)

    def test_hang_leaves_no_segments_behind(self):
        def prog(comm):
            import numpy as np
            payload = np.arange(200_000, dtype=np.float64)
            if comm.rank == 0:
                comm.send(payload, dest=1, tag=0)
                return comm.recv(source=1, tag=9)  # never sent
            comm.recv(source=0, tag=0)
            return None

        before = _shm_names()
        with pytest.raises(SpmdError):
            run_spmd(2, prog, world="processes", timeout=2.0,
                     transport="shm")
        assert _shm_names() <= before


class TestShmCleanliness:
    def test_normal_exit_leaves_dev_shm_clean(self):
        import numpy as np

        def prog(comm):
            data = comm.bcast(np.arange(100_000, dtype=np.float64), root=0)
            return float(data.sum())

        before = _shm_names()
        out = run_spmd(4, prog, world="processes", transport="shm")
        assert len(set(out)) == 1
        assert _shm_names() <= before

    def test_raising_worker_leaves_dev_shm_clean(self):
        import numpy as np

        def prog(comm):
            comm.bcast(np.arange(100_000, dtype=np.float64), root=0)
            if comm.rank == 2:
                raise RuntimeError("boom in worker")
            comm.barrier()
            return comm.rank

        before = _shm_names()
        with pytest.raises(SpmdError) as info:
            run_spmd(4, prog, world="processes", transport="shm")
        assert isinstance(info.value.failures[2], RuntimeError)
        assert "boom in worker" in str(info.value.failures[2])
        assert _shm_names() <= before

    def test_driver_run_leaves_dev_shm_clean(self):
        a = random_sparse(200, 200, nnz=15_000, seed=9)
        before = _shm_names()
        result = batched_summa3d(a, a, nprocs=4, batches=2,
                                 world="processes", transport="shm")
        assert result.info["world"]["shm_segments"] > 0
        assert _shm_names() <= before
