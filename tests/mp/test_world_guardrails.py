"""Guardrails of the process world: real crash faults carried with a
uniform error context, a watchdog that names the stuck *process*, and
no shared-memory litter under either exit path.
"""

import os
import signal

import pytest

from repro.errors import HangError, RankCrashError, SpmdError
from repro.mp.shm import SHM_DIR
from repro.simmpi import run_spmd
from repro.simmpi.faults import FaultPlan
from repro.sparse import random_sparse
from repro.summa import batched_summa3d


def _noop(comm):
    return comm.rank


def _shm_names():
    return set(os.listdir(SHM_DIR)) if os.path.isdir(SHM_DIR) else set()


def _bcast_body(comm):
    x = comm.bcast([1, 2, 3] if comm.rank == 0 else None, root=0)
    comm.barrier()
    return x


class TestProcessFaults:
    """The former thread-world-only gates are lifted: fault injection
    runs under ``world="processes"`` with real OS-level crashes."""

    def test_injected_crash_kills_the_worker_for_real(self):
        parent_pid = os.getpid()
        with pytest.raises(SpmdError) as info:
            run_spmd(4, _bcast_body, world="processes", timeout=15.0,
                     faults=FaultPlan.parse("crash:rank=1,op=bcast,nth=1"))
        err = info.value.failures[1]
        assert isinstance(err, RankCrashError)
        # uniform err.context: the death really was a SIGKILL of a child
        ctx = err.context
        assert ctx["rank"] == 1
        assert ctx["pid"] != parent_pid
        assert ctx["exitcode"] == -signal.SIGKILL
        assert ctx["signal"] == "SIGKILL"
        assert "bcast" in ctx["last_op"]
        assert ctx["epoch"] == 0
        assert "SIGKILL" in str(err)

    def test_transient_faults_retry_identically_to_threads(self):
        a = random_sparse(30, 30, nnz=120, seed=1)
        plan = ["transient:rank=1,op=bcast,nth=1",
                "corrupt:rank=2,op=bcast,nth=1"]
        ref = batched_summa3d(a, a, nprocs=4, faults=FaultPlan(plan),
                              max_retries=3)
        res = batched_summa3d(a, a, nprocs=4, faults=FaultPlan(plan),
                              max_retries=3, world="processes", timeout=20.0)
        assert (res.matrix.values == ref.matrix.values).all()
        ref_fs, fs = ref.info["fault_stats"], res.info["fault_stats"]
        assert fs["fired"] == ref_fs["fired"] == 2
        assert fs["injected"] == ref_fs["injected"]
        assert fs["retries"] == ref_fs["retries"]

    def test_heal_accepted_under_processes(self, tmp_path):
        a = random_sparse(30, 30, nnz=120, seed=1)
        ref = batched_summa3d(a, a, nprocs=4, batches=2)
        res = batched_summa3d(
            a, a, nprocs=4, batches=2, checkpoint_dir=tmp_path / "ck",
            faults=FaultPlan(["crash:rank=1,batch=1"]),
            heal="spare", world_spares=1, timeout=25.0, world="processes",
        )
        assert (res.matrix.values == ref.matrix.values).all()
        assert res.info["resilience"]["heal"]["heals"] == 1

    def test_unknown_world_rejected(self):
        with pytest.raises(ValueError, match="threads.*processes"):
            run_spmd(2, _noop, world="ranks")


class TestWatchdog:
    def test_hang_dump_names_the_stuck_process_pid(self):
        """A receiver whose sender already exited is classified by the
        parent watchdog as ``peer-exited`` — well before the flat
        timeout — with a per-rank dump carrying the worker's real pid."""

        def prog(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=3)
            return None  # rank 1 exits without sending

        parent_pid = os.getpid()
        with pytest.raises(SpmdError) as info:
            run_spmd(2, prog, world="processes", timeout=8.0)
        hangs = {r: e for r, e in info.value.failures.items()
                 if isinstance(e, HangError)}
        assert hangs, f"no HangError among {info.value.failures!r}"
        err = next(iter(hangs.values()))
        assert err.kind == "peer-exited"
        state = err.dump[0]
        assert state["op"] == "recv"
        assert state["tag"] == 3
        assert state["pending"] == [1]
        assert state["blocked_s"] >= 0
        # the pid is a real child process, named in dump and message
        assert state["pid"] != parent_pid
        assert str(state["pid"]) in str(err)

    def test_cross_process_deadlock_classified(self):
        """A genuine cyclic wait between two worker *processes* is
        classified as a deadlock with the cycle named."""

        def prog(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=7)
            return comm.recv(source=0, tag=8)

        with pytest.raises(SpmdError) as info:
            run_spmd(2, prog, world="processes", timeout=10.0)
        hangs = [e for e in info.value.failures.values()
                 if isinstance(e, HangError)]
        assert hangs, f"no HangError among {info.value.failures!r}"
        err = hangs[0]
        assert err.kind == "deadlock"
        assert set(err.cycle) == {0, 1}
        assert "deadlock" in str(err)

    def test_hang_leaves_no_segments_behind(self):
        def prog(comm):
            import numpy as np
            payload = np.arange(200_000, dtype=np.float64)
            if comm.rank == 0:
                comm.send(payload, dest=1, tag=0)
                return comm.recv(source=1, tag=9)  # never sent
            comm.recv(source=0, tag=0)
            return None

        before = _shm_names()
        with pytest.raises(SpmdError):
            run_spmd(2, prog, world="processes", timeout=2.0,
                     transport="shm")
        assert _shm_names() <= before


class TestShmCleanliness:
    def test_normal_exit_leaves_dev_shm_clean(self):
        import numpy as np

        def prog(comm):
            data = comm.bcast(np.arange(100_000, dtype=np.float64), root=0)
            return float(data.sum())

        before = _shm_names()
        out = run_spmd(4, prog, world="processes", transport="shm")
        assert len(set(out)) == 1
        assert _shm_names() <= before

    def test_raising_worker_leaves_dev_shm_clean(self):
        import numpy as np

        def prog(comm):
            comm.bcast(np.arange(100_000, dtype=np.float64), root=0)
            if comm.rank == 2:
                raise RuntimeError("boom in worker")
            comm.barrier()
            return comm.rank

        before = _shm_names()
        with pytest.raises(SpmdError) as info:
            run_spmd(4, prog, world="processes", transport="shm")
        assert isinstance(info.value.failures[2], RuntimeError)
        assert "boom in worker" in str(info.value.failures[2])
        assert _shm_names() <= before

    def test_driver_run_leaves_dev_shm_clean(self):
        a = random_sparse(200, 200, nnz=15_000, seed=9)
        before = _shm_names()
        result = batched_summa3d(a, a, nprocs=4, batches=2,
                                 world="processes", transport="shm")
        assert result.info["world"]["shm_segments"] > 0
        assert _shm_names() <= before
