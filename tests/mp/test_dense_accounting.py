"""Dense-panel accounting parity: SpMM's dense B panels are charged
exactly once — to ``b_piece`` at col-split and ``recv_buffer`` at
delivery — with identical high-water marks whether the panel crossed a
process boundary (naive pickle or zero-copy shared memory) or stayed in
the threaded world.  The dense-kernel counterpart of
``tests/mp/test_accounting.py``.
"""

import numpy as np
import pytest

from repro.mem import nbytes_of
from repro.simmpi.serialization import wrap_payload
from repro.sparse import random_sparse
from repro.summa import batched_summa3d


class TestDenseNbytesOf:
    def test_dense_panel_prices_buffer_bytes(self):
        panel = np.zeros((100, 8))
        assert nbytes_of(panel) == 100 * 8 * 8

    def test_noncontiguous_view_prices_mapped_extent(self):
        panel = np.zeros((100, 8))
        # a strided view still reports its mapped bytes — the ledger
        # charges what the receiver can touch, not the parent buffer
        assert nbytes_of(panel[:, ::2]) == panel[:, ::2].nbytes

    def test_envelope_prices_payload_plus_checksum_word(self):
        payload = np.arange(16, dtype=np.float64)
        env = wrap_payload(payload)
        assert nbytes_of(env) == payload.nbytes + 8

    def test_envelope_of_none_prices_checksum_only(self):
        assert nbytes_of(wrap_payload(None)) == 8

    def test_mixed_container_with_envelope(self):
        arr = np.ones(4)
        assert nbytes_of([arr, wrap_payload(arr)]) == arr.nbytes * 2 + 8


class TestSpmmDenseParity:
    @pytest.mark.parametrize("transport", ["naive", "shm"])
    def test_dense_b_piece_charged_once_across_transports(self, transport):
        """Every category — including the dense panel's ``b_piece`` and
        the broadcast ``recv_buffer`` — meters identically across the
        threaded world and both process transports: the panel is priced
        at delivery, never again in transport decode."""
        a = random_sparse(64, 64, nnz=1500, seed=11)
        x = np.asarray(
            np.random.default_rng(3).standard_normal((64, 6)), order="C"
        )
        kw = dict(nprocs=4, batches=2, kernel="spmm")
        ref = batched_summa3d(a, x, **kw)
        run = batched_summa3d(
            a, x, world="processes", transport=transport, **kw
        )
        assert np.array_equal(ref.matrix, run.matrix)
        for cat in ("a_piece", "b_piece", "recv_buffer", "output_batch"):
            assert (
                run.memory["categories"][cat]["high_water"]
                == ref.memory["categories"][cat]["high_water"]
            ), cat
        assert (
            run.memory["high_water_total"] == ref.memory["high_water_total"]
        )

    def test_dense_panel_charged_once_not_per_batch(self):
        """The resident dense B tile is charged exactly once: its
        ``b_piece`` high-water equals the local tile's buffer size
        regardless of how many batch slices are cut from it, while the
        in-flight (``recv_buffer``) and scratch terms shrink with the
        batch count — the dense analogue of the paper's 1/b terms."""
        a = random_sparse(64, 64, nnz=1500, seed=11)
        x = np.zeros((64, 12))
        one = batched_summa3d(a, x, nprocs=4, batches=1, kernel="spmm")
        four = batched_summa3d(a, x, nprocs=4, batches=4, kernel="spmm")
        # 2x2 grid: the local tile is 64 rows x 6 cols of float64
        local_tile_bytes = 64 * (12 // 2) * 8 // 2
        for run in (one, four):
            assert (
                run.memory["categories"]["b_piece"]["high_water"]
                == local_tile_bytes
            )
        for cat in ("recv_buffer", "merge_scratch"):
            assert (
                four.memory["categories"][cat]["high_water"]
                < one.memory["categories"][cat]["high_water"]
            ), cat
