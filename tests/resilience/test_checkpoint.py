"""Unit tests for manifest-backed batch-granular checkpointing."""

import json
import os

import pytest

from repro.errors import CheckpointError
from repro.resilience import CheckpointManager, run_key
from repro.sparse import random_sparse


@pytest.fixture
def matrix():
    return random_sparse(24, 24, nnz=120, seed=3)


class TestRunKey:
    def test_covers_operand_contents(self, matrix):
        other = random_sparse(24, 24, nnz=120, seed=4)
        assert run_key(matrix, matrix, nprocs=4) == \
            run_key(matrix, matrix, nprocs=4)
        assert run_key(matrix, matrix, nprocs=4) != \
            run_key(matrix, other, nprocs=4)

    def test_covers_configuration(self, matrix):
        assert run_key(matrix, matrix, nprocs=4) != \
            run_key(matrix, matrix, nprocs=8)
        assert run_key(matrix, matrix, suite="esc") != \
            run_key(matrix, matrix, suite="spa")


class TestCheckpointManager:
    def test_write_then_load_roundtrip(self, tmp_path, matrix):
        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.start_run("k1", 3)
        ckpt.write_batch(0, [(0, 12)], matrix)
        spans, loaded = ckpt.load_batch(0)
        assert spans == [(0, 12)]
        assert loaded.nnz == matrix.nnz
        assert loaded.allclose(matrix)

    def test_completed_prefix_is_contiguous(self, tmp_path, matrix):
        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.start_run("k1", 4)
        ckpt.write_batch(0, [(0, 6)], matrix)
        ckpt.write_batch(2, [(12, 18)], matrix)  # gap at 1
        assert ckpt.completed_prefix() == 1

    def test_resume_adopts_manifest_batches(self, tmp_path, matrix):
        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.start_run("k1", 3)
        ckpt.write_batch(0, [(0, 8)], matrix)
        fresh = CheckpointManager(tmp_path / "ck")
        batches, first = fresh.resume_run("k1", None)
        assert (batches, first) == (3, 1)

    def test_resume_rejects_different_run_key(self, tmp_path, matrix):
        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.start_run("k1", 3)
        with pytest.raises(CheckpointError, match="different operands"):
            CheckpointManager(tmp_path / "ck").resume_run("k2")

    def test_resume_rejects_conflicting_batch_count(self, tmp_path):
        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.start_run("k1", 3)
        with pytest.raises(CheckpointError, match="batch geometry"):
            CheckpointManager(tmp_path / "ck").resume_run("k1", 5)

    def test_resume_empty_dir_without_batches_fails(self, tmp_path):
        with pytest.raises(CheckpointError, match="nothing to resume"):
            CheckpointManager(tmp_path / "ck").resume_run("k1", None)

    def test_resume_empty_dir_with_batches_starts_fresh(self, tmp_path):
        batches, first = CheckpointManager(tmp_path / "ck").resume_run("k1", 4)
        assert (batches, first) == (4, 0)

    def test_corrupt_manifest_is_typed(self, tmp_path):
        ckdir = tmp_path / "ck"
        ckdir.mkdir()
        (ckdir / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            CheckpointManager(ckdir).load_manifest()

    def test_malformed_manifest_is_typed(self, tmp_path):
        ckdir = tmp_path / "ck"
        ckdir.mkdir()
        (ckdir / "manifest.json").write_text(json.dumps({"version": 99}))
        with pytest.raises(CheckpointError, match="malformed"):
            CheckpointManager(ckdir).load_manifest()

    def test_missing_batch_file_detected(self, tmp_path, matrix):
        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.start_run("k1", 2)
        ckpt.write_batch(0, [(0, 12)], matrix)
        os.remove(tmp_path / "ck" / "batch_0.npz")
        with pytest.raises(CheckpointError, match="missing"):
            CheckpointManager(tmp_path / "ck").resume_run("k1")

    def test_truncated_batch_file_detected(self, tmp_path, matrix):
        from repro.sparse import save_matrix

        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.start_run("k1", 2)
        ckpt.write_batch(0, [(0, 12)], matrix)
        save_matrix(
            str(tmp_path / "ck" / "batch_0.npz"),
            random_sparse(24, 24, nnz=7, seed=9),
        )
        with pytest.raises(CheckpointError, match="truncated"):
            ckpt.load_batch(0)

    def test_reset_clears_batch_files(self, tmp_path, matrix):
        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.start_run("k1", 2)
        ckpt.write_batch(0, [(0, 12)], matrix)
        ckpt.reset("k1", 4)
        assert not os.path.exists(tmp_path / "ck" / "batch_0.npz")
        assert ckpt.completed_prefix() == 0
        assert ckpt.load_manifest()["batches"] == 4

    def test_manifest_written_atomically(self, tmp_path, matrix):
        """No .tmp residue after writes; manifest always parses."""
        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.start_run("k1", 2)
        ckpt.write_batch(0, [(0, 12)], matrix)
        leftovers = [f for f in os.listdir(tmp_path / "ck") if ".tmp" in f]
        assert leftovers == []
        json.loads((tmp_path / "ck" / "manifest.json").read_text())


class TestAtomicSaveMatrix:
    def test_no_tmp_residue(self, tmp_path, matrix):
        from repro.sparse import load_matrix, save_matrix

        path = tmp_path / "m.npz"
        save_matrix(str(path), matrix)
        assert load_matrix(str(path)).allclose(matrix)
        assert [f for f in os.listdir(tmp_path) if ".tmp" in f] == []

    def test_failed_write_preserves_existing_file(self, tmp_path, matrix):
        """An interrupted save must never clobber the previous good file —
        the crash-safety contract spill/checkpoint files rely on."""
        import numpy as np

        from repro.sparse import load_matrix, save_matrix

        path = tmp_path / "m.npz"
        save_matrix(str(path), matrix)

        original_savez = np.savez_compressed

        def exploding(*args, **kwargs):
            raise OSError("disk full")

        np.savez_compressed = exploding
        try:
            with pytest.raises(OSError):
                save_matrix(str(path), random_sparse(8, 8, nnz=5, seed=1))
        finally:
            np.savez_compressed = original_savez
        assert load_matrix(str(path)).allclose(matrix)


class TestSharedRootConcurrency:
    """Satellite (ISSUE 9): many jobs checkpointing under one shared
    root must never collect each other's batches — per-run subdirs plus
    the gc() plain-file guard make that safe."""

    def test_run_dir_is_stable_and_sanitised(self, tmp_path):
        d1 = CheckpointManager.run_dir(tmp_path, "abc123")
        assert d1 == CheckpointManager.run_dir(tmp_path, "abc123")
        assert os.path.isdir(d1)
        weird = CheckpointManager.run_dir(tmp_path, "a/../b: c")
        assert os.path.dirname(weird) == str(tmp_path)
        assert "/.." not in weird.replace(str(tmp_path), "", 1)

    def test_for_run_isolates_concurrent_jobs(self, tmp_path, matrix):
        ck1 = CheckpointManager.for_run(tmp_path, "job-one", keep_last=1)
        ck2 = CheckpointManager.for_run(tmp_path, "job-two", keep_last=1)
        assert ck1.directory != ck2.directory
        ck1.start_run("job-one", 3)
        ck2.start_run("job-two", 3)
        for i in range(3):
            ck1.write_batch(i, [(i, i + 1)], matrix)
            ck2.write_batch(i, [(i, i + 1)], matrix)
        # both pruned independently down to their own newest batch
        for ck in (ck1, ck2):
            assert ck.completed_prefix() == 3
            _, loaded = ck.load_batch(2)
            assert loaded.allclose(matrix)
            with pytest.raises(CheckpointError, match="garbage-collected"):
                ck.load_batch(0)

    def test_gc_never_touches_sibling_run_dirs(self, tmp_path, matrix):
        ck1 = CheckpointManager.for_run(tmp_path, "alive")
        ck1.start_run("alive", 2)
        ck1.write_batch(0, [(0, 1)], matrix)
        # a second job's directory full of batches, plus stray debris in
        # the first job's own directory
        ck2 = CheckpointManager.for_run(tmp_path, "other")
        ck2.start_run("other", 2)
        ck2.write_batch(0, [(0, 1)], matrix)
        stray = os.path.join(ck1.directory, "batch_9.npz")
        with open(stray, "wb") as fh:
            fh.write(b"debris")
        # gc from a manager rooted at the *shared root* level must not
        # exist — but even a manager whose directory contains the run
        # dirs (legacy layout) skips them: plain files only
        legacy = CheckpointManager(tmp_path)
        legacy.start_run("legacy", 1)
        report = legacy.gc()
        assert ck2.completed_prefix() == 1  # untouched
        _, loaded = ck2.load_batch(0)
        assert loaded.allclose(matrix)
        # the stray file inside ck1's dir is ck1's to collect, not legacy's
        assert "batch_9.npz" not in report["orphans_removed"]
        assert ck1.gc()["orphans_removed"] == ["batch_9.npz"]
        assert ck1.completed_prefix() == 1

    def test_keep_last_tombstones_survive_resume(self, tmp_path, matrix):
        ck = CheckpointManager.for_run(tmp_path, "resume-me", keep_last=1)
        ck.start_run("resume-me", 4)
        for i in range(3):
            ck.write_batch(i, [(i, i + 1)], matrix)
        fresh = CheckpointManager.for_run(tmp_path, "resume-me")
        batches, first = fresh.resume_run("resume-me", None)
        assert (batches, first) == (4, 3)  # pruned batches still count
