"""Unit tests for the bounded deterministic retry policy."""

import pytest

from repro.errors import TransientCommError
from repro.resilience import RetryPolicy


class TestRetryPolicy:
    def test_success_passes_through(self):
        assert RetryPolicy(3).call(lambda: 42) == 42

    def test_retries_until_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientCommError("flake")
            return "ok"

        assert RetryPolicy(3).call(flaky) == "ok"
        assert calls["n"] == 3

    def test_budget_exhaustion_reraises(self):
        calls = {"n": 0}

        def always():
            calls["n"] += 1
            raise TransientCommError("flake")

        with pytest.raises(TransientCommError):
            RetryPolicy(2).call(always)
        assert calls["n"] == 3  # first + 2 retries

    def test_zero_retries_means_one_attempt(self):
        calls = {"n": 0}

        def always():
            calls["n"] += 1
            raise TransientCommError("flake")

        with pytest.raises(TransientCommError):
            RetryPolicy(0).call(always)
        assert calls["n"] == 1

    def test_non_transient_errors_not_retried(self):
        calls = {"n": 0}

        def bad():
            calls["n"] += 1
            raise ValueError("genuine bug")

        with pytest.raises(ValueError):
            RetryPolicy(5).call(bad)
        assert calls["n"] == 1

    def test_backoff_is_exponential_and_deterministic(self):
        policy = RetryPolicy(5, backoff_base=0.001, multiplier=2.0)
        assert policy.backoff(1) == pytest.approx(0.001)
        assert policy.backoff(2) == pytest.approx(0.002)
        assert policy.backoff(4) == pytest.approx(0.008)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(-1)

    def test_retry_is_metered_not_slept(self):
        """Retrying must record the simulated backoff, not actually sleep."""
        import time

        from repro.simmpi import run_spmd
        from repro.simmpi.faults import FaultInjector, FaultPlan
        from repro.simmpi.tracker import CommTracker

        inj = FaultInjector(FaultPlan())
        tracker = CommTracker()
        # a policy whose simulated delays would total minutes if slept
        policy = RetryPolicy(4, backoff_base=30.0)

        def prog(comm):
            calls = {"n": 0}

            def flaky():
                calls["n"] += 1
                if calls["n"] < 4:
                    raise TransientCommError("flake")
                return None

            policy.call(flaky, comm=comm, op="bcast")

        t0 = time.monotonic()
        run_spmd(1, prog, tracker=tracker, faults=inj, timeout=10)
        assert time.monotonic() - t0 < 5  # did not sleep 30+60+120 s
        stats = inj.stats()
        assert stats["retries"] == 3
        assert stats["simulated_backoff_s"] == pytest.approx(30 + 60 + 120)
        retry_events = [e for e in tracker.events if e.op == "retry"]
        assert len(retry_events) == 3
        assert all(e.nbytes == 0 for e in retry_events)


class TestWorldAwareBackoff:
    """Threads simulate the backoff; processes sleep a bounded, jittered,
    still fully deterministic delay."""

    def test_real_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(5, backoff_base=0.001, sleep_cap=0.004)
        # pure function of (rank, attempt): same inputs, same delay
        assert policy.real_backoff(3, 1) == policy.real_backoff(3, 1)
        # different ranks de-synchronise
        assert policy.real_backoff(0, 1) != policy.real_backoff(1, 1)
        # jitter stays within one backoff_base
        for rank in range(8):
            assert 0.0 <= policy.jitter(rank, 1) < policy.backoff_base
        # the exponential schedule can never exceed the cap
        assert policy.real_backoff(1, 30) == policy.sleep_cap

    def test_threads_simulate_processes_sleep(self):
        """The same flaky program under both worlds: the thread world
        records the un-slept exponential schedule, the process world
        records (and actually slept) the capped jittered delay."""
        from repro.simmpi import run_spmd
        from repro.simmpi.faults import FaultInjector, FaultPlan

        def prog(comm, _policy=RetryPolicy(3, backoff_base=0.002,
                                           sleep_cap=0.005)):
            calls = {"n": 0}

            def flaky():
                calls["n"] += 1
                if calls["n"] < 3:
                    raise TransientCommError("flake")
                return None

            _policy.call(flaky, comm=comm, op="bcast")

        inj = FaultInjector(FaultPlan())
        run_spmd(1, prog, faults=inj, timeout=10)
        sim = [e.backoff_s for e in inj.events if e.kind == "retry"]
        assert sim == pytest.approx([0.002, 0.004])  # pure schedule

        inj2 = FaultInjector(FaultPlan())
        run_spmd(1, prog, faults=inj2, world="processes", timeout=15)
        policy = RetryPolicy(3, backoff_base=0.002, sleep_cap=0.005)
        real = sorted(
            e.backoff_s for e in inj2.events if e.kind == "retry"
        )
        expected = sorted(policy.real_backoff(0, a) for a in (1, 2))
        assert real == pytest.approx(expected)
        assert all(b <= policy.sleep_cap for b in real)
