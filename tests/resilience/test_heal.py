"""Unit tests for the healing layer's satellites: checkpoint garbage
collection, randomized crash plans, and classified error context."""

import os

import pytest

from repro.errors import (
    CheckpointError,
    CorruptPayloadError,
    HealError,
    SpmdError,
)
from repro.resilience import HEAL_MODES, CheckpointManager, HealContext
from repro.simmpi import FaultPlan, run_spmd
from repro.sparse import random_sparse


@pytest.fixture
def matrix():
    return random_sparse(24, 24, nnz=120, seed=3)


class TestCheckpointGC:
    def test_keep_last_prunes_older_batch_files(self, tmp_path, matrix):
        ckpt = CheckpointManager(tmp_path / "ck", keep_last=2)
        ckpt.start_run("k1", 4)
        for batch in range(4):
            ckpt.write_batch(batch, [(batch * 6, batch * 6 + 6)], matrix)
        files = sorted(
            f for f in os.listdir(tmp_path / "ck") if f.endswith(".npz")
        )
        assert files == ["batch_2.npz", "batch_3.npz"]

    def test_pruned_batches_still_count_toward_prefix(self, tmp_path, matrix):
        ckpt = CheckpointManager(tmp_path / "ck", keep_last=1)
        ckpt.start_run("k1", 3)
        for batch in range(3):
            ckpt.write_batch(batch, [(0, 8)], matrix)
        # resume must continue from batch 3 even though 0 and 1 are gone
        assert ckpt.completed_prefix() == 3

    def test_load_of_pruned_batch_fails_loudly_with_context(
        self, tmp_path, matrix
    ):
        ckpt = CheckpointManager(tmp_path / "ck", keep_last=1)
        ckpt.start_run("k1", 2)
        ckpt.write_batch(0, [(0, 8)], matrix)
        ckpt.write_batch(1, [(8, 16)], matrix)
        with pytest.raises(CheckpointError, match="garbage-collected") as info:
            ckpt.load_batch(0)
        assert info.value.context["batch"] == 0

    def test_keep_last_must_retain_the_resume_point(self, tmp_path):
        with pytest.raises(CheckpointError, match="keep_last"):
            CheckpointManager(tmp_path / "ck", keep_last=0)

    def test_gc_removes_orphaned_batch_files(self, tmp_path, matrix):
        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.start_run("k1", 2)
        ckpt.write_batch(0, [(0, 8)], matrix)
        # debris: a stale file from a superseded batch geometry and a
        # torn temporary — neither referenced by the manifest
        for name in ("batch_7.npz", "batch_0.npz.tmp"):
            with open(tmp_path / "ck" / name, "wb") as fh:
                fh.write(b"junk")
        stats = ckpt.gc()
        assert sorted(stats["orphans_removed"]) == [
            "batch_0.npz.tmp", "batch_7.npz",
        ]
        assert stats["pruned"] == []
        # the referenced batch file survives
        assert os.path.exists(tmp_path / "ck" / "batch_0.npz")
        assert ckpt.load_batch(0)[1].nnz == matrix.nnz

    def test_gc_with_explicit_keep_last_prunes(self, tmp_path, matrix):
        ckpt = CheckpointManager(tmp_path / "ck")
        ckpt.start_run("k1", 3)
        for batch in range(3):
            ckpt.write_batch(batch, [(0, 8)], matrix)
        stats = ckpt.gc(keep_last=1)
        assert sorted(stats["pruned"]) == ["batch_0.npz", "batch_1.npz"]
        assert ckpt.completed_prefix() == 3


class TestRandomCrashPlans:
    def test_crash_draws_are_deterministic_per_seed(self):
        p1 = FaultPlan.random(seed=7, nprocs=8, crash=2, max_batch=3)
        p2 = FaultPlan.random(seed=7, nprocs=8, crash=2, max_batch=3)
        assert [(s.kind, s.rank, s.batch) for s in p1] == \
            [(s.kind, s.rank, s.batch) for s in p2]
        crashes = [s for s in p1 if s.kind == "crash"]
        assert len(crashes) == 2
        assert all(0 <= s.rank < 8 and 0 <= s.batch < 3 for s in crashes)

    def test_crash_draws_do_not_disturb_existing_seeds(self):
        """Crash coordinates draw *after* transient/corrupt ones, so
        extending a plan with crashes keeps the older faults identical."""
        base = FaultPlan.random(seed=11, nprocs=4, transient=2, corrupt=1)
        extended = FaultPlan.random(
            seed=11, nprocs=4, transient=2, corrupt=1, crash=1, max_batch=2
        )
        old = [(s.kind, s.rank, s.op, s.nth) for s in base]
        new = [(s.kind, s.rank, s.op, s.nth) for s in extended][:len(old)]
        assert old == new


class TestErrorContext:
    def test_redelivery_exhaustion_carries_rank_op_step(self):
        """A payload corrupted beyond MAX_REDELIVERIES raises with a
        uniform context dict (rank / op / step), not a bare message."""
        plan = FaultPlan([
            f"corrupt:rank=1,op=recv,nth={n}" for n in range(1, 6)
        ])

        def prog(comm):
            if comm.rank == 0:
                comm.send([1, 2, 3], dest=1, tag=0)
                return None
            return comm.recv(source=0, tag=0)

        with pytest.raises(SpmdError) as info:
            run_spmd(2, prog, faults=plan, timeout=10)
        corrupt = [
            e for e in info.value.failures.values()
            if isinstance(e, CorruptPayloadError)
        ]
        assert corrupt, f"expected CorruptPayloadError: {info.value.failures!r}"
        context = corrupt[0].context
        assert context["rank"] == 1
        assert context["op"] == "recv"
        assert context["redeliveries"] >= 1


class TestHealContext:
    def test_rejects_unknown_mode(self):
        with pytest.raises(HealError):
            HealContext("migrate")

    def test_modes_are_published(self):
        assert set(HEAL_MODES) == {"spare", "shrink"}

    def test_report_shape_when_no_heal_happened(self):
        ctx = HealContext("spare")
        report = ctx.report()
        assert report == {
            "mode": "spare", "events": [], "heals": 0,
            "extra_bytes_moved": 0,
        }
