"""Tests for masked SpGEMM (GraphBLAS-style mxm with a mask)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import SparseMatrix, eye, random_sparse
from repro.sparse.semiring import MIN_PLUS
from repro.sparse.spgemm.masked import spgemm_masked


@pytest.fixture
def triple():
    a = random_sparse(30, 25, nnz=200, seed=81)
    b = random_sparse(25, 35, nnz=190, seed=82)
    m = random_sparse(30, 35, nnz=150, seed=83)
    return a, b, m


class TestMasked:
    def test_matches_dense(self, triple):
        a, b, m = triple
        got = spgemm_masked(a, b, m)
        expected = (a.to_dense() @ b.to_dense()) * (m.to_dense() != 0)
        assert np.allclose(got.to_dense(), expected)

    def test_complement(self, triple):
        a, b, m = triple
        got = spgemm_masked(a, b, m, complement=True)
        expected = (a.to_dense() @ b.to_dense()) * (m.to_dense() == 0)
        assert np.allclose(got.to_dense(), expected)

    def test_mask_values_ignored(self, triple):
        a, b, m = triple
        scaled = SparseMatrix(
            m.nrows, m.ncols, m.indptr, m.rowidx, m.values * 100.0,
        )
        assert spgemm_masked(a, b, m).allclose(spgemm_masked(a, b, scaled))

    def test_empty_mask(self, triple):
        a, b, _ = triple
        empty = SparseMatrix.empty(30, 35)
        assert spgemm_masked(a, b, empty).nnz == 0

    def test_empty_mask_complement_is_full_product(self, triple):
        a, b, _ = triple
        empty = SparseMatrix.empty(30, 35)
        got = spgemm_masked(a, b, empty, complement=True)
        assert np.allclose(got.to_dense(), a.to_dense() @ b.to_dense())

    def test_full_mask_is_full_product(self, triple):
        a, b, _ = triple
        from repro.sparse import from_dense

        full = from_dense(np.ones((30, 35)))
        got = spgemm_masked(a, b, full)
        assert np.allclose(got.to_dense(), a.to_dense() @ b.to_dense())

    def test_mask_shape_error(self, triple):
        a, b, _ = triple
        with pytest.raises(ShapeError):
            spgemm_masked(a, b, SparseMatrix.empty(3, 3))

    def test_operand_shape_error(self):
        with pytest.raises(ShapeError):
            spgemm_masked(eye(3), eye(4), eye(3))

    def test_semiring(self, triple):
        a, b, m = triple
        from repro.sparse import multiply
        from repro.sparse.ops import hadamard

        got = spgemm_masked(a, b, m, semiring=MIN_PLUS)
        # compare against unmasked min-plus product filtered by the mask
        full = multiply(a, b, semiring=MIN_PLUS)
        pattern = SparseMatrix(
            m.nrows, m.ncols, m.indptr, m.rowidx,
            np.ones(m.nnz), validate=False,
        )
        expected = hadamard(full, pattern)
        assert got.allclose(expected)

    def test_empty_operands(self):
        got = spgemm_masked(
            SparseMatrix.empty(4, 4), SparseMatrix.empty(4, 4), eye(4)
        )
        assert got.nnz == 0

    def test_saves_intermediate_space(self, triple):
        """The point of masking during the multiply: fewer entries reach
        the accumulator than the full product holds."""
        a, b, m = triple
        from repro.sparse import multiply

        full = multiply(a, b)
        masked = spgemm_masked(a, b, m)
        assert masked.nnz < full.nnz


class TestDistributedMask:
    def test_distributed_matches_local(self, triple):
        import numpy as np

        from repro.summa import batched_summa3d

        a, b, m = triple
        r = batched_summa3d(a, b, nprocs=8, layers=2, batches=3, mask=m)
        expected = spgemm_masked(a, b, m)
        assert r.matrix.allclose(expected)

    def test_distributed_complement(self, triple):
        from repro.summa import batched_summa3d

        a, b, m = triple
        r = batched_summa3d(a, b, nprocs=4, batches=2, mask=m,
                            mask_complement=True)
        assert r.matrix.allclose(spgemm_masked(a, b, m, complement=True))

    def test_mask_composes_with_postprocess(self, triple):
        from repro.sparse.ops import prune_topk_per_column
        from repro.summa import batched_summa3d

        a, b, m = triple

        def prune(batch, c0, c1, block):
            return prune_topk_per_column(block, 3)

        r = batched_summa3d(a, b, nprocs=4, batches=2, mask=m,
                            postprocess=prune)
        expected = prune_topk_per_column(spgemm_masked(a, b, m), 3)
        assert r.matrix.allclose(expected)

    def test_distributed_mask_shape_error(self, triple):
        from repro.summa import batched_summa3d

        a, b, _ = triple
        with pytest.raises(ShapeError):
            batched_summa3d(a, b, nprocs=4, mask=SparseMatrix.empty(2, 2))
