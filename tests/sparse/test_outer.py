"""Tests for the outer-product (propagation-blocking) SpGEMM kernel."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import SparseMatrix, eye, multiply
from repro.sparse.semiring import MIN_PLUS
from repro.sparse.spgemm.outer import spgemm_outer


class TestOuterProduct:
    @pytest.mark.parametrize("block_size", [1, 4, 64, 10**6])
    def test_matches_dense(self, small_pair, block_size):
        a, b = small_pair
        got = spgemm_outer(a, b, block_size=block_size)
        assert np.allclose(got.to_dense(), a.to_dense() @ b.to_dense())

    def test_agrees_with_gustavson(self, small_pair):
        a, b = small_pair
        assert spgemm_outer(a, b).allclose(multiply(a, b))

    def test_semiring(self, small_pair):
        a, b = small_pair
        assert spgemm_outer(a, b, MIN_PLUS).allclose(
            multiply(a, b, semiring=MIN_PLUS)
        )

    def test_identity(self, square_matrix):
        assert spgemm_outer(square_matrix, eye(64)).allclose(square_matrix)

    def test_empty_operands(self):
        out = spgemm_outer(SparseMatrix.empty(5, 6), SparseMatrix.empty(6, 7))
        assert out.shape == (5, 7) and out.nnz == 0

    def test_rank_one_blowup(self):
        # dense column x dense row through one inner index
        col = SparseMatrix.from_coo(10, 1, list(range(10)), [0] * 10,
                                    [1.0] * 10)
        row = SparseMatrix.from_coo(1, 10, [0] * 10, list(range(10)),
                                    [2.0] * 10)
        out = spgemm_outer(col, row)
        assert out.nnz == 100
        assert np.allclose(out.values, 2.0)

    def test_shape_error(self):
        with pytest.raises(ShapeError):
            spgemm_outer(eye(3), eye(4))

    def test_bad_block_size(self, small_pair):
        a, b = small_pair
        with pytest.raises(ValueError):
            spgemm_outer(a, b, block_size=0)

    def test_blocked_and_unblocked_identical(self, square_matrix):
        fine = spgemm_outer(square_matrix, square_matrix, block_size=2)
        coarse = spgemm_outer(square_matrix, square_matrix, block_size=512)
        assert fine.allclose(coarse)
