"""Symbolic SpGEMM tests: nnz / flops / per-column structure analysis."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import (
    SparseMatrix,
    eye,
    spgemm_esc,
    symbolic_flops,
    symbolic_nnz,
)
from repro.sparse.spgemm.symbolic import compression_factor, symbolic_per_column


class TestFlops:
    def test_manual_count(self):
        # A column 0 has 2 nonzeros; B(0, 0) nonzero => 2 products
        a = SparseMatrix.from_coo(3, 2, [0, 1], [0, 0], [1.0, 1.0])
        b = SparseMatrix.from_coo(2, 2, [0], [0], [1.0])
        assert symbolic_flops(a, b) == 2

    def test_identity_flops_equals_nnz(self, square_matrix):
        assert symbolic_flops(square_matrix, eye(64)) == square_matrix.nnz

    def test_empty(self):
        assert symbolic_flops(SparseMatrix.empty(3, 3), SparseMatrix.empty(3, 3)) == 0

    def test_shape_error(self):
        with pytest.raises(ShapeError):
            symbolic_flops(eye(3), eye(4))

    def test_flops_ge_nnz_c(self, square_matrix):
        flops = symbolic_flops(square_matrix, square_matrix)
        nnz_c = symbolic_nnz(square_matrix, square_matrix)
        assert flops >= nnz_c >= 0


class TestNnz:
    def test_matches_actual_product(self, small_pair):
        a, b = small_pair
        assert symbolic_nnz(a, b) == spgemm_esc(a, b).nnz

    def test_square(self, square_matrix):
        assert symbolic_nnz(square_matrix, square_matrix) == spgemm_esc(
            square_matrix, square_matrix
        ).nnz

    def test_empty(self):
        assert symbolic_nnz(SparseMatrix.empty(3, 4), SparseMatrix.empty(4, 5)) == 0

    def test_symbolic_counts_cancellation(self):
        # numeric cancellation still counts structurally
        a = SparseMatrix.from_coo(1, 2, [0, 0], [0, 1], [1.0, 1.0])
        b = SparseMatrix.from_coo(2, 1, [0, 1], [0, 0], [1.0, -1.0])
        assert symbolic_nnz(a, b) == 1


class TestPerColumn:
    def test_sums_match_totals(self, small_pair):
        a, b = small_pair
        nnz_col, flops_col = symbolic_per_column(a, b)
        assert nnz_col.sum() == symbolic_nnz(a, b)
        assert flops_col.sum() == symbolic_flops(a, b)

    def test_per_column_matches_product(self, small_pair):
        a, b = small_pair
        nnz_col, _ = symbolic_per_column(a, b)
        c = spgemm_esc(a, b)
        assert np.array_equal(nnz_col, c.col_nnz())

    def test_empty_inputs(self):
        nnz_col, flops_col = symbolic_per_column(
            SparseMatrix.empty(4, 4), SparseMatrix.empty(4, 6)
        )
        assert nnz_col.shape == (6,) and flops_col.sum() == 0


class TestCompressionFactor:
    def test_at_least_one(self, square_matrix):
        assert compression_factor(square_matrix, square_matrix) >= 1.0

    def test_identity_cf_is_one(self, square_matrix):
        assert compression_factor(square_matrix, eye(64)) == 1.0

    def test_empty_product(self):
        assert compression_factor(SparseMatrix.empty(3, 3), SparseMatrix.empty(3, 3)) == 1.0
