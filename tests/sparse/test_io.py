"""I/O round-trip tests (npz and MatrixMarket)."""

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse import (
    SparseMatrix,
    load_matrix,
    load_matrix_market,
    random_sparse,
    save_matrix,
    save_matrix_market,
)


class TestNpz:
    def test_roundtrip(self, tmp_path, square_matrix):
        path = tmp_path / "m.npz"
        save_matrix(path, square_matrix)
        back = load_matrix(path)
        assert back.allclose(square_matrix)
        assert back.sorted_within_columns == square_matrix.sorted_within_columns

    def test_roundtrip_empty(self, tmp_path):
        path = tmp_path / "e.npz"
        save_matrix(path, SparseMatrix.empty(5, 7))
        back = load_matrix(path)
        assert back.shape == (5, 7) and back.nnz == 0

    def test_preserves_unsorted_flag(self, tmp_path):
        m = SparseMatrix(3, 1, [0, 2], [2, 0], [1.0, 2.0],
                         sorted_within_columns=False)
        path = tmp_path / "u.npz"
        save_matrix(path, m)
        assert not load_matrix(path).sorted_within_columns


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path, square_matrix):
        path = tmp_path / "m.mtx"
        save_matrix_market(path, square_matrix, comment="test matrix")
        back = load_matrix_market(path)
        assert back.allclose(square_matrix)

    def test_roundtrip_rectangular(self, tmp_path):
        m = random_sparse(13, 29, nnz=70, seed=1)
        path = tmp_path / "r.mtx"
        save_matrix_market(path, m)
        assert load_matrix_market(path).allclose(m)

    def test_roundtrip_empty(self, tmp_path):
        path = tmp_path / "e.mtx"
        save_matrix_market(path, SparseMatrix.empty(3, 4))
        back = load_matrix_market(path)
        assert back.shape == (3, 4) and back.nnz == 0

    def test_pattern_field(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
        m = load_matrix_market(io.StringIO(text))
        assert np.allclose(m.to_dense(), np.eye(2))

    def test_symmetric_expansion(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 5.0\n"
            "3 3 7.0\n"
        )
        m = load_matrix_market(io.StringIO(text))
        d = m.to_dense()
        assert d[1, 0] == 5.0 and d[0, 1] == 5.0 and d[2, 2] == 7.0
        assert m.nnz == 3  # diagonal not doubled

    def test_comments_skipped(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n"
            "1 1 1\n1 1 3.5\n"
        )
        m = load_matrix_market(io.StringIO(text))
        assert m.to_dense()[0, 0] == 3.5

    def test_bad_header(self):
        with pytest.raises(FormatError, match="header"):
            load_matrix_market(io.StringIO("garbage\n"))

    def test_unsupported_format(self):
        with pytest.raises(FormatError, match="coordinate"):
            load_matrix_market(
                io.StringIO("%%MatrixMarket matrix array real general\n")
            )

    def test_wrong_entry_count(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n"
        with pytest.raises(FormatError, match="expected 3 entries"):
            load_matrix_market(io.StringIO(text))

    def test_integer_field(self):
        text = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n2 2 4\n"
        m = load_matrix_market(io.StringIO(text))
        assert m.to_dense()[1, 1] == 4.0


class TestGzip:
    def test_gz_roundtrip(self, tmp_path, square_matrix):
        import gzip

        plain = tmp_path / "m.mtx"
        save_matrix_market(plain, square_matrix)
        gz = tmp_path / "m.mtx.gz"
        with open(plain, "rb") as src, gzip.open(gz, "wb") as dst:
            dst.write(src.read())
        assert load_matrix_market(gz).allclose(square_matrix)
