"""Tests for the kernel-suite registry and semiring registry surfaces."""

import numpy as np

from repro.sparse import random_sparse
from repro.sparse.semiring import PLUS_PAIR, get_semiring
from repro.sparse.spgemm.suite import KernelSuite, available_suites, get_suite


class TestSuiteRegistry:
    def test_available_suites(self):
        names = available_suites()
        assert set(names) == {
            "esc", "unsorted-hash", "sorted-heap", "hybrid", "spa",
        }

    def test_suite_metadata_consistent(self):
        for name in available_suites():
            suite = get_suite(name)
            assert isinstance(suite, KernelSuite)
            assert suite.name == name
            assert callable(suite.local_multiply)
            assert callable(suite.merge)

    def test_paper_suite_properties(self):
        """The properties the paper's Sec. IV-D argument rests on."""
        this_paper = get_suite("unsorted-hash")
        prior = get_suite("sorted-heap")
        assert not this_paper.requires_sorted_inputs
        assert not this_paper.emits_sorted
        assert prior.requires_sorted_inputs
        assert prior.emits_sorted

    def test_merge_matches_multiply_sortedness(self):
        """Every suite's merge accepts what its multiply emits."""
        a = random_sparse(20, 20, nnz=80, seed=321)
        for name in available_suites():
            suite = get_suite(name)
            operand = a.sort_indices() if suite.requires_sorted_inputs else a
            from repro.sparse.semiring import PLUS_TIMES

            partial = suite.local_multiply(operand, operand, PLUS_TIMES)
            merged = suite.merge([partial, partial], PLUS_TIMES)
            assert np.allclose(
                merged.to_dense(), 2 * (a.to_dense() @ a.to_dense())
            ), name


class TestPlusPair:
    def test_counts_structural_products(self):
        a = random_sparse(15, 15, nnz=60, seed=322)
        from repro.sparse import multiply

        got = multiply(a, a, semiring=PLUS_PAIR)
        pa = (a.to_dense() != 0).astype(float)
        assert np.allclose(got.to_dense(), pa @ pa)

    def test_weights_irrelevant(self):
        from repro.sparse import SparseMatrix, multiply

        a = random_sparse(12, 12, nnz=40, seed=323)
        scaled = SparseMatrix(
            a.nrows, a.ncols, a.indptr, a.rowidx, a.values * 13.7,
        )
        assert multiply(a, a, semiring=PLUS_PAIR).allclose(
            multiply(scaled, scaled, semiring=PLUS_PAIR)
        )

    def test_registry_lookup(self):
        assert get_semiring("plus_pair") is PLUS_PAIR
