"""Unit tests for COO triple utilities."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse.coo import concat_coo, coo_to_csc_arrays, dedup_coo, sort_coo


class TestSortCoo:
    def test_sorts_by_col_then_row(self):
        rows, cols, vals = sort_coo(
            4, [3, 0, 1], [1, 1, 0], [1.0, 2.0, 3.0]
        )
        assert cols.tolist() == [0, 1, 1]
        assert rows.tolist() == [1, 0, 3]
        assert vals.tolist() == [3.0, 2.0, 1.0]

    def test_empty(self):
        rows, cols, vals = sort_coo(4, [], [], [])
        assert rows.shape == (0,)

    def test_stable_on_duplicates(self):
        rows, cols, vals = sort_coo(2, [0, 0], [0, 0], [1.0, 2.0])
        assert vals.tolist() == [1.0, 2.0]


class TestDedupCoo:
    def test_sums_duplicates(self):
        rows, cols, vals = dedup_coo(3, [1, 1, 2], [0, 0, 0], [1.0, 4.0, 2.0])
        assert rows.tolist() == [1, 2]
        assert vals.tolist() == [5.0, 2.0]

    def test_no_duplicates_passthrough(self):
        rows, cols, vals = dedup_coo(3, [0, 1], [0, 1], [1.0, 2.0])
        assert len(rows) == 2

    def test_empty(self):
        rows, cols, vals = dedup_coo(3, [], [], [])
        assert len(rows) == 0

    def test_all_same_coordinate(self):
        rows, cols, vals = dedup_coo(2, [1, 1, 1], [1, 1, 1], [1.0, 1.0, 1.0])
        assert rows.tolist() == [1]
        assert vals.tolist() == [3.0]


class TestCooToCsc:
    def test_basic(self):
        indptr, rowidx, values = coo_to_csc_arrays(
            3, 2, [2, 0], [1, 0], [9.0, 8.0]
        )
        assert indptr.tolist() == [0, 1, 2]
        assert rowidx.tolist() == [0, 2]

    def test_length_mismatch(self):
        with pytest.raises(FormatError, match="mismatched lengths"):
            coo_to_csc_arrays(2, 2, [0], [0, 1], [1.0])

    def test_row_out_of_range(self):
        with pytest.raises(FormatError, match="row index"):
            coo_to_csc_arrays(2, 2, [5], [0], [1.0])

    def test_col_out_of_range(self):
        with pytest.raises(FormatError, match="column index"):
            coo_to_csc_arrays(2, 2, [0], [7], [1.0])

    def test_without_dedup_keeps_duplicates(self):
        indptr, rowidx, values = coo_to_csc_arrays(
            2, 1, [0, 0], [0, 0], [1.0, 2.0], sum_duplicates=False
        )
        assert len(rowidx) == 2


class TestConcatCoo:
    def test_concatenates(self):
        r, c, v = concat_coo([
            (np.array([0]), np.array([1]), np.array([2.0])),
            (np.array([1]), np.array([0]), np.array([3.0])),
        ])
        assert r.tolist() == [0, 1]
        assert v.tolist() == [2.0, 3.0]

    def test_empty_list(self):
        r, c, v = concat_coo([])
        assert r.shape == (0,)
        assert v.dtype == np.float64
