"""Semiring SpGEMM tests: min-plus shortest paths, boolean reachability."""

import numpy as np
import pytest

from repro.sparse import from_dense, multiply, random_sparse
from repro.sparse.semiring import (
    MAX_MIN,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    get_semiring,
)
from repro.sparse.spgemm import spgemm_esc, spgemm_hash, spgemm_heap, spgemm_reference

SEMIRING_KERNELS = [spgemm_esc, spgemm_hash, spgemm_heap, spgemm_reference]


def _dense_semiring_matmul(a, b, add, mul, identity):
    n, k = a.shape
    _, m = b.shape
    out = np.full((n, m), np.nan)
    for i in range(n):
        for j in range(m):
            acc = None
            for t in range(k):
                if a[i, t] != 0 and b[t, j] != 0:
                    v = mul(a[i, t], b[t, j])
                    acc = v if acc is None else add(acc, v)
            if acc is not None:
                out[i, j] = acc
    return out


class TestGetSemiring:
    def test_by_name(self):
        assert get_semiring("min_plus") is MIN_PLUS

    def test_passthrough(self):
        assert get_semiring(PLUS_TIMES) is PLUS_TIMES

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown semiring"):
            get_semiring("quux")

    def test_repr(self):
        assert "min_plus" in repr(MIN_PLUS)


class TestMinPlus:
    @pytest.mark.parametrize("kernel", SEMIRING_KERNELS)
    def test_against_dense(self, kernel):
        a = random_sparse(15, 15, nnz=60, seed=1)
        b = random_sparse(15, 15, nnz=60, seed=2)
        got = kernel(a, b, MIN_PLUS)
        expected = _dense_semiring_matmul(
            a.to_dense(), b.to_dense(), min, lambda x, y: x + y, None
        )
        dense = got.to_dense()
        mask = ~np.isnan(expected)
        # structural zeros of `got` are 0.0 in to_dense; compare on support
        assert np.allclose(dense[mask], expected[mask])
        assert got.nnz == mask.sum()

    def test_shortest_path_step(self):
        # path graph 0 -> 1 -> 2 with weights 3 and 4: d(0, 2) = 7
        w = from_dense(np.array([
            [0.0, 3.0, 0.0],
            [0.0, 0.0, 4.0],
            [0.0, 0.0, 0.0],
        ]))
        d2 = multiply(w, w, semiring=MIN_PLUS)
        assert d2.to_dense()[0, 2] == 7.0


class TestMaxMin:
    @pytest.mark.parametrize("kernel", SEMIRING_KERNELS)
    def test_against_dense(self, kernel):
        a = random_sparse(12, 12, nnz=50, seed=3)
        b = random_sparse(12, 12, nnz=50, seed=4)
        got = kernel(a, b, MAX_MIN).to_dense()
        expected = _dense_semiring_matmul(
            a.to_dense(), b.to_dense(), max, min, None
        )
        mask = ~np.isnan(expected)
        assert np.allclose(got[mask], expected[mask])


class TestOrAnd:
    def test_reachability(self):
        a = random_sparse(20, 20, nnz=60, seed=5, values="ones")
        got = spgemm_esc(a, a, OR_AND).to_dense()
        expected = ((a.to_dense() @ a.to_dense()) > 0).astype(float)
        assert np.array_equal(got, expected)


class TestCustomSemiring:
    def test_plus_max(self):
        plus_max = Semiring("plus_max", np.add, np.maximum, 0.0)
        a = random_sparse(10, 10, nnz=30, seed=6)
        got = spgemm_esc(a, a, plus_max).to_dense()
        expected = _dense_semiring_matmul(
            a.to_dense(), a.to_dense(), lambda x, y: x + y, max, None
        )
        mask = ~np.isnan(expected)
        assert np.allclose(got[mask], expected[mask])
