"""Property-based tests (hypothesis) on the sparse substrate.

Strategies generate random COO matrices; properties assert algebraic
identities and structural invariants that must hold for *every* input.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    SparseMatrix,
    col_concat,
    col_split,
    col_split_block_cyclic,
    eye,
    hstack_interleave_block_cyclic,
    merge_hash,
    merge_heap,
    spgemm_esc,
    spgemm_hash,
    spgemm_heap,
    spgemm_reference,
    symbolic_flops,
    symbolic_nnz,
    transpose,
)
from repro.sparse.merge import merge_grouped
from repro.sparse.ops import prune_topk_per_column, submatrix


@st.composite
def sparse_matrices(draw, max_dim=24, max_nnz=80, square=False):
    nrows = draw(st.integers(1, max_dim))
    ncols = nrows if square else draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, min(max_nnz, nrows * ncols)))
    rows = draw(
        st.lists(st.integers(0, nrows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, ncols - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return SparseMatrix.from_coo(nrows, ncols, rows, cols, vals)


@st.composite
def matrix_pairs(draw, max_dim=16, max_nnz=60):
    n = draw(st.integers(1, max_dim))
    k = draw(st.integers(1, max_dim))
    m = draw(st.integers(1, max_dim))
    a = draw(sparse_matrices_fixed(n, k, max_nnz))
    b = draw(sparse_matrices_fixed(k, m, max_nnz))
    return a, b


@st.composite
def sparse_matrices_fixed(draw, nrows, ncols, max_nnz=60):
    nnz = draw(st.integers(0, min(max_nnz, nrows * ncols)))
    rows = draw(st.lists(st.integers(0, nrows - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, ncols - 1), min_size=nnz, max_size=nnz))
    vals = draw(
        st.lists(
            st.floats(-8, 8, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return SparseMatrix.from_coo(nrows, ncols, rows, cols, vals)


class TestStructuralInvariants:
    @given(sparse_matrices())
    def test_validate_passes_on_constructed(self, m):
        m._validate()

    @given(sparse_matrices())
    def test_nnz_consistency(self, m):
        assert m.indptr[-1] == m.nnz == len(m.rowidx) == len(m.values)

    @given(sparse_matrices())
    def test_coo_roundtrip(self, m):
        rows, cols, vals = m.to_coo()
        back = SparseMatrix.from_coo(m.nrows, m.ncols, rows, cols, vals)
        assert back.allclose(m)

    @given(sparse_matrices())
    def test_transpose_involution(self, m):
        assert transpose(transpose(m)).allclose(m)

    @given(sparse_matrices())
    def test_transpose_preserves_nnz(self, m):
        assert transpose(m).nnz == m.nnz


class TestSplitProperties:
    @given(sparse_matrices(), st.integers(1, 6))
    def test_col_split_concat_roundtrip(self, m, parts):
        assert col_concat(col_split(m, parts)).allclose(m)

    @given(sparse_matrices(), st.integers(1, 4), st.integers(1, 4))
    def test_block_cyclic_roundtrip(self, m, nparts, blocks):
        parts, maps = col_split_block_cyclic(m, nparts, blocks)
        back = hstack_interleave_block_cyclic(parts, maps, m.ncols)
        assert back.allclose(m)

    @given(sparse_matrices(), st.integers(1, 5))
    def test_split_preserves_nnz(self, m, parts):
        assert sum(p.nnz for p in col_split(m, parts)) == m.nnz

    @given(sparse_matrices(), st.data())
    def test_submatrix_tiling_preserves_nnz(self, m, data):
        r = data.draw(st.integers(0, m.nrows))
        c = data.draw(st.integers(0, m.ncols))
        quadrants = [
            submatrix(m, 0, r, 0, c),
            submatrix(m, 0, r, c, m.ncols),
            submatrix(m, r, m.nrows, 0, c),
            submatrix(m, r, m.nrows, c, m.ncols),
        ]
        assert sum(q.nnz for q in quadrants) == m.nnz


class TestSpgemmProperties:
    @settings(max_examples=25)
    @given(matrix_pairs())
    def test_kernels_agree(self, pair):
        a, b = pair
        ref = spgemm_reference(a, b)
        assert spgemm_esc(a, b).allclose(ref)
        assert spgemm_hash(a, b).allclose(ref)
        assert spgemm_heap(a, b).allclose(ref)

    @settings(max_examples=25)
    @given(matrix_pairs())
    def test_matches_dense(self, pair):
        a, b = pair
        assert np.allclose(
            spgemm_esc(a, b).to_dense(), a.to_dense() @ b.to_dense()
        )

    @given(sparse_matrices())
    def test_identity_neutral(self, m):
        assert spgemm_esc(m, eye(m.ncols)).allclose(m)
        assert spgemm_esc(eye(m.nrows), m).allclose(m)

    @settings(max_examples=25)
    @given(matrix_pairs())
    def test_symbolic_matches_actual(self, pair):
        a, b = pair
        c = spgemm_esc(a, b)
        assert symbolic_nnz(a, b) == c.nnz
        assert symbolic_flops(a, b) >= c.nnz

    @settings(max_examples=20)
    @given(matrix_pairs())
    def test_transpose_identity(self, pair):
        # (A B)^T == B^T A^T
        a, b = pair
        lhs = transpose(spgemm_esc(a, b))
        rhs = spgemm_esc(transpose(b), transpose(a))
        assert lhs.allclose(rhs)


class TestMergeProperties:
    @settings(max_examples=25)
    @given(st.lists(sparse_matrices_fixed(10, 8, 30), min_size=1, max_size=5))
    def test_merges_agree(self, parts):
        g = merge_grouped(parts)
        assert merge_hash(parts).allclose(g)
        assert merge_heap(parts).allclose(g)

    @settings(max_examples=25)
    @given(
        st.lists(sparse_matrices_fixed(10, 8, 30), min_size=1, max_size=5),
        st.permutations(range(5)),
    )
    def test_merge_order_invariant(self, parts, perm):
        base = merge_grouped(parts)
        reordered = [parts[i] for i in perm if i < len(parts)]
        if len(reordered) == len(parts):
            assert merge_grouped(reordered).allclose(base)


class TestPruneProperties:
    @given(sparse_matrices(), st.integers(0, 10))
    def test_topk_bounds_column_nnz(self, m, k):
        p = prune_topk_per_column(m, k)
        assert np.all(p.col_nnz() <= k) or k >= int(m.col_nnz().max(initial=0))

    @given(sparse_matrices(), st.integers(0, 10))
    def test_topk_is_subset(self, m, k):
        p = prune_topk_per_column(m, k)
        orig = set(zip(*m.to_coo()[:2]))
        kept = set(zip(*p.to_coo()[:2]))
        assert kept <= orig
