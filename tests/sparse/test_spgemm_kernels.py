"""Oracle tests: every SpGEMM kernel against scipy and the reference."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse import (
    SparseMatrix,
    eye,
    multiply,
    random_sparse,
    spgemm_esc,
    spgemm_hash,
    spgemm_heap,
    spgemm_hybrid,
    spgemm_reference,
)
from repro.sparse.spgemm import spgemm_spa
from repro.sparse.spgemm.suite import available_suites, get_suite
from tests.conftest import to_scipy

KERNELS = {
    "esc": spgemm_esc,
    "hash": spgemm_hash,
    "heap": spgemm_heap,
    "hybrid": spgemm_hybrid,
    "spa": spgemm_spa,
    "reference": spgemm_reference,
}


@pytest.fixture(params=sorted(KERNELS))
def kernel(request):
    return KERNELS[request.param]


class TestAgainstScipy:
    def test_random_square(self, kernel):
        a = random_sparse(50, 50, nnz=400, seed=1)
        b = random_sparse(50, 50, nnz=350, seed=2)
        expected = (to_scipy(a) @ to_scipy(b)).toarray()
        assert np.allclose(kernel(a, b).to_dense(), expected)

    def test_rectangular(self, kernel):
        a = random_sparse(30, 45, nnz=200, seed=3)
        b = random_sparse(45, 25, nnz=180, seed=4)
        expected = (to_scipy(a) @ to_scipy(b)).toarray()
        assert np.allclose(kernel(a, b).to_dense(), expected)

    def test_very_sparse(self, kernel):
        a = random_sparse(80, 80, nnz=40, seed=5)
        b = random_sparse(80, 80, nnz=40, seed=6)
        expected = (to_scipy(a) @ to_scipy(b)).toarray()
        assert np.allclose(kernel(a, b).to_dense(), expected)

    def test_dense_ish(self, kernel):
        a = random_sparse(20, 20, density=0.5, seed=7)
        b = random_sparse(20, 20, density=0.5, seed=8)
        expected = (to_scipy(a) @ to_scipy(b)).toarray()
        assert np.allclose(kernel(a, b).to_dense(), expected)


class TestEdgeCases:
    def test_identity(self, kernel, square_matrix):
        out = kernel(eye(64), square_matrix)
        assert out.allclose(square_matrix)
        out = kernel(square_matrix, eye(64))
        assert out.allclose(square_matrix)

    def test_empty_a(self, kernel):
        out = kernel(SparseMatrix.empty(5, 6), random_sparse(6, 7, nnz=10, seed=1))
        assert out.shape == (5, 7) and out.nnz == 0

    def test_empty_b(self, kernel):
        out = kernel(random_sparse(5, 6, nnz=10, seed=1), SparseMatrix.empty(6, 7))
        assert out.shape == (5, 7) and out.nnz == 0

    def test_structurally_disjoint(self, kernel):
        # A only touches inner indices 0-2, B only 3-5: empty product
        a = SparseMatrix.from_coo(4, 6, [0, 1], [0, 2], [1.0, 1.0])
        b = SparseMatrix.from_coo(6, 4, [3, 5], [0, 1], [1.0, 1.0])
        assert kernel(a, b).nnz == 0

    def test_shape_error(self, kernel):
        with pytest.raises(ShapeError):
            kernel(eye(3), eye(4))

    def test_single_entry(self, kernel):
        a = SparseMatrix.from_coo(3, 3, [1], [2], [2.0])
        b = SparseMatrix.from_coo(3, 3, [2], [0], [3.0])
        out = kernel(a, b)
        assert out.nnz == 1 and out.to_dense()[1, 0] == 6.0


class TestSortedness:
    def test_hash_is_sortfree(self):
        a = random_sparse(30, 30, nnz=150, seed=9)
        out = spgemm_hash(a, a)
        assert not out.sorted_within_columns

    def test_heap_requires_sorted_input(self):
        unsorted_a = SparseMatrix(3, 3, [0, 2, 2, 2], [2, 0], [1.0, 1.0],
                                  sorted_within_columns=False)
        with pytest.raises(FormatError):
            spgemm_heap(unsorted_a, eye(3))

    def test_heap_output_sorted(self, square_matrix):
        out = spgemm_heap(square_matrix, square_matrix)
        assert out.sorted_within_columns
        out._validate()  # really is sorted

    def test_hybrid_output_sorted(self, square_matrix):
        out = spgemm_hybrid(square_matrix, square_matrix)
        assert out.sorted_within_columns
        out._validate()

    def test_hash_accepts_unsorted_input(self):
        a = random_sparse(20, 20, nnz=100, seed=10)
        # reverse each column's entries to get an unsorted equivalent
        rowidx = a.rowidx.copy()
        values = a.values.copy()
        for j in range(a.ncols):
            lo, hi = a.indptr[j], a.indptr[j + 1]
            rowidx[lo:hi] = rowidx[lo:hi][::-1]
            values[lo:hi] = values[lo:hi][::-1]
        unsorted = SparseMatrix(
            a.nrows, a.ncols, a.indptr, rowidx, values,
            sorted_within_columns=False,
        )
        assert spgemm_hash(unsorted, a).allclose(spgemm_esc(a, a))


class TestHybridPolicy:
    def test_threshold_extremes_agree(self, square_matrix):
        all_heap = spgemm_hybrid(square_matrix, square_matrix,
                                 flops_threshold=10**9)
        all_hash = spgemm_hybrid(square_matrix, square_matrix,
                                 flops_threshold=0)
        assert all_heap.allclose(all_hash)


class TestDispatcher:
    def test_all_suites_agree(self, small_pair):
        a, b = small_pair
        reference = spgemm_reference(a, b)
        for name in available_suites():
            assert multiply(a, b, suite=name).allclose(reference), name

    def test_unknown_suite(self, small_pair):
        a, b = small_pair
        with pytest.raises(ValueError, match="unknown kernel suite"):
            multiply(a, b, suite="nope")

    def test_suite_passthrough(self, small_pair):
        a, b = small_pair
        suite = get_suite("esc")
        assert get_suite(suite) is suite
        assert multiply(a, b, suite=suite).allclose(spgemm_esc(a, b))

    def test_dispatcher_sorts_for_heap(self):
        a = random_sparse(20, 20, nnz=80, seed=11)
        rowidx = a.rowidx.copy()
        values = a.values.copy()
        for j in range(a.ncols):
            lo, hi = a.indptr[j], a.indptr[j + 1]
            rowidx[lo:hi] = rowidx[lo:hi][::-1]
            values[lo:hi] = values[lo:hi][::-1]
        unsorted = SparseMatrix(20, 20, a.indptr, rowidx, values,
                                sorted_within_columns=False)
        out = multiply(unsorted, a, suite="sorted-heap")
        assert out.allclose(spgemm_esc(a, a))


class TestNumericalCancellation:
    def test_cancelling_products_keep_explicit_zero(self):
        # (1)(1) + (1)(-1) = 0: structural nonzero with value 0 is stored
        a = SparseMatrix.from_coo(1, 2, [0, 0], [0, 1], [1.0, 1.0])
        b = SparseMatrix.from_coo(2, 1, [0, 1], [0, 0], [1.0, -1.0])
        for kernel in KERNELS.values():
            out = kernel(a, b)
            assert out.nnz == 1
            assert out.values[0] == 0.0
