"""Unit tests for the k-way merge kernels (Merge-Layer / Merge-Fiber)."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse import (
    SparseMatrix,
    merge_hash,
    merge_heap,
    merge_partials,
    random_sparse,
    spgemm_hash,
)
from repro.sparse.merge import merge_grouped

MERGES = {"hash": merge_hash, "heap": merge_heap, "grouped": merge_grouped}


@pytest.fixture(params=sorted(MERGES))
def merge(request):
    return MERGES[request.param]


def _parts(k=4, seed0=0, shape=(25, 18), nnz=80):
    return [
        random_sparse(*shape, nnz=nnz, seed=seed0 + s) for s in range(k)
    ]


class TestCorrectness:
    def test_matches_dense_sum(self, merge):
        parts = _parts()
        expected = sum(p.to_dense() for p in parts)
        assert np.allclose(merge(parts).to_dense(), expected)

    def test_single_part(self, merge):
        (p,) = _parts(1)
        assert merge([p]).allclose(p)

    def test_disjoint_parts(self, merge):
        a = SparseMatrix.from_coo(4, 4, [0], [0], [1.0])
        b = SparseMatrix.from_coo(4, 4, [3], [3], [2.0])
        out = merge([a, b])
        assert out.nnz == 2

    def test_fully_overlapping(self, merge):
        p = _parts(1)[0]
        out = merge([p, p, p])
        assert np.allclose(out.to_dense(), 3 * p.to_dense())

    def test_empty_parts(self, merge):
        parts = [SparseMatrix.empty(5, 5) for _ in range(3)]
        assert merge(parts).nnz == 0

    def test_many_parts(self, merge):
        parts = _parts(9, shape=(12, 12), nnz=30)
        expected = sum(p.to_dense() for p in parts)
        assert np.allclose(merge(parts).to_dense(), expected)


class TestValidation:
    def test_zero_parts(self, merge):
        with pytest.raises(ShapeError):
            merge([])

    def test_shape_mismatch(self, merge):
        with pytest.raises(ShapeError):
            merge([SparseMatrix.empty(2, 2), SparseMatrix.empty(2, 3)])


class TestSortedness:
    def test_hash_emits_unsorted_flag(self):
        out = merge_hash(_parts(3))
        assert not out.sorted_within_columns

    def test_heap_emits_sorted(self):
        out = merge_heap(_parts(3))
        assert out.sorted_within_columns
        out._validate()

    def test_heap_rejects_unsorted_input(self):
        a = random_sparse(10, 10, nnz=40, seed=1)
        unsorted = spgemm_hash(a, a)  # genuinely unsorted product
        with pytest.raises(FormatError):
            merge_heap([unsorted, unsorted])

    def test_hash_accepts_unsorted_input(self):
        a = random_sparse(10, 10, nnz=40, seed=2)
        unsorted = spgemm_hash(a, a)
        merged = merge_hash([unsorted, unsorted])
        assert np.allclose(merged.to_dense(), 2 * (a.to_dense() @ a.to_dense()))

    def test_grouped_accepts_unsorted_emits_sorted(self):
        a = random_sparse(10, 10, nnz=40, seed=3)
        unsorted = spgemm_hash(a, a)
        merged = merge_grouped([unsorted, unsorted])
        assert merged.sorted_within_columns
        merged._validate()


class TestDispatcher:
    def test_named_methods(self):
        parts = _parts(2)
        expected = sum(p.to_dense() for p in parts)
        for name in ("hash", "heap", "grouped"):
            assert np.allclose(
                merge_partials(parts, method=name).to_dense(), expected
            )

    def test_single_part_passthrough(self):
        p = _parts(1)[0]
        assert merge_partials([p], method="heap") is p

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown merge method"):
            merge_partials(_parts(2), method="zig")

    def test_callable_method(self):
        parts = _parts(2)
        out = merge_partials(parts, method=merge_grouped)
        assert np.allclose(out.to_dense(), sum(p.to_dense() for p in parts))
