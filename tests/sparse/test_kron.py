"""Tests for the Kronecker product and stencil constructions."""

import numpy as np
import pytest

from repro.sparse import SparseMatrix, eye, random_sparse
from repro.sparse.kron import kron, kron_power, laplacian_2d


class TestKron:
    def test_matches_numpy(self):
        a = random_sparse(4, 5, nnz=8, seed=231)
        b = random_sparse(3, 2, nnz=4, seed=232)
        assert np.allclose(
            kron(a, b).to_dense(), np.kron(a.to_dense(), b.to_dense())
        )

    def test_nnz_product(self):
        a = random_sparse(6, 6, nnz=10, seed=233)
        b = random_sparse(4, 4, nnz=7, seed=234)
        assert kron(a, b).nnz == 70

    def test_identity_factors(self):
        a = random_sparse(5, 5, nnz=12, seed=235)
        out = kron(eye(3), a)
        d = out.to_dense()
        assert np.allclose(d[:5, :5], a.to_dense())
        assert np.allclose(d[:5, 5:10], 0.0)

    def test_empty_factor(self):
        a = random_sparse(3, 3, nnz=4, seed=236)
        out = kron(a, SparseMatrix.empty(2, 2))
        assert out.shape == (6, 6) and out.nnz == 0

    def test_mixed_product_property(self):
        """(A (x) B)(C (x) D) == (AC) (x) (BD)."""
        from repro.sparse import multiply

        a = random_sparse(3, 4, nnz=6, seed=237)
        b = random_sparse(2, 3, nnz=4, seed=238)
        c = random_sparse(4, 3, nnz=6, seed=239)
        d = random_sparse(3, 2, nnz=4, seed=240)
        lhs = multiply(kron(a, b), kron(c, d))
        rhs = kron(multiply(a, c), multiply(b, d))
        assert lhs.allclose(rhs)


class TestKronPower:
    def test_zero_power(self):
        a = random_sparse(3, 3, nnz=4, seed=241)
        assert kron_power(a, 0).shape == (1, 1)

    def test_two_matches_double_kron(self):
        a = random_sparse(3, 3, nnz=4, seed=242)
        assert kron_power(a, 2).allclose(kron(a, a))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            kron_power(eye(2), -1)

    def test_rmat_connection(self):
        """The Kronecker power of the R-MAT seed concentrates mass in the
        top-left quadrant — the structural skew R-MAT samples from."""
        from repro.sparse import from_dense

        seed = from_dense(np.array([[0.57, 0.19], [0.19, 0.05]]))
        k3 = kron_power(seed, 3).to_dense()
        assert k3[0, 0] == pytest.approx(0.57**3)
        assert k3[0, 0] > k3[-1, -1] * 100


class TestLaplacian:
    def test_symmetric(self):
        lap = laplacian_2d(5)
        assert lap.allclose(lap.T)

    def test_interior_row_sums_zero(self):
        lap = laplacian_2d(4).to_dense()
        # interior vertex (1,1) -> index 5 in row-major: full stencil
        assert lap[5, 5] == 4.0
        assert lap[5].sum() == pytest.approx(0.0)

    def test_positive_semidefinite(self):
        lap = laplacian_2d(4).to_dense()
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() > -1e-10

    def test_squaring_on_distributed_grid(self):
        """Stencil matrices through the full distributed pipeline."""
        from repro.sparse import multiply
        from repro.summa import batched_summa3d

        lap = laplacian_2d(6)
        r = batched_summa3d(lap, lap, nprocs=4, layers=1, batches=2)
        assert r.matrix.allclose(multiply(lap, lap))
