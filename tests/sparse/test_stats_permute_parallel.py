"""Tests for permutation, statistics, and the threaded local SpGEMM."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.data import rmat, erdos_renyi
from repro.grid import ProcGrid3D
from repro.sparse import multiply, random_sparse
from repro.sparse.ops import permute, random_symmetric_permutation
from repro.sparse.spgemm.parallel import spgemm_parallel
from repro.sparse.stats import (
    DegreeStats,
    degree_stats,
    nnz_histogram,
    tile_imbalance,
)


class TestPermute:
    def test_row_permutation(self, square_matrix):
        perm = np.random.default_rng(1).permutation(64)
        p = permute(square_matrix, row_perm=perm)
        assert np.allclose(
            p.to_dense()[perm, :], square_matrix.to_dense()
        )

    def test_col_permutation(self, square_matrix):
        perm = np.random.default_rng(2).permutation(64)
        p = permute(square_matrix, col_perm=perm)
        assert np.allclose(
            p.to_dense()[:, perm], square_matrix.to_dense()
        )

    def test_identity_permutation(self, square_matrix):
        ident = np.arange(64)
        assert permute(square_matrix, ident, ident).allclose(square_matrix)

    def test_none_is_noop(self, square_matrix):
        assert permute(square_matrix).allclose(square_matrix)

    def test_invalid_permutation(self, square_matrix):
        with pytest.raises(ShapeError):
            permute(square_matrix, row_perm=np.zeros(64, dtype=int))
        with pytest.raises(ShapeError):
            permute(square_matrix, col_perm=np.arange(10))

    def test_symmetric_permutation_preserves_structure(self):
        a = rmat(7, seed=3)
        p, perm = random_symmetric_permutation(a, seed=4)
        assert p.nnz == a.nnz
        # symmetric permutation of a symmetric matrix stays symmetric
        assert p.allclose(p.T)
        # products commute with relabelling: P(A)^2 == P(A^2)
        a2 = multiply(a, a)
        p2 = multiply(p, p)
        assert p2.allclose(permute(a2, perm, perm))

    def test_symmetric_permutation_requires_square(self):
        with pytest.raises(ShapeError):
            random_symmetric_permutation(random_sparse(3, 4, nnz=2, seed=0))

    def test_deterministic(self):
        a = rmat(6, seed=5)
        p1, _ = random_symmetric_permutation(a, seed=6)
        p2, _ = random_symmetric_permutation(a, seed=6)
        assert p1.allclose(p2)


class TestStats:
    def test_degree_stats_column(self):
        from repro.sparse import from_dense

        m = from_dense(np.array([[1, 1, 0], [1, 0, 0], [1, 0, 0]], float))
        s = degree_stats(m, axis="column")
        assert s.maximum == 3
        assert s.mean == pytest.approx(4 / 3)
        assert s.skew_ratio == pytest.approx(3 / (4 / 3))

    def test_degree_stats_row(self):
        from repro.sparse import from_dense

        m = from_dense(np.array([[1, 1, 1], [0, 0, 0], [1, 0, 0]], float))
        s = degree_stats(m, axis="row")
        assert s.maximum == 3

    def test_degree_stats_invalid_axis(self, square_matrix):
        with pytest.raises(ValueError):
            degree_stats(square_matrix, axis="diag")

    def test_empty_matrix(self):
        from repro.sparse import SparseMatrix

        s = degree_stats(SparseMatrix.empty(4, 4))
        assert s == DegreeStats(0.0, 0.0, 0, 1.0)

    def test_rmat_skews_more_than_er(self):
        skewed = rmat(9, edge_factor=8, seed=7)
        uniform = erdos_renyi(512, avg_degree=16, seed=8)
        assert degree_stats(skewed).skew_ratio > degree_stats(uniform).skew_ratio

    def test_tile_imbalance_uniform_dense(self):
        from repro.sparse import from_dense

        grid = ProcGrid3D(4, 1)
        full = from_dense(np.ones((8, 8)))
        assert tile_imbalance(full, grid) == pytest.approx(1.0)

    def test_tile_imbalance_diagonal(self):
        # a diagonal matrix concentrates all nnz on the diagonal tiles:
        # on a 2x2 grid that is max 32 vs mean 16 -> imbalance 2
        from repro.sparse import eye

        grid = ProcGrid3D(4, 1)
        assert tile_imbalance(eye(64), grid) == pytest.approx(2.0)

    def test_tile_imbalance_empty(self):
        from repro.sparse import SparseMatrix

        assert tile_imbalance(SparseMatrix.empty(8, 8), ProcGrid3D(4)) == 1.0

    def test_tile_imbalance_b_operand(self):
        a = rmat(7, seed=9)
        grid = ProcGrid3D(8, 2)
        assert tile_imbalance(a, grid, operand="B") >= 1.0

    def test_nnz_histogram(self, square_matrix):
        counts, edges = nnz_histogram(square_matrix, bins=5)
        assert counts.sum() == 64
        assert len(edges) == 6


class TestParallelSpgemm:
    @pytest.mark.parametrize("nthreads", [1, 2, 4, 7])
    def test_matches_serial(self, small_pair, nthreads):
        a, b = small_pair
        expected = multiply(a, b)
        got = spgemm_parallel(a, b, nthreads=nthreads)
        assert got.allclose(expected)

    @pytest.mark.parametrize("suite", ["esc", "unsorted-hash", "sorted-heap"])
    def test_all_suites(self, small_pair, suite):
        a, b = small_pair
        assert spgemm_parallel(a, b, nthreads=3, suite=suite).allclose(
            multiply(a, b)
        )

    def test_semiring(self, small_pair):
        from repro.sparse.semiring import MIN_PLUS

        a, b = small_pair
        assert spgemm_parallel(a, b, nthreads=3, semiring=MIN_PLUS).allclose(
            multiply(a, b, semiring=MIN_PLUS)
        )

    def test_more_threads_than_columns(self):
        a = random_sparse(10, 3, nnz=12, seed=10)
        b = random_sparse(3, 2, nnz=4, seed=11)
        assert spgemm_parallel(a, b, nthreads=16).allclose(multiply(a, b))

    def test_single_column(self):
        a = random_sparse(10, 5, nnz=20, seed=12)
        b = random_sparse(5, 1, nnz=3, seed=13)
        assert spgemm_parallel(a, b, nthreads=4).allclose(multiply(a, b))

    def test_invalid_threads(self, small_pair):
        a, b = small_pair
        with pytest.raises(ValueError):
            spgemm_parallel(a, b, nthreads=0)

    def test_shape_error(self):
        from repro.sparse import eye

        with pytest.raises(ShapeError):
            spgemm_parallel(eye(3), eye(4))
