"""Unit tests for the per-column accumulators."""

import numpy as np

from repro.sparse.semiring import MIN_PLUS, PLUS_TIMES
from repro.sparse.spgemm.accumulators import HashAccumulator, SpAccumulator


class TestHashAccumulator:
    def test_basic_accumulate(self):
        acc = HashAccumulator()
        acc.scatter(np.array([5, 2, 5]), np.array([1.0, 2.0, 3.0]))
        rows, vals = acc.gather()
        assert rows.tolist() == [5, 2]          # insertion order
        assert vals.tolist() == [4.0, 2.0]

    def test_gather_resets(self):
        acc = HashAccumulator()
        acc.scatter(np.array([1]), np.array([1.0]))
        acc.gather()
        rows, vals = acc.gather()
        assert rows.shape == (0,)
        assert len(acc) == 0

    def test_multiple_scatters(self):
        acc = HashAccumulator()
        acc.scatter(np.array([0, 1]), np.array([1.0, 1.0]))
        acc.scatter(np.array([1, 2]), np.array([1.0, 1.0]))
        rows, vals = acc.gather()
        assert dict(zip(rows.tolist(), vals.tolist())) == {0: 1.0, 1: 2.0, 2: 1.0}

    def test_semiring_min(self):
        acc = HashAccumulator(MIN_PLUS)
        acc.scatter(np.array([3, 3]), np.array([5.0, 2.0]))
        rows, vals = acc.gather()
        assert vals.tolist() == [2.0]

    def test_len(self):
        acc = HashAccumulator()
        acc.scatter(np.array([1, 2, 1]), np.array([1.0, 1.0, 1.0]))
        assert len(acc) == 2


class TestSpAccumulator:
    def test_basic_accumulate(self):
        acc = SpAccumulator(10)
        acc.scatter(np.array([7, 3, 7]), np.array([1.0, 2.0, 3.0]))
        rows, vals = acc.gather()
        assert rows.tolist() == [3, 7]          # sorted
        assert vals.tolist() == [2.0, 4.0]

    def test_generation_isolation(self):
        acc = SpAccumulator(10)
        acc.scatter(np.array([4]), np.array([1.0]))
        acc.gather()
        acc.scatter(np.array([4]), np.array([5.0]))
        rows, vals = acc.gather()
        assert vals.tolist() == [5.0]           # previous generation invisible

    def test_empty_gather(self):
        acc = SpAccumulator(10)
        rows, vals = acc.gather()
        assert rows.shape == (0,)

    def test_semiring_min(self):
        acc = SpAccumulator(10, MIN_PLUS)
        acc.scatter(np.array([2, 2, 5]), np.array([4.0, 1.0, 9.0]))
        rows, vals = acc.gather()
        assert dict(zip(rows.tolist(), vals.tolist())) == {2: 1.0, 5: 9.0}

    def test_repeated_rows_in_one_batch(self):
        acc = SpAccumulator(10)
        acc.scatter(np.array([1, 1, 1, 1]), np.array([1.0, 1.0, 1.0, 1.0]))
        rows, vals = acc.gather()
        assert rows.tolist() == [1] and vals.tolist() == [4.0]

    def test_agreement_between_accumulators(self, rng):
        rows = rng.integers(0, 50, size=200)
        vals = rng.random(200)
        h = HashAccumulator(PLUS_TIMES)
        s = SpAccumulator(50, PLUS_TIMES)
        h.scatter(rows, vals)
        s.scatter(rows, vals)
        hr, hv = h.gather()
        sr, sv = s.gather()
        order = np.argsort(hr)
        assert np.array_equal(hr[order], sr)
        assert np.allclose(hv[order], sv)
