"""Tests for the elementwise / reduction operations."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import SparseMatrix, from_dense, random_sparse
from repro.sparse.ewise import (
    apply,
    ewise_add,
    ewise_mult,
    reduce_columns,
    reduce_rows,
    select,
)
from repro.sparse.semiring import MAX_MIN, MIN_PLUS


@pytest.fixture
def pair():
    a = random_sparse(20, 25, nnz=120, seed=151)
    b = random_sparse(20, 25, nnz=110, seed=152)
    return a, b


class TestEwiseAdd:
    def test_plain_sum(self, pair):
        a, b = pair
        assert np.allclose(
            ewise_add(a, b).to_dense(), a.to_dense() + b.to_dense()
        )

    def test_scaled(self, pair):
        a, b = pair
        got = ewise_add(a, b, alpha=2.0, beta=-0.5)
        assert np.allclose(got.to_dense(), 2 * a.to_dense() - 0.5 * b.to_dense())

    def test_min_plus_union_min(self, pair):
        a, b = pair
        got = ewise_add(a, b, semiring=MIN_PLUS).to_dense()
        da, db = a.to_dense(), b.to_dense()
        both = (da != 0) & (db != 0)
        only_a = (da != 0) & ~both
        assert np.allclose(got[both], np.minimum(da, db)[both])
        assert np.allclose(got[only_a], da[only_a])

    def test_shape_mismatch(self, pair):
        a, _ = pair
        with pytest.raises(ShapeError):
            ewise_add(a, SparseMatrix.empty(3, 3))

    def test_with_empty(self, pair):
        a, _ = pair
        got = ewise_add(a, SparseMatrix.empty(20, 25))
        assert got.allclose(a)


class TestEwiseMult:
    def test_intersection_product(self, pair):
        a, b = pair
        assert np.allclose(
            ewise_mult(a, b).to_dense(), a.to_dense() * b.to_dense()
        )

    def test_custom_ufunc(self, pair):
        a, b = pair
        got = ewise_mult(a, b, mul=np.maximum).to_dense()
        da, db = a.to_dense(), b.to_dense()
        both = (da != 0) & (db != 0)
        expected = np.where(both, np.maximum(da, db), 0.0)
        assert np.allclose(got, expected)

    def test_empty(self, pair):
        a, _ = pair
        assert ewise_mult(a, SparseMatrix.empty(20, 25)).nnz == 0

    def test_shape_mismatch(self, pair):
        a, _ = pair
        with pytest.raises(ShapeError):
            ewise_mult(a, SparseMatrix.empty(5, 5))


class TestApply:
    def test_square_values(self, pair):
        a, _ = pair
        got = apply(a, np.square)
        assert np.allclose(got.to_dense(), a.to_dense() ** 2)

    def test_drops_exact_zeros(self):
        m = from_dense(np.array([[1.0, -1.0], [2.0, 0.0]]))
        got = apply(m, lambda v: v + 1.0)
        # the -1 entry becomes exactly 0 and is dropped
        assert got.nnz == 2
        assert got.to_dense()[0, 0] == 2.0

    def test_bad_function(self, pair):
        a, _ = pair
        with pytest.raises(ShapeError):
            apply(a, lambda v: v[:3])


class TestSelect:
    def test_value_filter(self, pair):
        a, _ = pair
        got = select(a, lambda r, c, v: v > 0.5)
        d = a.to_dense()
        assert np.allclose(got.to_dense(), np.where(d > 0.5, d, 0.0))

    def test_offdiagonal(self):
        m = from_dense(np.ones((4, 4)))
        got = select(m, lambda r, c, v: r != c)
        assert got.nnz == 12
        assert np.allclose(np.diag(got.to_dense()), 0.0)

    def test_structural_filter(self, pair):
        a, _ = pair
        upper = select(a, lambda r, c, v: r < c)
        assert np.allclose(upper.to_dense(), np.triu(a.to_dense(), 1))

    def test_bad_predicate(self, pair):
        a, _ = pair
        with pytest.raises(ShapeError):
            select(a, lambda r, c, v: True)


class TestReductions:
    def test_column_sums(self, pair):
        a, _ = pair
        assert np.allclose(reduce_columns(a), a.to_dense().sum(axis=0))

    def test_row_sums(self, pair):
        a, _ = pair
        assert np.allclose(reduce_rows(a), a.to_dense().sum(axis=1))

    def test_min_plus_column_reduce(self, pair):
        a, _ = pair
        got = reduce_columns(a, MIN_PLUS)
        d = a.to_dense()
        for j in range(a.ncols):
            col = d[:, j][d[:, j] != 0]
            expected = col.min() if col.size else float("inf")
            assert got[j] == pytest.approx(expected)

    def test_max_min_row_reduce(self, pair):
        a, _ = pair
        got = reduce_rows(a, MAX_MIN)
        d = a.to_dense()
        for i in range(a.nrows):
            row = d[i][d[i] != 0]
            expected = row.max() if row.size else float("-inf")
            assert got[i] == pytest.approx(expected)

    def test_empty_matrix(self):
        out = reduce_columns(SparseMatrix.empty(3, 4))
        assert np.allclose(out, 0.0)
        out = reduce_columns(SparseMatrix.empty(3, 4), MIN_PLUS)
        assert np.all(np.isinf(out))
