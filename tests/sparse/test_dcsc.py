"""Tests for the DCSC hypersparse format."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse import SparseMatrix, eye, random_sparse
from repro.sparse.dcsc import DcscMatrix, dcsc_saving, from_dcsc, to_dcsc


class TestRoundTrip:
    def test_random(self, square_matrix):
        assert from_dcsc(to_dcsc(square_matrix)).allclose(square_matrix)

    def test_hypersparse(self):
        m = SparseMatrix.from_coo(10000, 10000, [3, 77], [42, 9000], [1.0, 2.0])
        d = to_dcsc(m)
        assert d.nzc == 2
        assert from_dcsc(d).allclose(m)

    def test_empty(self):
        d = to_dcsc(SparseMatrix.empty(5, 7))
        assert d.nnz == 0 and d.nzc == 0
        assert from_dcsc(d).shape == (5, 7)

    def test_dense_column_structure(self):
        m = eye(20)
        d = to_dcsc(m)
        assert d.nzc == 20
        assert from_dcsc(d).allclose(m)

    def test_unsorted_columns_roundtrip(self):
        m = SparseMatrix(4, 2, [0, 2, 3], [3, 1, 0], [1.0, 2.0, 3.0],
                         sorted_within_columns=False)
        d = to_dcsc(m)
        back = from_dcsc(d, sorted_within_columns=False)
        assert back.allclose(m)


class TestStorage:
    def test_nbytes_dimension_independent(self):
        small = SparseMatrix.from_coo(10, 10, [1], [2], [5.0])
        huge = SparseMatrix.from_coo(10**6, 10**6, [1], [2], [5.0])
        assert to_dcsc(small).nbytes == to_dcsc(huge).nbytes

    def test_saving_large_for_hypersparse(self):
        m = SparseMatrix.from_coo(50000, 50000, [1, 2, 3], [10, 20, 30],
                                  [1.0, 1.0, 1.0])
        assert dcsc_saving(m) > 1000  # CSC's indptr dominates massively

    def test_saving_modest_for_dense_columns(self):
        m = random_sparse(40, 40, density=0.5, seed=191)
        assert dcsc_saving(m) < 2.0

    def test_nzc_at_most_nnz(self, square_matrix):
        d = to_dcsc(square_matrix)
        assert d.nzc <= d.nnz


class TestValidation:
    def test_bad_jc_range(self):
        d = DcscMatrix(
            nrows=3, ncols=3,
            jc=np.array([5]), cp=np.array([0, 1]),
            ir=np.array([0]), num=np.array([1.0]),
        )
        with pytest.raises(FormatError):
            from_dcsc(d)

    def test_bad_cp_length(self):
        d = DcscMatrix(
            nrows=3, ncols=3,
            jc=np.array([1]), cp=np.array([0, 1, 1]),
            ir=np.array([0]), num=np.array([1.0]),
        )
        with pytest.raises(FormatError):
            from_dcsc(d)

    def test_repr(self, square_matrix):
        assert "nzc=" in repr(to_dcsc(square_matrix))


class TestWireFormatJustification:
    def test_hypersparse_tile_regime(self):
        """The extreme-scale justification: at p = 262144 on a 70M-row
        matrix, a tile has ~4300 columns but possibly only dozens of
        entries — DCSC keeps the wire cost nnz-proportional."""
        tile = SparseMatrix.from_coo(
            4300, 4300, [5, 100, 4000], [7, 7, 2000], [1.0, 1.0, 1.0]
        )
        d = to_dcsc(tile)
        # wire size ~ r * nnz, as the simulator's accounting assumes
        assert d.nbytes < 3 * tile.nnz * 24
        csc_bytes = tile.indptr.nbytes + tile.rowidx.nbytes + tile.values.nbytes
        assert csc_bytes > 10 * d.nbytes
