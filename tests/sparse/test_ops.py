"""Unit tests for structural operations (transpose, splits, pruning, ...)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import (
    SparseMatrix,
    col_concat,
    col_split,
    col_split_block_cyclic,
    from_dense,
    hstack_interleave_block_cyclic,
    prune_threshold,
    prune_topk_per_column,
    random_sparse,
    scale_columns,
    scale_rows,
    transpose,
    tril,
    triu,
)
from repro.sparse.ops import (
    col_select,
    col_slice,
    column_sums,
    diagonal,
    elementwise_power,
    hadamard,
    split_bounds,
    submatrix,
)


class TestTranspose:
    def test_matches_dense(self, square_matrix):
        assert np.allclose(
            transpose(square_matrix).to_dense(), square_matrix.to_dense().T
        )

    def test_double_transpose_identity(self, square_matrix):
        assert transpose(transpose(square_matrix)).allclose(square_matrix)

    def test_rectangular(self):
        m = random_sparse(5, 9, nnz=20, seed=1)
        t = transpose(m)
        assert t.shape == (9, 5)
        assert np.allclose(t.to_dense(), m.to_dense().T)

    def test_output_sorted(self, square_matrix):
        assert transpose(square_matrix).sorted_within_columns


class TestTriangular:
    def test_triu_tril_partition(self, square_matrix):
        up = triu(square_matrix, 1)
        lo = tril(square_matrix, -1)
        dg = hadamard(square_matrix, from_dense(np.eye(64)))
        total = up.nnz + lo.nnz + dg.nnz
        assert total == square_matrix.nnz

    def test_triu_matches_numpy(self, square_matrix):
        for k in (-2, 0, 3):
            assert np.allclose(
                triu(square_matrix, k).to_dense(),
                np.triu(square_matrix.to_dense(), k),
            )

    def test_tril_matches_numpy(self, square_matrix):
        for k in (-3, 0, 2):
            assert np.allclose(
                tril(square_matrix, k).to_dense(),
                np.tril(square_matrix.to_dense(), k),
            )


class TestScaling:
    def test_scale_columns(self, small_pair):
        a, _ = small_pair
        s = np.arange(a.ncols, dtype=float)
        assert np.allclose(
            scale_columns(a, s).to_dense(), a.to_dense() * s[None, :]
        )

    def test_scale_rows(self, small_pair):
        a, _ = small_pair
        s = np.arange(a.nrows, dtype=float) + 1
        assert np.allclose(
            scale_rows(a, s).to_dense(), a.to_dense() * s[:, None]
        )

    def test_scale_shape_errors(self, small_pair):
        a, _ = small_pair
        with pytest.raises(ShapeError):
            scale_columns(a, np.ones(3))
        with pytest.raises(ShapeError):
            scale_rows(a, np.ones(3))

    def test_elementwise_power(self, square_matrix):
        p = elementwise_power(square_matrix, 2.0)
        assert np.allclose(p.values, square_matrix.values**2)


class TestSplitBounds:
    def test_even(self):
        assert split_bounds(12, 4).tolist() == [0, 3, 6, 9, 12]

    def test_uneven_front_loaded(self):
        assert split_bounds(10, 4).tolist() == [0, 3, 6, 8, 10]

    def test_more_parts_than_items(self):
        b = split_bounds(2, 5)
        assert b[-1] == 2 and len(b) == 6

    def test_invalid(self):
        with pytest.raises(ShapeError):
            split_bounds(5, 0)


class TestColumnOps:
    def test_col_slice(self, square_matrix):
        s = col_slice(square_matrix, 10, 20)
        assert s.shape == (64, 10)
        assert np.allclose(s.to_dense(), square_matrix.to_dense()[:, 10:20])

    def test_col_slice_invalid(self, square_matrix):
        with pytest.raises(ShapeError):
            col_slice(square_matrix, 5, 200)

    def test_col_select_arbitrary_order(self, square_matrix):
        cols = [5, 3, 60, 3]
        s = col_select(square_matrix, cols)
        assert np.allclose(s.to_dense(), square_matrix.to_dense()[:, cols])

    def test_col_select_out_of_range(self, square_matrix):
        with pytest.raises(ShapeError):
            col_select(square_matrix, [999])

    def test_col_split_concat_roundtrip(self, square_matrix):
        parts = col_split(square_matrix, 5)
        assert sum(p.ncols for p in parts) == 64
        assert col_concat(parts).allclose(square_matrix)

    def test_col_concat_empty_error(self):
        with pytest.raises(ShapeError):
            col_concat([])

    def test_col_concat_height_mismatch(self):
        with pytest.raises(ShapeError):
            col_concat([SparseMatrix.empty(2, 2), SparseMatrix.empty(3, 2)])

    def test_block_cyclic_roundtrip(self, square_matrix):
        for nparts, blocks in [(1, 1), (2, 3), (4, 4), (7, 2)]:
            parts, maps = col_split_block_cyclic(square_matrix, nparts, blocks)
            back = hstack_interleave_block_cyclic(parts, maps, 64)
            assert back.allclose(square_matrix), (nparts, blocks)

    def test_block_cyclic_covers_all_columns(self, square_matrix):
        parts, maps = col_split_block_cyclic(square_matrix, 3, 4)
        all_cols = np.sort(np.concatenate(maps))
        assert np.array_equal(all_cols, np.arange(64))

    def test_interleave_incomplete_cover_raises(self, square_matrix):
        parts, maps = col_split_block_cyclic(square_matrix, 2, 2)
        with pytest.raises(ShapeError):
            hstack_interleave_block_cyclic(parts[:1], maps[:1], 64)


class TestSubmatrix:
    def test_matches_dense(self, square_matrix):
        s = submatrix(square_matrix, 10, 30, 5, 25)
        assert np.allclose(
            s.to_dense(), square_matrix.to_dense()[10:30, 5:25]
        )

    def test_empty_ranges(self, square_matrix):
        assert submatrix(square_matrix, 5, 5, 0, 64).nnz == 0

    def test_invalid_rows(self, square_matrix):
        with pytest.raises(ShapeError):
            submatrix(square_matrix, 50, 200, 0, 4)

    def test_tiles_tile_everything(self, square_matrix):
        total = 0
        for r0, r1 in [(0, 30), (30, 64)]:
            for c0, c1 in [(0, 20), (20, 64)]:
                total += submatrix(square_matrix, r0, r1, c0, c1).nnz
        assert total == square_matrix.nnz


class TestHadamard:
    def test_matches_dense(self, square_matrix):
        other = random_sparse(64, 64, nnz=600, seed=99)
        h = hadamard(square_matrix, other)
        assert np.allclose(
            h.to_dense(), square_matrix.to_dense() * other.to_dense()
        )

    def test_empty_operand(self, square_matrix):
        assert hadamard(square_matrix, SparseMatrix.empty(64, 64)).nnz == 0

    def test_shape_mismatch(self, square_matrix):
        with pytest.raises(ShapeError):
            hadamard(square_matrix, SparseMatrix.empty(3, 3))


class TestDiagAndSums:
    def test_diagonal(self):
        m = from_dense(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert diagonal(m).tolist() == [1.0, 4.0]

    def test_diagonal_missing_entries_zero(self):
        m = from_dense(np.array([[0.0, 2.0], [3.0, 0.0]]))
        assert diagonal(m).tolist() == [0.0, 0.0]

    def test_column_sums(self, square_matrix):
        assert np.allclose(
            column_sums(square_matrix), square_matrix.to_dense().sum(axis=0)
        )


class TestPruning:
    def test_threshold(self):
        m = from_dense(np.array([[0.1, 0.9], [-0.5, 0.01]]))
        p = prune_threshold(m, 0.2)
        assert p.nnz == 2
        assert p.to_dense()[1, 0] == -0.5

    def test_threshold_keeps_all(self, square_matrix):
        assert prune_threshold(square_matrix, 0.0).nnz == square_matrix.nnz

    def test_topk_keeps_largest(self):
        m = from_dense(np.array([[0.1], [0.5], [0.9], [0.3]]))
        p = prune_topk_per_column(m, 2)
        d = p.to_dense().ravel()
        assert d.tolist() == [0.0, 0.5, 0.9, 0.0]

    def test_topk_no_op_when_k_large(self, square_matrix):
        assert prune_topk_per_column(square_matrix, 1000) is square_matrix

    def test_topk_zero(self, square_matrix):
        assert prune_topk_per_column(square_matrix, 0).nnz == 0

    def test_topk_negative_raises(self, square_matrix):
        with pytest.raises(ShapeError):
            prune_topk_per_column(square_matrix, -1)

    def test_topk_tie_break_smaller_row(self):
        m = from_dense(np.array([[0.5], [0.5], [0.5]]))
        p = prune_topk_per_column(m, 1)
        assert p.rowidx.tolist() == [0]

    def test_topk_per_column_counts(self, square_matrix):
        p = prune_topk_per_column(square_matrix, 3)
        assert np.all(p.col_nnz() <= 3)
