"""Unit tests for matrix constructors."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import diag, eye, from_dense, from_edges, random_sparse, zeros


class TestEyeDiagZeros:
    def test_eye(self):
        m = eye(4)
        assert np.allclose(m.to_dense(), np.eye(4))

    def test_eye_scaled(self):
        assert np.allclose(eye(3, value=2.5).to_dense(), 2.5 * np.eye(3))

    def test_diag(self):
        m = diag([1.0, 0.0, 3.0])
        assert m.nnz == 2  # explicit zero dropped
        assert m.to_dense()[2, 2] == 3.0

    def test_zeros(self):
        assert zeros(3, 5).nnz == 0


class TestFromDense:
    def test_roundtrip(self, rng):
        d = rng.random((6, 7)) * (rng.random((6, 7)) < 0.5)
        assert np.allclose(from_dense(d).to_dense(), d)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            from_dense(np.ones(3))


class TestFromEdges:
    def test_basic(self):
        m = from_edges(3, 3, [[0, 1], [2, 0]])
        d = m.to_dense()
        assert d[0, 1] == 1.0 and d[2, 0] == 1.0
        assert m.nnz == 2

    def test_duplicate_edges_sum(self):
        m = from_edges(2, 2, [[0, 1], [0, 1]])
        assert m.to_dense()[0, 1] == 2.0

    def test_symmetric(self):
        m = from_edges(3, 3, [[0, 1]], symmetric=True)
        d = m.to_dense()
        assert d[0, 1] == 1.0 and d[1, 0] == 1.0

    def test_symmetric_self_loop_not_doubled(self):
        m = from_edges(2, 2, [[1, 1]], symmetric=True)
        assert m.to_dense()[1, 1] == 1.0

    def test_symmetric_requires_square(self):
        with pytest.raises(ShapeError):
            from_edges(2, 3, [[0, 1]], symmetric=True)

    def test_empty_edges(self):
        assert from_edges(3, 3, []).nnz == 0

    def test_bad_shape(self):
        with pytest.raises(ShapeError):
            from_edges(3, 3, [[0, 1, 2]])

    def test_with_values(self):
        m = from_edges(2, 2, [[0, 0]], values=[7.5])
        assert m.to_dense()[0, 0] == 7.5


class TestRandomSparse:
    def test_exact_nnz(self):
        m = random_sparse(20, 30, nnz=50, seed=1)
        assert m.nnz == 50

    def test_density(self):
        m = random_sparse(10, 10, density=0.25, seed=2)
        assert m.nnz == 25

    def test_determinism(self):
        a = random_sparse(15, 15, nnz=40, seed=3)
        b = random_sparse(15, 15, nnz=40, seed=3)
        assert a.allclose(b)

    def test_different_seeds_differ(self):
        a = random_sparse(15, 15, nnz=40, seed=3)
        b = random_sparse(15, 15, nnz=40, seed=4)
        assert not a.allclose(b)

    def test_needs_exactly_one_sizing(self):
        with pytest.raises(ValueError):
            random_sparse(5, 5)
        with pytest.raises(ValueError):
            random_sparse(5, 5, density=0.1, nnz=3)

    def test_nnz_too_large(self):
        with pytest.raises(ValueError):
            random_sparse(3, 3, nnz=10)

    def test_dense_regime_permutation(self):
        m = random_sparse(6, 6, nnz=30, seed=5)
        assert m.nnz == 30

    def test_no_explicit_zeros(self):
        m = random_sparse(30, 30, nnz=200, seed=6)
        assert np.all(m.values != 0.0)

    def test_value_kinds(self):
        for kind in ("uniform", "ones", "normal"):
            m = random_sparse(10, 10, nnz=20, seed=7, values=kind)
            assert np.all(m.values != 0.0)
        with pytest.raises(ValueError):
            random_sparse(5, 5, nnz=3, values="bogus")

    def test_empty(self):
        assert random_sparse(0, 0, nnz=0, seed=0).nnz == 0
