"""Unit tests for the CSC container and its invariants."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse import SparseMatrix, eye, random_sparse
from tests.conftest import to_scipy


class TestConstruction:
    def test_from_coo_basic(self):
        m = SparseMatrix.from_coo(3, 3, [0, 1, 2], [0, 1, 2], [1.0, 2.0, 3.0])
        assert m.shape == (3, 3)
        assert m.nnz == 3
        assert np.allclose(np.diag(m.to_dense()), [1, 2, 3])

    def test_from_coo_sums_duplicates(self):
        m = SparseMatrix.from_coo(2, 2, [0, 0, 1], [0, 0, 1], [1.0, 2.0, 5.0])
        assert m.nnz == 2
        assert m.to_dense()[0, 0] == 3.0

    def test_empty(self):
        m = SparseMatrix.empty(4, 7)
        assert m.shape == (4, 7)
        assert m.nnz == 0
        assert m.to_dense().sum() == 0

    def test_zero_dimension(self):
        m = SparseMatrix.empty(0, 0)
        assert m.nnz == 0

    def test_validates_indptr_length(self):
        with pytest.raises(FormatError, match="indptr length"):
            SparseMatrix(2, 2, [0, 1], [0], [1.0])

    def test_validates_indptr_start(self):
        with pytest.raises(FormatError, match="start at 0"):
            SparseMatrix(2, 2, [1, 1, 1], [], [])

    def test_validates_indptr_monotone(self):
        with pytest.raises(FormatError, match="non-decreasing"):
            SparseMatrix(2, 2, [0, 2, 1], [0, 1], [1.0, 2.0])

    def test_validates_row_range(self):
        with pytest.raises(FormatError, match="row index out of range"):
            SparseMatrix(2, 2, [0, 1, 2], [0, 5], [1.0, 2.0])

    def test_validates_duplicates(self):
        with pytest.raises(FormatError, match="duplicate"):
            SparseMatrix(2, 2, [0, 2, 2], [1, 1], [1.0, 2.0],
                         sorted_within_columns=False)

    def test_validates_sortedness_claim(self):
        with pytest.raises(FormatError, match="unsorted"):
            SparseMatrix(3, 1, [0, 2], [2, 0], [1.0, 2.0],
                         sorted_within_columns=True)

    def test_unsorted_flag_accepts_unsorted(self):
        m = SparseMatrix(3, 1, [0, 2], [2, 0], [1.0, 2.0],
                         sorted_within_columns=False)
        assert m.nnz == 2

    def test_array_length_mismatch(self):
        with pytest.raises(FormatError, match="array lengths"):
            SparseMatrix(2, 2, [0, 1, 2], [0, 1, 0], [1.0, 2.0])


class TestAccessors:
    def test_col_nnz(self):
        m = SparseMatrix.from_coo(3, 3, [0, 1, 2], [0, 0, 2], [1, 1, 1])
        assert m.col_nnz().tolist() == [2, 0, 1]

    def test_col_indices(self):
        m = SparseMatrix.from_coo(3, 3, [0, 1, 2], [0, 0, 2], [1, 1, 1])
        assert m.col_indices().tolist() == [0, 0, 2]

    def test_column_view(self):
        m = SparseMatrix.from_coo(4, 2, [1, 3, 0], [0, 0, 1], [5.0, 6.0, 7.0])
        rows, vals = m.column(0)
        assert rows.tolist() == [1, 3]
        assert vals.tolist() == [5.0, 6.0]

    def test_column_out_of_range(self):
        m = SparseMatrix.empty(2, 2)
        with pytest.raises(IndexError):
            m.column(5)

    def test_nbytes_is_24_per_nonzero_plus_indptr(self):
        m = random_sparse(10, 10, nnz=20, seed=0)
        assert m.nbytes == 20 * 24


class TestConversions:
    def test_dense_roundtrip(self, rng):
        dense = rng.random((8, 9)) * (rng.random((8, 9)) < 0.4)
        from repro.sparse import from_dense

        m = from_dense(dense)
        assert np.allclose(m.to_dense(), dense)

    def test_to_coo_roundtrip(self, square_matrix):
        rows, cols, vals = square_matrix.to_coo()
        back = SparseMatrix.from_coo(
            square_matrix.nrows, square_matrix.ncols, rows, cols, vals
        )
        assert back.allclose(square_matrix)

    def test_scipy_agreement(self, square_matrix):
        assert np.allclose(
            to_scipy(square_matrix).toarray(), square_matrix.to_dense()
        )

    def test_sort_indices_idempotent(self, square_matrix):
        assert square_matrix.sort_indices() is square_matrix

    def test_sort_indices_sorts(self):
        m = SparseMatrix(3, 1, [0, 3], [2, 0, 1], [3.0, 1.0, 2.0],
                         sorted_within_columns=False)
        s = m.sort_indices()
        assert s.rowidx.tolist() == [0, 1, 2]
        assert s.values.tolist() == [1.0, 2.0, 3.0]
        assert s.sorted_within_columns

    def test_canonical_drops_zeros(self):
        m = SparseMatrix(2, 2, [0, 1, 2], [0, 1], [0.0, 1.0])
        c = m.canonical()
        assert c.nnz == 1
        assert c.to_dense()[1, 1] == 1.0

    def test_canonical_empty_columns(self):
        m = SparseMatrix(3, 4, [0, 0, 1, 1, 1], [1], [0.0])
        assert m.canonical().nnz == 0


class TestComparison:
    def test_allclose_ignores_order(self):
        a = SparseMatrix(3, 1, [0, 2], [2, 0], [1.0, 2.0],
                         sorted_within_columns=False)
        b = SparseMatrix(3, 1, [0, 2], [0, 2], [2.0, 1.0])
        assert a.allclose(b)

    def test_allclose_shape_mismatch(self):
        assert not SparseMatrix.empty(2, 2).allclose(SparseMatrix.empty(2, 3))

    def test_allclose_value_mismatch(self):
        a = eye(3)
        b = eye(3, value=2.0)
        assert not a.allclose(b)


class TestOperators:
    def test_matmul(self, small_pair):
        a, b = small_pair
        c = a @ b
        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense())

    def test_matmul_shape_error(self):
        with pytest.raises(ShapeError):
            eye(3) @ eye(4)

    def test_transpose_property(self, small_pair):
        a, _ = small_pair
        assert np.allclose(a.T.to_dense(), a.to_dense().T)
