"""ExecSpec / ExecPlan: serialisation round-trips, forward compatibility,
the single-conversion-point contract, and the amendment transition."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PlannerError, ShapeError
from repro.plan import ExecPlan, ExecSpec
from repro.plan.spec import SPEC_FIELDS

# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #

# every knob with a pool of realistic values; the round-trip property
# samples an arbitrary subset, so any field combination is exercised.
_KNOBS = {
    "nprocs": st.sampled_from([1, 2, 4, 8, 16]),
    "layers": st.sampled_from([1, 2, 4]),
    "batches": st.none() | st.integers(1, 32),
    "memory_budget": st.none() | st.integers(1 << 10, 1 << 30),
    "memory_budget_per_rank": st.none() | st.integers(1 << 10, 1 << 24),
    "enforce": st.sampled_from(["off", "warn", "strict"]),
    "bytes_per_nonzero": st.sampled_from([16, 20, 32]),
    "suite": st.sampled_from(["esc", "heap", "hybrid"]),
    "semiring": st.sampled_from(["plus_times", "min_plus"]),
    "kernel": st.sampled_from(["spgemm", "spmm", "masked_spgemm"]),
    "mask_complement": st.booleans(),
    "keep_output": st.booleans(),
    "batch_scheme": st.sampled_from(["block-cyclic", "contiguous"]),
    "merge_policy": st.sampled_from(["deferred", "eager"]),
    "comm_backend": st.sampled_from(["dense", "sparse"]),
    "overlap": st.sampled_from(["off", "depth1"]),
    "spill_dir": st.none() | st.just("/tmp/spill"),
    "timeout": st.sampled_from([5.0, 30.0, 120.0]),
    "checksums": st.none() | st.booleans(),
    "max_retries": st.none() | st.integers(0, 5),
    "checkpoint_dir": st.none() | st.just("/tmp/ckpt"),
    "resume": st.booleans(),
    "checkpoint_keep_last": st.none() | st.integers(1, 4),
    "heal": st.none() | st.sampled_from(["shrink", "spare"]),
    "world_spares": st.integers(0, 2),
    "world": st.sampled_from(["threads", "processes"]),
    "transport": st.sampled_from(["auto", "pickle", "shm"]),
    "replan": st.sampled_from(["off", "auto"]),
    "replan_threshold": st.sampled_from([0.0, 0.15, 0.5]),
    "replan_min_batches": st.integers(1, 4),
    "max_replans": st.integers(0, 3),
    "replan_force": st.sampled_from(
        [(), ((1, {"batches": 2}),), ((0, {"comm_backend": "sparse"}),)]
    ),
}
assert set(_KNOBS) == set(SPEC_FIELDS), (
    "knob strategy drifted from ExecSpec fields: "
    f"{set(_KNOBS) ^ set(SPEC_FIELDS)}"
)

knob_dicts = st.fixed_dictionaries({}, optional=_KNOBS)

# unknown keys a future writer might add; values restricted to JSON-safe
# scalars (that is all a manifest would carry).
future_keys = st.dictionaries(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=3, max_size=12
    ).filter(lambda k: k not in SPEC_FIELDS and k != "spec_version"),
    st.none() | st.booleans() | st.integers(-10, 10) | st.text(max_size=8),
    max_size=3,
)


# ---------------------------------------------------------------------- #
# ExecSpec round-trip (satellite 2)
# ---------------------------------------------------------------------- #

class TestExecSpecRoundTrip:
    @given(knobs=knob_dicts)
    def test_to_dict_from_dict_identity(self, knobs):
        spec = ExecSpec.from_kwargs(**knobs)
        assert ExecSpec.from_dict(spec.to_dict()) == spec

    @given(knobs=knob_dicts)
    def test_dict_form_is_stable(self, knobs):
        d = ExecSpec.from_kwargs(**knobs).to_dict()
        assert ExecSpec.from_dict(d).to_dict() == d

    @given(knobs=knob_dicts, future=future_keys)
    def test_unknown_keys_survive_round_trip(self, knobs, future):
        # a newer writer's dict (extra keys) must load under this reader
        # and re-serialise losslessly — checkpoint manifests rely on it.
        d = ExecSpec.from_kwargs(**knobs).to_dict()
        d.update(future)
        spec = ExecSpec.from_dict(d)
        assert spec.extra == future
        again = spec.to_dict()
        for key, value in future.items():
            assert again[key] == value
        assert ExecSpec.from_dict(again) == spec

    def test_registry_objects_normalise_to_names(self):
        from repro.kernels import get_kernel

        spec = ExecSpec.from_kwargs(kernel=get_kernel("spgemm"))
        assert spec.to_dict()["kernel"] == "spgemm"

    def test_replan_force_canonicalised(self):
        spec = ExecSpec.from_kwargs(replan_force=[[1, {"batches": 2}]])
        assert spec.replan_force == ((1, {"batches": 2}),)
        assert ExecSpec.from_dict(spec.to_dict()) == spec


class TestExecSpecConversionPoint:
    def test_unknown_knob_raises_with_name(self):
        with pytest.raises(TypeError, match="definitely_not_a_knob"):
            ExecSpec.from_kwargs(definitely_not_a_knob=1)

    def test_all_spec_fields_accepted(self):
        defaults = {f: getattr(ExecSpec(), f) for f in SPEC_FIELDS}
        assert ExecSpec.from_kwargs(**defaults) == ExecSpec()

    def test_validate_rejects_bad_batches(self):
        with pytest.raises(ShapeError, match="batches"):
            ExecSpec.from_kwargs(batches=0).validate()

    def test_validate_rejects_bad_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            ExecSpec.from_kwargs(overlap="sometimes").validate()

    def test_validate_rejects_bad_replan_mode(self):
        with pytest.raises(ValueError, match="replan"):
            ExecSpec.from_kwargs(replan="maybe").validate()

    def test_validate_rejects_replan_with_heal(self):
        spec = ExecSpec.from_kwargs(
            replan="auto", heal="shrink", checkpoint_dir="/tmp/ckpt"
        )
        with pytest.raises(ValueError, match="heal"):
            spec.validate()

    def test_validate_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="replan_threshold"):
            ExecSpec.from_kwargs(replan_threshold=1.0).validate()


# ---------------------------------------------------------------------- #
# ExecPlan
# ---------------------------------------------------------------------- #

class TestExecPlanRoundTrip:
    @given(knobs=knob_dicts, future=future_keys)
    def test_round_trip_with_embedded_spec(self, knobs, future):
        plan = ExecPlan(
            layers=4,
            batches=8,
            predicted_seconds=1.25,
            candidates=((1, 2.0), (4, 1.25)),
            backend="sparse",
            predicted_memory={"per_rank": 1024},
            spec=ExecSpec.from_kwargs(**knobs),
            provenance={"mode": "auto", "machine": "cori-knl"},
            revision=1,
        )
        d = plan.to_dict()
        d.update(future)
        back = ExecPlan.from_dict(d)
        assert back.spec == plan.spec
        assert back.extra == future
        assert back.to_dict() == d

    def test_round_trip_without_spec(self):
        plan = ExecPlan(layers=2, batches=4, backend="dense")
        assert ExecPlan.from_dict(plan.to_dict()) == plan


class TestExecPlanAmend:
    def test_amend_records_provenance_and_revision(self):
        plan = ExecPlan(
            layers=2, batches=8, backend="dense",
            spec=ExecSpec.from_kwargs(batches=8),
        )
        amended = plan.amend(
            reason="fixed-cost-dominated",
            measurements={"t_fixed": 1.0},
            batches=4,
        )
        assert amended.batches == 4
        assert amended.revision == 1
        assert amended.spec.batches == 4
        assert amended.provenance["mode"] == "replan"
        (event,) = amended.provenance["replans"]
        assert event["reason"] == "fixed-cost-dominated"
        assert event["from"]["batches"] == 8
        assert event["to"]["batches"] == 4

    def test_amend_rejects_non_resolved_fields(self):
        with pytest.raises(PlannerError, match="memory_budget"):
            ExecPlan().amend(reason="x", memory_budget=1)

    def test_with_spec_grafts_runtime_knobs(self):
        plan = ExecPlan(batches=4, spec=ExecSpec.from_kwargs(batches=4))
        run = plan.with_spec(world="processes", timeout=9.0)
        assert run.spec.world == "processes"
        assert run.spec.timeout == 9.0
        assert run.spec.batches == 4      # chosen configuration untouched
        assert run.batches == 4


def test_planchoice_is_deprecated_alias():
    from repro.summa.planner import PlanChoice

    assert PlanChoice is ExecPlan
