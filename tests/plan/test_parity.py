"""Driver-surface parity: ``batched_summa3d`` and ``batched_summa3d_rows``
must expose the identical signature, and every knob either driver accepts
must be an :class:`~repro.plan.ExecSpec` field.

This is the regression fence for the historical kwarg drift between the
column- and row-batched drivers: both now funnel ``**knobs`` through
``ExecSpec.from_kwargs`` (the single conversion point), so this module
fails the moment either surface diverges again.
"""

from __future__ import annotations

import inspect

import pytest

from repro.plan.spec import SPEC_FIELDS, ExecSpec
from repro.sparse import random_sparse
from repro.summa import batched_summa3d, batched_summa3d_rows, run_plan


def _tiny():
    a = random_sparse(8, 8, nnz=20, seed=11)
    b = random_sparse(8, 8, nnz=20, seed=12)
    return a, b


class TestSignatureParity:
    def test_signatures_identical(self):
        assert (
            inspect.signature(batched_summa3d)
            == inspect.signature(batched_summa3d_rows)
        )

    def test_knobs_are_exactly_spec_fields(self):
        # the **knobs surface is the spec's field set, nothing else:
        # every field constructs, every non-field raises.
        defaults = {f: getattr(ExecSpec(), f) for f in SPEC_FIELDS}
        assert ExecSpec.from_kwargs(**defaults) == ExecSpec()

    def test_runtime_only_args_stay_out_of_spec(self):
        # mask/sample/postprocess/on_batch/tracker/faults are explicit
        # parameters (runtime objects), never spec knobs.
        sig = inspect.signature(batched_summa3d)
        for name in ("mask", "sample", "postprocess", "on_batch",
                     "tracker", "faults", "plan"):
            assert name in sig.parameters
            assert name not in SPEC_FIELDS


class TestUnknownKnobParity:
    def test_both_drivers_reject_unknown_knob_identically(self):
        a, b = _tiny()
        errors = []
        for driver in (batched_summa3d, batched_summa3d_rows):
            with pytest.raises(TypeError, match="no_such_knob") as exc:
                driver(a, b, 4, not_a_knob=1, no_such_knob=2)
            errors.append(str(exc.value))
        assert errors[0] == errors[1]

    def test_plan_and_loose_knobs_are_mutually_exclusive(self):
        a, b = _tiny()
        spec = ExecSpec.from_kwargs(nprocs=4)
        for driver in (batched_summa3d, batched_summa3d_rows):
            with pytest.raises(TypeError, match="batches"):
                driver(a, b, plan=spec, batches=2)


class TestPlanEntryPoints:
    def test_wrapper_and_run_plan_agree(self):
        a, b = _tiny()
        via_kwargs = batched_summa3d(a, b, 4, batches=2)
        spec = ExecSpec.from_kwargs(nprocs=4, batches=2)
        via_plan = run_plan(a, b, spec)
        via_dict = run_plan(a, b, spec.to_dict())
        for r in (via_plan, via_dict):
            assert r.matrix.allclose(via_kwargs.matrix)
            assert r.info["plan"]["batches"] == 2

    def test_rows_driver_accepts_plan(self):
        a, b = _tiny()
        spec = ExecSpec.from_kwargs(nprocs=4, batches=2)
        r = batched_summa3d_rows(a, b, plan=spec)
        assert r.info["batch_axis"] == "rows"
        assert r.matrix.allclose(batched_summa3d(a, b, 4, batches=2).matrix)
