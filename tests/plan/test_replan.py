"""Mid-run replanning correctness.

The load-bearing invariant: **replanning never changes the product.**  An
amended-plan run must be bit-identical to a fixed-plan run of the final
configuration — across kernels, comm backends, and execution worlds.  On
top of that: the pure decision function's levers fire on the documented
conditions and *only* on them (hysteresis), and checkpoint manifests
reject a resume under a plan whose geometry differs.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import CheckpointError, ReplanSignal
from repro.plan import ExecSpec
from repro.plan.replan import ReplanPolicy, decide_replan
from repro.resilience.checkpoint import CheckpointManager, PLAN_GEOMETRY_KEYS
from repro.sparse import random_sparse
from repro.summa import batched_summa3d


def _identical(x, y) -> bool:
    if isinstance(x, np.ndarray):
        return np.array_equal(x, y)
    return (
        x.shape == y.shape
        and np.array_equal(x.indptr, y.indptr)
        and np.array_equal(x.rowidx, y.rowidx)
        and np.array_equal(x.values, y.values)
    )


# ---------------------------------------------------------------------- #
# decide_replan: the pure lever logic
# ---------------------------------------------------------------------- #

class TestDecideReplan:
    POLICY = ReplanPolicy(threshold=0.15, min_gain_s=1e-4)

    def _decide(self, policy=None, **over):
        kwargs = dict(
            batches=8, batch=0, backend="dense",
            t_fixed=1.0, t_scaled=0.125, t_comm=0.0,
            peak=0.0, fixed_mem=0.0, budget=None, max_batches=64,
        )
        kwargs.update(over)
        return decide_replan(policy or self.POLICY, **kwargs)

    def test_shrink_fires_when_fixed_cost_dominates(self):
        # t_keep = 7 * 1.125 = 7.875; shrink to 4 costs
        # 4*1.0 + 8*0.125 = 5.0 < 0.85 * 7.875 — adopt.
        amended, reason = self._decide()
        assert amended == {"batches": 4}
        assert reason == "fixed-cost-dominated"

    def test_no_amendment_on_final_batch(self):
        assert self._decide(batch=7) is None

    def test_revision_cap_blocks(self):
        policy = ReplanPolicy(max_replans=1, revision=1)
        assert self._decide(policy) is None

    def test_hysteresis_threshold_blocks_marginal_gain(self):
        # same measurements, but demand a 60% predicted gain:
        # 5.0 >= 0.4 * 7.875 — stay the course.
        assert self._decide(ReplanPolicy(threshold=0.6)) is None

    def test_scaled_cost_dominated_never_shrinks(self):
        # fixed cost negligible: shrinking redistributes the same scaled
        # work, t_switch ≈ t_keep + extra fixed savings of ~0 — no gain.
        assert self._decide(t_fixed=0.001, t_scaled=1.0) is None

    def test_shrink_respects_memory_feasibility(self):
        # predicted peak at b=4 is 10 + 40*(8/4) = 90 > 100 * 0.8.
        assert self._decide(peak=50.0, fixed_mem=10.0, budget=100.0) is None

    def test_grow_fires_over_budget(self):
        amended, reason = self._decide(
            batches=2, t_fixed=0.1, t_scaled=0.1,
            peak=150.0, budget=100.0,
        )
        assert amended == {"batches": 4}
        assert reason == "over-budget"

    def test_grow_capped_by_max_batches(self):
        assert self._decide(
            batches=2, t_fixed=0.1, t_scaled=0.1,
            peak=150.0, budget=100.0, max_batches=2,
        ) is None

    def test_backend_flip_fires_when_comm_bound(self):
        # t_keep = 3 * 1.0; other backend's per-batch cost is
        # 1.0 - 0.9 + 0.9*0.2 = 0.28, redo all 4 batches: 1.12 < 2.55.
        policy = ReplanPolicy(
            allow_shrink=False,
            modelled_comm=(("dense", 1.0), ("sparse", 0.2)),
        )
        amended, reason = self._decide(
            policy, batches=4, t_fixed=0.1, t_scaled=0.9, t_comm=0.9,
        )
        assert amended == {"comm_backend": "sparse"}
        assert reason == "comm-bound-backend"

    def test_backend_flip_needs_model_table(self):
        policy = ReplanPolicy(allow_shrink=False, modelled_comm=())
        assert self._decide(
            policy, batches=4, t_fixed=0.1, t_scaled=0.9, t_comm=0.9,
        ) is None

    def test_resumable_flip_only_redoes_remainder(self):
        # with a checkpoint, redo = rem; a flip that is too costly when
        # redoing everything becomes worthwhile.
        modelled = (("dense", 1.0), ("sparse", 0.55))
        base = dict(batches=4, t_fixed=0.1, t_scaled=0.9, t_comm=0.9)
        # per_batch_other = 1.0 - 0.9 + 0.9*0.55 = 0.595
        # not resumable: 4 * 0.595 = 2.38 >= 0.85 * 3 = 2.55? no, fires.
        # tighten threshold so only the resumable case clears it:
        # resumable: 3 * 0.595 = 1.785 < 0.6 * 3 = 1.8; full: 2.38 >= 1.8.
        strict = ReplanPolicy(
            allow_shrink=False, modelled_comm=modelled, threshold=0.4,
        )
        assert self._decide(strict, **base) is None
        resumable = ReplanPolicy(
            allow_shrink=False, modelled_comm=modelled, threshold=0.4,
            resumable=True,
        )
        amended, _ = self._decide(resumable, **base)
        assert amended == {"comm_backend": "sparse"}


def test_replan_signal_pickles_for_process_world():
    sig = ReplanSignal(
        "replan at batch 1", batch=1, batches=4,
        amended={"batches": 2}, reason="forced",
        measurements={"t_fixed": 1.0},
    )
    back = pickle.loads(pickle.dumps(sig))
    assert back.batch == 1
    assert back.amended == {"batches": 2}
    assert back.reason == "forced"


# ---------------------------------------------------------------------- #
# amended runs are bit-identical to fixed-plan runs (the hard rule)
# ---------------------------------------------------------------------- #

CASES = [
    ("spgemm", "dense", "threads"),
    ("spgemm", "sparse", "threads"),
    ("spgemm", "dense", "processes"),
    ("spmm", "dense", "threads"),
]


def _operands(kernel):
    a = random_sparse(48, 48, nnz=320, seed=21)
    if kernel == "spmm":
        b = np.ascontiguousarray(
            np.random.default_rng(3).standard_normal((48, 6))
        )
    else:
        b = random_sparse(48, 48, nnz=320, seed=22)
    return a, b


class TestReplanBitIdentity:
    @pytest.mark.parametrize("kernel,backend,world", CASES)
    def test_forced_rebatch_matches_fixed_plan(self, kernel, backend, world):
        a, b = _operands(kernel)
        common = dict(
            kernel=kernel, comm_backend=backend, world=world, timeout=60.0,
        )
        replanned = batched_summa3d(
            a, b, 4, batches=4,
            replan_force=((1, {"batches": 2}),), **common,
        )
        fixed = batched_summa3d(a, b, 4, batches=2, **common)
        assert _identical(replanned.matrix, fixed.matrix)

        plan = replanned.info["plan"]
        assert plan["revision"] == 1
        assert plan["batches"] == 2
        assert plan["provenance"]["mode"] == "replan"
        (event,) = replanned.info["resilience"]["replans"]
        assert event["at_batch"] == 1
        assert event["reason"] == "forced"
        assert event["from"]["batches"] == 4
        assert event["to"]["batches"] == 2
        # the fixed-plan run carries revision 0 and no replan log
        assert fixed.info["plan"]["revision"] == 0

    def test_forced_backend_flip_matches_fixed_plan(self):
        a, b = _operands("spgemm")
        replanned = batched_summa3d(
            a, b, 4, batches=3, comm_backend="dense",
            replan_force=((0, {"comm_backend": "sparse"}),), timeout=60.0,
        )
        fixed = batched_summa3d(
            a, b, 4, batches=3, comm_backend="sparse", timeout=60.0,
        )
        assert _identical(replanned.matrix, fixed.matrix)
        plan = replanned.info["plan"]
        assert plan["backend"] == "sparse"
        assert plan["batches"] == 3
        assert plan["revision"] == 1
        (event,) = replanned.info["resilience"]["replans"]
        assert event["from"]["backend"] == "dense"
        assert event["to"]["backend"] == "sparse"

    def test_final_plan_spec_reflects_amendment(self):
        a, b = _operands("spgemm")
        r = batched_summa3d(
            a, b, 4, batches=4, replan_force=((0, {"batches": 2}),),
        )
        spec = ExecSpec.from_dict(r.info["plan"]["spec"])
        assert spec.batches == 2


class TestReplanHysteresis:
    def test_noisy_but_stable_workload_never_replans(self):
        # replan="auto" on a small balanced problem: measured timings are
        # noisy, but no lever's predicted gain can clear the threshold
        # (shrinking b=2 conserves the scaled work; no budget, so no
        # grow; the modelled backend ratio is ~1).  Three repeats to give
        # timing noise a chance to thrash — it must not.
        a = random_sparse(40, 40, nnz=240, seed=31)
        b = random_sparse(40, 40, nnz=240, seed=32)
        for _ in range(3):
            r = batched_summa3d(a, b, 4, batches=2, replan="auto")
            assert r.info["plan"]["revision"] == 0
            assert "replans" not in (r.info.get("resilience") or {})
            assert r.matrix.allclose(batched_summa3d(a, b, 4).matrix)


# ---------------------------------------------------------------------- #
# checkpoint manifests embed the plan (satellite 2's consumer)
# ---------------------------------------------------------------------- #

class TestCheckpointPlanGuard:
    SPEC = ExecSpec.from_kwargs(nprocs=4, layers=1, batches=4)

    def test_resume_rejects_geometry_mismatch(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.start_run("k", 4, self.SPEC.to_dict())
        with pytest.raises(CheckpointError, match="layers"):
            CheckpointManager(tmp_path).resume_run(
                "k", plan=self.SPEC.amended(layers=2).to_dict()
            )

    def test_resume_accepts_round_tripped_plan(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.start_run("k", 4, self.SPEC.to_dict())
        resumed = ExecSpec.from_dict(self.SPEC.to_dict())
        batches, first = CheckpointManager(tmp_path).resume_run(
            "k", plan=resumed.to_dict()
        )
        assert (batches, first) == (4, 0)

    def test_backend_flip_is_not_a_geometry_change(self, tmp_path):
        # comm_backend is deliberately outside PLAN_GEOMETRY_KEYS — a
        # replanned flip resumes past durable batches instead of
        # invalidating them.
        assert "comm_backend" not in PLAN_GEOMETRY_KEYS
        mgr = CheckpointManager(tmp_path)
        mgr.start_run("k", 4, self.SPEC.to_dict())
        flipped = self.SPEC.amended(comm_backend="sparse")
        batches, first = CheckpointManager(tmp_path).resume_run(
            "k", plan=flipped.to_dict()
        )
        assert (batches, first) == (4, 0)
