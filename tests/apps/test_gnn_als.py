"""End-to-end tests for the dense-kernel applications: GNN feature
propagation (iterated SpMM) and ALS rating prediction (SDDMM).

The process-world/shm run is an ISSUE acceptance criterion: propagation
must work end-to-end through :class:`~repro.dist.DistContext` with the
adjacency resident across hops, and match the threaded result bitwise.
"""

import numpy as np
import pytest

from repro.apps import (
    als_residual,
    gnn_propagate,
    normalize_adjacency,
    predict_ratings,
)
from repro.errors import ShapeError
from repro.sparse import SparseMatrix, random_sparse


@pytest.fixture(scope="module")
def graph():
    return random_sparse(48, 48, nnz=400, seed=23)


@pytest.fixture(scope="module")
def features():
    return np.ascontiguousarray(
        np.random.default_rng(4).standard_normal((48, 5))
    )


def _dense_reference(adjacency, x, hops):
    op = normalize_adjacency(adjacency).to_dense()
    for _ in range(hops):
        x = op @ x
    return x


class TestNormalizeAdjacency:
    def test_rows_are_stochastic(self, graph):
        op = normalize_adjacency(graph)
        sums = np.zeros(op.nrows)
        np.add.at(sums, op.rowidx, op.values)
        assert np.allclose(sums[sums != 0], 1.0)

    def test_self_loops_added(self, graph):
        op = normalize_adjacency(graph)
        diag = op.to_dense().diagonal()
        assert np.all(diag > 0)

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            normalize_adjacency(random_sparse(5, 6, nnz=4, seed=1))


class TestGnnPropagate:
    def test_matches_dense_reference(self, graph, features):
        r = gnn_propagate(graph, features, hops=3, nprocs=4, batches=2)
        assert np.allclose(
            r.features, _dense_reference(graph, features, 3)
        )
        assert len(r.per_hop) == 3

    def test_process_world_shm_end_to_end(self, graph, features):
        """Acceptance criterion: runs under world="processes"
        transport="shm" via DistContext, bit-identical to threads."""
        kw = dict(hops=2, nprocs=4, batches=2)
        threaded = gnn_propagate(graph, features, **kw)
        procs = gnn_propagate(
            graph, features, world="processes", transport="shm", **kw
        )
        assert np.array_equal(procs.features, threaded.features)
        assert np.allclose(
            procs.features, _dense_reference(graph, features, 2)
        )

    def test_keep_history_and_metering(self, graph, features):
        r = gnn_propagate(
            graph, features, hops=2, nprocs=4, keep_history=True
        )
        assert len(r.hops) == 2
        assert np.array_equal(r.hops[-1], r.features)
        for hop in r.per_hop:
            assert hop.info["kernel"] == "spmm"
            assert hop.memory["high_water_total"] > 0

    def test_memory_budget_forces_batching(self, graph, features):
        r = gnn_propagate(
            graph, features, hops=1, nprocs=4,
            batches=None, memory_budget=200_000,
        )
        assert np.allclose(
            r.features, _dense_reference(graph, features, 1)
        )

    def test_vector_features_promoted(self, graph):
        v = np.random.default_rng(5).standard_normal(48)
        r = gnn_propagate(graph, v, hops=1, nprocs=4)
        assert r.features.shape == (48, 1)

    def test_bad_panel_height_rejected(self, graph):
        with pytest.raises(ShapeError):
            gnn_propagate(graph, np.zeros((47, 3)), nprocs=4)


class TestAls:
    @pytest.fixture(scope="module")
    def factors(self):
        rng = np.random.default_rng(6)
        return rng.standard_normal((30, 4)), rng.standard_normal((25, 4))

    @pytest.fixture(scope="module")
    def ratings(self):
        return random_sparse(30, 25, nnz=130, seed=27)

    def test_predictions_match_dense_model(self, factors, ratings):
        u, v = factors
        pred = predict_ratings(u, v, ratings, nprocs=4, batches=2)
        dense = u @ v.T
        for i, j, val in zip(pred.rowidx, pred.col_indices(), pred.values):
            assert val == pytest.approx(dense[i, j])
        assert pred.nnz == ratings.nnz

    def test_residual_and_rmse(self, factors, ratings):
        u, v = factors
        out = als_residual(u, v, ratings, nprocs=4, batches=2)
        dense = u @ v.T
        obs = {}
        for i, j, val in zip(
            ratings.rowidx, ratings.col_indices(), ratings.values
        ):
            obs[(int(i), int(j))] = float(val)
        for i, j, val in zip(
            out.residual.rowidx,
            out.residual.col_indices(),
            out.residual.values,
        ):
            assert val == pytest.approx(
                obs[(int(i), int(j))] - dense[i, j]
            )
        assert out.rmse == pytest.approx(
            float(np.sqrt(np.mean(out.residual.values**2)))
        )

    def test_perfect_factors_zero_rmse(self):
        """Ratings generated exactly by the model give zero residual."""
        rng = np.random.default_rng(10)
        u = rng.standard_normal((12, 3))
        v = rng.standard_normal((10, 3))
        pattern = random_sparse(12, 10, nnz=40, seed=28)
        dense = u @ v.T
        exact = SparseMatrix.from_coo(
            12, 10, pattern.rowidx, pattern.col_indices(),
            dense[pattern.rowidx, pattern.col_indices()],
        )
        out = als_residual(u, v, exact, nprocs=4)
        assert out.rmse == pytest.approx(0.0, abs=1e-12)

    def test_shape_errors(self, factors, ratings):
        u, v = factors
        with pytest.raises(ShapeError):
            predict_ratings(u, v[:, :2], ratings)
        with pytest.raises(ShapeError):
            predict_ratings(u[:10], v, ratings)
