"""Tests for connected components via semiring closure."""

import networkx as nx
import numpy as np
import pytest

from repro.apps import connected_components
from repro.data import erdos_renyi, planted_partition
from repro.sparse import SparseMatrix, from_edges, random_sparse


def _nx_components(adj):
    g = nx.Graph()
    g.add_nodes_from(range(adj.nrows))
    rows, cols, _ = adj.to_coo()
    g.add_edges_from((int(r), int(c)) for r, c in zip(rows, cols) if r < c)
    return list(nx.connected_components(g))


def _assert_matches(adj, labels):
    comps = _nx_components(adj)
    assert len(set(labels.tolist())) == len(comps)
    for comp in comps:
        assert len({labels[v] for v in comp}) == 1


class TestConnectedComponents:
    def test_planted_islands(self):
        adj, _ = planted_partition(50, 4, p_in=0.6, p_out=0.0, seed=261)
        _assert_matches(adj, connected_components(adj, nprocs=4))

    @pytest.mark.parametrize("seed", [262, 263])
    def test_sparse_random_graph(self, seed):
        adj = erdos_renyi(60, avg_degree=1.2, seed=seed)  # fragmented
        _assert_matches(adj, connected_components(adj, nprocs=4))

    def test_fully_connected(self):
        adj = erdos_renyi(40, avg_degree=10, seed=264)
        labels = connected_components(adj, nprocs=4)
        if len(_nx_components(adj)) == 1:
            assert len(set(labels.tolist())) == 1

    def test_no_edges_all_singletons(self):
        adj = SparseMatrix.empty(12, 12)
        labels = connected_components(adj, nprocs=1)
        assert len(set(labels.tolist())) == 12

    def test_single_path(self):
        adj = from_edges(6, 6, [[i, i + 1] for i in range(5)], symmetric=True)
        labels = connected_components(adj, nprocs=1)
        assert len(set(labels.tolist())) == 1

    def test_labels_contiguous_and_deterministic(self):
        adj = erdos_renyi(40, avg_degree=1.0, seed=265)
        l1 = connected_components(adj, nprocs=4)
        l2 = connected_components(adj, nprocs=1)
        assert np.array_equal(l1, l2)
        assert sorted(set(l1.tolist())) == list(range(len(set(l1.tolist()))))

    def test_memory_budget_variant(self):
        adj, _ = planted_partition(48, 3, p_in=0.6, p_out=0.0, seed=266)
        budget = 60 * adj.nnz * 24
        labels = connected_components(adj, nprocs=4, memory_budget=budget)
        _assert_matches(adj, labels)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            connected_components(random_sparse(3, 4, nnz=2, seed=0))

    def test_empty_graph(self):
        assert connected_components(SparseMatrix.empty(0, 0)).shape == (0,)
