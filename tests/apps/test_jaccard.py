"""Tests for the distributed Jaccard similarity application."""

import numpy as np
import pytest

from repro.apps import jaccard_similarity
from repro.data import kmer_matrix
from repro.sparse import from_dense
from repro.sparse.matrix import BYTES_PER_NONZERO


def _brute(km, threshold):
    d = (km.to_dense() != 0).astype(float)
    s = d @ d.T
    deg = d.sum(axis=1)
    out = {}
    n = km.nrows
    for i in range(n):
        for j in range(i + 1, n):
            union = deg[i] + deg[j] - s[i, j]
            if union > 0 and s[i, j] / union >= threshold:
                out[(i, j)] = s[i, j] / union
    return out


class TestJaccard:
    @pytest.mark.parametrize("threshold", [0.1, 0.3, 0.7])
    def test_matches_brute_force(self, threshold):
        km = kmer_matrix(45, 180, kmers_per_seq=12, seed=91)
        res = jaccard_similarity(km, threshold=threshold, nprocs=4)
        brute = _brute(km, threshold)
        got = res.as_dict()
        assert set(got) == set(brute)
        for k, v in brute.items():
            assert got[k] == pytest.approx(v)

    def test_identical_rows_have_similarity_one(self):
        m = from_dense(np.array([
            [1, 1, 0, 1],
            [1, 1, 0, 1],
            [0, 0, 1, 0],
        ], dtype=float))
        res = jaccard_similarity(m, threshold=0.99, nprocs=1)
        assert res.as_dict() == {(0, 1): 1.0}

    def test_disjoint_rows_no_pairs(self):
        m = from_dense(np.eye(5))
        res = jaccard_similarity(m, threshold=0.01, nprocs=1)
        assert res.count == 0
        assert res.pairs.shape == (0, 3)

    def test_weights_ignored(self):
        km = kmer_matrix(30, 100, kmers_per_seq=8, seed=92)
        weighted = from_dense(km.to_dense() * 7.5)
        a = jaccard_similarity(km, threshold=0.2, nprocs=1)
        b = jaccard_similarity(weighted, threshold=0.2, nprocs=1)
        assert a.as_dict() == b.as_dict()

    def test_batched_same_result(self):
        km = kmer_matrix(40, 150, kmers_per_seq=10, seed=93)
        base = jaccard_similarity(km, threshold=0.15, nprocs=4)
        budget = 25 * km.nnz * BYTES_PER_NONZERO
        tight = jaccard_similarity(
            km, threshold=0.15, nprocs=4, memory_budget=budget
        )
        assert base.as_dict() == tight.as_dict()

    def test_invalid_threshold(self):
        km = kmer_matrix(10, 30, kmers_per_seq=4, seed=94)
        with pytest.raises(ValueError):
            jaccard_similarity(km, threshold=0.0)
        with pytest.raises(ValueError):
            jaccard_similarity(km, threshold=1.5)

    def test_pairs_sorted_and_upper_triangular(self):
        km = kmer_matrix(35, 120, kmers_per_seq=10, seed=95)
        res = jaccard_similarity(km, threshold=0.1, nprocs=4)
        if res.count:
            keys = [(int(i), int(j)) for i, j, _s in res.pairs]
            assert keys == sorted(keys)
            assert all(i < j for i, j in keys)
