"""Tests for the Markov clustering application."""

import numpy as np
import pytest

from repro.apps import markov_cluster
from repro.apps.mcl import _chaos, _column_normalise
from repro.data import planted_partition
from repro.sparse import eye, from_dense, random_sparse
from repro.sparse.matrix import BYTES_PER_NONZERO
from repro.sparse.ops import column_sums


class TestHelpers:
    def test_column_normalise(self):
        m = random_sparse(10, 10, nnz=40, seed=1)
        n = _column_normalise(m)
        sums = column_sums(n)
        nonempty = np.diff(n.indptr) > 0
        assert np.allclose(sums[nonempty], 1.0)

    def test_chaos_zero_on_idempotent(self):
        # a permutation-like stochastic matrix with one 1.0 per column
        assert _chaos(eye(5)) == pytest.approx(0.0)

    def test_chaos_positive_on_unconverged(self):
        m = from_dense(np.array([[0.6], [0.4]]))
        assert _chaos(m) == pytest.approx(0.6 - (0.36 + 0.16))


class TestClustering:
    def test_recovers_planted_partition(self):
        adj, truth = planted_partition(80, 4, p_in=0.6, p_out=0.01, seed=10)
        res = markov_cluster(adj, nprocs=4, max_iterations=30)
        assert res.converged
        assert res.n_clusters == 4
        # perfect agreement up to label permutation
        for c in range(4):
            members = np.flatnonzero(truth == c)
            assert len(set(res.labels[members].tolist())) == 1

    def test_disconnected_components_separate(self):
        adj, _ = planted_partition(30, 3, p_in=0.8, p_out=0.0, seed=11)
        res = markov_cluster(adj, nprocs=1, max_iterations=30)
        assert res.n_clusters == 3

    def test_single_clique_single_cluster(self):
        adj = from_dense(np.ones((12, 12)))
        res = markov_cluster(adj, nprocs=1, max_iterations=20)
        assert res.n_clusters == 1

    def test_labels_contiguous(self):
        adj, _ = planted_partition(40, 4, p_in=0.7, p_out=0.02, seed=12)
        res = markov_cluster(adj, nprocs=4, max_iterations=30)
        assert sorted(set(res.labels.tolist())) == list(range(res.n_clusters))

    def test_clusters_method_partitions_vertices(self):
        adj, _ = planted_partition(40, 4, p_in=0.7, p_out=0.02, seed=13)
        res = markov_cluster(adj, nprocs=4, max_iterations=30)
        all_vertices = np.sort(np.concatenate(res.clusters()))
        assert np.array_equal(all_vertices, np.arange(40))

    def test_requires_square(self):
        with pytest.raises(ValueError):
            markov_cluster(random_sparse(4, 5, nnz=4, seed=0))

    def test_adds_missing_self_loops(self):
        # adjacency without diagonal still clusters
        adj = from_dense(np.array([
            [0, 1, 0, 0],
            [1, 0, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 1, 0],
        ], dtype=float))
        res = markov_cluster(adj, nprocs=1, max_iterations=20)
        assert res.n_clusters == 2
        assert res.labels[0] == res.labels[1]
        assert res.labels[2] == res.labels[3]


class TestBatchedClustering:
    def test_memory_budget_forces_batches(self):
        adj, truth = planted_partition(60, 3, p_in=0.7, p_out=0.02, seed=14)
        # budget sized to a small multiple of the input: forces b > 1 in
        # the expensive early iterations
        budget = 12 * adj.nnz * BYTES_PER_NONZERO
        res = markov_cluster(
            adj, nprocs=4, layers=1, memory_budget=budget, max_iterations=30
        )
        assert any(it.batches > 1 for it in res.iterations)
        assert res.n_clusters == 3

    def test_batched_equals_unbatched_clusters(self):
        adj, _ = planted_partition(60, 3, p_in=0.7, p_out=0.02, seed=15)
        res_a = markov_cluster(adj, nprocs=4, max_iterations=30)
        budget = 12 * adj.nnz * BYTES_PER_NONZERO
        res_b = markov_cluster(
            adj, nprocs=4, memory_budget=budget, max_iterations=30
        )
        # same partition up to relabelling
        mapping = {}
        for la, lb in zip(res_a.labels.tolist(), res_b.labels.tolist()):
            assert mapping.setdefault(la, lb) == lb

    def test_iteration_stats_recorded(self):
        adj, _ = planted_partition(40, 2, p_in=0.7, p_out=0.02, seed=16)
        res = markov_cluster(adj, nprocs=4, max_iterations=15)
        assert len(res.iterations) >= 1
        first = res.iterations[0]
        assert first.batches >= 1
        assert first.nnz > 0
        assert first.step_times.total() > 0

    def test_layers_do_not_change_result(self):
        adj, _ = planted_partition(48, 4, p_in=0.7, p_out=0.02, seed=17)
        r1 = markov_cluster(adj, nprocs=4, layers=1, max_iterations=25)
        r4 = markov_cluster(adj, nprocs=4, layers=4, max_iterations=25)
        mapping = {}
        for la, lb in zip(r1.labels.tolist(), r4.labels.tolist()):
            assert mapping.setdefault(la, lb) == lb


class TestResidentMCL:
    def test_matches_broadcast_variant(self):
        from repro.apps import markov_cluster_resident

        adj, _ = planted_partition(60, 4, p_in=0.65, p_out=0.02, seed=211)
        std = markov_cluster(adj, nprocs=4, max_iterations=30)
        res = markov_cluster_resident(adj, nprocs=4, max_iterations=30)
        assert res.converged == std.converged
        mapping = {}
        for la, lb in zip(std.labels.tolist(), res.labels.tolist()):
            assert mapping.setdefault(la, lb) == lb

    def test_resident_with_memory_budget(self):
        from repro.apps import markov_cluster_resident
        from repro.sparse.matrix import BYTES_PER_NONZERO

        adj, truth = planted_partition(60, 3, p_in=0.7, p_out=0.02, seed=212)
        res = markov_cluster_resident(
            adj, nprocs=4,
            memory_budget=14 * adj.nnz * BYTES_PER_NONZERO,
            max_iterations=30, keep_per_column=24,
        )
        assert res.n_clusters == 3
        assert any(it.batches >= 1 for it in res.iterations)

    def test_resident_on_layered_grid(self):
        from repro.apps import markov_cluster_resident

        adj, _ = planted_partition(48, 4, p_in=0.7, p_out=0.02, seed=213)
        r1 = markov_cluster_resident(adj, nprocs=4, layers=1,
                                     max_iterations=25)
        r4 = markov_cluster_resident(adj, nprocs=4, layers=4,
                                     max_iterations=25)
        mapping = {}
        for la, lb in zip(r1.labels.tolist(), r4.labels.tolist()):
            assert mapping.setdefault(la, lb) == lb

    def test_chaos_recorded_distributed(self):
        from repro.apps import markov_cluster_resident

        adj, _ = planted_partition(40, 2, p_in=0.7, p_out=0.02, seed=214)
        res = markov_cluster_resident(adj, nprocs=4, max_iterations=15)
        assert res.iterations[0].chaos > 0
        assert res.iterations[-1].chaos < 1e-3  # converged
