"""Tests for sequence overlap detection and heavy-connectivity matching."""

import numpy as np
import pytest

from repro.apps import find_overlaps, heavy_connectivity_matching
from repro.data import kmer_matrix
from repro.sparse import SparseMatrix, from_dense
from repro.sparse.matrix import BYTES_PER_NONZERO


def _brute_pairs(km, min_shared):
    d = km.to_dense()
    s = d @ d.T
    n = km.nrows
    return {
        (i, j): int(s[i, j])
        for i in range(n)
        for j in range(i + 1, n)
        if s[i, j] >= min_shared
    }


class TestFindOverlaps:
    @pytest.mark.parametrize("min_shared", [1, 2, 4])
    def test_matches_brute_force(self, min_shared):
        km = kmer_matrix(50, 250, kmers_per_seq=10, seed=1)
        got = find_overlaps(km, min_shared=min_shared, nprocs=4)
        expected = _brute_pairs(km, min_shared)
        assert got.as_set() == set(expected)
        for i, j, shared in got.pairs:
            assert expected[(int(i), int(j))] == int(shared)

    def test_batched_same_result(self):
        km = kmer_matrix(50, 250, kmers_per_seq=10, seed=2)
        base = find_overlaps(km, min_shared=2, nprocs=4)
        budget = 30 * km.nnz * BYTES_PER_NONZERO
        batched = find_overlaps(
            km, min_shared=2, nprocs=4, memory_budget=budget
        )
        assert batched.as_set() == base.as_set()
        assert batched.batches >= 1

    def test_3d_same_result(self):
        km = kmer_matrix(40, 200, kmers_per_seq=8, seed=3)
        base = find_overlaps(km, min_shared=2, nprocs=1)
        threed = find_overlaps(km, min_shared=2, nprocs=8, layers=2)
        assert threed.as_set() == base.as_set()

    def test_no_overlaps(self):
        # each sequence uses its own private k-mer
        km = from_dense(np.eye(6))
        got = find_overlaps(km, min_shared=1, nprocs=1)
        assert got.count == 0
        assert got.pairs.shape == (0, 3)

    def test_pairs_sorted(self):
        km = kmer_matrix(30, 50, kmers_per_seq=6, seed=4)
        got = find_overlaps(km, min_shared=1, nprocs=4)
        if got.count > 1:
            keys = [tuple(p[:2]) for p in got.pairs.tolist()]
            assert keys == sorted(keys)

    def test_diagonal_excluded(self):
        km = kmer_matrix(20, 40, kmers_per_seq=6, seed=5)
        got = find_overlaps(km, min_shared=1, nprocs=1)
        assert all(i < j for i, j, _ in got.pairs)


class TestMatching:
    def test_symmetric_involution(self):
        inc = kmer_matrix(30, 80, kmers_per_seq=8, seed=6)
        m = heavy_connectivity_matching(inc, nprocs=4)
        for v in range(30):
            if m[v] >= 0:
                assert m[m[v]] == v
                assert m[v] != v

    def test_two_obvious_pairs(self):
        # vertices 0-1 share 3 nets, 2-3 share 2 nets, nothing else
        inc = from_dense(np.array([
            [1, 1, 1, 0, 0],
            [1, 1, 1, 0, 0],
            [0, 0, 0, 1, 1],
            [0, 0, 0, 1, 1],
        ], dtype=float))
        m = heavy_connectivity_matching(inc, nprocs=1)
        assert m[0] == 1 and m[1] == 0
        assert m[2] == 3 and m[3] == 2

    def test_min_weight_filters(self):
        inc = from_dense(np.array([
            [1, 1, 0],
            [1, 0, 0],
        ], dtype=float))  # pair (0,1) shares exactly 1 net
        m1 = heavy_connectivity_matching(inc, nprocs=1, min_weight=1.0)
        m2 = heavy_connectivity_matching(inc, nprocs=1, min_weight=2.0)
        assert m1[0] == 1
        assert m2[0] == -1

    def test_batched_matching_valid(self):
        inc = kmer_matrix(40, 120, kmers_per_seq=8, seed=7)
        budget = 20 * inc.nnz * BYTES_PER_NONZERO
        m = heavy_connectivity_matching(
            inc, nprocs=4, memory_budget=budget
        )
        for v in range(40):
            if m[v] >= 0:
                assert m[m[v]] == v

    def test_empty_incidence(self):
        m = heavy_connectivity_matching(SparseMatrix.empty(5, 5), nprocs=1)
        assert np.all(m == -1)
