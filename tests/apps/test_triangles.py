"""Triangle counting / clustering coefficients vs networkx oracle."""

import numpy as np
import networkx as nx
import pytest

from repro.apps import clustering_coefficients, count_triangles
from repro.data import erdos_renyi, rmat
from repro.sparse import SparseMatrix, from_dense, from_edges


def _to_nx(a):
    g = nx.Graph()
    g.add_nodes_from(range(a.nrows))
    rows, cols, _ = a.to_coo()
    g.add_edges_from(
        (int(r), int(c)) for r, c in zip(rows, cols) if r < c
    )
    return g


class TestCountTriangles:
    def test_single_triangle(self):
        a = from_edges(3, 3, [[0, 1], [1, 2], [0, 2]], symmetric=True)
        assert count_triangles(a, nprocs=1) == 1

    def test_square_no_triangle(self):
        a = from_edges(4, 4, [[0, 1], [1, 2], [2, 3], [3, 0]], symmetric=True)
        assert count_triangles(a, nprocs=1) == 0

    def test_complete_graph(self):
        n = 8
        a = from_dense(np.ones((n, n)) - np.eye(n))
        assert count_triangles(a, nprocs=4) == n * (n - 1) * (n - 2) // 6

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_vs_networkx(self, seed):
        a = erdos_renyi(90, avg_degree=9, seed=seed)
        expected = sum(nx.triangles(_to_nx(a)).values()) // 3
        assert count_triangles(a, nprocs=4) == expected

    def test_rmat_vs_networkx(self):
        a = rmat(7, edge_factor=5, seed=4)
        expected = sum(nx.triangles(_to_nx(a)).values()) // 3
        assert count_triangles(a, nprocs=4, layers=1) == expected

    def test_self_loops_ignored(self):
        a = from_edges(
            3, 3, [[0, 1], [1, 2], [0, 2], [0, 0], [1, 1]], symmetric=True
        )
        assert count_triangles(a, nprocs=1) == 1

    def test_weights_ignored(self):
        a = from_edges(
            3, 3, [[0, 1], [1, 2], [0, 2]], values=[9.0, 0.5, 3.3],
            symmetric=True,
        )
        assert count_triangles(a, nprocs=1) == 1

    def test_3d_grid_same_count(self):
        a = erdos_renyi(60, avg_degree=8, seed=5)
        assert count_triangles(a, nprocs=8, layers=2) == count_triangles(a, nprocs=1)

    def test_batched_same_count(self):
        a = erdos_renyi(60, avg_degree=8, seed=6)
        t_ref = count_triangles(a, nprocs=1)
        t_budget = count_triangles(
            a, nprocs=4, memory_budget=40 * a.nnz * 24
        )
        assert t_budget == t_ref

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            count_triangles(SparseMatrix.empty(3, 4), nprocs=1)

    def test_empty_graph(self):
        assert count_triangles(SparseMatrix.empty(5, 5), nprocs=1) == 0


class TestClusteringCoefficients:
    @pytest.mark.parametrize("seed", [7, 8])
    def test_vs_networkx(self, seed):
        a = erdos_renyi(70, avg_degree=8, seed=seed)
        expected = nx.clustering(_to_nx(a))
        got = clustering_coefficients(a, nprocs=4)
        assert np.allclose(got, [expected[i] for i in range(70)])

    def test_triangle_graph_all_one(self):
        a = from_edges(3, 3, [[0, 1], [1, 2], [0, 2]], symmetric=True)
        assert np.allclose(clustering_coefficients(a, nprocs=1), 1.0)

    def test_star_graph_zero(self):
        a = from_edges(5, 5, [[0, i] for i in range(1, 5)], symmetric=True)
        assert np.allclose(clustering_coefficients(a, nprocs=1), 0.0)

    def test_isolated_vertices_zero(self):
        a = from_edges(6, 6, [[0, 1]], symmetric=True)
        cc = clustering_coefficients(a, nprocs=1)
        assert np.allclose(cc, 0.0)
