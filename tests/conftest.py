"""Shared fixtures and oracles for the test suite.

``scipy.sparse`` serves as the independent oracle everywhere: the library
itself never imports it.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, settings

from repro.sparse import SparseMatrix, random_sparse

# SPMD tests spawn threads per example; keep hypothesis example counts sane
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def to_scipy(m: SparseMatrix) -> sp.csc_matrix:
    """Convert to scipy CSC (sorting first; scipy requires sorted indices)."""
    s = m.sort_indices()
    return sp.csc_matrix(
        (s.values, s.rowidx, s.indptr), shape=s.shape
    )


def from_scipy(s) -> SparseMatrix:
    c = sp.csc_matrix(s)
    c.sort_indices()
    c.sum_duplicates()
    return SparseMatrix(
        c.shape[0], c.shape[1], c.indptr.astype(np.int64),
        c.indices.astype(np.int64), c.data.astype(np.float64),
    )


def dense_equal(m: SparseMatrix, dense: np.ndarray, **kw) -> bool:
    return np.allclose(m.to_dense(), dense, **kw)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_pair():
    """A compatible (A, B) pair with a non-trivial product."""
    a = random_sparse(40, 30, nnz=160, seed=11)
    b = random_sparse(30, 35, nnz=140, seed=12)
    return a, b


@pytest.fixture
def square_matrix():
    return random_sparse(64, 64, nnz=512, seed=21)


@pytest.fixture
def empty_matrix():
    return SparseMatrix.empty(10, 12)
