"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.sparse import load_matrix, random_sparse, save_matrix, multiply


@pytest.fixture
def matrix_file(tmp_path):
    m = random_sparse(24, 24, nnz=120, seed=101)
    path = tmp_path / "a.npz"
    save_matrix(path, m)
    return str(path), m


class TestStats:
    def test_square(self, matrix_file, capsys):
        path, m = matrix_file
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert f"nnz = {m.nnz}" in out
        assert "cf" in out

    def test_dataset_operand(self, capsys):
        assert main(["stats", "dataset:eukarya"]) == 0
        assert "expansion" in capsys.readouterr().out

    def test_aat(self, matrix_file, capsys):
        path, _ = matrix_file
        assert main(["stats", path, "--aat"]) == 0


class TestMultiply:
    def test_square_and_save(self, matrix_file, tmp_path, capsys):
        path, m = matrix_file
        out_path = tmp_path / "c.npz"
        assert main([
            "multiply", path, "--nprocs", "4", "--batches", "2",
            "--output", str(out_path),
        ]) == 0
        product = load_matrix(out_path)
        assert product.allclose(multiply(m, m))
        assert "batches = 2" in capsys.readouterr().out

    def test_two_operands(self, tmp_path, capsys):
        a = random_sparse(20, 15, nnz=60, seed=102)
        b = random_sparse(15, 22, nnz=60, seed=103)
        pa, pb = tmp_path / "a.npz", tmp_path / "b.npz"
        save_matrix(pa, a)
        save_matrix(pb, b)
        assert main(["multiply", str(pa), str(pb), "--nprocs", "1"]) == 0
        assert "nnz(C)" in capsys.readouterr().out

    def test_memory_budget(self, matrix_file, capsys):
        path, m = matrix_file
        assert main([
            "multiply", path, "--nprocs", "4",
            "--memory-budget", str(30 * m.nnz * 24),
        ]) == 0

    def test_matrix_market_roundtrip(self, matrix_file, tmp_path):
        path, m = matrix_file
        out_path = tmp_path / "c.mtx"
        assert main(["multiply", path, "--output", str(out_path)]) == 0
        from repro.sparse import load_matrix_market

        assert load_matrix_market(out_path).allclose(multiply(m, m))


class TestOverlapAndTrace:
    def test_multiply_depth1_matches_reference(self, matrix_file, tmp_path,
                                               capsys):
        path, m = matrix_file
        out_path = tmp_path / "c.npz"
        assert main([
            "multiply", path, "--nprocs", "4", "--batches", "2",
            "--overlap", "depth1", "--output", str(out_path),
        ]) == 0
        assert load_matrix(out_path).allclose(multiply(m, m))
        assert "overlap = depth1" in capsys.readouterr().out

    def test_multiply_exports_valid_trace(self, matrix_file, tmp_path,
                                          capsys):
        from repro.summa.trace import validate_chrome_trace_file

        path, _ = matrix_file
        trace_path = tmp_path / "trace.json"
        assert main([
            "multiply", path, "--nprocs", "4",
            "--trace-out", str(trace_path),
        ]) == 0
        assert validate_chrome_trace_file(str(trace_path)) > 0
        assert "trace timeline saved" in capsys.readouterr().out

    def test_multiply_rejects_bad_overlap(self, matrix_file):
        path, _ = matrix_file
        with pytest.raises(SystemExit):
            main(["multiply", path, "--overlap", "depth9"])

    def test_predict_overlap_prints_makespan(self, capsys):
        assert main([
            "predict", "isolates", "--cores", "65536", "--layers", "16",
            "--overlap", "depth1",
        ]) == 0
        out = capsys.readouterr().out
        assert "overlapped makespan (depth1)" in out

    def test_predict_off_has_no_makespan_line(self, capsys):
        assert main([
            "predict", "isolates", "--cores", "65536", "--layers", "16",
        ]) == 0
        assert "overlapped makespan" not in capsys.readouterr().out


class TestGeneratePredict:
    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "euk.npz"
        assert main(["generate", "eukarya", str(out)]) == 0
        m = load_matrix(out)
        assert m.nnz > 0

    def test_generate_seed_changes_matrix(self, tmp_path):
        p1, p2 = tmp_path / "a.npz", tmp_path / "b.npz"
        main(["generate", "friendster", str(p1), "--seed", "0"])
        main(["generate", "friendster", str(p2), "--seed", "1"])
        assert not load_matrix(p1).allclose(load_matrix(p2))

    def test_predict(self, capsys):
        assert main([
            "predict", "isolates", "--cores", "65536", "--layers", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "modelled step times" in out
        assert "A-Broadcast" in out

    def test_predict_machines(self, capsys):
        for machine in ("cori-knl", "cori-haswell", "cori-knl-ht"):
            assert main([
                "predict", "eukarya", "--machine", machine,
                "--batches", "2",
            ]) == 0


class TestCluster:
    def test_cluster_dataset(self, tmp_path, capsys):
        from repro.data import planted_partition

        adj, _ = planted_partition(40, 3, p_in=0.7, p_out=0.02, seed=104)
        path = tmp_path / "g.npz"
        save_matrix(path, adj)
        labels_path = tmp_path / "labels.txt"
        assert main([
            "cluster", str(path), "--nprocs", "4",
            "--max-iterations", "25", "--output", str(labels_path),
        ]) == 0
        labels = np.loadtxt(labels_path, dtype=int)
        assert labels.shape == (40,)
        assert "clusters" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCompare:
    def test_compare_runs_all_algorithms(self, matrix_file, capsys):
        path, _ = matrix_file
        assert main(["compare", path, "--nprocs", "4", "--layers", "1"]) == 0
        out = capsys.readouterr().out
        assert "1D-row" in out
        assert "Cannon" in out
        assert "SUMMA2D" in out

    def test_compare_with_layers(self, matrix_file, capsys):
        path, _ = matrix_file
        assert main([
            "compare", path, "--nprocs", "16", "--layers", "4",
            "--batches", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "SUMMA3D l=4" in out
        assert "Batched l=4 b=2" in out


class TestCalibrate:
    def test_fit_from_json(self, tmp_path, capsys):
        import json

        from repro.model import CORI_KNL
        from repro.model.complexity import step_times_closed_form

        obs = []
        for p, l, b in [(256, 1, 1), (1024, 4, 4), (4096, 16, 8), (1024, 16, 2)]:
            t = step_times_closed_form(
                CORI_KNL, nprocs=p, layers=l, batches=b,
                nnz_a=10**9, nnz_b=10**9, flops=10**12, merge_kernel="hash",
            )
            obs.append(dict(
                nprocs=p, layers=l, batches=b,
                nnz_a=10**9, nnz_b=10**9, flops=10**12,
                step_seconds={k: v for k, v in t.items() if k != "Symbolic"},
            ))
        path = tmp_path / "obs.json"
        path.write_text(json.dumps(obs))
        assert main(["calibrate", str(path), "--name", "my-fit"]) == 0
        out = capsys.readouterr().out
        assert "my-fit" in out
        assert "alpha" in out and "beta" in out


class TestGraphCommands:
    def test_triangles(self, tmp_path, capsys):
        from repro.data import erdos_renyi

        g = erdos_renyi(40, avg_degree=8, seed=301)
        path = tmp_path / "g.npz"
        save_matrix(path, g)
        assert main(["triangles", str(path), "--coefficients"]) == 0
        out = capsys.readouterr().out
        assert "triangles:" in out
        assert "clustering coefficient" in out

    def test_components(self, tmp_path, capsys):
        from repro.data import planted_partition

        adj, _ = planted_partition(30, 3, p_in=0.7, p_out=0.0, seed=302)
        path = tmp_path / "g.npz"
        save_matrix(path, adj)
        labels_path = tmp_path / "labels.txt"
        assert main([
            "components", str(path), "--output", str(labels_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "components: 3" in out
        assert np.loadtxt(labels_path).shape == (30,)
