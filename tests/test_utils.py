"""Tests for utility modules (rng, timing, validation)."""

import numpy as np
import pytest

from repro.utils import (
    StepTimes,
    Timer,
    as_rng,
    check_index,
    check_nonnegative,
    check_positive,
    check_power_of,
    spawn_rngs,
)


class TestRng:
    def test_as_rng_from_int(self):
        a, b = as_rng(5), as_rng(5)
        assert a.random() == b.random()

    def test_as_rng_passthrough(self):
        g = np.random.default_rng(1)
        assert as_rng(g) is g

    def test_as_rng_none(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_independent_streams(self):
        rngs = spawn_rngs(7, 4)
        draws = [r.random() for r in rngs]
        assert len(set(draws)) == 4

    def test_spawn_deterministic(self):
        a = [r.random() for r in spawn_rngs(7, 3)]
        b = [r.random() for r in spawn_rngs(7, 3)]
        assert a == b

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0


class TestStepTimes:
    def test_add_accumulates(self):
        st = StepTimes()
        st.add("x", 1.0)
        st.add("x", 2.0)
        assert st.get("x") == 3.0
        assert st.get("missing") == 0.0

    def test_total(self):
        st = StepTimes({"a": 1.0, "b": 2.5})
        assert st.total() == 3.5

    def test_addition(self):
        a = StepTimes({"x": 1.0})
        b = StepTimes({"x": 2.0, "y": 3.0})
        c = a + b
        assert c.get("x") == 3.0 and c.get("y") == 3.0
        assert a.get("x") == 1.0  # inputs untouched

    def test_division(self):
        st = StepTimes({"x": 4.0}) / 2
        assert st.get("x") == 2.0
        with pytest.raises(ZeroDivisionError):
            StepTimes() / 0

    def test_critical_path(self):
        ranks = [StepTimes({"x": 1.0, "y": 5.0}), StepTimes({"x": 3.0})]
        cp = StepTimes.critical_path(ranks)
        assert cp.get("x") == 3.0 and cp.get("y") == 5.0

    def test_format_table(self):
        out = StepTimes({"step": 1.0}).format_table("title")
        assert "title" in out and "TOTAL" in out


class TestValidation:
    def test_check_positive(self):
        assert check_positive("n", 3) == 3
        with pytest.raises(ValueError):
            check_positive("n", 0)
        with pytest.raises(TypeError):
            check_positive("n", "x")
        with pytest.raises(TypeError):
            check_positive("n", True)
        with pytest.raises(ValueError):
            check_positive("n", 2.5)

    def test_check_nonnegative(self):
        assert check_nonnegative("n", 0) == 0
        with pytest.raises(ValueError):
            check_nonnegative("n", -1)

    def test_check_index(self):
        assert check_index("i", 2, 5) == 2
        with pytest.raises(ValueError):
            check_index("i", 5, 5)

    def test_check_power_of(self):
        assert check_power_of("n", 16, 2) == 16
        with pytest.raises(ValueError):
            check_power_of("n", 12, 2)
