"""Tests for communication metering (tracker + payload sizing)."""

import numpy as np
import pytest

from repro.simmpi import CommTracker, payload_nbytes, run_spmd
from repro.simmpi.tracker import CommEvent
from repro.sparse import random_sparse
from repro.sparse.matrix import BYTES_PER_NONZERO


class TestPayloadNbytes:
    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_scalars(self):
        assert payload_nbytes(5) == 8
        assert payload_nbytes(2.5) == 8
        assert payload_nbytes(True) == 8
        assert payload_nbytes(np.float64(1.0)) == 8

    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10)) == 80

    def test_sparse_matrix_counts_r_bytes(self):
        # exactly r = 24 bytes per nonzero, the paper's accounting —
        # no dense indptr term (hypersparse tiles ship nnz-proportionally)
        m = random_sparse(10, 10, nnz=15, seed=0)
        assert payload_nbytes(m) == 15 * BYTES_PER_NONZERO

    def test_containers(self):
        assert payload_nbytes([1, 2.0]) == 16
        assert payload_nbytes((np.zeros(2), None)) == 16
        assert payload_nbytes({"k": 1}) == 9

    def test_strings_bytes(self):
        assert payload_nbytes(b"abc") == 3
        assert payload_nbytes("abc") == 3

    def test_unsizeable(self):
        with pytest.raises(TypeError):
            payload_nbytes(object())


class TestCommEvent:
    def test_bcast_latency_is_tree_depth(self):
        ev = CommEvent("s", "bcast", 8, 100, 700)
        assert ev.latency_hops() == 3

    def test_alltoall_latency_is_rounds(self):
        ev = CommEvent("s", "alltoall", 4, 100, 400)
        assert ev.latency_hops() == 3

    def test_single_member_free(self):
        assert CommEvent("s", "bcast", 1, 100, 0).latency_hops() == 0


class TestTrackerAggregation:
    def test_by_step(self):
        t = CommTracker()
        t.record("A", "bcast", 4, 100)
        t.record("A", "bcast", 4, 50)
        t.record("B", "alltoall", 2, 10, total_bytes=20)
        agg = t.by_step()
        assert agg["A"]["messages"] == 2
        assert agg["A"]["nbytes"] == 150
        assert agg["B"]["total_bytes"] == 20

    def test_totals(self):
        t = CommTracker()
        t.record("A", "bcast", 4, 100)
        assert t.total_bytes() == 300
        assert t.total_bytes("A") == 300
        assert t.total_bytes("missing") == 0
        assert t.message_count() == 1

    def test_clear(self):
        t = CommTracker()
        t.record("A", "bcast", 2, 5)
        t.clear()
        assert t.events == []

    def test_format_table(self):
        t = CommTracker()
        assert "no communication" in t.format_table()
        t.record("A", "bcast", 2, 5)
        assert "A" in t.format_table()


class TestMeteringAccuracy:
    def test_bcast_bytes_counted_once(self):
        tracker = CommTracker()
        payload = np.zeros(100)  # 800 bytes

        def prog(comm):
            comm.bcast(payload if comm.rank == 0 else None, root=0)

        run_spmd(4, prog, tracker=tracker)
        events = [e for e in tracker.events if e.op == "bcast"]
        assert len(events) == 1
        assert events[0].nbytes == 800
        assert events[0].total_bytes == 800 * 3  # three receivers

    def test_alltoall_bytes(self):
        tracker = CommTracker()

        def prog(comm):
            send = [np.zeros(10) for _ in range(comm.size)]  # 80 B each
            comm.alltoall(send)

        run_spmd(3, prog, tracker=tracker)
        ev = [e for e in tracker.events if e.op == "alltoall"][0]
        assert ev.nbytes == 240          # max per-rank send volume
        assert ev.total_bytes == 720     # aggregate

    def test_exactly_one_event_per_collective(self):
        tracker = CommTracker()

        def prog(comm):
            for _ in range(5):
                comm.barrier()

        run_spmd(4, prog, tracker=tracker)
        assert tracker.message_count() == 5
