"""Hang watchdog: the wait-for graph must distinguish a provable hang
(cyclic deadlock, a peer that exited) from a rank that is merely slow.

The seed's flat timeout treated every stall the same way — wait the full
budget, then blame whoever happened to be blocked.  The watchdog keeps a
wait-for graph of blocked ranks and classifies: a cycle observed on two
consecutive sweeps is a deadlock (raised *fast*, long before the flat
timeout); a pending peer whose thread already returned can never arrive
(peer-exited); anything else is slow progress and must NOT trip it.
"""

import time

import pytest

from repro.errors import HangError, SpmdError
from repro.simmpi import run_spmd

# Small flat timeout so the backstop tests stay fast; the watchdog
# interval derives from it (timeout / 20, clamped to [0.05, 1.0]).
TIMEOUT = 12.0


def _hang_failures(excinfo) -> dict:
    failures = excinfo.value.failures
    hangs = {r: e for r, e in failures.items() if isinstance(e, HangError)}
    assert hangs, f"no HangError among failures: {failures!r}"
    return hangs


class TestDeadlockDetection:
    def test_two_rank_recv_cycle_is_classified_fast(self):
        """rank 0 recvs from 1 while 1 recvs from 0: a provable cycle,
        raised well before the flat timeout and naming both ranks."""

        def prog(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=7)
            if comm.rank == 1:
                return comm.recv(source=0, tag=7)
            return None

        t0 = time.monotonic()
        with pytest.raises(SpmdError) as info:
            run_spmd(2, prog, timeout=TIMEOUT)
        elapsed = time.monotonic() - t0
        assert elapsed < TIMEOUT * 0.75, "deadlock should beat the flat timeout"
        hangs = _hang_failures(info)
        err = next(iter(hangs.values()))
        assert err.kind == "deadlock"
        assert set(err.cycle) == {0, 1}
        assert "wait-for cycle" in str(err)
        assert err.context["kind"] == "deadlock"
        assert set(err.context["cycle"]) == {0, 1}

    def test_three_rank_cycle_names_all_ranks(self):
        def prog(comm):
            nxt = (comm.rank + 1) % 3
            return comm.recv(source=nxt, tag=0)

        with pytest.raises(SpmdError) as info:
            run_spmd(3, prog, timeout=TIMEOUT)
        err = next(iter(_hang_failures(info).values()))
        assert err.kind == "deadlock"
        assert set(err.cycle) == {0, 1, 2}

    def test_dump_names_op_peers_and_tag(self):
        def prog(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=42)
            if comm.rank == 1:
                return comm.recv(source=0, tag=42)
            return None

        with pytest.raises(SpmdError) as info:
            run_spmd(2, prog, timeout=TIMEOUT)
        err = next(iter(_hang_failures(info).values()))
        assert err.dump, "HangError must carry a per-rank dump"
        for record in err.dump.values():
            assert record["op"] == "recv"
            assert record["tag"] == 42
            assert "pending" in record and "blocked_s" in record
        assert err.context["op"] == "recv"
        assert err.context["tag"] == 42
        assert err.context["peers"]


class TestPeerExited:
    def test_collective_after_peer_returned(self):
        """A rank that returns without joining the barrier can never
        arrive — classified immediately, not after the flat timeout."""

        def prog(comm):
            if comm.rank == 1:
                return "left early"
            comm.barrier()
            return "never"

        t0 = time.monotonic()
        with pytest.raises(SpmdError) as info:
            run_spmd(3, prog, timeout=TIMEOUT)
        assert time.monotonic() - t0 < TIMEOUT * 0.75
        err = next(iter(_hang_failures(info).values()))
        assert err.kind == "peer-exited"
        assert 1 in err.cycle
        assert "already returned" in str(err)


class TestSlowIsNotHung:
    def test_slow_rank_does_not_trip_watchdog(self):
        """A rank computing past several watchdog sweeps is slow, not
        hung: it holds no wait record, so no cycle can pass through it
        and the collective completes normally once it arrives."""

        def prog(comm):
            if comm.rank == 0:
                time.sleep(2.5)  # several watchdog intervals at TIMEOUT=12
            comm.barrier()
            return comm.allreduce(comm.rank)

        results = run_spmd(3, prog, timeout=TIMEOUT)
        assert results == [3, 3, 3]

    def test_slow_p2p_sender_does_not_trip_watchdog(self):
        def prog(comm):
            if comm.rank == 0:
                time.sleep(2.5)
                comm.send(123, dest=1, tag=5)
                return None
            return comm.recv(source=0, tag=5)

        assert run_spmd(2, prog, timeout=TIMEOUT) == [None, 123]


class TestFlatTimeoutBackstop:
    def test_unclassifiable_stall_still_times_out(self):
        """A stall with no cycle and no exited peer (the stuck rank never
        returns) falls back to the flat timeout with kind='timeout'."""

        def prog(comm):
            if comm.rank == 0:
                time.sleep(4.0)  # far past the flat timeout
                return None
            comm.barrier()
            return None

        with pytest.raises(SpmdError) as info:
            run_spmd(2, prog, timeout=1.5)
        err = next(iter(_hang_failures(info).values()))
        assert err.kind == "timeout"
        assert "timed out" in str(err)
