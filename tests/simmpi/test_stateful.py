"""Randomised-program validation of the simulated MPI runtime.

Hypothesis generates random sequences of collectives; every rank executes
the same program (the SPMD contract), and each collective's result is
checked against its mathematical definition.  This explores interleavings
and operation mixes far beyond the hand-written unit tests.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import run_spmd

OPS = ("barrier", "bcast", "allreduce_sum", "allreduce_max", "allgather",
       "alltoall", "gather", "scatter")


@st.composite
def programs(draw):
    length = draw(st.integers(1, 12))
    return [
        (draw(st.sampled_from(OPS)), draw(st.integers(0, 3)))
        for _ in range(length)
    ]


class TestRandomPrograms:
    @settings(max_examples=30, deadline=None)
    @given(programs(), st.integers(2, 6))
    def test_random_collective_sequences(self, program, nprocs):
        def prog(comm):
            trace = []
            for op, arg in program:
                root = arg % comm.size
                if op == "barrier":
                    comm.barrier()
                    trace.append("b")
                elif op == "bcast":
                    value = comm.bcast(comm.rank * 100 + arg, root=root)
                    assert value == root * 100 + arg
                    trace.append(value)
                elif op == "allreduce_sum":
                    total = comm.allreduce(comm.rank + arg)
                    expected = sum(range(comm.size)) + arg * comm.size
                    assert total == expected
                    trace.append(total)
                elif op == "allreduce_max":
                    mx = comm.allreduce(comm.rank * arg, op="max")
                    assert mx == (comm.size - 1) * arg
                    trace.append(mx)
                elif op == "allgather":
                    gathered = comm.allgather(comm.rank + arg)
                    assert gathered == [r + arg for r in range(comm.size)]
                    trace.append(tuple(gathered))
                elif op == "alltoall":
                    received = comm.alltoall(
                        [(comm.rank, dest, arg) for dest in range(comm.size)]
                    )
                    assert received == [
                        (src, comm.rank, arg) for src in range(comm.size)
                    ]
                    trace.append(len(received))
                elif op == "gather":
                    got = comm.gather(comm.rank, root=root)
                    if comm.rank == root:
                        assert got == list(range(comm.size))
                    else:
                        assert got is None
                    trace.append("g")
                elif op == "scatter":
                    payload = (
                        [i * 7 for i in range(comm.size)]
                        if comm.rank == root else None
                    )
                    piece = comm.scatter(payload, root=root)
                    assert piece == comm.rank * 7
                    trace.append(piece)
            return tuple(trace)

        results = run_spmd(nprocs, prog, timeout=60)
        assert len(results) == nprocs

    @settings(max_examples=15, deadline=None)
    @given(programs())
    def test_programs_deterministic(self, program):
        def prog(comm):
            acc = 0.0
            for op, arg in program:
                if op in ("barrier", "gather", "scatter"):
                    comm.barrier()
                else:
                    acc = comm.allreduce(acc + 0.31 * (comm.rank + arg + 1))
            return acc

        first = run_spmd(5, prog, timeout=60)
        second = run_spmd(5, prog, timeout=60)
        assert first == second
