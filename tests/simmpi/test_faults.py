"""Unit tests for the deterministic fault-injection layer."""

import numpy as np
import pytest

from repro.errors import (
    CorruptPayloadError,
    RankCrashError,
    TransientCommError,
)
from repro.simmpi import run_spmd
from repro.simmpi.faults import FaultInjector, FaultPlan, FaultSpec
from repro.simmpi.serialization import (
    CHECKSUM_NBYTES,
    Envelope,
    corrupt_copy,
    payload_checksum,
    payload_nbytes,
    wrap_payload,
)
from repro.sparse import random_sparse


class TestFaultSpec:
    def test_parse_full_grammar(self):
        spec = FaultSpec.parse("transient:rank=1,op=bcast,nth=3")
        assert spec == FaultSpec("transient", rank=1, op="bcast", nth=3)

    def test_parse_plan_coordinates(self):
        spec = FaultSpec.parse("crash:rank=2,batch=1,stage=0")
        assert (spec.kind, spec.rank, spec.batch, spec.stage) == \
            ("crash", 2, 1, 0)

    def test_parse_defaults_nth_to_one(self):
        assert FaultSpec.parse("corrupt:rank=0,op=recv").nth == 1

    @pytest.mark.parametrize("text", [
        "meteor:rank=0,op=bcast",        # unknown kind
        "transient:op=bcast",            # missing rank
        "transient:rank=1",              # comm kind without op
        "crash:rank=1",                  # crash without coordinates
        "transient:rank=1,op=bcast,nth=0",   # nth is 1-based
        "transient:rank=1,op=bcast,color=red",  # unknown field
        "transient:rank=1,op",           # malformed field
    ])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            FaultSpec.parse(text)


class TestFaultPlan:
    def test_accepts_strings_and_specs(self):
        plan = FaultPlan([
            "transient:rank=0,op=bcast",
            FaultSpec("crash", rank=1, batch=0),
        ])
        assert len(plan) == 2
        assert all(isinstance(s, FaultSpec) for s in plan)

    def test_random_is_pure_function_of_seed(self):
        kwargs = dict(nprocs=8, transient=5, corrupt=3)
        p1 = FaultPlan.random(42, **kwargs)
        p2 = FaultPlan.random(42, **kwargs)
        p3 = FaultPlan.random(43, **kwargs)
        assert p1.specs == p2.specs
        assert p1.specs != p3.specs
        assert len(p1) == 8

    def test_random_ranks_within_grid(self):
        plan = FaultPlan.random(0, nprocs=4, transient=20)
        assert all(0 <= s.rank < 4 for s in plan)
        assert all(s.nth >= 1 for s in plan)


class TestInjectorCounters:
    def test_nth_attempt_addressing(self):
        inj = FaultInjector(FaultPlan(["transient:rank=0,op=bcast,nth=3"]))
        inj.on_attempt(0, "bcast")
        inj.on_attempt(0, "bcast")
        with pytest.raises(TransientCommError):
            inj.on_attempt(0, "bcast")
        # fourth attempt (the retry) passes
        inj.on_attempt(0, "bcast")
        assert inj.stats()["fired"] == 1

    def test_counters_are_per_op(self):
        inj = FaultInjector(FaultPlan(["transient:rank=0,op=recv,nth=2"]))
        inj.on_attempt(0, "bcast")
        inj.on_attempt(0, "bcast")  # bcast attempts don't advance recv's
        inj.on_attempt(0, "recv")
        with pytest.raises(TransientCommError):
            inj.on_attempt(0, "recv")

    def test_counters_are_per_rank_thread(self):
        inj = FaultInjector(FaultPlan(["transient:rank=1,op=bcast,nth=1"]))

        def prog(comm):
            # every rank attempts once; only rank 1's attempt matches
            if comm.rank == 1:
                with pytest.raises(TransientCommError):
                    inj.on_attempt(comm.rank, "bcast")
            else:
                inj.on_attempt(comm.rank, "bcast")

        run_spmd(4, prog, timeout=10)
        assert inj.stats()["fired"] == 1

    def test_crash_by_attempt(self):
        inj = FaultInjector(FaultPlan(["crash:rank=0,op=send,nth=1"]))
        with pytest.raises(RankCrashError):
            inj.on_attempt(0, "send")

    def test_delivery_corruption_heals_on_redelivery(self):
        inj = FaultInjector(FaultPlan(["corrupt:rank=0,op=recv,nth=1"]))
        payload = np.arange(8.0)
        first = inj.on_delivery(0, "recv", payload)
        assert payload_checksum(first) != payload_checksum(payload)
        second = inj.on_delivery(0, "recv", payload)
        assert second is payload

    def test_plan_op_fires_once_across_reruns(self):
        inj = FaultInjector(FaultPlan(["crash:rank=0,batch=1"]))
        with pytest.raises(RankCrashError):
            inj.on_plan_op(0, "multiply", 1, 0)
        # the re-run (after driver-level recovery) passes the same op
        inj.on_plan_op(0, "multiply", 1, 0)
        assert inj.stats()["injected"] == {"crash": 1}

    def test_stats_shape(self):
        inj = FaultInjector(FaultPlan(["transient:rank=0,op=bcast,nth=9"]))
        inj.record_retry(0, "bcast", "A-Broadcast", 1, 0.001)
        stats = inj.stats()
        assert stats["planned"] == 1
        assert stats["fired"] == 0
        assert stats["retries"] == 1
        assert stats["simulated_backoff_s"] == pytest.approx(0.001)
        assert stats["events"][0]["kind"] == "retry"


class TestSerializationChecksums:
    def test_envelope_adds_metadata_only_bytes(self):
        m = random_sparse(16, 16, nnz=40, seed=7)
        env = wrap_payload(m)
        assert isinstance(env, Envelope)
        assert payload_nbytes(env) == payload_nbytes(m) + CHECKSUM_NBYTES

    def test_checksum_deterministic_and_structural(self):
        m = random_sparse(16, 16, nnz=40, seed=7)
        same = random_sparse(16, 16, nnz=40, seed=7)
        other = random_sparse(16, 16, nnz=40, seed=8)
        assert payload_checksum(m) == payload_checksum(same)
        assert payload_checksum(m) != payload_checksum(other)

    def test_corrupt_copy_changes_checksum_not_original(self):
        m = random_sparse(16, 16, nnz=40, seed=7)
        crc = payload_checksum(m)
        bad = corrupt_copy(m)
        assert payload_checksum(bad) != crc
        assert payload_checksum(m) == crc  # original untouched

    def test_corrupt_copy_of_plain_objects(self):
        for payload in (np.arange(5), [np.arange(3), None], "text", 17):
            bad = corrupt_copy(payload)
            assert payload_checksum(bad) != payload_checksum(payload)


class TestWorldWiring:
    def test_engine_builds_injector_from_plan(self):
        plan = FaultPlan(["transient:rank=1,op=bcast,nth=1"])

        def prog(comm):
            return comm.bcast("x" * 100, root=1)

        from repro.errors import SpmdError

        # without retries the injected fault surfaces as a rank failure
        with pytest.raises(SpmdError) as info:
            run_spmd(4, prog, faults=plan, timeout=10)
        assert isinstance(info.value.failures[1], TransientCommError)

    def test_checksums_default_on_with_faults(self):
        seen = {}

        def prog(comm):
            seen[comm.rank] = comm.world.checksums
            comm.barrier()

        run_spmd(2, prog, timeout=10)
        assert seen == {0: False, 1: False}
        run_spmd(2, prog, faults=FaultPlan(), timeout=10)
        assert seen == {0: True, 1: True}

    def test_corruption_without_redelivery_budget_is_typed(self):
        """A corrupt delivery is healed by redelivery; this test asserts
        the detection path raises CorruptPayloadError when the payload is
        corrupted persistently (checksum mismatch on every delivery)."""
        import repro.simmpi.comm as comm_mod

        class AlwaysCorrupt(FaultInjector):
            def on_delivery(self, rank, op, payload, step=""):
                return corrupt_copy(payload)

        def prog(comm):
            return comm.bcast(np.arange(16.0), root=0)

        from repro.errors import SpmdError

        with pytest.raises(SpmdError) as info:
            run_spmd(2, prog, faults=AlwaysCorrupt(FaultPlan()), timeout=10)
        failure = info.value.failures[1]
        assert isinstance(failure, CorruptPayloadError)
        assert str(comm_mod.MAX_REDELIVERIES) in str(failure)
