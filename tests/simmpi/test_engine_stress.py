"""Stress and determinism tests for the SPMD engine at larger rank counts."""

import numpy as np

from repro.simmpi import CommTracker, run_spmd
from repro.summa.verify import verify_installation


class TestEngineStress:
    def test_many_ranks_many_collectives(self):
        """36 ranks x 30 mixed collectives: no deadlock, right answers."""
        def prog(comm):
            total = 0
            for round_ in range(10):
                total += comm.allreduce(comm.rank)
                gathered = comm.allgather(round_)
                assert gathered == [round_] * comm.size
                comm.barrier()
            return total

        p = 36
        expected = 10 * (p * (p - 1) // 2)
        assert run_spmd(p, prog, timeout=60) == [expected] * p

    def test_interleaved_subcommunicators(self):
        """Collectives on parent and child communicators interleave without
        cross-talk."""
        def prog(comm):
            row = comm.split(color=comm.rank // 4, key=comm.rank)
            col = comm.split(color=comm.rank % 4, key=comm.rank)
            results = []
            for _ in range(5):
                results.append(row.allreduce(1))
                results.append(comm.allreduce(1))
                results.append(col.allreduce(1))
            return results

        out = run_spmd(16, prog, timeout=60)
        assert all(o == [4, 16, 4] * 5 for o in out)

    def test_heavy_alltoall_payloads(self):
        def prog(comm):
            send = [np.full(1000, comm.rank, dtype=float)
                    for _ in range(comm.size)]
            received = comm.alltoall(send)
            return [float(r[0]) for r in received]

        out = run_spmd(9, prog, timeout=60)
        assert out[4] == [float(s) for s in range(9)]

    def test_run_to_run_determinism_under_stress(self):
        def prog(comm):
            acc = 0.0
            for i in range(8):
                acc = comm.allreduce(acc + 0.1 * (comm.rank + 1) * (i + 1))
            return acc

        runs = [tuple(run_spmd(12, prog, timeout=60)) for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]

    def test_point_to_point_ring_pipeline(self):
        """A token circulates the full ring twice."""
        def prog(comm):
            nxt = (comm.rank + 1) % comm.size
            prev = (comm.rank - 1) % comm.size
            token = comm.rank
            for _ in range(2 * comm.size):
                comm.send(token, dest=nxt)
                token = comm.recv(source=prev)
            return token

        out = run_spmd(8, prog, timeout=60)
        assert out == list(range(8))  # back to the origin after 2 laps

    def test_tracker_thread_safety(self):
        tracker = CommTracker()

        def prog(comm):
            for _ in range(20):
                comm.barrier()

        run_spmd(16, prog, tracker=tracker, timeout=60)
        assert tracker.message_count() == 20


class TestDoctor:
    def test_verify_installation_all_green(self):
        report = verify_installation(nprocs=4)
        assert report.ok, report.summary()
        assert len(report.passed) >= 12

    def test_report_summary_format(self):
        report = verify_installation(nprocs=1)
        text = report.summary()
        assert "checks passed" in text
        assert "FAIL" not in text

    def test_failures_reported_not_raised(self):
        from repro.summa.verify import CheckReport

        report = CheckReport()
        report.record("boom", lambda: (_ for _ in ()).throw(ValueError("x")))
        report.record("fine", lambda: None)
        assert not report.ok
        assert "boom" in report.failed
        assert "fine" in report.passed
        assert "FAIL boom" in report.summary()
