"""Point-to-point tag matching and variable-size alltoallv semantics.

Regression tests for the p2p rework: messages between the same (src, dst)
pair share one non-overtaking queue, but a receive must match *its* tag —
posting receives in a different order than the sends must still deliver
each message to the receive carrying its tag.
"""

import pytest

from repro.errors import SpmdError
from repro.simmpi import CommTracker, run_spmd


class TestTagMatching:
    def test_out_of_order_tags(self):
        # rank 0 sends tag 1 then tag 2; rank 1 receives tag 2 FIRST.
        def prog(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert run_spmd(2, prog)[1] == ("first", "second")

    def test_fifo_within_tag(self):
        # same tag: delivery order must follow send order (non-overtaking)
        def prog(comm):
            if comm.rank == 0:
                for i in range(4):
                    comm.send(i, dest=1, tag=7)
                return None
            return [comm.recv(source=0, tag=7) for _ in range(4)]

        assert run_spmd(2, prog)[1] == [0, 1, 2, 3]

    def test_interleaved_tags_from_isend(self):
        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.isend(10 * t, dest=1, tag=t) for t in (3, 1, 2)]
                for r in reqs:
                    r.wait()
                return None
            return [comm.recv(source=0, tag=t) for t in (1, 2, 3)]

        assert run_spmd(2, prog)[1] == [10, 20, 30]

    def test_distinct_pairs_do_not_interfere(self):
        def prog(comm):
            if comm.rank in (0, 1):
                comm.send(f"from-{comm.rank}", dest=2, tag=5)
                return None
            b = comm.recv(source=1, tag=5)
            a = comm.recv(source=0, tag=5)
            return (a, b)

        assert run_spmd(3, prog)[2] == ("from-0", "from-1")


class TestRequestTest:
    def test_test_is_nonblocking_on_missing_message(self):
        def prog(comm):
            if comm.rank == 1:
                req = comm.irecv(source=0, tag=9)
                done, _ = req.test()  # nothing sent yet: must not block
                comm.barrier()
                comm.recv(source=0, tag=0)  # unblock after the send
                while True:
                    done, value = req.test()
                    if done:
                        return value
            comm.barrier()
            comm.send("payload", dest=1, tag=9)
            comm.send("go", dest=1, tag=0)
            return None

        assert run_spmd(2, prog)[1] == "payload"

    def test_test_claims_atomically(self):
        # two irecvs on the same tag: one message satisfies exactly one
        def prog(comm):
            if comm.rank == 0:
                comm.send("only", dest=1, tag=4)
                comm.send("late", dest=1, tag=4)
                return None
            r1 = comm.irecv(source=0, tag=4)
            r2 = comm.irecv(source=0, tag=4)
            return sorted([r1.wait(), r2.wait()])

        assert run_spmd(2, prog)[1] == ["late", "only"]

    def test_repeated_test_returns_same_value(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(42, dest=1, tag=1)
                return None
            req = comm.irecv(source=0, tag=1)
            value = req.wait()
            assert req.test() == (True, value)
            assert req.test() == (True, value)
            return value

        assert run_spmd(2, prog)[1] == 42


class TestAlltoallv:
    def test_per_dest_lists(self):
        def prog(comm):
            send = [f"{comm.rank}->{d}" for d in range(comm.size)]
            return comm.alltoallv(send)

        out = run_spmd(3, prog)
        assert out[1] == ["0->1", "1->1", "2->1"]

    def test_flat_with_counts(self):
        def prog(comm):
            # rank r sends r+1 copies of its rank to each destination
            flat = []
            for d in range(comm.size):
                flat.extend([comm.rank] * (comm.rank + 1))
            counts = [comm.rank + 1] * comm.size
            return comm.alltoallv(flat, counts)

        out = run_spmd(3, prog)
        # receiver r gets, from each source s, a list of s+1 copies of s
        assert out[0] == [[0], [1, 1], [2, 2, 2]]
        assert out[2] == out[0]

    def test_counts_validation(self):
        with pytest.raises(SpmdError):
            run_spmd(2, lambda c: c.alltoallv([1, 2, 3], [1, 1]))
        with pytest.raises(SpmdError):
            run_spmd(2, lambda c: c.alltoallv([1, 2], [2]))

    def test_metered_as_alltoallv(self):
        tracker = CommTracker()

        def prog(comm):
            return comm.alltoallv([[comm.rank]] * comm.size)

        run_spmd(4, prog, tracker=tracker)
        ops = {e.op for e in tracker.events}
        assert "alltoallv" in ops
