"""Collective-semantics tests for the simulated MPI communicators."""

import numpy as np
import pytest

from repro.errors import SpmdError
from repro.simmpi import CommTracker, run_spmd


class TestBarrier:
    def test_completes(self):
        out = run_spmd(4, lambda comm: comm.barrier() or comm.rank)
        assert out == [0, 1, 2, 3]


class TestBcast:
    def test_root_value_everywhere(self):
        def prog(comm):
            return comm.bcast(comm.rank * 10, root=2)

        assert run_spmd(4, prog) == [20, 20, 20, 20]

    def test_numpy_payload(self):
        def prog(comm):
            data = np.arange(5) if comm.rank == 0 else None
            return comm.bcast(data, root=0).sum()

        assert run_spmd(3, prog) == [10, 10, 10]

    def test_invalid_root(self):
        with pytest.raises(SpmdError):
            run_spmd(2, lambda comm: comm.bcast(1, root=9))


class TestAllgatherGatherScatter:
    def test_allgather(self):
        out = run_spmd(4, lambda comm: comm.allgather(comm.rank**2))
        assert out[0] == [0, 1, 4, 9]
        assert all(o == out[0] for o in out)

    def test_gather_root_only(self):
        out = run_spmd(3, lambda comm: comm.gather(comm.rank, root=1))
        assert out[0] is None and out[2] is None
        assert out[1] == [0, 1, 2]

    def test_scatter(self):
        def prog(comm):
            payload = [f"to-{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(payload, root=0)

        assert run_spmd(3, prog) == ["to-0", "to-1", "to-2"]

    def test_scatter_wrong_length(self):
        def prog(comm):
            payload = [1] if comm.rank == 0 else None
            return comm.scatter(payload, root=0)

        with pytest.raises(SpmdError):
            run_spmd(3, prog)


class TestAllreduce:
    def test_sum(self):
        assert run_spmd(4, lambda c: c.allreduce(c.rank + 1)) == [10] * 4

    def test_max_min(self):
        assert run_spmd(4, lambda c: c.allreduce(c.rank, op="max")) == [3] * 4
        assert run_spmd(4, lambda c: c.allreduce(c.rank, op="min")) == [0] * 4

    def test_ndarray_sum(self):
        def prog(comm):
            return comm.allreduce(np.full(3, comm.rank, dtype=float)).tolist()

        assert run_spmd(3, prog) == [[3.0, 3.0, 3.0]] * 3

    def test_unknown_op(self):
        with pytest.raises(SpmdError):
            run_spmd(2, lambda c: c.allreduce(1, op="xor"))

    def test_reduce_root_only(self):
        out = run_spmd(3, lambda c: c.reduce(c.rank + 1, root=0))
        assert out == [6, None, None]


class TestAlltoall:
    def test_transposes_payloads(self):
        def prog(comm):
            send = [(comm.rank, dest) for dest in range(comm.size)]
            return comm.alltoall(send)

        out = run_spmd(3, prog)
        # rank r receives [(src, r) for src in ranks]
        assert out[1] == [(0, 1), (1, 1), (2, 1)]

    def test_wrong_length(self):
        with pytest.raises(SpmdError):
            run_spmd(3, lambda c: c.alltoall([1, 2]))


class TestSplit:
    def test_groups_by_color(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return (sub.size, sub.rank, sub.allgather(comm.rank))

        out = run_spmd(4, prog)
        assert out[0] == (2, 0, [0, 2])
        assert out[3] == (2, 1, [1, 3])

    def test_key_orders_members(self):
        def prog(comm):
            # reversed key: highest old rank becomes local 0
            sub = comm.split(color=0, key=comm.size - comm.rank)
            return sub.allgather(comm.rank)

        out = run_spmd(3, prog)
        assert out[0] == [2, 1, 0]

    def test_nested_split(self):
        def prog(comm):
            half = comm.split(color=comm.rank // 2)
            quarter = half.split(color=half.rank % 2)
            return quarter.size

        assert run_spmd(4, prog) == [1, 1, 1, 1]

    def test_dup_keeps_membership(self):
        def prog(comm):
            d = comm.dup()
            return (d.size, d.rank)

        assert run_spmd(3, prog) == [(3, 0), (3, 1), (3, 2)]


class TestPointToPoint:
    def test_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("hello", dest=1)
                return None
            return comm.recv(source=0)

        assert run_spmd(2, prog) == [None, "hello"]

    def test_fifo_per_source(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, dest=1)
                comm.send(2, dest=1)
                return None
            return [comm.recv(source=0), comm.recv(source=0)]

        assert run_spmd(2, prog) == [None, [1, 2]]

    def test_tags_separate_channels(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=7)
                comm.send("b", dest=1, tag=9)
                return None
            # receive in reverse tag order
            return [comm.recv(source=0, tag=9), comm.recv(source=0, tag=7)]

        assert run_spmd(2, prog) == [None, ["b", "a"]]


class TestFailureSemantics:
    def test_peer_failure_propagates(self):
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("rank 0 exploded")
            comm.barrier()

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(3, prog, timeout=10)
        assert 0 in exc_info.value.failures
        assert isinstance(exc_info.value.failures[0], RuntimeError)

    def test_mismatched_collectives_timeout(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
            # rank 1 never joins

        with pytest.raises(SpmdError):
            run_spmd(2, prog, timeout=1.0)

    def test_single_rank_fast_path(self):
        assert run_spmd(1, lambda c: c.allreduce(5)) == [5]

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda c: None)


class TestDeterminism:
    def test_float_reduction_deterministic(self):
        def prog(comm):
            return comm.allreduce(0.1 * (comm.rank + 1))

        runs = [run_spmd(8, prog)[0] for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]


class TestStepLabels:
    def test_labels_flow_to_tracker(self):
        tracker = CommTracker()

        def prog(comm):
            with comm.step("phase-x"):
                comm.barrier()
            comm.barrier()

        run_spmd(2, prog, tracker=tracker)
        steps = {e.step for e in tracker.events}
        assert steps == {"phase-x", ""}

    def test_nested_labels_restore(self):
        tracker = CommTracker()

        def prog(comm):
            with comm.step("outer"):
                with comm.step("inner"):
                    comm.barrier()
                comm.barrier()

        run_spmd(2, prog, tracker=tracker)
        assert [e.step for e in tracker.events] == ["inner", "outer"]


class TestNonblocking:
    def test_isend_completes_immediately(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(42, dest=1)
                done, _ = req.test()
                assert done
                return req.wait()
            return comm.recv(source=0)

        assert run_spmd(2, prog) == [None, 42]

    def test_irecv_wait(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("payload", dest=1)
                return None
            return comm.irecv(source=0).wait()

        assert run_spmd(2, prog) == [None, "payload"]

    def test_irecv_test_polls_to_completion(self):
        import time

        def prog(comm):
            if comm.rank == 0:
                time.sleep(0.05)
                comm.send("late", dest=1)
                return None
            req = comm.irecv(source=0)
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                done, value = req.test()
                if done:
                    return value
                time.sleep(0.005)
            return "timed-out"

        assert run_spmd(2, prog) == [None, "late"]

    def test_overlap_pattern(self):
        """Compute while a message is in flight, then collect it."""
        def prog(comm):
            if comm.rank == 0:
                comm.isend([1, 2, 3], dest=1)
                return None
            req = comm.irecv(source=0)
            local = sum(range(100))  # the overlapped computation
            data = req.wait()
            return local + sum(data)

        assert run_spmd(2, prog) == [None, 4956]

    def test_test_idempotent_after_completion(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(7, dest=1)
                return None
            req = comm.irecv(source=0)
            assert req.wait() == 7
            assert req.test() == (True, 7)
            assert req.test() == (True, 7)
            return True

        assert run_spmd(2, prog) == [None, True]


class TestIbcast:
    def test_root_born_complete_with_value(self):
        def prog(comm):
            if comm.rank == 1:
                req = comm.ibcast("payload", root=1)
                done, value = req.test()
                assert done
                return value
            return comm.ibcast(None, root=1).wait()

        assert run_spmd(4, prog) == ["payload"] * 4

    def test_numpy_payload(self):
        def prog(comm):
            data = np.arange(6) if comm.rank == 0 else None
            return comm.ibcast(data, root=0).wait().sum()

        assert run_spmd(3, prog) == [15, 15, 15]

    def test_invalid_root(self):
        with pytest.raises(SpmdError):
            run_spmd(2, lambda comm: comm.ibcast(1, root=5))

    def test_tag_separation(self):
        """Two in-flight broadcasts from different roots must not
        cross-match — the property stage-tagged prefetching relies on."""
        def prog(comm):
            r0 = comm.ibcast("from0" if comm.rank == 0 else None,
                             root=0, tag=0)
            r1 = comm.ibcast("from1" if comm.rank == 1 else None,
                             root=1, tag=1)
            return (r0.wait(), r1.wait())

        assert run_spmd(3, prog) == [("from0", "from1")] * 3

    def test_byte_total_matches_bcast(self):
        """ibcast meters (size-1) point-to-point sends whose bytes sum to
        exactly what one blocking bcast records — the executors' byte
        parity rests on this."""
        payload = np.arange(100)

        def blocking(comm):
            comm.bcast(payload if comm.rank == 0 else None, root=0)

        def nonblocking(comm):
            comm.ibcast(payload if comm.rank == 0 else None, root=0).wait()

        t_block, t_nonblock = CommTracker(), CommTracker()
        run_spmd(4, blocking, tracker=t_block)
        run_spmd(4, nonblocking, tracker=t_nonblock)
        assert t_block.total_bytes() == t_nonblock.total_bytes()

    def test_overlap_pattern(self):
        """Compute between issue and wait — the prefetch shape."""
        def prog(comm):
            req = comm.ibcast([1, 2, 3] if comm.rank == 0 else None, root=0)
            local = sum(range(50))
            return local + sum(req.wait())

        assert run_spmd(4, prog) == [1231] * 4
