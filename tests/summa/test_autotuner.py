"""Tests for the joint (layers, batches) auto-tuner."""

import pytest

from repro.data import load_dataset
from repro.errors import PlannerError
from repro.sparse import random_sparse
from repro.sparse.matrix import BYTES_PER_NONZERO
from repro.summa import auto_config, batched_summa3d


@pytest.fixture(scope="module")
def matrix():
    a, _ = load_dataset("eukarya").operands(seed=0)
    return a


class TestAutoConfig:
    def test_without_budget_single_batch(self, matrix):
        plan = auto_config(matrix, matrix, nprocs=16)
        assert plan.batches == 1
        assert plan.layers in (1, 4, 16)
        assert plan.predicted_seconds > 0

    def test_candidates_are_valid_grids(self, matrix):
        plan = auto_config(matrix, matrix, nprocs=16)
        import math

        for layers, batches, _t in plan.candidates:
            assert 16 % layers == 0
            assert math.isqrt(16 // layers) ** 2 == 16 // layers
            assert batches >= 1

    def test_chosen_is_argmin(self, matrix):
        plan = auto_config(matrix, matrix, nprocs=16)
        assert plan.predicted_seconds == min(t for _l, _b, t in plan.candidates)

    def test_budget_excludes_infeasible_layouts(self, matrix):
        """The block-diagonal protein matrix has heavy diagonal tiles at
        l=1; a tight budget makes l=1 infeasible while layered grids (with
        thinner tiles) survive — the tuner must skip, not crash."""
        budget = 8 * matrix.nnz * BYTES_PER_NONZERO
        plan = auto_config(matrix, matrix, nprocs=16, memory_budget=budget)
        layer_options = {l for l, _b, _t in plan.candidates}
        assert 1 not in layer_options
        assert plan.layers in layer_options

    def test_symbolic_vs_estimate_agree_roughly(self, matrix):
        budget = 30 * matrix.nnz * BYTES_PER_NONZERO
        exact = auto_config(matrix, matrix, nprocs=16, memory_budget=budget,
                            use_symbolic=True)
        approx = auto_config(matrix, matrix, nprocs=16, memory_budget=budget,
                             use_symbolic=False)
        assert {l for l, _b, _t in exact.candidates} == \
            {l for l, _b, _t in approx.candidates}

    def test_all_infeasible_raises(self, matrix):
        with pytest.raises(PlannerError):
            auto_config(matrix, matrix, nprocs=16, memory_budget=1000)

    def test_plan_executes(self, matrix):
        from repro.sparse import multiply

        budget = 10 * matrix.nnz * BYTES_PER_NONZERO
        plan = auto_config(matrix, matrix, nprocs=16, memory_budget=budget)
        r = batched_summa3d(
            matrix, matrix, nprocs=16, layers=plan.layers,
            batches=plan.batches,
        )
        assert r.matrix.allclose(multiply(matrix, matrix))

    def test_small_uniform_matrix_prefers_few_layers(self):
        """At tiny scale with no memory pressure the fiber overhead makes
        low layer counts win."""
        a = random_sparse(32, 32, nnz=128, seed=201)
        plan = auto_config(a, a, nprocs=4)
        assert plan.layers in (1, 4)
