"""Tests for the related-work baselines (1D SpGEMM, Cannon's algorithm)."""

import numpy as np
import pytest

from repro.errors import GridError, ShapeError
from repro.simmpi import CommTracker
from repro.sparse import eye, random_sparse
from repro.summa.baselines import cannon2d, spgemm_1d
from tests.conftest import to_scipy


@pytest.fixture(scope="module")
def operands():
    a = random_sparse(42, 35, nnz=400, seed=61)
    b = random_sparse(35, 51, nnz=380, seed=62)
    return a, b, (to_scipy(a) @ to_scipy(b)).toarray()


class TestSpgemm1D:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7])
    def test_matches_scipy(self, operands, nprocs):
        a, b, expected = operands
        r = spgemm_1d(a, b, nprocs=nprocs)
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_shape_error(self):
        with pytest.raises(ShapeError):
            spgemm_1d(eye(3), eye(4))

    def test_allgather_volume_is_p_times_nnz_b(self, operands):
        """The 1D algorithm's non-scaling communication: aggregate volume
        grows linearly with p (Sec. II-C's argument against 1D)."""
        a, b, _ = operands
        volumes = {}
        for nprocs in (2, 4, 8):
            tracker = CommTracker()
            spgemm_1d(a, b, nprocs=nprocs, tracker=tracker)
            volumes[nprocs] = tracker.total_bytes("B-Allgather")
        # each process receives ~all of B: volume ~ (p-1) * nnz(B) * r
        assert volumes[4] > 2.5 * volumes[2]
        assert volumes[8] > 2.0 * volumes[4]

    def test_step_times_present(self, operands):
        a, b, _ = operands
        r = spgemm_1d(a, b, nprocs=4)
        assert "B-Allgather" in r.step_times.seconds
        assert "Local-Multiply" in r.step_times.seconds


class TestCannon:
    @pytest.mark.parametrize("nprocs", [1, 4, 9, 16])
    def test_matches_scipy(self, operands, nprocs):
        a, b, expected = operands
        r = cannon2d(a, b, nprocs=nprocs)
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_square_grid_required(self, operands):
        a, b, _ = operands
        with pytest.raises(GridError):
            cannon2d(a, b, nprocs=6)

    def test_shape_error(self):
        with pytest.raises(ShapeError):
            cannon2d(eye(3), eye(4))

    def test_uses_point_to_point(self, operands):
        a, b, _ = operands
        tracker = CommTracker()
        cannon2d(a, b, nprocs=9, tracker=tracker)
        ops = {e.op for e in tracker.events}
        assert "send" in ops
        assert "bcast" not in ops  # no broadcasts: Cannon is all shifts

    def test_shift_count(self, operands):
        """q-1 shift rounds, each rank sends one A and one B tile."""
        a, b, _ = operands
        tracker = CommTracker()
        cannon2d(a, b, nprocs=9, tracker=tracker)
        sends = [e for e in tracker.events if e.op == "send"]
        assert len(sends) == 9 * 2 * 2  # p ranks x 2 tiles x (q-1) rounds

    def test_semiring(self, operands):
        from repro.sparse import multiply
        from repro.sparse.semiring import MIN_PLUS

        a, b, _ = operands
        r = cannon2d(a, b, nprocs=4, semiring=MIN_PLUS)
        assert r.matrix.allclose(multiply(a, b, semiring=MIN_PLUS))


class TestBaselineVsSumma:
    def test_all_algorithms_agree(self, operands):
        from repro.summa import summa2d

        a, b, expected = operands
        r1 = spgemm_1d(a, b, nprocs=4)
        rc = cannon2d(a, b, nprocs=4)
        rs = summa2d(a, b, nprocs=4)
        assert r1.matrix.allclose(rs.matrix)
        assert rc.matrix.allclose(rs.matrix)

    def test_summa_beats_1d_on_volume(self, operands):
        """At equal p, SUMMA's broadcast volume is ~1/sqrt(p) of what the
        1D allgather moves — the fundamental 2D-vs-1D advantage."""
        a, b, _ = operands
        t1 = CommTracker()
        spgemm_1d(a, b, nprocs=16, tracker=t1)
        ts = CommTracker()
        from repro.summa import summa2d

        summa2d(a, b, nprocs=16, tracker=ts)
        vol_1d = t1.total_bytes()
        vol_2d = ts.total_bytes()
        assert vol_2d < vol_1d


class TestOverlappedCannon:
    def test_matches_blocking_variant(self, operands):
        a, b, expected = operands
        import numpy as np

        r = cannon2d(a, b, nprocs=9, overlap=True)
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_single_process(self, operands):
        a, b, expected = operands
        import numpy as np

        r = cannon2d(a, b, nprocs=1, overlap=True)
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_same_communication_volume(self, operands):
        """Overlap changes scheduling, not what moves."""
        a, b, _ = operands
        t_blocking = CommTracker()
        cannon2d(a, b, nprocs=9, tracker=t_blocking)
        t_overlap = CommTracker()
        cannon2d(a, b, nprocs=9, overlap=True, tracker=t_overlap)
        assert t_overlap.total_bytes() == t_blocking.total_bytes()
