"""Tests for the extended batching options: row batching, batch schemes,
merge policies, and batch spilling."""

import os

import numpy as np
import pytest

from repro.sparse import load_matrix, random_sparse
from repro.summa import batched_summa3d, batched_summa3d_rows
from tests.conftest import to_scipy


@pytest.fixture(scope="module")
def operands():
    a = random_sparse(40, 33, nnz=350, seed=71)
    b = random_sparse(33, 46, nnz=330, seed=72)
    return a, b, (to_scipy(a) @ to_scipy(b)).toarray()


class TestRowBatching:
    @pytest.mark.parametrize("batches", [1, 2, 4])
    def test_matches_column_batching(self, operands, batches):
        a, b, expected = operands
        r = batched_summa3d_rows(a, b, nprocs=4, batches=batches)
        assert np.allclose(r.matrix.to_dense(), expected)
        assert r.info["batch_axis"] == "rows"

    def test_3d_grid(self, operands):
        a, b, expected = operands
        r = batched_summa3d_rows(a, b, nprocs=8, layers=2, batches=3)
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_on_batch_receives_row_blocks(self, operands):
        a, b, expected = operands
        seen = {}

        def hook(batch, spans, mat):
            seen[batch] = mat

        batched_summa3d_rows(
            a, b, nprocs=4, batches=3, keep_output=False, on_batch=hook
        )
        assert sorted(seen) == [0, 1, 2]
        # batches are row blocks: full output shape, disjoint row support
        total = sum(m.to_dense() for m in seen.values())
        assert np.allclose(total, expected)
        supports = [set(m.rowidx.tolist()) for m in seen.values()]
        for x in range(len(supports)):
            for y in range(x + 1, len(supports)):
                assert not (supports[x] & supports[y])

    def test_symbolic_batching_via_budget(self, operands):
        a, b, expected = operands
        budget = 8 * (a.nnz + b.nnz) * 24
        r = batched_summa3d_rows(a, b, nprocs=4, memory_budget=budget)
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_heavy_a_broadcast_shrinks(self):
        """The point of row batching: when nnz(A) >> nnz(B), column
        batching re-broadcasts the heavy A b times; row batching
        re-broadcasts the light B instead."""
        from repro.simmpi import CommTracker

        a = random_sparse(40, 40, nnz=800, seed=73)   # heavy
        b = random_sparse(40, 40, nnz=80, seed=74)    # light
        col_tracker = CommTracker()
        batched_summa3d(a, b, nprocs=4, batches=4, tracker=col_tracker)
        row_tracker = CommTracker()
        batched_summa3d_rows(a, b, nprocs=4, batches=4, tracker=row_tracker)
        assert row_tracker.total_bytes() < col_tracker.total_bytes()


class TestBatchSchemes:
    @pytest.mark.parametrize("scheme", ["block-cyclic", "block"])
    @pytest.mark.parametrize("batches", [1, 3])
    def test_schemes_agree(self, operands, scheme, batches):
        a, b, expected = operands
        r = batched_summa3d(
            a, b, nprocs=8, layers=2, batches=batches, batch_scheme=scheme
        )
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_unknown_scheme(self, operands):
        a, b, _ = operands
        with pytest.raises(Exception):
            batched_summa3d(a, b, nprocs=4, batches=2, batch_scheme="zig")

    def test_block_cyclic_balances_fiber(self):
        """The Fig. 1(i) rationale: under block-cyclic batching the fiber
        exchange volumes are spread more evenly across batches than under
        a contiguous block split when the matrix is column-skewed."""
        import numpy as np

        from repro.sparse import SparseMatrix

        # heavily column-skewed B: all mass in the first third of columns
        rng = np.random.default_rng(75)
        n = 48
        rows = rng.integers(0, n, 600)
        cols = rng.integers(0, n // 3, 600)
        b = SparseMatrix.from_coo(n, n, rows, cols, np.ones(600))
        a = random_sparse(n, n, nnz=500, seed=76)

        def imbalance(scheme):
            r = batched_summa3d(
                a, b, nprocs=4, layers=4, batches=4, batch_scheme=scheme
            )
            # per-rank, per-batch fiber volumes
            per_batch = np.array(r.info["fiber_piece_nnz"], dtype=float)
            batch_totals = per_batch.sum(axis=0)
            return batch_totals.max() / max(batch_totals.mean(), 1.0)

        assert imbalance("block-cyclic") <= imbalance("block")


class TestMergePolicies:
    @pytest.mark.parametrize("policy", ["deferred", "incremental"])
    def test_policies_agree(self, operands, policy):
        a, b, expected = operands
        r = batched_summa3d(
            a, b, nprocs=9, layers=1, batches=2, merge_policy=policy
        )
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_unknown_policy(self, operands):
        a, b, _ = operands
        with pytest.raises(Exception):
            batched_summa3d(a, b, nprocs=4, batches=1, merge_policy="eager")

    def test_incremental_lowers_transient_memory(self):
        """Sec. III-A: incremental merging trades extra merge work for not
        holding all stage partials — the per-process high water drops."""
        a = random_sparse(60, 60, nnz=900, seed=77)
        deferred = batched_summa3d(
            a, a, nprocs=16, batches=1, merge_policy="deferred",
            keep_output=False,
        )
        incremental = batched_summa3d(
            a, a, nprocs=16, batches=1, merge_policy="incremental",
            keep_output=False,
        )
        assert incremental.max_local_bytes <= deferred.max_local_bytes


class TestSpill:
    def test_spilled_batches_reassemble(self, operands, tmp_path):
        a, b, expected = operands
        r = batched_summa3d(
            a, b, nprocs=4, batches=3, keep_output=False,
            spill_dir=str(tmp_path),
        )
        assert r.matrix is None
        parts = [
            load_matrix(tmp_path / f"batch_{i}.npz") for i in range(3)
        ]
        assert np.allclose(sum(p.to_dense() for p in parts), expected)

    def test_spill_files_named_by_batch(self, operands, tmp_path):
        a, b, _ = operands
        batched_summa3d(a, b, nprocs=4, batches=2, keep_output=False,
                        spill_dir=str(tmp_path))
        assert sorted(os.listdir(tmp_path)) == ["batch_0.npz", "batch_1.npz"]

    def test_spill_with_keep_output(self, operands, tmp_path):
        a, b, expected = operands
        r = batched_summa3d(a, b, nprocs=4, batches=2, spill_dir=str(tmp_path))
        assert np.allclose(r.matrix.to_dense(), expected)
        assert len(os.listdir(tmp_path)) == 2
