"""Tests for the extended batching options: row batching, batch schemes,
merge policies, and batch spilling."""

import os

import numpy as np
import pytest

from repro.sparse import load_matrix, random_sparse
from repro.summa import batched_summa3d, batched_summa3d_rows
from tests.conftest import to_scipy


@pytest.fixture(scope="module")
def operands():
    a = random_sparse(40, 33, nnz=350, seed=71)
    b = random_sparse(33, 46, nnz=330, seed=72)
    return a, b, (to_scipy(a) @ to_scipy(b)).toarray()


class TestRowBatching:
    @pytest.mark.parametrize("batches", [1, 2, 4])
    def test_matches_column_batching(self, operands, batches):
        a, b, expected = operands
        r = batched_summa3d_rows(a, b, nprocs=4, batches=batches)
        assert np.allclose(r.matrix.to_dense(), expected)
        assert r.info["batch_axis"] == "rows"

    def test_3d_grid(self, operands):
        a, b, expected = operands
        r = batched_summa3d_rows(a, b, nprocs=8, layers=2, batches=3)
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_on_batch_receives_row_blocks(self, operands):
        a, b, expected = operands
        seen = {}

        def hook(batch, spans, mat):
            seen[batch] = mat

        batched_summa3d_rows(
            a, b, nprocs=4, batches=3, keep_output=False, on_batch=hook
        )
        assert sorted(seen) == [0, 1, 2]
        # batches are row blocks: full output shape, disjoint row support
        total = sum(m.to_dense() for m in seen.values())
        assert np.allclose(total, expected)
        supports = [set(m.rowidx.tolist()) for m in seen.values()]
        for x in range(len(supports)):
            for y in range(x + 1, len(supports)):
                assert not (supports[x] & supports[y])

    def test_symbolic_batching_via_budget(self, operands):
        a, b, expected = operands
        budget = 8 * (a.nnz + b.nnz) * 24
        r = batched_summa3d_rows(a, b, nprocs=4, memory_budget=budget)
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_heavy_a_broadcast_shrinks(self):
        """The point of row batching: when nnz(A) >> nnz(B), column
        batching re-broadcasts the heavy A b times; row batching
        re-broadcasts the light B instead."""
        from repro.simmpi import CommTracker

        a = random_sparse(40, 40, nnz=800, seed=73)   # heavy
        b = random_sparse(40, 40, nnz=80, seed=74)    # light
        col_tracker = CommTracker()
        batched_summa3d(a, b, nprocs=4, batches=4, tracker=col_tracker)
        row_tracker = CommTracker()
        batched_summa3d_rows(a, b, nprocs=4, batches=4, tracker=row_tracker)
        assert row_tracker.total_bytes() < col_tracker.total_bytes()


class TestBatchSchemes:
    @pytest.mark.parametrize("scheme", ["block-cyclic", "block"])
    @pytest.mark.parametrize("batches", [1, 3])
    def test_schemes_agree(self, operands, scheme, batches):
        a, b, expected = operands
        r = batched_summa3d(
            a, b, nprocs=8, layers=2, batches=batches, batch_scheme=scheme
        )
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_unknown_scheme(self, operands):
        a, b, _ = operands
        with pytest.raises(Exception):
            batched_summa3d(a, b, nprocs=4, batches=2, batch_scheme="zig")

    def test_block_cyclic_balances_fiber(self):
        """The Fig. 1(i) rationale: under block-cyclic batching the fiber
        exchange volumes are spread more evenly across batches than under
        a contiguous block split when the matrix is column-skewed."""
        import numpy as np

        from repro.sparse import SparseMatrix

        # heavily column-skewed B: all mass in the first third of columns
        rng = np.random.default_rng(75)
        n = 48
        rows = rng.integers(0, n, 600)
        cols = rng.integers(0, n // 3, 600)
        b = SparseMatrix.from_coo(n, n, rows, cols, np.ones(600))
        a = random_sparse(n, n, nnz=500, seed=76)

        def imbalance(scheme):
            r = batched_summa3d(
                a, b, nprocs=4, layers=4, batches=4, batch_scheme=scheme
            )
            # per-rank, per-batch fiber volumes
            per_batch = np.array(r.info["fiber_piece_nnz"], dtype=float)
            batch_totals = per_batch.sum(axis=0)
            return batch_totals.max() / max(batch_totals.mean(), 1.0)

        assert imbalance("block-cyclic") <= imbalance("block")


class TestMergePolicies:
    @pytest.mark.parametrize("policy", ["deferred", "incremental"])
    def test_policies_agree(self, operands, policy):
        a, b, expected = operands
        r = batched_summa3d(
            a, b, nprocs=9, layers=1, batches=2, merge_policy=policy
        )
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_unknown_policy(self, operands):
        a, b, _ = operands
        with pytest.raises(Exception):
            batched_summa3d(a, b, nprocs=4, batches=1, merge_policy="eager")

    def test_incremental_lowers_transient_memory(self):
        """Sec. III-A: incremental merging trades extra merge work for not
        holding all stage partials — the per-process high water drops."""
        a = random_sparse(60, 60, nnz=900, seed=77)
        deferred = batched_summa3d(
            a, a, nprocs=16, batches=1, merge_policy="deferred",
            keep_output=False,
        )
        incremental = batched_summa3d(
            a, a, nprocs=16, batches=1, merge_policy="incremental",
            keep_output=False,
        )
        assert incremental.max_local_bytes <= deferred.max_local_bytes


class TestSpill:
    def test_spilled_batches_reassemble(self, operands, tmp_path):
        a, b, expected = operands
        r = batched_summa3d(
            a, b, nprocs=4, batches=3, keep_output=False,
            spill_dir=str(tmp_path),
        )
        assert r.matrix is None
        parts = [
            load_matrix(tmp_path / f"batch_{i}.npz") for i in range(3)
        ]
        assert np.allclose(sum(p.to_dense() for p in parts), expected)

    def test_spill_files_named_by_batch(self, operands, tmp_path):
        a, b, _ = operands
        batched_summa3d(a, b, nprocs=4, batches=2, keep_output=False,
                        spill_dir=str(tmp_path))
        assert sorted(os.listdir(tmp_path)) == ["batch_0.npz", "batch_1.npz"]

    def test_spill_with_keep_output(self, operands, tmp_path):
        a, b, expected = operands
        r = batched_summa3d(a, b, nprocs=4, batches=2, spill_dir=str(tmp_path))
        assert np.allclose(r.matrix.to_dense(), expected)
        assert len(os.listdir(tmp_path)) == 2


class TestRowBatchingForwarding:
    """The row driver must forward every batching/communication knob to
    the transposed inner run, not silently drop it."""

    def test_sparse_backend_matches_reference(self, operands):
        a, b, expected = operands
        r = batched_summa3d_rows(
            a, b, nprocs=4, batches=2, comm_backend="sparse",
        )
        assert np.allclose(r.matrix.to_dense(), expected)
        assert r.info["comm_backend"] == "sparse"

    @pytest.mark.parametrize("scheme", ["block", "block-cyclic"])
    @pytest.mark.parametrize("policy", ["deferred", "incremental"])
    def test_scheme_and_policy_forwarded(self, operands, scheme, policy):
        a, b, expected = operands
        r = batched_summa3d_rows(
            a, b, nprocs=4, batches=3, batch_scheme=scheme,
            merge_policy=policy,
        )
        assert np.allclose(r.matrix.to_dense(), expected)
        assert r.info["batch_scheme"] == scheme
        assert r.info["merge_policy"] == policy

    def test_overlap_forwarded_and_identical(self, operands):
        a, b, expected = operands
        off = batched_summa3d_rows(a, b, nprocs=4, batches=2, overlap="off")
        d1 = batched_summa3d_rows(a, b, nprocs=4, batches=2,
                                  overlap="depth1")
        assert d1.info["overlap"] == "depth1"
        assert np.allclose(d1.matrix.to_dense(), expected)
        assert np.array_equal(
            off.matrix.canonical().to_dense(),
            d1.matrix.canonical().to_dense(),
        )

    def test_bytes_per_nonzero_forwarded(self, operands):
        """A fatter nonzero makes the symbolic step choose more batches
        under the same budget — visible only if the knob reaches the
        inner (transposed) run."""
        a, b, _ = operands
        budget = 24 * (a.nnz + b.nnz) * 12
        thin = batched_summa3d_rows(
            a, b, nprocs=4, memory_budget=budget, bytes_per_nonzero=12,
        )
        fat = batched_summa3d_rows(
            a, b, nprocs=4, memory_budget=budget, bytes_per_nonzero=48,
        )
        assert fat.batches >= thin.batches

    def test_spill_writes_row_blocks(self, operands, tmp_path):
        a, b, expected = operands
        r = batched_summa3d_rows(
            a, b, nprocs=4, batches=3, keep_output=False,
            spill_dir=str(tmp_path),
        )
        assert r.matrix is None
        parts = [load_matrix(tmp_path / f"batch_{i}.npz") for i in range(3)]
        assert np.allclose(sum(p.to_dense() for p in parts), expected)
        # each file is a row block: full shape, disjoint row support
        supports = [set(p.rowidx.tolist()) for p in parts]
        for x in range(len(supports)):
            assert parts[x].shape == (a.nrows, b.ncols)
            for y in range(x + 1, len(supports)):
                assert not (supports[x] & supports[y])


class TestStreamingMemory:
    """Satellite: with ``keep_output=False`` and a piece sink (spill or
    hook), finished pieces leave the ranks immediately, so the per-rank
    high water must not grow with the batch count."""

    def _high_water(self, batches, tmp_path, **kw):
        a = random_sparse(60, 60, nnz=1200, seed=81)
        b = random_sparse(60, 60, nnz=1100, seed=82)
        r = batched_summa3d(
            a, b, nprocs=4, batches=batches, keep_output=False,
            spill_dir=str(tmp_path), **kw,
        )
        return r.max_local_bytes

    def test_spill_high_water_flat_in_batches(self, tmp_path):
        hw1 = self._high_water(1, tmp_path / "b1")
        hw4 = self._high_water(4, tmp_path / "b4")
        assert hw4 <= hw1

    def test_streaming_beats_keeping(self, tmp_path):
        a = random_sparse(60, 60, nnz=1200, seed=81)
        b = random_sparse(60, 60, nnz=1100, seed=82)
        kept = batched_summa3d(a, b, nprocs=4, batches=4)
        streamed = batched_summa3d(
            a, b, nprocs=4, batches=4, keep_output=False,
            spill_dir=str(tmp_path),
        )
        assert streamed.max_local_bytes < kept.max_local_bytes
        # and streaming loses nothing: the spilled pieces reassemble
        parts = [load_matrix(tmp_path / f"batch_{i}.npz") for i in range(4)]
        assert np.allclose(
            sum(p.to_dense() for p in parts), kept.matrix.to_dense()
        )

    def test_on_batch_streams_without_spill(self):
        a = random_sparse(60, 60, nnz=1200, seed=81)
        b = random_sparse(60, 60, nnz=1100, seed=82)
        seen = {}
        r = batched_summa3d(
            a, b, nprocs=4, batches=3, keep_output=False,
            on_batch=lambda batch, spans, m: seen.__setitem__(batch, m),
        )
        assert sorted(seen) == [0, 1, 2]
        kept = batched_summa3d(a, b, nprocs=4, batches=3)
        assert np.allclose(
            sum(m.to_dense() for m in seen.values()),
            kept.matrix.to_dense(),
        )
        assert r.max_local_bytes < kept.max_local_bytes
