"""Tests for the distributed symbolic step (Alg. 3) and batch planning."""

import pytest

from repro.errors import MemoryBudgetError, PlannerError, SpmdError
from repro.sparse import random_sparse, symbolic_flops, symbolic_nnz
from repro.sparse.matrix import BYTES_PER_NONZERO
from repro.summa import (
    batched_summa3d,
    batches_lower_bound,
    batches_upper_bound,
    symbolic3d,
)


@pytest.fixture(scope="module")
def matrix():
    # dense-ish square so squaring genuinely expands
    return random_sparse(60, 60, nnz=900, seed=51)


class TestSymbolic3D:
    def test_generous_budget_one_batch(self, matrix):
        r = symbolic3d(matrix, matrix, nprocs=4, memory_budget=10**9)
        assert r.batches == 1

    def test_tight_budget_many_batches(self, matrix):
        generous = symbolic3d(matrix, matrix, nprocs=4, memory_budget=10**9)
        inputs_bytes = 2 * matrix.nnz * BYTES_PER_NONZERO
        tight = symbolic3d(
            matrix, matrix, nprocs=4,
            memory_budget=inputs_bytes * 3,
        )
        assert tight.batches > generous.batches

    def test_budget_monotonicity(self, matrix):
        budgets = [3 * 10**5, 10**6, 10**7, 10**9]
        batch_counts = [
            symbolic3d(matrix, matrix, nprocs=4, memory_budget=m).batches
            for m in budgets
        ]
        assert batch_counts == sorted(batch_counts, reverse=True)

    def test_inputs_do_not_fit_raises(self, matrix):
        with pytest.raises((SpmdError, MemoryBudgetError)) as exc:
            symbolic3d(matrix, matrix, nprocs=4, memory_budget=1000)
        if isinstance(exc.value, SpmdError):
            assert any(
                isinstance(e, MemoryBudgetError)
                for e in exc.value.failures.values()
            )

    def test_max_nnz_fields(self, matrix):
        r = symbolic3d(matrix, matrix, nprocs=4, memory_budget=10**8)
        assert r.max_nnz_a > 0
        assert r.max_nnz_c > 0
        # max per-process unmerged nnz is at least mean
        total_unmerged_lower = symbolic_nnz(matrix, matrix)
        assert r.max_nnz_c * 4 >= total_unmerged_lower / 4

    def test_symbolic_consistent_across_layers(self, matrix):
        """b may differ between grids (layout changes per-process maxima)
        but must stay within a small factor."""
        b1 = symbolic3d(matrix, matrix, nprocs=16, layers=1,
                        memory_budget=2 * 10**6).batches
        b4 = symbolic3d(matrix, matrix, nprocs=16, layers=4,
                        memory_budget=2 * 10**6).batches
        assert max(b1, b4) <= 4 * min(b1, b4)

    def test_batched_run_respects_symbolic_budget(self, matrix):
        budget = 10**6
        r = batched_summa3d(matrix, matrix, nprocs=4, memory_budget=budget)
        assert r.batches >= 1
        assert "symbolic" in r.info
        # the run's per-process high water stays within the per-process share
        assert r.max_local_bytes <= budget / 4 * 1.10  # 10% slack for metadata

    def test_step_times_include_symbolic(self, matrix):
        r = batched_summa3d(matrix, matrix, nprocs=4, memory_budget=10**7)
        assert "Symbolic" in r.step_times.seconds


class TestPlannerBounds:
    def test_exact_between_bounds(self, matrix):
        nnz_a = matrix.nnz
        nnz_c = symbolic_nnz(matrix, matrix)
        flops = symbolic_flops(matrix, matrix)
        budget = 2 * 10**6
        nprocs = 4
        lower = batches_lower_bound(nnz_c, nnz_a, nnz_a, budget)
        upper = batches_upper_bound(flops, nnz_a, nnz_a, budget)
        assert lower <= upper
        exact = symbolic3d(matrix, matrix, nprocs=nprocs,
                           memory_budget=budget).batches
        # Alg. 3 uses per-process maxima, so the exact count can exceed the
        # perfectly-balanced lower bound but respects the upper bound with
        # an imbalance allowance
        imbalance = 2.0
        assert exact >= lower / imbalance
        assert exact <= upper * imbalance

    def test_lower_le_upper_always(self, matrix):
        nnz_a = matrix.nnz
        nnz_c = symbolic_nnz(matrix, matrix)
        flops = symbolic_flops(matrix, matrix)
        for budget in (10**6, 10**7, 10**8):
            assert batches_lower_bound(nnz_c, nnz_a, nnz_a, budget) <= \
                batches_upper_bound(flops, nnz_a, nnz_a, budget)

    def test_infeasible_budget(self):
        with pytest.raises(PlannerError):
            batches_lower_bound(100, 1000, 1000, memory_budget=10)

    def test_generous_budget_single_batch(self):
        assert batches_lower_bound(10**3, 10, 10, 10**9) == 1
