"""Property-based tests of the distributed layer.

The core invariance: the BatchedSUMMA3D result is independent of grid
shape, layer count, batch count and kernel suite — all of it must equal
the single-process local product.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import SparseMatrix, multiply
from repro.summa import batched_summa3d

GRIDS = [(1, 1), (4, 1), (2, 2), (4, 4), (8, 2), (9, 1), (16, 4)]


@st.composite
def operand_pairs(draw):
    n = draw(st.integers(6, 28))
    k = draw(st.integers(6, 28))
    m = draw(st.integers(6, 28))

    def build(rows, cols):
        nnz = draw(st.integers(0, min(50, rows * cols)))
        rr = draw(st.lists(st.integers(0, rows - 1), min_size=nnz, max_size=nnz))
        cc = draw(st.lists(st.integers(0, cols - 1), min_size=nnz, max_size=nnz))
        vv = draw(
            st.lists(
                st.floats(-5, 5, allow_nan=False, allow_infinity=False),
                min_size=nnz,
                max_size=nnz,
            )
        )
        return SparseMatrix.from_coo(rows, cols, rr, cc, vv)

    return build(n, k), build(k, m)


class TestDistributionInvariance:
    @settings(max_examples=15)
    @given(operand_pairs(), st.sampled_from(GRIDS), st.integers(1, 5))
    def test_result_independent_of_configuration(self, pair, grid, batches):
        a, b = pair
        nprocs, layers = grid
        expected = multiply(a, b)
        r = batched_summa3d(
            a, b, nprocs=nprocs, layers=layers, batches=batches
        )
        assert r.matrix.allclose(expected)

    @settings(max_examples=10)
    @given(operand_pairs(), st.sampled_from(["esc", "unsorted-hash", "sorted-heap"]))
    def test_result_independent_of_suite(self, pair, suite):
        a, b = pair
        expected = multiply(a, b)
        r = batched_summa3d(a, b, nprocs=8, layers=2, batches=2, suite=suite)
        assert r.matrix.allclose(expected)

    @settings(max_examples=10)
    @given(operand_pairs())
    def test_deterministic_repetition(self, pair):
        a, b = pair
        r1 = batched_summa3d(a, b, nprocs=8, layers=2, batches=2)
        r2 = batched_summa3d(a, b, nprocs=8, layers=2, batches=2)
        m1, m2 = r1.matrix.canonical(), r2.matrix.canonical()
        assert np.array_equal(m1.rowidx, m2.rowidx)
        assert np.array_equal(m1.values, m2.values)
