"""Structured tracing: span mechanics, StepTimes reduction, and the
chrome://tracing export/validation round trip."""

import inspect
import json

import pytest

from repro.data.generators import erdos_renyi
from repro.summa import batched_summa3d, summa2d
from repro.summa.trace import (
    ALL_STEPS,
    STEP_A_BCAST,
    STEP_B_BCAST,
    STEP_COMM_PLAN,
    STEP_LOCAL_MULTIPLY,
    STEP_MERGE_LAYER,
    TraceSpan,
    Tracer,
    export_chrome_trace,
    merge_traces,
    to_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
)


class TestTracer:
    def test_span_records_interval(self):
        tr = Tracer(rank=3)
        with tr.span(STEP_LOCAL_MULTIPLY, stage=1, batch=0) as sp:
            sp.nbytes = 128
        assert len(tr.spans) == 1
        sp = tr.spans[0]
        assert (sp.rank, sp.op, sp.stage, sp.batch) == (
            3, STEP_LOCAL_MULTIPLY, 1, 0
        )
        assert sp.nbytes == 128
        assert sp.t1 >= sp.t0
        assert sp.duration == sp.t1 - sp.t0

    def test_span_recorded_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span(STEP_A_BCAST):
                raise RuntimeError("boom")
        assert len(tr.spans) == 1
        assert tr.spans[0].t1 >= tr.spans[0].t0

    def test_untimed_spans_excluded_from_step_times(self):
        tr = Tracer()
        with tr.span(STEP_A_BCAST):
            pass
        with tr.span("ColSplit", timed=False):
            pass
        times = tr.step_times()
        assert STEP_A_BCAST in times.as_dict()
        assert "ColSplit" not in times.as_dict()
        # ...but untimed spans stay on the raw stream
        assert [sp.op for sp in tr.spans] == [STEP_A_BCAST, "ColSplit"]

    def test_step_times_accumulates_per_label(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span(STEP_B_BCAST):
                pass
        times = tr.step_times()
        assert times.get(STEP_B_BCAST) == pytest.approx(
            sum(sp.duration for sp in tr.spans)
        )

    def test_total_bytes(self):
        tr = Tracer()
        with tr.span(STEP_A_BCAST) as sp:
            sp.nbytes = 100
        with tr.span(STEP_B_BCAST) as sp:
            sp.nbytes = 40
        assert tr.total_bytes() == 140
        assert tr.total_bytes(STEP_A_BCAST) == 100

    def test_merge_traces_orders_by_time(self):
        a, b = Tracer(rank=0), Tracer(rank=1)
        with b.span("late"):
            pass
        with a.span("later"):
            pass
        merged = merge_traces([a, None, b])
        assert [sp.op for sp in merged] == ["late", "later"]


class TestChromeExport:
    def _spans(self):
        tr = Tracer(rank=2)
        with tr.span(STEP_A_BCAST, stage=0, batch=1) as sp:
            sp.nbytes = 64
        with tr.span("Meter", timed=False):
            pass
        return tr.spans

    def test_event_shape(self):
        data = to_chrome_trace(self._spans())
        validate_chrome_trace(data)
        ev = data["traceEvents"][0]
        assert ev["name"] == STEP_A_BCAST
        assert ev["ph"] == "X"
        assert ev["tid"] == 2
        assert ev["cat"] == "step"
        assert ev["args"] == {"stage": 0, "batch": 1, "bytes": 64}
        assert data["traceEvents"][1]["cat"] == "bookkeeping"

    def test_timestamps_relative_and_nonnegative(self):
        data = to_chrome_trace(self._spans())
        ts = [ev["ts"] for ev in data["traceEvents"]]
        assert min(ts) == 0.0
        assert all(t >= 0 for t in ts)

    def test_export_and_validate_file(self, tmp_path):
        path = str(tmp_path / "trace.json")
        export_chrome_trace(self._spans(), path)
        assert validate_chrome_trace_file(path) == 2
        with open(path) as fh:
            assert json.load(fh)["displayTimeUnit"] == "ms"

    def test_empty_trace_is_valid(self):
        validate_chrome_trace(to_chrome_trace([]))

    @pytest.mark.parametrize("bad", [
        [],                                               # not an object
        {"foo": 1},                                       # no traceEvents
        {"traceEvents": [{"ph": "X", "ts": 0.0}]},        # missing fields
        {"traceEvents": [{"name": "n", "ph": "Z", "ts": 0.0,
                          "pid": 0, "tid": 0}]},          # unknown phase
        {"traceEvents": [{"name": "n", "ph": "X", "ts": -1.0,
                          "pid": 0, "tid": 0, "dur": 1.0}]},  # negative ts
        {"traceEvents": [{"name": "n", "ph": "X", "ts": 0.0,
                          "pid": 0, "tid": 0}]},          # X without dur
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)


@pytest.fixture(scope="module")
def traced_result():
    a = erdos_renyi(36, avg_degree=4.0, seed=31)
    b = erdos_renyi(36, avg_degree=4.0, seed=32)
    return batched_summa3d(a, b, nprocs=16, layers=4, batches=2)


class TestEndToEndTrace:
    def test_no_inline_perf_counter_in_core(self):
        """Acceptance criterion: the SPMD body carries no ad-hoc timing —
        all timing flows through executor-driven trace spans."""
        import repro.summa.core as core

        assert "perf_counter" not in inspect.getsource(core)

    def test_result_carries_per_rank_tracers(self, traced_result):
        assert len(traced_result.trace) == 16
        ranks = {tr.rank for tr in traced_result.trace}
        assert ranks == set(range(16))
        for tr in traced_result.trace:
            assert tr.spans

    def test_step_times_match_tracer_reduction(self, traced_result):
        from repro.utils.timing import StepTimes

        per_rank = [tr.step_times() for tr in traced_result.trace]
        crit = StepTimes.critical_path(per_rank)
        for step in traced_result.step_times.as_dict():
            assert traced_result.step_times.get(step) == pytest.approx(
                crit.get(step)
            )

    def test_step_key_set_layers4(self, traced_result):
        steps = set(traced_result.step_times.as_dict())
        assert {
            STEP_A_BCAST, STEP_B_BCAST, STEP_LOCAL_MULTIPLY,
            STEP_MERGE_LAYER, "AllToAll-Fiber", "Merge-Fiber",
        } <= steps
        assert steps <= set(ALL_STEPS) | {STEP_COMM_PLAN}

    def test_step_key_set_layers1(self):
        a = erdos_renyi(30, avg_degree=3.0, seed=33)
        b = erdos_renyi(30, avg_degree=3.0, seed=34)
        r = summa2d(a, b, nprocs=4)
        steps = set(r.step_times.as_dict())
        assert {STEP_A_BCAST, STEP_B_BCAST, STEP_LOCAL_MULTIPLY} <= steps
        assert "AllToAll-Fiber" not in steps
        assert "Merge-Fiber" not in steps

    def test_export_trace_validates(self, traced_result, tmp_path):
        path = str(tmp_path / "run.json")
        traced_result.export_trace(path)
        count = validate_chrome_trace_file(path)
        # every rank contributes at least its per-stage op spans
        assert count > 16
        with open(path) as fh:
            tids = {ev["tid"] for ev in json.load(fh)["traceEvents"]}
        assert tids == set(range(16))

    def test_trace_bytes_match_tracker_scale(self, traced_result):
        """Broadcast spans record the received payload sizes."""
        total = sum(
            tr.total_bytes(STEP_A_BCAST) + tr.total_bytes(STEP_B_BCAST)
            for tr in traced_result.trace
        )
        assert total > 0

    def test_spans_are_trace_spans(self, traced_result):
        assert all(
            isinstance(sp, TraceSpan)
            for tr in traced_result.trace for sp in tr.spans
        )
