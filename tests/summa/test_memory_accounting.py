"""Integration tests for the repro.mem ledger wired through the drivers:
uniform ``info["memory"]`` blocks, budget enforcement with graceful
degradation, overlap accounting, and the Table III model loop."""

import pytest

from repro.mem import CATEGORIES
from repro.sparse import multiply, random_sparse
from repro.summa import batched_summa3d, summa2d, summa3d


@pytest.fixture(scope="module")
def operands():
    a = random_sparse(96, 96, nnz=900, seed=7)
    return a, multiply(a, a)


def _assert_uniform_block(mem):
    for key in ("high_water_total", "per_rank_high_water", "categories",
                "batch_peaks", "budget_per_rank", "enforce", "warnings"):
        assert key in mem
    assert mem["high_water_total"] > 0
    assert set(mem["categories"]) <= set(CATEGORIES)
    for entry in mem["categories"].values():
        assert entry["high_water"] > 0


class TestUniformReport:
    def test_all_three_drivers_report_memory(self, operands):
        a, ref = operands
        for result in (
            summa2d(a, a, nprocs=4),
            summa3d(a, a, nprocs=8, layers=2),
            batched_summa3d(a, a, nprocs=4, batches=2),
        ):
            _assert_uniform_block(result.memory)
            assert result.matrix.allclose(ref)
            # satellite (a): max_local_bytes is an alias of the block total
            assert result.max_local_bytes == result.memory["high_water_total"]

    def test_batch_peaks_cover_every_batch(self, operands):
        a, _ = operands
        r = batched_summa3d(a, a, nprocs=4, batches=4)
        assert sorted(r.memory["batch_peaks"]) == [0, 1, 2, 3]
        assert all(p > 0 for p in r.memory["batch_peaks"].values())

    def test_input_tiles_always_resident(self, operands):
        a, _ = operands
        mem = batched_summa3d(a, a, nprocs=4, batches=2).memory
        assert mem["categories"]["a_piece"]["high_water"] > 0
        assert mem["categories"]["b_piece"]["high_water"] > 0

    def test_both_backends_account_recv(self, operands):
        a, _ = operands
        for backend in ("dense", "sparse"):
            mem = batched_summa3d(
                a, a, nprocs=4, batches=2, comm_backend=backend
            ).memory
            assert mem["categories"]["recv_buffer"]["high_water"] > 0

    def test_checkpoint_category_charged(self, operands, tmp_path):
        a, _ = operands
        mem = batched_summa3d(
            a, a, nprocs=4, batches=2, checkpoint_dir=tmp_path / "ck"
        ).memory
        assert mem["categories"]["checkpoint"]["high_water"] > 0


class TestBudgetUnits:
    def test_both_budgets_rejected(self, operands):
        a, _ = operands
        with pytest.raises(ValueError, match="not both"):
            batched_summa3d(
                a, a, nprocs=4,
                memory_budget=10**6, memory_budget_per_rank=10**5,
            )

    def test_enforce_needs_budget(self, operands):
        a, _ = operands
        with pytest.raises(ValueError, match="needs a budget"):
            batched_summa3d(a, a, nprocs=4, batches=1, enforce="strict")

    def test_unknown_enforce_rejected(self, operands):
        a, _ = operands
        with pytest.raises(ValueError, match="enforce"):
            batched_summa3d(a, a, nprocs=4, batches=1, enforce="loud")

    def test_per_rank_budget_reaches_symbolic(self, operands):
        a, _ = operands
        agg = batched_summa3d(a, a, nprocs=4, memory_budget=4 * 10**5)
        per = batched_summa3d(a, a, nprocs=4, memory_budget_per_rank=10**5)
        assert agg.batches == per.batches  # same aggregate M either way


class TestEnforcement:
    def test_strict_rebatches_to_double_bit_identical(self, operands):
        """A budget between the b=1 and b=2 peaks must degrade 1 -> 2 and
        still produce the exact product (the acceptance scenario)."""
        a, ref = operands
        direct2 = batched_summa3d(a, a, nprocs=4, batches=2)
        peak1 = batched_summa3d(a, a, nprocs=4, batches=1).max_local_bytes
        peak2 = direct2.max_local_bytes
        assert peak2 < peak1  # batching must actually help here
        budget = (peak1 + peak2) // 2
        r = batched_summa3d(
            a, a, nprocs=4, batches=1,
            memory_budget_per_rank=budget, enforce="strict",
        )
        assert r.batches == 2
        assert r.info["resilience"]["rebatched"] == [{"from": 1, "to": 2}]
        assert r.matrix.allclose(ref)
        # deterministic degradation: bit-identical to a direct b=2 run
        assert (r.matrix.values == direct2.matrix.values).all()
        assert (r.matrix.rowidx == direct2.matrix.rowidx).all()
        assert r.max_local_bytes <= budget

    def test_warn_completes_and_records(self, operands):
        a, ref = operands
        peak1 = batched_summa3d(a, a, nprocs=4, batches=1).max_local_bytes
        r = batched_summa3d(
            a, a, nprocs=4, batches=1,
            memory_budget_per_rank=peak1 - 1, enforce="warn",
        )
        assert r.batches == 1  # warn never re-batches
        assert r.matrix.allclose(ref)
        assert len(r.memory["warnings"]) >= 1
        assert r.memory["warnings"][0]["budget_per_rank"] == peak1 - 1

    def test_off_ignores_budget(self, operands):
        a, ref = operands
        r = batched_summa3d(
            a, a, nprocs=4, batches=1, memory_budget_per_rank=1024,
        )
        assert r.batches == 1
        assert r.matrix.allclose(ref)
        assert r.memory["warnings"] == []


class TestOverlapAccounting:
    def test_depth1_doubles_inflight_recv(self, operands):
        """Depth-1 overlap holds both the current and the prefetched
        stage's operands, so its recv high-water must be strictly
        higher than sequential execution's."""
        a, _ = operands
        off = summa2d(a, a, nprocs=4, overlap="off")
        d1 = summa2d(a, a, nprocs=4, overlap="depth1")
        assert (
            d1.memory["categories"]["recv_buffer"]["high_water"]
            > off.memory["categories"]["recv_buffer"]["high_water"]
        )
        assert d1.matrix.allclose(off.matrix)


class TestModelLoop:
    def test_model_error_within_2x(self, operands):
        """Acceptance: the Table III prediction lands within 2x of the
        measured high-water on a budgeted (symbolic-stats) run."""
        a, _ = operands
        r = batched_summa3d(
            a, a, nprocs=4, memory_budget=4 * 10**5, keep_output=False,
        )
        mem = r.memory
        assert "model" in mem
        assert mem["model"]["high_water_total"] > 0
        assert 0.5 <= mem["model_error"] <= 2.0

    def test_model_covers_all_paper_categories(self, operands):
        a, _ = operands
        model = batched_summa3d(
            a, a, nprocs=4, memory_budget=4 * 10**5
        ).memory["model"]
        assert set(model["categories"]) == set(CATEGORIES)

    def test_symbolic_result_carries_prediction(self, operands):
        from repro.summa import symbolic3d

        a, _ = operands
        sym = symbolic3d(a, a, nprocs=4, memory_budget_per_rank=10**5)
        pred = sym.info["predicted_memory"]
        assert pred["high_water_total"] > 0
        assert pred["params"]["batches"] == sym.batches

    def test_planner_attaches_prediction(self, operands):
        from repro.summa.planner import auto_config

        a, _ = operands
        choice = auto_config(a, a, 4, memory_budget=4 * 10**5)
        assert choice.predicted_memory is not None
        assert choice.predicted_memory["high_water_total"] > 0
        estimate = auto_config(
            a, a, 4, memory_budget=4 * 10**5, use_symbolic=False
        )
        assert estimate.predicted_memory["basis"] == "estimate"


class TestRowsForwarding:
    def test_rows_driver_forwards_memory_knobs(self, operands):
        a, ref = operands
        from repro.summa import batched_summa3d_rows

        peak1 = batched_summa3d_rows(a, a, nprocs=4, batches=1).max_local_bytes
        r = batched_summa3d_rows(
            a, a, nprocs=4, batches=1,
            memory_budget_per_rank=peak1 - 1, enforce="warn",
        )
        assert len(r.memory["warnings"]) >= 1
        assert r.matrix.allclose(ref)
