"""Unit tests for the SPMD core's internal building blocks."""

import pytest

from repro.grid import ProcGrid3D
from repro.grid.distribution import extract_a_tile, extract_b_tile
from repro.simmpi import run_spmd
from repro.sparse import multiply, random_sparse
from repro.mem import MemoryLedger
from repro.summa.core import (
    ALL_STEPS,
    TileSource,
    _operand_tile,
    spmd_batched_summa3d,
)


class TestStepInventory:
    def test_all_seven_paper_steps(self):
        assert ALL_STEPS == (
            "Symbolic", "A-Broadcast", "B-Broadcast", "Local-Multiply",
            "Merge-Layer", "AllToAll-Fiber", "Merge-Fiber",
        )


class TestTileSource:
    def test_wraps_getter(self):
        a = random_sparse(20, 20, nnz=60, seed=411)
        grid = ProcGrid3D(4)
        src = TileSource(20, 20, lambda r: extract_a_tile(a, grid, r))
        assert src.nrows == 20
        for rank in range(4):
            assert src.tile(rank).allclose(extract_a_tile(a, grid, rank))

    def test_operand_tile_dispatch(self):
        a = random_sparse(16, 16, nnz=50, seed=412)
        grid = ProcGrid3D(4)
        # global matrix -> layout-specific extraction
        assert _operand_tile(a, grid, 1, "A").allclose(
            extract_a_tile(a, grid, 1)
        )
        assert _operand_tile(a, grid, 2, "B").allclose(
            extract_b_tile(a, grid, 2)
        )
        # TileSource -> passthrough regardless of role
        marker = random_sparse(4, 4, nnz=3, seed=413)
        src = TileSource(16, 16, lambda r: marker)
        assert _operand_tile(src, grid, 0, "A") is marker
        assert _operand_tile(src, grid, 3, "B") is marker


class TestMemoryAccounting:
    """The core meters through :class:`repro.mem.MemoryLedger` (which
    replaced the old boundary-snapshot ``_MemoryMeter``)."""

    def test_high_water_tracks_maximum(self):
        ledger = MemoryLedger()
        base = ledger.acquire("a_piece", 100)
        assert ledger.high_water_total == 100
        transient = ledger.acquire("recv_buffer", 50)
        assert ledger.high_water_total == 150
        ledger.release(transient)
        ledger.acquire("output_batch", 30)
        # lower current totals never regress the mark
        assert ledger.high_water_total == 150
        assert ledger.current_total == 130
        ledger.release(base)

    def test_held_accumulates(self):
        ledger = MemoryLedger()
        for _ in range(3):
            ledger.acquire("output_batch", 40)
        assert ledger.high_water_total == 120


class TestSpmdDirectInvocation:
    def test_core_runs_with_tile_sources(self):
        """The core called directly (no driver) with pre-distributed tiles
        — the contract DistContext builds on."""
        a = random_sparse(24, 24, nnz=120, seed=414)
        grid = ProcGrid3D(4)
        a_src = TileSource(24, 24, lambda r: extract_a_tile(a, grid, r))
        b_src = TileSource(24, 24, lambda r: extract_b_tile(a, grid, r))

        per_rank = run_spmd(
            4, spmd_batched_summa3d, a_src, b_src, grid,
            batches=2, memory_budget=None,
        )
        from repro.grid.distribution import gather_tiles

        pieces = [
            (r0, c0, tile)
            for r in per_rank
            for (_b, r0, c0, tile) in r["pieces"]
        ]
        assert gather_tiles(24, 24, pieces).allclose(multiply(a, a))

    def test_per_rank_payload_fields(self):
        a = random_sparse(16, 16, nnz=60, seed=415)
        grid = ProcGrid3D(4, 1)
        per_rank = run_spmd(
            4, spmd_batched_summa3d, a, a, grid,
            batches=1, memory_budget=None,
        )
        for r in per_rank:
            assert set(r) == {
                "pieces", "times", "batches", "max_local_bytes",
                "fiber_piece_nnz", "info", "trace",
            }
            assert r["batches"] == 1
            assert r["max_local_bytes"] > 0
            assert r["fiber_piece_nnz"] == []  # no fiber steps at l=1

    def test_invalid_merge_policy_rejected(self):
        a = random_sparse(8, 8, nnz=10, seed=416)
        grid = ProcGrid3D(1)
        from repro.errors import SpmdError

        with pytest.raises((ValueError, SpmdError)):
            run_spmd(
                1, spmd_batched_summa3d, a, a, grid,
                batches=1, memory_budget=None, merge_policy="bogus",
            )
