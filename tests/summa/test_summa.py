"""Correctness of SUMMA2D / SUMMA3D / BatchedSUMMA3D across grid shapes.

Every configuration must produce exactly the local-kernel product: the
distribution, staging, batching and merging must be invisible in the
result.
"""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.simmpi import CommTracker
from repro.sparse import multiply, random_sparse
from repro.sparse.semiring import MIN_PLUS
from repro.summa import batched_summa3d, summa2d, summa3d
from tests.conftest import to_scipy


@pytest.fixture(scope="module")
def operands():
    a = random_sparse(54, 47, nnz=700, seed=31)
    b = random_sparse(47, 61, nnz=650, seed=32)
    return a, b, (to_scipy(a) @ to_scipy(b)).toarray()


class TestSumma2D:
    @pytest.mark.parametrize("nprocs", [1, 4, 9, 16])
    def test_matches_scipy(self, operands, nprocs):
        a, b, expected = operands
        r = summa2d(a, b, nprocs=nprocs)
        assert np.allclose(r.matrix.to_dense(), expected)
        assert r.batches == 1

    def test_non_square_grid_rejected(self, operands):
        a, b, _ = operands
        with pytest.raises(Exception):
            summa2d(a, b, nprocs=6)

    def test_shape_mismatch(self):
        a = random_sparse(5, 6, nnz=5, seed=1)
        with pytest.raises(ShapeError):
            summa2d(a, a, nprocs=1)

    def test_output_sorted(self, operands):
        a, b, _ = operands
        r = summa2d(a, b, nprocs=4)
        assert r.matrix.sorted_within_columns
        r.matrix._validate()


class TestSumma3D:
    @pytest.mark.parametrize("nprocs,layers", [(2, 2), (4, 4), (8, 2), (16, 4), (18, 2)])
    def test_matches_scipy(self, operands, nprocs, layers):
        a, b, expected = operands
        r = summa3d(a, b, nprocs=nprocs, layers=layers)
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_fiber_steps_present_only_with_layers(self, operands):
        a, b, _ = operands
        r1 = summa2d(a, b, nprocs=4)
        r3 = summa3d(a, b, nprocs=8, layers=2)
        assert "AllToAll-Fiber" not in r1.step_times.seconds
        assert "AllToAll-Fiber" in r3.step_times.seconds
        assert "Merge-Fiber" in r3.step_times.seconds


class TestBatched:
    @pytest.mark.parametrize("batches", [1, 2, 3, 5, 8])
    def test_batching_invariance_2d(self, operands, batches):
        a, b, expected = operands
        r = batched_summa3d(a, b, nprocs=4, layers=1, batches=batches)
        assert np.allclose(r.matrix.to_dense(), expected)
        assert r.batches == batches

    @pytest.mark.parametrize("batches", [1, 2, 4, 7])
    def test_batching_invariance_3d(self, operands, batches):
        a, b, expected = operands
        r = batched_summa3d(a, b, nprocs=8, layers=2, batches=batches)
        assert np.allclose(r.matrix.to_dense(), expected)

    @pytest.mark.parametrize("suite", ["esc", "unsorted-hash", "sorted-heap", "hybrid", "spa"])
    def test_kernel_suite_invariance(self, operands, suite):
        a, b, expected = operands
        r = batched_summa3d(a, b, nprocs=8, layers=2, batches=2, suite=suite)
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_batches_exceeding_columns(self, operands):
        a, b, expected = operands
        r = batched_summa3d(a, b, nprocs=4, layers=1, batches=b.ncols + 10)
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_invalid_batches(self, operands):
        a, b, _ = operands
        with pytest.raises(ShapeError):
            batched_summa3d(a, b, nprocs=4, batches=0)

    def test_discard_output(self, operands):
        a, b, _ = operands
        r = batched_summa3d(a, b, nprocs=4, batches=2, keep_output=False)
        assert r.matrix is None

    def test_on_batch_sees_every_batch(self, operands):
        a, b, expected = operands
        seen = {}

        def on_batch(batch, spans, mat):
            seen[batch] = mat

        batched_summa3d(
            a, b, nprocs=4, batches=3, keep_output=False, on_batch=on_batch
        )
        assert sorted(seen) == [0, 1, 2]
        total = sum(m.to_dense() for m in seen.values())
        assert np.allclose(total, expected)

    def test_postprocess_applied(self, operands):
        a, b, _ = operands

        def zero_all(batch, c0, c1, block):
            from repro.sparse import SparseMatrix

            return SparseMatrix.empty(block.nrows, block.ncols)

        r = batched_summa3d(a, b, nprocs=4, batches=2, postprocess=zero_all)
        assert r.matrix.nnz == 0

    def test_semiring_through_distribution(self, operands):
        a, b, _ = operands
        r = batched_summa3d(a, b, nprocs=8, layers=2, batches=2, semiring=MIN_PLUS)
        local = multiply(a, b, semiring=MIN_PLUS)
        assert r.matrix.allclose(local)

    def test_empty_inputs(self):
        from repro.sparse import SparseMatrix

        a = SparseMatrix.empty(20, 20)
        r = batched_summa3d(a, a, nprocs=4, layers=1, batches=2)
        assert r.matrix.nnz == 0

    def test_single_process(self, operands):
        a, b, expected = operands
        r = batched_summa3d(a, b, nprocs=1, layers=1, batches=3)
        assert np.allclose(r.matrix.to_dense(), expected)

    def test_tall_grid_all_layers(self, operands):
        a, b, expected = operands
        r = batched_summa3d(a, b, nprocs=4, layers=4, batches=2)
        assert np.allclose(r.matrix.to_dense(), expected)


class TestResultMetadata:
    def test_step_times_present(self, operands):
        a, b, _ = operands
        r = batched_summa3d(a, b, nprocs=8, layers=2, batches=2)
        for step in ("A-Broadcast", "B-Broadcast", "Local-Multiply",
                     "Merge-Layer", "AllToAll-Fiber", "Merge-Fiber"):
            assert step in r.step_times.seconds, step
        assert len(r.per_rank_times) == 8

    def test_tracker_records_steps(self, operands):
        a, b, _ = operands
        tracker = CommTracker()
        batched_summa3d(a, b, nprocs=8, layers=2, batches=2, tracker=tracker)
        steps = {e.step for e in tracker.events}
        assert {"A-Broadcast", "B-Broadcast", "AllToAll-Fiber"} <= steps

    def test_memory_high_water_positive(self, operands):
        a, b, _ = operands
        r = batched_summa3d(a, b, nprocs=4, batches=1)
        assert r.max_local_bytes > 0

    def test_more_batches_lower_high_water(self, operands):
        """The whole point of batching: transient memory shrinks with b."""
        a, b, _ = operands
        r1 = batched_summa3d(a, b, nprocs=4, batches=1)
        r8 = batched_summa3d(a, b, nprocs=4, batches=8)
        assert r8.max_local_bytes < r1.max_local_bytes

    def test_info_fields(self, operands):
        a, b, _ = operands
        r = batched_summa3d(a, b, nprocs=4, batches=1, suite="esc")
        assert r.info["suite"] == "esc"
        assert r.info["nprocs"] == 4

    def test_repr(self, operands):
        a, b, _ = operands
        r = batched_summa3d(a, b, nprocs=4, batches=2)
        assert "batches=2" in repr(r)


class TestAAT:
    def test_aat_with_rectangular_input(self):
        from repro.sparse import transpose

        a = random_sparse(30, 80, nnz=300, seed=41)
        at = transpose(a)
        expected = (to_scipy(a) @ to_scipy(at)).toarray()
        r = batched_summa3d(a, at, nprocs=8, layers=2, batches=3)
        assert np.allclose(r.matrix.to_dense(), expected)
