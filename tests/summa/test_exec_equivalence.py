"""Executor equivalence matrix and execution-plan IR invariants.

The contract of :mod:`repro.summa.exec`: the :class:`PipelinedExecutor`
(``overlap="depth1"``) runs the *same* compiled program as the
:class:`SequentialExecutor` with stage ``s+1``'s operand delivery issued
early, so every cell of the (backend x merge policy x layers) matrix must
be **bit-identical** between the two — same indptr/rowidx/values — and
must move exactly the same number of bytes per :class:`CommTracker`.
"""

import numpy as np
import pytest

from repro.errors import ExecPlanError
from repro.grid import ProcGrid3D
from repro.data.generators import erdos_renyi, rmat
from repro.simmpi import CommTracker
from repro.sparse import SparseMatrix
from repro.summa import batched_summa3d
from repro.summa.exec import (
    OVERLAP_MODES,
    ExecutionPlan,
    PipelinedExecutor,
    SequentialExecutor,
    StageOp,
    compile_batched_summa3d,
    get_executor,
)
from tests.conftest import to_scipy


def _ones(m: SparseMatrix) -> SparseMatrix:
    """Integer-valued copy: bit-identity then holds regardless of the
    floating-point accumulation order."""
    c = m.canonical()
    coo = to_scipy(c).tocoo()
    return SparseMatrix.from_coo(
        c.nrows, c.ncols, coo.row, coo.col, np.ones(coo.nnz)
    )


@pytest.fixture(scope="module")
def er_pair():
    a = _ones(erdos_renyi(40, avg_degree=4.0, seed=11))
    b = _ones(erdos_renyi(40, avg_degree=4.0, seed=12))
    return a, b, (to_scipy(a) @ to_scipy(b)).toarray()


@pytest.fixture(scope="module")
def rmat_pair():
    a = rmat(5, edge_factor=4, seed=21)  # values="ones" by default
    b = rmat(5, edge_factor=4, seed=22)
    return a, b, (to_scipy(a) @ to_scipy(b)).toarray()


def _identical(x: SparseMatrix, y: SparseMatrix) -> bool:
    x, y = x.canonical(), y.canonical()
    return (
        x.shape == y.shape
        and np.array_equal(x.indptr, y.indptr)
        and np.array_equal(x.rowidx, y.rowidx)
        and np.array_equal(x.values, y.values)
    )


def _run_cell(a, b, expected, *, layers, backend, policy):
    nprocs = 16
    results, trackers = {}, {}
    for overlap in OVERLAP_MODES:
        trackers[overlap] = CommTracker()
        results[overlap] = batched_summa3d(
            a, b, nprocs=nprocs, layers=layers, batches=2,
            comm_backend=backend, merge_policy=policy,
            overlap=overlap, tracker=trackers[overlap],
        )
        assert results[overlap].info["overlap"] == overlap
    off, depth1 = results["off"], results["depth1"]
    assert np.array_equal(off.matrix.to_dense(), expected)
    assert _identical(off.matrix, depth1.matrix)
    # same bytes on the wire: ibcast/isend prefetching re-routes the
    # delivery but never changes what is delivered
    assert (
        trackers["off"].total_bytes() == trackers["depth1"].total_bytes()
    )


@pytest.mark.parametrize("layers", [1, 4])
@pytest.mark.parametrize("policy", ["deferred", "incremental"])
@pytest.mark.parametrize("backend", ["dense", "sparse"])
class TestEquivalenceMatrix:
    def test_er(self, er_pair, backend, policy, layers):
        a, b, expected = er_pair
        _run_cell(a, b, expected, layers=layers, backend=backend,
                  policy=policy)

    def test_rmat(self, rmat_pair, backend, policy, layers):
        a, b, expected = rmat_pair
        _run_cell(a, b, expected, layers=layers, backend=backend,
                  policy=policy)


class TestPlanIR:
    def test_validate_passes(self):
        grid = ProcGrid3D(16, layers=4)
        plan = compile_batched_summa3d(grid, batches=3)
        plan.validate()  # compile already validates; must stay clean
        assert len(plan.ops_of_kind("multiply")) == 3 * grid.stages

    def test_bcasts_depend_only_on_comm_plan(self):
        """The load-bearing edge: broadcasts must NOT depend on the
        previous stage's multiply, or pipelining would be illegal."""
        grid = ProcGrid3D(16, layers=1)
        plan = compile_batched_summa3d(grid, batches=2)
        by_id = {op.opid: op for op in plan.ops}
        for kind in ("bcast-a", "bcast-b"):
            for op in plan.ops_of_kind(kind):
                assert len(op.deps) == 1
                assert by_id[op.deps[0]].kind == "comm-plan"
                assert by_id[op.deps[0]].batch == op.batch

    def test_multiply_depends_on_both_bcasts(self):
        grid = ProcGrid3D(4, layers=1)
        plan = compile_batched_summa3d(grid, batches=1)
        by_id = {op.opid: op for op in plan.ops}
        for op in plan.ops_of_kind("multiply"):
            kinds = sorted(by_id[d].kind for d in op.deps)
            assert kinds == ["bcast-a", "bcast-b"]

    def test_prefetch_issuers_skip_stage_zero(self):
        grid = ProcGrid3D(16, layers=1)  # 4 stages
        plan = compile_batched_summa3d(grid, batches=2)
        assert set(plan.prefetch_issuers) == {
            (batch, s) for batch in range(2) for s in range(1, grid.stages)
        }

    def test_merge_policy_changes_op_kinds(self):
        grid = ProcGrid3D(16, layers=1)
        deferred = compile_batched_summa3d(grid, batches=1)
        incremental = compile_batched_summa3d(
            grid, batches=1, merge_policy="incremental"
        )
        assert not deferred.ops_of_kind("merge-stage")
        # stage 0 has nothing to merge into; every later stage does
        assert len(incremental.ops_of_kind("merge-stage")) == grid.stages - 1

    def test_validate_rejects_forward_dep(self):
        plan = ExecutionPlan(ops=[
            StageOp(opid=0, kind="x", op="X", batch=None, stage=None,
                    deps=(1,), run=lambda state, span: None),
            StageOp(opid=1, kind="y", op="Y", batch=None, stage=None,
                    deps=(), run=lambda state, span: None),
        ])
        with pytest.raises(ExecPlanError):
            plan.validate()

    def test_validate_rejects_bad_opid(self):
        plan = ExecutionPlan(ops=[
            StageOp(opid=5, kind="x", op="X", batch=None, stage=None,
                    deps=(), run=lambda state, span: None),
        ])
        with pytest.raises(ExecPlanError):
            plan.validate()


class TestExecutorRegistry:
    def test_resolution(self):
        seq = get_executor("off")
        pipe = get_executor("depth1")
        assert isinstance(seq, SequentialExecutor)
        assert not isinstance(seq, PipelinedExecutor)
        assert isinstance(pipe, PipelinedExecutor)
        assert (seq.overlap, pipe.overlap) == ("off", "depth1")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            get_executor("depth2")

    def test_driver_rejects_unknown_mode(self, er_pair):
        a, b, _ = er_pair
        with pytest.raises(ValueError):
            batched_summa3d(a, b, nprocs=4, overlap="speculative")
