"""Unit tests for the LocalKernel registry and the local kernel math."""

import numpy as np
import pytest

from repro.errors import DistributionError, ShapeError
from repro.kernels import (
    LocalKernel,
    MaskedSpgemmKernel,
    SddmmKernel,
    SpgemmKernel,
    SpmmKernel,
    available_kernels,
    get_kernel,
    resolve_tile,
)
from repro.kernels.sddmm import sddmm_local
from repro.kernels.spmm import spmm_local
from repro.sparse import random_sparse
from repro.sparse.semiring import get_semiring


class TestRegistry:
    def test_available_kernels(self):
        assert set(available_kernels()) == {
            "spgemm", "spmm", "sddmm", "masked_spgemm",
        }

    @pytest.mark.parametrize("name,cls", [
        ("spgemm", SpgemmKernel),
        ("spmm", SpmmKernel),
        ("sddmm", SddmmKernel),
        ("masked_spgemm", MaskedSpgemmKernel),
    ])
    def test_get_by_name_class_instance(self, name, cls):
        assert isinstance(get_kernel(name), cls)
        assert isinstance(get_kernel(cls), cls)
        inst = cls()
        assert get_kernel(inst) is inst

    def test_unknown_name_raises(self):
        with pytest.raises(DistributionError):
            get_kernel("conv2d")

    def test_every_kernel_is_a_local_kernel(self):
        for name in available_kernels():
            kern = get_kernel(name)
            assert isinstance(kern, LocalKernel)
            assert kern.name == name
            assert kern.a_kind in ("sparse", "dense")
            assert kern.b_kind in ("sparse", "dense")
            assert kern.output_kind in ("sparse", "dense")

    def test_operand_kind_table(self):
        assert (get_kernel("spgemm").a_kind, get_kernel("spgemm").b_kind,
                get_kernel("spgemm").output_kind) == \
            ("sparse", "sparse", "sparse")
        assert (get_kernel("spmm").a_kind, get_kernel("spmm").b_kind,
                get_kernel("spmm").output_kind) == \
            ("sparse", "dense", "dense")
        assert (get_kernel("sddmm").a_kind, get_kernel("sddmm").b_kind,
                get_kernel("sddmm").output_kind) == \
            ("dense", "dense", "sparse")

    def test_dense_accumulator_kernels_are_incremental_only(self):
        assert get_kernel("spmm").incremental_only
        assert get_kernel("sddmm").incremental_only
        assert not get_kernel("spgemm").incremental_only


class TestValidate:
    def test_spgemm_shape_mismatch(self):
        a = random_sparse(6, 5, nnz=8, seed=1)
        b = random_sparse(4, 7, nnz=8, seed=2)
        with pytest.raises(ShapeError):
            get_kernel("spgemm").validate(a, b, None)

    def test_resolve_tile_enforces_operand_kind(self):
        from repro.grid.grid3d import ProcGrid3D

        grid = ProcGrid3D(4, 1)
        sparse_b = random_sparse(8, 8, nnz=10, seed=2)
        with pytest.raises(ShapeError):
            resolve_tile(sparse_b, grid, 0, "B", "dense")
        with pytest.raises(ShapeError):
            resolve_tile(np.zeros((8, 8)), grid, 0, "B", "sparse")

    def test_sddmm_requires_sample(self):
        a = np.zeros((6, 5))
        b = np.zeros((5, 7))
        with pytest.raises(ValueError):
            get_kernel("sddmm").validate(a, b, None)

    def test_sddmm_sample_shape_checked(self):
        a = np.zeros((6, 5))
        b = np.zeros((5, 7))
        s = random_sparse(6, 6, nnz=4, seed=3)
        with pytest.raises(ShapeError):
            get_kernel("sddmm").validate(a, b, s)

    def test_spgemm_rejects_stray_aux(self):
        a = random_sparse(6, 5, nnz=8, seed=1)
        b = random_sparse(5, 7, nnz=8, seed=2)
        with pytest.raises(ValueError):
            get_kernel("spgemm").validate(a, b, b)


class TestLocalMath:
    def test_spmm_local_matches_dense(self):
        a = random_sparse(12, 9, nnz=40, seed=4)
        x = np.random.default_rng(0).standard_normal((9, 5))
        out = spmm_local(a, x, get_semiring("plus_times"))
        assert np.allclose(out, a.to_dense() @ x)

    def test_spmm_local_min_plus(self):
        a = random_sparse(8, 8, nnz=20, seed=5)
        x = np.random.default_rng(1).standard_normal((8, 3))
        sr = get_semiring("min_plus")
        out = spmm_local(a, x, sr)
        ref = np.full((8, 3), sr.add_identity)
        cols = a.col_indices()
        for i, k, v in zip(a.rowidx, cols, a.values):
            ref[i] = np.minimum(ref[i], v + x[k])
        assert np.allclose(out, ref)

    def test_sddmm_local_matches_dense(self):
        rng = np.random.default_rng(2)
        u = rng.standard_normal((10, 4))
        vt = rng.standard_normal((4, 8))
        s = random_sparse(10, 8, nnz=25, seed=6)
        out = sddmm_local(s, u, vt, get_semiring("plus_times"))
        ref = (u @ vt) * s.to_dense()
        assert np.allclose(out.to_dense(), ref)
        # the output keeps S's pattern exactly
        assert np.array_equal(out.rowidx, s.rowidx)
        assert np.array_equal(out.indptr, s.indptr)

    def test_sddmm_local_zero_rank(self):
        s = random_sparse(5, 5, nnz=6, seed=7)
        u = np.zeros((5, 0))
        vt = np.zeros((0, 5))
        out = sddmm_local(s, u, vt, get_semiring("plus_times"))
        assert np.allclose(out.values, 0.0)


class TestMemoryModel:
    def test_spmm_model_has_dense_panel_terms(self):
        a = random_sparse(64, 64, nnz=600, seed=8)
        x = np.zeros((64, 8))
        model = get_kernel("spmm").predict_memory(
            a, x, None, nprocs=4, layers=1, batches=2,
            keep_output=True, overlap="off",
        )
        cats = model["categories"]
        assert cats["b_piece"] > 0
        assert cats["output_batch"] > 0
        assert model["high_water_total"] >= sum(
            (cats["a_piece"], cats["b_piece"])
        )

    def test_spgemm_defers_to_symbolic_model(self):
        a = random_sparse(16, 16, nnz=40, seed=9)
        assert get_kernel("spgemm").predict_memory(
            a, a, None, nprocs=4, layers=1, batches=1,
            keep_output=True, overlap="off",
        ) is None

    def test_batches_for_budget_monotone(self):
        a = random_sparse(64, 64, nnz=600, seed=8)
        x = np.zeros((64, 16))
        kern = get_kernel("spmm")
        loose = kern.batches_for_budget(
            a, x, None, nprocs=4, layers=1, memory_budget=10**9
        )
        tight = kern.batches_for_budget(
            a, x, None, nprocs=4, layers=1, memory_budget=120_000
        )
        assert loose == 1
        assert tight >= loose
