"""Kernel-equivalence matrix (ISSUE 7 acceptance criteria).

Every kernel must match its dense-numpy reference through the full
batched 3D pipeline, and must be *bit-identical* across execution
configurations — comm backend, overlap mode, execution world — because
the schedule only reorders floating-point-identical reductions when the
merge rule is deterministic.
"""

import numpy as np
import pytest

from repro.sparse import SparseMatrix, multiply, random_sparse
from repro.summa import batched_summa3d


# ---------------------------------------------------------------------- #
# operands (module-scoped: the matrix is big enough to exercise 2x2x2
# grids with batching, small enough that the full config sweep is fast)
# ---------------------------------------------------------------------- #

M, K, N, F = 40, 30, 35, 6


@pytest.fixture(scope="module")
def sparse_pair():
    a = random_sparse(M, K, nnz=160, seed=11)
    b = random_sparse(K, N, nnz=140, seed=12)
    return a, b


@pytest.fixture(scope="module")
def dense_pair():
    rng = np.random.default_rng(7)
    return (
        np.ascontiguousarray(rng.standard_normal((M, K))),
        np.ascontiguousarray(rng.standard_normal((K, N))),
    )


@pytest.fixture(scope="module")
def dense_panel():
    return np.ascontiguousarray(
        np.random.default_rng(8).standard_normal((K, F))
    )


@pytest.fixture(scope="module")
def sample_pattern():
    return random_sparse(M, N, nnz=120, seed=13)


def _operands(kernel, sparse_pair, dense_pair, dense_panel, sample_pattern):
    """(a, b, extra-kwargs) for one kernel's standard test problem."""
    a, b = sparse_pair
    if kernel == "spgemm":
        return a, b, {}
    if kernel == "spmm":
        return a, dense_panel, {}
    if kernel == "sddmm":
        da, db = dense_pair
        return da, db, {"sample": sample_pattern}
    mask = random_sparse(M, N, nnz=200, seed=14)
    return a, b, {"mask": mask}


def _coo_dict(m: SparseMatrix) -> dict:
    return {
        (int(i), int(j)): float(v)
        for i, j, v in zip(m.rowidx, m.col_indices(), m.values)
    }


def _filter_by_pattern(m: SparseMatrix, mask: SparseMatrix, complement=False):
    """Entries of ``m`` kept (or dropped) by ``mask``'s pattern."""
    keep = set(zip(mask.rowidx.tolist(), mask.col_indices().tolist()))
    entries = {
        ij: v
        for ij, v in _coo_dict(m).items()
        if (ij in keep) != complement
    }
    return entries


def assert_identical(x, y):
    """Bit-identity across runs: same pattern, same value bits."""
    if isinstance(x, SparseMatrix):
        assert isinstance(y, SparseMatrix)
        assert (x.nrows, x.ncols) == (y.nrows, y.ncols)
        assert np.array_equal(x.indptr, y.indptr)
        assert np.array_equal(x.rowidx, y.rowidx)
        assert np.array_equal(x.values, y.values)
    else:
        assert np.array_equal(np.asarray(x), np.asarray(y))


KERNELS = ["spgemm", "spmm", "sddmm", "masked_spgemm"]


# ---------------------------------------------------------------------- #
# numerical references
# ---------------------------------------------------------------------- #

class TestMatchesReference:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("nprocs,layers,batches", [
        (1, 1, 1), (4, 1, 2), (8, 2, 3),
    ])
    def test_kernel_matches_numpy(
        self, kernel, nprocs, layers, batches,
        sparse_pair, dense_pair, dense_panel, sample_pattern,
    ):
        a, b, extra = _operands(
            kernel, sparse_pair, dense_pair, dense_panel, sample_pattern
        )
        r = batched_summa3d(
            a, b, nprocs=nprocs, layers=layers, batches=batches,
            kernel=kernel, **extra,
        )
        to_dense = (
            lambda x: x.to_dense() if isinstance(x, SparseMatrix)
            else np.asarray(x)
        )
        product = to_dense(a) @ to_dense(b)
        if kernel == "sddmm":
            expected = product * sample_pattern.to_dense()
        elif kernel == "masked_spgemm":
            expected = product * (extra["mask"].to_dense() != 0)
        else:
            expected = product
        out = r.matrix.to_dense() if kernel != "spmm" else r.matrix
        assert np.allclose(out, expected)
        assert r.info["kernel"] == kernel

    def test_masked_matches_spgemm_filtered(self, sparse_pair):
        a, b = sparse_pair
        mask = random_sparse(M, N, nnz=200, seed=14)
        full = batched_summa3d(a, b, nprocs=4, batches=2).matrix
        masked = batched_summa3d(
            a, b, nprocs=4, batches=2, kernel="masked_spgemm", mask=mask
        ).matrix
        assert _coo_dict(masked) == _filter_by_pattern(full, mask)

    def test_masked_complement_matches_filtered(self, sparse_pair):
        a, b = sparse_pair
        mask = random_sparse(M, N, nnz=200, seed=14)
        full = batched_summa3d(a, b, nprocs=4, batches=2).matrix
        kept = batched_summa3d(
            a, b, nprocs=4, batches=2, kernel="masked_spgemm",
            mask=mask, mask_complement=True,
        ).matrix
        assert _coo_dict(kept) == _filter_by_pattern(
            full, mask, complement=True
        )

    def test_masked_default_mask_is_product_pattern(self, sparse_pair):
        """Without an explicit mask, the symbolic product pattern is the
        mask — the result must equal plain SpGEMM exactly."""
        a, b = sparse_pair
        full = batched_summa3d(a, b, nprocs=4, batches=2).matrix
        masked = batched_summa3d(
            a, b, nprocs=4, batches=2, kernel="masked_spgemm"
        ).matrix
        assert_identical(masked.sort_indices(), full.sort_indices())


class TestTropicalUnderMask:
    """min-plus (shortest-path relaxation) restricted to a mask — the
    semiring and the mask must compose."""

    def test_min_plus_masked_matches_filtered_local(self):
        a = random_sparse(24, 24, nnz=110, seed=15)
        b = random_sparse(24, 24, nnz=100, seed=16)
        mask = random_sparse(24, 24, nnz=150, seed=17)
        local = multiply(a, b, semiring="min_plus")
        r = batched_summa3d(
            a, b, nprocs=4, layers=1, batches=2,
            kernel="masked_spgemm", mask=mask, semiring="min_plus",
        )
        assert _coo_dict(r.matrix) == pytest.approx(
            _filter_by_pattern(local, mask)
        )

    def test_min_plus_spmm_matches_local_kernel(self):
        from repro.kernels import spmm_local
        from repro.sparse.semiring import MIN_PLUS

        a = random_sparse(24, 24, nnz=110, seed=15)
        x = np.ascontiguousarray(
            np.random.default_rng(9).standard_normal((24, 4))
        )
        r = batched_summa3d(
            a, x, nprocs=4, batches=2, kernel="spmm", semiring="min_plus"
        )
        assert np.allclose(r.matrix, spmm_local(a, x, MIN_PLUS))


# ---------------------------------------------------------------------- #
# bit-identity across execution configurations
# ---------------------------------------------------------------------- #

class TestBitIdentity:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("comm_backend", ["dense", "sparse"])
    @pytest.mark.parametrize("overlap", ["off", "depth1"])
    def test_backend_overlap_matrix(
        self, kernel, comm_backend, overlap,
        sparse_pair, dense_pair, dense_panel, sample_pattern,
    ):
        a, b, extra = _operands(
            kernel, sparse_pair, dense_pair, dense_panel, sample_pattern
        )
        base = batched_summa3d(
            a, b, nprocs=4, layers=1, batches=2, kernel=kernel, **extra
        )
        run = batched_summa3d(
            a, b, nprocs=4, layers=1, batches=2, kernel=kernel,
            comm_backend=comm_backend, overlap=overlap, **extra,
        )
        assert_identical(run.matrix, base.matrix)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_process_world_matches_threads(
        self, kernel, sparse_pair, dense_pair, dense_panel, sample_pattern,
    ):
        a, b, extra = _operands(
            kernel, sparse_pair, dense_pair, dense_panel, sample_pattern
        )
        kw = dict(nprocs=4, layers=1, batches=2, kernel=kernel, **extra)
        base = batched_summa3d(a, b, **kw)
        run = batched_summa3d(
            a, b, world="processes", transport="shm", **kw
        )
        assert_identical(run.matrix, base.matrix)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_layered_grid_matches_flat(
        self, kernel, sparse_pair, dense_pair, dense_panel, sample_pattern,
    ):
        a, b, extra = _operands(
            kernel, sparse_pair, dense_pair, dense_panel, sample_pattern
        )
        flat = batched_summa3d(
            a, b, nprocs=4, layers=1, batches=2, kernel=kernel, **extra
        )
        layered = batched_summa3d(
            a, b, nprocs=8, layers=2, batches=2, kernel=kernel,
            overlap="depth1", **extra,
        )
        out_f, out_l = flat.matrix, layered.matrix
        if isinstance(out_f, SparseMatrix):
            assert out_l.sort_indices().allclose(out_f.sort_indices())
        else:
            assert np.allclose(out_l, out_f)
