"""Backend equivalence: dense collectives vs. sparse point-to-point.

The hard guarantee of :mod:`repro.comm` is that the sparse backend drops
only operand entries that participate in zero partial products, so both
backends produce **bit-identical** output — same indptr, same rowidx,
same values, same float accumulation order — on every grid shape.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    CommBackend,
    DenseCollective,
    SparseP2P,
    available_backends,
    get_backend,
)
from repro.data.generators import erdos_renyi, rmat
from repro.errors import CommError
from repro.simmpi import CommTracker
from repro.sparse import SparseMatrix, random_sparse
from repro.summa import batched_summa3d, choose_backend, summa2d, summa3d

GRIDS = [(1, 1), (4, 1), (2, 2), (4, 4), (8, 2), (9, 1), (16, 4)]


def _identical(x: SparseMatrix, y: SparseMatrix) -> bool:
    x, y = x.canonical(), y.canonical()
    return (
        x.shape == y.shape
        and np.array_equal(x.indptr, y.indptr)
        and np.array_equal(x.rowidx, y.rowidx)
        and np.array_equal(x.values, y.values)
    )


def _run_both(a, b, **kw):
    dense = batched_summa3d(a, b, comm_backend="dense", **kw)
    sparse = batched_summa3d(a, b, comm_backend="sparse", **kw)
    assert dense.info["comm_backend"] == "dense"
    assert sparse.info["comm_backend"] == "sparse"
    return dense, sparse


class TestRegistry:
    def test_available(self):
        assert available_backends() == ("dense", "sparse")

    def test_resolution(self):
        assert isinstance(get_backend("dense"), DenseCollective)
        assert isinstance(get_backend("sparse"), SparseP2P)
        assert isinstance(get_backend(SparseP2P), SparseP2P)
        inst = DenseCollective()
        assert get_backend(inst) is inst
        assert isinstance(get_backend("dense"), CommBackend)

    def test_auto_rejected_at_backend_layer(self):
        with pytest.raises(CommError):
            get_backend("auto")

    def test_unknown_name(self):
        with pytest.raises(CommError):
            get_backend("quantum")


class TestBitIdentical:
    @pytest.mark.parametrize("nprocs,layers", GRIDS)
    def test_er_graph_all_grids(self, nprocs, layers):
        a = erdos_renyi(36, avg_degree=3.0, seed=7)
        b = erdos_renyi(36, avg_degree=3.0, seed=8)
        dense, sparse = _run_both(a, b, nprocs=nprocs, layers=layers)
        assert _identical(dense.matrix, sparse.matrix)

    @pytest.mark.parametrize("nprocs,layers", [(4, 1), (16, 4), (8, 2)])
    def test_rmat_batched(self, nprocs, layers):
        a = rmat(5, edge_factor=4, seed=3)
        b = rmat(5, edge_factor=4, seed=4)
        dense, sparse = _run_both(
            a, b, nprocs=nprocs, layers=layers, batches=3
        )
        assert _identical(dense.matrix, sparse.matrix)

    def test_rectangular(self):
        a = random_sparse(30, 44, nnz=80, seed=5)
        b = random_sparse(44, 22, nnz=80, seed=6)
        dense, sparse = _run_both(a, b, nprocs=4, layers=1, batches=2)
        assert _identical(dense.matrix, sparse.matrix)

    def test_empty_operand(self):
        a = SparseMatrix.from_coo(20, 20, [], [], [])
        b = random_sparse(20, 20, nnz=40, seed=9)
        dense, sparse = _run_both(a, b, nprocs=4, layers=1)
        assert _identical(dense.matrix, sparse.matrix)
        assert dense.matrix.nnz == 0

    def test_hypersparse(self):
        a = SparseMatrix.from_coo(64, 64, [3, 60], [10, 50], [1.0, 2.0])
        b = SparseMatrix.from_coo(64, 64, [10, 11], [0, 1], [4.0, 5.0])
        dense, sparse = _run_both(a, b, nprocs=16, layers=4)
        assert _identical(dense.matrix, sparse.matrix)

    def test_summa2d_and_3d_wrappers(self):
        a = erdos_renyi(32, avg_degree=4.0, seed=1)
        b = erdos_renyi(32, avg_degree=4.0, seed=2)
        d2 = summa2d(a, b, nprocs=9, comm_backend="dense")
        s2 = summa2d(a, b, nprocs=9, comm_backend="sparse")
        assert _identical(d2.matrix, s2.matrix)
        d3 = summa3d(a, b, nprocs=8, layers=2, comm_backend="dense")
        s3 = summa3d(a, b, nprocs=8, layers=2, comm_backend="sparse")
        assert _identical(d3.matrix, s3.matrix)

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.sampled_from(GRIDS),
        st.integers(1, 3),
    )
    def test_randomized_property(self, seed, grid, batches):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(8, 40))
        k = int(rng.integers(8, 40))
        m = int(rng.integers(8, 40))
        a = random_sparse(n, k, nnz=int(rng.integers(0, 60)), seed=seed)
        b = random_sparse(k, m, nnz=int(rng.integers(0, 60)), seed=seed + 1)
        nprocs, layers = grid
        dense, sparse = _run_both(
            a, b, nprocs=nprocs, layers=layers, batches=batches
        )
        assert _identical(dense.matrix, sparse.matrix)


class TestMetering:
    def test_backend_tags_and_savings(self):
        # hypersparse at p = 16: the sparse backend must move fewer
        # broadcast bytes, and every tagged event carries its backend.
        a = random_sparse(64, 64, nnz=100, seed=11)
        b = random_sparse(64, 64, nnz=100, seed=12)
        td, ts = CommTracker(), CommTracker()
        batched_summa3d(a, b, nprocs=16, comm_backend="dense", tracker=td)
        batched_summa3d(a, b, nprocs=16, comm_backend="sparse", tracker=ts)
        assert set(td.by_backend()) == {"dense"}
        assert set(ts.by_backend()) == {"sparse"}
        d_bcast = td.total_bytes("A-Broadcast") + td.total_bytes("B-Broadcast")
        s_bcast = ts.total_bytes("A-Broadcast") + ts.total_bytes("B-Broadcast")
        assert s_bcast < d_bcast

    def test_auto_resolves_to_concrete_backend(self):
        a = random_sparse(32, 32, nnz=60, seed=13)
        r = batched_summa3d(a, a, nprocs=4, comm_backend="auto")
        assert r.info["comm_backend"] in ("dense", "sparse")
        assert _identical(
            r.matrix,
            batched_summa3d(a, a, nprocs=4, comm_backend="dense").matrix,
        )


class TestChooseBackend:
    def test_returns_valid_name(self):
        a = random_sparse(64, 64, nnz=120, seed=20)
        assert choose_backend(a, a, nprocs=16) in ("dense", "sparse")

    def test_single_rank_prefers_dense(self):
        # p = 1: nothing moves, the tie must go to dense
        a = random_sparse(16, 16, nnz=30, seed=21)
        assert choose_backend(a, a, nprocs=1) == "dense"
