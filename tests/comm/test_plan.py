"""Unit tests for the sparse-backend planning primitives.

Covers the bit-packed mask wire format, the plan derivation (stage ``s``
swaps roles: B row masks select A columns and vice versa), and the
structure-preserving tile filters on empty and hypersparse tiles.
"""

import numpy as np
import pytest

from repro.comm import CommPlan, pack_mask, unpack_mask
from repro.sparse import SparseMatrix, random_sparse
from repro.sparse.ops import (
    mask_columns,
    mask_rows,
    nonempty_columns,
    nonempty_rows,
)


class TestMaskPacking:
    @pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 64, 100])
    def test_roundtrip(self, n):
        rng = np.random.default_rng(n)
        mask = rng.random(n) < 0.3
        out = unpack_mask(pack_mask(mask))
        assert out.dtype == bool
        assert np.array_equal(out, mask)

    def test_packed_size(self):
        n, packed = pack_mask(np.ones(17, dtype=bool))
        assert n == 17
        assert packed.nbytes == 3  # ceil(17 / 8)

    def test_accepts_integer_mask(self):
        out = unpack_mask(pack_mask(np.array([1, 0, 1, 1])))
        assert np.array_equal(out, [True, False, True, True])


class TestOccupancy:
    def test_nonempty_columns_and_rows(self):
        m = SparseMatrix.from_coo(4, 5, [0, 2, 2], [1, 1, 3], [1.0, 2.0, 3.0])
        assert np.array_equal(
            nonempty_columns(m), [False, True, False, True, False]
        )
        assert np.array_equal(nonempty_rows(m), [True, False, True, False])

    def test_empty_tile(self):
        m = SparseMatrix.from_coo(3, 4, [], [], [])
        assert not nonempty_columns(m).any()
        assert not nonempty_rows(m).any()


class TestTileFilters:
    def test_mask_columns_preserves_shape(self):
        m = random_sparse(10, 8, nnz=20, seed=0)
        keep = np.arange(8) % 2 == 0
        out = mask_columns(m, keep)
        assert out.shape == m.shape
        assert not np.diff(out.indptr)[~keep].any()
        dense = m.to_dense()
        dense[:, ~keep] = 0
        assert np.array_equal(out.to_dense(), dense)

    def test_mask_rows_preserves_shape(self):
        m = random_sparse(10, 8, nnz=20, seed=1)
        keep = np.arange(10) % 3 == 0
        out = mask_rows(m, keep)
        assert out.shape == m.shape
        dense = m.to_dense()
        dense[~keep, :] = 0
        assert np.array_equal(out.to_dense(), dense)

    @pytest.mark.parametrize("filt", [mask_columns, mask_rows])
    def test_empty_tile(self, filt):
        m = SparseMatrix.from_coo(6, 6, [], [], [])
        out = filt(m, np.zeros(6, dtype=bool))
        assert out.shape == (6, 6) and out.nnz == 0

    def test_keep_all_is_identity(self):
        m = random_sparse(9, 9, nnz=30, seed=2)
        for out in (
            mask_columns(m, np.ones(9, dtype=bool)),
            mask_rows(m, np.ones(9, dtype=bool)),
        ):
            assert np.array_equal(out.indptr, m.indptr)
            assert np.array_equal(out.rowidx, m.rowidx)
            assert np.array_equal(out.values, m.values)

    def test_hypersparse_single_entry(self):
        m = SparseMatrix.from_coo(100, 100, [42], [7], [3.5])
        kept = mask_columns(m, np.arange(100) == 7)
        assert kept.nnz == 1
        dropped = mask_rows(m, np.arange(100) != 42)
        assert dropped.nnz == 0
        assert dropped.shape == (100, 100)


class TestCommPlan:
    def test_derive_swaps_roles(self):
        a_cols = [np.array([True, False]), np.array([False, True])]
        b_rows = [np.array([True, True]), np.array([False, False])]
        plan = CommPlan.derive(
            a_col_masks=a_cols, b_row_masks=b_rows, row_rank=0, col_rank=1
        )
        # stage s: the B mask selects A columns, the A mask selects B rows
        assert np.array_equal(plan.a_needed[0], b_rows[0])
        assert np.array_equal(plan.a_needed[1], b_rows[1])
        assert np.array_equal(plan.b_needed[0], a_cols[0])
        assert np.array_equal(plan.b_needed[1], a_cols[1])
        assert plan.a_requests == [None, None]

    def test_fill_requests(self):
        plan = CommPlan.derive(
            a_col_masks=[np.ones(3, bool)],
            b_row_masks=[np.ones(3, bool)],
            row_rank=0,
            col_rank=0,
        )
        req = [np.array([True, False, True])]
        plan.fill_requests(req, [None])
        assert np.array_equal(plan.a_requests[0], req[0])

    def test_needed_fractions(self):
        plan = CommPlan.derive(
            a_col_masks=[np.array([True, False, False, False])],
            b_row_masks=[np.array([True, True, False, False])],
            row_rank=0,
            col_rank=0,
        )
        assert plan.needed_fraction_a() == pytest.approx(0.5)
        assert plan.needed_fraction_b() == pytest.approx(0.25)

    def test_empty_masks(self):
        plan = CommPlan.derive(
            a_col_masks=[np.zeros(0, bool)],
            b_row_masks=[np.zeros(0, bool)],
            row_rank=0,
            col_rank=0,
        )
        assert plan.needed_fraction_a() == 0.0
        assert plan.needed_fraction_b() == 0.0
