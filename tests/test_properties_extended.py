"""Extended property-based tests across the newer modules.

Covers the algebraic identities and round-trips of the elementwise ops,
the DCSC format, Kronecker products, masking, and the distributed-context
layer — properties that must hold for *every* input, not just the unit
fixtures.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import DistContext
from repro.sparse import SparseMatrix, multiply
from repro.sparse.dcsc import from_dcsc, to_dcsc
from repro.sparse.ewise import apply, ewise_add, ewise_mult, select
from repro.sparse.kron import kron
from repro.sparse.ops import permute
from repro.sparse.spgemm.masked import spgemm_masked
from repro.sparse.spgemm.outer import spgemm_outer


@st.composite
def matrices(draw, max_dim=16, max_nnz=50):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    return draw(matrices_fixed(nrows, ncols, max_nnz))


@st.composite
def matrices_fixed(draw, nrows, ncols, max_nnz=50):
    nnz = draw(st.integers(0, min(max_nnz, nrows * ncols)))
    rows = draw(st.lists(st.integers(0, nrows - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, ncols - 1), min_size=nnz, max_size=nnz))
    vals = draw(
        st.lists(
            st.floats(-9, 9, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return SparseMatrix.from_coo(nrows, ncols, rows, cols, vals)


@st.composite
def same_shape_pairs(draw):
    nrows = draw(st.integers(1, 14))
    ncols = draw(st.integers(1, 14))
    return (
        draw(matrices_fixed(nrows, ncols)),
        draw(matrices_fixed(nrows, ncols)),
    )


class TestEwiseAlgebra:
    @given(same_shape_pairs())
    def test_add_commutative(self, pair):
        a, b = pair
        assert ewise_add(a, b).allclose(ewise_add(b, a))

    @given(same_shape_pairs())
    def test_mult_commutative(self, pair):
        a, b = pair
        assert ewise_mult(a, b).allclose(ewise_mult(b, a))

    @given(matrices())
    def test_add_with_zero_identity(self, a):
        zero = SparseMatrix.empty(a.nrows, a.ncols)
        assert ewise_add(a, zero).allclose(a.canonical())

    @given(matrices())
    def test_select_true_keeps_everything(self, a):
        kept = select(a, lambda r, c, v: np.ones(r.shape[0], dtype=bool))
        assert kept.allclose(a)

    @given(matrices())
    def test_apply_identity(self, a):
        assert apply(a, lambda v: v).allclose(a.canonical())


class TestDcscProperties:
    @given(matrices(max_dim=30, max_nnz=60))
    def test_roundtrip(self, a):
        assert from_dcsc(to_dcsc(a)).allclose(a)

    @given(matrices(max_dim=30, max_nnz=60))
    def test_nzc_bounds(self, a):
        d = to_dcsc(a)
        assert d.nzc <= min(d.nnz, a.ncols)


class TestKronProperties:
    @settings(max_examples=20)
    @given(matrices(max_dim=6, max_nnz=12), matrices(max_dim=6, max_nnz=12))
    def test_matches_numpy(self, a, b):
        assert np.allclose(
            kron(a, b).to_dense(), np.kron(a.to_dense(), b.to_dense())
        )

    @settings(max_examples=20)
    @given(matrices(max_dim=5, max_nnz=10), matrices(max_dim=5, max_nnz=10))
    def test_nnz_multiplicative_without_cancellation(self, a, b):
        # kron never merges coordinates, so nnz is exactly the product
        assert kron(a, b).nnz == a.nnz * b.nnz


class TestMaskedProperties:
    @settings(max_examples=20)
    @given(st.data())
    def test_mask_equals_hadamard_after(self, data):
        n = data.draw(st.integers(2, 10))
        k = data.draw(st.integers(2, 10))
        m_dim = data.draw(st.integers(2, 10))
        a = data.draw(matrices_fixed(n, k, 30))
        b = data.draw(matrices_fixed(k, m_dim, 30))
        mask = data.draw(matrices_fixed(n, m_dim, 30))
        from repro.sparse.ops import hadamard

        pattern = SparseMatrix(
            mask.nrows, mask.ncols, mask.indptr, mask.rowidx,
            np.ones(mask.nnz), validate=False,
        )
        early = spgemm_masked(a, b, mask)
        late = hadamard(multiply(a, b), pattern)
        assert early.allclose(late)

    @settings(max_examples=15)
    @given(st.data())
    def test_mask_and_complement_partition_product(self, data):
        n = data.draw(st.integers(2, 8))
        a = data.draw(matrices_fixed(n, n, 20))
        mask = data.draw(matrices_fixed(n, n, 20))
        inside = spgemm_masked(a, a, mask)
        outside = spgemm_masked(a, a, mask, complement=True)
        total = ewise_add(inside, outside)
        assert total.allclose(multiply(a, a).canonical())


class TestOuterProperties:
    @settings(max_examples=20)
    @given(st.data())
    def test_outer_equals_gustavson(self, data):
        n = data.draw(st.integers(1, 10))
        k = data.draw(st.integers(1, 10))
        m_dim = data.draw(st.integers(1, 10))
        a = data.draw(matrices_fixed(n, k, 25))
        b = data.draw(matrices_fixed(k, m_dim, 25))
        bs = data.draw(st.integers(1, 8))
        assert spgemm_outer(a, b, block_size=bs).allclose(multiply(a, b))


class TestPermuteProperties:
    @settings(max_examples=20)
    @given(matrices(max_dim=12), st.randoms(use_true_random=False))
    def test_permute_roundtrip(self, a, rnd):
        perm = np.array(rnd.sample(range(a.nrows), a.nrows), dtype=np.int64)
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(a.nrows)
        back = permute(permute(a, row_perm=perm), row_perm=inverse)
        assert back.allclose(a)


class TestDistContextProperties:
    @settings(max_examples=10)
    @given(matrices(max_dim=20, max_nnz=60))
    def test_distribute_gather_roundtrip(self, a):
        ctx = DistContext(nprocs=4)
        for layout in ("A", "B"):
            assert ctx.distribute(a, layout).to_global().allclose(a)

    @settings(max_examples=8)
    @given(matrices(max_dim=16, max_nnz=40))
    def test_redistribute_preserves_matrix(self, a):
        ctx = DistContext(nprocs=4)
        h = ctx.distribute(a, "A")
        assert ctx.redistribute(h, "B").to_global().allclose(a)
