"""Tests for the reusable experiment sweeps and PageRank/spmv additions."""

import numpy as np
import pytest

from repro.model import CORI_HASWELL, CORI_KNL
from repro.model.sweeps import (
    batch_requirement_sweep,
    layer_batch_sweep,
    machine_comparison,
    strong_scaling_sweep,
)

STATS = dict(nnz_a=10**9, nnz_b=10**9, nnz_c=10**10, flops=10**12)


class TestLayerBatchSweep:
    def test_grid_covered(self):
        rows = layer_batch_sweep(nprocs=1024, **STATS)
        assert len(rows) == 9
        assert {(r["layers"], r["batches"]) for r in rows} == {
            (l, b) for l in (1, 4, 16) for b in (1, 16, 64)
        }

    def test_totals_positive_and_consistent(self):
        for row in layer_batch_sweep(nprocs=1024, **STATS):
            parts = sum(
                row[s] for s in (
                    "Symbolic", "A-Broadcast", "B-Broadcast", "Local-Multiply",
                    "Merge-Layer", "AllToAll-Fiber", "Merge-Fiber",
                )
            )
            assert row["total"] == pytest.approx(parts)


class TestStrongScalingSweep:
    def test_series_fields(self):
        rows = strong_scaling_sweep(
            core_counts=[4096, 16384, 65536], **STATS
        )
        assert [r["cores"] for r in rows] == [4096, 16384, 65536]
        assert all(r["batches"] >= 1 for r in rows)
        totals = [r["total"] for r in rows]
        assert totals == sorted(totals, reverse=True)


class TestBatchRequirementSweep:
    def test_monotone_in_budget(self):
        budgets = [10**12, 10**13, 10**14]
        rows = batch_requirement_sweep(
            nprocs=1024, layers=16, memory_budgets=budgets, **STATS
        )
        feasible = [r for r in rows if r["feasible"]]
        bs = [r["batches"] for r in feasible]
        assert bs == sorted(bs, reverse=True)

    def test_infeasible_flagged(self):
        rows = batch_requirement_sweep(
            nprocs=4, layers=1, memory_budgets=[10**3], **STATS
        )
        assert rows[0]["feasible"] is False
        assert rows[0]["batches"] is None


class TestMachineComparison:
    def test_haswell_beats_knl(self):
        rows = machine_comparison(
            [CORI_KNL, CORI_HASWELL],
            nprocs=1024, layers=16, batches=4, **STATS,
        )
        by_name = {r["machine"]: r for r in rows}
        assert by_name["cori-haswell"]["total"] < by_name["cori-knl"]["total"]
        assert by_name["cori-haswell"]["comp"] < by_name["cori-knl"]["comp"]


class TestSpmv:
    def test_matches_dense(self):
        from repro.sparse import random_sparse
        from repro.sparse.ops import spmv

        a = random_sparse(20, 15, nnz=80, seed=341)
        x = np.arange(15, dtype=float)
        assert np.allclose(spmv(a, x), a.to_dense() @ x)

    def test_shape_error(self):
        from repro.errors import ShapeError
        from repro.sparse import eye
        from repro.sparse.ops import spmv

        with pytest.raises(ShapeError):
            spmv(eye(3), np.ones(4))

    def test_empty_matrix(self):
        from repro.sparse import SparseMatrix
        from repro.sparse.ops import spmv

        assert np.allclose(spmv(SparseMatrix.empty(4, 3), np.ones(3)), 0.0)


class TestPagerank:
    def test_matches_networkx(self):
        import networkx as nx

        from repro.apps import pagerank
        from repro.data import rmat

        g = rmat(7, edge_factor=5, seed=331, symmetric=False)
        pr = pagerank(g)
        gx = nx.DiGraph()
        gx.add_nodes_from(range(g.nrows))
        rows, cols, _ = g.to_coo()
        gx.add_edges_from((int(c), int(r)) for r, c in zip(rows, cols))
        oracle = nx.pagerank(gx, alpha=0.85, tol=1e-12, max_iter=500)
        assert np.allclose(pr, [oracle[i] for i in range(g.nrows)], atol=1e-6)

    def test_sums_to_one(self):
        from repro.apps import pagerank
        from repro.data import erdos_renyi

        pr = pagerank(erdos_renyi(50, avg_degree=6, seed=342))
        assert pr.sum() == pytest.approx(1.0)
        assert np.all(pr > 0)

    def test_uniform_on_cycle(self):
        from repro.apps import pagerank
        from repro.sparse import from_edges

        # a directed cycle is regular: all scores equal
        n = 20
        ring = from_edges(n, n, [[(i + 1) % n, i] for i in range(n)])
        pr = pagerank(ring)
        assert np.allclose(pr, 1.0 / n, atol=1e-6)

    def test_dangling_nodes_handled(self):
        from repro.apps import pagerank
        from repro.sparse import from_edges

        # 0 -> 1 -> 2, vertex 2 dangling (our convention: entry (dst, src))
        g = from_edges(3, 3, [[1, 0], [2, 1]])
        pr = pagerank(g)
        assert pr.sum() == pytest.approx(1.0)
        assert pr[2] > pr[0]  # sink accumulates rank

    def test_validation(self):
        from repro.apps import pagerank
        from repro.sparse import SparseMatrix, random_sparse

        with pytest.raises(ValueError):
            pagerank(random_sparse(3, 4, nnz=2, seed=0))
        with pytest.raises(ValueError):
            pagerank(SparseMatrix.empty(3, 3), damping=1.5)
        assert pagerank(SparseMatrix.empty(0, 0)).shape == (0,)
