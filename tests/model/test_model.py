"""Tests for the α–β model: machine specs, Table II/III closed forms,
and the predictor's paper-shape behaviours."""

import math

import pytest

from repro.model import (
    CORI_HASWELL,
    CORI_KNL,
    CORI_KNL_HT,
    comm_complexity,
    comp_complexity,
    estimate_batches,
    estimate_dk_nnz,
    parallel_efficiency,
    predict_steps,
    strong_scaling_series,
    total_comm_time,
)

STATS = dict(nnz_a=10**9, nnz_b=10**9, nnz_c=10**10, flops=10**12)
#: comm/complexity functions take no nnz_c (Table II does not use it)
CSTATS = {k: v for k, v in STATS.items() if k != "nnz_c"}


class TestMachineSpec:
    def test_procs_for_cores(self):
        # 16 threads per process, 1 thread per core without HT
        assert CORI_KNL.procs_for_cores(16384) == 1024
        assert CORI_KNL.procs_for_cores(16384, hyperthreads=True) == 4096

    def test_aggregate_memory(self):
        nodes = 16384 // 68
        assert CORI_KNL.aggregate_memory(16384) == nodes * CORI_KNL.mem_per_node

    def test_haswell_faster(self):
        assert CORI_HASWELL.sparse_rate > CORI_KNL.sparse_rate
        assert CORI_HASWELL.beta < CORI_KNL.beta

    def test_rate_scale(self):
        fast = CORI_KNL.with_rate_scale(2.0)
        assert fast.sparse_rate == 2 * CORI_KNL.sparse_rate
        assert fast.alpha == CORI_KNL.alpha


class TestCommComplexity:
    def test_abcast_bandwidth_scales_with_batches(self):
        c1 = comm_complexity(nprocs=1024, layers=4, batches=1, **CSTATS)
        c8 = comm_complexity(nprocs=1024, layers=4, batches=8, **CSTATS)
        assert c8["A-Broadcast"]["bytes"] == pytest.approx(
            8 * c1["A-Broadcast"]["bytes"]
        )

    def test_bbcast_bandwidth_independent_of_batches(self):
        c1 = comm_complexity(nprocs=1024, layers=4, batches=1, **CSTATS)
        c8 = comm_complexity(nprocs=1024, layers=4, batches=8, **CSTATS)
        assert c8["B-Broadcast"]["bytes"] == pytest.approx(
            c1["B-Broadcast"]["bytes"]
        )
        assert c8["B-Broadcast"]["latency_hops"] > c1["B-Broadcast"]["latency_hops"]

    def test_abcast_decreases_with_layers(self):
        # Table II: bandwidth ~ 1/sqrt(pl)
        c1 = comm_complexity(nprocs=1024, layers=1, batches=4, **CSTATS)
        c16 = comm_complexity(nprocs=1024, layers=16, batches=4, **CSTATS)
        assert c16["A-Broadcast"]["bytes"] == pytest.approx(
            c1["A-Broadcast"]["bytes"] / 4
        )

    def test_alltoall_grows_with_layers(self):
        c4 = comm_complexity(nprocs=1024, layers=4, batches=2, **CSTATS)
        c16 = comm_complexity(nprocs=1024, layers=16, batches=2, **CSTATS)
        assert c16["AllToAll-Fiber"]["latency_hops"] > c4["AllToAll-Fiber"]["latency_hops"]

    def test_no_fiber_cost_without_layers(self):
        c = comm_complexity(nprocs=1024, layers=1, batches=4, **CSTATS)
        assert c["AllToAll-Fiber"]["bytes"] == 0

    def test_symbolic_batch_independent(self):
        c1 = comm_complexity(nprocs=1024, layers=4, batches=1, **CSTATS)
        c8 = comm_complexity(nprocs=1024, layers=4, batches=8, **CSTATS)
        assert c1["Symbolic"] == c8["Symbolic"]

    def test_dk_tightens_alltoall(self):
        loose = comm_complexity(nprocs=64, layers=4, batches=1, **CSTATS)
        tight = comm_complexity(
            nprocs=64, layers=4, batches=1, dk_nnz_total=10**10, **CSTATS
        )
        assert tight["AllToAll-Fiber"]["bytes"] < loose["AllToAll-Fiber"]["bytes"]


class TestCompComplexity:
    def test_local_multiply_invariant(self):
        c1 = comp_complexity(nprocs=1024, layers=1, batches=1, flops=10**12)
        c2 = comp_complexity(nprocs=1024, layers=16, batches=8, flops=10**12)
        assert c1["Local-Multiply"] == c2["Local-Multiply"]

    def test_merge_layer_shrinks_with_layers(self):
        c1 = comp_complexity(nprocs=1024, layers=1, batches=1, flops=10**12)
        c16 = comp_complexity(nprocs=1024, layers=16, batches=1, flops=10**12)
        assert c16["Merge-Layer"] < c1["Merge-Layer"]

    def test_merge_fiber_zero_without_layers(self):
        c = comp_complexity(nprocs=1024, layers=1, batches=1, flops=10**12)
        assert c["Merge-Fiber"] == 0


class TestDkEstimate:
    def test_bounds(self):
        for layers in (1, 2, 4, 16, 64):
            dk = estimate_dk_nnz(10**10, 10**12, layers)
            assert 10**10 <= dk <= 10**12

    def test_monotone_in_layers(self):
        dks = [estimate_dk_nnz(10**10, 10**12, l) for l in (1, 2, 4, 8, 16)]
        assert dks == sorted(dks)

    def test_one_layer_is_nnz_c(self):
        assert estimate_dk_nnz(5000, 50000, 1) == 5000

    def test_empty(self):
        assert estimate_dk_nnz(0, 0, 4) == 0


class TestEstimateBatches:
    def test_more_memory_fewer_batches(self):
        kwargs = dict(nprocs=1024, layers=16, **STATS)
        b_small = estimate_batches(memory_budget=10**12, **kwargs)
        b_large = estimate_batches(memory_budget=10**13, **kwargs)
        assert b_small >= b_large

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            estimate_batches(memory_budget=10**3, nprocs=4, layers=1, **STATS)

    def test_generous_is_one(self):
        assert estimate_batches(
            memory_budget=10**18, nprocs=1024, layers=16, **STATS
        ) == 1


class TestPredictor:
    def test_all_steps_present(self):
        t = predict_steps(CORI_KNL, nprocs=1024, layers=16, batches=4, **STATS)
        for step in ("A-Broadcast", "B-Broadcast", "Local-Multiply",
                     "Merge-Layer", "Merge-Fiber", "AllToAll-Fiber", "Symbolic"):
            assert step in t.seconds

    def test_paper_trends_table6(self):
        """Table VI: sign of each step's change w.r.t. l and b."""
        base = predict_steps(CORI_KNL, nprocs=4096, layers=4, batches=4, **STATS)
        more_b = predict_steps(CORI_KNL, nprocs=4096, layers=4, batches=16, **STATS)
        more_l = predict_steps(CORI_KNL, nprocs=4096, layers=16, batches=4, **STATS)
        # b up: A-Bcast up, B-Bcast ~same bandwidth, others ~unchanged
        assert more_b.get("A-Broadcast") > base.get("A-Broadcast")
        assert more_b.get("Local-Multiply") == pytest.approx(base.get("Local-Multiply"))
        # l up: broadcasts down, fiber costs up
        assert more_l.get("A-Broadcast") < base.get("A-Broadcast")
        assert more_l.get("B-Broadcast") < base.get("B-Broadcast")
        assert more_l.get("AllToAll-Fiber") > base.get("AllToAll-Fiber")
        assert more_l.get("Merge-Fiber") > base.get("Merge-Fiber")

    def test_haswell_faster_than_knl(self):
        knl = predict_steps(CORI_KNL, nprocs=1024, layers=16, batches=4, **STATS)
        hsw = predict_steps(CORI_HASWELL, nprocs=1024, layers=16, batches=4, **STATS)
        assert hsw.total() < knl.total()

    def test_strong_scaling_batches_shrink(self):
        series = strong_scaling_series(
            CORI_KNL,
            core_counts=[4096, 16384, 65536],
            layers=16,
            memory_fraction=0.02,
            **STATS,
        )
        bs = [pt.batches for pt in series]
        assert bs == sorted(bs, reverse=True)

    def test_strong_scaling_time_decreases(self):
        series = strong_scaling_series(
            CORI_KNL,
            core_counts=[4096, 16384, 65536],
            layers=16,
            memory_fraction=0.05,
            **STATS,
        )
        totals = [pt.total for pt in series]
        assert totals == sorted(totals, reverse=True)

    def test_parallel_efficiency_first_is_one(self):
        series = strong_scaling_series(
            CORI_KNL,
            core_counts=[4096, 16384],
            layers=16,
            **STATS,
        )
        eff = parallel_efficiency(series)
        assert eff[0] == pytest.approx(1.0)

    def test_hyperthreading_tradeoff(self):
        """Fig. 12 shape: HT speeds computation, slows communication."""
        plain = predict_steps(CORI_KNL, nprocs=16384, layers=16, batches=4, **STATS)
        ht = predict_steps(CORI_KNL_HT, nprocs=65536, layers=16, batches=4, **STATS)
        comp = ["Local-Multiply", "Merge-Layer", "Merge-Fiber"]
        comm = ["A-Broadcast", "B-Broadcast", "AllToAll-Fiber"]
        assert sum(ht.get(s) for s in comp) < sum(plain.get(s) for s in comp)
        assert sum(ht.get(s) for s in comm) > sum(plain.get(s) for s in comm)


class TestLayerRecommendation:
    def test_comm_bound_prefers_more_layers(self):
        from repro.summa import recommend_layers

        # heavily communication-bound instance (huge A, modest flops)
        l = recommend_layers(
            4096,
            nnz_a=10**10,
            nnz_b=10**10,
            flops=10**10,
            batches=32,
        )
        assert l > 1

    def test_valid_candidates_only(self):
        from repro.summa import recommend_layers

        l = recommend_layers(16, nnz_a=100, nnz_b=100, flops=1000)
        assert 16 % l == 0
        assert math.isqrt(16 // l) ** 2 == 16 // l

    def test_total_comm_time_positive(self):
        assert total_comm_time(
            CORI_KNL, nprocs=1024, layers=4, batches=2, **CSTATS
        ) > 0
