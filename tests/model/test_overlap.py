"""Overlap-aware α–β makespan model (`overlapped_makespan` /
`predict_makespan`) and its integration with the planners."""

import pytest

from repro.model import (
    CORI_KNL,
    overlapped_makespan,
    predict_makespan,
    predict_steps,
)
from repro.utils.timing import StepTimes


#: broadcast-bound: large operands, few flops relative to moved bytes
COMM_HEAVY = dict(
    nnz_a=500_000_000, nnz_b=500_000_000,
    nnz_c=50_000_000, flops=60_000_000,
)
#: compute-bound: tiny operands churned hard
COMP_HEAVY = dict(
    nnz_a=1_000_000, nnz_b=1_000_000,
    nnz_c=800_000_000, flops=4_000_000_000,
)


def _times(stats, nprocs=1024, layers=4, batches=1):
    return predict_steps(
        CORI_KNL, nprocs=nprocs, layers=layers, batches=batches, **stats
    )


class TestOverlappedMakespan:
    def test_off_is_total(self):
        times = _times(COMM_HEAVY)
        assert overlapped_makespan(times, stages=16, overlap="off") == (
            times.total()
        )

    def test_single_stage_is_total(self):
        times = _times(COMM_HEAVY)
        assert overlapped_makespan(times, stages=1) == times.total()

    def test_never_exceeds_total(self):
        for stats in (COMM_HEAVY, COMP_HEAVY):
            times = _times(stats)
            assert overlapped_makespan(times, stages=16) <= times.total()

    def test_hand_computed_formula(self):
        times = StepTimes({
            "A-Broadcast": 6.0, "B-Broadcast": 2.0,
            "Local-Multiply": 12.0, "Merge-Layer": 3.0,
        })
        # c = 8/4 = 2, m = 12/4 = 3: fill 2 + 3*max(2,3)=9 + drain 3 = 14
        got = overlapped_makespan(times, stages=4)
        assert got == pytest.approx(3.0 + 14.0)

    def test_comm_bound_saves_compute_time(self):
        """When broadcasts dominate, the multiply hides entirely: the
        saving equals all but one stage's worth of the multiply."""
        times = StepTimes({
            "A-Broadcast": 40.0, "B-Broadcast": 40.0,
            "Local-Multiply": 8.0,
        })
        got = overlapped_makespan(times, stages=8)
        assert got == pytest.approx(times.total() - 8.0 + 1.0)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            overlapped_makespan(StepTimes(), stages=4, overlap="depth2")


class TestPredictMakespan:
    def test_off_equals_step_total(self):
        off = predict_makespan(
            CORI_KNL, nprocs=1024, layers=4, batches=1, overlap="off",
            **COMM_HEAVY,
        )
        assert off == pytest.approx(_times(COMM_HEAVY).total())

    def test_depth1_strictly_faster_when_comm_bound(self):
        kw = dict(nprocs=1024, layers=4, batches=1, **COMM_HEAVY)
        off = predict_makespan(CORI_KNL, overlap="off", **kw)
        depth1 = predict_makespan(CORI_KNL, overlap="depth1", **kw)
        assert depth1 < off

    def test_depth1_never_slower(self):
        for stats in (COMM_HEAVY, COMP_HEAVY):
            kw = dict(nprocs=256, layers=1, batches=2, **stats)
            off = predict_makespan(CORI_KNL, overlap="off", **kw)
            depth1 = predict_makespan(CORI_KNL, overlap="depth1", **kw)
            assert depth1 <= off


class TestPlannerIntegration:
    def test_auto_config_off_unchanged(self):
        """overlap='off' must score candidates exactly as before —
        predict_steps(...).total()."""
        from repro.data.generators import erdos_renyi
        from repro.summa import auto_config

        a = erdos_renyi(64, avg_degree=6.0, seed=41)
        b = erdos_renyi(64, avg_degree=6.0, seed=42)
        choice = auto_config(a, b, 16, use_symbolic=False)
        for layers, batches, predicted in choice.candidates:
            times = predict_steps(
                CORI_KNL, nprocs=16, layers=layers, batches=batches,
                nnz_a=a.nnz, nnz_b=b.nnz,
                nnz_c=_symbolic_nnz(a, b), flops=_symbolic_flops(a, b),
            )
            assert predicted == pytest.approx(times.total())

    def test_auto_config_depth1_scores_lower(self):
        from repro.data.generators import erdos_renyi
        from repro.summa import auto_config

        a = erdos_renyi(64, avg_degree=6.0, seed=41)
        b = erdos_renyi(64, avg_degree=6.0, seed=42)
        off = auto_config(a, b, 16, use_symbolic=False)
        depth1 = auto_config(a, b, 16, use_symbolic=False, overlap="depth1")
        assert depth1.predicted_seconds <= off.predicted_seconds

    def test_choose_backend_accepts_overlap(self):
        from repro.data.generators import erdos_renyi
        from repro.summa import choose_backend

        a = erdos_renyi(64, avg_degree=6.0, seed=43)
        b = erdos_renyi(64, avg_degree=6.0, seed=44)
        for overlap in ("off", "depth1"):
            assert choose_backend(
                a, b, nprocs=16, overlap=overlap
            ) in ("dense", "sparse")


def _symbolic_nnz(a, b):
    from repro.sparse.spgemm.symbolic import symbolic_nnz

    return symbolic_nnz(a, b)


def _symbolic_flops(a, b):
    from repro.sparse.spgemm.symbolic import symbolic_flops

    return symbolic_flops(a, b)
