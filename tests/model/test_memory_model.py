"""Unit tests for repro.model.memory — the Table III / Sec. III-B
per-process memory estimate and its calibration fit."""

import pytest

from repro.errors import MemoryBudgetError
from repro.mem import CATEGORIES
from repro.model import (
    MemoryFit,
    batches_for_budget,
    estimate_max_tile_stats,
    fit_memory_model,
    predict_memory,
)

STATS = dict(max_nnz_a=10_000, max_nnz_b=10_000, max_nnz_c=100_000)


class TestBatchesForBudget:
    def test_matches_alg3_line12(self):
        import math

        r = 24
        budget = 10**7
        nprocs = 16
        expected = math.ceil(
            r * STATS["max_nnz_c"]
            / (budget / nprocs - r * (STATS["max_nnz_a"] + STATS["max_nnz_b"]))
        )
        got = batches_for_budget(
            memory_budget=budget, nprocs=nprocs, **STATS
        )
        assert got == max(1, expected)

    def test_tight_budget_needs_more_batches(self):
        loose = batches_for_budget(memory_budget=10**8, nprocs=16, **STATS)
        tight = batches_for_budget(memory_budget=10**7, nprocs=16, **STATS)
        assert tight >= loose

    def test_infeasible_inputs_raise(self):
        with pytest.raises(MemoryBudgetError, match="inputs alone"):
            batches_for_budget(memory_budget=1000, nprocs=16, **STATS)

    def test_max_batches_cap(self):
        b = batches_for_budget(
            memory_budget=10**7, nprocs=16, max_batches=2, **STATS
        )
        assert b <= 2


class TestPredictMemory:
    def test_all_categories_present(self):
        pred = predict_memory(nprocs=16, layers=1, batches=4, **STATS)
        assert set(pred["categories"]) == set(CATEGORIES)
        assert pred["categories"]["checkpoint"] == 0
        assert pred["high_water_total"] > 0
        assert pred["basis"] == "symbolic"

    def test_more_batches_less_memory(self):
        totals = [
            predict_memory(nprocs=16, layers=1, batches=b, **STATS)[
                "high_water_total"
            ]
            for b in (1, 2, 4, 8)
        ]
        assert totals == sorted(totals, reverse=True)
        assert totals[-1] < totals[0]

    def test_depth1_raises_recv_term(self):
        off = predict_memory(nprocs=16, layers=1, batches=2, **STATS)
        d1 = predict_memory(
            nprocs=16, layers=1, batches=2, overlap="depth1", **STATS
        )
        assert (
            d1["categories"]["recv_buffer"] > off["categories"]["recv_buffer"]
        )
        assert d1["high_water_total"] > off["high_water_total"]

    def test_keep_output_adds_held_term(self):
        drop = predict_memory(nprocs=16, layers=1, batches=4, **STATS)
        keep = predict_memory(
            nprocs=16, layers=1, batches=4, keep_output=True, **STATS
        )
        assert keep["high_water_total"] >= drop["high_water_total"]
        assert keep["categories"]["output_batch"] > 0

    def test_scale_applies_linearly(self):
        base = predict_memory(nprocs=16, layers=1, batches=2, **STATS)
        scaled = predict_memory(
            nprocs=16, layers=1, batches=2, scale=2.0, **STATS
        )
        assert scaled["high_water_total"] == pytest.approx(
            2 * base["high_water_total"], rel=1e-9
        )


class TestEstimateMaxTileStats:
    def test_balanced_share_with_imbalance(self):
        stats = estimate_max_tile_stats(
            nnz_a=160_000, nnz_b=160_000, nnz_c=800_000,
            flops=1_600_000, nprocs=16, layers=1,
        )
        assert stats["max_nnz_a"] == 13_000  # ceil(1.3 * 160000 / 16)
        assert stats["max_nnz_b"] == 13_000
        assert stats["max_nnz_c"] >= stats["max_nnz_a"]

    def test_layers_compress_intermediate(self):
        kw = dict(nnz_a=10**5, nnz_b=10**5, nnz_c=10**6, flops=4 * 10**6,
                  nprocs=16)
        flat = estimate_max_tile_stats(layers=1, **kw)
        deep = estimate_max_tile_stats(layers=4, **kw)
        assert deep["max_nnz_c"] >= flat["max_nnz_c"]


class TestFit:
    def test_recovers_synthetic_scale(self):
        observations = []
        for b in (1, 2, 4, 8):
            pred = predict_memory(nprocs=16, layers=1, batches=b, **STATS)
            measured = {
                "high_water_total": 1.5 * pred["high_water_total"],
                "categories": {
                    cat: {"high_water": 1.5 * v}
                    for cat, v in pred["categories"].items()
                },
            }
            observations.append((pred, measured))
        fit = fit_memory_model(observations)
        assert isinstance(fit, MemoryFit)
        assert fit.scale == pytest.approx(1.5, rel=1e-6)
        assert fit.mean_abs_error == pytest.approx(0.0, abs=1e-9)

    def test_apply_rescales_prediction(self):
        pred = predict_memory(nprocs=16, layers=1, batches=2, **STATS)
        fit = MemoryFit(scale=2.0, category_scale={}, mean_abs_error=0.0)
        rescaled = fit.apply(pred)
        assert rescaled["high_water_total"] == pytest.approx(
            2 * pred["high_water_total"]
        )
