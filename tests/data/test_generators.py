"""Tests for synthetic workload generators and the dataset registry."""

import numpy as np
import pytest

from repro.data import (
    dataset_names,
    erdos_renyi,
    kmer_matrix,
    load_dataset,
    planted_partition,
    protein_similarity,
    rmat,
)
from repro.sparse import transpose
from repro.sparse.spgemm.symbolic import compression_factor


def _is_symmetric(m):
    return transpose(m).allclose(m)


class TestErdosRenyi:
    def test_symmetric(self):
        assert _is_symmetric(erdos_renyi(50, avg_degree=6, seed=1))

    def test_asymmetric_option(self):
        m = erdos_renyi(50, avg_degree=6, seed=1, symmetric=False)
        assert m.nnz == 300

    def test_determinism(self):
        assert erdos_renyi(30, seed=2).allclose(erdos_renyi(30, seed=2))


class TestRmat:
    def test_shape(self):
        m = rmat(7, edge_factor=4, seed=1)
        assert m.shape == (128, 128)

    def test_symmetric(self):
        assert _is_symmetric(rmat(6, seed=2))

    def test_degree_skew(self):
        """R-MAT with Graph500 parameters must have a heavy degree tail."""
        m = rmat(10, edge_factor=8, seed=3)
        deg = m.col_nnz()
        assert deg.max() > 8 * np.median(deg[deg > 0])

    def test_uniform_parameters_no_skew(self):
        m = rmat(9, edge_factor=8, a=0.25, b=0.25, c=0.25, seed=4)
        deg = m.col_nnz()
        assert deg.max() <= 6 * max(1, np.median(deg[deg > 0]))

    def test_pattern_values_are_ones(self):
        m = rmat(6, seed=5)
        assert np.all(m.values == 1.0)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat(4, a=0.5, b=0.5, c=0.2)

    def test_determinism(self):
        assert rmat(6, seed=6).allclose(rmat(6, seed=6))


class TestProteinSimilarity:
    def test_symmetric_with_unit_diagonal(self):
        m = protein_similarity(120, seed=1)
        assert _is_symmetric(m)
        d = m.to_dense()
        assert np.allclose(np.diag(d), 1.0)

    def test_values_in_range(self):
        m = protein_similarity(100, seed=2)
        assert m.values.min() > 0
        assert m.values.max() <= 1.0

    def test_high_compression_factor(self):
        """Community structure must make squaring flop-heavy (cf >> 1);
        cf grows with size, so check both a small and a mid-size instance."""
        small = protein_similarity(200, seed=3)
        assert compression_factor(small, small) > 1.5
        mid = protein_similarity(600, intra_density=0.45, seed=3)
        assert compression_factor(mid, mid) > 3.0

    def test_determinism(self):
        assert protein_similarity(80, seed=4).allclose(
            protein_similarity(80, seed=4)
        )


class TestPlantedPartition:
    def test_labels_cover_clusters(self):
        _, labels = planted_partition(60, 5, seed=1)
        assert set(labels.tolist()) == set(range(5))

    def test_intra_density_dominates(self):
        adj, labels = planted_partition(60, 3, p_in=0.8, p_out=0.01, seed=2)
        rows, cols, _ = adj.to_coo()
        off = rows != cols
        same = labels[rows[off]] == labels[cols[off]]
        assert same.mean() > 0.8

    def test_symmetric(self):
        adj, _ = planted_partition(40, 4, seed=3)
        assert _is_symmetric(adj)


class TestKmerMatrix:
    def test_shape_and_binary(self):
        m = kmer_matrix(50, 400, kmers_per_seq=8, seed=1)
        assert m.shape == (50, 400)
        assert np.all(m.values == 1.0)

    def test_zipf_popularity_skew(self):
        m = kmer_matrix(400, 1000, kmers_per_seq=20, zipf_exponent=1.5, seed=2)
        popularity = np.sort(m.col_nnz())[::-1]
        # top 1% of k-mers carry far more than 1% of occurrences
        top = popularity[:10].sum()
        assert top > 0.05 * m.nnz

    def test_determinism(self):
        assert kmer_matrix(30, 100, seed=3).allclose(kmer_matrix(30, 100, seed=3))


class TestDatasetRegistry:
    def test_names_match_table5(self):
        assert dataset_names() == [
            "eukarya", "rice_kmers", "metaclust20m", "isolates_small",
            "friendster", "isolates", "metaclust50",
        ]

    def test_load_unknown(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    @pytest.mark.parametrize("name", ["eukarya", "friendster", "rice_kmers"])
    def test_operands_compatible(self, name):
        spec = load_dataset(name)
        a, b = spec.operands(seed=0)
        assert a.ncols == b.nrows

    def test_aat_datasets_use_transpose(self):
        spec = load_dataset("rice_kmers")
        a, b = spec.operands(seed=0)
        assert spec.operation == "AAT"
        assert b.allclose(transpose(a))

    def test_paper_stats_fields(self):
        spec = load_dataset("isolates")
        assert spec.paper.cf > 100          # 301T / 984B
        assert spec.paper.expansion > 10    # 984B / 68B

    def test_achieved_stats_shape_preserved(self):
        """The scaled stand-ins must preserve the regime: expansion > 1 and
        cf > 1 for the squaring datasets."""
        for name in ("eukarya", "isolates_small", "friendster"):
            stats = load_dataset(name).achieved_stats(seed=0)
            assert stats["expansion"] > 1.0, name
            assert stats["cf"] > 1.5, name

    def test_rice_kmers_low_expansion(self):
        """Rice-kmers: nnz(AAT) ~ nnz(A) in the paper (no batching needed)."""
        stats = load_dataset("rice_kmers").achieved_stats(seed=0)
        assert stats["expansion"] < 8.0

    def test_metaclust20m_high_expansion(self):
        """Metaclust20m: AAT expands >100x in the paper; the stand-in must
        expand strongly too."""
        stats = load_dataset("metaclust20m").achieved_stats(seed=0)
        assert stats["expansion"] > 20.0


class TestSmallWorld:
    def test_symmetric(self):
        from repro.data.generators import small_world

        g = small_world(60, k=6, rewire=0.1, seed=251)
        assert _is_symmetric(g)

    def test_no_rewire_is_ring_lattice(self):
        from repro.data.generators import small_world

        g = small_world(20, k=4, rewire=0.0, seed=252)
        # every vertex has exactly k neighbours in the pure lattice
        assert np.all(g.col_nnz() == 4)

    def test_high_clustering_vs_random(self):
        import networkx as nx

        from repro.data.generators import small_world

        g = small_world(100, k=8, rewire=0.05, seed=253)
        gx = nx.Graph()
        rows, cols, _ = g.to_coo()
        gx.add_nodes_from(range(100))
        gx.add_edges_from((int(r), int(c)) for r, c in zip(rows, cols) if r < c)
        assert nx.average_clustering(gx) > 0.3  # lattice-like clustering

    def test_invalid_k(self):
        from repro.data.generators import small_world

        with pytest.raises(ValueError):
            small_world(10, k=3)
        with pytest.raises(ValueError):
            small_world(10, k=12)

    def test_determinism(self):
        from repro.data.generators import small_world

        assert small_world(30, seed=254).allclose(small_world(30, seed=254))


class TestBanded:
    def test_structure(self):
        from repro.data.generators import banded

        m = banded(8, bandwidth=1)
        d = m.to_dense()
        assert np.all(np.diag(d) == 1.0)
        assert d[0, 2] == 0.0 and d[0, 1] == 1.0

    def test_nnz_count(self):
        from repro.data.generators import banded

        m = banded(10, bandwidth=2)
        assert m.nnz == 10 + 2 * 9 + 2 * 8

    def test_perfectly_balanced_degrees(self):
        from repro.data.generators import banded
        from repro.sparse.stats import degree_stats

        m = banded(50, bandwidth=3)
        assert degree_stats(m).skew_ratio < 1.2
