"""Golden regression tests: exact structural fingerprints of the scaled
datasets and their products.

These pin the generators' deterministic output: any unintended change to
a generator, to the RNG plumbing, or to a kernel's structural behaviour
shows up as a changed nnz, a changed checksum, or a changed product size.
(Update the constants deliberately when a generator is deliberately
changed — the diff is the review artifact.)
"""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.sparse import multiply

# name -> (nnz_a, nnz_c) of the seed-0 instance
GOLDEN = {
    "eukarya": (11384, 61840),
    "rice_kmers": (8997, 3258),
    "metaclust20m": (10434, 640000),
    "isolates_small": (28140, 185534),
    "friendster": (10735, 292127),
    "isolates": (57272, 388934),
    "metaclust50": (46742, 489568),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_dataset_fingerprint(name):
    spec = load_dataset(name)
    a, b = spec.operands(seed=0)
    nnz_a, nnz_c = GOLDEN[name]
    assert a.nnz == nnz_a, f"{name}: generator output changed"
    product = multiply(a, b)
    assert product.nnz == nnz_c, f"{name}: product structure changed"


def test_value_checksum_stable():
    """Value-level determinism of one representative dataset."""
    a, _ = load_dataset("eukarya").operands(seed=0)
    checksum = float(np.sum(a.values * (a.rowidx + 1)))
    assert checksum == pytest.approx(3203271.29, abs=0.5)


def test_different_seed_changes_fingerprint():
    a0, _ = load_dataset("friendster").operands(seed=0)
    a1, _ = load_dataset("friendster").operands(seed=1)
    assert not a0.allclose(a1)
