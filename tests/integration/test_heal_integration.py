"""Online-heal integration: a BatchedSUMMA3D run must survive a rank
crash *without restarting*, and the healed product must be bit-identical
to the fault-free run.

The chaos half is the property the whole resilience stack is sold on:
under any seeded random fault plan, a run either completes bit-identical
to fault-free or raises a *classified* resilience error promptly — it
never hangs and never escapes with an unclassified traceback.
"""

import time

import numpy as np
import pytest

from repro.errors import HealError, ReproError, SpmdError
from repro.simmpi import FaultPlan
from repro.sparse import random_sparse
from repro.summa import batched_summa3d


@pytest.fixture(scope="module")
def operands():
    a = random_sparse(36, 36, nnz=400, seed=71)
    b = random_sparse(36, 36, nnz=380, seed=72)
    return a, b


@pytest.fixture(scope="module")
def fault_free(operands):
    a, b = operands
    return batched_summa3d(a, b, nprocs=4, batches=2)


def assert_bit_identical(m, ref):
    assert m is not None and ref is not None
    assert np.array_equal(m.indptr, ref.indptr)
    assert np.array_equal(m.rowidx, ref.rowidx)
    assert np.array_equal(m.values, ref.values)


class TestSpareHeal:
    def test_crash_mid_run_heals_in_place(self, tmp_path, operands, fault_free):
        a, b = operands
        result = batched_summa3d(
            a, b, nprocs=4, batches=2,
            checkpoint_dir=tmp_path / "ck",
            faults=FaultPlan(["crash:rank=1,batch=1"]),
            heal="spare", world_spares=1, timeout=20,
        )
        assert_bit_identical(result.matrix, fault_free.matrix)
        heal = result.info["resilience"]["heal"]
        assert heal["mode"] == "spare"
        assert heal["heals"] == 1
        assert heal["extra_bytes_moved"] > 0
        event = heal["events"][0]
        assert event["dead"] == [{"position": 1, "rank": 1}]
        # the spare (global rank 4) took over grid position 1
        assert event["promoted"] == {4: 1}
        assert result.info["resilience"]["world_spares"] == 1
        # batch 0 completed before the crash: re-entry skipped it
        assert event["restart_batch"] == 1

    def test_crash_in_first_batch_replays_from_zero(
        self, tmp_path, operands, fault_free
    ):
        a, b = operands
        result = batched_summa3d(
            a, b, nprocs=4, batches=2,
            checkpoint_dir=tmp_path / "ck",
            faults=FaultPlan(["crash:rank=0,batch=0"]),
            heal="spare", world_spares=1, timeout=20,
        )
        assert_bit_identical(result.matrix, fault_free.matrix)
        assert result.info["resilience"]["heal"]["events"][0]["restart_batch"] == 0

    def test_two_crashes_consume_two_spares(self, tmp_path, operands, fault_free):
        a, b = operands
        result = batched_summa3d(
            a, b, nprocs=4, batches=2,
            checkpoint_dir=tmp_path / "ck",
            faults=FaultPlan([
                "crash:rank=1,batch=0", "crash:rank=3,batch=1",
            ]),
            heal="spare", world_spares=2, timeout=25,
        )
        assert_bit_identical(result.matrix, fault_free.matrix)
        assert result.info["resilience"]["heal"]["heals"] == 2

    def test_spare_exhaustion_is_a_classified_heal_error(
        self, tmp_path, operands
    ):
        a, b = operands
        with pytest.raises(SpmdError) as info:
            batched_summa3d(
                a, b, nprocs=4, batches=2,
                checkpoint_dir=tmp_path / "ck",
                faults=FaultPlan([
                    "crash:rank=1,batch=0", "crash:rank=2,batch=1",
                ]),
                heal="spare", world_spares=1, timeout=20,
            )
        heal_errors = [
            e for e in info.value.failures.values()
            if isinstance(e, HealError)
        ]
        assert heal_errors, f"expected HealError: {info.value.failures!r}"
        assert "no spare rank left" in str(heal_errors[0])

    def test_sparse_backend_heals_too(self, tmp_path, operands, fault_free):
        a, b = operands
        result = batched_summa3d(
            a, b, nprocs=4, batches=2, comm_backend="sparse",
            checkpoint_dir=tmp_path / "ck",
            faults=FaultPlan(["crash:rank=2,batch=1"]),
            heal="spare", world_spares=1, timeout=25,
        )
        assert_bit_identical(result.matrix, fault_free.matrix)
        assert result.info["resilience"]["heal"]["heals"] == 1


class TestShrinkHeal:
    def test_crash_heals_by_host_pool_shrink(self, tmp_path, operands, fault_free):
        a, b = operands
        result = batched_summa3d(
            a, b, nprocs=4, batches=2,
            checkpoint_dir=tmp_path / "ck",
            faults=FaultPlan(["crash:rank=2,batch=1"]),
            heal="shrink", timeout=20,
        )
        assert_bit_identical(result.matrix, fault_free.matrix)
        heal = result.info["resilience"]["heal"]
        assert heal["mode"] == "shrink"
        assert heal["heals"] == 1
        event = heal["events"][0]
        # position 2 respawned, oversubscribed onto the lowest surviving host
        assert event["hosts"][2] == 0

    def test_layered_grid_heals(self, tmp_path):
        a = random_sparse(32, 32, nnz=350, seed=81)
        b = random_sparse(32, 32, nnz=330, seed=82)
        ref = batched_summa3d(a, b, nprocs=8, layers=2, batches=2)
        result = batched_summa3d(
            a, b, nprocs=8, layers=2, batches=2,
            checkpoint_dir=tmp_path / "ck",
            faults=FaultPlan(["crash:rank=5,batch=1"]),
            heal="shrink", timeout=25,
        )
        assert_bit_identical(result.matrix, ref.matrix)


class TestHealValidation:
    def test_heal_requires_checkpoint_dir(self, operands):
        a, b = operands
        with pytest.raises(ValueError, match="checkpoint_dir"):
            batched_summa3d(a, b, nprocs=4, heal="spare", world_spares=1)

    def test_spare_mode_requires_spares(self, tmp_path, operands):
        a, b = operands
        with pytest.raises(ValueError, match="world_spares"):
            batched_summa3d(
                a, b, nprocs=4, heal="spare",
                checkpoint_dir=tmp_path / "ck",
            )

    def test_unknown_mode_rejected(self, tmp_path, operands):
        a, b = operands
        with pytest.raises(ValueError, match="heal mode"):
            batched_summa3d(
                a, b, nprocs=4, heal="migrate",
                checkpoint_dir=tmp_path / "ck",
            )


class TestChaos:
    """Seeded random fault plans over a grid sweep: every run either
    completes bit-identical to fault-free or raises a classified
    resilience error promptly.  No hangs, no unclassified tracebacks."""

    GRIDS = [(4, 1), (8, 2), (9, 1)]

    @pytest.mark.parametrize("nprocs,layers", GRIDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chaos_run_completes_or_fails_classified(
        self, tmp_path, nprocs, layers, seed
    ):
        a = random_sparse(40, 40, nnz=420, seed=90 + seed)
        b = random_sparse(40, 40, nnz=410, seed=95 + seed)
        ref = batched_summa3d(a, b, nprocs=nprocs, layers=layers, batches=2)
        plan = FaultPlan.random(
            seed=seed, nprocs=nprocs, transient=2, corrupt=1,
            crash=1, max_batch=2,
        )
        t0 = time.monotonic()
        try:
            result = batched_summa3d(
                a, b, nprocs=nprocs, layers=layers, batches=2,
                checkpoint_dir=tmp_path / "ck",
                faults=plan, heal="spare", world_spares=2, timeout=20,
            )
        except SpmdError as err:
            # classified failure: every reported cause is a typed repro
            # error carrying machine-readable context
            assert err.failures
            for exc in err.failures.values():
                assert isinstance(exc, ReproError), repr(exc)
        else:
            assert_bit_identical(result.matrix, ref.matrix)
        # the watchdog budget bounds the run either way
        assert time.monotonic() - t0 < 60
