"""Integration tests across the full stack.

These exercise the whole pipeline the way the paper's evaluation does:
scaled datasets through BatchedSUMMA3D under memory pressure, applications
over the distributed layer, and metered communication matching the
Table II closed forms.
"""

import math

import pytest

from repro.data import load_dataset, planted_partition
from repro.apps import markov_cluster
from repro.model import comm_complexity
from repro.simmpi import CommTracker
from repro.sparse import multiply, random_sparse
from repro.sparse.matrix import BYTES_PER_NONZERO
from repro.summa import batched_summa3d, summa2d, summa3d


class TestDatasetPipeline:
    @pytest.mark.parametrize("name", ["eukarya", "friendster"])
    def test_scaled_dataset_squaring(self, name):
        spec = load_dataset(name)
        a, b = spec.operands(seed=0)
        expected = multiply(a, b)
        r = batched_summa3d(a, b, nprocs=4, layers=1, batches=2)
        assert r.matrix.allclose(expected)

    def test_memory_constrained_squaring_stays_in_budget(self):
        spec = load_dataset("eukarya")
        a, _ = spec.operands(seed=0)
        budget = 6 * a.nnz * BYTES_PER_NONZERO
        # the paper's memory-constrained usage: batches are consumed, not
        # accumulated — Alg. 3 budgets the per-batch transient state
        r = batched_summa3d(a, a, nprocs=4, layers=1, memory_budget=budget,
                            keep_output=False)
        assert r.batches > 1
        # Alg. 3's denominator subtracts the *stored* input tiles but not
        # the transient broadcast receive buffers (~ one extra A tile and
        # one B tile per stage); the honest meter sees those, so allow 2x.
        assert r.max_local_bytes <= budget / 4 * 2.0
        # and batching genuinely was necessary: unbatched needs more memory
        unbatched = batched_summa3d(a, a, nprocs=4, layers=1, batches=1,
                                    keep_output=False)
        assert unbatched.max_local_bytes > r.max_local_bytes
        # same configuration with the output kept is still correct
        kept = batched_summa3d(a, a, nprocs=4, layers=1, batches=r.batches)
        assert kept.matrix.allclose(multiply(a, a))

    def test_aat_dataset(self):
        spec = load_dataset("rice_kmers")
        a, at = spec.operands(seed=0)
        r = batched_summa3d(a, at, nprocs=4, batches=1)
        assert r.matrix.allclose(multiply(a, at))


class TestCommVolumesMatchModel:
    """The simulator's metered bytes must match Table II's closed forms.

    For the broadcasts the model is exact (every byte of A and B moves a
    known number of times); this is the strongest validation that the
    simulation implements the algorithm the paper analyses.
    """

    @pytest.mark.parametrize("nprocs,layers,batches", [
        (4, 1, 1), (4, 1, 3), (8, 2, 1), (8, 2, 2), (16, 4, 2),
    ])
    def test_abcast_volume(self, nprocs, layers, batches):
        a = random_sparse(48, 48, nnz=600, seed=71)
        tracker = CommTracker()
        batched_summa3d(a, a, nprocs=nprocs, layers=layers, batches=batches,
                        tracker=tracker)
        measured = tracker.by_step()["A-Broadcast"]["nbytes"]
        # every tile of A is broadcast exactly once per batch (summed over
        # all row communicators, stages and layers), so the summed payloads
        # are exactly b * nnz(A) * r plus per-tile indptr metadata
        expected = batches * a.nnz * BYTES_PER_NONZERO
        assert expected <= measured <= expected * 1.35

    def test_abcast_scales_linearly_with_batches(self):
        a = random_sparse(48, 48, nnz=600, seed=72)
        volumes = []
        for b in (1, 2, 4):
            tracker = CommTracker()
            batched_summa3d(a, a, nprocs=4, batches=b, tracker=tracker)
            volumes.append(tracker.by_step()["A-Broadcast"]["nbytes"])
        assert volumes[1] == pytest.approx(2 * volumes[0], rel=0.05)
        assert volumes[2] == pytest.approx(4 * volumes[0], rel=0.05)

    def test_bbcast_volume_batch_invariant(self):
        a = random_sparse(48, 48, nnz=600, seed=73)
        volumes = []
        messages = []
        for b in (1, 4):
            tracker = CommTracker()
            batched_summa3d(a, a, nprocs=4, batches=b, tracker=tracker)
            agg = tracker.by_step()["B-Broadcast"]
            volumes.append(agg["nbytes"])
            messages.append(agg["messages"])
        # bandwidth ~constant (indptr metadata adds a little per batch),
        # message count scales with b (the latency cost the paper notes)
        assert volumes[1] < volumes[0] * 1.5
        assert messages[1] == 4 * messages[0]

    def test_message_counts_match_model(self):
        a = random_sparse(48, 48, nnz=600, seed=74)
        nprocs, layers, batches = 16, 4, 3
        tracker = CommTracker()
        batched_summa3d(a, a, nprocs=nprocs, layers=layers, batches=batches,
                        tracker=tracker)
        agg = tracker.by_step()
        model = comm_complexity(
            nprocs=nprocs, layers=layers, batches=batches,
            nnz_a=a.nnz, nnz_b=a.nnz, flops=1,
        )
        # one metered event per bcast call per communicator; the model's
        # "messages" counts per-process calls: stages * batches
        assert agg["A-Broadcast"]["messages"] == \
            model["A-Broadcast"]["messages"] * layers * int(math.isqrt(nprocs // layers))
        assert agg["AllToAll-Fiber"]["messages"] == \
            batches * (nprocs // layers)


class TestApplicationsUnderPressure:
    def test_mcl_under_memory_pressure_matches_unconstrained(self):
        adj, truth = planted_partition(72, 4, p_in=0.65, p_out=0.02, seed=81)
        free = markov_cluster(adj, nprocs=4, max_iterations=30)
        tight = markov_cluster(
            adj, nprocs=4,
            memory_budget=14 * adj.nnz * BYTES_PER_NONZERO,
            max_iterations=30,
        )
        mapping = {}
        for la, lb in zip(free.labels.tolist(), tight.labels.tolist()):
            assert mapping.setdefault(la, lb) == lb

    def test_2d_3d_equivalence_on_dataset(self):
        spec = load_dataset("friendster")
        a, _ = spec.operands(seed=0)
        r2 = summa2d(a, a, nprocs=4)
        r3 = summa3d(a, a, nprocs=16, layers=4)
        assert r2.matrix.allclose(r3.matrix)


class TestCommunicationAvoidance:
    def test_layers_reduce_abcast_volume(self):
        """The paper's headline mechanism: at fixed p, more layers shrink
        per-process broadcast volume ~ 1/sqrt(l)."""
        a = random_sparse(64, 64, nnz=1000, seed=91)
        volumes = {}
        for layers in (1, 4):
            tracker = CommTracker()
            batched_summa3d(a, a, nprocs=16, layers=layers, batches=2,
                            tracker=tracker)
            volumes[layers] = tracker.by_step()["A-Broadcast"]["total_bytes"]
        assert volumes[4] < volumes[1]

    def test_fiber_volume_grows_with_layers(self):
        a = random_sparse(64, 64, nnz=1000, seed=92)
        volumes = {}
        for layers in (4, 16):
            tracker = CommTracker()
            batched_summa3d(a, a, nprocs=16, layers=layers, batches=1,
                            tracker=tracker)
            volumes[layers] = tracker.by_step()["AllToAll-Fiber"]["total_bytes"]
        assert volumes[16] > volumes[4]
