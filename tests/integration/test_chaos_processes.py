"""Chaos matrix for the process-backed world.

The thread-world chaos sweep (:mod:`tests.integration.test_heal_integration`)
establishes the reference contract: a seeded random fault plan either
completes bit-identical to fault-free or fails with a classified,
machine-readable error, promptly.  This module extends that contract to
real forked worker processes: injected crashes are real ``SIGKILL``
deaths, healing rebuilds real queues, and — the part threads cannot
test — ``/dev/shm`` must come back clean after every outcome, including
a kill mid-exchange with segments in flight.
"""

import os
import time

import numpy as np
import pytest

from repro.errors import ReproError, SpmdError
from repro.mp.shm import SHM_DIR
from repro.simmpi.faults import FaultPlan
from repro.sparse import random_sparse
from repro.summa import batched_summa3d


def _shm_names():
    return set(os.listdir(SHM_DIR)) if os.path.isdir(SHM_DIR) else set()


def assert_bit_identical(m, ref):
    assert m is not None and ref is not None
    assert np.array_equal(m.indptr, ref.indptr)
    assert np.array_equal(m.rowidx, ref.rowidx)
    assert np.array_equal(m.values, ref.values)


@pytest.fixture(scope="module")
def operands():
    a = random_sparse(36, 36, nnz=400, seed=71)
    b = random_sparse(36, 36, nnz=380, seed=72)
    return a, b


@pytest.fixture(scope="module")
def references(operands):
    """Fault-free *threaded* references — the determinism anchor every
    healed process-world product must match bit-for-bit."""
    a, b = operands
    return {
        4: batched_summa3d(a, b, nprocs=4, batches=2),
        8: batched_summa3d(a, b, nprocs=8, layers=2, batches=2),
    }


_LAYERS = {4: 1, 8: 2}


class TestChaosMatrix:
    """p x transport x heal-mode sweep under a seeded random fault plan."""

    @pytest.mark.parametrize("nprocs", [4, 8])
    @pytest.mark.parametrize("transport", ["naive", "shm"])
    @pytest.mark.parametrize("mode,spares", [("spare", 2), ("shrink", 0)])
    def test_completes_bit_identical_or_classified(
        self, tmp_path, operands, references, nprocs, transport, mode, spares
    ):
        a, b = operands
        plan = FaultPlan.random(
            seed=nprocs, nprocs=nprocs, transient=1, corrupt=1,
            crash=1, max_batch=2,
        )
        before = _shm_names()
        t0 = time.monotonic()
        try:
            result = batched_summa3d(
                a, b, nprocs=nprocs, layers=_LAYERS[nprocs], batches=2,
                checkpoint_dir=tmp_path / "ck",
                faults=plan, heal=mode, world_spares=spares,
                max_retries=3, timeout=25,
                world="processes", transport=transport,
            )
        except SpmdError as err:
            # classified failure: every reported cause is a typed repro
            # error carrying machine-readable context
            assert err.failures
            for exc in err.failures.values():
                assert isinstance(exc, ReproError), repr(exc)
        else:
            assert_bit_identical(result.matrix, references[nprocs].matrix)
            heal = result.info["resilience"]["heal"]
            assert heal["mode"] == mode
        # bounded either way, and no shared-memory litter
        assert time.monotonic() - t0 < 60
        assert _shm_names() <= before


class TestShmHygieneUnderKill:
    def test_sigkill_mid_exchange_leaves_no_segments(self, operands):
        """A worker killed at a communication attempt — segments in
        flight — must not leak ``/dev/shm`` names even without a heal
        layer (the parent sweep is the backstop)."""
        a, b = operands
        before = _shm_names()
        with pytest.raises(SpmdError) as info:
            batched_summa3d(
                a, b, nprocs=4, batches=2,
                faults=FaultPlan.parse("crash:rank=1,op=bcast,nth=2"),
                timeout=20, world="processes", transport="shm",
            )
        assert any(
            type(e).__name__ == "RankCrashError"
            for e in info.value.failures.values()
        )
        assert _shm_names() <= before

    def test_sigkill_with_heal_leaves_no_segments(self, tmp_path, operands,
                                                  references):
        a, b = operands
        before = _shm_names()
        result = batched_summa3d(
            a, b, nprocs=4, batches=2, checkpoint_dir=tmp_path / "ck",
            faults=FaultPlan(["crash:rank=2,batch=1"]),
            heal="spare", world_spares=1, timeout=25,
            world="processes", transport="shm",
        )
        assert_bit_identical(result.matrix, references[4].matrix)
        assert _shm_names() <= before


class TestCheckpointParity:
    def test_checkpoint_io_matches_thread_world(self, tmp_path, operands):
        """The same faulty healed run writes the same checkpoint batches
        and bytes under both worlds — resume state is world-portable."""
        a, b = operands
        stats = {}
        for world in ("threads", "processes"):
            result = batched_summa3d(
                a, b, nprocs=4, batches=2,
                checkpoint_dir=tmp_path / f"ck-{world}",
                faults=FaultPlan(["crash:rank=1,batch=1"]),
                heal="spare", world_spares=1, timeout=25, world=world,
            )
            stats[world] = result.info["resilience"]["checkpoint_io"]
        assert stats["threads"]["batches_written"] >= 2
        assert stats["processes"] == stats["threads"]


class TestAcceptance:
    def test_shm_sigkill_spare_heals_bit_identical(self, tmp_path, operands,
                                                   references):
        """The issue's acceptance scenario: ``world="processes"``,
        ``transport="shm"``, a real mid-batch SIGKILL, ``heal="spare"``
        — completes without restarting, bit-identical to the fault-free
        threaded reference, with the heal metered and zero orphaned
        segments."""
        a, b = operands
        before = _shm_names()
        result = batched_summa3d(
            a, b, nprocs=4, batches=2, checkpoint_dir=tmp_path / "ck",
            faults=FaultPlan(["crash:rank=1,batch=1"]),
            heal="spare", world_spares=1, timeout=30,
            world="processes", transport="shm",
        )
        assert_bit_identical(result.matrix, references[4].matrix)
        heal = result.info["resilience"]["heal"]
        assert heal["mode"] == "spare"
        assert heal["heals"] == 1
        assert heal["extra_bytes_moved"] > 0
        event = heal["events"][0]
        assert event["dead"] == [{"position": 1, "rank": 1}]
        assert event["latency_s"] > 0
        assert result.info["world"]["world"] == "processes"
        assert result.info["world"]["transport"] == "shm"
        assert result.info["world"]["heal_epochs"] == 1
        assert _shm_names() <= before
