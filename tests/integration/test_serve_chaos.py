"""Serving-layer chaos and overload acceptance (ISSUE 9).

Chaos: a seeded rank crash in the middle of a service job running on the
process world heals online via the spare path and completes bit-identical
to the fault-free reference *at the job's planned configuration*, the
heal is visible in the job result, and ``/dev/shm`` is clean after the
pool shuts down.

Overload: sustained traffic past capacity from several tenants sheds
load only through classified errors, and fair-share keeps every tenant's
throughput above zero even while chaos jobs are failing on the same
grids.
"""

import os
import threading

import numpy as np
import pytest

from repro.errors import (
    AdmissionRejected,
    DeadlineExceededError,
    ReproError,
    SpmdError,
)
from repro.mp.shm import SHM_DIR
from repro.serve import QUARANTINED, SpgemmService
from repro.simmpi.faults import FaultPlan
from repro.sparse import random_sparse
from repro.summa import batched_summa3d


def _shm_names():
    return set(os.listdir(SHM_DIR)) if os.path.isdir(SHM_DIR) else set()


def assert_bit_identical(m, ref):
    assert m is not None and ref is not None
    assert np.array_equal(m.indptr, ref.indptr)
    assert np.array_equal(m.rowidx, ref.rowidx)
    assert np.array_equal(m.values, ref.values)


@pytest.fixture(scope="module")
def a():
    return random_sparse(36, 36, nnz=400, seed=81)


class TestChaosAcceptance:
    def test_crash_mid_job_heals_bit_identical_shm_clean(self, tmp_path, a):
        """The issue's chaos acceptance: seeded crash mid-run under
        ``world="processes"`` → the job completes bit-identical, the
        result records the heal, and no shared memory leaks past
        shutdown."""
        before = _shm_names()
        with SpgemmService(
            grids=1, nprocs=4, world="processes", timeout=60.0,
            heal="spare", world_spares=1,
            checkpoint_root=tmp_path / "ck",
        ) as svc:
            h = svc.submit(
                tenant="chaos", a=a,
                faults=FaultPlan(["crash:rank=1,op=bcast,nth=2"]),
            )
            r = h.result(timeout=120)
            assert r.heals >= 1
            heal = r.info["resilience"]["heal"]
            assert heal["mode"] == "spare"
            assert heal["heals"] == r.heals
            assert r.info["world"]["world"] == "processes"
            # fault-free reference at the job's own planned config — the
            # contract is faulted ≡ unfaulted at the same configuration
            ref = batched_summa3d(
                a, a, nprocs=4, layers=r.plan["layers"],
                batches=r.plan["batches"], comm_backend=r.plan["backend"],
            )
            assert_bit_identical(r.matrix, ref.matrix)
            assert svc.stats()["counters"]["heals"] >= 1
        assert _shm_names() <= before

    def test_unhealed_crash_is_classified_and_breaker_reforks(
        self, a
    ):
        """Without a heal layer a crashing job fails *classified*; two
        such incidents quarantine the slot's breaker and the service
        re-forks the grid, after which clean traffic flows again."""
        before = _shm_names()
        with SpgemmService(
            grids=1, nprocs=4, world="processes", timeout=60.0,
            degrade_after=2.0, quarantine_after=4.0,
        ) as svc:
            for _ in range(2):
                h = svc.submit(
                    tenant="chaos", a=a,
                    faults=FaultPlan(["crash:rank=1,op=bcast,nth=2"]),
                )
                with pytest.raises(SpmdError) as info:
                    h.result(timeout=120)
                assert all(
                    isinstance(e, ReproError)
                    for e in info.value.failures.values()
                )
            r = svc.submit(tenant="chaos", a=a).result(timeout=120)
            assert r.matrix is not None
            stats = svc.stats()
            assert stats["counters"]["reforks"] >= 1
            assert stats["slots"][0]["breaker"]["trips"] >= 1
            assert stats["slots"][0]["breaker"]["state"] != QUARANTINED
        assert _shm_names() <= before


class TestChaosUnderLoad:
    def test_mixed_tenants_with_crashes_all_keep_flowing(self, tmp_path, a):
        """Three tenants flood a small process-world pool while one of
        them injects crashes; every refusal is classified, every tenant
        completes work, healed jobs stay bit-identical, and the pool
        shuts down shm-clean."""
        before = _shm_names()
        completed = {"alice": 0, "bob": 0, "mallory": 0}
        unclassified = []
        lock = threading.Lock()
        with SpgemmService(
            grids=2, nprocs=4, world="processes", timeout=60.0,
            queue_capacity=2, max_backlog_s=1e9,
            heal="spare", world_spares=1,
            checkpoint_root=tmp_path / "ck",
        ) as svc:
            ref = {}

            def flood(tenant, faulty):
                for i in range(4):
                    faults = (
                        FaultPlan(["crash:rank=1,op=bcast,nth=2"])
                        if faulty and i % 2 == 0 else None
                    )
                    try:
                        r = svc.submit(
                            tenant=tenant, a=a, faults=faults,
                        ).result(timeout=180)
                        key = (r.plan["layers"], r.plan["batches"])
                        if key not in ref:
                            ref[key] = batched_summa3d(
                                a, a, nprocs=4, layers=key[0],
                                batches=key[1],
                                comm_backend=r.plan["backend"],
                            )
                        assert_bit_identical(r.matrix, ref[key].matrix)
                        with lock:
                            completed[tenant] += 1
                    except (AdmissionRejected, DeadlineExceededError):
                        pass  # classified shedding — expected at 2x load
                    except Exception as exc:  # noqa: BLE001
                        with lock:
                            unclassified.append(exc)

            threads = [
                threading.Thread(target=flood, args=(t, t == "mallory"))
                for t in completed
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(300)
            stats = svc.stats()
        assert not unclassified, unclassified
        assert all(n > 0 for n in completed.values()), completed
        assert stats["counters"]["heals"] >= 1
        assert _shm_names() <= before
