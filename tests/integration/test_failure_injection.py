"""Failure-injection tests: the stack must fail loudly and coherently.

DESIGN.md's failure matrix: per-rank exceptions surface with rank
attribution, blocked peers are released (no hangs), budget exhaustion is
a typed error, and bad configurations are rejected before any thread
spawns.  The injected-fault half of the matrix: transients are retried
transparently, corrupted payloads are caught by checksums and
redelivered, rank crashes surface with a checkpoint pointer, and memory
pressure triggers re-batching — all deterministically, with bit-identical
products.
"""

import numpy as np
import pytest

from repro.errors import (
    GridError,
    MemoryBudgetError,
    MemoryPressureError,
    RankCrashError,
    ShapeError,
    SpmdError,
    TransientCommError,
)
from repro.simmpi import CommTracker, FaultPlan, run_spmd
from repro.sparse import random_sparse
from repro.summa import batched_summa3d, symbolic3d


@pytest.fixture(scope="module")
def matrix():
    return random_sparse(32, 32, nnz=300, seed=161)


class TestRankFailures:
    def test_single_rank_failure_attributed(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("boom on rank 2")
            comm.barrier()

        with pytest.raises(SpmdError) as info:
            run_spmd(4, prog, timeout=10)
        assert list(info.value.failures) == [2]
        assert "boom on rank 2" in str(info.value)

    def test_multiple_failures_all_reported(self):
        def prog(comm):
            if comm.rank % 2 == 0:
                raise RuntimeError(f"rank {comm.rank} died")
            comm.barrier()

        with pytest.raises(SpmdError) as info:
            run_spmd(4, prog, timeout=10)
        assert set(info.value.failures) == {0, 2}

    def test_blocked_peers_released_not_hung(self):
        """Ranks waiting inside a collective when a peer dies must wake
        promptly (CommError), not run into the timeout."""
        import time

        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("early death")
            comm.barrier()

        t0 = time.monotonic()
        with pytest.raises(SpmdError):
            run_spmd(4, prog, timeout=60)
        assert time.monotonic() - t0 < 10  # released by abort, not timeout

    def test_cascading_commerrors_filtered(self):
        def prog(comm):
            if comm.rank == 0:
                raise KeyError("original")
            comm.barrier()  # peers die with CommError after the abort

        with pytest.raises(SpmdError) as info:
            run_spmd(3, prog, timeout=10)
        # only the genuine failure is reported, not the cascade
        assert list(info.value.failures) == [0]
        assert isinstance(info.value.failures[0], KeyError)

    def test_failure_during_alltoall(self):
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("dead before exchange")
            comm.alltoall([None] * comm.size)

        with pytest.raises(SpmdError):
            run_spmd(4, prog, timeout=10)


class TestDistributedFailures:
    def test_postprocess_exception_propagates(self, matrix):
        def bad_postprocess(batch, c0, c1, block):
            raise RuntimeError("postprocess exploded")

        with pytest.raises(SpmdError) as info:
            batched_summa3d(
                matrix, matrix, nprocs=4, batches=2,
                postprocess=bad_postprocess, timeout=15,
            )
        assert any(
            "postprocess exploded" in str(e) for e in info.value.failures.values()
        )

    def test_budget_exhaustion_typed(self, matrix):
        with pytest.raises(SpmdError) as info:
            symbolic3d(matrix, matrix, nprocs=4, memory_budget=100, timeout=15)
        assert all(
            isinstance(e, MemoryBudgetError)
            for e in info.value.failures.values()
        )

    def test_bad_suite_fails_every_rank(self, matrix):
        with pytest.raises(SpmdError):
            batched_summa3d(matrix, matrix, nprocs=4, batches=1,
                            suite="nonexistent", timeout=15)

    def test_bad_grid_rejected_before_spawn(self, matrix):
        with pytest.raises(GridError):
            batched_summa3d(matrix, matrix, nprocs=7, batches=1)

    def test_shape_rejected_before_spawn(self):
        a = random_sparse(4, 5, nnz=4, seed=0)
        with pytest.raises(ShapeError):
            batched_summa3d(a, a, nprocs=1)

    def test_postprocess_shape_corruption_detected(self, matrix):
        """A postprocess returning the wrong shape must not silently
        corrupt the output."""
        def shrink(batch, c0, c1, block):
            from repro.sparse.ops import col_slice

            return col_slice(block, 0, max(block.ncols - 1, 0))

        with pytest.raises(SpmdError):
            batched_summa3d(
                matrix, matrix, nprocs=4, batches=2,
                postprocess=shrink, timeout=15,
            )


class TestCollectiveMisuse:
    def test_double_participation_detected(self):
        """A rank calling a collective twice while peers call it once is a
        program-order bug; the mismatch must be diagnosed."""
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.barrier()
            else:
                comm.barrier()

        # rank 0's second barrier can never complete: timeout diagnoses it
        with pytest.raises(SpmdError):
            run_spmd(2, prog, timeout=1.5)

    def test_mismatched_split_color_types(self):
        def prog(comm):
            comm.split(color="not-an-int")  # type: ignore[arg-type]

        with pytest.raises(SpmdError):
            run_spmd(2, prog, timeout=10)


@pytest.fixture(scope="module")
def operands():
    a = random_sparse(60, 60, density=0.08, seed=1)
    b = random_sparse(60, 60, density=0.08, seed=2)
    return a, b


def assert_bit_identical(got, want):
    assert got.nnz == want.nnz
    assert np.array_equal(got.indptr, want.indptr)
    assert np.array_equal(got.rowidx, want.rowidx)
    assert np.array_equal(got.values, want.values)


class TestInjectedCommFaults:
    def test_alltoallv_transient_retried(self, operands):
        """A transient on the fiber alltoallv (layers=2 exercises it) is
        retried transparently; the product is bit-identical."""
        a, b = operands
        base = batched_summa3d(a, b, nprocs=8, layers=2, batches=2, timeout=15)
        r = batched_summa3d(
            a, b, nprocs=8, layers=2, batches=2, timeout=15,
            faults=FaultPlan(["transient:rank=2,op=alltoallv,nth=1"]),
        )
        assert_bit_identical(r.matrix, base.matrix)
        assert r.fault_stats["injected"] == {"transient": 1}
        assert r.fault_stats["retries"] == 1

    def test_p2p_tagged_path_transients_retried(self, operands):
        """The sparse backend moves operands by tag-matched isend/recv;
        transients on both sides of that path must heal."""
        a, b = operands
        base = batched_summa3d(
            a, b, nprocs=4, batches=2, comm_backend="sparse", timeout=15,
        )
        r = batched_summa3d(
            a, b, nprocs=4, batches=2, comm_backend="sparse", timeout=15,
            faults=FaultPlan([
                "transient:rank=1,op=recv,nth=2",
                "transient:rank=0,op=send,nth=1",
            ]),
        )
        assert_bit_identical(r.matrix, base.matrix)
        assert r.fault_stats["injected"] == {"transient": 2}
        assert r.fault_stats["retries"] == 2

    def test_retry_budget_exhaustion_surfaces_transient(self, operands):
        a, b = operands
        with pytest.raises(SpmdError) as info:
            batched_summa3d(
                a, b, nprocs=4, batches=2, timeout=15, max_retries=0,
                faults=FaultPlan(["transient:rank=1,op=bcast,nth=1"]),
            )
        assert any(
            isinstance(e, TransientCommError)
            for e in info.value.failures.values()
        )

    def test_blocked_peers_released_on_mid_alltoallv_crash(self):
        """A rank dying at its alltoallv entry must release peers already
        parked in the exchange promptly — abort, not timeout."""
        import time

        def prog(comm):
            comm.alltoallv([b"x" * 64] * comm.size)

        t0 = time.monotonic()
        with pytest.raises(SpmdError) as info:
            run_spmd(
                4, prog, timeout=60,
                faults=FaultPlan(["crash:rank=1,op=alltoallv,nth=1"]),
            )
        assert time.monotonic() - t0 < 10
        assert isinstance(info.value.failures[1], RankCrashError)

    def test_determinism_k_transients_one_corruption(self, operands):
        """Acceptance: a fixed plan with K transients and one corruption
        yields a bit-identical product and exactly K+1 reported retries,
        run after run."""
        a, b = operands
        base = batched_summa3d(a, b, nprocs=8, layers=2, batches=3, timeout=15)
        plan_texts = [
            "transient:rank=1,op=bcast,nth=2",
            "transient:rank=2,op=alltoallv,nth=1",
            "corrupt:rank=3,op=bcast,nth=1",
        ]
        stats_seen = []
        for _ in range(2):
            r = batched_summa3d(
                a, b, nprocs=8, layers=2, batches=3, timeout=15,
                faults=FaultPlan(plan_texts),
            )
            assert_bit_identical(r.matrix, base.matrix)
            fs = r.fault_stats
            assert fs["fired"] == 3
            assert fs["retries"] == 3  # K=2 transient retries + 1 redelivery
            # cross-rank log interleaving follows thread scheduling; the
            # determinism contract is the per-rank event sequence
            stats_seen.append(sorted(
                (e["rank"], e["kind"], e["op"], e["attempt"])
                for e in fs["events"]
            ))
        assert stats_seen[0] == stats_seen[1]

    def test_checksums_add_metadata_only_bytes(self, operands):
        """Envelope checksums cost CHECKSUM_NBYTES per message and nothing
        payload-proportional; products stay bit-identical."""
        from repro.simmpi.serialization import CHECKSUM_NBYTES

        a, b = operands
        plain_tracker = CommTracker()
        plain = batched_summa3d(
            a, b, nprocs=4, batches=2, tracker=plain_tracker, timeout=15,
        )
        summed_tracker = CommTracker()
        summed = batched_summa3d(
            a, b, nprocs=4, batches=2, tracker=summed_tracker,
            checksums=True, timeout=15,
        )
        assert_bit_identical(summed.matrix, plain.matrix)
        overhead = summed_tracker.total_bytes() - plain_tracker.total_bytes()
        assert overhead > 0
        assert overhead % CHECKSUM_NBYTES == 0


class TestCrashRecovery:
    def test_crash_surfaces_checkpoint_pointer(self, operands, tmp_path):
        a, b = operands
        with pytest.raises(SpmdError) as info:
            batched_summa3d(
                a, b, nprocs=4, batches=3, timeout=15,
                checkpoint_dir=tmp_path / "ck",
                faults=FaultPlan(["crash:rank=2,batch=1"]),
            )
        assert "resume=True" in str(info.value)
        assert any(
            isinstance(e, RankCrashError)
            for e in info.value.failures.values()
        )

    def test_resume_recomputes_only_remaining_batches(self, operands, tmp_path):
        """Acceptance: crash at batch 1 of 3, then resume=True — the
        product is bit-identical and the resumed run moves fewer bytes
        (only batches >= 1 recompute)."""
        a, b = operands
        full_tracker = CommTracker()
        base = batched_summa3d(
            a, b, nprocs=4, batches=3, tracker=full_tracker, timeout=15,
        )
        with pytest.raises(SpmdError):
            batched_summa3d(
                a, b, nprocs=4, batches=3, timeout=15,
                checkpoint_dir=tmp_path / "ck",
                faults=FaultPlan(["crash:rank=2,batch=1"]),
            )
        resumed_tracker = CommTracker()
        r = batched_summa3d(
            a, b, nprocs=4, batches=None, timeout=15,
            checkpoint_dir=tmp_path / "ck", resume=True,
            tracker=resumed_tracker,
        )
        assert_bit_identical(r.matrix, base.matrix)
        assert r.info["resilience"]["resumed_from_batch"] == 1
        # only 2 of 3 batches moved bytes in the resumed run
        assert resumed_tracker.total_bytes() < full_tracker.total_bytes()

    def test_resume_against_different_operands_rejected(self, operands, tmp_path):
        from repro.errors import CheckpointError

        a, b = operands
        with pytest.raises(SpmdError):
            batched_summa3d(
                a, b, nprocs=4, batches=3, timeout=15,
                checkpoint_dir=tmp_path / "ck",
                faults=FaultPlan(["crash:rank=0,batch=1"]),
            )
        other = random_sparse(60, 60, density=0.08, seed=99)
        with pytest.raises(CheckpointError):
            batched_summa3d(
                other, other, nprocs=4, timeout=15,
                checkpoint_dir=tmp_path / "ck", resume=True,
            )

    def test_fault_free_checkpointed_run_matches(self, operands, tmp_path):
        """Checkpointing a healthy run must not change the product."""
        a, b = operands
        base = batched_summa3d(a, b, nprocs=4, batches=3, timeout=15)
        r = batched_summa3d(
            a, b, nprocs=4, batches=3, timeout=15,
            checkpoint_dir=tmp_path / "ck",
        )
        assert_bit_identical(r.matrix, base.matrix)
        assert r.info["resilience"]["resumed_from_batch"] == 0


class TestMemoryPressureRecovery:
    def test_rebatch_to_double_and_complete(self, operands):
        """Acceptance: injected MemoryPressureError mid-run re-batches to
        2b and completes with a bit-identical product."""
        a, b = operands
        base = batched_summa3d(a, b, nprocs=4, batches=2, timeout=15)
        r = batched_summa3d(
            a, b, nprocs=4, batches=2, timeout=15,
            faults=FaultPlan(["mem-pressure:rank=0,batch=1"]),
        )
        assert r.batches == 4
        assert r.info["resilience"]["rebatched"] == [{"from": 2, "to": 4}]
        assert_bit_identical(r.matrix, base.matrix)

    def test_rebatch_with_checkpoint_resets_directory(self, operands, tmp_path):
        a, b = operands
        base = batched_summa3d(a, b, nprocs=4, batches=2, timeout=15)
        r = batched_summa3d(
            a, b, nprocs=4, batches=2, timeout=15,
            checkpoint_dir=tmp_path / "ck",
            faults=FaultPlan(["mem-pressure:rank=1,batch=1"]),
        )
        assert r.batches == 4
        assert_bit_identical(r.matrix, base.matrix)
        import json

        manifest = json.loads((tmp_path / "ck" / "manifest.json").read_text())
        assert manifest["batches"] == 4
        assert len(manifest["completed"]) == 4

    def test_unrecoverable_pressure_at_column_limit(self):
        """When b already equals the column count, doubling is impossible
        and the pressure surfaces."""
        a = random_sparse(8, 2, nnz=6, seed=5)
        b = random_sparse(2, 2, nnz=3, seed=6)
        with pytest.raises(SpmdError) as info:
            batched_summa3d(
                a, b, nprocs=1, batches=2, timeout=15,
                faults=FaultPlan(["mem-pressure:rank=0,batch=0"]),
            )
        assert any(
            isinstance(e, MemoryPressureError)
            for e in info.value.failures.values()
        )
