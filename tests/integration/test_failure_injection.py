"""Failure-injection tests: the stack must fail loudly and coherently.

DESIGN.md's failure matrix: per-rank exceptions surface with rank
attribution, blocked peers are released (no hangs), budget exhaustion is
a typed error, and bad configurations are rejected before any thread
spawns.
"""

import pytest

from repro.errors import (
    GridError,
    MemoryBudgetError,
    ShapeError,
    SpmdError,
)
from repro.simmpi import run_spmd
from repro.sparse import random_sparse
from repro.summa import batched_summa3d, symbolic3d


@pytest.fixture(scope="module")
def matrix():
    return random_sparse(32, 32, nnz=300, seed=161)


class TestRankFailures:
    def test_single_rank_failure_attributed(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("boom on rank 2")
            comm.barrier()

        with pytest.raises(SpmdError) as info:
            run_spmd(4, prog, timeout=10)
        assert list(info.value.failures) == [2]
        assert "boom on rank 2" in str(info.value)

    def test_multiple_failures_all_reported(self):
        def prog(comm):
            if comm.rank % 2 == 0:
                raise RuntimeError(f"rank {comm.rank} died")
            comm.barrier()

        with pytest.raises(SpmdError) as info:
            run_spmd(4, prog, timeout=10)
        assert set(info.value.failures) == {0, 2}

    def test_blocked_peers_released_not_hung(self):
        """Ranks waiting inside a collective when a peer dies must wake
        promptly (CommError), not run into the timeout."""
        import time

        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("early death")
            comm.barrier()

        t0 = time.monotonic()
        with pytest.raises(SpmdError):
            run_spmd(4, prog, timeout=60)
        assert time.monotonic() - t0 < 10  # released by abort, not timeout

    def test_cascading_commerrors_filtered(self):
        def prog(comm):
            if comm.rank == 0:
                raise KeyError("original")
            comm.barrier()  # peers die with CommError after the abort

        with pytest.raises(SpmdError) as info:
            run_spmd(3, prog, timeout=10)
        # only the genuine failure is reported, not the cascade
        assert list(info.value.failures) == [0]
        assert isinstance(info.value.failures[0], KeyError)

    def test_failure_during_alltoall(self):
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("dead before exchange")
            comm.alltoall([None] * comm.size)

        with pytest.raises(SpmdError):
            run_spmd(4, prog, timeout=10)


class TestDistributedFailures:
    def test_postprocess_exception_propagates(self, matrix):
        def bad_postprocess(batch, c0, c1, block):
            raise RuntimeError("postprocess exploded")

        with pytest.raises(SpmdError) as info:
            batched_summa3d(
                matrix, matrix, nprocs=4, batches=2,
                postprocess=bad_postprocess, timeout=15,
            )
        assert any(
            "postprocess exploded" in str(e) for e in info.value.failures.values()
        )

    def test_budget_exhaustion_typed(self, matrix):
        with pytest.raises(SpmdError) as info:
            symbolic3d(matrix, matrix, nprocs=4, memory_budget=100, timeout=15)
        assert all(
            isinstance(e, MemoryBudgetError)
            for e in info.value.failures.values()
        )

    def test_bad_suite_fails_every_rank(self, matrix):
        with pytest.raises(SpmdError):
            batched_summa3d(matrix, matrix, nprocs=4, batches=1,
                            suite="nonexistent", timeout=15)

    def test_bad_grid_rejected_before_spawn(self, matrix):
        with pytest.raises(GridError):
            batched_summa3d(matrix, matrix, nprocs=7, batches=1)

    def test_shape_rejected_before_spawn(self):
        a = random_sparse(4, 5, nnz=4, seed=0)
        with pytest.raises(ShapeError):
            batched_summa3d(a, a, nprocs=1)

    def test_postprocess_shape_corruption_detected(self, matrix):
        """A postprocess returning the wrong shape must not silently
        corrupt the output."""
        def shrink(batch, c0, c1, block):
            from repro.sparse.ops import col_slice

            return col_slice(block, 0, max(block.ncols - 1, 0))

        with pytest.raises(SpmdError):
            batched_summa3d(
                matrix, matrix, nprocs=4, batches=2,
                postprocess=shrink, timeout=15,
            )


class TestCollectiveMisuse:
    def test_double_participation_detected(self):
        """A rank calling a collective twice while peers call it once is a
        program-order bug; the mismatch must be diagnosed."""
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.barrier()
            else:
                comm.barrier()

        # rank 0's second barrier can never complete: timeout diagnoses it
        with pytest.raises(SpmdError):
            run_spmd(2, prog, timeout=1.5)

    def test_mismatched_split_color_types(self):
        def prog(comm):
            comm.split(color="not-an-int")  # type: ignore[arg-type]

        with pytest.raises(SpmdError):
            run_spmd(2, prog, timeout=10)
