"""Edge-shape coverage: hypersparse operands, degenerate dimensions,
grids larger than the matrix — everything must stay correct when tiles
are empty or one entry wide."""

import numpy as np

from repro.sparse import SparseMatrix, eye, multiply, random_sparse
from repro.summa import batched_summa3d, summa2d, summa3d


class TestHypersparse:
    def test_fewer_nonzeros_than_processes(self):
        a = SparseMatrix.from_coo(50, 50, [3, 41], [17, 8], [1.0, 2.0])
        r = batched_summa3d(a, a, nprocs=16, layers=4, batches=2)
        assert r.matrix.allclose(multiply(a, a))

    def test_single_nonzero(self):
        a = SparseMatrix.from_coo(30, 30, [7], [9], [3.0])
        b = SparseMatrix.from_coo(30, 30, [9], [2], [4.0])
        r = summa3d(a, b, nprocs=8, layers=2)
        assert r.matrix.nnz == 1
        assert r.matrix.to_dense()[7, 2] == 12.0

    def test_empty_times_nonempty(self):
        a = SparseMatrix.empty(20, 20)
        b = random_sparse(20, 20, nnz=50, seed=171)
        assert batched_summa3d(a, b, nprocs=4, batches=3).matrix.nnz == 0

    def test_hypersparse_aat(self):
        # 2 nnz per column on average — the Rice-kmers regime
        a = random_sparse(30, 300, nnz=60, seed=172)
        from repro.sparse import transpose

        r = batched_summa3d(a, transpose(a), nprocs=4, batches=2)
        assert r.matrix.allclose(multiply(a, transpose(a)))


class TestDegenerateDimensions:
    def test_grid_larger_than_rows(self):
        a = random_sparse(3, 40, nnz=30, seed=173)
        b = random_sparse(40, 3, nnz=30, seed=174)
        r = summa2d(a, b, nprocs=16)  # 4x4 grid for 3 rows
        assert r.matrix.allclose(multiply(a, b))

    def test_grid_larger_than_columns(self):
        a = random_sparse(40, 2, nnz=20, seed=175)
        b = random_sparse(2, 40, nnz=20, seed=176)
        r = batched_summa3d(a, b, nprocs=16, layers=4, batches=2)
        assert r.matrix.allclose(multiply(a, b))

    def test_one_by_one(self):
        a = SparseMatrix.from_coo(1, 1, [0], [0], [2.0])
        r = summa2d(a, a, nprocs=4)
        assert r.matrix.to_dense()[0, 0] == 4.0

    def test_vector_times_row(self):
        # outer product: (n x 1) @ (1 x n) — rank-1 blowup
        col = random_sparse(25, 1, nnz=10, seed=177)
        row = random_sparse(1, 25, nnz=10, seed=178)
        r = batched_summa3d(col, row, nprocs=4, batches=3)
        assert r.matrix.allclose(multiply(col, row))
        assert r.matrix.nnz == 100

    def test_row_times_vector(self):
        # inner product: (1 x n) @ (n x 1) — single output entry
        row = random_sparse(1, 25, nnz=10, seed=179)
        col = random_sparse(25, 1, nnz=10, seed=180)
        r = summa2d(row, col, nprocs=4)
        assert r.matrix.allclose(multiply(row, col))

    def test_more_batches_than_output_columns(self):
        a = random_sparse(20, 20, nnz=60, seed=181)
        b = random_sparse(20, 2, nnz=10, seed=182)
        r = batched_summa3d(a, b, nprocs=4, batches=50)
        assert r.matrix.allclose(multiply(a, b))


class TestExtremePatterns:
    def test_diagonal_squared(self):
        d = eye(37, value=3.0)
        r = summa3d(d, d, nprocs=8, layers=2)
        assert np.allclose(r.matrix.to_dense(), 9.0 * np.eye(37))

    def test_dense_small(self):
        from repro.sparse import from_dense

        rng = np.random.default_rng(183)
        a = from_dense(rng.random((12, 12)))
        r = batched_summa3d(a, a, nprocs=9, batches=2)
        assert np.allclose(r.matrix.to_dense(), a.to_dense() @ a.to_dense())

    def test_single_dense_column(self):
        a = SparseMatrix.from_coo(
            30, 30, list(range(30)), [5] * 30, [1.0] * 30
        )
        r = batched_summa3d(a, a, nprocs=4, layers=1, batches=3)
        assert r.matrix.allclose(multiply(a, a))

    def test_single_dense_row(self):
        a = SparseMatrix.from_coo(
            30, 30, [5] * 30, list(range(30)), [1.0] * 30
        )
        r = summa3d(a, a, nprocs=4, layers=4)
        assert r.matrix.allclose(multiply(a, a))
