"""Triangle counting and clustering coefficients via SpGEMM (paper Sec. V-B).

High-performance triangle counting multiplies the strictly-lower and
strictly-upper triangular parts of the adjacency matrix and masks the
product with the adjacency pattern [Azad-Buluç-Gilbert]:

    B = L @ U;   triangles = (1/2) * sum of B masked by A

For a triangle ``a < b < c`` the masked product holds the wedge count at
entries ``(b, c)`` and ``(c, b)`` (apex ``a``), hence the halving.  The
multiply runs on the distributed BatchedSUMMA3D, making this the paper's
"social network analytics" workload.
"""

from __future__ import annotations

import numpy as np

from ..simmpi.tracker import CommTracker
from ..sparse.matrix import SparseMatrix, VALUE_DTYPE
from ..sparse.ops import hadamard, tril, triu
from ..summa.batched import batched_summa3d


def _pattern(a: SparseMatrix) -> SparseMatrix:
    """Unweighted simple-graph view: values set to 1, self-loops dropped
    (loops are not edges of the simple graph and would pollute the mask)."""
    rows = a.rowidx
    cols = a.col_indices()
    off_diag = rows != cols
    return SparseMatrix.from_coo(
        a.nrows,
        a.ncols,
        rows[off_diag],
        cols[off_diag],
        np.ones(int(off_diag.sum()), dtype=VALUE_DTYPE),
    )


def _masked_wedges(
    a: SparseMatrix,
    nprocs: int,
    layers: int,
    memory_budget: int | None,
    suite,
    tracker: CommTracker | None,
    *,
    push_mask: bool = True,
) -> SparseMatrix:
    if a.nrows != a.ncols:
        raise ValueError(f"adjacency must be square, got {a.shape}")
    adj = _pattern(a)
    lower = tril(adj, -1)
    upper = triu(adj, 1)
    if push_mask:
        # GraphBLAS-style: the mask filters each batch inside the
        # distributed pipeline, so non-edge wedge counts never accumulate
        result = batched_summa3d(
            lower,
            upper,
            nprocs=nprocs,
            layers=layers,
            memory_budget=memory_budget,
            suite=suite,
            mask=adj,
            tracker=tracker,
        )
        return result.matrix
    result = batched_summa3d(
        lower,
        upper,
        nprocs=nprocs,
        layers=layers,
        memory_budget=memory_budget,
        suite=suite,
        tracker=tracker,
    )
    return hadamard(result.matrix, adj)


def count_triangles(
    a: SparseMatrix,
    nprocs: int = 4,
    layers: int = 1,
    *,
    memory_budget: int | None = None,
    suite="esc",
    tracker: CommTracker | None = None,
) -> int:
    """Number of triangles in the undirected graph with adjacency ``a``.

    ``a`` may be weighted; only its pattern matters.  Self-loops are
    ignored (they cannot participate in the strict triangular parts).
    """
    masked = _masked_wedges(a, nprocs, layers, memory_budget, suite, tracker)
    return int(round(masked.values.sum() / 2.0))


def clustering_coefficients(
    a: SparseMatrix,
    nprocs: int = 4,
    layers: int = 1,
    *,
    memory_budget: int | None = None,
    suite="esc",
    tracker: CommTracker | None = None,
) -> np.ndarray:
    """Local clustering coefficient of every vertex.

    ``cc(v) = 2 * t(v) / (deg(v) * (deg(v) - 1))`` with ``t(v)`` the
    triangles through ``v``; vertices of degree < 2 get 0.
    """
    # S = A .* (A @ A) holds per-edge common-neighbour counts; each
    # triangle {v, u, w} contributes 1 to S[v, u] and 1 to S[v, w], so the
    # row sums of S are twice the per-vertex triangle counts.
    if a.nrows != a.ncols:
        raise ValueError(f"adjacency must be square, got {a.shape}")
    n = a.nrows
    adj = _pattern(a)
    product = batched_summa3d(
        adj,
        adj,
        nprocs=nprocs,
        layers=layers,
        memory_budget=memory_budget,
        suite=suite,
        tracker=tracker,
    ).matrix
    s = hadamard(product, adj)
    tri_per_vertex = np.zeros(n, dtype=VALUE_DTYPE)
    np.add.at(tri_per_vertex, s.rowidx, s.values)
    tri_per_vertex /= 2.0
    deg = np.zeros(n, dtype=VALUE_DTYPE)
    np.add.at(deg, adj.rowidx, 1.0)
    denom = deg * (deg - 1.0)
    return np.divide(
        2.0 * tri_per_vertex,
        denom,
        out=np.zeros(n, dtype=VALUE_DTYPE),
        where=denom > 0,
    )
