"""Heavy-connectivity matching for hypergraph coarsening (paper Sec. I).

Multi-level partitioners (Zoltan, PaToH) coarsen by matching vertex pairs
sharing many hyperedges.  With incidence matrix ``A`` (vertices × nets),
the pair weights are ``A @ Aᵀ`` — too dense to hold at scale, so Zoltan
computes it in batches and matches greedily within each batch before
discarding it.  This module reproduces that batched-greedy pipeline on
BatchedSUMMA3D.
"""

from __future__ import annotations

import numpy as np

from ..simmpi.tracker import CommTracker
from ..sparse.matrix import INDEX_DTYPE, SparseMatrix
from ..sparse.ops import transpose
from ..summa.batched import batched_summa3d


def heavy_connectivity_matching(
    incidence: SparseMatrix,
    *,
    nprocs: int = 4,
    layers: int = 1,
    memory_budget: int | None = None,
    min_weight: float = 1.0,
    suite="esc",
    tracker: CommTracker | None = None,
) -> np.ndarray:
    """Greedy heavy-connectivity matching over batched ``A @ Aᵀ``.

    Within each batch the candidate pairs (shared-net counts) are sorted
    by decreasing weight and matched greedily against the global matched
    set, then the batch is discarded — vertices matched in earlier batches
    are unavailable later, exactly the streaming behaviour of the batched
    partitioners the paper cites.

    Returns ``match`` with ``match[v]`` = partner of ``v`` or ``-1``.
    The result is symmetric: ``match[match[v]] == v`` for matched ``v``.
    """
    n = incidence.nrows
    match = np.full(n, -1, dtype=INDEX_DTYPE)

    def harvest(batch: int, spans, batch_matrix: SparseMatrix) -> None:
        rows, cols, vals = batch_matrix.to_coo()
        keep = (rows != cols) & (vals >= min_weight)
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
        # heaviest first; ties broken by (row, col) for determinism
        order = np.lexsort((cols, rows, -vals))
        for t in order.tolist():
            u, v = int(rows[t]), int(cols[t])
            if match[u] == -1 and match[v] == -1:
                match[u] = v
                match[v] = u

    batched_summa3d(
        incidence,
        transpose(incidence),
        nprocs=nprocs,
        layers=layers,
        memory_budget=memory_budget,
        suite=suite,
        keep_output=False,
        on_batch=harvest,
        tracker=tracker,
    )
    return match
