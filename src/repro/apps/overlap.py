"""BELLA/PASTIS-style sequence overlap detection via A·Aᵀ (paper Sec. V-G).

Given an occurrence matrix ``A`` (sequences × k-mers), ``A @ Aᵀ`` counts
the k-mers each pair of sequences shares — the candidate-generation step
of long-read overlappers (BELLA) and many-to-many protein aligners
(PASTIS).  Only pairs above a share threshold matter downstream, so each
batch of the product is filtered and reduced to a pair list immediately,
never materialising the full product: the paper's canonical
memory-constrained usage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simmpi.tracker import CommTracker
from ..sparse.matrix import INDEX_DTYPE, SparseMatrix
from ..sparse.ops import prune_threshold, transpose
from ..summa.batched import batched_summa3d


@dataclass
class OverlapResult:
    """Candidate overlap pairs.

    ``pairs`` has one row ``(i, j, shared)`` per unordered pair ``i < j``
    with at least ``min_shared`` common k-mers, sorted by (i, j).
    ``batches`` is the batch count the run used.
    """

    pairs: np.ndarray
    min_shared: int
    batches: int

    @property
    def count(self) -> int:
        return int(self.pairs.shape[0])

    def as_set(self) -> set[tuple[int, int]]:
        return {(int(i), int(j)) for i, j, _s in self.pairs}


def find_overlaps(
    kmer_mat: SparseMatrix,
    *,
    min_shared: int = 2,
    nprocs: int = 4,
    layers: int = 1,
    memory_budget: int | None = None,
    suite="esc",
    tracker: CommTracker | None = None,
) -> OverlapResult:
    """All sequence pairs sharing at least ``min_shared`` k-mers.

    The product is consumed batch-by-batch (``keep_output=False``): each
    batch's column block is thresholded in the distributed ``postprocess``
    hook, then harvested into the pair list by the driver-side ``on_batch``
    hook and discarded — the full ``A Aᵀ`` never exists at once.
    """
    at = transpose(kmer_mat)
    collected: list[np.ndarray] = []

    def post(batch: int, c0: int, c1: int, block: SparseMatrix) -> SparseMatrix:
        return prune_threshold(block, float(min_shared))

    def harvest(batch: int, spans, batch_matrix: SparseMatrix) -> None:
        rows, cols, vals = batch_matrix.to_coo()
        keep = rows < cols  # upper triangle: unordered pairs, no diagonal
        if keep.any():
            collected.append(
                np.stack(
                    [rows[keep], cols[keep], vals[keep].astype(INDEX_DTYPE)], axis=1
                )
            )

    result = batched_summa3d(
        kmer_mat,
        at,
        nprocs=nprocs,
        layers=layers,
        memory_budget=memory_budget,
        suite=suite,
        keep_output=False,
        postprocess=post,
        on_batch=harvest,
        tracker=tracker,
    )
    if collected:
        pairs = np.concatenate(collected, axis=0)
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        pairs = pairs[order]
    else:
        pairs = np.empty((0, 3), dtype=INDEX_DTYPE)
    return OverlapResult(pairs=pairs, min_shared=min_shared, batches=result.batches)
