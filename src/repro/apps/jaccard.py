"""Distributed Jaccard similarity via batched A·Aᵀ (paper Sec. I, [14]).

Besta et al. formulate all-pairs Jaccard similarity of sets as the
multiplication of a binary occurrence matrix with its transpose:
``shared(i, j) = (A Aᵀ)_ij``, and

    J(i, j) = shared / (|N_i| + |N_j| - shared)

Only the intersection counts need a (memory-bound) SpGEMM; the degrees
are local.  As with overlap detection, each batch of the product is
reduced to qualifying pairs immediately and discarded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simmpi.tracker import CommTracker
from ..sparse.matrix import SparseMatrix, VALUE_DTYPE
from ..sparse.ops import transpose
from ..summa.batched import batched_summa3d


@dataclass
class JaccardResult:
    """All pairs with Jaccard similarity >= the threshold.

    ``pairs`` rows are ``(i, j, similarity)`` with ``i < j``, sorted by
    (i, j); similarities lie in (0, 1].
    """

    pairs: np.ndarray
    threshold: float
    batches: int

    @property
    def count(self) -> int:
        return int(self.pairs.shape[0])

    def as_dict(self) -> dict[tuple[int, int], float]:
        return {
            (int(i), int(j)): float(s) for i, j, s in self.pairs
        }


def jaccard_similarity(
    occurrence: SparseMatrix,
    *,
    threshold: float = 0.5,
    nprocs: int = 4,
    layers: int = 1,
    memory_budget: int | None = None,
    suite="esc",
    tracker: CommTracker | None = None,
) -> JaccardResult:
    """All row pairs of a binary occurrence matrix with ``J >= threshold``.

    The matrix is pattern-interpreted (values ignored).  Runs
    ``A @ Aᵀ`` on BatchedSUMMA3D; each gathered batch is converted to
    similarities against the (precomputed) row degrees and filtered.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    # pattern view: Jaccard is a set similarity
    pattern = SparseMatrix(
        occurrence.nrows, occurrence.ncols, occurrence.indptr,
        occurrence.rowidx, np.ones(occurrence.nnz, dtype=VALUE_DTYPE),
        sorted_within_columns=occurrence.sorted_within_columns, validate=False,
    )
    degrees = np.zeros(pattern.nrows, dtype=VALUE_DTYPE)
    np.add.at(degrees, pattern.rowidx, 1.0)

    collected: list[np.ndarray] = []

    def harvest(batch: int, spans, batch_matrix: SparseMatrix) -> None:
        rows, cols, shared = batch_matrix.to_coo()
        keep = rows < cols
        rows, cols, shared = rows[keep], cols[keep], shared[keep]
        union = degrees[rows] + degrees[cols] - shared
        with np.errstate(invalid="ignore", divide="ignore"):
            sim = np.divide(shared, union, out=np.zeros_like(shared),
                            where=union > 0)
        qual = sim >= threshold
        if qual.any():
            collected.append(
                np.stack(
                    [rows[qual].astype(VALUE_DTYPE),
                     cols[qual].astype(VALUE_DTYPE),
                     sim[qual]],
                    axis=1,
                )
            )

    result = batched_summa3d(
        pattern,
        transpose(pattern),
        nprocs=nprocs,
        layers=layers,
        memory_budget=memory_budget,
        suite=suite,
        keep_output=False,
        on_batch=harvest,
        tracker=tracker,
    )
    if collected:
        pairs = np.concatenate(collected, axis=0)
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        pairs = pairs[order]
    else:
        pairs = np.empty((0, 3), dtype=VALUE_DTYPE)
    return JaccardResult(pairs=pairs, threshold=threshold,
                         batches=result.batches)
