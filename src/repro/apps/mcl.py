"""HipMCL-style Markov clustering on batched SpGEMM (paper Sec. V-C).

MCL iterates *expansion* (matrix squaring), *inflation* (elementwise
power + column normalisation) and *pruning* until the column-stochastic
matrix converges; clusters are then read off the converged pattern.  At
scale the squaring output dwarfs memory, so HipMCL forms ``M²`` in
batches and prunes each batch before the next is computed — exactly the
``postprocess`` hook of :func:`~repro.summa.batched_summa3d`.  Here the
whole per-column part of the iteration (prune → inflate → renormalise)
is fused into that hook, mirroring HipMCL's per-batch pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simmpi.tracker import CommTracker
from ..sparse.construct import eye
from ..sparse.matrix import INDEX_DTYPE, SparseMatrix
from ..sparse.merge import merge_grouped
from ..sparse.ops import (
    column_sums,
    diagonal,
    elementwise_power,
    prune_threshold,
    prune_topk_per_column,
    scale_columns,
)
from ..summa.batched import batched_summa3d
from ..utils.timing import StepTimes


@dataclass
class IterationStats:
    """Per-iteration record (feeds the Fig. 3 bench)."""

    iteration: int
    batches: int
    chaos: float
    nnz: int
    step_times: StepTimes


@dataclass
class MCLResult:
    """Markov clustering outcome.

    ``labels[v]`` is the cluster id of vertex ``v`` (contiguous from 0).
    """

    labels: np.ndarray
    n_clusters: int
    converged: bool
    iterations: list[IterationStats] = field(default_factory=list)

    def clusters(self) -> list[np.ndarray]:
        """Vertex sets per cluster, ordered by cluster id."""
        order = np.argsort(self.labels, kind="stable")
        bounds = np.flatnonzero(np.diff(self.labels[order])) + 1
        return np.split(order, bounds)


def _column_normalise(m: SparseMatrix) -> SparseMatrix:
    sums = column_sums(m)
    inv = np.divide(1.0, sums, out=np.zeros_like(sums), where=sums != 0)
    return scale_columns(m, inv)


def _chaos(m: SparseMatrix) -> float:
    """MCL chaos: max over columns of (max - sum of squares); 0 at a
    doubly-idempotent (converged) matrix."""
    if m.nnz == 0:
        return 0.0
    worst = 0.0
    for j in range(m.ncols):
        lo, hi = int(m.indptr[j]), int(m.indptr[j + 1])
        if lo == hi:
            continue
        col = m.values[lo:hi]
        worst = max(worst, float(col.max() - np.square(col).sum()))
    return worst


def markov_cluster(
    a: SparseMatrix,
    nprocs: int = 4,
    layers: int = 1,
    *,
    inflation: float = 2.0,
    prune_cutoff: float = 1e-4,
    keep_per_column: int = 64,
    memory_budget: int | None = None,
    max_iterations: int = 60,
    chaos_tolerance: float = 1e-3,
    suite="esc",
    tracker: CommTracker | None = None,
    attractor_threshold: float = 0.5,
) -> MCLResult:
    """Cluster an undirected similarity graph with distributed MCL.

    Parameters mirror HipMCL: ``inflation`` sharpens flows (2.0 default),
    ``prune_cutoff`` and ``keep_per_column`` are the per-batch pruning the
    paper's batching enables, ``memory_budget`` (aggregate bytes) lets the
    symbolic step pick the batch count each iteration — pass ``None`` to
    run unbatched.

    Returns a :class:`MCLResult`; ``iterations`` records per-iteration
    batch counts and step breakdowns (the Fig. 3 measurement).
    """
    if a.nrows != a.ncols:
        raise ValueError(f"MCL needs a square matrix, got {a.shape}")
    n = a.nrows
    # ensure self-loops, as MCL requires, then make column-stochastic
    diag_vals = diagonal(a)
    m = a if np.all(diag_vals > 0) else merge_grouped([a, eye(n)])
    m = _column_normalise(m)

    def batch_body(batch: int, c0: int, c1: int, block: SparseMatrix) -> SparseMatrix:
        block = prune_threshold(block, prune_cutoff)
        block = prune_topk_per_column(block, keep_per_column)
        block = elementwise_power(block, inflation)
        return _column_normalise(block)

    stats: list[IterationStats] = []
    converged = False
    for it in range(max_iterations):
        result = batched_summa3d(
            m,
            m,
            nprocs=nprocs,
            layers=layers,
            memory_budget=memory_budget,
            suite=suite,
            postprocess=batch_body,
            tracker=tracker,
        )
        m_next = result.matrix
        chaos = _chaos(m_next)
        stats.append(
            IterationStats(
                iteration=it,
                batches=result.batches,
                chaos=chaos,
                nnz=m_next.nnz,
                step_times=result.step_times,
            )
        )
        m = m_next
        if chaos < chaos_tolerance:
            converged = True
            break

    labels = _interpret(m, attractor_threshold)
    return MCLResult(
        labels=labels,
        n_clusters=int(labels.max()) + 1 if labels.size else 0,
        converged=converged,
        iterations=stats,
    )


def markov_cluster_resident(
    a: SparseMatrix,
    nprocs: int = 4,
    layers: int = 1,
    *,
    inflation: float = 2.0,
    prune_cutoff: float = 1e-4,
    keep_per_column: int = 64,
    memory_budget: int | None = None,
    max_iterations: int = 60,
    chaos_tolerance: float = 1e-3,
    suite="esc",
    tracker=None,
    attractor_threshold: float = 0.5,
) -> MCLResult:
    """Markov clustering with *resident* distributed matrices.

    Functionally identical to :func:`markov_cluster`, but the iterate
    never leaves the grid: each squaring consumes the previous product's
    handles (one redistribution per operand per iteration, CombBLAS-style)
    and the chaos convergence measure is computed inside the distributed
    per-batch hook — no global matrix is assembled until the final
    interpretation step.
    """
    import threading

    from ..dist import DistContext

    if a.nrows != a.ncols:
        raise ValueError(f"MCL needs a square matrix, got {a.shape}")
    n = a.nrows
    diag_vals = diagonal(a)
    m = a if np.all(diag_vals > 0) else merge_grouped([a, eye(n)])
    m = _column_normalise(m)

    ctx = DistContext(nprocs=nprocs, layers=layers, tracker=tracker)
    h_a = ctx.distribute(m, "A")
    h_b = ctx.distribute(m, "B")

    stats: list[IterationStats] = []
    converged = False
    for it in range(max_iterations):
        chaos_box = {"value": 0.0}
        lock = threading.Lock()

        def batch_body(batch: int, c0: int, c1: int,
                       block: SparseMatrix) -> SparseMatrix:
            block = prune_threshold(block, prune_cutoff)
            block = prune_topk_per_column(block, keep_per_column)
            block = elementwise_power(block, inflation)
            block = _column_normalise(block)
            local_chaos = _chaos(block)
            with lock:
                chaos_box["value"] = max(chaos_box["value"], local_chaos)
            return block

        h_c, result = ctx.multiply(
            h_a, h_b,
            batches=None if memory_budget is not None else 1,
            memory_budget=memory_budget,
            suite=suite,
            postprocess=batch_body,
        )
        ctx.free(h_a)
        ctx.free(h_b)
        chaos = chaos_box["value"]
        stats.append(
            IterationStats(
                iteration=it,
                batches=result.batches,
                chaos=chaos,
                nnz=h_c.nnz,
                step_times=result.step_times,
            )
        )
        h_a = ctx.redistribute(h_c, "A")
        h_b = ctx.redistribute(h_c, "B")
        if h_a is not h_c and h_b is not h_c:
            ctx.free(h_c)
        if chaos < chaos_tolerance:
            converged = True
            break

    labels = _interpret(h_a.to_global(), attractor_threshold)
    return MCLResult(
        labels=labels,
        n_clusters=int(labels.max()) + 1 if labels.size else 0,
        converged=converged,
        iterations=stats,
    )


def _interpret(m: SparseMatrix, attractor_threshold: float) -> np.ndarray:
    """Clusters from the converged matrix: union vertices connected by any
    remaining significant flow (the standard MCL interpretation)."""
    n = m.ncols
    parent = np.arange(n, dtype=INDEX_DTYPE)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    cols = m.col_indices()
    # after convergence the matrix is (near-)idempotent: every surviving
    # entry is flow from a column to its attractor, so unioning endpoints
    # of all surviving entries yields the clusters.  ``attractor_threshold``
    # guards against interpreting a *non*-converged matrix too eagerly:
    # entries far below it in unconverged columns are ignored.
    col_max = np.zeros(n)
    np.maximum.at(col_max, cols, m.values)
    significant = m.values >= np.minimum(attractor_threshold, col_max[cols] * 0.5)
    for i, j in zip(m.rowidx[significant].tolist(), cols[significant].tolist()):
        ri, rj = find(int(i)), find(int(j))
        if ri != rj:
            parent[ri] = rj
    roots = np.array([find(v) for v in range(n)], dtype=INDEX_DTYPE)
    _uniq, labels = np.unique(roots, return_inverse=True)
    return labels.astype(INDEX_DTYPE)
