"""ALS-style rating prediction via distributed SDDMM.

Matrix-factorisation recommenders hold two dense factor panels ``U``
(users × rank) and ``V`` (items × rank) and repeatedly need the model's
predictions *only at the observed ratings* — computing the full dense
``U Vᵀ`` is both wasteful and, at scale, impossible.  That is exactly the
sampled dense-dense product ``S ∘ (U Vᵀ)`` the ``kernel="sddmm"`` path
computes: the sparse rating pattern ``S`` is distributed like the output,
both factor panels ride collectives, and only the observed coordinates
are ever materialised.

:func:`predict_ratings` is the one-shot primitive (predictions on the
pattern), :func:`als_residual` the training-loop quantity built from it
(observed minus predicted, plus RMSE) — each one distributed SDDMM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..sparse.matrix import SparseMatrix
from ..summa.batched import batched_summa3d


def _pattern(ratings: SparseMatrix) -> SparseMatrix:
    """The all-ones sampling pattern of the observed ratings."""
    return SparseMatrix(
        ratings.nrows, ratings.ncols, ratings.indptr, ratings.rowidx,
        np.ones(ratings.nnz),
        sorted_within_columns=ratings.sorted_within_columns,
        validate=False,
    )


@dataclass
class AlsResidual:
    """Observed-vs-model comparison at the observed ratings.

    ``predicted`` and ``residual`` share the rating pattern; ``rmse`` is
    the root-mean-square of the residual values (the ALS objective
    without regularisation).
    """

    predicted: SparseMatrix
    residual: SparseMatrix
    rmse: float


def predict_ratings(
    users: np.ndarray,
    items: np.ndarray,
    ratings: SparseMatrix,
    *,
    nprocs: int = 4,
    layers: int = 1,
    batches: int | None = 1,
    memory_budget: int | None = None,
    world: str = "threads",
    transport: str = "auto",
) -> SparseMatrix:
    """Model predictions ``(U Vᵀ) ∘ pattern(R)`` at the observed ratings.

    ``users`` is ``(n_users, rank)``, ``items`` ``(n_items, rank)``;
    ``ratings`` supplies the sampling pattern (its values are ignored
    here — the pattern is normalised to ones so the SDDMM scaling is a
    pure sample).  Returns a sparse matrix on the rating pattern holding
    the model scores.
    """
    u = np.ascontiguousarray(users, dtype=float)
    v = np.ascontiguousarray(items, dtype=float)
    if u.ndim != 2 or v.ndim != 2 or u.shape[1] != v.shape[1]:
        raise ShapeError(
            f"factor panels must share the rank dimension, got "
            f"{u.shape} and {v.shape}"
        )
    if ratings.shape != (u.shape[0], v.shape[0]):
        raise ShapeError(
            f"ratings {ratings.shape} != (users, items) "
            f"{(u.shape[0], v.shape[0])}"
        )
    result = batched_summa3d(
        u,
        np.ascontiguousarray(v.T),
        nprocs=nprocs,
        layers=layers,
        batches=batches,
        memory_budget=memory_budget,
        kernel="sddmm",
        sample=_pattern(ratings),
        world=world,
        transport=transport,
    )
    return result.matrix


def als_residual(
    users: np.ndarray,
    items: np.ndarray,
    ratings: SparseMatrix,
    **kwargs,
) -> AlsResidual:
    """One ALS evaluation step: predictions, residual and RMSE on the
    observed ratings (keyword arguments forward to
    :func:`predict_ratings`)."""
    # canonicalise the ratings so their entry order matches the gathered
    # SDDMM output (both column-major sorted), making the residual a
    # plain value subtraction over identical patterns
    ratings = SparseMatrix.from_coo(
        ratings.nrows, ratings.ncols, ratings.rowidx, ratings.col_indices(),
        ratings.values,
    )
    predicted = predict_ratings(users, items, ratings, **kwargs)
    residual = SparseMatrix(
        ratings.nrows, ratings.ncols, predicted.indptr, predicted.rowidx,
        ratings.values - predicted.values,
        sorted_within_columns=predicted.sorted_within_columns,
        validate=False,
    )
    rmse = (
        float(np.sqrt(np.mean(residual.values**2)))
        if residual.nnz
        else 0.0
    )
    return AlsResidual(predicted=predicted, residual=residual, rmse=rmse)
