"""GNN feature propagation: iterated distributed SpMM (SGC/LightGCN-style).

Propagation-only graph networks precompute ``X_k = Â^k X`` — ``k`` hops of
feature smoothing over the normalised adjacency — and fit a plain linear
model on the result.  The expensive part is exactly the distributed
sparse-times-dense-panel product this library's ``kernel="spmm"`` path
provides: the adjacency is distributed once as a resident ``"A"`` handle,
and each hop is one :meth:`~repro.dist.DistContext.spmm` with the dense
feature panel riding collectives between ranks.

This is the paper family's dense-kernel counterpart of HipMCL: where MCL
iterates *sparse* squaring, propagation iterates *dense-panel* products
against a fixed sparse operand, so the batching and communication-avoiding
machinery is exercised with a dense output that cannot be compressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dist import DistContext
from ..errors import ShapeError
from ..sparse.matrix import SparseMatrix
from ..sparse.ops import scale_rows


@dataclass
class PropagateResult:
    """Outcome of :func:`gnn_propagate`.

    ``features`` is the final propagated panel ``Â^k X``; ``hops`` holds
    every intermediate panel when ``keep_history`` was requested (SGC
    concatenates them).  ``per_hop`` carries each hop's
    :class:`~repro.summa.SummaResult` for metering.
    """

    features: np.ndarray
    hops: list = field(default_factory=list)
    per_hop: list = field(default_factory=list)


def normalize_adjacency(adjacency: SparseMatrix, *, add_self_loops: bool = True) -> SparseMatrix:
    """Row-normalised propagation operator ``Â = D^-1 (A + I)``.

    Row-stochastic mean aggregation: each vertex averages its (self-
    inclusive) neighbourhood.  Vertices without edges keep zero rows, so
    their features decay to zero rather than propagate garbage.
    """
    if adjacency.nrows != adjacency.ncols:
        raise ShapeError(f"adjacency must be square, got {adjacency.shape}")
    a = adjacency
    if add_self_loops:
        n = a.nrows
        diag = np.arange(n)
        a = SparseMatrix.from_coo(
            n, n,
            np.concatenate([a.rowidx, diag]),
            np.concatenate([a.col_indices(), diag]),
            np.concatenate([a.values, np.ones(n)]),
        )
    # row sums = column sums of the transpose; avoid materialising Aᵀ by
    # accumulating over the row indices directly
    deg = np.zeros(a.nrows)
    np.add.at(deg, a.rowidx, a.values)
    inv = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg != 0)
    return scale_rows(a, inv)


def gnn_propagate(
    adjacency: SparseMatrix,
    features: np.ndarray,
    *,
    hops: int = 2,
    nprocs: int = 4,
    layers: int = 1,
    batches: int | None = 1,
    memory_budget: int | None = None,
    normalize: bool = True,
    keep_history: bool = False,
    world: str = "threads",
    transport: str = "auto",
    context: DistContext | None = None,
) -> PropagateResult:
    """Propagate a feature panel ``k`` hops over a graph: ``Â^k X``.

    The adjacency is distributed once (one resident handle on the grid)
    and each hop runs one distributed SpMM; the panel returns to the
    driver between hops, exactly the bulk-synchronous pattern of
    precomputed-propagation GNNs.  Runs under any execution world —
    ``world="processes"`` with ``transport="shm"`` gives true multicore
    parallelism with bit-identical panels.
    """
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    x = np.ascontiguousarray(features, dtype=float)
    if x.ndim == 1:
        x = x[:, None]
    if x.shape[0] != adjacency.nrows:
        raise ShapeError(
            f"features for {adjacency.nrows} vertices, got panel {x.shape}"
        )
    operator = (
        normalize_adjacency(adjacency) if normalize else adjacency
    )
    ctx = context if context is not None else DistContext(
        nprocs=nprocs, layers=layers, world=world, transport=transport
    )
    ha = ctx.distribute(operator, layout="A")
    result = PropagateResult(features=x)
    try:
        for _ in range(hops):
            x, hop_result = ctx.spmm(
                ha, x, batches=batches, memory_budget=memory_budget
            )
            result.per_hop.append(hop_result)
            if keep_history:
                result.hops.append(x)
    finally:
        ctx.free(ha)
    result.features = x
    return result
