"""PageRank on the sparse substrate.

Included to round out the graph-kernel family: power iteration on the
column-stochastic transition matrix with damping and dangling-mass
redistribution.  Each step is one :func:`~repro.sparse.ops.spmv`; the
module exists mainly as a realistic consumer of the substrate's
column-normalisation and reduction helpers, with networkx as the test
oracle.
"""

from __future__ import annotations

import numpy as np

from ..sparse.matrix import SparseMatrix, VALUE_DTYPE
from ..sparse.ops import column_sums, scale_columns, spmv


def pagerank(
    adjacency: SparseMatrix,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> np.ndarray:
    """PageRank scores of a (directed) graph given its adjacency matrix.

    ``adjacency[i, j] != 0`` means an edge ``j -> i`` contributes rank
    from ``j`` to ``i`` (column-stochastic convention).  Dangling columns
    (no out-edges) redistribute their mass uniformly.  Returns scores
    summing to 1.
    """
    if adjacency.nrows != adjacency.ncols:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    n = adjacency.nrows
    if n == 0:
        return np.empty(0, dtype=VALUE_DTYPE)
    out_mass = column_sums(adjacency)
    dangling = out_mass == 0
    inv = np.divide(1.0, out_mass, out=np.zeros_like(out_mass),
                    where=~dangling)
    transition = scale_columns(adjacency, inv)

    rank = np.full(n, 1.0 / n, dtype=VALUE_DTYPE)
    teleport = (1.0 - damping) / n
    for _ in range(max_iterations):
        dangling_mass = rank[dangling].sum() / n
        nxt = damping * (spmv(transition, rank) + dangling_mass) + teleport
        if np.abs(nxt - rank).sum() < tolerance:
            rank = nxt
            break
        rank = nxt
    return rank / rank.sum()
