"""Connected components via boolean matrix closure (OR_AND semiring).

A demonstration of the paper's semiring generality (Sec. II-A) as a full
application: repeated squaring of ``(A + I)`` under (OR, AND) converges to
the transitive closure's reachability pattern in ⌈log₂ n⌉ distributed
multiplications; components are the equivalence classes of mutual
reachability (for undirected graphs, of reachability).

The closure matrix is dense within components, so for graphs with giant
components this is a genuinely memory-hungry SpGEMM — squarely in the
paper's batching regime, which is why the multiplication runs on
BatchedSUMMA3D with an optional memory budget.
"""

from __future__ import annotations

import numpy as np

from ..simmpi.tracker import CommTracker
from ..sparse.construct import eye
from ..sparse.matrix import INDEX_DTYPE, SparseMatrix, VALUE_DTYPE
from ..sparse.merge import merge_grouped
from ..sparse.semiring import OR_AND
from ..summa.batched import batched_summa3d


def connected_components(
    adjacency: SparseMatrix,
    *,
    nprocs: int = 4,
    layers: int = 1,
    memory_budget: int | None = None,
    tracker: CommTracker | None = None,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Component labels of an undirected graph, via semiring closure.

    Returns ``labels`` with ``labels[v]`` the (contiguous, 0-based)
    component id of vertex ``v``.  Edge weights are ignored.
    """
    if adjacency.nrows != adjacency.ncols:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    n = adjacency.nrows
    if n == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    # boolean pattern with self-loops: reach(v, v) always holds
    pattern = SparseMatrix(
        adjacency.nrows, adjacency.ncols, adjacency.indptr, adjacency.rowidx,
        np.ones(adjacency.nnz, dtype=VALUE_DTYPE),
        sorted_within_columns=adjacency.sorted_within_columns, validate=False,
    )
    reach = merge_grouped([pattern, eye(n)], semiring=OR_AND)
    rounds = max_rounds if max_rounds is not None else int(np.ceil(np.log2(max(n, 2))))
    for _ in range(rounds):
        result = batched_summa3d(
            reach, reach,
            nprocs=nprocs,
            layers=layers,
            memory_budget=memory_budget,
            semiring=OR_AND,
            tracker=tracker,
        )
        nxt = result.matrix
        if nxt.nnz == reach.nnz:
            reach = nxt
            break  # closure reached
        reach = nxt
    # label each vertex by the smallest vertex it reaches (deterministic)
    labels_raw = np.full(n, n, dtype=INDEX_DTYPE)
    np.minimum.at(labels_raw, reach.col_indices(), reach.rowidx)
    _uniq, labels = np.unique(labels_raw, return_inverse=True)
    return labels.astype(INDEX_DTYPE)
