"""Applications built on memory-constrained SpGEMM (paper Secs. I, V-C, V-G).

Each application consumes the product *in batches* — the access pattern
that makes BatchedSUMMA3D sufficient even when the full product cannot
exist in memory:

* :mod:`mcl` — HipMCL-style distributed Markov clustering (iterated pruned
  squaring);
* :mod:`triangles` — triangle counting via the masked ``L @ U`` product;
* :mod:`overlap` — BELLA/PASTIS-style shared-k-mer overlap detection via
  ``A @ Aᵀ``;
* :mod:`matching` — Zoltan-style heavy-connectivity matching for
  hypergraph coarsening via batched ``A @ Aᵀ``;
* :mod:`jaccard` — communication-efficient all-pairs Jaccard similarity
  ([14] in the paper);
* :mod:`gnn_propagate` — SGC-style k-hop feature propagation, iterated
  distributed SpMM against a resident normalised adjacency;
* :mod:`als` — ALS-style rating prediction, distributed SDDMM on the
  observed-rating pattern.
"""

from .als import AlsResidual, als_residual, predict_ratings
from .components import connected_components
from .gnn_propagate import PropagateResult, gnn_propagate, normalize_adjacency
from .jaccard import JaccardResult, jaccard_similarity
from .mcl import MCLResult, markov_cluster, markov_cluster_resident
from .triangles import count_triangles, clustering_coefficients
from .overlap import OverlapResult, find_overlaps
from .matching import heavy_connectivity_matching
from .pagerank import pagerank

__all__ = [
    "markov_cluster",
    "markov_cluster_resident",
    "MCLResult",
    "count_triangles",
    "clustering_coefficients",
    "find_overlaps",
    "OverlapResult",
    "heavy_connectivity_matching",
    "jaccard_similarity",
    "JaccardResult",
    "connected_components",
    "pagerank",
    "gnn_propagate",
    "normalize_adjacency",
    "PropagateResult",
    "predict_ratings",
    "als_residual",
    "AlsResidual",
]
