"""The SPMD body shared by SUMMA2D / SUMMA3D / BatchedSUMMA3D.

One rank-program implements Alg. 4 of the paper (with Alg. 1 and Alg. 2 as
inner structure); the public wrappers fix ``layers`` and ``batches`` to
recover the simpler algorithms:

=====================  ========  =========
algorithm              layers    batches
=====================  ========  =========
SUMMA2D (Alg. 1)        1         1
SUMMA3D (Alg. 2)        l         1
BatchedSUMMA3D (Alg.4)  l         b (symbolic or given)
=====================  ========  =========

Step labels match the paper's breakdowns exactly: ``Symbolic``,
``A-Broadcast``, ``B-Broadcast``, ``Local-Multiply``, ``Merge-Layer``,
``AllToAll-Fiber``, ``Merge-Fiber`` — every figure in the evaluation
section is a stack of these.
"""

from __future__ import annotations

import time

import numpy as np

from ..comm import get_backend
from ..errors import MemoryBudgetError
from ..grid.distribution import (
    batch_layer_blocks,
    batch_local_columns,
    c_tile_columns,
    extract_a_tile,
    extract_b_tile,
    gather_tiles,
)
from ..grid.grid3d import GridComms, ProcGrid3D
from ..simmpi.comm import SimComm
from ..sparse.matrix import BYTES_PER_NONZERO, SparseMatrix
from ..sparse.ops import col_select, col_slice, split_bounds, submatrix
from ..sparse.semiring import get_semiring
from ..sparse.spgemm.suite import get_suite
from ..sparse.spgemm.symbolic import symbolic_nnz
from ..utils.timing import StepTimes

STEP_SYMBOLIC = "Symbolic"
STEP_COMM_PLAN = "Comm-Plan"
STEP_A_BCAST = "A-Broadcast"
STEP_B_BCAST = "B-Broadcast"
STEP_LOCAL_MULTIPLY = "Local-Multiply"
STEP_MERGE_LAYER = "Merge-Layer"
STEP_ALLTOALL_FIBER = "AllToAll-Fiber"
STEP_MERGE_FIBER = "Merge-Fiber"
STEP_POSTPROCESS = "Batch-Postprocess"

ALL_STEPS = (
    STEP_SYMBOLIC,
    STEP_A_BCAST,
    STEP_B_BCAST,
    STEP_LOCAL_MULTIPLY,
    STEP_MERGE_LAYER,
    STEP_ALLTOALL_FIBER,
    STEP_MERGE_FIBER,
)


class TileSource:
    """An operand whose tiles are already distributed.

    The SPMD core normally extracts each rank's tile from a global matrix
    (the simulation stand-in for pre-distributed data).  A ``TileSource``
    instead hands the core per-rank tiles directly — the mechanism behind
    :class:`repro.dist.DistContext`, where matrices persist across
    multiplications without re-extraction.
    """

    __slots__ = ("nrows", "ncols", "_getter")

    def __init__(self, nrows: int, ncols: int, getter) -> None:
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self._getter = getter

    def tile(self, rank: int) -> SparseMatrix:
        return self._getter(rank)


def _operand_tile(operand, grid: ProcGrid3D, rank: int, which: str) -> SparseMatrix:
    if isinstance(operand, TileSource):
        return operand.tile(rank)
    if which == "A":
        return extract_a_tile(operand, grid, rank)
    return extract_b_tile(operand, grid, rank)


class _MemoryMeter:
    """Per-rank high-water memory accounting at r = 24 bytes/nonzero."""

    __slots__ = ("base", "transient", "held", "high_water")

    def __init__(self, base_bytes: int) -> None:
        self.base = int(base_bytes)   # input tiles, live for the whole run
        self.transient = 0            # stage partials / fiber pieces
        self.held = 0                 # accumulated output pieces
        self.high_water = int(base_bytes)

    def snapshot(self) -> None:
        total = self.base + self.transient + self.held
        if total > self.high_water:
            self.high_water = total


def spmd_symbolic3d(
    comms: GridComms,
    a: SparseMatrix,
    b: SparseMatrix,
    memory_budget: int,
    bytes_per_nonzero: int,
    times: StepTimes,
) -> dict:
    """Alg. 3 as seen by one rank: returns the batch count and statistics.

    ``memory_budget`` is the aggregate memory ``M`` over all processes;
    Alg. 3 line 12 works with the per-process share ``M / p``.
    """
    grid = comms.grid
    a_tile = _operand_tile(a, grid, comms.world.rank, "A")
    b_tile = _operand_tile(b, grid, comms.world.rank, "B")
    t0 = time.perf_counter()
    local_unmerged_nnz = 0
    with comms.world.step(STEP_SYMBOLIC):
        for s in range(grid.stages):
            a_recv = comms.row.bcast(a_tile, root=s)
            b_recv = comms.col.bcast(b_tile, root=s)
            # LocalSymbolic: nnz of this stage's (internally merged) product;
            # summed over stages it is the unmerged storage of Alg. 1 line 7.
            local_unmerged_nnz += symbolic_nnz(a_recv, b_recv)
        max_nnz_c = comms.world.allreduce(local_unmerged_nnz, op="max")
        max_nnz_a = comms.world.allreduce(a_tile.nnz, op="max")
        max_nnz_b = comms.world.allreduce(b_tile.nnz, op="max")
    times.add(STEP_SYMBOLIC, time.perf_counter() - t0)

    r = bytes_per_nonzero
    per_proc = memory_budget / grid.nprocs
    denom = per_proc - r * (max_nnz_a + max_nnz_b)
    if denom <= 0:
        raise MemoryBudgetError(
            f"inputs alone exceed the per-process budget: M/p = {per_proc:.0f} B "
            f"<= r*(maxnnzA + maxnnzB) = {r * (max_nnz_a + max_nnz_b)} B"
        )
    batches = max(1, int(np.ceil(r * max_nnz_c / denom)))
    batches = min(batches, max(1, b.ncols))
    return {
        "batches": batches,
        "max_nnz_c": int(max_nnz_c),
        "max_nnz_a": int(max_nnz_a),
        "max_nnz_b": int(max_nnz_b),
    }


def spmd_batched_summa3d(
    comm: SimComm,
    a: SparseMatrix,
    b: SparseMatrix,
    grid: ProcGrid3D,
    *,
    batches: int | None,
    memory_budget: int | None,
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
    suite="esc",
    semiring="plus_times",
    keep_pieces: bool = True,
    postprocess=None,
    batch_scheme: str = "block-cyclic",
    merge_policy: str = "deferred",
    comm_backend="dense",
) -> dict:
    """Alg. 4 (BatchedSUMMA3D) as executed by one rank.

    Parameters
    ----------
    comm:
        This rank's world communicator (size must equal ``grid.nprocs``).
    a, b:
        The *global* input matrices; each rank extracts its own tile —
        the simulation stand-in for data that is already distributed.
    batches:
        Batch count; ``None`` runs the symbolic step (requires
        ``memory_budget``).
    postprocess:
        Optional ``fn(batch, col_start, col_stop, block) -> SparseMatrix``
        applied per batch to the complete column block (all ``nrows``
        rows), distributed along the process-column communicator.  This is
        the hook HipMCL-style pruning uses (paper Sec. V-C).
    batch_scheme:
        ``"block-cyclic"`` (paper Fig. 1(i), balances Merge-Fiber) or
        ``"block"`` (contiguous; the load-imbalance ablation).
    merge_policy:
        ``"deferred"`` merges all stage partials once per batch (the
        paper's choice, Alg. 1 line 8); ``"incremental"`` folds each stage
        into the running result immediately — lower transient memory, more
        merge work in the worst case (Sec. III-A discussion).
    comm_backend:
        ``"dense"`` (whole-tile collectives, the paper's Table II) or
        ``"sparse"`` (SpComm3D-style sparsity-aware point-to-point; see
        :mod:`repro.comm`), or a :class:`~repro.comm.CommBackend`
        class/instance.  Both produce bit-identical results.  ``"auto"``
        must be resolved by the driver before this point.

    Returns (per rank)
    ------------------
    dict with ``pieces`` (list of ``(batch, r0, c0, tile)``), ``times``,
    ``batches``, ``max_local_bytes`` and symbolic statistics when run.
    """
    if merge_policy not in ("deferred", "incremental"):
        raise ValueError(
            f"unknown merge policy {merge_policy!r}; "
            "expected 'deferred' or 'incremental'"
        )
    suite = get_suite(suite)
    semiring = get_semiring(semiring)
    backend = get_backend(comm_backend)
    comms = GridComms.build(comm, grid)
    i, j, k = comms.i, comms.j, comms.k
    times = StepTimes()
    info: dict = {}

    if batches is None:
        if memory_budget is None:
            batches = 1
        else:
            sym = spmd_symbolic3d(
                comms, a, b, memory_budget, bytes_per_nonzero, times
            )
            batches = sym["batches"]
            info["symbolic"] = sym

    a_tile = _operand_tile(a, grid, comm.rank, "A")
    b_tile = _operand_tile(b, grid, comm.rank, "B")
    if suite.requires_sorted_inputs:
        a_tile = a_tile.sort_indices()
        b_tile = b_tile.sort_indices()
    meter = _MemoryMeter(a_tile.nbytes + b_tile.nbytes)

    # geometry shared by every batch
    row_bounds = split_bounds(a.nrows, grid.pr)
    r0 = int(row_bounds[i])
    col_super = split_bounds(b.ncols, grid.pc)
    super_w = int(col_super[j + 1]) - int(col_super[j])

    # ColSplit of local B into b batches (Alg. 4 line 4)
    pieces: list[tuple[int, int, int, SparseMatrix]] = []
    fiber_piece_nnz: list[int] = []  # per-batch received fiber volume
    for batch in range(batches):
        local_cols = batch_local_columns(
            super_w, batches, grid.layers, batch, batch_scheme
        )
        b_batch = col_select(b_tile, local_cols)

        # backend prologue: the sparse backend exchanges occupancy masks
        # and derives its CommPlan here; the dense backend is a no-op.
        t0 = time.perf_counter()
        with comms.world.step(STEP_COMM_PLAN):
            backend.prepare_batch(comms, a_tile, b_batch)
        times.add(STEP_COMM_PLAN, time.perf_counter() - t0)

        # ---- SUMMA2D within the layer (Alg. 1) ----
        partials: list[SparseMatrix] = []
        for s in range(grid.stages):
            t0 = time.perf_counter()
            with comms.row.step(STEP_A_BCAST):
                a_recv = backend.bcast_a(comms, a_tile, s)
            times.add(STEP_A_BCAST, time.perf_counter() - t0)

            t0 = time.perf_counter()
            with comms.col.step(STEP_B_BCAST):
                b_recv = backend.bcast_b(comms, b_batch, s)
            times.add(STEP_B_BCAST, time.perf_counter() - t0)

            t0 = time.perf_counter()
            stage_out = suite.local_multiply(a_recv, b_recv, semiring)
            times.add(STEP_LOCAL_MULTIPLY, time.perf_counter() - t0)

            if merge_policy == "incremental" and partials:
                t0 = time.perf_counter()
                partials = [suite.merge([partials[0], stage_out], semiring)]
                times.add(STEP_MERGE_LAYER, time.perf_counter() - t0)
            else:
                partials.append(stage_out)

            meter.transient = (
                sum(p.nbytes for p in partials) + a_recv.nbytes + b_recv.nbytes
            )
            meter.snapshot()

        t0 = time.perf_counter()
        d_local = suite.merge(partials, semiring) if len(partials) > 1 else partials[0]
        times.add(STEP_MERGE_LAYER, time.perf_counter() - t0)
        partials = []
        meter.transient = d_local.nbytes
        meter.snapshot()

        # ---- fiber exchange and merge (Alg. 2 lines 4-6) ----
        if grid.layers > 1:
            widths = [
                e - s_ for s_, e in batch_layer_blocks(
                    super_w, batches, grid.layers, batch, batch_scheme
                )
            ]
            offsets = np.concatenate(([0], np.cumsum(widths)))
            sendlist = [
                col_slice(d_local, int(offsets[t]), int(offsets[t + 1]))
                for t in range(grid.layers)
            ]
            t0 = time.perf_counter()
            with comms.fiber.step(STEP_ALLTOALL_FIBER):
                received = backend.fiber_exchange(comms, sendlist)
            times.add(STEP_ALLTOALL_FIBER, time.perf_counter() - t0)
            fiber_piece_nnz.append(sum(p.nnz for p in received))
            meter.transient = d_local.nbytes + sum(p.nbytes for p in received)
            meter.snapshot()

            t0 = time.perf_counter()
            c_tile = suite.merge(received, semiring) if len(received) > 1 else received[0]
            # the final output is kept sorted within columns (Sec. IV-D)
            c_tile = c_tile.sort_indices()
            times.add(STEP_MERGE_FIBER, time.perf_counter() - t0)
        else:
            c_tile = d_local.sort_indices()
        meter.transient = c_tile.nbytes
        meter.snapshot()

        c0, c1 = c_tile_columns(
            grid, b.ncols, batches, batch, j, k, batch_scheme
        )
        assert c1 - c0 == c_tile.ncols

        if postprocess is not None:
            t0 = time.perf_counter()
            with comms.col.step(STEP_POSTPROCESS):
                gathered = comms.col.allgather(c_tile)
            block = gather_tiles(
                a.nrows,
                c1 - c0,
                (
                    (int(row_bounds[ii]), 0, tile)
                    for ii, tile in enumerate(gathered)
                ),
            )
            block = postprocess(batch, c0, c1, block)
            c_tile = submatrix(block, r0, int(row_bounds[i + 1]), 0, c1 - c0)
            times.add(STEP_POSTPROCESS, time.perf_counter() - t0)

        if keep_pieces:
            pieces.append((batch, r0, c0, c_tile))
            meter.held += c_tile.nbytes
        meter.transient = 0
        meter.snapshot()

    info["comm_backend"] = backend.name
    return {
        "pieces": pieces,
        "times": times,
        "batches": batches,
        "max_local_bytes": meter.high_water,
        "fiber_piece_nnz": fiber_piece_nnz,
        "info": info,
    }
