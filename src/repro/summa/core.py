"""The SPMD body shared by SUMMA2D / SUMMA3D / BatchedSUMMA3D.

One rank-program implements Alg. 4 of the paper (with Alg. 1 and Alg. 2 as
inner structure); the public wrappers fix ``layers`` and ``batches`` to
recover the simpler algorithms:

=====================  ========  =========
algorithm              layers    batches
=====================  ========  =========
SUMMA2D (Alg. 1)        1         1
SUMMA3D (Alg. 2)        l         1
BatchedSUMMA3D (Alg.4)  l         b (symbolic or given)
=====================  ========  =========

The body itself is *compiled*, not hand-written: this module assembles
per-rank state, hands the algorithm's shape to
:func:`repro.summa.exec.compile_batched_summa3d`, and runs the resulting
:class:`~repro.summa.exec.ExecutionPlan` under the executor selected by
the ``overlap=`` knob (``"off"`` — sequential, today's exact behaviour;
``"depth1"`` — broadcasts of stage ``s+1`` prefetched behind stage
``s``'s multiply).  All timing flows through
:class:`~repro.summa.trace.Tracer` spans — there is no inline clock
bookkeeping here — and still reduces to the classic
:class:`~repro.utils.timing.StepTimes` breakdown.

Step labels match the paper's breakdowns exactly: ``Symbolic``,
``A-Broadcast``, ``B-Broadcast``, ``Local-Multiply``, ``Merge-Layer``,
``AllToAll-Fiber``, ``Merge-Fiber`` — every figure in the evaluation
section is a stack of these.
"""

from __future__ import annotations

from ..comm import get_backend
from ..kernels.base import TileSource, get_kernel, resolve_tile
from ..mem import ENFORCE_MODES, MemoryLedger, nbytes_of
from ..model.memory import batches_for_budget
from ..grid.grid3d import GridComms, ProcGrid3D
from ..resilience import RetryPolicy
from ..simmpi.comm import SimComm
from ..sparse.matrix import BYTES_PER_NONZERO, SparseMatrix
from ..sparse.ops import split_bounds
from ..sparse.semiring import get_semiring
from ..sparse.spgemm.suite import get_suite
from ..sparse.spgemm.symbolic import symbolic_nnz
from .exec import ExecState, compile_batched_summa3d, get_executor
from .trace import (
    ALL_STEPS,
    STEP_A_BCAST,
    STEP_ALLTOALL_FIBER,
    STEP_B_BCAST,
    STEP_COMM_PLAN,
    STEP_LOCAL_MULTIPLY,
    STEP_MERGE_FIBER,
    STEP_MERGE_LAYER,
    STEP_POSTPROCESS,
    STEP_SYMBOLIC,
    Tracer,
)

__all__ = [
    "ALL_STEPS",
    "STEP_SYMBOLIC", "STEP_COMM_PLAN", "STEP_A_BCAST", "STEP_B_BCAST",
    "STEP_LOCAL_MULTIPLY", "STEP_MERGE_LAYER", "STEP_ALLTOALL_FIBER",
    "STEP_MERGE_FIBER", "STEP_POSTPROCESS",
    "TileSource", "spmd_symbolic3d", "spmd_batched_summa3d",
]


# The operand protocol (TileSource + per-layout tile resolution) lives
# in the kernel layer now; ``TileSource`` is re-exported from here for
# compatibility and ``_operand_tile`` is the sparse-kind specialisation
# the symbolic pass (and older call sites) use.


def _operand_tile(operand, grid: ProcGrid3D, rank: int, which: str) -> SparseMatrix:
    return resolve_tile(operand, grid, rank, which, "sparse")


def spmd_symbolic3d(
    comms: GridComms,
    a: SparseMatrix,
    b: SparseMatrix,
    memory_budget: int,
    bytes_per_nonzero: int,
    tracer: Tracer,
    retry: "RetryPolicy | None" = None,
) -> dict:
    """Alg. 3 as seen by one rank: returns the batch count and statistics.

    ``memory_budget`` is the aggregate memory ``M`` over all processes;
    Alg. 3 line 12 works with the per-process share ``M / p``.  ``retry``
    optionally re-runs transiently-failed symbolic collectives (the
    structure pass is as exposed to flaky messages as the numeric one).
    """
    grid = comms.grid
    a_tile = _operand_tile(a, grid, comms.world.rank, "A")
    b_tile = _operand_tile(b, grid, comms.world.rank, "B")

    def call(comm, op, fn):
        return fn() if retry is None else retry.call(fn, comm=comm, op=op)

    local_unmerged_nnz = 0
    with tracer.span(STEP_SYMBOLIC), comms.world.step(STEP_SYMBOLIC):
        for s in range(grid.stages):
            a_recv = call(
                comms.row, "bcast", lambda s=s: comms.row.bcast(a_tile, root=s)
            )
            b_recv = call(
                comms.col, "bcast", lambda s=s: comms.col.bcast(b_tile, root=s)
            )
            # LocalSymbolic: nnz of this stage's (internally merged) product;
            # summed over stages it is the unmerged storage of Alg. 1 line 7.
            local_unmerged_nnz += symbolic_nnz(a_recv, b_recv)
        max_nnz_c = call(
            comms.world, "allreduce",
            lambda: comms.world.allreduce(local_unmerged_nnz, op="max"),
        )
        max_nnz_a = call(
            comms.world, "allreduce",
            lambda: comms.world.allreduce(a_tile.nnz, op="max"),
        )
        max_nnz_b = call(
            comms.world, "allreduce",
            lambda: comms.world.allreduce(b_tile.nnz, op="max"),
        )

    # Alg. 3 line 12 lives in the memory model (the same closed form the
    # driver compares measured high-water marks against).
    batches = batches_for_budget(
        memory_budget=memory_budget,
        nprocs=grid.nprocs,
        max_nnz_a=max_nnz_a,
        max_nnz_b=max_nnz_b,
        max_nnz_c=max_nnz_c,
        bytes_per_nonzero=bytes_per_nonzero,
        max_batches=b.ncols,
    )
    return {
        "batches": batches,
        "max_nnz_c": int(max_nnz_c),
        "max_nnz_a": int(max_nnz_a),
        "max_nnz_b": int(max_nnz_b),
    }


def spmd_batched_summa3d(
    comm: SimComm,
    a: SparseMatrix,
    b: SparseMatrix,
    grid: ProcGrid3D,
    *,
    batches: int | None,
    memory_budget: int | None,
    memory_budget_per_rank: int | None = None,
    enforce: str = "off",
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
    suite="esc",
    semiring="plus_times",
    keep_pieces: bool = True,
    postprocess=None,
    batch_scheme: str = "block-cyclic",
    merge_policy: str = "deferred",
    comm_backend="dense",
    overlap: str = "off",
    piece_sink=None,
    max_retries: int | None = 3,
    start_batch: int = 0,
    batch_barrier: bool = False,
    kernel="spgemm",
    aux=None,
    replan=None,
) -> dict:
    """Alg. 4 (BatchedSUMMA3D) as executed by one rank.

    Parameters
    ----------
    comm:
        This rank's world communicator (size must equal ``grid.nprocs``).
    a, b:
        The *global* input matrices; each rank extracts its own tile —
        the simulation stand-in for data that is already distributed.
    batches:
        Batch count; ``None`` runs the symbolic step (requires
        ``memory_budget``).
    memory_budget_per_rank, enforce:
        Per-rank byte limit for the rank's :class:`~repro.mem.MemoryLedger`
        and what to do when the measured high-water mark exceeds it:
        ``"off"`` (account only), ``"warn"`` (record in the memory
        report), ``"strict"`` (raise a deterministic
        :class:`~repro.errors.MemoryBudgetExceededError` at the stage
        boundary that exceeds it — the driver's graceful-degradation
        path catches it and re-batches).  The driver resolves the
        aggregate ↔ per-rank unit conversion before this point
        (:func:`repro.mem.resolve_budget`).
    postprocess:
        Optional ``fn(batch, col_start, col_stop, block) -> SparseMatrix``
        applied per batch to the complete column block (all ``nrows``
        rows), distributed along the process-column communicator.  This is
        the hook HipMCL-style pruning uses (paper Sec. V-C).
    batch_scheme:
        ``"block-cyclic"`` (paper Fig. 1(i), balances Merge-Fiber) or
        ``"block"`` (contiguous; the load-imbalance ablation).
    merge_policy:
        ``"deferred"`` merges all stage partials once per batch (the
        paper's choice, Alg. 1 line 8); ``"incremental"`` folds each stage
        into the running result immediately — lower transient memory, more
        merge work in the worst case (Sec. III-A discussion).
    comm_backend:
        ``"dense"`` (whole-tile collectives, the paper's Table II) or
        ``"sparse"`` (SpComm3D-style sparsity-aware point-to-point; see
        :mod:`repro.comm`), or a :class:`~repro.comm.CommBackend`
        class/instance.  Both produce bit-identical results.  ``"auto"``
        must be resolved by the driver before this point.
    overlap:
        ``"off"`` runs the :class:`~repro.summa.exec.SequentialExecutor`
        (the strict stage order); ``"depth1"`` runs the
        :class:`~repro.summa.exec.PipelinedExecutor`, which prefetches
        stage ``s+1``'s operands behind stage ``s``'s local multiply.
        Bit-identical products either way.
    piece_sink:
        Optional ``fn(batch, r0, c0, tile)`` that receives each finished
        output piece *instead of* it being held in ``pieces`` — the
        memory-constrained streaming path (spilling / per-batch hooks
        with ``keep_output=False``), where held bytes must not grow with
        the batch count.
    max_retries:
        Bound on per-attempt retries of transiently-failed communication
        (a :class:`~repro.resilience.RetryPolicy` attached to the
        backend); ``None`` disables retrying entirely.
    start_batch:
        First batch to execute (resume support): the plan covers batches
        ``start_batch .. batches-1``, and batches below ``start_batch``
        are assumed durably checkpointed by the driver.
    batch_barrier:
        Synchronise all ranks at each batch boundary (see
        :func:`~repro.summa.exec.compile_batched_summa3d`) — the
        checkpointing durability guarantee.
    kernel:
        The :class:`~repro.kernels.LocalKernel` (name or instance)
        deciding what a stage computes — ``"spgemm"`` (default,
        bit-identical to the pre-seam behaviour), ``"spmm"``,
        ``"sddmm"`` or ``"masked_spgemm"``.  The kernel declares operand
        kinds (dense operands ride collectives on both comm backends),
        the merge rule and the memory footprint.
    aux:
        The kernel's third operand, distributed like the output: the
        sampling pattern for ``sddmm``, the mask for ``masked_spgemm``.
        Must be the *global* matrix; each rank cuts its own blocks.
    replan:
        Optional :class:`~repro.plan.ReplanPolicy`.  When set, a
        ``replan-check`` op runs after every non-final batch; the
        :class:`~repro.plan.Replanner` built from the policy may raise a
        collective :class:`~repro.errors.ReplanSignal` carrying an
        amended plan, which the driver applies through the re-batch
        path.  ``None`` (default) compiles no check ops at all.

    Returns (per rank)
    ------------------
    dict with ``pieces`` (list of ``(batch, r0, c0, tile)``), ``times``,
    ``batches``, ``max_local_bytes``, the per-rank ``trace``
    (:class:`~repro.summa.trace.Tracer`) and symbolic statistics when run.
    """
    if merge_policy not in ("deferred", "incremental"):
        raise ValueError(
            f"unknown merge policy {merge_policy!r}; "
            "expected 'deferred' or 'incremental'"
        )
    if enforce not in ENFORCE_MODES:
        raise ValueError(
            f"unknown enforce mode {enforce!r}; expected one of {ENFORCE_MODES}"
        )
    executor = get_executor(overlap)
    suite = get_suite(suite)
    semiring = get_semiring(semiring)
    backend = get_backend(comm_backend)
    kernel = get_kernel(kernel)
    if kernel.uses_aux and aux is None:
        raise ValueError(
            f"kernel {kernel.name!r} requires its aux operand "
            "(mask / sampling pattern); the drivers synthesise it when "
            "they can — pass it explicitly here"
        )
    retry = RetryPolicy(max_retries) if max_retries is not None else None
    backend.retry = retry
    # Entry hygiene: any cached plan state belongs to a previous grid
    # membership (heal re-entry, or a caller-shared backend instance) and
    # must be re-planned against the communicators built below.
    backend.revoke()
    # One ledger per rank per attempt; the world (thread-local) and the
    # backend both see it, so wire deliveries and recv buffers are
    # charged where they land, whichever path they take.
    ledger = MemoryLedger(
        rank=comm.rank, budget=memory_budget_per_rank, enforce=enforce
    )
    comm.world.ledger = ledger
    backend.ledger = ledger
    comms = GridComms.build(comm, grid)
    tracer = Tracer(rank=comm.rank)
    info: dict = {}

    if batches is None:
        if memory_budget is None:
            batches = 1
        elif kernel.supports_symbolic:
            sym = spmd_symbolic3d(
                comms, a, b, memory_budget, bytes_per_nonzero, tracer,
                retry=retry,
            )
            batches = sym["batches"]
            info["symbolic"] = sym
        else:
            # dense-operand kernels need no symbolic pass: the kernel's
            # own footprint model is exact geometry, computed identically
            # (and deterministically) on every rank.
            batches = kernel.batches_for_budget(
                a, b, aux, nprocs=grid.nprocs, layers=grid.layers,
                memory_budget=memory_budget,
            )
            info["kernel_batches"] = batches

    a_tile = kernel.a_tile(a, grid, comm.rank)
    b_tile = kernel.b_tile(b, grid, comm.rank)
    a_tile, b_tile = kernel.prepare_tiles(a_tile, b_tile, suite)

    a_nrows = kernel.nrows_of(a)
    b_ncols = kernel.ncols_of(b)

    # assemble the per-rank execution state
    state = ExecState()
    state.comms = comms
    state.grid = grid
    state.backend = backend
    state.suite = suite
    state.semiring = semiring
    state.kernel = kernel
    state.aux = aux
    state.a_tile = a_tile
    state.b_tile = b_tile
    ledger.batches = batches
    state.ledger = ledger
    state.mem["a_tile"] = ledger.acquire("a_piece", nbytes_of(a_tile), "a_tile")
    state.mem["b_tile"] = ledger.acquire("b_piece", nbytes_of(b_tile), "b_tile")
    state.batches = batches
    state.batch_scheme = batch_scheme
    state.a_nrows = a_nrows
    state.b_ncols = b_ncols
    state.row_bounds = split_bounds(a_nrows, grid.pr)
    state.r0 = int(state.row_bounds[comms.i])
    col_super = split_bounds(b_ncols, grid.pc)
    state.c0_super = int(col_super[comms.j])
    state.super_w = int(col_super[comms.j + 1]) - state.c0_super
    state.postprocess = postprocess
    state.keep_pieces = keep_pieces
    state.piece_sink = piece_sink
    state.tracer = tracer
    if replan is not None:
        from ..plan.replan import Replanner
        state.replan = Replanner(replan, start_batch=start_batch)

    plan = compile_batched_summa3d(
        grid,
        batches=batches,
        merge_policy=merge_policy,
        has_postprocess=postprocess is not None,
        first_batch=start_batch,
        batch_barrier=batch_barrier,
        kernel=kernel,
        replan=state.replan is not None,
    )
    executor.run(plan, state, tracer)

    info["comm_backend"] = backend.name
    info["overlap"] = executor.overlap
    info["kernel"] = kernel.name
    info["memory"] = ledger.report()
    return {
        "pieces": state.pieces,
        "times": tracer.step_times(),
        "batches": batches,
        "max_local_bytes": ledger.high_water_total,
        "fiber_piece_nnz": state.fiber_piece_nnz,
        "info": info,
        "trace": tracer,
    }
