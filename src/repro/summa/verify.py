"""Self-check utility: exercise every code path on a tiny known instance.

``verify_installation()`` runs a deterministic multiply through each
algorithm (local kernels, SUMMA2D/3D, batched, baselines, resident
context), cross-checks every result against the reference kernel, and
returns a report — the ``python -m repro doctor`` command.  Useful after
installation and as a quick regression sweep on unusual platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sparse.construct import random_sparse
from ..sparse.spgemm.reference import spgemm_reference
from ..sparse.spgemm.suite import available_suites, get_suite


@dataclass
class CheckReport:
    """Outcome of one verification sweep."""

    passed: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed

    def record(self, name: str, fn) -> None:
        try:
            fn()
            self.passed.append(name)
        except Exception as exc:  # noqa: BLE001 — report, not crash
            self.failed[name] = f"{type(exc).__name__}: {exc}"

    def summary(self) -> str:
        lines = [f"{len(self.passed)} checks passed, {len(self.failed)} failed"]
        for name in self.passed:
            lines.append(f"  ok   {name}")
        for name, err in self.failed.items():
            lines.append(f"  FAIL {name}: {err}")
        return "\n".join(lines)


def verify_installation(*, nprocs: int = 4, seed: int = 7) -> CheckReport:
    """Run the full verification sweep; returns a :class:`CheckReport`."""
    report = CheckReport()
    a = random_sparse(24, 24, nnz=140, seed=seed)
    b = random_sparse(24, 24, nnz=130, seed=seed + 1)
    expected = spgemm_reference(a, b)

    def check_equal(matrix):
        assert matrix.allclose(expected), "result mismatch"

    # local kernels
    for name in available_suites():
        suite = get_suite(name)

        def run_kernel(suite=suite):
            from ..sparse.semiring import PLUS_TIMES

            operand = a.sort_indices() if suite.requires_sorted_inputs else a
            check_equal(suite.local_multiply(operand, b, PLUS_TIMES))

        report.record(f"kernel:{name}", run_kernel)

    # distributed algorithms
    from .batched import batched_summa3d
    from .summa2d import summa2d
    from .summa3d import summa3d

    report.record(
        "summa2d", lambda: check_equal(summa2d(a, b, nprocs=nprocs).matrix)
    )
    report.record(
        "summa3d",
        lambda: check_equal(
            summa3d(a, b, nprocs=nprocs, layers=nprocs).matrix
        ),
    )
    report.record(
        "batched",
        lambda: check_equal(
            batched_summa3d(a, b, nprocs=nprocs, batches=3).matrix
        ),
    )

    # baselines
    from .baselines import cannon2d, spgemm_1d

    report.record(
        "1d-row", lambda: check_equal(spgemm_1d(a, b, nprocs=nprocs).matrix)
    )
    report.record(
        "cannon", lambda: check_equal(cannon2d(a, b, nprocs=nprocs).matrix)
    )

    # resident context
    def run_resident():
        from ..dist import DistContext

        ctx = DistContext(nprocs=nprocs)
        ha = ctx.distribute(a, "A")
        hb = ctx.distribute(b, "B")
        hc, _ = ctx.multiply(ha, hb, batches=2)
        check_equal(hc.to_global())

    report.record("resident-context", run_resident)

    # symbolic + model plumbing
    def run_symbolic():
        from ..sparse.matrix import BYTES_PER_NONZERO
        from .symbolic3d import symbolic3d

        r = symbolic3d(a, b, nprocs=nprocs,
                       memory_budget=100 * a.nnz * BYTES_PER_NONZERO)
        assert r.batches >= 1

    report.record("symbolic3d", run_symbolic)

    def run_model():
        from ..model import CORI_KNL, predict_steps

        t = predict_steps(CORI_KNL, nprocs=1024, layers=16, batches=4,
                          nnz_a=10**9, nnz_b=10**9, nnz_c=10**10,
                          flops=10**12)
        assert t.total() > 0

    report.record("alpha-beta-model", run_model)
    return report
