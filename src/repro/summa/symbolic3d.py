"""Distributed symbolic step driver (paper Alg. 3).

Runs only the structure pass — broadcasts plus local symbolic multiplies —
and returns the exact batch count ``b`` the given memory budget requires,
along with the AllReduce-max statistics it is computed from.
"""

from __future__ import annotations

from ..errors import ShapeError
from ..grid.grid3d import GridComms, ProcGrid3D
from ..mem import resolve_budget
from ..model.memory import predict_memory
from ..simmpi.comm import DEFAULT_TIMEOUT, SimComm
from ..simmpi.engine import run_spmd
from ..simmpi.tracker import CommTracker
from ..sparse.matrix import BYTES_PER_NONZERO, SparseMatrix
from ..utils.timing import StepTimes
from .core import spmd_symbolic3d
from .result import SymbolicResult
from .trace import Tracer


def _spmd_symbolic(
    comm: SimComm,
    a: SparseMatrix,
    b: SparseMatrix,
    grid: ProcGrid3D,
    memory_budget: int,
    bytes_per_nonzero: int,
) -> dict:
    comms = GridComms.build(comm, grid)
    tracer = Tracer(rank=comm.rank)
    out = spmd_symbolic3d(comms, a, b, memory_budget, bytes_per_nonzero, tracer)
    out["times"] = tracer.step_times()
    return out


def symbolic3d(
    a: SparseMatrix,
    b: SparseMatrix,
    nprocs: int = 4,
    layers: int = 1,
    *,
    memory_budget: int | None = None,
    memory_budget_per_rank: int | None = None,
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
    tracker: CommTracker | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    world: str = "threads",
    transport: str = "auto",
) -> SymbolicResult:
    """Compute the exact number of batches a memory budget requires.

    ``memory_budget`` is the aggregate memory ``M`` in bytes across all
    ``nprocs`` processes; ``memory_budget_per_rank`` is the same limit
    per rank (exactly one of the two must be given — conversion happens
    via :func:`repro.mem.resolve_budget`).  Raises
    :class:`~repro.errors.MemoryBudgetError` when even the inputs do not
    fit (no batch count can help, Sec. II-B).  The result's
    ``info["predicted_memory"]`` carries the Table III closed-form
    per-process estimate at the chosen ``b``.
    """
    if a.ncols != b.nrows:
        raise ShapeError(
            f"cannot multiply {a.nrows}x{a.ncols} by {b.nrows}x{b.ncols}"
        )
    memory_budget, _per_rank = resolve_budget(
        memory_budget, memory_budget_per_rank, nprocs
    )
    if memory_budget is None:
        raise ValueError(
            "symbolic3d needs a budget: pass memory_budget= (aggregate) "
            "or memory_budget_per_rank="
        )
    grid = ProcGrid3D(nprocs, layers)
    if tracker is None:
        tracker = CommTracker()
    per_rank = run_spmd(
        nprocs,
        _spmd_symbolic,
        a,
        b,
        grid,
        memory_budget,
        bytes_per_nonzero,
        tracker=tracker,
        timeout=timeout,
        world=world,
        transport=transport,
    )
    first = per_rank[0]
    return SymbolicResult(
        batches=first["batches"],
        max_nnz_c=first["max_nnz_c"],
        max_nnz_a=first["max_nnz_a"],
        max_nnz_b=first["max_nnz_b"],
        memory_budget=memory_budget,
        bytes_per_nonzero=bytes_per_nonzero,
        grid=grid,
        step_times=StepTimes.critical_path(r["times"] for r in per_rank),
        tracker=tracker,
        info={
            "predicted_memory": predict_memory(
                nprocs=nprocs,
                layers=layers,
                batches=first["batches"],
                max_nnz_a=first["max_nnz_a"],
                max_nnz_b=first["max_nnz_b"],
                max_nnz_c=first["max_nnz_c"],
                bytes_per_nonzero=bytes_per_nonzero,
            )
        },
    )
