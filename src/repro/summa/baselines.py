"""Related-work baselines: 1D SpGEMM and Cannon's algorithm.

The paper positions SUMMA-based 2D/3D algorithms against two families
(Sec. II-C): **1D distributions**, whose communication does not scale
(every process ends up needing all of B), and **Cannon's algorithm** [33],
a 2D shift-based scheme used by DBCSR [9].  Both are implemented on the
same simulated runtime so their metered communication can be compared
head-to-head with SUMMA — the classic motivation for 2D/3D algorithms
becomes a measurable fact (see ``bench_ablation_baselines``).
"""

from __future__ import annotations

import math
import time

from ..errors import GridError, ShapeError
from ..grid.distribution import gather_tiles
from ..simmpi.comm import DEFAULT_TIMEOUT, SimComm
from ..simmpi.engine import run_spmd
from ..simmpi.tracker import CommTracker
from ..sparse.matrix import SparseMatrix
from ..sparse.merge import merge_partials
from ..sparse.ops import split_bounds, submatrix
from ..sparse.semiring import get_semiring
from ..sparse.spgemm.suite import get_suite
from ..utils.timing import StepTimes
from .result import SummaResult


# --------------------------------------------------------------------- #
# 1D row-distributed SpGEMM
# --------------------------------------------------------------------- #

def _spmd_1d(comm: SimComm, a, b, suite, semiring):
    suite = get_suite(suite)
    semiring = get_semiring(semiring)
    p, rank = comm.size, comm.rank
    row_bounds = split_bounds(a.nrows, p)
    inner_bounds = split_bounds(a.ncols, p)
    a_rows = submatrix(a, int(row_bounds[rank]), int(row_bounds[rank + 1]),
                       0, a.ncols)
    b_rows = submatrix(b, int(inner_bounds[rank]), int(inner_bounds[rank + 1]),
                       0, b.ncols)
    times = StepTimes()

    # the 1D algorithm's downfall: every process must assemble ALL of B
    t0 = time.perf_counter()
    with comm.step("B-Allgather"):
        b_pieces = comm.allgather(b_rows)
    times.add("B-Allgather", time.perf_counter() - t0)
    full_b = gather_tiles(
        b.nrows, b.ncols,
        ((int(inner_bounds[r]), 0, piece) for r, piece in enumerate(b_pieces)),
    )

    t0 = time.perf_counter()
    c_rows = suite.local_multiply(a_rows, full_b, semiring)
    times.add("Local-Multiply", time.perf_counter() - t0)
    return {
        "piece": (int(row_bounds[rank]), 0, c_rows.sort_indices()),
        "times": times,
    }


def spgemm_1d(
    a: SparseMatrix,
    b: SparseMatrix,
    nprocs: int = 4,
    *,
    suite="esc",
    semiring="plus_times",
    tracker: CommTracker | None = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> SummaResult:
    """1D row-distributed SpGEMM baseline.

    Process ``i`` owns row block ``i`` of A and of B; forming its C rows
    requires *all* of B, assembled with one allgather whose aggregate
    volume is ``p * nnz(B)`` — the non-scaling communication the paper's
    Sec. II-C attributes to 1D distributions.
    """
    if a.ncols != b.nrows:
        raise ShapeError(
            f"cannot multiply {a.nrows}x{a.ncols} by {b.nrows}x{b.ncols}"
        )
    if tracker is None:
        tracker = CommTracker()
    per_rank = run_spmd(
        nprocs, _spmd_1d, a, b, suite, semiring,
        tracker=tracker, timeout=timeout,
    )
    matrix = gather_tiles(a.nrows, b.ncols, (r["piece"] for r in per_rank))
    from ..grid.grid3d import ProcGrid3D

    return SummaResult(
        matrix=matrix,
        grid=ProcGrid3D(1, 1),  # placeholder geometry: 1D has no 2D grid
        batches=1,
        step_times=StepTimes.critical_path(r["times"] for r in per_rank),
        per_rank_times=[r["times"] for r in per_rank],
        tracker=tracker,
        max_local_bytes=0,
        info={"algorithm": "1d-row", "nprocs": nprocs},
    )


# --------------------------------------------------------------------- #
# Cannon's algorithm
# --------------------------------------------------------------------- #

def _spmd_cannon_overlapped(comm: SimComm, a, b, suite, semiring):
    """Cannon with communication/computation overlap: the next round's
    tiles are in flight (isend/irecv) while the current multiply runs —
    the "communication overlapping" optimisation of the paper's related
    work (Sec. I)."""
    suite = get_suite(suite)
    semiring = get_semiring(semiring)
    q = math.isqrt(comm.size)
    i, j = divmod(comm.rank, q)
    row_bounds = split_bounds(a.nrows, q)
    inner_bounds = split_bounds(a.ncols, q)
    col_bounds = split_bounds(b.ncols, q)
    cur_a = submatrix(a, int(row_bounds[i]), int(row_bounds[i + 1]),
                      int(inner_bounds[(j + i) % q]),
                      int(inner_bounds[(j + i) % q + 1]))
    cur_b = submatrix(b, int(inner_bounds[(i + j) % q]),
                      int(inner_bounds[(i + j) % q + 1]),
                      int(col_bounds[j]), int(col_bounds[j + 1]))
    times = StepTimes()
    partials = []
    left = i * q + (j - 1) % q
    right = i * q + (j + 1) % q
    up = ((i - 1) % q) * q + j
    down = ((i + 1) % q) * q + j
    for step in range(q):
        recv_a = recv_b = None
        if step < q - 1:
            # launch the next round's exchange before computing
            t0 = time.perf_counter()
            with comm.step("Shift"):
                comm.isend(cur_a, dest=left, tag=1)
                comm.isend(cur_b, dest=up, tag=2)
                recv_a = comm.irecv(source=right, tag=1)
                recv_b = comm.irecv(source=down, tag=2)
            times.add("Shift", time.perf_counter() - t0)
        t0 = time.perf_counter()
        partials.append(suite.local_multiply(cur_a, cur_b, semiring))
        times.add("Local-Multiply", time.perf_counter() - t0)
        if step < q - 1:
            t0 = time.perf_counter()
            cur_a = recv_a.wait()
            cur_b = recv_b.wait()
            times.add("Shift", time.perf_counter() - t0)
    t0 = time.perf_counter()
    c_local = merge_partials(partials, method="grouped", semiring=semiring)
    times.add("Merge", time.perf_counter() - t0)
    return {
        "piece": (int(row_bounds[i]), int(col_bounds[j]), c_local.sort_indices()),
        "times": times,
    }


def _spmd_cannon(comm: SimComm, a, b, suite, semiring):
    suite = get_suite(suite)
    semiring = get_semiring(semiring)
    q = math.isqrt(comm.size)
    i, j = divmod(comm.rank, q)
    row_bounds = split_bounds(a.nrows, q)
    inner_bounds = split_bounds(a.ncols, q)
    col_bounds = split_bounds(b.ncols, q)

    def a_tile(bi, bj):
        return submatrix(a, int(row_bounds[bi]), int(row_bounds[bi + 1]),
                         int(inner_bounds[bj]), int(inner_bounds[bj + 1]))

    def b_tile(bi, bj):
        return submatrix(b, int(inner_bounds[bi]), int(inner_bounds[bi + 1]),
                         int(col_bounds[bj]), int(col_bounds[bj + 1]))

    # initial skew: row i of A shifted left by i, column j of B up by j
    cur_a = a_tile(i, (j + i) % q)
    cur_b = b_tile((i + j) % q, j)
    times = StepTimes()
    partials = []
    for step in range(q):
        t0 = time.perf_counter()
        partials.append(suite.local_multiply(cur_a, cur_b, semiring))
        times.add("Local-Multiply", time.perf_counter() - t0)
        if step == q - 1:
            break
        # shift A left one position in the row, B up one in the column
        t0 = time.perf_counter()
        with comm.step("Shift"):
            left = i * q + (j - 1) % q
            right = i * q + (j + 1) % q
            up = ((i - 1) % q) * q + j
            down = ((i + 1) % q) * q + j
            comm.send(cur_a, dest=left, tag=1)
            comm.send(cur_b, dest=up, tag=2)
            cur_a = comm.recv(source=right, tag=1)
            cur_b = comm.recv(source=down, tag=2)
        times.add("Shift", time.perf_counter() - t0)
    t0 = time.perf_counter()
    c_local = merge_partials(partials, method="grouped", semiring=semiring)
    times.add("Merge", time.perf_counter() - t0)
    return {
        "piece": (int(row_bounds[i]), int(col_bounds[j]), c_local.sort_indices()),
        "times": times,
    }


def cannon2d(
    a: SparseMatrix,
    b: SparseMatrix,
    nprocs: int = 4,
    *,
    suite="esc",
    semiring="plus_times",
    overlap: bool = False,
    tracker: CommTracker | None = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> SummaResult:
    """Cannon's algorithm on a square 2D grid (the DBCSR baseline [9, 33]).

    After an initial skew, ``sqrt(p)`` rounds of multiply-and-shift move
    each A tile left and each B tile up by one position; communication is
    nearest-neighbour point-to-point rather than broadcasts.

    ``overlap=True`` posts each round's exchange (isend/irecv) *before*
    the local multiply and completes it after — the classic
    communication/computation overlap optimisation.  Results are
    identical; only the step structure differs.
    """
    if a.ncols != b.nrows:
        raise ShapeError(
            f"cannot multiply {a.nrows}x{a.ncols} by {b.nrows}x{b.ncols}"
        )
    q = math.isqrt(nprocs)
    if q * q != nprocs:
        raise GridError(f"Cannon needs a square process count, got {nprocs}")
    if tracker is None:
        tracker = CommTracker()
    body = _spmd_cannon_overlapped if overlap else _spmd_cannon
    per_rank = run_spmd(
        nprocs, body, a, b, suite, semiring,
        tracker=tracker, timeout=timeout,
    )
    matrix = gather_tiles(a.nrows, b.ncols, (r["piece"] for r in per_rank))
    from ..grid.grid3d import ProcGrid3D

    return SummaResult(
        matrix=matrix,
        grid=ProcGrid3D(nprocs, 1),
        batches=1,
        step_times=StepTimes.critical_path(r["times"] for r in per_rank),
        per_rank_times=[r["times"] for r in per_rank],
        tracker=tracker,
        max_local_bytes=0,
        info={"algorithm": "cannon", "nprocs": nprocs},
    )
