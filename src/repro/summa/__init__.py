"""Distributed SpGEMM algorithms (the paper's core contribution).

* :func:`summa2d` — Alg. 1, 2D sparse SUMMA;
* :func:`summa3d` — Alg. 2, communication-avoiding 3D sparse SUMMA;
* :func:`symbolic3d` — Alg. 3, distributed symbolic step computing the
  number of batches a memory budget allows;
* :func:`batched_summa3d` — Alg. 4, the integrated communication-avoiding,
  memory-constrained BatchedSUMMA3D.

All run on the simulated-MPI runtime; pass a
:class:`~repro.simmpi.CommTracker` to meter every collective.
"""

from .batched import batched_summa3d, batched_summa3d_rows
from .planner import (
    PlanChoice,
    auto_config,
    batches_lower_bound,
    batches_upper_bound,
    choose_backend,
    recommend_layers,
)
from .result import SummaResult, SymbolicResult
from .summa2d import summa2d
from .summa3d import summa3d
from .symbolic3d import symbolic3d

__all__ = [
    "summa2d",
    "batched_summa3d_rows",
    "summa3d",
    "symbolic3d",
    "batched_summa3d",
    "SummaResult",
    "SymbolicResult",
    "auto_config",
    "PlanChoice",
    "batches_lower_bound",
    "batches_upper_bound",
    "choose_backend",
    "recommend_layers",
]
