"""Distributed SpGEMM algorithms (the paper's core contribution).

* :func:`summa2d` — Alg. 1, 2D sparse SUMMA;
* :func:`summa3d` — Alg. 2, communication-avoiding 3D sparse SUMMA;
* :func:`symbolic3d` — Alg. 3, distributed symbolic step computing the
  number of batches a memory budget allows;
* :func:`batched_summa3d` — Alg. 4, the integrated communication-avoiding,
  memory-constrained BatchedSUMMA3D.

All run on the simulated-MPI runtime; pass a
:class:`~repro.simmpi.CommTracker` to meter every collective.

The drivers no longer hard-code their stage order: they compile to the
execution-plan IR of :mod:`repro.summa.exec` and run under either the
:class:`~repro.summa.exec.SequentialExecutor` (``overlap="off"``) or the
:class:`~repro.summa.exec.PipelinedExecutor` (``overlap="depth1"``),
with structured per-op tracing from :mod:`repro.summa.trace`.
"""

from .batched import batched_summa3d, batched_summa3d_rows, run_plan
from .exec import (
    OVERLAP_MODES,
    ExecutionPlan,
    PipelinedExecutor,
    SequentialExecutor,
    StageOp,
    compile_batched_summa3d,
    get_executor,
)
from .planner import (
    PlanChoice,
    auto_config,
    batches_lower_bound,
    batches_upper_bound,
    choose_backend,
    recommend_layers,
)
from .result import SummaResult, SymbolicResult
from .summa2d import summa2d
from .summa3d import summa3d
from .symbolic3d import symbolic3d
from .trace import (
    TraceSpan,
    Tracer,
    export_chrome_trace,
    merge_traces,
    to_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
)

__all__ = [
    "summa2d",
    "batched_summa3d_rows",
    "summa3d",
    "symbolic3d",
    "batched_summa3d",
    "run_plan",
    "SummaResult",
    "SymbolicResult",
    "auto_config",
    "PlanChoice",
    "batches_lower_bound",
    "batches_upper_bound",
    "choose_backend",
    "recommend_layers",
    # execution-plan IR and executors
    "StageOp",
    "ExecutionPlan",
    "SequentialExecutor",
    "PipelinedExecutor",
    "compile_batched_summa3d",
    "get_executor",
    "OVERLAP_MODES",
    # structured tracing
    "Tracer",
    "TraceSpan",
    "merge_traces",
    "to_chrome_trace",
    "export_chrome_trace",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
]
