"""Result containers for the distributed algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..grid.grid3d import ProcGrid3D
from ..simmpi.tracker import CommTracker
from ..sparse.matrix import SparseMatrix
from ..utils.timing import StepTimes


@dataclass
class SummaResult:
    """Outcome of a distributed SpGEMM run.

    Attributes
    ----------
    matrix:
        The gathered global product, or ``None`` when the caller opted not
        to keep it (memory-constrained usage where batches were consumed by
        a callback).
    grid:
        The process grid the run used.
    batches:
        Number of batches executed (1 unless memory-constrained).
    step_times:
        Critical-path (max over ranks) seconds per algorithm step.
    per_rank_times:
        Per-rank step breakdowns, indexed by global rank.
    tracker:
        Communication meter with one event per collective.
    max_local_bytes:
        Highest simultaneous per-process memory (bytes, at r = 24 B/nonzero
        accounting) any rank reached — the quantity the paper's batching
        keeps under ``M / p``.  Kept as an alias of
        ``info["memory"]["high_water_total"]``, the merged
        :class:`~repro.mem.MemoryLedger` mark (see :attr:`memory`).
    info:
        Run metadata (kernel suite, semiring, symbolic statistics, ...).
    trace:
        Per-rank :class:`~repro.summa.trace.Tracer` span streams (empty
        for runs predating structured tracing); :meth:`export_trace`
        merges them into a chrome://tracing timeline.
    """

    matrix: SparseMatrix | None
    grid: ProcGrid3D
    batches: int
    step_times: StepTimes
    per_rank_times: list[StepTimes]
    tracker: CommTracker
    max_local_bytes: int
    info: dict = field(default_factory=dict)
    trace: list = field(default_factory=list)

    def __post_init__(self) -> None:
        # max_local_bytes is derived state: when the uniform memory block
        # is present it wins, so the two can never drift apart.
        mem = self.info.get("memory")
        if mem and mem.get("high_water_total"):
            self.max_local_bytes = int(mem["high_water_total"])

    @property
    def memory(self) -> dict:
        """The uniform memory report: per-category high-water marks
        (``categories``), per-batch peaks (``batch_peaks``), the enforced
        budget and mode, and — when symbolic statistics were available —
        the Table III prediction (``model``) and measured-vs-predicted
        ratio (``model_error``).  Empty dict for runs predating the
        :class:`~repro.mem.MemoryLedger`."""
        return self.info.get("memory", {})

    @property
    def fault_stats(self) -> dict | None:
        """Fault-injection summary for runs that injected faults: planned
        and fired :class:`~repro.simmpi.faults.FaultSpec` counts, retries
        observed, total simulated backoff, and the ordered event list.
        ``None`` on fault-free runs."""
        return self.info.get("fault_stats")

    def export_trace(self, path: str) -> None:
        """Write the run's merged span timeline as chrome://tracing JSON
        (open via chrome://tracing "Load" or https://ui.perfetto.dev)."""
        from .trace import export_chrome_trace, merge_traces

        export_chrome_trace(merge_traces(self.trace), path)

    def __repr__(self) -> str:
        nnz = self.matrix.nnz if self.matrix is not None else "discarded"
        return (
            f"SummaResult(grid={self.grid!r}, batches={self.batches}, "
            f"nnz(C)={nnz}, total_time={self.step_times.total():.4f}s)"
        )


@dataclass
class SymbolicResult:
    """Outcome of the distributed symbolic step (Alg. 3).

    ``batches`` is the exact b of Alg. 3 line 12; the ``max_*`` fields are
    the AllReduce-max quantities it is computed from.
    """

    batches: int
    max_nnz_c: int
    max_nnz_a: int
    max_nnz_b: int
    memory_budget: int
    bytes_per_nonzero: int
    grid: ProcGrid3D
    step_times: StepTimes
    tracker: CommTracker
    info: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"SymbolicResult(b={self.batches}, maxnnzC={self.max_nnz_c}, "
            f"grid={self.grid!r})"
        )
