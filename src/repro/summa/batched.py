"""BatchedSUMMA3D driver (paper Alg. 4) — the library's flagship entry point.

The driver validates inputs, builds the process grid, launches the SPMD
program on the simulated-MPI engine, and reassembles the distributed
output.  When a memory budget is given and no explicit batch count, the
distributed symbolic step (Alg. 3) chooses ``b`` exactly as the paper does.

The run configuration is a first-class value: :func:`run_plan` executes
an :class:`~repro.plan.ExecSpec` (or a resolved
:class:`~repro.plan.ExecPlan`), and the classic keyword surfaces —
:func:`batched_summa3d`, :func:`batched_summa3d_rows`, ``summa2d/3d`` —
are thin shims whose knobs funnel through the single conversion point
:meth:`~repro.plan.ExecSpec.from_kwargs`.  Every result records the
final resolved plan verbatim in ``info["plan"]``, including any mid-run
amendments the :class:`~repro.plan.Replanner` made.
"""

from __future__ import annotations

import os
import threading
from dataclasses import replace

import numpy as np

from ..errors import MemoryPressureError, ReplanSignal, ShapeError, SpmdError
from ..grid.distribution import extract_a_tile, extract_b_tile, gather_tiles
from ..grid.grid3d import ProcGrid3D
from ..kernels import MaskedSpgemmKernel, get_kernel
from ..mem import MemoryLedger
from ..model.memory import predict_memory
from ..mp.bridge import DriverCallback
from ..plan.spec import ExecPlan, ExecSpec, _registry_name
from ..resilience import CheckpointManager, HealContext, HealingBody
from ..resilience import run_key as _checkpoint_run_key
from ..simmpi.engine import run_spmd
from ..simmpi.faults import FaultInjector
from ..simmpi.tracker import CommTracker
from ..sparse.io import save_matrix
from ..sparse.matrix import SparseMatrix
from ..utils.timing import StepTimes
from .core import spmd_batched_summa3d
from .result import SummaResult


class _BatchPieceCollector:
    """Driver-side sink for the memory-constrained streaming path.

    When the caller discards the output (``keep_output=False``) but still
    consumes batches (``spill_dir`` / ``on_batch``), ranks used to hold
    every piece anyway so the driver could gather them afterwards —
    defeating the point of batching.  Instead each rank now hands its
    finished piece to :meth:`sink` (called from the rank threads, hence
    the lock) and frees it; once all ``nprocs`` pieces of a batch are in,
    the batch is gathered immediately and the pieces dropped.  The driver
    flushes completed batches in batch order after the run.
    """

    def __init__(
        self, nprocs: int, nrows: int, ncols: int, on_complete=None
    ) -> None:
        self._lock = threading.Lock()
        self._nprocs = nprocs
        self._nrows = nrows
        self._ncols = ncols
        self._pending: dict[int, list] = {}
        self._on_complete = on_complete
        self.completed: dict[int, tuple[list, SparseMatrix]] = {}

    def sink(self, batch: int, r0: int, c0: int, tile: SparseMatrix) -> None:
        with self._lock:
            pieces = self._pending.setdefault(batch, [])
            pieces.append((r0, c0, tile))
            if len(pieces) == self._nprocs:
                del self._pending[batch]
                spans = sorted({(c, c + t.ncols) for _r, c, t in pieces})
                gathered = gather_tiles(self._nrows, self._ncols, pieces)
                self.completed[batch] = (spans, gathered)
            else:
                return
        # durability hook (checkpointing) runs outside the collector lock
        # but still *during* the run, the moment the batch's last piece
        # lands — so a later crash can never lose this batch.
        if self._on_complete is not None:
            self._on_complete(batch, spans, gathered)

    def drop_pending(self) -> None:
        """Discard half-gathered batches (online heal): the repaired run
        re-enters from the checkpointed batch boundary and every
        incomplete batch is recomputed from scratch, so stale pieces —
        possibly including ones sunk by the dead rank — must not mix
        with their recomputed replacements."""
        with self._lock:
            self._pending.clear()


def _coerce_plan(plan, nprocs, layers, knobs):
    """The drivers' shared plan/knobs funnel.

    Either the caller passed ``plan=`` (an :class:`ExecSpec`,
    :class:`ExecPlan` or their dict form) and no loose knobs, or the
    loose knobs — including the positional ``nprocs``/``layers`` — are
    folded into a spec through the single conversion point
    :meth:`ExecSpec.from_kwargs`.
    """
    if plan is not None:
        if knobs or nprocs is not None or layers is not None:
            extras = sorted(knobs)
            if nprocs is not None:
                extras.insert(0, "nprocs")
            if layers is not None:
                extras.insert(1 if nprocs is not None else 0, "layers")
            raise TypeError(
                "pass either plan= or loose execution knobs, not both "
                f"(got plan= plus {', '.join(extras)}); amend the plan's "
                "spec instead (ExecPlan.with_spec / ExecSpec.amended)"
            )
        return plan
    if nprocs is not None:
        knobs["nprocs"] = nprocs
    if layers is not None:
        knobs["layers"] = layers
    return ExecSpec.from_kwargs(**knobs)


def _plan_to_spec(plan) -> tuple[ExecSpec, "ExecPlan | None"]:
    """Resolve ``plan`` to the spec to execute, keeping the originating
    :class:`ExecPlan` (when there is one) for provenance."""
    if isinstance(plan, dict):
        plan = (
            ExecPlan.from_dict(plan)
            if ("spec" in plan or "backend" in plan or "provenance" in plan)
            else ExecSpec.from_dict(plan)
        )
    if isinstance(plan, ExecPlan):
        spec = plan.spec if plan.spec is not None else ExecSpec()
        changes: dict = {"layers": plan.layers}
        if plan.batches is not None:
            changes["batches"] = plan.batches
        if plan.backend:
            changes["comm_backend"] = plan.backend
        return spec.amended(**changes), plan
    if isinstance(plan, ExecSpec):
        return plan, None
    raise TypeError(
        "plan must be an ExecSpec, ExecPlan or their dict form, "
        f"got {type(plan).__name__}"
    )


def batched_summa3d(
    a,
    b,
    nprocs: int | None = None,
    layers: int | None = None,
    *,
    plan=None,
    mask: SparseMatrix | None = None,
    sample: SparseMatrix | None = None,
    postprocess=None,
    on_batch=None,
    tracker: CommTracker | None = None,
    faults=None,
    **knobs,
) -> SummaResult:
    """Multiply ``C = A @ B`` with the memory-constrained, communication-
    avoiding BatchedSUMMA3D algorithm.

    Configuration is an :class:`~repro.plan.ExecSpec`: pass one (or a
    resolved :class:`~repro.plan.ExecPlan`) as ``plan=``, or pass its
    fields as loose keywords — ``batches=``, ``memory_budget=``,
    ``enforce=``, ``suite=``, ``semiring=``, ``kernel=``,
    ``mask_complement=``, ``keep_output=``, ``batch_scheme=``,
    ``merge_policy=``, ``comm_backend=``, ``overlap=``, ``spill_dir=``,
    ``timeout=``, ``checksums=``, ``max_retries=``, ``checkpoint_dir=``,
    ``resume=``, ``checkpoint_keep_last=``, ``heal=``, ``world_spares=``,
    ``world=``, ``transport=``, ``replan=`` and friends — which are
    folded into a spec through :meth:`~repro.plan.ExecSpec.from_kwargs`
    (the single conversion point; see the spec's field docs for
    semantics).  The two styles are mutually exclusive.

    Runtime-only arguments — objects with no serialised form — stay
    keywords in either style:

    ``mask``
        Optional output mask of shape ``(a.nrows, b.ncols)``: only
        coordinates present in the mask's pattern survive (GraphBLAS
        ``mxm``; with ``mask_complement=True`` only coordinates *absent*
        from it).  With ``kernel="masked_spgemm"`` the mask is applied
        inside the local multiply instead of as a postprocess.
    ``sample``
        SDDMM's sampling pattern ``S`` (sparse, shape of the product).
        Required for ``kernel="sddmm"``, invalid otherwise.
    ``postprocess``
        Distributed per-batch hook ``fn(batch, c0, c1, column_block) ->
        SparseMatrix`` running inside the SPMD region.
    ``on_batch``
        Driver-side hook ``fn(batch, c0_c1_list, batch_matrix)`` called
        with each gathered batch, in batch order.
    ``tracker``
        Optional communication meter shared with the caller.
    ``faults``
        A :class:`~repro.simmpi.faults.FaultPlan` / ``FaultInjector`` /
        list of CLI fault-spec strings for deterministic fault injection.

    Returns
    -------
    SummaResult — with ``info["plan"]`` recording the final resolved
    :class:`~repro.plan.ExecPlan` (as a dict), including any mid-run
    replanning amendments.
    """
    return run_plan(
        a, b, _coerce_plan(plan, nprocs, layers, knobs),
        mask=mask, sample=sample, postprocess=postprocess,
        on_batch=on_batch, tracker=tracker, faults=faults,
    )


def run_plan(
    a,
    b,
    plan,
    *,
    mask: SparseMatrix | None = None,
    sample: SparseMatrix | None = None,
    postprocess=None,
    on_batch=None,
    tracker: CommTracker | None = None,
    faults=None,
) -> SummaResult:
    """Execute one multiplication under ``plan`` (an
    :class:`~repro.plan.ExecSpec`, a resolved
    :class:`~repro.plan.ExecPlan`, or either's dict form).

    This is the real driver; :func:`batched_summa3d` and every other
    keyword surface delegate here.  See :func:`batched_summa3d` for the
    runtime-only arguments.
    """
    spec, exec_plan = _plan_to_spec(plan)

    kern = get_kernel(spec.kernel)
    aux = None
    if kern.name == "masked_spgemm":
        # the mask is the kernel's aux operand; a caller-level name-based
        # request honours mask_complement= through the kernel constructor
        if isinstance(spec.kernel, str) and spec.mask_complement:
            kern = MaskedSpgemmKernel(complement=True)
        if mask is not None:
            aux = mask
        else:
            # symbolic pass as the mask-producing prologue: the product
            # pattern keeps every structural nonzero, so this matches the
            # unmasked product while exercising the masked pipeline.
            from ..sparse.spgemm.symbolic import symbolic_pattern

            aux = symbolic_pattern(a, b)
        mask = None  # consumed by the kernel, not the postprocess path
    elif kern.name == "sddmm":
        if sample is None:
            raise ValueError(
                'kernel="sddmm" requires sample= (the sparse sampling '
                "pattern S, shaped like the product)"
            )
        aux = sample
    elif sample is not None:
        raise ValueError(
            f'sample= only applies to kernel="sddmm", not {kern.name!r}'
        )
    out_nrows, out_ncols = kern.validate(a, b, aux)
    if mask is not None and kern.name != "spgemm":
        raise ValueError(
            'mask= applies to kernel="spgemm" (postprocess filtering) or '
            'kernel="masked_spgemm" (in-multiply masking), '
            f"not {kern.name!r}"
        )
    if kern.name != "spgemm" and (
        spec.checkpoint_dir is not None or spec.resume or spec.heal is not None
    ):
        raise NotImplementedError(
            "checkpoint/resume/heal currently require the default SpGEMM "
            f"kernel (got kernel={kern.name!r}): run fingerprints and "
            "batch files do not cover kernel/aux operands yet"
        )
    if kern.output_kind != "sparse":
        for value, name in (
            (postprocess, "postprocess"), (mask, "mask"),
            (spec.spill_dir, "spill_dir"), (on_batch, "on_batch"),
        ):
            if value is not None:
                raise ValueError(
                    f"{name}= requires a sparse-output kernel; "
                    f"{kern.name!r} produces a dense result"
                )
    spec.validate()
    memory_budget, budget_per_rank = spec.resolved_budget()

    nprocs = spec.nprocs
    layers = spec.layers
    batches = spec.batches
    comm_backend = spec.comm_backend
    suite = spec.suite
    semiring = spec.semiring
    keep_output = spec.keep_output
    spill_dir = spec.spill_dir
    checkpoint_dir = spec.checkpoint_dir
    heal = spec.heal
    world = spec.world

    grid = ProcGrid3D(nprocs, layers)
    if tracker is None:
        tracker = CommTracker()

    injector = None
    if faults is not None:
        if isinstance(faults, FaultInjector):
            injector = faults
        else:
            from ..simmpi.faults import FaultPlan

            injector = FaultInjector(
                faults if isinstance(faults, FaultPlan) else FaultPlan(faults)
            )

    if comm_backend == "auto":
        if not kern.supports_symbolic:
            # the α–β chooser needs nonzero statistics of both operands;
            # dense-operand kernels ship dense panels by collectives on
            # either backend, so "dense" is the honest default.
            comm_backend = "dense"
        else:
            from .planner import choose_backend

            comm_backend = choose_backend(
                a, b, nprocs=nprocs, layers=layers, batches=batches or 1,
                overlap=spec.overlap,
            )

    if mask is not None:
        if mask.shape != (out_nrows, out_ncols):
            raise ShapeError(
                f"mask shape {mask.shape} != product shape "
                f"{(out_nrows, out_ncols)}"
            )
        postprocess = _compose_mask(mask, spec.mask_complement, postprocess)

    def ckpt_plan(b_count) -> dict:
        # the manifest's embedded plan: this spec with the batch geometry
        # pinned, so a resume proves it resumes under the same plan
        return spec.amended(batches=b_count).to_dict()

    # Checkpointing: the batch is the durability granule.  The driver
    # must know the batch count before the run to fingerprint the batch
    # geometry, so when the symbolic step would normally run in-band it
    # runs as a driver pre-pass instead (same Alg. 3, same metering).
    ckpt = None
    first_batch = 0
    sym_prepass = None
    # Checkpoint buffers live on the driver, not on any rank; they get
    # their own ledger so the merged memory report still accounts them.
    ckpt_ledger = MemoryLedger(rank="driver")
    if checkpoint_dir is not None:
        ckpt = CheckpointManager(
            checkpoint_dir, keep_last=spec.checkpoint_keep_last,
            ledger=ckpt_ledger,
        )
        ckpt_key = _checkpoint_run_key(
            a, b,
            nprocs=nprocs, layers=layers, batch_scheme=spec.batch_scheme,
            merge_policy=spec.merge_policy,
            suite=str(getattr(suite, "name", suite)),
            semiring=str(getattr(semiring, "name", semiring)),
        )
        manifest = ckpt.load_manifest() if spec.resume else None
        if batches is None and manifest is None:
            if memory_budget is not None:
                from .symbolic3d import symbolic3d

                sym = symbolic3d(
                    a, b, nprocs, layers,
                    memory_budget=memory_budget,
                    bytes_per_nonzero=spec.bytes_per_nonzero,
                    tracker=tracker, timeout=spec.timeout,
                    world=world, transport=spec.transport,
                )
                batches = sym.batches
                sym_prepass = {
                    "batches": sym.batches, "max_nnz_c": sym.max_nnz_c,
                    "max_nnz_a": sym.max_nnz_a, "max_nnz_b": sym.max_nnz_b,
                }
            else:
                batches = 1
        if spec.resume:
            batches, first_batch = ckpt.resume_run(
                ckpt_key, batches, ckpt_plan(batches)
            )
        else:
            ckpt.start_run(ckpt_key, batches, ckpt_plan(batches))

    # Mid-run replanning: build the picklable decision policy shipped to
    # every rank.  Forced amendments (spec.replan_force) run even with
    # replan="off" — the deterministic test/demo hook.
    replan_policy = None
    if spec.replan == "auto" or spec.replan_force:
        from ..plan.replan import ReplanPolicy, modelled_comm_per_batch

        modelled = ()
        if spec.replan == "auto" and kern.supports_symbolic:
            modelled = modelled_comm_per_batch(a, b, spec, batches)
        auto = spec.replan == "auto"
        replan_policy = ReplanPolicy(
            threshold=spec.replan_threshold,
            min_batches=spec.replan_min_batches,
            max_replans=spec.max_replans,
            allow_shrink=auto,
            allow_grow=auto,
            allow_backend_flip=auto and bool(modelled),
            resumable=ckpt is not None,
            modelled_comm=modelled,
            force=spec.replan_force,
        )

    # Memory-constrained streaming: when the output is discarded but
    # batches are still consumed, ranks stream each finished piece to the
    # driver instead of holding it, so per-rank memory stays flat.  A
    # checkpointing run always streams: batches must become durable the
    # moment they complete, not after the run.
    def make_collector():
        if ckpt is not None:
            return _BatchPieceCollector(
                nprocs, out_nrows, out_ncols, on_complete=ckpt.write_batch
            )
        if not keep_output and (on_batch is not None or spill_dir is not None):
            return _BatchPieceCollector(nprocs, out_nrows, out_ncols)
        return None

    collector = make_collector()
    rebatched: list[dict] = []
    replans: list[dict] = []
    heal_ctx = None
    world_info: dict = {}
    while True:
        # Under the process world the collector's sink must run in the
        # driver (it feeds gather/checkpoint state workers cannot see);
        # the DriverCallback wrapper ships each piece back through the
        # engine's results queue.
        sink = collector.sink if collector is not None else None
        if sink is not None and world == "processes":
            sink = DriverCallback(sink)
        spmd_kwargs = dict(
            kernel=kern,
            aux=aux,
            batches=batches,
            memory_budget=memory_budget,
            memory_budget_per_rank=budget_per_rank,
            enforce=spec.enforce,
            bytes_per_nonzero=spec.bytes_per_nonzero,
            suite=suite,
            semiring=semiring,
            keep_pieces=keep_output,
            postprocess=postprocess,
            batch_scheme=spec.batch_scheme,
            merge_policy=spec.merge_policy,
            comm_backend=comm_backend,
            overlap=spec.overlap,
            piece_sink=sink,
            max_retries=spec.max_retries,
            batch_barrier=ckpt is not None,
            replan=replan_policy,
        )
        try:
            if heal is None:
                per_rank = run_spmd(
                    nprocs,
                    spmd_batched_summa3d,
                    a,
                    b,
                    grid,
                    start_batch=first_batch,
                    **spmd_kwargs,
                    tracker=tracker,
                    timeout=spec.timeout,
                    faults=injector,
                    checksums=spec.checksums,
                    world=world,
                    transport=spec.transport,
                    world_info=world_info,
                )
            else:
                # Online healing: each rank runs a HealingBody that
                # re-enters the SPMD program from the checkpointed batch
                # boundary after every membership epoch change, instead of
                # the whole world aborting on the first crash.
                heal_ctx = HealContext(
                    heal, checkpoint=ckpt, collector=collector,
                    first_batch=first_batch,
                )

                def attempt(comm, start_batch, _kw=spmd_kwargs):
                    return spmd_batched_summa3d(
                        comm, a, b, grid, start_batch=start_batch, **_kw
                    )

                def join_bytes(position, _grid=grid):
                    # uniform nbytes protocol (repro.mem.nbytes_of): the
                    # tiles themselves know their storage footprint.
                    ta = extract_a_tile(a, _grid, position)
                    tb = extract_b_tile(b, _grid, position)
                    return ta.nbytes + tb.nbytes

                body = HealingBody(heal_ctx, attempt, join_bytes=join_bytes)
                if isinstance(sink, DriverCallback):
                    # the sink hides inside the attempt closure; expose
                    # it so the process engine can index the callback.
                    body.driver_callbacks = [sink]
                per_rank = run_spmd(
                    nprocs,
                    body,
                    tracker=tracker,
                    timeout=spec.timeout,
                    faults=injector,
                    checksums=spec.checksums,
                    world_spares=spec.world_spares,
                    heal=heal_ctx,
                    world=world,
                    transport=spec.transport,
                    world_info=world_info,
                )
            break
        except SpmdError as err:
            signals = [
                e for e in err.failures.values()
                if isinstance(e, ReplanSignal)
            ]
            if signals and all(
                isinstance(e, ReplanSignal) for e in err.failures.values()
            ):
                # a collective mid-run amendment: every rank raised the
                # same decision at the same batch boundary.  Apply it
                # through the re-batch machinery and re-enter.
                sig = signals[0]
                cur = sig.batches or (batches or 1)
                new_b = int(sig.amended.get("batches", cur))
                new_backend = sig.amended.get("comm_backend", comm_backend)
                geometry_changed = new_b != cur
                replans.append({
                    "at_batch": sig.batch,
                    "reason": sig.reason,
                    "from": {
                        "batches": int(cur),
                        "backend": _registry_name(comm_backend),
                    },
                    "to": {
                        "batches": int(new_b),
                        "backend": _registry_name(new_backend),
                    },
                    "measurements": dict(sig.measurements),
                })
                batches = new_b
                comm_backend = new_backend
                # one amendment spent; a force that fired never re-fires
                replan_policy = replace(
                    replan_policy,
                    revision=replan_policy.revision + 1,
                    force=tuple(
                        (bt, am) for bt, am in replan_policy.force
                        if int(bt) != sig.batch
                    ),
                )
                if ckpt is not None:
                    if geometry_changed:
                        # the column geometry is a function of b: every
                        # checkpointed batch is invalid — restart
                        ckpt.reset(ckpt_key, new_b, ckpt_plan(new_b))
                        first_batch = 0
                    else:
                        # backend flip preserves geometry: completed
                        # batches stay durable, resume past them
                        first_batch = ckpt.completed_prefix()
                else:
                    first_batch = 0
                collector = make_collector()
                continue
            pressures = [
                e for e in err.failures.values()
                if isinstance(e, MemoryPressureError)
            ]
            if pressures and all(
                isinstance(e, MemoryPressureError) for e in err.failures.values()
            ):
                # graceful degradation (the paper's own memory lever):
                # double the batch count and rerun.  The column geometry
                # changes with b, so checkpointed batches are invalid.
                cur = next(
                    (e.batches for e in pressures if e.batches), None
                ) or (batches or 1)
                new_b = min(cur * 2, max(1, out_ncols))
                if new_b <= cur:
                    raise
                rebatched.append({"from": int(cur), "to": int(new_b)})
                batches = new_b
                first_batch = 0
                if ckpt is not None:
                    ckpt.reset(ckpt_key, new_b, ckpt_plan(new_b))
                collector = make_collector()
                continue
            if ckpt is not None:
                raise SpmdError(
                    err.failures, checkpoint_dir=os.fspath(checkpoint_dir)
                ) from err
            raise

    ran_batches = per_rank[0]["batches"]
    per_rank_times = [r["times"] for r in per_rank]
    step_times = StepTimes.critical_path(per_rank_times)
    info = dict(per_rank[0]["info"])
    info.update(
        suite=str(getattr(suite, "name", suite)),
        semiring=str(getattr(semiring, "name", semiring)),
        layers=layers,
        nprocs=nprocs,
    )
    info["world"] = dict(world_info) if world_info else {"world": world}

    # Uniform memory report: per-rank ledger marks merged into one block,
    # plus the driver-side checkpoint category and — when symbolic matrix
    # statistics exist — the Table III closed-form prediction with the
    # measured-vs-predicted ratio (the closed-loop calibration signal).
    mem_block = MemoryLedger.merge_reports(
        [r["info"]["memory"] for r in per_rank]
    )
    if ckpt_ledger.high_water("checkpoint"):
        mem_block["categories"]["checkpoint"] = {
            "high_water": ckpt_ledger.high_water("checkpoint"),
            "current": ckpt_ledger.current("checkpoint"),
        }
    sym_stats = info.get("symbolic") or sym_prepass
    predicted = None
    if sym_stats is not None:
        predicted = predict_memory(
            nprocs=nprocs,
            layers=layers,
            batches=ran_batches,
            max_nnz_a=sym_stats["max_nnz_a"],
            max_nnz_b=sym_stats["max_nnz_b"],
            max_nnz_c=sym_stats["max_nnz_c"],
            keep_output=keep_output,
            overlap=spec.overlap,
            bytes_per_nonzero=spec.bytes_per_nonzero,
        )
    else:
        # no symbolic statistics (non-SpGEMM kernels, or SpGEMM without a
        # budget): the kernel's own geometry-exact footprint model stands
        # in for the Table III closed form.
        predicted = kern.predict_memory(
            a, b, aux,
            nprocs=nprocs,
            layers=layers,
            batches=ran_batches,
            keep_output=keep_output,
            overlap=spec.overlap,
        )
    if predicted is not None:
        mem_block["model"] = predicted
        if mem_block["high_water_total"]:
            mem_block["model_error"] = (
                predicted["high_water_total"] / mem_block["high_water_total"]
            )
    info["memory"] = mem_block
    # alias of info["memory"]["high_water_total"] (== max over ranks)
    max_local_bytes = mem_block["high_water_total"]

    info["fiber_piece_nnz"] = [r["fiber_piece_nnz"] for r in per_rank]
    info["batch_scheme"] = spec.batch_scheme
    info["merge_policy"] = spec.merge_policy
    if sym_prepass is not None and "symbolic" not in info:
        info["symbolic"] = sym_prepass
    if injector is not None:
        info["fault_stats"] = injector.stats()
    if injector is not None or ckpt is not None or rebatched or replans:
        resilience: dict = {"max_retries": spec.max_retries}
        if ckpt is not None:
            resilience["checkpoint_dir"] = os.fspath(checkpoint_dir)
            resilience["resumed_from_batch"] = first_batch
            resilience["checkpoint_io"] = ckpt.io_stats()
        if heal_ctx is not None:
            resilience["heal"] = heal_ctx.report()
            resilience["world_spares"] = spec.world_spares
        if rebatched:
            resilience["rebatched"] = rebatched
        if replans:
            resilience["replans"] = replans
        info["resilience"] = resilience

    # The final resolved plan, recorded verbatim: what actually ran,
    # with the provenance trail of how the configuration was reached.
    backend_name = info.get("comm_backend", _registry_name(comm_backend))
    prov = dict(exec_plan.provenance) if exec_plan is not None else {}
    prov.setdefault("mode", "explicit")
    if replans:
        prov["replans"] = list(prov.get("replans", ())) + replans
        prov["mode"] = "replan"
    final_plan = ExecPlan(
        layers=layers,
        batches=int(ran_batches),
        predicted_seconds=(
            exec_plan.predicted_seconds if exec_plan is not None else None
        ),
        candidates=exec_plan.candidates if exec_plan is not None else (),
        backend=backend_name,
        predicted_memory=(
            exec_plan.predicted_memory if exec_plan is not None else None
        ),
        spec=spec.amended(batches=int(ran_batches), comm_backend=backend_name),
        provenance=prov,
        revision=(
            (exec_plan.revision if exec_plan is not None else 0) + len(replans)
        ),
    )
    info["plan"] = final_plan.to_dict()

    if spill_dir is not None:
        os.makedirs(spill_dir, exist_ok=True)

    def consume(batch: int, spans: list, batch_matrix: SparseMatrix) -> None:
        if spill_dir is not None:
            save_matrix(
                os.path.join(spill_dir, f"batch_{batch}.npz"), batch_matrix
            )
        if on_batch is not None:
            on_batch(batch, spans, batch_matrix)

    matrix = None
    if ckpt is not None:
        # resumed prefix from the checkpoint, computed suffix from the
        # collector; consumption replays in batch order either way, and
        # the final assembly concatenates the same canonical COO set the
        # non-checkpointed path would, so products are bit-identical.
        # When nothing downstream consumes batches the prefix is never
        # loaded back — required under keep_last pruning, where older
        # batch files are tombstones by design.
        needs_batches = (
            keep_output or on_batch is not None or spill_dir is not None
        )
        if needs_batches:
            batch_matrices = []
            for batch in range(first_batch):
                spans, batch_matrix = ckpt.load_batch(batch)
                consume(batch, spans, batch_matrix)
                batch_matrices.append(batch_matrix)
            for batch in range(first_batch, ran_batches):
                spans, batch_matrix = collector.completed.pop(batch)
                consume(batch, spans, batch_matrix)
                batch_matrices.append(batch_matrix)
            if keep_output:
                matrix = gather_tiles(
                    out_nrows, out_ncols, [(0, 0, m) for m in batch_matrices]
                )
        else:
            collector.completed.clear()
        gc_stats = ckpt.gc()
        if gc_stats["orphans_removed"] or gc_stats["pruned"]:
            info.setdefault("resilience", {})["checkpoint_gc"] = gc_stats
    elif collector is not None:
        for batch in range(ran_batches):
            spans, batch_matrix = collector.completed.pop(batch)
            consume(batch, spans, batch_matrix)
    elif keep_output:
        if on_batch is not None or spill_dir is not None:
            for batch in range(ran_batches):
                batch_pieces = [
                    (r0, c0, tile)
                    for r in per_rank
                    for (bt, r0, c0, tile) in r["pieces"]
                    if bt == batch
                ]
                batch_matrix = gather_tiles(out_nrows, out_ncols, batch_pieces)
                spans = sorted({(c0, c0 + t.ncols) for _r0, c0, t in batch_pieces})
                consume(batch, spans, batch_matrix)
        all_pieces = [
            (r0, c0, tile)
            for r in per_rank
            for (_batch, r0, c0, tile) in r["pieces"]
        ]
        # the kernel knows its output representation: sparse kernels
        # concatenate COO pieces, dense kernels place panels in an ndarray
        matrix = kern.gather(out_nrows, out_ncols, all_pieces)

    return SummaResult(
        matrix=matrix,
        grid=grid,
        batches=ran_batches,
        step_times=step_times,
        per_rank_times=per_rank_times,
        tracker=tracker,
        max_local_bytes=max_local_bytes,
        info=info,
        trace=[r["trace"] for r in per_rank],
    )


def _compose_mask(mask: SparseMatrix, complement: bool, inner):
    """Build a postprocess hook applying an output mask per column block,
    composed before any user-provided hook."""
    from ..sparse.ops import hadamard, submatrix

    def hook(batch: int, c0: int, c1: int, block: SparseMatrix) -> SparseMatrix:
        mask_block = submatrix(mask, 0, mask.nrows, c0, c1)
        if complement:
            from ..sparse.matrix import INDEX_DTYPE
            from ..sparse.spgemm.masked import _mask_keys

            keys = (
                block.col_indices() * np.int64(max(block.nrows, 1))
                + block.rowidx
            )
            mkeys = _mask_keys(mask_block)
            pos = np.searchsorted(mkeys, keys)
            pos = np.minimum(pos, max(mkeys.shape[0] - 1, 0))
            inside = (
                mkeys[pos] == keys
                if mkeys.shape[0]
                else np.zeros(keys.shape[0], bool)
            )
            keep = ~inside
            csum = np.concatenate(([0], np.cumsum(keep, dtype=INDEX_DTYPE)))
            block = SparseMatrix(
                block.nrows, block.ncols, csum[block.indptr],
                block.rowidx[keep], block.values[keep],
                sorted_within_columns=block.sorted_within_columns,
                validate=False,
            )
        else:
            pattern = SparseMatrix(
                mask_block.nrows, mask_block.ncols, mask_block.indptr,
                mask_block.rowidx, np.ones(mask_block.nnz),
                sorted_within_columns=mask_block.sorted_within_columns,
                validate=False,
            )
            block = hadamard(block, pattern)
        if inner is not None:
            block = inner(batch, c0, c1, block)
        return block

    return hook


def batched_summa3d_rows(
    a,
    b,
    nprocs: int | None = None,
    layers: int | None = None,
    *,
    plan=None,
    mask: SparseMatrix | None = None,
    sample: SparseMatrix | None = None,
    postprocess=None,
    on_batch=None,
    tracker: CommTracker | None = None,
    faults=None,
    **knobs,
) -> SummaResult:
    """Row-wise batched SpGEMM: each batch computes ``nrows / b`` *rows*
    of ``C`` (paper Sec. IV-B).

    Column batching re-broadcasts **A** once per batch, which is expensive
    when ``nnz(A) >> nnz(B)``; batching over rows re-broadcasts **B**
    instead.  Implemented through the transpose identity
    ``C = (Bᵀ Aᵀ)ᵀ``: the column-batched algorithm runs on the transposed
    operands, so inside the run the roles of the A- and B-Broadcast steps
    are swapped (metered accordingly).  ``on_batch`` receives each batch
    already transposed back — a row block of ``C``, with ``spans`` giving
    its global *row* ranges.

    Only ordinary arithmetic and other commutative-multiply semirings
    preserve the identity; the multiply order is swapped by the transpose.

    The signature is *identical* to :func:`batched_summa3d` — both are
    derived from :class:`~repro.plan.ExecSpec` through the same
    conversion point, so the two surfaces cannot drift apart.  Every spec
    knob applies unchanged (acting on the transposed run); ``spill_dir``
    files hold *row* blocks of ``C`` (already transposed back),
    consistent with ``on_batch``; checkpoints fingerprint the transposed
    operands, so resuming requires this same entry point.  The runtime
    hooks ``mask=``, ``sample=`` and ``postprocess=`` are column-batched
    concepts and raise here.
    """
    from ..sparse.ops import transpose

    spec_or_plan = _coerce_plan(plan, nprocs, layers, knobs)
    for value, name in (
        (mask, "mask"), (sample, "sample"), (postprocess, "postprocess"),
    ):
        if value is not None:
            raise ValueError(
                f"{name}= applies to the column-batched drivers only; "
                "row batching runs through the transpose identity and has "
                "no transposed equivalent of it yet"
            )
    spec, exec_plan = _plan_to_spec(spec_or_plan)
    kern = get_kernel(spec.kernel)
    if kern.name != "spgemm":
        raise NotImplementedError(
            "row batching runs through the transpose identity, which only "
            "holds for sparse operands on both sides; "
            f"kernel={kern.name!r} is column-batched only"
        )

    # spilling is handled here, not forwarded: the inner run computes
    # Cᵀ, and files must hold row blocks of C, transposed back.
    spill_dir = spec.spill_dir
    on_batch_outer = on_batch

    def transposed_hook(batch, spans, batch_matrix):
        mat = transpose(batch_matrix)
        if spill_dir is not None:
            os.makedirs(spill_dir, exist_ok=True)
            save_matrix(os.path.join(spill_dir, f"batch_{batch}.npz"), mat)
        if on_batch_outer is not None:
            on_batch_outer(batch, spans, mat)

    inner_spec = spec.amended(spill_dir=None)
    inner_plan = (
        replace(exec_plan, spec=inner_spec)
        if exec_plan is not None else inner_spec
    )
    result = run_plan(
        transpose(b),
        transpose(a),
        inner_plan,
        on_batch=(
            transposed_hook
            if (on_batch is not None or spill_dir is not None)
            else None
        ),
        tracker=tracker,
        faults=faults,
    )
    if result.matrix is not None:
        result.matrix = transpose(result.matrix)
    result.info["batch_axis"] = "rows"
    return result
