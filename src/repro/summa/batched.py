"""BatchedSUMMA3D driver (paper Alg. 4) — the library's flagship entry point.

The driver validates inputs, builds the process grid, launches the SPMD
program on the simulated-MPI engine, and reassembles the distributed
output.  When a memory budget is given and no explicit batch count, the
distributed symbolic step (Alg. 3) chooses ``b`` exactly as the paper does.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from ..errors import MemoryPressureError, ShapeError, SpmdError
from ..grid.distribution import extract_a_tile, extract_b_tile, gather_tiles
from ..grid.grid3d import ProcGrid3D
from ..kernels import MaskedSpgemmKernel, get_kernel
from ..mem import ENFORCE_MODES, MemoryLedger, resolve_budget
from ..model.memory import predict_memory
from ..mp.bridge import DriverCallback
from ..resilience import HEAL_MODES, CheckpointManager, HealContext, HealingBody
from ..resilience import run_key as _checkpoint_run_key
from ..simmpi.comm import DEFAULT_TIMEOUT
from ..simmpi.engine import run_spmd
from ..simmpi.faults import FaultInjector
from ..simmpi.tracker import CommTracker
from ..sparse.io import save_matrix
from ..sparse.matrix import BYTES_PER_NONZERO, SparseMatrix
from ..utils.timing import StepTimes
from .core import spmd_batched_summa3d
from .exec import OVERLAP_MODES
from .result import SummaResult


class _BatchPieceCollector:
    """Driver-side sink for the memory-constrained streaming path.

    When the caller discards the output (``keep_output=False``) but still
    consumes batches (``spill_dir`` / ``on_batch``), ranks used to hold
    every piece anyway so the driver could gather them afterwards —
    defeating the point of batching.  Instead each rank now hands its
    finished piece to :meth:`sink` (called from the rank threads, hence
    the lock) and frees it; once all ``nprocs`` pieces of a batch are in,
    the batch is gathered immediately and the pieces dropped.  The driver
    flushes completed batches in batch order after the run.
    """

    def __init__(
        self, nprocs: int, nrows: int, ncols: int, on_complete=None
    ) -> None:
        self._lock = threading.Lock()
        self._nprocs = nprocs
        self._nrows = nrows
        self._ncols = ncols
        self._pending: dict[int, list] = {}
        self._on_complete = on_complete
        self.completed: dict[int, tuple[list, SparseMatrix]] = {}

    def sink(self, batch: int, r0: int, c0: int, tile: SparseMatrix) -> None:
        with self._lock:
            pieces = self._pending.setdefault(batch, [])
            pieces.append((r0, c0, tile))
            if len(pieces) == self._nprocs:
                del self._pending[batch]
                spans = sorted({(c, c + t.ncols) for _r, c, t in pieces})
                gathered = gather_tiles(self._nrows, self._ncols, pieces)
                self.completed[batch] = (spans, gathered)
            else:
                return
        # durability hook (checkpointing) runs outside the collector lock
        # but still *during* the run, the moment the batch's last piece
        # lands — so a later crash can never lose this batch.
        if self._on_complete is not None:
            self._on_complete(batch, spans, gathered)

    def drop_pending(self) -> None:
        """Discard half-gathered batches (online heal): the repaired run
        re-enters from the checkpointed batch boundary and every
        incomplete batch is recomputed from scratch, so stale pieces —
        possibly including ones sunk by the dead rank — must not mix
        with their recomputed replacements."""
        with self._lock:
            self._pending.clear()


def batched_summa3d(
    a: SparseMatrix,
    b: SparseMatrix,
    nprocs: int = 4,
    layers: int = 1,
    *,
    batches: int | None = None,
    memory_budget: int | None = None,
    memory_budget_per_rank: int | None = None,
    enforce: str = "off",
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
    suite="esc",
    semiring="plus_times",
    kernel="spgemm",
    sample: SparseMatrix | None = None,
    keep_output: bool = True,
    postprocess=None,
    on_batch=None,
    mask: SparseMatrix | None = None,
    mask_complement: bool = False,
    batch_scheme: str = "block-cyclic",
    merge_policy: str = "deferred",
    comm_backend="dense",
    overlap: str = "off",
    spill_dir=None,
    tracker: CommTracker | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    faults=None,
    checksums: bool | None = None,
    max_retries: int | None = 3,
    checkpoint_dir=None,
    resume: bool = False,
    checkpoint_keep_last: int | None = None,
    heal: str | None = None,
    world_spares: int = 0,
    world: str = "threads",
    transport: str = "auto",
) -> SummaResult:
    """Multiply ``C = A @ B`` with the memory-constrained, communication-
    avoiding BatchedSUMMA3D algorithm.

    Parameters
    ----------
    a, b:
        Global input matrices (``a.ncols == b.nrows``).  In a real
        deployment these live pre-distributed; the simulation hands each
        rank its tile.
    nprocs:
        Simulated process count ``p``; ``p / layers`` must be a perfect
        square.
    layers:
        ``l``, the communication-avoiding replication factor.
    batches:
        Explicit ``b``.  ``None`` (default) lets the symbolic step compute
        it from ``memory_budget``; with neither given, ``b = 1``.
    memory_budget:
        Aggregate memory ``M`` in bytes across all processes.
    memory_budget_per_rank:
        The same limit expressed per rank.  Exactly one of
        ``memory_budget`` / ``memory_budget_per_rank`` may be given; the
        driver converts between the two here — and only here — via
        :func:`repro.mem.resolve_budget` (``aggregate = per_rank * p``,
        ``per_rank = aggregate // p``), so every downstream consumer
        (Alg. 3 batch planning takes the aggregate, ledger enforcement
        takes the per-rank figure) sees consistent units.
    enforce:
        What the per-rank :class:`~repro.mem.MemoryLedger` does when its
        measured high-water mark exceeds the per-rank budget: ``"off"``
        (default, account only), ``"warn"`` (record a warning in
        ``info["memory"]["warnings"]``), or ``"strict"`` (raise a
        deterministic :class:`~repro.errors.MemoryBudgetExceededError`
        at the first stage boundary over budget; the driver's
        graceful-degradation path catches it and re-runs with ``2b``
        batches).  Requires a budget when not ``"off"``.
    suite:
        Kernel suite name (``"esc"``, ``"unsorted-hash"``, ``"sorted-heap"``,
        ``"hybrid"``, ``"spa"``) or a :class:`~repro.sparse.KernelSuite`.
    kernel:
        The :class:`~repro.kernels.LocalKernel` run at every stage:
        ``"spgemm"`` (default, sparse×sparse — the paper's workload,
        bit-identical to the pre-kernel-seam behaviour), ``"spmm"``
        (sparse×dense → dense; ``b`` is a 2-D ndarray and
        ``result.matrix`` is dense), ``"sddmm"`` (dense×dense sampled by
        the sparse ``sample=`` pattern) or ``"masked_spgemm"``
        (sparse×sparse restricted to ``mask=``, computed *inside* the
        local multiply so unmasked intermediates never materialise;
        without ``mask=`` the symbolic pass's product pattern is used,
        making ``symbolic3d`` the mask-producing prologue).
    sample:
        SDDMM's sampling pattern ``S`` (sparse, shape of the product):
        only its stored coordinates are computed.  Required for
        ``kernel="sddmm"``, invalid otherwise.
    semiring:
        Semiring name or instance (default ordinary arithmetic).
    keep_output:
        When False the product is discarded batch-by-batch (the paper's
        memory-constrained usage); ``result.matrix`` is ``None``.
    postprocess:
        Distributed per-batch hook ``fn(batch, c0, c1, column_block) ->
        SparseMatrix`` running inside the SPMD region (see
        :func:`~repro.summa.core.spmd_batched_summa3d`).
    on_batch:
        Driver-side hook ``fn(batch, c0_c1_list, batch_matrix)`` called
        after the run with each gathered batch, in batch order — the
        "application consumes the batch" integration point.
    mask:
        Optional output mask of shape ``(a.nrows, b.ncols)``: only
        coordinates present in the mask's pattern survive (GraphBLAS
        ``mxm`` with a mask; with ``mask_complement=True``, only
        coordinates *absent* from it).  Applied per batch inside the
        distributed postprocess, so masked entries are discarded before
        they accumulate — the triangle-counting usage (Sec. V-B).
    batch_scheme:
        ``"block-cyclic"`` (paper Fig. 1(i)) or ``"block"`` (contiguous
        split; the Merge-Fiber load-imbalance ablation).
    merge_policy:
        ``"deferred"`` (Alg. 1 line 8, the paper's choice) or
        ``"incremental"`` (merge each stage immediately: lower transient
        memory, potentially more merge work — Sec. III-A).
    comm_backend:
        How operand tiles move between ranks: ``"dense"`` (whole-tile
        collectives, Table II), ``"sparse"`` (SpComm3D-style
        sparsity-aware point-to-point, see :mod:`repro.comm`) or
        ``"auto"`` (the extended α–β model picks per multiplication).
        Both concrete backends produce bit-identical products.
    overlap:
        ``"off"`` (default) executes stages strictly in order;
        ``"depth1"`` pipelines — stage ``s+1``'s broadcasts are issued
        (nonblocking) before stage ``s``'s local multiply so transfer
        hides behind compute.  Products are bit-identical and the same
        bytes move per step; see :mod:`repro.summa.exec`.
    spill_dir:
        Directory to save each gathered batch to (``batch_<i>.npz``, the
        paper's "saved to disk by the application" mode).  Implies the
        batches are gathered; combine with ``keep_output=False`` for the
        memory-constrained pattern.
    tracker:
        Optional communication meter shared with the caller.
    faults:
        A :class:`~repro.simmpi.faults.FaultPlan` (or
        :class:`~repro.simmpi.faults.FaultInjector`, or a list of CLI
        fault-spec strings) to run under deterministic fault injection.
        The injector's :meth:`~repro.simmpi.faults.FaultInjector.stats`
        surface as ``result.fault_stats``.
    checksums:
        Force per-message envelope checksums on/off; default (``None``)
        enables them exactly when faults are injected, so fault-free runs
        keep the seed wire format.
    max_retries:
        Bound on transparent retries of transiently-failed communication
        attempts (``None`` disables retrying).
    checkpoint_dir:
        Directory for manifest-backed batch checkpoints
        (:class:`~repro.resilience.CheckpointManager`): each batch
        becomes durable the moment its last piece lands, so a crashed
        run can be continued.
    resume:
        With ``checkpoint_dir``, continue from the last completed batch
        of a previous (crashed) run instead of batch 0.  The manifest
        must match this multiplication (operands + configuration);
        ``batches=None`` adopts the manifest's batch count.
    checkpoint_keep_last:
        With ``checkpoint_dir``, garbage-collect all but the newest ``k``
        completed batch files as the run progresses (manifest entries
        remain as tombstones, so resume still continues from the right
        batch).  For runs that stream batches out (``keep_output=False``
        with ``on_batch``/``spill_dir`` consuming them during assembly
        only) the checkpoint is pure insurance and need not retain the
        whole history.  Incompatible with needing the full output back
        out of the checkpoint after a resume.
    heal:
        Online recovery mode (requires ``checkpoint_dir``): ``None``
        (default) keeps PR 3 semantics — a rank crash aborts the run
        with a checkpoint pointer.  ``"spare"`` parks ``world_spares``
        pre-allocated spare ranks and promotes one into a dead rank's
        grid position; ``"shrink"`` shrinks the *host pool*, respawning
        the dead position oversubscribed onto the lowest surviving host.
        Either way survivors revoke the old communicators, agree on the
        repair, rebuild the grid and re-enter from the last checkpointed
        batch — the run completes without restarting, bit-identical to a
        fault-free run, with the heal reported in
        ``info["resilience"]["heal"]``.
    world_spares:
        Number of spare ranks to pre-allocate for ``heal="spare"``.
    world:
        Execution world for the SPMD region: ``"threads"`` (default,
        deterministic reference) or ``"processes"`` (one OS process per
        rank for real multicore speedup — see :mod:`repro.mp`).
        Products are bit-identical between the two; fault injection and
        online healing are thread-world-only.
    transport:
        Payload wire format for ``world="processes"``: ``"naive"``
        (pickle everything), ``"shm"`` (zero-copy shared memory) or
        ``"auto"`` (shm above a size threshold).  Ignored by the
        threaded world.

    Returns
    -------
    SummaResult
    """
    kern = get_kernel(kernel)
    aux = None
    if kern.name == "masked_spgemm":
        # the mask is the kernel's aux operand; a caller-level name-based
        # request honours mask_complement= through the kernel constructor
        if isinstance(kernel, str) and mask_complement:
            kern = MaskedSpgemmKernel(complement=True)
        if mask is not None:
            aux = mask
        else:
            # symbolic pass as the mask-producing prologue: the product
            # pattern keeps every structural nonzero, so this matches the
            # unmasked product while exercising the masked pipeline.
            from ..sparse.spgemm.symbolic import symbolic_pattern

            aux = symbolic_pattern(a, b)
        mask = None  # consumed by the kernel, not the postprocess path
    elif kern.name == "sddmm":
        if sample is None:
            raise ValueError(
                'kernel="sddmm" requires sample= (the sparse sampling '
                "pattern S, shaped like the product)"
            )
        aux = sample
    elif sample is not None:
        raise ValueError(
            f'sample= only applies to kernel="sddmm", not {kern.name!r}'
        )
    out_nrows, out_ncols = kern.validate(a, b, aux)
    if mask is not None and kern.name != "spgemm":
        raise ValueError(
            'mask= applies to kernel="spgemm" (postprocess filtering) or '
            'kernel="masked_spgemm" (in-multiply masking), '
            f"not {kern.name!r}"
        )
    if kern.name != "spgemm" and (
        checkpoint_dir is not None or resume or heal is not None
    ):
        raise NotImplementedError(
            "checkpoint/resume/heal currently require the default SpGEMM "
            f"kernel (got kernel={kern.name!r}): run fingerprints and "
            "batch files do not cover kernel/aux operands yet"
        )
    if kern.output_kind != "sparse":
        for value, name in (
            (postprocess, "postprocess"), (mask, "mask"),
            (spill_dir, "spill_dir"), (on_batch, "on_batch"),
        ):
            if value is not None:
                raise ValueError(
                    f"{name}= requires a sparse-output kernel; "
                    f"{kern.name!r} produces a dense result"
                )
    if batches is not None and batches < 1:
        raise ShapeError(f"batches must be >= 1, got {batches}")
    if overlap not in OVERLAP_MODES:
        raise ValueError(
            f"unknown overlap mode {overlap!r}; expected one of {OVERLAP_MODES}"
        )
    if enforce not in ENFORCE_MODES:
        raise ValueError(
            f"unknown enforce mode {enforce!r}; expected one of {ENFORCE_MODES}"
        )
    # The single aggregate <-> per-rank unit conversion point (satellite b):
    # Alg. 3 consumes the aggregate M, the ledger the per-rank share.
    memory_budget, budget_per_rank = resolve_budget(
        memory_budget, memory_budget_per_rank, nprocs
    )
    if enforce != "off" and budget_per_rank is None:
        raise ValueError(
            f'enforce="{enforce}" needs a budget: pass memory_budget= '
            "(aggregate) or memory_budget_per_rank="
        )
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir=")
    if heal is not None:
        if heal not in HEAL_MODES:
            raise ValueError(
                f"unknown heal mode {heal!r}; expected one of {HEAL_MODES}"
            )
        if checkpoint_dir is None:
            raise ValueError(
                "heal= requires checkpoint_dir=: the re-entry point of an "
                "online heal is the last durably checkpointed batch"
            )
        if heal == "spare" and world_spares < 1:
            raise ValueError('heal="spare" needs world_spares >= 1')
    if world_spares < 0:
        raise ValueError(f"world_spares must be >= 0, got {world_spares}")
    grid = ProcGrid3D(nprocs, layers)
    if tracker is None:
        tracker = CommTracker()

    injector = None
    if faults is not None:
        if isinstance(faults, FaultInjector):
            injector = faults
        else:
            from ..simmpi.faults import FaultPlan

            injector = FaultInjector(
                faults if isinstance(faults, FaultPlan) else FaultPlan(faults)
            )

    if comm_backend == "auto":
        if not kern.supports_symbolic:
            # the α–β chooser needs nonzero statistics of both operands;
            # dense-operand kernels ship dense panels by collectives on
            # either backend, so "dense" is the honest default.
            comm_backend = "dense"
        else:
            from .planner import choose_backend

            comm_backend = choose_backend(
                a, b, nprocs=nprocs, layers=layers, batches=batches or 1,
                overlap=overlap,
            )

    if mask is not None:
        if mask.shape != (out_nrows, out_ncols):
            raise ShapeError(
                f"mask shape {mask.shape} != product shape "
                f"{(out_nrows, out_ncols)}"
            )
        postprocess = _compose_mask(mask, mask_complement, postprocess)

    # Checkpointing: the batch is the durability granule.  The driver
    # must know the batch count before the run to fingerprint the batch
    # geometry, so when the symbolic step would normally run in-band it
    # runs as a driver pre-pass instead (same Alg. 3, same metering).
    ckpt = None
    first_batch = 0
    sym_prepass = None
    # Checkpoint buffers live on the driver, not on any rank; they get
    # their own ledger so the merged memory report still accounts them.
    ckpt_ledger = MemoryLedger(rank="driver")
    if checkpoint_dir is not None:
        ckpt = CheckpointManager(
            checkpoint_dir, keep_last=checkpoint_keep_last, ledger=ckpt_ledger
        )
        ckpt_key = _checkpoint_run_key(
            a, b,
            nprocs=nprocs, layers=layers, batch_scheme=batch_scheme,
            merge_policy=merge_policy,
            suite=str(getattr(suite, "name", suite)),
            semiring=str(getattr(semiring, "name", semiring)),
        )
        manifest = ckpt.load_manifest() if resume else None
        if batches is None and manifest is None:
            if memory_budget is not None:
                from .symbolic3d import symbolic3d

                sym = symbolic3d(
                    a, b, nprocs, layers,
                    memory_budget=memory_budget,
                    bytes_per_nonzero=bytes_per_nonzero,
                    tracker=tracker, timeout=timeout,
                    world=world, transport=transport,
                )
                batches = sym.batches
                sym_prepass = {
                    "batches": sym.batches, "max_nnz_c": sym.max_nnz_c,
                    "max_nnz_a": sym.max_nnz_a, "max_nnz_b": sym.max_nnz_b,
                }
            else:
                batches = 1
        if resume:
            batches, first_batch = ckpt.resume_run(ckpt_key, batches)
        else:
            ckpt.start_run(ckpt_key, batches)

    # Memory-constrained streaming: when the output is discarded but
    # batches are still consumed, ranks stream each finished piece to the
    # driver instead of holding it, so per-rank memory stays flat.  A
    # checkpointing run always streams: batches must become durable the
    # moment they complete, not after the run.
    def make_collector():
        if ckpt is not None:
            return _BatchPieceCollector(
                nprocs, out_nrows, out_ncols, on_complete=ckpt.write_batch
            )
        if not keep_output and (on_batch is not None or spill_dir is not None):
            return _BatchPieceCollector(nprocs, out_nrows, out_ncols)
        return None

    collector = make_collector()
    rebatched: list[dict] = []
    heal_ctx = None
    world_info: dict = {}
    while True:
        # Under the process world the collector's sink must run in the
        # driver (it feeds gather/checkpoint state workers cannot see);
        # the DriverCallback wrapper ships each piece back through the
        # engine's results queue.
        sink = collector.sink if collector is not None else None
        if sink is not None and world == "processes":
            sink = DriverCallback(sink)
        spmd_kwargs = dict(
            kernel=kern,
            aux=aux,
            batches=batches,
            memory_budget=memory_budget,
            memory_budget_per_rank=budget_per_rank,
            enforce=enforce,
            bytes_per_nonzero=bytes_per_nonzero,
            suite=suite,
            semiring=semiring,
            keep_pieces=keep_output,
            postprocess=postprocess,
            batch_scheme=batch_scheme,
            merge_policy=merge_policy,
            comm_backend=comm_backend,
            overlap=overlap,
            piece_sink=sink,
            max_retries=max_retries,
            batch_barrier=ckpt is not None,
        )
        try:
            if heal is None:
                per_rank = run_spmd(
                    nprocs,
                    spmd_batched_summa3d,
                    a,
                    b,
                    grid,
                    start_batch=first_batch,
                    **spmd_kwargs,
                    tracker=tracker,
                    timeout=timeout,
                    faults=injector,
                    checksums=checksums,
                    world=world,
                    transport=transport,
                    world_info=world_info,
                )
            else:
                # Online healing: each rank runs a HealingBody that
                # re-enters the SPMD program from the checkpointed batch
                # boundary after every membership epoch change, instead of
                # the whole world aborting on the first crash.
                heal_ctx = HealContext(
                    heal, checkpoint=ckpt, collector=collector,
                    first_batch=first_batch,
                )

                def attempt(comm, start_batch, _kw=spmd_kwargs):
                    return spmd_batched_summa3d(
                        comm, a, b, grid, start_batch=start_batch, **_kw
                    )

                def join_bytes(position, _grid=grid):
                    # uniform nbytes protocol (repro.mem.nbytes_of): the
                    # tiles themselves know their storage footprint.
                    ta = extract_a_tile(a, _grid, position)
                    tb = extract_b_tile(b, _grid, position)
                    return ta.nbytes + tb.nbytes

                body = HealingBody(heal_ctx, attempt, join_bytes=join_bytes)
                if isinstance(sink, DriverCallback):
                    # the sink hides inside the attempt closure; expose
                    # it so the process engine can index the callback.
                    body.driver_callbacks = [sink]
                per_rank = run_spmd(
                    nprocs,
                    body,
                    tracker=tracker,
                    timeout=timeout,
                    faults=injector,
                    checksums=checksums,
                    world_spares=world_spares,
                    heal=heal_ctx,
                    world=world,
                    transport=transport,
                    world_info=world_info,
                )
            break
        except SpmdError as err:
            pressures = [
                e for e in err.failures.values()
                if isinstance(e, MemoryPressureError)
            ]
            if pressures and all(
                isinstance(e, MemoryPressureError) for e in err.failures.values()
            ):
                # graceful degradation (the paper's own memory lever):
                # double the batch count and rerun.  The column geometry
                # changes with b, so checkpointed batches are invalid.
                cur = next(
                    (e.batches for e in pressures if e.batches), None
                ) or (batches or 1)
                new_b = min(cur * 2, max(1, out_ncols))
                if new_b <= cur:
                    raise
                rebatched.append({"from": int(cur), "to": int(new_b)})
                batches = new_b
                first_batch = 0
                if ckpt is not None:
                    ckpt.reset(ckpt_key, new_b)
                collector = make_collector()
                continue
            if ckpt is not None:
                raise SpmdError(
                    err.failures, checkpoint_dir=os.fspath(checkpoint_dir)
                ) from err
            raise

    ran_batches = per_rank[0]["batches"]
    per_rank_times = [r["times"] for r in per_rank]
    step_times = StepTimes.critical_path(per_rank_times)
    info = dict(per_rank[0]["info"])
    info.update(
        suite=str(getattr(suite, "name", suite)),
        semiring=str(getattr(semiring, "name", semiring)),
        layers=layers,
        nprocs=nprocs,
    )
    info["world"] = dict(world_info) if world_info else {"world": world}

    # Uniform memory report: per-rank ledger marks merged into one block,
    # plus the driver-side checkpoint category and — when symbolic matrix
    # statistics exist — the Table III closed-form prediction with the
    # measured-vs-predicted ratio (the closed-loop calibration signal).
    mem_block = MemoryLedger.merge_reports(
        [r["info"]["memory"] for r in per_rank]
    )
    if ckpt_ledger.high_water("checkpoint"):
        mem_block["categories"]["checkpoint"] = {
            "high_water": ckpt_ledger.high_water("checkpoint"),
            "current": ckpt_ledger.current("checkpoint"),
        }
    sym_stats = info.get("symbolic") or sym_prepass
    predicted = None
    if sym_stats is not None:
        predicted = predict_memory(
            nprocs=nprocs,
            layers=layers,
            batches=ran_batches,
            max_nnz_a=sym_stats["max_nnz_a"],
            max_nnz_b=sym_stats["max_nnz_b"],
            max_nnz_c=sym_stats["max_nnz_c"],
            keep_output=keep_output,
            overlap=overlap,
            bytes_per_nonzero=bytes_per_nonzero,
        )
    else:
        # no symbolic statistics (non-SpGEMM kernels, or SpGEMM without a
        # budget): the kernel's own geometry-exact footprint model stands
        # in for the Table III closed form.
        predicted = kern.predict_memory(
            a, b, aux,
            nprocs=nprocs,
            layers=layers,
            batches=ran_batches,
            keep_output=keep_output,
            overlap=overlap,
        )
    if predicted is not None:
        mem_block["model"] = predicted
        if mem_block["high_water_total"]:
            mem_block["model_error"] = (
                predicted["high_water_total"] / mem_block["high_water_total"]
            )
    info["memory"] = mem_block
    # alias of info["memory"]["high_water_total"] (== max over ranks)
    max_local_bytes = mem_block["high_water_total"]

    info["fiber_piece_nnz"] = [r["fiber_piece_nnz"] for r in per_rank]
    info["batch_scheme"] = batch_scheme
    info["merge_policy"] = merge_policy
    if sym_prepass is not None and "symbolic" not in info:
        info["symbolic"] = sym_prepass
    if injector is not None:
        info["fault_stats"] = injector.stats()
    if injector is not None or ckpt is not None or rebatched:
        resilience: dict = {"max_retries": max_retries}
        if ckpt is not None:
            resilience["checkpoint_dir"] = os.fspath(checkpoint_dir)
            resilience["resumed_from_batch"] = first_batch
            resilience["checkpoint_io"] = ckpt.io_stats()
        if heal_ctx is not None:
            resilience["heal"] = heal_ctx.report()
            resilience["world_spares"] = world_spares
        if rebatched:
            resilience["rebatched"] = rebatched
        info["resilience"] = resilience

    if spill_dir is not None:
        os.makedirs(spill_dir, exist_ok=True)

    def consume(batch: int, spans: list, batch_matrix: SparseMatrix) -> None:
        if spill_dir is not None:
            save_matrix(
                os.path.join(spill_dir, f"batch_{batch}.npz"), batch_matrix
            )
        if on_batch is not None:
            on_batch(batch, spans, batch_matrix)

    matrix = None
    if ckpt is not None:
        # resumed prefix from the checkpoint, computed suffix from the
        # collector; consumption replays in batch order either way, and
        # the final assembly concatenates the same canonical COO set the
        # non-checkpointed path would, so products are bit-identical.
        # When nothing downstream consumes batches the prefix is never
        # loaded back — required under keep_last pruning, where older
        # batch files are tombstones by design.
        needs_batches = (
            keep_output or on_batch is not None or spill_dir is not None
        )
        if needs_batches:
            batch_matrices = []
            for batch in range(first_batch):
                spans, batch_matrix = ckpt.load_batch(batch)
                consume(batch, spans, batch_matrix)
                batch_matrices.append(batch_matrix)
            for batch in range(first_batch, ran_batches):
                spans, batch_matrix = collector.completed.pop(batch)
                consume(batch, spans, batch_matrix)
                batch_matrices.append(batch_matrix)
            if keep_output:
                matrix = gather_tiles(
                    out_nrows, out_ncols, [(0, 0, m) for m in batch_matrices]
                )
        else:
            collector.completed.clear()
        gc_stats = ckpt.gc()
        if gc_stats["orphans_removed"] or gc_stats["pruned"]:
            info.setdefault("resilience", {})["checkpoint_gc"] = gc_stats
    elif collector is not None:
        for batch in range(ran_batches):
            spans, batch_matrix = collector.completed.pop(batch)
            consume(batch, spans, batch_matrix)
    elif keep_output:
        if on_batch is not None or spill_dir is not None:
            for batch in range(ran_batches):
                batch_pieces = [
                    (r0, c0, tile)
                    for r in per_rank
                    for (bt, r0, c0, tile) in r["pieces"]
                    if bt == batch
                ]
                batch_matrix = gather_tiles(out_nrows, out_ncols, batch_pieces)
                spans = sorted({(c0, c0 + t.ncols) for _r0, c0, t in batch_pieces})
                consume(batch, spans, batch_matrix)
        all_pieces = [
            (r0, c0, tile)
            for r in per_rank
            for (_batch, r0, c0, tile) in r["pieces"]
        ]
        # the kernel knows its output representation: sparse kernels
        # concatenate COO pieces, dense kernels place panels in an ndarray
        matrix = kern.gather(out_nrows, out_ncols, all_pieces)

    return SummaResult(
        matrix=matrix,
        grid=grid,
        batches=ran_batches,
        step_times=step_times,
        per_rank_times=per_rank_times,
        tracker=tracker,
        max_local_bytes=max_local_bytes,
        info=info,
        trace=[r["trace"] for r in per_rank],
    )


def _compose_mask(mask: SparseMatrix, complement: bool, inner):
    """Build a postprocess hook applying an output mask per column block,
    composed before any user-provided hook."""
    from ..sparse.ops import hadamard, submatrix

    def hook(batch: int, c0: int, c1: int, block: SparseMatrix) -> SparseMatrix:
        mask_block = submatrix(mask, 0, mask.nrows, c0, c1)
        if complement:
            from ..sparse.matrix import INDEX_DTYPE
            from ..sparse.spgemm.masked import _mask_keys

            keys = (
                block.col_indices() * np.int64(max(block.nrows, 1))
                + block.rowidx
            )
            mkeys = _mask_keys(mask_block)
            pos = np.searchsorted(mkeys, keys)
            pos = np.minimum(pos, max(mkeys.shape[0] - 1, 0))
            inside = (
                mkeys[pos] == keys
                if mkeys.shape[0]
                else np.zeros(keys.shape[0], bool)
            )
            keep = ~inside
            csum = np.concatenate(([0], np.cumsum(keep, dtype=INDEX_DTYPE)))
            block = SparseMatrix(
                block.nrows, block.ncols, csum[block.indptr],
                block.rowidx[keep], block.values[keep],
                sorted_within_columns=block.sorted_within_columns,
                validate=False,
            )
        else:
            pattern = SparseMatrix(
                mask_block.nrows, mask_block.ncols, mask_block.indptr,
                mask_block.rowidx, np.ones(mask_block.nnz),
                sorted_within_columns=mask_block.sorted_within_columns,
                validate=False,
            )
            block = hadamard(block, pattern)
        if inner is not None:
            block = inner(batch, c0, c1, block)
        return block

    return hook


def batched_summa3d_rows(
    a: SparseMatrix,
    b: SparseMatrix,
    nprocs: int = 4,
    layers: int = 1,
    *,
    batches: int | None = None,
    memory_budget: int | None = None,
    memory_budget_per_rank: int | None = None,
    enforce: str = "off",
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
    suite="esc",
    semiring="plus_times",
    kernel="spgemm",
    keep_output: bool = True,
    on_batch=None,
    batch_scheme: str = "block-cyclic",
    merge_policy: str = "deferred",
    comm_backend="dense",
    overlap: str = "off",
    spill_dir=None,
    tracker: CommTracker | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    faults=None,
    checksums: bool | None = None,
    max_retries: int | None = 3,
    checkpoint_dir=None,
    resume: bool = False,
    checkpoint_keep_last: int | None = None,
    heal: str | None = None,
    world_spares: int = 0,
    world: str = "threads",
    transport: str = "auto",
) -> SummaResult:
    """Row-wise batched SpGEMM: each batch computes ``nrows / b`` *rows*
    of ``C`` (paper Sec. IV-B).

    Column batching re-broadcasts **A** once per batch, which is expensive
    when ``nnz(A) >> nnz(B)``; batching over rows re-broadcasts **B**
    instead.  Implemented through the transpose identity
    ``C = (Bᵀ Aᵀ)ᵀ``: the column-batched algorithm runs on the transposed
    operands, so inside the run the roles of the A- and B-Broadcast steps
    are swapped (metered accordingly).  ``on_batch`` receives each batch
    already transposed back — a row block of ``C``, with ``spans`` giving
    its global *row* ranges.

    Only ordinary arithmetic and other commutative-multiply semirings
    preserve the identity; the multiply order is swapped by the transpose.

    All batching/communication/memory knobs of :func:`batched_summa3d`
    (``batch_scheme``, ``merge_policy``, ``comm_backend``, ``overlap``,
    ``bytes_per_nonzero``, ``memory_budget_per_rank``, ``enforce``,
    ``spill_dir``) apply unchanged — they act on the transposed run.  Spilled batch files hold *row* blocks of ``C``
    (already transposed back), consistent with ``on_batch``.  The
    resilience knobs (``faults``, ``checksums``, ``max_retries``,
    ``checkpoint_dir``, ``resume``, ``checkpoint_keep_last``, ``heal``,
    ``world_spares``) also forward; checkpoints fingerprint the
    transposed operands, so resuming requires this same entry point.
    """
    from ..sparse.ops import transpose

    kern = get_kernel(kernel)
    if kern.name != "spgemm":
        raise NotImplementedError(
            "row batching runs through the transpose identity, which only "
            "holds for sparse operands on both sides; "
            f"kernel={kern.name!r} is column-batched only"
        )

    # spilling is handled here, not forwarded: the inner run computes
    # Cᵀ, and files must hold row blocks of C, transposed back.
    def transposed_hook(batch, spans, batch_matrix):
        mat = transpose(batch_matrix)
        if spill_dir is not None:
            os.makedirs(spill_dir, exist_ok=True)
            save_matrix(os.path.join(spill_dir, f"batch_{batch}.npz"), mat)
        if on_batch is not None:
            on_batch(batch, spans, mat)

    result = batched_summa3d(
        transpose(b),
        transpose(a),
        nprocs=nprocs,
        layers=layers,
        batches=batches,
        memory_budget=memory_budget,
        memory_budget_per_rank=memory_budget_per_rank,
        enforce=enforce,
        bytes_per_nonzero=bytes_per_nonzero,
        suite=suite,
        semiring=semiring,
        keep_output=keep_output,
        on_batch=(
            transposed_hook
            if (on_batch is not None or spill_dir is not None)
            else None
        ),
        batch_scheme=batch_scheme,
        merge_policy=merge_policy,
        comm_backend=comm_backend,
        overlap=overlap,
        tracker=tracker,
        timeout=timeout,
        faults=faults,
        checksums=checksums,
        max_retries=max_retries,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        checkpoint_keep_last=checkpoint_keep_last,
        heal=heal,
        world_spares=world_spares,
        world=world,
        transport=transport,
    )
    if result.matrix is not None:
        result.matrix = transpose(result.matrix)
    result.info["batch_axis"] = "rows"
    return result
