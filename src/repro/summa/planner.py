"""Batch-count bounds and layer selection (paper Sec. IV-A, contribution 3).

The exact batch count requires the distributed symbolic step
(:func:`~repro.summa.symbolic3d`), but cheap analytic bounds bracket it:

* **lower bound** — assume perfect merging inside Local-Multiply, so the
  unmerged intermediate is exactly ``nnz(C)`` (Eq. 2 with
  ``mem(C) = r * nnz(C)``);
* **upper bound** — assume no merging at all, so the intermediate is
  ``flops`` nonzeros (the worst case of Eq. 1).

The true per-process requirement sits between them (Eq. 1:
``flops >= sum_k nnz(D^(k)) >= nnz(C)``); a test asserts
``lower <= symbolic_b <= upper * slack`` where slack covers the
max-vs-mean load imbalance Alg. 3 deliberately budgets for.
"""

from __future__ import annotations

import math

from ..errors import PlannerError
from ..sparse.matrix import BYTES_PER_NONZERO


def _batches_bound(
    intermediate_nnz: int,
    nnz_a: int,
    nnz_b: int,
    memory_budget: int,
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
) -> int:
    r = bytes_per_nonzero
    denom = memory_budget - r * (nnz_a + nnz_b)
    if denom <= 0:
        raise PlannerError(
            f"memory budget {memory_budget} B cannot even hold the inputs "
            f"({r * (nnz_a + nnz_b)} B)"
        )
    return max(1, math.ceil(r * intermediate_nnz / denom))


def batches_lower_bound(
    nnz_c: int,
    nnz_a: int,
    nnz_b: int,
    memory_budget: int,
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
) -> int:
    """Eq. (2) with perfect intermediate compression (``mem(C) = r nnz(C)``)."""
    return _batches_bound(nnz_c, nnz_a, nnz_b, memory_budget, bytes_per_nonzero)


def batches_upper_bound(
    flops: int,
    nnz_a: int,
    nnz_b: int,
    memory_budget: int,
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
) -> int:
    """Eq. (2) with zero intermediate compression (``mem(C) = r flops``)."""
    return _batches_bound(flops, nnz_a, nnz_b, memory_budget, bytes_per_nonzero)


from ..plan.spec import ExecPlan, ExecSpec

#: Deprecated alias of :class:`repro.plan.ExecPlan`.  The auto-tuner's
#: outcome is now the reified execution plan itself — same attributes
#: (``layers``/``batches``/``predicted_seconds``/``candidates``/
#: ``backend``/``predicted_memory``) plus the executable ``spec`` and the
#: ``provenance`` of how it was chosen.  Existing ``PlanChoice`` callers
#: keep working; new code should import ``ExecPlan`` from ``repro.plan``.
PlanChoice = ExecPlan


def _reify(
    plan: ExecPlan,
    *,
    nprocs: int,
    kernel,
    memory_budget,
    bytes_per_nonzero: int,
    overlap: str,
    use_symbolic: bool,
    machine,
) -> ExecPlan:
    """Attach the executable spec and selection provenance to a winning
    candidate, turning the score table into a runnable :class:`ExecPlan`."""
    from dataclasses import replace

    spec = ExecSpec.from_kwargs(
        nprocs=nprocs,
        layers=plan.layers,
        batches=plan.batches,
        comm_backend=plan.backend,
        overlap=overlap,
        kernel=kernel,
        memory_budget=memory_budget,
        bytes_per_nonzero=bytes_per_nonzero,
    )
    provenance = {
        "mode": "auto",
        "use_symbolic": bool(use_symbolic),
        "machine": getattr(machine, "name", None) or type(machine).__name__,
        "candidates_scored": len(plan.candidates),
    }
    return replace(plan, spec=spec, provenance=provenance)


def choose_backend(
    a,
    b,
    *,
    nprocs: int,
    layers: int = 1,
    batches: int = 1,
    machine=None,
    overlap: str = "off",
) -> str:
    """Pick ``"dense"`` or ``"sparse"`` for one multiplication via the
    extended α–β model.

    Prices both backends' communication steps at the given ``(p, l, b)``
    — the sparse side including its ``Comm-Plan`` handshake — and returns
    the cheaper one.  Dense wins ties: on near-dense tiles the sparse
    backend moves the same bytes with strictly more messages.

    With ``overlap="depth1"`` the comparison switches from raw
    communication to the full pipelined makespan
    (:func:`~repro.model.predictor.predict_makespan`): once broadcasts
    hide behind the multiply, shaving bytes only matters while
    communication is still the per-stage maximum, which can flip the
    choice back to dense.
    """
    from ..model.complexity import total_comm_time
    from ..model.machine import CORI_KNL
    from ..sparse.spgemm.symbolic import symbolic_flops, symbolic_nnz

    if nprocs // max(layers, 1) <= 1:
        # single-stage grids broadcast nothing: no bytes to save
        return "dense"
    machine = machine if machine is not None else CORI_KNL
    common = dict(
        nprocs=nprocs,
        layers=layers,
        batches=batches,
        nnz_a=a.nnz,
        nnz_b=b.nnz,
        flops=symbolic_flops(a, b),
    )
    if overlap != "off":
        from ..model.predictor import predict_makespan

        common["nnz_c"] = symbolic_nnz(a, b)
        dense = predict_makespan(
            machine, comm_backend="dense", overlap=overlap, **common
        )
        sparse = predict_makespan(
            machine, comm_backend="sparse", inner_dim=a.ncols,
            overlap=overlap, **common,
        )
        return "sparse" if sparse < dense else "dense"
    dense = total_comm_time(machine, backend="dense", **common)
    sparse = total_comm_time(
        machine, backend="sparse", inner_dim=a.ncols, **common
    )
    return "sparse" if sparse < dense else "dense"


def _auto_config_kernel(
    kern,
    a,
    b,
    aux,
    nprocs: int,
    *,
    memory_budget: int | None,
    machine,
    overlap: str,
    bytes_per_nonzero: int,
) -> PlanChoice:
    """Candidate loop for kernels without a symbolic pass (SpMM, SDDMM).

    Batch requirements come from the kernel's geometry-exact footprint
    model (:meth:`~repro.kernels.LocalKernel.batches_for_budget`) and the
    score from :func:`~repro.model.complexity.comm_complexity` with the
    dense-operand byte terms — there is no flop-based symbolic statistic
    to price the broadcasts with when an operand is a dense panel.
    """
    from ..kernels.base import operand_shape
    from ..model.complexity import comm_complexity
    from ..model.machine import CORI_KNL

    machine = machine if machine is not None else CORI_KNL
    am, ak = operand_shape(a)
    _, bn = operand_shape(b)
    a_sparse = kern.a_kind == "sparse"
    b_sparse = kern.b_kind == "sparse"
    nnz_a = int(a.nnz) if a_sparse and hasattr(a, "nnz") else 0
    nnz_b = int(b.nnz) if b_sparse and hasattr(b, "nnz") else 0
    dense_a = None if a_sparse else int(am) * int(ak) * 8
    dense_b = None if b_sparse else int(ak) * int(bn) * 8
    dense_c = int(am) * int(bn) * 8 if kern.output_kind == "dense" else None
    # fiber volume: dense kernels ship dense partials (dense_c term);
    # sparse-output ones (SDDMM) ship one aux-patterned partial per layer
    aux_nnz = int(aux.nnz) if aux is not None and hasattr(aux, "nnz") else 0
    candidates = []
    candidate_memory = []
    for layers in range(1, nprocs + 1):
        if nprocs % layers:
            continue
        if math.isqrt(nprocs // layers) ** 2 != nprocs // layers:
            continue
        if memory_budget is None:
            batches = 1
        else:
            batches = kern.batches_for_budget(
                a, b, aux,
                nprocs=nprocs, layers=layers, memory_budget=memory_budget,
            )
        cand_memory = kern.predict_memory(
            a, b, aux,
            nprocs=nprocs, layers=layers, batches=batches,
            keep_output=True, overlap=overlap,
        )
        comm = comm_complexity(
            nprocs=nprocs,
            layers=layers,
            batches=batches,
            nnz_a=nnz_a,
            nnz_b=nnz_b,
            flops=layers * aux_nnz,
            bytes_per_nonzero=bytes_per_nonzero,
            kernel=kern.name,
            dense_a_bytes=dense_a,
            dense_b_bytes=dense_b,
            dense_c_bytes=dense_c,
        )
        predicted = sum(
            machine.alpha * c["latency_hops"] + machine.beta * c["bytes"]
            for step, c in comm.items()
            if step in ("A-Broadcast", "B-Broadcast", "AllToAll-Fiber")
        )
        candidates.append((layers, batches, predicted))
        candidate_memory.append(cand_memory)
    if not candidates:
        raise PlannerError(
            f"no feasible (layers, batches) configuration for nprocs={nprocs} "
            f"under budget {memory_budget}"
        )
    best_idx = min(range(len(candidates)), key=lambda i: candidates[i][2])
    best = candidates[best_idx]
    return PlanChoice(
        layers=best[0],
        batches=best[1],
        predicted_seconds=best[2],
        candidates=tuple(candidates),
        backend="dense",
        predicted_memory=candidate_memory[best_idx],
    )


def auto_config(
    a,
    b,
    nprocs: int,
    *,
    memory_budget: int | None = None,
    machine=None,
    use_symbolic: bool = True,
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
    backend: str = "dense",
    overlap: str = "off",
    kernel="spgemm",
    sample=None,
) -> PlanChoice:
    """Choose layers and batches jointly for one multiplication.

    For every valid layer count the batch requirement is computed — by the
    *exact* distributed symbolic step when ``use_symbolic`` (the paper's
    procedure), else by the analytic estimate — and the α–β model scores
    the full per-step time.  The argmin is returned with the whole
    candidate table for inspection.

    This automates the paper's manual procedure ("we set l = 16 as it
    usually gives the best result", Sec. V-D) and resolves its observed
    tension: more layers cut broadcasts but can *increase* the batch count
    (Fig. 10), so the two must be chosen together.

    ``backend`` prices the candidates under one communication backend
    (``"dense"`` or ``"sparse"``); ``"auto"`` scores each candidate under
    both and keeps the cheaper, recording the winner in
    ``ExecPlan.backend``.  Candidate tuples stay ``(layers, batches,
    predicted_seconds)`` with the per-candidate best time.

    Returns a :class:`~repro.plan.ExecPlan`: the winning candidate with
    its executable :class:`~repro.plan.ExecSpec` attached and
    ``provenance`` recording how it was chosen — pass it straight to
    :func:`~repro.summa.run_plan`.

    ``overlap="depth1"`` scores candidates with the pipelined makespan
    (broadcasts hidden behind the multiply, per stage the maximum of the
    two) instead of the plain step sum — overlap rewards stage-heavy
    (low-layer) grids, so the chosen ``l`` can shift.  With ``"off"``
    the score is exactly ``predict_steps(...).total()`` as before.

    ``kernel=`` plans for a non-SpGEMM local kernel: kernels without a
    symbolic pass (``"spmm"``, ``"sddmm"``) take a dense-aware candidate
    loop — batch counts from the kernel's own footprint model, scores
    from the dense-operand communication terms (``sample=`` supplies
    SDDMM's pattern).  ``"masked_spgemm"`` plans like SpGEMM: the
    symbolic statistics upper-bound the masked intermediate.
    """
    import math as _math

    from ..kernels import get_kernel
    from ..model.machine import CORI_KNL
    from ..model.predictor import (
        estimate_batches,
        overlapped_makespan,
        predict_steps,
    )
    from ..sparse.spgemm.symbolic import symbolic_flops, symbolic_nnz

    kern = get_kernel(kernel)
    machine = machine if machine is not None else CORI_KNL
    if not kern.supports_symbolic:
        return _reify(
            _auto_config_kernel(
                kern, a, b, sample, nprocs,
                memory_budget=memory_budget, machine=machine,
                overlap=overlap, bytes_per_nonzero=bytes_per_nonzero,
            ),
            nprocs=nprocs, kernel=kernel, memory_budget=memory_budget,
            bytes_per_nonzero=bytes_per_nonzero, overlap=overlap,
            use_symbolic=False, machine=machine,
        )
    if backend not in ("dense", "sparse", "auto"):
        raise PlannerError(f"unknown communication backend {backend!r}")
    backends = ("dense", "sparse") if backend == "auto" else (backend,)
    stats = dict(
        nnz_a=a.nnz,
        nnz_b=b.nnz,
        nnz_c=symbolic_nnz(a, b),
        flops=symbolic_flops(a, b),
    )
    candidates = []
    candidate_backends = []
    candidate_memory = []
    for layers in range(1, nprocs + 1):
        if nprocs % layers:
            continue
        if _math.isqrt(nprocs // layers) ** 2 != nprocs // layers:
            continue
        cand_memory = None
        if memory_budget is None:
            batches = 1
        elif use_symbolic:
            from .symbolic3d import symbolic3d

            from ..errors import MemoryBudgetError, SpmdError

            try:
                sym = symbolic3d(
                    a, b, nprocs=nprocs, layers=layers,
                    memory_budget=memory_budget,
                    bytes_per_nonzero=bytes_per_nonzero,
                )
                batches = sym.batches
                cand_memory = sym.info.get("predicted_memory")
            except (MemoryBudgetError, SpmdError) as exc:
                if isinstance(exc, SpmdError) and not all(
                    isinstance(e, MemoryBudgetError)
                    for e in exc.failures.values()
                ):
                    raise
                # genuinely infeasible at this layer count: the per-process
                # input maxima exceed the share (layering splits tiles
                # thinner, so higher l can be feasible where l=1 is not)
                continue
        else:
            try:
                batches = estimate_batches(
                    memory_budget=memory_budget,
                    nprocs=nprocs,
                    layers=layers,
                    bytes_per_nonzero=bytes_per_nonzero,
                    **stats,
                )
            except ValueError:
                continue
            from ..model.memory import estimate_max_tile_stats, predict_memory

            cand_memory = predict_memory(
                nprocs=nprocs, layers=layers, batches=batches,
                bytes_per_nonzero=bytes_per_nonzero, basis="estimate",
                **estimate_max_tile_stats(
                    nprocs=nprocs, layers=layers, **stats
                ),
            )
        stages = _math.isqrt(nprocs // layers)
        predicted, cand_backend = min(
            (
                overlapped_makespan(
                    predict_steps(
                        machine, nprocs=nprocs, layers=layers,
                        batches=batches, comm_backend=be,
                        inner_dim=a.ncols, **stats,
                    ),
                    stages=stages,
                    overlap=overlap,
                ),
                be,
            )
            for be in backends
        )
        candidates.append((layers, batches, predicted))
        candidate_backends.append(cand_backend)
        candidate_memory.append(cand_memory)
    if not candidates:
        raise PlannerError(
            f"no feasible (layers, batches) configuration for nprocs={nprocs} "
            f"under budget {memory_budget}"
        )
    best_idx = min(range(len(candidates)), key=lambda i: candidates[i][2])
    best = candidates[best_idx]
    return _reify(
        ExecPlan(
            layers=best[0],
            batches=best[1],
            predicted_seconds=best[2],
            candidates=tuple(candidates),
            backend=candidate_backends[best_idx],
            predicted_memory=candidate_memory[best_idx],
        ),
        nprocs=nprocs, kernel=kernel, memory_budget=memory_budget,
        bytes_per_nonzero=bytes_per_nonzero, overlap=overlap,
        use_symbolic=use_symbolic, machine=machine,
    )


def recommend_layers(
    nprocs: int,
    *,
    nnz_a: int,
    nnz_b: int,
    flops: int,
    batches: int = 1,
    machine=None,
) -> int:
    """Choose the layer count ``l`` minimising the modelled communication.

    Candidates are the divisors ``l`` of ``nprocs`` with square ``p / l``;
    the α–β cost of A-Broadcast + B-Broadcast + AllToAll-Fiber (Table II)
    is evaluated for each and the argmin returned.  This encodes the
    paper's observed tradeoff: broadcasts shrink like ``1/sqrt(l)`` while
    the fiber all-to-all grows with ``l`` (Table VI), so the optimum is an
    interior point that moves right as broadcasts dominate.
    """
    from ..model.machine import CORI_KNL
    from ..model.complexity import total_comm_time

    machine = machine if machine is not None else CORI_KNL
    candidates = [
        l for l in range(1, nprocs + 1)
        if nprocs % l == 0 and math.isqrt(nprocs // l) ** 2 == nprocs // l
    ]
    if not candidates:
        raise PlannerError(f"no valid layer counts for nprocs={nprocs}")
    return min(
        candidates,
        key=lambda l: total_comm_time(
            machine,
            nprocs=nprocs,
            layers=l,
            batches=batches,
            nnz_a=nnz_a,
            nnz_b=nnz_b,
            flops=flops,
        ),
    )
