"""3D sparse SUMMA (paper Alg. 2) — communication-avoiding, unbatched.

``batched_summa3d`` with ``batches = 1``: per-layer SUMMA2D followed by
the fiber ColSplit / AllToAll / Merge that assembles the final product
from each layer's low-rank contribution.
"""

from __future__ import annotations

from ..simmpi.comm import DEFAULT_TIMEOUT
from ..simmpi.tracker import CommTracker
from ..sparse.matrix import SparseMatrix
from .batched import batched_summa3d
from .result import SummaResult


def summa3d(
    a: SparseMatrix,
    b: SparseMatrix,
    nprocs: int = 8,
    layers: int = 2,
    *,
    suite="esc",
    semiring="plus_times",
    kernel="spgemm",
    sample: SparseMatrix | None = None,
    mask: SparseMatrix | None = None,
    mask_complement: bool = False,
    comm_backend="dense",
    overlap: str = "off",
    memory_budget: int | None = None,
    memory_budget_per_rank: int | None = None,
    enforce: str = "off",
    tracker: CommTracker | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    world: str = "threads",
    transport: str = "auto",
) -> SummaResult:
    """Multiply ``C = A @ B`` on a ``sqrt(p/l) x sqrt(p/l) x l`` grid.

    ``nprocs / layers`` must be a perfect square.  See
    :func:`batched_summa3d` for parameter semantics (including the
    ``overlap`` pipelining knob).  The memory knobs meter and enforce
    exactly as in the batched driver (including graceful degradation to
    a batched run under ``enforce="strict"``); the uniform
    ``info["memory"]`` report is produced either way.
    """
    return batched_summa3d(
        a,
        b,
        nprocs=nprocs,
        layers=layers,
        batches=1,
        suite=suite,
        semiring=semiring,
        kernel=kernel,
        sample=sample,
        mask=mask,
        mask_complement=mask_complement,
        comm_backend=comm_backend,
        overlap=overlap,
        memory_budget=memory_budget,
        memory_budget_per_rank=memory_budget_per_rank,
        enforce=enforce,
        tracker=tracker,
        timeout=timeout,
        world=world,
        transport=transport,
    )
