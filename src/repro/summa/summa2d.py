"""2D sparse SUMMA (paper Alg. 1) — the classic CombBLAS baseline.

A thin specialisation of the batched driver with ``layers = 1`` and
``batches = 1``: the stage structure, broadcasts and layer merge are
identical; the fiber steps vanish.
"""

from __future__ import annotations

from ..simmpi.comm import DEFAULT_TIMEOUT
from ..simmpi.tracker import CommTracker
from ..sparse.matrix import SparseMatrix
from .batched import batched_summa3d
from .result import SummaResult


def summa2d(
    a: SparseMatrix,
    b: SparseMatrix,
    nprocs: int = 4,
    *,
    suite="esc",
    semiring="plus_times",
    comm_backend="dense",
    overlap: str = "off",
    tracker: CommTracker | None = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> SummaResult:
    """Multiply ``C = A @ B`` on a square 2D process grid.

    ``nprocs`` must be a perfect square.  See :func:`batched_summa3d` for
    parameter semantics (including the ``overlap`` pipelining knob).
    """
    return batched_summa3d(
        a,
        b,
        nprocs=nprocs,
        layers=1,
        batches=1,
        suite=suite,
        semiring=semiring,
        comm_backend=comm_backend,
        overlap=overlap,
        tracker=tracker,
        timeout=timeout,
    )
