"""2D sparse SUMMA (paper Alg. 1) — the classic CombBLAS baseline.

A thin specialisation of the batched driver with ``layers = 1`` and
``batches = 1``: the stage structure, broadcasts and layer merge are
identical; the fiber steps vanish.
"""

from __future__ import annotations

from ..simmpi.comm import DEFAULT_TIMEOUT
from ..simmpi.tracker import CommTracker
from ..sparse.matrix import SparseMatrix
from .batched import batched_summa3d
from .result import SummaResult


def summa2d(
    a: SparseMatrix,
    b: SparseMatrix,
    nprocs: int = 4,
    *,
    suite="esc",
    semiring="plus_times",
    kernel="spgemm",
    sample: SparseMatrix | None = None,
    mask: SparseMatrix | None = None,
    mask_complement: bool = False,
    comm_backend="dense",
    overlap: str = "off",
    memory_budget: int | None = None,
    memory_budget_per_rank: int | None = None,
    enforce: str = "off",
    tracker: CommTracker | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    world: str = "threads",
    transport: str = "auto",
) -> SummaResult:
    """Multiply ``C = A @ B`` on a square 2D process grid.

    ``nprocs`` must be a perfect square.  See :func:`batched_summa3d` for
    parameter semantics (including the ``overlap`` pipelining knob).
    The memory knobs meter and enforce here exactly as in the batched
    driver (including graceful degradation to a batched run under
    ``enforce="strict"``); the uniform ``info["memory"]`` report is
    produced either way.
    """
    return batched_summa3d(
        a,
        b,
        nprocs=nprocs,
        layers=1,
        batches=1,
        suite=suite,
        semiring=semiring,
        kernel=kernel,
        sample=sample,
        mask=mask,
        mask_complement=mask_complement,
        comm_backend=comm_backend,
        overlap=overlap,
        memory_budget=memory_budget,
        memory_budget_per_rank=memory_budget_per_rank,
        enforce=enforce,
        tracker=tracker,
        timeout=timeout,
        world=world,
        transport=transport,
    )
