"""Structured per-op tracing for the SPMD executors.

The SPMD core used to interleave ad-hoc ``time.perf_counter()`` pairs
with the algorithm.  Executors now wrap every :class:`~repro.summa.exec.
StageOp` in a :class:`TraceSpan` — (rank, op, stage, batch, bytes,
t0/t1) — collected per rank by a :class:`Tracer`.  Spans still reduce to
the :class:`~repro.utils.timing.StepTimes` breakdowns the paper's
figures use (and :meth:`StepTimes.critical_path` across ranks), but the
full span stream additionally exports a `chrome://tracing
<https://www.chromium.org/developers/how-tos/trace-event-profiling-tool/>`_
timeline: one track per rank, one slice per op, with stage/batch/bytes
in the slice arguments.

This module also owns the canonical step labels.  They live here — not
in :mod:`repro.summa.core` — so the communication backends
(:mod:`repro.comm`) can tag their prefetch traffic with the same labels
without importing the SPMD core (which imports them back).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable

from ..utils.timing import StepTimes

# --------------------------------------------------------------------- #
# canonical step labels (the paper's breakdown vocabulary)
# --------------------------------------------------------------------- #

STEP_SYMBOLIC = "Symbolic"
STEP_COMM_PLAN = "Comm-Plan"
STEP_A_BCAST = "A-Broadcast"
STEP_B_BCAST = "B-Broadcast"
STEP_LOCAL_MULTIPLY = "Local-Multiply"
STEP_MERGE_LAYER = "Merge-Layer"
STEP_ALLTOALL_FIBER = "AllToAll-Fiber"
STEP_MERGE_FIBER = "Merge-Fiber"
STEP_POSTPROCESS = "Batch-Postprocess"
#: online-recovery span (agreement + grid rebuild + re-entry); recorded by
#: :mod:`repro.resilience.heal`, outside the paper's seven-step stack.
STEP_HEAL = "Heal"

#: the seven steps every figure in the paper's evaluation stacks.
ALL_STEPS = (
    STEP_SYMBOLIC,
    STEP_A_BCAST,
    STEP_B_BCAST,
    STEP_LOCAL_MULTIPLY,
    STEP_MERGE_LAYER,
    STEP_ALLTOALL_FIBER,
    STEP_MERGE_FIBER,
)


@dataclass
class TraceSpan:
    """One executed operation on one rank.

    ``timed=False`` marks bookkeeping ops (column splits, piece
    accounting) that appear on the timeline but are excluded from the
    :class:`StepTimes` breakdown, which only ever contained the paper's
    metered steps.
    """

    rank: int
    op: str
    stage: int | None
    batch: int | None
    nbytes: int
    t0: float
    t1: float
    timed: bool = True

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class Tracer:
    """Per-rank span collector.

    Each SPMD rank owns one tracer (ranks are threads, so sharing one
    would serialise the hot path on a lock); the driver merges the
    per-rank streams with :func:`merge_traces`.
    """

    __slots__ = ("rank", "spans")

    def __init__(self, rank: int = 0) -> None:
        self.rank = int(rank)
        self.spans: list[TraceSpan] = []

    @contextmanager
    def span(
        self,
        op: str,
        *,
        stage: int | None = None,
        batch: int | None = None,
        nbytes: int = 0,
        timed: bool = True,
    ):
        """Record one span around the block; yields the mutable span so
        the body can fill in ``nbytes`` once the payload is known."""
        sp = TraceSpan(
            rank=self.rank, op=op, stage=stage, batch=batch,
            nbytes=nbytes, t0=time.perf_counter(), t1=0.0, timed=timed,
        )
        try:
            yield sp
        finally:
            sp.t1 = time.perf_counter()
            self.spans.append(sp)

    def step_times(self) -> StepTimes:
        """Reduce timed spans to the classic per-step breakdown — the
        exact quantity the pre-IR core accumulated inline."""
        times = StepTimes()
        for sp in self.spans:
            if sp.timed:
                times.add(sp.op, sp.duration)
        return times

    def total_bytes(self, op: str | None = None) -> int:
        return sum(
            sp.nbytes for sp in self.spans if op is None or sp.op == op
        )


def merge_traces(tracers: Iterable["Tracer | None"]) -> list[TraceSpan]:
    """Concatenate per-rank span streams in global time order."""
    spans: list[TraceSpan] = []
    for tr in tracers:
        if tr is not None:
            spans.extend(tr.spans)
    spans.sort(key=lambda sp: (sp.t0, sp.rank))
    return spans


# --------------------------------------------------------------------- #
# chrome://tracing export
# --------------------------------------------------------------------- #

def to_chrome_trace(spans: Iterable[TraceSpan]) -> dict:
    """Convert spans to the Chrome trace-event JSON object format.

    One complete event (``"ph": "X"``) per span; ranks map to ``tid`` so
    chrome://tracing / Perfetto draw one lane per rank.  Timestamps are
    microseconds relative to the earliest span.
    """
    spans = list(spans)
    origin = min((sp.t0 for sp in spans), default=0.0)
    events = []
    for sp in spans:
        events.append({
            "name": sp.op,
            "cat": "bookkeeping" if not sp.timed else "step",
            "ph": "X",
            "ts": (sp.t0 - origin) * 1e6,
            "dur": max(sp.t1 - sp.t0, 0.0) * 1e6,
            "pid": 0,
            "tid": sp.rank,
            "args": {
                "stage": sp.stage,
                "batch": sp.batch,
                "bytes": sp.nbytes,
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(spans: Iterable[TraceSpan], path: str) -> None:
    """Write a chrome://tracing timeline to ``path`` (open the file via
    chrome://tracing "Load" or https://ui.perfetto.dev)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(spans), fh)


#: phases of the trace-event format this exporter may legally emit.
_CHROME_PHASES = {"X", "B", "E", "i", "C", "M"}


def validate_chrome_trace(data) -> None:
    """Check ``data`` against the chrome trace-event schema (the subset
    the JSON object format requires); raises ``ValueError`` on the first
    violation.  Used by the CI smoke step on exported timelines."""
    if not isinstance(data, dict):
        raise ValueError(f"trace must be a JSON object, got {type(data).__name__}")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace object must carry a 'traceEvents' list")
    for idx, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {idx} is not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event {idx} missing required field {key!r}")
        if not isinstance(ev["name"], str):
            raise ValueError(f"event {idx}: 'name' must be a string")
        if ev["ph"] not in _CHROME_PHASES:
            raise ValueError(f"event {idx}: unknown phase {ev['ph']!r}")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            raise ValueError(f"event {idx}: 'ts' must be a non-negative number")
        if ev["ph"] == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"event {idx}: complete events need a non-negative 'dur'"
                )


def validate_chrome_trace_file(path: str) -> int:
    """Validate an exported timeline file; returns the event count."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    validate_chrome_trace(data)
    return len(data["traceEvents"])
