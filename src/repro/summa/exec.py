"""Execution-plan IR and executors for the SUMMA family.

The SPMD body no longer hard-codes its stage order: `repro.summa.core`
*compiles* BatchedSUMMA3D (and through it SUMMA2D / SUMMA3D, which are
the ``layers=1`` / ``batches=1`` specialisations) into a flat list of
:class:`StageOp` records — one per Symbolic / Comm-Plan / A-Broadcast /
B-Broadcast / Local-Multiply / Merge-Layer / AllToAll-Fiber /
Merge-Fiber / Postprocess step instance, plus untimed bookkeeping ops —
each carrying its *data* dependencies.  An executor then walks the plan:

* :class:`SequentialExecutor` runs ops in program order, reproducing the
  pre-IR monolith bit-for-bit (same collectives, same step attribution);
* :class:`PipelinedExecutor` exploits the one relaxation the dependency
  edges expose — a stage's broadcasts depend only on the batch's
  Comm-Plan, *not* on the previous stage's multiply — to software
  double-buffer: it issues stage ``s+1``'s operand delivery through
  :meth:`CommBackend.prefetch_stage` (nonblocking ``ibcast`` / tagged
  ``isend``/``irecv``) immediately before running stage ``s``'s local
  multiply, then the broadcast ops of stage ``s+1`` merely wait.

Both executors run the *same program order on every rank* — the SPMD
contract that makes the simulated collectives line up — and move exactly
the same bytes per step, so :class:`~repro.simmpi.tracker.CommTracker`
totals are identical between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..errors import DistributionError, ExecPlanError
from ..kernels.spgemm import SpgemmKernel
from ..mem import MemoryLedger, nbytes_of
from ..grid.distribution import (
    batch_layer_blocks,
    batch_local_columns,
    c_tile_columns,
    gather_tiles,
)
from ..sparse.matrix import SparseMatrix
from ..sparse.ops import submatrix
from .trace import (
    STEP_A_BCAST,
    STEP_ALLTOALL_FIBER,
    STEP_B_BCAST,
    STEP_COMM_PLAN,
    STEP_LOCAL_MULTIPLY,
    STEP_MERGE_FIBER,
    STEP_MERGE_LAYER,
    STEP_POSTPROCESS,
    Tracer,
)

#: supported settings of the ``overlap=`` knob.
OVERLAP_MODES = ("off", "depth1")


@dataclass(frozen=True)
class StageOp:
    """One node of the execution plan.

    ``kind`` is the structural role (``"bcast-a"``, ``"multiply"``, …);
    ``op`` is the trace/StepTimes label the span is recorded under;
    ``timed=False`` marks bookkeeping that never fed the paper's step
    breakdown (column splits, memory metering, piece accounting).
    ``deps`` lists the opids whose *outputs* this op reads — the edges
    that legitimise (or forbid) reordering by a smarter executor.
    ``mem_delta``, when set, predicts the bytes this op will charge to
    the :class:`~repro.mem.MemoryLedger` *before* it runs — a
    ``state -> {category: bytes}`` closure.  The pipelined executor
    prices in-flight prefetches with it (charging *both* buffers of the
    depth-1 double-buffer), and planners can walk a plan's deltas to
    shape a run's footprint without executing it.
    """

    opid: int
    kind: str
    op: str
    batch: int | None
    stage: int | None
    deps: tuple[int, ...]
    run: Callable[["ExecState", Any], None]
    timed: bool = True
    mem_delta: Callable[["ExecState"], dict] | None = None


@dataclass
class ExecutionPlan:
    """A compiled SUMMA program: ops in program order plus the prefetch
    issuers a pipelining executor may fire early.

    ``prefetch_issuers`` maps ``(batch, stage)`` to a closure that starts
    that stage's operand delivery via the backend's nonblocking path and
    returns a :class:`~repro.comm.backend.StagePrefetch`.  Stage 0 of
    every batch has no issuer — its broadcasts run blocking, right after
    the batch's Comm-Plan (whose collectives must not be overtaken).

    ``mem_annotations`` indexes the broadcast ops' ``mem_delta``
    predictors by ``(batch, stage)`` as ``(operand, closure)`` pairs, so
    the pipelined executor can charge a stage's in-flight operands the
    moment it issues the prefetch.
    """

    ops: list[StageOp] = field(default_factory=list)
    prefetch_issuers: dict[tuple[int, int], Callable] = field(default_factory=dict)
    mem_annotations: dict[tuple[int, int], tuple] = field(default_factory=dict)
    #: registry name of the local kernel this plan was compiled for —
    #: recorded so plans are self-describing (the op bodies themselves
    #: dispatch through ``state.kernel``).
    kernel: str = "spgemm"

    def validate(self) -> None:
        """Check the plan is a DAG consistent with program order: every
        dependency must point at an earlier op."""
        for idx, op in enumerate(self.ops):
            if op.opid != idx:
                raise ExecPlanError(f"plan op {idx} carries opid {op.opid}")
            for dep in op.deps:
                if not 0 <= dep < idx:
                    raise ExecPlanError(
                        f"op {idx} ({op.kind}) depends on {dep}, which is "
                        "not an earlier op"
                    )

    def ops_of_kind(self, kind: str) -> list[StageOp]:
        return [op for op in self.ops if op.kind == kind]


class ExecState:
    """Mutable per-rank state the ops read and write.

    The compiler only bakes *indices* (batch, stage) into op closures;
    everything rank-specific — communicators, backend instance, tiles,
    geometry, the memory ledger — lives here, assembled by
    :func:`repro.summa.core.spmd_batched_summa3d` before execution.

    ``ledger`` is this rank's :class:`~repro.mem.MemoryLedger`; ``mem``
    maps logical buffer names (``"a_recv"``, ``"d_local"``, the
    ``"partials"`` list, prefetch keys …) to the live
    :class:`~repro.mem.MemAllocation` handles tracking them.  Op bodies
    release a buffer's old handle before acquiring its successor, so the
    ledger's continuous totals equal the historical boundary snapshots.
    """

    __slots__ = (
        "comms", "grid", "backend", "suite", "semiring", "kernel",
        "a_tile", "b_tile", "b_batch", "aux", "aux_batch",
        "a_recv", "b_recv",
        "partials", "stage_out", "d_local", "sendlist", "received", "c_tile",
        "pieces", "fiber_piece_nnz", "ledger", "mem", "prefetched",
        "batches", "batch_scheme", "super_w", "row_bounds", "r0", "c0_super",
        "a_nrows", "b_ncols", "c0", "c1",
        "postprocess", "keep_pieces", "piece_sink", "info",
        "tracer", "replan",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, None)
        self.partials = []
        self.pieces = []
        self.fiber_piece_nnz = []
        self.prefetched = {}
        self.info = {}
        self.mem = {}
        self.kernel = SpgemmKernel()  # default; core installs the chosen one
        self.ledger = MemoryLedger()  # unlimited unless core installs one


def compile_batched_summa3d(
    grid,
    *,
    batches: int,
    merge_policy: str = "deferred",
    has_postprocess: bool = False,
    first_batch: int = 0,
    batch_barrier: bool = False,
    kernel=None,
    replan: bool = False,
) -> ExecutionPlan:
    """Compile Alg. 4 for ``grid`` into an :class:`ExecutionPlan`.

    The op sequence (and which instants are timed under which step
    label) mirrors the pre-IR monolith exactly, so a
    :class:`SequentialExecutor` run is indistinguishable from it.

    ``first_batch`` compiles only batches ``first_batch .. batches-1`` —
    the resume path: batches below it are already durable in a
    checkpoint, and every op closure is keyed by its *global* batch
    index, so a resumed plan computes exactly the same column blocks the
    full plan would have.

    ``batch_barrier`` appends a world-wide barrier as each batch's last
    op.  Checkpointing needs it for its durability guarantee: a rank can
    only reach batch ``i`` by passing batch ``i-1``'s barrier, which it
    only passes once *every* rank has finalized batch ``i-1`` — i.e. the
    batch's last piece has landed and its checkpoint entry is written.
    Without the barrier a fast rank crashing in batch ``i`` can abort
    slower peers while they are still mid-batch ``i-1``, losing it.

    ``kernel`` is the :class:`~repro.kernels.LocalKernel` the plan is
    compiled for (default: SpGEMM).  The op *structure* is kernel-
    agnostic — bodies dispatch through ``state.kernel`` — but kernels
    with dense accumulators declare :attr:`incremental_only` and force
    ``merge_policy="incremental"`` here, so the plan never holds one
    dense partial per stage.

    ``replan`` appends a ``replan-check`` op after every non-final
    batch's last op.  The op consults ``state.replan`` (a
    :class:`~repro.plan.Replanner`, when the driver installed one) and
    may raise a collective :class:`~repro.errors.ReplanSignal`.  It runs
    *after* the batch barrier so a checkpointed batch is durable before
    any amendment abandons the attempt.
    """
    if kernel is None:
        kernel = SpgemmKernel()
    if kernel.incremental_only:
        merge_policy = "incremental"
    if not 0 <= first_batch <= batches:
        raise ExecPlanError(
            f"first_batch {first_batch} outside [0, {batches}]"
        )
    plan = ExecutionPlan(kernel=kernel.name)
    last = -1  # opid of the most recent op (default dependency)

    def add(kind, label, run, *, batch=None, stage=None, timed=True, deps=None,
            mem_delta=None):
        nonlocal last
        opid = len(plan.ops)
        if deps is None:
            deps = (last,) if last >= 0 else ()
        plan.ops.append(StageOp(
            opid=opid, kind=kind, op=label, batch=batch, stage=stage,
            deps=tuple(deps), run=run, timed=timed, mem_delta=mem_delta,
        ))
        last = opid
        return opid

    for batch in range(first_batch, batches):
        add("col-split", "ColSplit", _run_col_split(batch), batch=batch,
            timed=False)
        plan_id = add("comm-plan", STEP_COMM_PLAN, _run_comm_plan,
                      batch=batch)

        stage_tail = plan_id  # accumulation chain within the layer
        for s in range(grid.stages):
            # The broadcasts of stage s depend only on this batch's
            # Comm-Plan — not on stage s-1's multiply.  That missing edge
            # is exactly the freedom the PipelinedExecutor exploits.
            a_id = add("bcast-a", STEP_A_BCAST, _run_bcast_a(batch, s),
                       batch=batch, stage=s, deps=(plan_id,),
                       mem_delta=_delta_bcast_a)
            b_id = add("bcast-b", STEP_B_BCAST, _run_bcast_b(batch, s),
                       batch=batch, stage=s, deps=(plan_id,),
                       mem_delta=_delta_bcast_b)
            plan.mem_annotations[(batch, s)] = (
                ("a", _delta_bcast_a), ("b", _delta_bcast_b),
            )
            mul_id = add("multiply", STEP_LOCAL_MULTIPLY, _run_multiply,
                         batch=batch, stage=s, deps=(a_id, b_id),
                         mem_delta=_delta_multiply)
            if merge_policy == "incremental" and s > 0:
                acc_id = add("merge-stage", STEP_MERGE_LAYER,
                             _run_merge_stage, batch=batch, stage=s,
                             deps=(mul_id, stage_tail))
            else:
                acc_id = add("accumulate", "Accumulate", _run_accumulate,
                             batch=batch, stage=s, timed=False,
                             deps=(mul_id, stage_tail))
            stage_tail = add("meter", "Meter", _run_meter_stage,
                             batch=batch, stage=s, timed=False,
                             deps=(acc_id,))
            if s + 1 < grid.stages:
                plan.prefetch_issuers[(batch, s + 1)] = _issue_prefetch(s + 1)

        add("merge-layer", STEP_MERGE_LAYER, _run_merge_layer, batch=batch,
            deps=(stage_tail,))
        add("meter", "Meter", _run_meter_layer, batch=batch, timed=False)

        if grid.layers > 1:
            add("fiber-split", "FiberSplit", _run_fiber_split(batch),
                batch=batch, timed=False)
            add("fiber-exchange", STEP_ALLTOALL_FIBER, _run_fiber_exchange,
                batch=batch, mem_delta=_delta_fiber_exchange)
            add("meter", "Meter", _run_meter_fiber, batch=batch, timed=False)
            add("merge-fiber", STEP_MERGE_FIBER, _run_merge_fiber,
                batch=batch)
        else:
            add("sort-output", "SortOutput", _run_sort_output, batch=batch,
                timed=False)
        add("meter", "Meter", _run_meter_output, batch=batch, timed=False)

        add("c-range", "CRange", _run_c_range(batch), batch=batch,
            timed=False)
        if has_postprocess:
            add("postprocess", STEP_POSTPROCESS, _run_postprocess(batch),
                batch=batch)
        add("finalize", "Finalize", _run_finalize(batch), batch=batch,
            timed=False)
        if batch_barrier:
            add("batch-barrier", "Batch-Barrier", _run_batch_barrier,
                batch=batch, timed=False)
        if replan and batch + 1 < batches:
            add("replan-check", "Replan-Check", _run_replan_check(batch),
                batch=batch, timed=False)

    plan.validate()
    return plan


# --------------------------------------------------------------------- #
# predicted memory deltas (StageOp.mem_delta annotations)
# --------------------------------------------------------------------- #

def _delta_bcast_a(state) -> dict:
    """A stage receives a whole peer A tile; size a rank's own tile."""
    return {"recv_buffer": state.a_tile.nbytes}


def _delta_bcast_b(state) -> dict:
    """A stage receives a peer's batch column block of B."""
    return {"recv_buffer": state.b_batch.nbytes}


def _delta_multiply(state) -> dict:
    """Upper bound on the stage product: the merge scratch cannot exceed
    the operands' combined flop expansion; used for introspection only
    (the multiply charges its *actual* output size)."""
    return {"merge_scratch": state.a_recv.nbytes + state.b_recv.nbytes}


def _delta_fiber_exchange(state) -> dict:
    """The fiber pieces received are the peers' shares of intermediates
    the same size as this rank's; size our own layer result."""
    return {"recv_buffer": state.d_local.nbytes}


# --------------------------------------------------------------------- #
# op bodies (closures over compile-time indices; all data via ExecState)
# --------------------------------------------------------------------- #

def _run_col_split(batch):
    def run(state, span):
        local_cols = batch_local_columns(
            state.super_w, state.batches, state.grid.layers, batch,
            state.batch_scheme,
        )
        state.b_batch = state.kernel.select_columns(state.b_tile, local_cols)
        if state.kernel.uses_aux:
            # the aux operand (mask / sampling pattern) is distributed
            # like the output: this rank's row block × the batch's global
            # columns.  Identical at every stage of the batch, so it is
            # cut once here and charged next to the input tiles.
            led = state.ledger
            led.release(state.mem.pop("aux_batch", None))
            state.aux_batch = state.kernel.aux_block(
                state.aux, state.r0, int(state.row_bounds[state.comms.i + 1]),
                state.c0_super + local_cols,
            )
            state.mem["aux_batch"] = led.acquire(
                "b_piece", nbytes_of(state.aux_batch), "aux_batch"
            )
    return run


def _run_comm_plan(state, span):
    with state.comms.world.step(STEP_COMM_PLAN):
        state.backend.prepare_batch(state.comms, state.a_tile, state.b_batch)


def _issue_prefetch(stage):
    def issue(state):
        return state.backend.prefetch_stage(
            state.comms, state.a_tile, state.b_batch, stage
        )
    return issue


def _run_bcast_a(batch, stage):
    def run(state, span):
        led = state.ledger
        # the previous stage's operand buffer is reused — release its
        # handle before the replacement lands
        led.release(state.mem.pop("a_recv", None))
        pf = state.prefetched.get((batch, stage))
        if pf is not None:
            state.a_recv = pf.wait_a()
            # the in-flight charge placed at issue time hands over to
            # the actual buffer's handle
            led.release(state.mem.pop(("pf", batch, stage, "a"), None))
        else:
            with state.comms.row.step(STEP_A_BCAST):
                state.a_recv = state.backend.bcast_a(
                    state.comms, state.a_tile, stage
                )
        state.mem["a_recv"] = led.acquire(
            "recv_buffer", state.a_recv.nbytes, "a_recv"
        )
        span.nbytes = state.a_recv.nbytes
    return run


def _run_bcast_b(batch, stage):
    def run(state, span):
        led = state.ledger
        led.release(state.mem.pop("b_recv", None))
        pf = state.prefetched.pop((batch, stage), None)
        if pf is not None:
            state.b_recv = pf.wait_b()
            led.release(state.mem.pop(("pf", batch, stage, "b"), None))
        else:
            with state.comms.col.step(STEP_B_BCAST):
                state.b_recv = state.backend.bcast_b(
                    state.comms, state.b_batch, stage
                )
        state.mem["b_recv"] = led.acquire(
            "recv_buffer", state.b_recv.nbytes, "b_recv"
        )
        span.nbytes = state.b_recv.nbytes
    return run


def _run_multiply(state, span):
    state.stage_out = state.kernel.stage_multiply(state)
    state.mem["stage_out"] = state.ledger.acquire(
        "merge_scratch", state.stage_out.nbytes, "stage_out"
    )


def _run_merge_stage(state, span):
    led = state.ledger
    merged = state.kernel.merge(
        [state.partials[0], state.stage_out], state
    )
    # release inputs before acquiring the merged result: the ledger's
    # totals stay at the historical stage-boundary value (the merge's
    # own double-buffering instant is deliberately not charged, matching
    # the paper's Table III terms)
    for h in state.mem.pop("partials", []):
        led.release(h)
    led.release(state.mem.pop("stage_out", None))
    state.partials = [merged]
    state.stage_out = None
    state.mem["partials"] = [
        led.acquire("merge_scratch", merged.nbytes, "partial")
    ]


def _run_accumulate(state, span):
    state.partials.append(state.stage_out)
    state.stage_out = None
    state.mem.setdefault("partials", []).append(state.mem.pop("stage_out"))


def _run_meter_stage(state, span):
    # stage boundary: enforcement happens in the executor's check() call
    pass


def _run_merge_layer(state, span):
    led = state.ledger
    partials = state.partials
    state.d_local = (
        state.kernel.merge(partials, state)
        if len(partials) > 1 else partials[0]
    )
    state.partials = []
    for h in state.mem.pop("partials", []):
        led.release(h)
    # the last stage's operand buffers are dead once the layer merges
    led.release(state.mem.pop("a_recv", None))
    led.release(state.mem.pop("b_recv", None))
    state.mem["d_local"] = led.acquire(
        "merge_scratch", state.d_local.nbytes, "d_local"
    )


def _run_meter_layer(state, span):
    pass


def _run_fiber_split(batch):
    def run(state, span):
        widths = [
            e - s_ for s_, e in batch_layer_blocks(
                state.super_w, state.batches, state.grid.layers, batch,
                state.batch_scheme,
            )
        ]
        offsets = np.concatenate(([0], np.cumsum(widths)))
        state.sendlist = [
            state.kernel.slice_columns(
                state.d_local, int(offsets[t]), int(offsets[t + 1])
            )
            for t in range(state.grid.layers)
        ]
    return run


def _run_fiber_exchange(state, span):
    with state.comms.fiber.step(STEP_ALLTOALL_FIBER):
        state.received = state.backend.fiber_exchange(
            state.comms, state.sendlist
        )
    state.sendlist = None
    span.nbytes = sum(p.nbytes for p in state.received)
    state.mem["received"] = state.ledger.acquire(
        "recv_buffer", span.nbytes, "fiber_pieces"
    )


def _piece_count(piece) -> int:
    """Entry count of an intermediate piece: stored nonzeros for sparse,
    all elements for dense blocks."""
    if isinstance(piece, SparseMatrix):
        return piece.nnz
    return int(piece.size)


def _run_meter_fiber(state, span):
    state.fiber_piece_nnz.append(sum(_piece_count(p) for p in state.received))


def _run_merge_fiber(state, span):
    led = state.ledger
    received = state.received
    c_tile = (
        state.kernel.merge(received, state)
        if len(received) > 1 else received[0]
    )
    # the final output is canonicalised (sorted within columns for
    # sparse, contiguous for dense; Sec. IV-D)
    state.c_tile = state.kernel.finalize_tile(c_tile)
    state.received = None
    state.d_local = None
    led.release(state.mem.pop("received", None))
    led.release(state.mem.pop("d_local", None))
    state.mem["c_tile"] = led.acquire(
        "output_batch", state.c_tile.nbytes, "c_tile"
    )


def _run_sort_output(state, span):
    led = state.ledger
    state.c_tile = state.kernel.finalize_tile(state.d_local)
    state.d_local = None
    led.release(state.mem.pop("d_local", None))
    state.mem["c_tile"] = led.acquire(
        "output_batch", state.c_tile.nbytes, "c_tile"
    )


def _run_meter_output(state, span):
    pass


def _run_c_range(batch):
    def run(state, span):
        state.c0, state.c1 = c_tile_columns(
            state.grid, state.b_ncols, state.batches, batch,
            state.comms.j, state.comms.k, state.batch_scheme,
        )
        tile_cols = state.kernel.ncols_of(state.c_tile)
        if state.c1 - state.c0 != tile_cols:
            raise DistributionError(
                f"batch {batch}: output tile spans {tile_cols} "
                f"columns but owns [{state.c0}, {state.c1})"
            )
    return run


def _run_postprocess(batch):
    def run(state, span):
        comms, row_bounds = state.comms, state.row_bounds
        with comms.col.step(STEP_POSTPROCESS):
            gathered = comms.col.allgather(state.c_tile)
        block = gather_tiles(
            state.a_nrows,
            state.c1 - state.c0,
            (
                (int(row_bounds[ii]), 0, tile)
                for ii, tile in enumerate(gathered)
            ),
        )
        block = state.postprocess(batch, state.c0, state.c1, block)
        state.c_tile = submatrix(
            block, state.r0, int(row_bounds[comms.i + 1]), 0,
            state.c1 - state.c0,
        )
        # the hook replaced the tile (masking/pruning usually shrinks it)
        state.ledger.resize(state.mem["c_tile"], state.c_tile.nbytes)
    return run


def _run_replan_check(batch):
    def run(state, span):
        if state.replan is not None:
            state.replan.check(state, batch)
    return run


def _run_batch_barrier(state, span):
    with state.comms.world.step("Batch-Barrier"):
        state.comms.world.barrier()


def _run_finalize(batch):
    def run(state, span):
        led = state.ledger
        handle = state.mem.pop("c_tile", None)
        if state.piece_sink is not None:
            # streaming mode: the piece leaves the rank immediately, so
            # held memory stays flat across batches.
            state.piece_sink(batch, state.r0, state.c0, state.c_tile)
            led.release(handle)
        elif state.keep_pieces:
            state.pieces.append((batch, state.r0, state.c0, state.c_tile))
            # the piece stays resident: its handle stays live
            state.mem.setdefault("held", []).append(handle)
        else:
            led.release(handle)
        state.c_tile = None
    return run


# --------------------------------------------------------------------- #
# executors
# --------------------------------------------------------------------- #

class SequentialExecutor:
    """Run ops strictly in program order — the pre-IR behaviour."""

    name = "sequential"
    overlap = "off"

    def run(self, plan: ExecutionPlan, state: ExecState, tracer: Tracer) -> None:
        # plan-level fault hook: a FaultInjector may crash this rank (or
        # raise synthetic memory pressure) when it reaches a chosen
        # (batch, stage) op — the deterministic stand-in for node death
        # and under-estimated symbolic bounds.
        world = state.comms.world.world
        injector = world.injector
        rank = state.comms.world.global_rank
        ledger = state.ledger
        for op in plan.ops:
            if injector is not None:
                injector.on_plan_op(
                    rank, op.kind, op.batch, op.stage, batches=state.batches
                )
            if ledger is not None and op.batch is not None:
                ledger.enter_batch(op.batch)
            self._before(op, plan, state)
            with tracer.span(
                op.op, stage=op.stage, batch=op.batch, timed=op.timed
            ) as span:
                op.run(state, span)
            if ledger is not None and op.kind == "meter":
                # stage boundary: the deterministic enforcement point —
                # a strict budget overrun raises here, at the same
                # program point on every run.
                ledger.check(batch=op.batch, stage=op.stage)

    def _before(self, op: StageOp, plan: ExecutionPlan, state: ExecState) -> None:
        """Hook for subclasses; the sequential executor does nothing."""


class PipelinedExecutor(SequentialExecutor):
    """Depth-1 software double-buffering.

    Identical program order, with one addition: immediately before each
    Local-Multiply of stage ``s``, issue stage ``s+1``'s operand
    delivery through the backend's nonblocking path.  The broadcasts of
    stage ``s+1`` then find the prefetch in flight (or already buffered)
    and merely wait, so on a broadcast-bound machine the transfer hides
    behind the multiply.  Legal because the plan's dependency edges show
    the broadcasts need only the batch's Comm-Plan, every rank issues
    the prefetch at the same program point, and per-stage message tags
    keep in-flight stages from matching each other.
    """

    name = "pipelined"
    overlap = "depth1"

    def _before(self, op: StageOp, plan: ExecutionPlan, state: ExecState) -> None:
        if op.kind != "multiply":
            return
        nxt = (op.batch, op.stage + 1)
        issuer = plan.prefetch_issuers.get(nxt)
        if issuer is not None and nxt not in state.prefetched:
            state.prefetched[nxt] = issuer(state)
            # depth-1 double-buffering holds *two* stages of operands at
            # once: charge the in-flight buffers (sized by the plan's
            # predicted deltas) next to the current stage's live ones,
            # so the overlap/memory trade-off shows up in the ledger.
            led = state.ledger
            if led is not None:
                for operand, delta in plan.mem_annotations.get(nxt, ()):
                    nbytes = delta(state).get("recv_buffer", 0)
                    state.mem[("pf", nxt[0], nxt[1], operand)] = led.acquire(
                        "recv_buffer", nbytes, f"prefetch-{operand}"
                    )


def get_executor(overlap: str) -> SequentialExecutor:
    """Resolve the ``overlap=`` knob to an executor instance."""
    if overlap == "off":
        return SequentialExecutor()
    if overlap == "depth1":
        return PipelinedExecutor()
    raise ValueError(
        f"unknown overlap mode {overlap!r}; expected one of {OVERLAP_MODES}"
    )
