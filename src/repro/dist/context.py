"""Distributed-matrix context: persistent tiles, layout conversion,
handle-to-handle multiplication.

Layouts (paper Fig. 1):

* ``"A"`` — rows split into ``pr`` blocks; columns into ``pc``
  super-blocks, each sliced across the ``l`` layers (tall tiles);
* ``"B"`` — rows into ``pr`` super-blocks sliced across layers; columns
  into ``pc`` blocks (wide tiles);
* ``"C"`` — the product's native layout: like ``"A"`` but with column
  boundaries induced by the batch blocks, which coincide with standard
  ``"A"`` boundaries only when the arithmetic happens to nest evenly.
  A ``"C"`` handle can be gathered or redistributed, but must be
  converted (one metered alltoall) before serving as a multiply operand.

A product computed by BatchedSUMMA3D lands in ``"C"``/``"A"`` layout (the
paper distributes C like A), so iterated squaring — HipMCL's access
pattern — pays at most two redistributions per iteration, to refresh the
operands.  Redistribution is a real alltoall over the simulated runtime,
metered under the ``"Redistribute"`` step label.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..errors import DistributionError, ShapeError
from ..grid.distribution import (
    a_tile_range,
    b_tile_range,
    gather_dense_tiles,
    gather_tiles,
)
from ..grid.grid3d import ProcGrid3D
from ..simmpi.comm import DEFAULT_TIMEOUT, SimComm
from ..simmpi.engine import run_spmd
from ..simmpi.tracker import CommTracker
from ..sparse.matrix import SparseMatrix
from ..sparse.ops import col_concat, submatrix
from ..summa.core import TileSource, spmd_batched_summa3d
from ..summa.result import SummaResult
from ..utils.timing import StepTimes

_STANDARD_LAYOUTS = {"A": a_tile_range, "B": b_tile_range}


def _standard_ranges(layout: str, grid: ProcGrid3D, nrows: int, ncols: int):
    fn = _STANDARD_LAYOUTS[layout]
    return [
        fn(grid, nrows, ncols, *grid.coords(rank))
        for rank in range(grid.nprocs)
    ]


class DistMatrixHandle:
    """A matrix resident tile-per-rank inside a :class:`DistContext`.

    ``layout`` is ``"A"`` / ``"B"`` (standard, usable as the corresponding
    multiply operand) or ``"C"`` (product-native; redistribute first).
    """

    __slots__ = ("context", "key", "nrows", "ncols", "layout", "ranges")

    def __init__(self, context: "DistContext", key: int, nrows: int,
                 ncols: int, layout: str, ranges) -> None:
        self.context = context
        self.key = key
        self.nrows = nrows
        self.ncols = ncols
        self.layout = layout
        self.ranges = list(ranges)  # per-rank (r0, r1, c0, c1)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        return sum(t.nnz for t in self.context._tiles[self.key])

    def tile(self, rank: int) -> SparseMatrix:
        return self.context._tiles[self.key][rank]

    def to_global(self) -> SparseMatrix:
        return self.context.gather(self)

    def __repr__(self) -> str:
        return (
            f"DistMatrixHandle({self.nrows}x{self.ncols}, layout={self.layout!r}, "
            f"nnz={self.nnz}, grid={self.context.grid!r})"
        )


class DistContext:
    """Owner of a process grid and the matrices distributed on it.

    >>> ctx = DistContext(nprocs=4, layers=1)
    >>> ha = ctx.distribute(A, layout="A")
    >>> hb = ctx.distribute(A, layout="B")
    >>> hc, result = ctx.multiply(ha, hb)      # C = A @ A, stays distributed
    >>> hb2 = ctx.redistribute(hc, "B")        # feed it back as B
    >>> hc2, _ = ctx.multiply(ha, hb2)         # A @ (A @ A)
    """

    def __init__(self, nprocs: int = 4, layers: int = 1,
                 tracker: CommTracker | None = None,
                 timeout: float = DEFAULT_TIMEOUT,
                 world: str = "threads",
                 transport: str = "auto") -> None:
        self.grid = ProcGrid3D(nprocs, layers)
        self.tracker = tracker if tracker is not None else CommTracker()
        self.timeout = timeout
        #: execution world for every SPMD region this context launches
        #: (redistribute / transpose / multiply): "threads" or
        #: "processes"; transport applies to the process world only.
        self.world = world
        self.transport = transport
        self._tiles: dict[int, list[SparseMatrix]] = {}
        self._next_key = itertools.count()
        #: set by :meth:`close`; a closed context refuses every operation
        self.closed = False
        #: process-world run ids this context launched — :meth:`close`
        #: re-sweeps them all as defense in depth (the engine sweeps at
        #: the end of each run, but a resident pool cannot afford to
        #: trust that every historical exit path did)
        self._run_ids: set[str] = set()
        #: ``world_info`` of the most recent SPMD region (diagnostics)
        self.last_world_info: dict = {}

    # ------------------------------------------------------------------ #
    # lifecycle: a DistContext is reusable across jobs and must release
    # everything it ever touched on exit, raised-through exceptions
    # included — the resident-pool contract
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "DistContext":
        self._ensure_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> int:
        """Release every resident tile and sweep all `/dev/shm` segments
        from every process-world run this context launched.  Idempotent;
        returns the number of segments the final sweep collected (0 when
        the engine's own per-run teardown already got them all — the
        healthy case)."""
        if self.closed:
            return 0
        self.closed = True
        self._tiles.clear()
        swept = 0
        if self.world == "processes":
            from ..mp.shm import sweep_segments

            for run_id in sorted(self._run_ids):
                swept += sweep_segments(run_id)
        self._run_ids.clear()
        return swept

    def _ensure_open(self) -> None:
        if self.closed:
            raise DistributionError(
                "this DistContext is closed; create a new one "
                "(resident grids are re-forked, never resurrected)"
            )

    def _run_spmd(self, fn, *args, **kwargs):
        """Every SPMD launch goes through here: the region's process-world
        run id is recorded *even when the run raises*, so :meth:`close`
        can re-sweep it later."""
        self._ensure_open()
        world_info: dict = {}
        kwargs.setdefault("tracker", self.tracker)
        kwargs.setdefault("timeout", self.timeout)
        kwargs.setdefault("world", self.world)
        kwargs.setdefault("transport", self.transport)
        try:
            return run_spmd(
                self.grid.nprocs, fn, *args, world_info=world_info, **kwargs
            )
        finally:
            run_id = world_info.get("run_id")
            if run_id:
                self._run_ids.add(run_id)
            self.last_world_info = world_info

    # ------------------------------------------------------------------ #
    # handle management
    # ------------------------------------------------------------------ #

    def distribute(self, matrix: SparseMatrix, layout: str = "A") -> DistMatrixHandle:
        """Cut a global matrix into this grid's tiles (simulating data that
        arrives already distributed; no communication is metered)."""
        self._ensure_open()
        if layout not in _STANDARD_LAYOUTS:
            raise DistributionError(
                f"unknown layout {layout!r}; expected 'A' or 'B'"
            )
        ranges = _standard_ranges(layout, self.grid, matrix.nrows, matrix.ncols)
        tiles = [submatrix(matrix, *rng) for rng in ranges]
        return self._register(tiles, matrix.nrows, matrix.ncols, layout, ranges)

    def gather(self, handle: DistMatrixHandle) -> SparseMatrix:
        """Assemble a handle's tiles into a global matrix."""
        self._check(handle)
        pieces = [
            (rng[0], rng[2], tile)
            for rng, tile in zip(handle.ranges, self._tiles[handle.key])
        ]
        return gather_tiles(handle.nrows, handle.ncols, pieces)

    def free(self, handle: DistMatrixHandle) -> None:
        """Release a handle's tiles."""
        self._tiles.pop(handle.key, None)

    def memory_bytes(self) -> int:
        """Total bytes of all resident tiles (r = 24 B/nonzero accounting)."""
        return sum(t.nbytes for tiles in self._tiles.values() for t in tiles)

    # ------------------------------------------------------------------ #
    # layout conversion
    # ------------------------------------------------------------------ #

    def redistribute(self, handle: DistMatrixHandle, layout: str) -> DistMatrixHandle:
        """Convert a handle to a standard layout with one metered alltoall.

        Each rank intersects its tile with every target rank's range, sends
        the pieces personalised, and assembles what it receives — the
        standard redistribution kernel of distributed sparse libraries.
        Works from any source layout (including product-native ``"C"``).
        """
        self._check(handle)
        if layout not in _STANDARD_LAYOUTS:
            raise DistributionError(
                f"unknown target layout {layout!r}; expected 'A' or 'B'"
            )
        if layout == handle.layout:
            return handle
        src_ranges = handle.ranges
        dst_ranges = _standard_ranges(
            layout, self.grid, handle.nrows, handle.ncols
        )
        tiles = self._tiles[handle.key]

        def spmd(comm: SimComm):
            rank = comm.rank
            my_tile = tiles[rank]
            sr0, _sr1, sc0, _sc1 = src_ranges[rank]
            sendlist = []
            for dest in range(comm.size):
                dr0, dr1, dc0, dc1 = dst_ranges[dest]
                # overlap of my source tile with dest's target range,
                # in my tile's local coordinates
                lo_r = max(dr0 - sr0, 0)
                hi_r = min(dr1 - sr0, my_tile.nrows)
                lo_c = max(dc0 - sc0, 0)
                hi_c = min(dc1 - sc0, my_tile.ncols)
                if lo_r < hi_r and lo_c < hi_c:
                    piece = submatrix(my_tile, lo_r, hi_r, lo_c, hi_c)
                    sendlist.append((sr0 + lo_r, sc0 + lo_c, piece))
                else:
                    sendlist.append(None)
            with comm.step("Redistribute"):
                received = comm.alltoall(sendlist)
            dr0, dr1, dc0, dc1 = dst_ranges[rank]
            pieces = [
                (r0 - dr0, c0 - dc0, piece)
                for item in received
                if item is not None
                for (r0, c0, piece) in [item]
            ]
            return gather_tiles(dr1 - dr0, dc1 - dc0, pieces)

        new_tiles = self._run_spmd(spmd)
        return self._register(
            new_tiles, handle.nrows, handle.ncols, layout, dst_ranges
        )

    def transpose(self, handle: DistMatrixHandle) -> DistMatrixHandle:
        """Distributed transpose: an ``"A"``-layout handle of ``M`` becomes
        a ``"B"``-layout handle of ``Mᵀ`` (and vice versa) with one
        pairwise tile exchange.

        The layouts are mirror images (Fig. 1): the A-tile of ``M`` at
        grid position ``(i, j, k)`` is exactly the transpose of the B-tile
        of ``Mᵀ`` at ``(j, i, k)``, so each rank transposes locally and
        swaps with its grid-mirror — the communication pattern CombBLAS
        uses for ``AAᵀ`` workloads.  Metered under ``"Transpose"``.
        """
        self._check(handle)
        if handle.layout not in ("A", "B"):
            raise DistributionError(
                f"transpose needs a standard layout, got {handle.layout!r} "
                "(redistribute first)"
            )
        grid = self.grid
        tiles = self._tiles[handle.key]
        target_layout = "B" if handle.layout == "A" else "A"
        dst_ranges = _standard_ranges(
            target_layout, grid, handle.ncols, handle.nrows
        )

        def spmd(comm: SimComm):
            from ..sparse.ops import transpose as local_transpose

            i, j, k = grid.coords(comm.rank)
            mirror = grid.rank_of(j, i, k)
            mine = local_transpose(tiles[comm.rank])
            with comm.step("Transpose"):
                if mirror == comm.rank:
                    received = mine
                else:
                    comm.send(mine, dest=mirror, tag=9)
                    received = comm.recv(source=mirror, tag=9)
            return received

        new_tiles = self._run_spmd(spmd)
        return self._register(
            new_tiles, handle.ncols, handle.nrows, target_layout, dst_ranges
        )

    # ------------------------------------------------------------------ #
    # multiplication
    # ------------------------------------------------------------------ #

    def multiply(
        self,
        ha: DistMatrixHandle,
        hb: DistMatrixHandle,
        *,
        plan=None,
        batches: int | None = 1,
        memory_budget: int | None = None,
        suite="esc",
        semiring="plus_times",
        kernel="spgemm",
        mask: SparseMatrix | None = None,
        mask_complement: bool = False,
        postprocess=None,
        faults=None,
        checksums: bool | None = None,
        max_retries: int | None = 3,
    ) -> tuple[DistMatrixHandle, SummaResult]:
        """``C = A @ B`` between resident handles; C stays distributed.

        ``ha`` must be standard ``"A"``-layout and ``hb`` standard
        ``"B"``-layout (use :meth:`redistribute` to convert — including
        from a previous product's ``"C"`` layout).  ``postprocess`` is the
        per-batch distributed hook of
        :func:`~repro.summa.core.spmd_batched_summa3d` (HipMCL-style
        pruning on resident matrices).  Returns
        ``(handle, result)``: the handle is ``"A"`` when the batch
        boundaries happen to nest into the standard slices, else ``"C"``;
        either way it gathers and redistributes normally.
        ``result.matrix`` is ``None`` — call ``handle.to_global()`` if the
        assembled product is wanted.

        ``faults`` / ``checksums`` / ``max_retries`` run the multiplication
        under the same deterministic fault injection, envelope checksums
        and bounded retry as :func:`~repro.summa.batched.batched_summa3d`,
        in whichever execution world the context was built with — under
        ``world="processes"`` injected crashes kill real worker processes
        and retries sleep their (bounded, jittered) backoff for real;
        every blocking rendezvous is watched by the wait-for-graph hang
        watchdog either way, so a wedged resident-matrix pipeline raises a
        classified :class:`~repro.errors.HangError` instead of hanging.

        ``kernel`` may be ``"spgemm"`` (default) or ``"masked_spgemm"``
        (with a *global* ``mask=`` pattern, applied inside the local
        multiply; ``mask_complement=True`` keeps the unmasked positions).
        Dense-output kernels don't fit resident sparse handles — use
        :meth:`spmm` for ``A @ X`` with dense ``X``.

        ``plan=`` accepts an :class:`~repro.plan.ExecSpec` /
        :class:`~repro.plan.ExecPlan` instead of the loose knobs (same
        funnel as :func:`~repro.summa.run_plan`); the context's own grid,
        world and timeout override the plan's slot-level fields.  Either
        way the resolved plan is recorded in ``result.info["plan"]``.
        """
        from ..kernels import MaskedSpgemmKernel, get_kernel

        spec, plan_src = self._resolve_spec(
            plan,
            batches=batches,
            memory_budget=memory_budget,
            suite=suite,
            semiring=semiring,
            kernel=kernel,
            mask_complement=mask_complement,
            checksums=checksums,
            max_retries=max_retries,
        )
        batches = spec.batches
        memory_budget, _per_rank = spec.resolved_budget()
        suite = spec.suite
        semiring = spec.semiring
        kernel = spec.kernel
        mask_complement = spec.mask_complement
        checksums = spec.checksums
        max_retries = spec.max_retries

        kern = get_kernel(kernel)
        if kern.name not in ("spgemm", "masked_spgemm"):
            raise DistributionError(
                f"resident multiply supports sparse-output SpGEMM kernels "
                f"(got {kern.name!r}); use DistContext.spmm for dense output"
            )
        aux = None
        if kern.name == "masked_spgemm":
            if mask is None:
                raise DistributionError(
                    'kernel="masked_spgemm" needs mask= (a global sparse '
                    "pattern shaped like the product)"
                )
            if isinstance(kernel, str) and mask_complement:
                kern = MaskedSpgemmKernel(complement=True)
            aux = mask
        elif mask is not None:
            raise DistributionError(
                'mask= requires kernel="masked_spgemm" on resident handles'
            )
        self._check(ha)
        self._check(hb)
        if ha.layout != "A":
            raise DistributionError(
                "left operand must have standard layout 'A' "
                f"(got {ha.layout!r}; redistribute first)"
            )
        if hb.layout != "B":
            raise DistributionError(
                "right operand must have standard layout 'B' "
                f"(got {hb.layout!r}; redistribute first)"
            )
        if ha.ncols != hb.nrows:
            raise ShapeError(
                f"cannot multiply {ha.nrows}x{ha.ncols} by {hb.nrows}x{hb.ncols}"
            )
        a_src = TileSource(ha.nrows, ha.ncols, lambda r: self._tiles[ha.key][r])
        b_src = TileSource(hb.nrows, hb.ncols, lambda r: self._tiles[hb.key][r])
        per_rank = self._run_spmd(
            spmd_batched_summa3d,
            a_src,
            b_src,
            self.grid,
            batches=batches,
            memory_budget=memory_budget,
            suite=suite,
            semiring=semiring,
            kernel=kern,
            aux=aux,
            keep_pieces=True,
            postprocess=postprocess,
            max_retries=max_retries,
            faults=faults,
            checksums=checksums,
        )
        ran_batches = per_rank[0]["batches"]
        # Each rank's batch pieces are contiguous in global column space
        # (block-cyclic blocks k*b .. (k+1)*b - 1); concatenate in global
        # order and record the realised ranges.
        new_tiles = []
        ranges = []
        for rank, r in enumerate(per_rank):
            pieces = sorted(r["pieces"], key=lambda p: p[2])  # by c0
            tile = col_concat([p[3] for p in pieces])
            r0 = pieces[0][1]
            c0 = pieces[0][2]
            new_tiles.append(tile)
            ranges.append((r0, r0 + tile.nrows, c0, c0 + tile.ncols))
        standard = _standard_ranges("A", self.grid, ha.nrows, hb.ncols)
        layout = "A" if ranges == standard else "C"
        handle = self._register(new_tiles, ha.nrows, hb.ncols, layout, ranges)
        from ..mem import MemoryLedger

        info = dict(per_rank[0]["info"], resident=True)
        info["memory"] = MemoryLedger.merge_reports(
            [r["info"]["memory"] for r in per_rank]
        )
        info["plan"] = self._resolved_plan(spec, plan_src, info, ran_batches)
        result = SummaResult(
            matrix=None,
            grid=self.grid,
            batches=ran_batches,
            step_times=StepTimes.critical_path(r["times"] for r in per_rank),
            per_rank_times=[r["times"] for r in per_rank],
            tracker=self.tracker,
            max_local_bytes=max(r["max_local_bytes"] for r in per_rank),
            info=info,
        )
        return handle, result

    def spmm(
        self,
        ha: DistMatrixHandle,
        x,
        *,
        plan=None,
        batches: int | None = 1,
        memory_budget: int | None = None,
        semiring="plus_times",
        comm_backend="dense",
        overlap: str = "off",
        max_retries: int | None = 3,
    ) -> tuple[np.ndarray, SummaResult]:
        """``Y = A @ X`` with a resident sparse ``A`` and dense feature
        panel ``X`` — the GNN-propagation primitive.

        ``ha`` must be a standard ``"A"``-layout handle; ``x`` is a global
        dense ``(ha.ncols, f)`` array (feature panels are small relative
        to the matrix, so they travel to the ranks whole and each rank
        slices its block — dense panels ride collectives on either
        backend).  Returns ``(y, result)`` with ``y`` the assembled dense
        ``(ha.nrows, f)`` product; the panel is *not* registered as a
        handle (handles hold sparse tiles).
        """
        from ..kernels import SpmmKernel

        spec, plan_src = self._resolve_spec(
            plan,
            batches=batches,
            memory_budget=memory_budget,
            semiring=semiring,
            kernel="spmm",
            comm_backend=comm_backend,
            overlap=overlap,
            max_retries=max_retries,
        )
        batches = spec.batches
        memory_budget, _per_rank = spec.resolved_budget()
        semiring = spec.semiring
        comm_backend = spec.comm_backend
        overlap = spec.overlap
        max_retries = spec.max_retries

        self._check(ha)
        if ha.layout != "A":
            raise DistributionError(
                "spmm needs a standard 'A'-layout left operand "
                f"(got {ha.layout!r}; redistribute first)"
            )
        x = np.ascontiguousarray(x)
        if x.ndim != 2 or x.shape[0] != ha.ncols:
            raise ShapeError(
                f"feature panel shape {x.shape} does not match "
                f"A with {ha.ncols} columns"
            )
        a_src = TileSource(ha.nrows, ha.ncols, lambda r: self._tiles[ha.key][r])
        per_rank = self._run_spmd(
            spmd_batched_summa3d,
            a_src,
            x,
            self.grid,
            batches=batches,
            memory_budget=memory_budget,
            semiring=semiring,
            kernel=SpmmKernel(),
            comm_backend=comm_backend,
            overlap=overlap,
            keep_pieces=True,
            max_retries=max_retries,
        )
        ran_batches = per_rank[0]["batches"]
        pieces = [
            (r0, c0, tile)
            for r in per_rank
            for (_batch, r0, c0, tile) in r["pieces"]
        ]
        y = gather_dense_tiles(ha.nrows, x.shape[1], pieces)
        from ..mem import MemoryLedger

        info = dict(per_rank[0]["info"], resident=True)
        info["memory"] = MemoryLedger.merge_reports(
            [r["info"]["memory"] for r in per_rank]
        )
        info["plan"] = self._resolved_plan(spec, plan_src, info, ran_batches)
        result = SummaResult(
            matrix=None,
            grid=self.grid,
            batches=ran_batches,
            step_times=StepTimes.critical_path(r["times"] for r in per_rank),
            per_rank_times=[r["times"] for r in per_rank],
            tracker=self.tracker,
            max_local_bytes=max(r["max_local_bytes"] for r in per_rank),
            info=info,
        )
        return y, result

    # ------------------------------------------------------------------ #
    # plan plumbing: one shared builder for both resident entry points
    # ------------------------------------------------------------------ #

    def _resolve_spec(self, plan, **knobs):
        """Resolve ``plan=`` or loose knobs to the spec a resident run
        executes — the same funnel :func:`~repro.summa.run_plan` uses,
        with the context's grid/world/timeout overriding the slot-level
        fields either way."""
        from ..plan.spec import ExecSpec
        from ..summa.batched import _plan_to_spec

        plan_src = None
        if plan is not None:
            spec, plan_src = _plan_to_spec(plan)
        else:
            spec = ExecSpec.from_kwargs(**knobs)
        spec = spec.amended(
            nprocs=self.grid.nprocs,
            layers=self.grid.layers,
            timeout=self.timeout,
            world=self.world,
            transport=self.transport,
        )
        return spec, plan_src

    def _resolved_plan(self, spec, plan_src, info: dict, ran_batches) -> dict:
        """The ``info["plan"]`` record of a resident run — the executed
        spec with the realised batch count and backend pinned, keeping
        the originating plan's provenance when one was passed."""
        from ..plan.spec import ExecPlan, _registry_name

        backend = info.get("comm_backend", _registry_name(spec.comm_backend))
        prov = dict(plan_src.provenance) if plan_src is not None else {}
        prov.setdefault("mode", "resident")
        return ExecPlan(
            layers=self.grid.layers,
            batches=int(ran_batches),
            predicted_seconds=(
                plan_src.predicted_seconds if plan_src is not None else None
            ),
            candidates=plan_src.candidates if plan_src is not None else (),
            backend=backend,
            predicted_memory=(
                plan_src.predicted_memory if plan_src is not None else None
            ),
            spec=spec.amended(batches=int(ran_batches), comm_backend=backend),
            provenance=prov,
            revision=plan_src.revision if plan_src is not None else 0,
        ).to_dict()

    def _register(self, tiles, nrows, ncols, layout, ranges) -> DistMatrixHandle:
        key = next(self._next_key)
        self._tiles[key] = list(tiles)
        return DistMatrixHandle(self, key, nrows, ncols, layout, ranges)

    def _check(self, handle: DistMatrixHandle) -> None:
        self._ensure_open()
        if handle.context is not self or handle.key not in self._tiles:
            raise DistributionError(
                "handle does not belong to this context (or was freed)"
            )
