"""Persistent distributed matrices (CombBLAS-style handles).

:class:`DistContext` keeps matrices distributed across *multiple*
multiplications — the usage pattern of iterative applications like HipMCL,
where re-distributing the operand every iteration would be wasteful.
Handles remember their layout (``"A"``: column-layered, ``"B"``:
row-layered, Fig. 1 of the paper); products come back as ``"A"``-layout
handles and can be fed straight into the next multiply, with an explicit
metered :meth:`~DistContext.redistribute` converting layouts when a
handle must serve as the B operand.
"""

from .context import DistContext, DistMatrixHandle

__all__ = ["DistContext", "DistMatrixHandle"]
