"""Deterministic random-number-generator plumbing.

Every stochastic entry point in the library accepts ``seed`` as either an
``int``, ``None`` or an already-constructed :class:`numpy.random.Generator`.
Centralising the coercion here keeps generators reproducible and lets SPMD
code hand each rank an independent-but-deterministic stream.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator"


def as_rng(seed=None) -> np.random.Generator:
    """Coerce ``seed`` to a :class:`numpy.random.Generator`.

    An existing generator is returned unchanged so callers can thread one
    stream through several helpers without accidental re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent deterministic generators from one seed.

    Used by the SPMD engine so each simulated rank gets its own stream:
    results are reproducible regardless of thread interleaving.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    ss = np.random.SeedSequence(seed if not isinstance(seed, np.random.Generator) else None)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
