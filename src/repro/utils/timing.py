"""Lightweight wall-clock timing helpers.

The distributed algorithms report per-step times (A-Broadcast, B-Broadcast,
Local-Multiply, Merge-Layer, AllToAll-Fiber, Merge-Fiber, Symbolic) exactly
as the paper's figures break them down.  :class:`StepTimes` is the common
accumulator used both by real (measured) runs and by the analytic predictor,
so benches can print measured and modelled breakdowns side by side.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class StepTimes:
    """Accumulated seconds per named algorithm step.

    Addition merges two breakdowns; scalar division supports averaging over
    ranks or iterations.  Unknown steps are created on first use so the same
    class serves SUMMA2D (4 steps) and BATCHEDSUMMA3D (7 steps).
    """

    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, step: str, secs: float) -> None:
        self.seconds[step] = self.seconds.get(step, 0.0) + float(secs)

    def get(self, step: str) -> float:
        return self.seconds.get(step, 0.0)

    def total(self) -> float:
        return float(sum(self.seconds.values()))

    def __add__(self, other: "StepTimes") -> "StepTimes":
        out = StepTimes(dict(self.seconds))
        for step, secs in other.seconds.items():
            out.add(step, secs)
        return out

    def __truediv__(self, divisor: float) -> "StepTimes":
        if divisor == 0:
            raise ZeroDivisionError("cannot average StepTimes over zero items")
        return StepTimes({k: v / divisor for k, v in self.seconds.items()})

    def max_with(self, other: "StepTimes") -> "StepTimes":
        """Element-wise max — the critical-path combination across ranks."""
        keys = set(self.seconds) | set(other.seconds)
        return StepTimes({k: max(self.get(k), other.get(k)) for k in keys})

    @staticmethod
    def critical_path(per_rank: Iterable["StepTimes"]) -> "StepTimes":
        """Max over ranks per step: the time the slowest rank spends in each
        step, which is what a bulk-synchronous distributed run observes."""
        out = StepTimes()
        for st in per_rank:
            out = out.max_with(st)
        return out

    def as_dict(self) -> Mapping[str, float]:
        return dict(self.seconds)

    def format_table(self, title: str = "") -> str:
        lines = []
        if title:
            lines.append(title)
        width = max((len(k) for k in self.seconds), default=4)
        for step in sorted(self.seconds):
            lines.append(f"  {step:<{width}}  {self.seconds[step]:12.6f} s")
        lines.append(f"  {'TOTAL':<{width}}  {self.total():12.6f} s")
        return "\n".join(lines)
