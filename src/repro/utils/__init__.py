"""Shared utilities: deterministic RNG handling, timers, validation."""

from .rng import as_rng, spawn_rngs
from .timing import Timer, StepTimes
from .validation import (
    check_index,
    check_nonnegative,
    check_positive,
    check_power_of,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "Timer",
    "StepTimes",
    "check_index",
    "check_nonnegative",
    "check_positive",
    "check_power_of",
]
