"""Argument validation helpers shared across the library.

These raise plain ``ValueError``/``TypeError`` (not library errors): they
guard *caller* mistakes at the public API boundary, whereas
:mod:`repro.errors` classes describe *domain* failures.
"""

from __future__ import annotations

import math


def check_positive(name: str, value) -> int:
    """Require ``value`` to be a positive integer; return it as ``int``."""
    iv = _as_int(name, value)
    if iv <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return iv


def check_nonnegative(name: str, value) -> int:
    """Require ``value`` to be a non-negative integer; return it as ``int``."""
    iv = _as_int(name, value)
    if iv < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return iv


def check_index(name: str, value, size: int) -> int:
    """Require ``0 <= value < size``; return it as ``int``."""
    iv = _as_int(name, value)
    if not 0 <= iv < size:
        raise ValueError(f"{name} must be in [0, {size}), got {value!r}")
    return iv


def check_power_of(name: str, value, base: int) -> int:
    """Require ``value`` to be an exact power of ``base`` (>= 1)."""
    iv = check_positive(name, value)
    k = round(math.log(iv, base))
    if base**k != iv:
        raise ValueError(f"{name} must be a power of {base}, got {value!r}")
    return iv


def _as_int(name: str, value) -> int:
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    try:
        iv = int(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be an integer, got {value!r}") from exc
    if iv != value:
        raise ValueError(f"{name} must be integral, got {value!r}")
    return iv
