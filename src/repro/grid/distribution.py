"""Index arithmetic for distributing matrices on a 3D grid (paper Fig. 1).

All distributions are *balanced block* partitions computed with
:func:`repro.sparse.ops.split_bounds`, nested two levels deep:

* **A** (and C): rows split into ``pr`` blocks; columns split into ``pc``
  super-blocks (the 2D process boundary), each super-block split into ``l``
  layer slices — layer ``k`` holds slice ``k`` of every super-block
  (Fig. 1(c)-(e)).
* **B**: rows split into ``pr`` super-blocks, each into ``l`` layer
  slices; columns split into ``pc`` blocks (Fig. 1(f)-(h)).
* **batches**: within each column super-block of B, columns are cut into
  ``b * l`` blocks; batch ``i`` takes blocks ``i, i+b, ..., i+(l-1)b`` —
  the block-cyclic pattern of Fig. 1(i), which hands exactly one block per
  batch to every layer and thereby balances Merge-Fiber.

Because every boundary comes from the same balanced-split function, the
inner-dimension blocks of A and B align stage-by-stage in SUMMA even when
nothing divides evenly.
"""

from __future__ import annotations

import numpy as np

from ..errors import DistributionError
from ..sparse.matrix import INDEX_DTYPE, SparseMatrix
from ..sparse.ops import split_bounds, submatrix
from .grid3d import ProcGrid3D


def nested_slice(
    n: int, outer_parts: int, j: int, inner_parts: int, k: int
) -> tuple[int, int]:
    """Global index range of inner slice ``k`` of outer super-block ``j``."""
    outer = split_bounds(n, outer_parts)
    start = int(outer[j])
    inner = split_bounds(int(outer[j + 1]) - start, inner_parts)
    return start + int(inner[k]), start + int(inner[k + 1])


def a_tile_range(
    grid: ProcGrid3D, nrows: int, ncols: int, i: int, j: int, k: int
) -> tuple[int, int, int, int]:
    """(row_start, row_stop, col_start, col_stop) of A's tile at (i, j, k)."""
    rb = split_bounds(nrows, grid.pr)
    c0, c1 = nested_slice(ncols, grid.pc, j, grid.layers, k)
    return int(rb[i]), int(rb[i + 1]), c0, c1


def b_tile_range(
    grid: ProcGrid3D, nrows: int, ncols: int, i: int, j: int, k: int
) -> tuple[int, int, int, int]:
    """(row_start, row_stop, col_start, col_stop) of B's tile at (i, j, k)."""
    r0, r1 = nested_slice(nrows, grid.pr, i, grid.layers, k)
    cb = split_bounds(ncols, grid.pc)
    return r0, r1, int(cb[j]), int(cb[j + 1])


def extract_a_tile(a: SparseMatrix, grid: ProcGrid3D, rank: int) -> SparseMatrix:
    """The local A tile a rank holds under the 3D distribution."""
    i, j, k = grid.coords(rank)
    r0, r1, c0, c1 = a_tile_range(grid, a.nrows, a.ncols, i, j, k)
    return submatrix(a, r0, r1, c0, c1)


def extract_b_tile(b: SparseMatrix, grid: ProcGrid3D, rank: int) -> SparseMatrix:
    """The local B tile a rank holds under the 3D distribution."""
    i, j, k = grid.coords(rank)
    r0, r1, c0, c1 = b_tile_range(grid, b.nrows, b.ncols, i, j, k)
    return submatrix(b, r0, r1, c0, c1)


#: batch layouts: "block-cyclic" is the paper's Fig. 1(i) scheme (each
#: batch draws one block from every layer's territory, balancing
#: Merge-Fiber); "block" is the naive contiguous split kept as the
#: load-imbalance ablation DESIGN.md calls out.
BATCH_SCHEMES = ("block-cyclic", "block")


def batch_layer_blocks(
    width: int, nbatches: int, layers: int, batch: int,
    scheme: str = "block-cyclic",
) -> list[tuple[int, int]]:
    """The ``layers`` column blocks batch ``batch`` owns within one column
    super-block of width ``width``.

    Entry ``t`` is the (start, stop) of the block destined for layer ``t``
    in the fiber exchange.  Under ``"block-cyclic"`` (Fig. 1(i)) the
    blocks interleave across batches; under ``"block"`` each batch is one
    contiguous range cut into ``layers`` pieces.
    """
    if not 0 <= batch < nbatches:
        raise DistributionError(f"batch {batch} out of range [0, {nbatches})")
    if scheme == "block-cyclic":
        bounds = split_bounds(width, nbatches * layers)
        return [
            (int(bounds[batch + t * nbatches]),
             int(bounds[batch + t * nbatches + 1]))
            for t in range(layers)
        ]
    if scheme == "block":
        outer = split_bounds(width, nbatches)
        start = int(outer[batch])
        inner = split_bounds(int(outer[batch + 1]) - start, layers)
        return [
            (start + int(inner[t]), start + int(inner[t + 1]))
            for t in range(layers)
        ]
    raise DistributionError(
        f"unknown batch scheme {scheme!r}; available: {BATCH_SCHEMES}"
    )


def batch_local_columns(
    width: int, nbatches: int, layers: int, batch: int,
    scheme: str = "block-cyclic",
) -> np.ndarray:
    """All column indices (within a super-block) belonging to a batch, in
    global column order — the concatenation of its layer blocks."""
    blocks = batch_layer_blocks(width, nbatches, layers, batch, scheme)
    if not blocks:
        return np.empty(0, dtype=INDEX_DTYPE)
    return np.concatenate(
        [np.arange(s, e, dtype=INDEX_DTYPE) for s, e in blocks]
    )


def c_tile_columns(
    grid: ProcGrid3D, ncols_b: int, nbatches: int, batch: int, j: int, k: int,
    scheme: str = "block-cyclic",
) -> tuple[int, int]:
    """Global B-column range of the C piece held at ``(., j, k)`` for a batch.

    After the fiber exchange, layer ``k`` ends up with block ``k`` of the
    batch's column set within super-block ``j``.
    """
    cb = split_bounds(ncols_b, grid.pc)
    c0 = int(cb[j])
    blocks = batch_layer_blocks(
        int(cb[j + 1]) - c0, nbatches, grid.layers, batch, scheme
    )
    s, e = blocks[k]
    return c0 + s, c0 + e


def gather_tiles(
    nrows: int, ncols: int, pieces
) -> SparseMatrix:
    """Assemble a global matrix from ``(row_offset, col_offset, tile)``
    triples.  Tiles must not overlap (duplicate coordinates raise)."""
    rows_parts = []
    cols_parts = []
    vals_parts = []
    for r0, c0, tile in pieces:
        if tile.nnz == 0:
            continue
        rows_parts.append(tile.rowidx + np.int64(r0))
        cols_parts.append(tile.col_indices() + np.int64(c0))
        vals_parts.append(tile.values)
    if not rows_parts:
        return SparseMatrix.empty(nrows, ncols)
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    vals = np.concatenate(vals_parts)
    try:
        return SparseMatrix.from_coo(
            nrows, ncols, rows, cols, vals, sum_duplicates=False
        )
    except Exception as exc:
        raise DistributionError(f"overlapping or invalid tiles in gather: {exc}") from exc


def gather_dense_tiles(nrows: int, ncols: int, pieces) -> np.ndarray:
    """Assemble a dense matrix from ``(row_offset, col_offset, block)``
    triples of 2-D ndarrays — the dense-output analogue of
    :func:`gather_tiles` used by kernels whose C is dense (SpMM).
    Blocks must tile disjoint regions; anything uncovered stays zero."""
    out = np.zeros((nrows, ncols))
    for r0, c0, block in pieces:
        block = np.asarray(block)
        r1 = r0 + block.shape[0]
        c1 = c0 + block.shape[1]
        if r1 > nrows or c1 > ncols:
            raise DistributionError(
                f"dense tile at ({r0}, {c0}) of shape {block.shape} exceeds "
                f"the {nrows}x{ncols} output"
            )
        out[r0:r1, c0:c1] = block
    return out
