"""Process grids and data distribution for 2D/3D sparse SUMMA."""

from .grid3d import GridComms, ProcGrid3D
from .distribution import (
    a_tile_range,
    b_tile_range,
    batch_layer_blocks,
    c_tile_columns,
    extract_a_tile,
    extract_b_tile,
    gather_tiles,
    nested_slice,
)

__all__ = [
    "ProcGrid3D",
    "GridComms",
    "a_tile_range",
    "b_tile_range",
    "batch_layer_blocks",
    "c_tile_columns",
    "extract_a_tile",
    "extract_b_tile",
    "gather_tiles",
    "nested_slice",
]
