"""3D process grids (paper Sec. III-B).

``p`` processes form a ``sqrt(p/l) x sqrt(p/l) x l`` grid: ``l`` layers,
each a square 2D grid.  A 2D grid is the ``l = 1`` special case, so one
class serves both SUMMA2D and SUMMA3D.

Rank numbering is layer-major: rank ``r`` sits at layer ``k = r // (pr*pc)``,
row ``i = (r % (pr*pc)) // pc``, column ``j = r % pc``.  Four derived
communicators drive the algorithms:

* **row**  — ``P(i, :, k)``: A-Broadcast travels here;
* **col**  — ``P(:, j, k)``: B-Broadcast travels here;
* **fiber**— ``P(i, j, :)``: AllToAll-Fiber travels here;
* **layer**— ``P(:, :, k)``: per-layer reductions in the symbolic step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import GridError
from ..simmpi.comm import SimComm


class ProcGrid3D:
    """Geometry of a ``pr x pc x l`` process grid with ``pr == pc``.

    >>> g = ProcGrid3D(8, layers=2)
    >>> g.shape
    (2, 2, 2)
    >>> g.coords(5)
    (0, 1, 1)
    >>> g.rank_of(0, 1, 1)
    5
    """

    __slots__ = ("nprocs", "layers", "pr", "pc")

    def __init__(self, nprocs: int, layers: int = 1) -> None:
        if nprocs <= 0:
            raise GridError(f"nprocs must be positive, got {nprocs}")
        if layers <= 0:
            raise GridError(f"layers must be positive, got {layers}")
        if nprocs % layers:
            raise GridError(
                f"nprocs={nprocs} not divisible into {layers} layers"
            )
        per_layer = nprocs // layers
        side = math.isqrt(per_layer)
        if side * side != per_layer:
            raise GridError(
                f"nprocs/layers = {per_layer} is not a perfect square; "
                f"the paper's grids are sqrt(p/l) x sqrt(p/l) x l"
            )
        self.nprocs = nprocs
        self.layers = layers
        self.pr = side
        self.pc = side

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.pr, self.pc, self.layers)

    @property
    def stages(self) -> int:
        """SUMMA stage count — the number of process columns per layer."""
        return self.pc

    def coords(self, rank: int) -> tuple[int, int, int]:
        """(row, col, layer) of a global rank."""
        if not 0 <= rank < self.nprocs:
            raise GridError(f"rank {rank} out of range [0, {self.nprocs})")
        per_layer = self.pr * self.pc
        k, rem = divmod(rank, per_layer)
        i, j = divmod(rem, self.pc)
        return (i, j, k)

    def rank_of(self, i: int, j: int, k: int) -> int:
        """Global rank at grid coordinates (row, col, layer)."""
        if not (0 <= i < self.pr and 0 <= j < self.pc and 0 <= k < self.layers):
            raise GridError(
                f"coords ({i}, {j}, {k}) outside grid {self.shape}"
            )
        return k * self.pr * self.pc + i * self.pc + j

    def __repr__(self) -> str:
        return f"ProcGrid3D({self.pr}x{self.pc}x{self.layers})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ProcGrid3D)
            and self.shape == other.shape
        )

    def __hash__(self) -> int:
        return hash(self.shape)


@dataclass
class GridComms:
    """One rank's communicators on a :class:`ProcGrid3D`.

    Built collectively: every rank of the world communicator must call
    :meth:`build` (it performs ``split`` collectives).
    """

    grid: ProcGrid3D
    world: SimComm
    row: SimComm
    col: SimComm
    fiber: SimComm
    layer: SimComm
    i: int
    j: int
    k: int

    @classmethod
    def build(cls, world: SimComm, grid: ProcGrid3D) -> "GridComms":
        if world.size != grid.nprocs:
            raise GridError(
                f"world communicator has {world.size} ranks, grid needs {grid.nprocs}"
            )
        i, j, k = grid.coords(world.rank)
        # colors are unique integers per group; keys order members so that
        # local rank within each derived communicator equals the grid index
        # along the varying dimension.
        row = world.split(color=k * grid.pr + i, key=j)
        col = world.split(color=k * grid.pc + j, key=i)
        fiber = world.split(color=i * grid.pc + j, key=k)
        layer = world.split(color=k, key=i * grid.pc + j)
        return cls(grid, world, row, col, fiber, layer, i, j, k)

    @property
    def epoch(self) -> int:
        """Membership epoch these communicators were built in (see
        :mod:`repro.resilience.heal`); 0 for a never-healed run."""
        return self.world.epoch

    def rebuild(self, world: SimComm) -> "GridComms":
        """Re-split the grid communicators on a repaired world communicator.

        The ULFM-style grid repair: after a heal decision the old epoch's
        communicators are revoked, and every holder of a grid position —
        survivors and replacements alike — calls this collectively on the
        new epoch's world communicator.  The *geometry* is reused
        unchanged: positions, not ranks, define the grid, so the repaired
        grid is identical up to which global rank holds each position.
        """
        return type(self).build(world, self.grid)
