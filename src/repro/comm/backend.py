"""The pluggable communication-backend interface of the SUMMA core.

The SPMD body (:mod:`repro.summa.core`) never calls collectives directly
for its data-movement steps; it asks a :class:`CommBackend` to move the
A tile along the row communicator, the B batch along the column
communicator, and the fiber pieces along the fiber communicator.  Two
implementations ship:

* :class:`DenseCollective` — the paper's Table II behaviour: whole tiles
  travel by ``bcast`` and fiber pieces by ``alltoallv``;
* :class:`~repro.comm.sparse_p2p.SparseP2P` — SpComm3D-style
  sparsity-aware exchange: a symbolic prologue computes a
  :class:`~repro.comm.plan.CommPlan` and only the tile segments each
  receiver will touch travel, via metered point-to-point messages.

Both are *bit-identical* in their effect on the computed product; they
differ only in bytes on the wire and message counts.  Backend instances
hold per-rank plan state, so each SPMD rank must build its own instance —
pass backend *names* (or classes) across the driver boundary, never a
shared instance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import CommError
from ..sparse.matrix import SparseMatrix


class CommBackend(ABC):
    """How SUMMA moves operand tiles and fiber pieces between ranks.

    ``prepare_batch`` runs once per batch before the stage loop (the hook
    the sparse backend uses for its symbolic prologue); the three movement
    methods run inside the corresponding metered step contexts.
    """

    #: registry key and the tag attached to every CommEvent this backend
    #: records.
    name: str = ""

    def prepare_batch(self, comms, a_tile: SparseMatrix, b_batch: SparseMatrix) -> None:
        """Per-batch prologue; default no-op."""

    @abstractmethod
    def bcast_a(self, comms, a_tile: SparseMatrix, stage: int) -> SparseMatrix:
        """Deliver the stage's A operand along the row communicator."""

    @abstractmethod
    def bcast_b(self, comms, b_batch: SparseMatrix, stage: int) -> SparseMatrix:
        """Deliver the stage's B operand along the column communicator."""

    @abstractmethod
    def fiber_exchange(self, comms, sendlist: list) -> list:
        """Personalised exchange of fiber pieces along the fiber
        communicator; returns the received pieces indexed by source."""


class DenseCollective(CommBackend):
    """Today's behaviour behind the interface: dense collectives.

    Every stage broadcasts the whole tile to every row/column member and
    the fiber exchange ships whole pieces — the cost model of the paper's
    Table II, now tagged ``backend="dense"`` in the tracker.
    """

    name = "dense"

    def bcast_a(self, comms, a_tile: SparseMatrix, stage: int) -> SparseMatrix:
        with comms.row.backend_scope(self.name):
            return comms.row.bcast(a_tile, root=stage)

    def bcast_b(self, comms, b_batch: SparseMatrix, stage: int) -> SparseMatrix:
        with comms.col.backend_scope(self.name):
            return comms.col.bcast(b_batch, root=stage)

    def fiber_exchange(self, comms, sendlist: list) -> list:
        with comms.fiber.backend_scope(self.name):
            return comms.fiber.alltoallv(sendlist)


def get_backend(backend) -> CommBackend:
    """Resolve a backend name, class or instance to a fresh-enough instance.

    Accepts ``"dense"`` / ``"sparse"``, a :class:`CommBackend` subclass
    (instantiated), or an existing instance (returned as-is — caller is
    responsible for per-rank isolation).  ``"auto"`` must be resolved by
    the driver (:func:`repro.summa.batched_summa3d`) before reaching the
    SPMD core, because the choice needs global matrix statistics.
    """
    from .sparse_p2p import SparseP2P

    registry = {DenseCollective.name: DenseCollective, SparseP2P.name: SparseP2P}
    if isinstance(backend, CommBackend):
        return backend
    if isinstance(backend, type) and issubclass(backend, CommBackend):
        return backend()
    if isinstance(backend, str):
        if backend == "auto":
            raise CommError(
                "backend 'auto' must be resolved by the driver; "
                "the SPMD core accepts only concrete backends"
            )
        if backend in registry:
            return registry[backend]()
    raise CommError(
        f"unknown communication backend {backend!r}; "
        f"expected one of {sorted(registry)} or a CommBackend"
    )


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` (besides ``"auto"``)."""
    from .sparse_p2p import SparseP2P

    return (DenseCollective.name, SparseP2P.name)
