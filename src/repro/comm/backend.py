"""The pluggable communication-backend interface of the SUMMA core.

The SPMD body (:mod:`repro.summa.core`) never calls collectives directly
for its data-movement steps; it asks a :class:`CommBackend` to move the
A tile along the row communicator, the B batch along the column
communicator, and the fiber pieces along the fiber communicator.  Two
implementations ship:

* :class:`DenseCollective` — the paper's Table II behaviour: whole tiles
  travel by ``bcast`` and fiber pieces by ``alltoallv``;
* :class:`~repro.comm.sparse_p2p.SparseP2P` — SpComm3D-style
  sparsity-aware exchange: a symbolic prologue computes a
  :class:`~repro.comm.plan.CommPlan` and only the tile segments each
  receiver will touch travel, via metered point-to-point messages.

Both are *bit-identical* in their effect on the computed product; they
differ only in bytes on the wire and message counts.  Backend instances
hold per-rank plan state, so each SPMD rank must build its own instance —
pass backend *names* (or classes) across the driver boundary, never a
shared instance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import CommError
from ..simmpi.comm import Request
from ..sparse.matrix import SparseMatrix


class StagePrefetch:
    """In-flight operand delivery for one pipelined SUMMA stage.

    Returned by :meth:`CommBackend.prefetch_stage`; holds the two
    nonblocking requests (A along the row communicator, B along the
    column communicator) so the executor can run the *previous* stage's
    local multiply before calling :meth:`wait_a` / :meth:`wait_b`.
    """

    __slots__ = ("_a", "_b")

    def __init__(self, a_req: Request, b_req: Request) -> None:
        self._a = a_req
        self._b = b_req

    def wait_a(self) -> SparseMatrix:
        """Block until the stage's A operand has arrived; return it."""
        return self._a.wait()

    def wait_b(self) -> SparseMatrix:
        """Block until the stage's B operand has arrived; return it."""
        return self._b.wait()

    @classmethod
    def ready(cls, a_tile: SparseMatrix, b_tile: SparseMatrix) -> "StagePrefetch":
        """A prefetch that already completed (both operands in hand)."""
        return cls(
            Request(ready=True, value=a_tile),
            Request(ready=True, value=b_tile),
        )


class CommBackend(ABC):
    """How SUMMA moves operand tiles and fiber pieces between ranks.

    ``prepare_batch`` runs once per batch before the stage loop (the hook
    the sparse backend uses for its symbolic prologue); the three movement
    methods run inside the corresponding metered step contexts.
    """

    #: registry key and the tag attached to every CommEvent this backend
    #: records.
    name: str = ""

    #: optional :class:`~repro.resilience.RetryPolicy` applied around each
    #: individual communication attempt.  Injected transient faults raise
    #: at operation entry (before any rendezvous state advances), so
    #: re-calling the primitive on the failing rank alone is always safe.
    retry = None

    #: optional :class:`~repro.mem.MemoryLedger` this backend charges its
    #: received buffers to; installed per rank by the SPMD core alongside
    #: ``retry``.  Both concrete backends call :meth:`_charge_recv` on
    #: every payload they deliver, so recv-buffer spikes are accounted at
    #: the backend boundary whichever wire path the bytes took.
    ledger = None

    def _charge_recv(self, obj) -> None:
        """Record a received payload as a momentary ``recv_buffer`` spike
        (the executor's op handle takes over the persistent charge)."""
        if self.ledger is not None:
            from ..mem import nbytes_of

            self.ledger.touch("recv_buffer", nbytes_of(obj))

    def _call(self, comm, op: str, fn):
        """Run one communication attempt under the retry policy (if any)."""
        if self.retry is None:
            return fn()
        return self.retry.call(fn, comm=comm, op=op)

    def _guard(self, comm, op: str, req: Request) -> Request:
        """Wrap a nonblocking request so its completing ``wait`` (a
        ``recv`` that may hit an injected transient fault at entry) is
        retried under the policy.  A failed ``wait`` leaves the request
        incomplete, so re-waiting re-runs the receive cleanly."""
        if self.retry is None:
            return req
        return Request(
            wait_fn=lambda: self.retry.call(req.wait, comm=comm, op=op),
            try_fn=req.test,
        )

    def prepare_batch(self, comms, a_tile: SparseMatrix, b_batch: SparseMatrix) -> None:
        """Per-batch prologue; default no-op."""

    def _ibcast(self, comm, obj, stage: int) -> Request:
        """Nonblocking ``ibcast``-shaped fan-out with retry applied to
        each individual ``isend`` — never to the fan-out as a whole,
        which would re-send to peers that already got their copy and
        leave a stale duplicate for a later stage's tag to match.

        Shared across backends: the dense backend prefetches every
        operand this way, and the sparse backend falls back to it for
        *dense* operands (a dense panel has no nonzero structure to
        thin, so collectives are the right path on any backend)."""
        if comm.rank == stage:
            for t in range(comm.size):
                if t != stage:
                    self._call(
                        comm, "send", lambda t=t: comm.isend(obj, t, tag=stage)
                    )
            return Request(ready=True, value=obj)
        return self._guard(comm, "recv", comm.irecv(stage, tag=stage))

    def revoke(self) -> None:
        """Discard all cached per-run plan state.

        Called when the communicators this backend planned against are
        revoked (an online heal rebuilt the grid, see
        :mod:`repro.resilience.heal`) and on every (re-)entry of the
        SPMD body: anything derived from the old membership — exchange
        plans, occupancy masks, outstanding prefetches — must be
        recomputed against the repaired grid.  Default no-op: the dense
        backend is stateless between calls."""

    @abstractmethod
    def bcast_a(self, comms, a_tile: SparseMatrix, stage: int) -> SparseMatrix:
        """Deliver the stage's A operand along the row communicator."""

    @abstractmethod
    def bcast_b(self, comms, b_batch: SparseMatrix, stage: int) -> SparseMatrix:
        """Deliver the stage's B operand along the column communicator."""

    @abstractmethod
    def fiber_exchange(self, comms, sendlist: list) -> list:
        """Personalised exchange of fiber pieces along the fiber
        communicator; returns the received pieces indexed by source."""

    def prefetch_stage(
        self, comms, a_tile: SparseMatrix, b_batch: SparseMatrix, stage: int
    ) -> StagePrefetch:
        """Start delivering stage ``stage``'s operands without waiting.

        Called by the :class:`~repro.summa.exec.PipelinedExecutor` while
        the *previous* stage's local multiply has yet to run; the
        executor waits on the returned :class:`StagePrefetch` inside the
        stage's own broadcast spans.  All ranks issue prefetches at the
        same program point, so any collective used here still lines up.

        The base implementation is a correct-but-unoverlapped fallback
        for backends that only define the blocking paths: it completes
        both movements immediately (metered under the usual broadcast
        step labels) and returns a finished prefetch.
        """
        # lazy import: repro.summa.core imports repro.comm, so the step
        # vocabulary must not be pulled in at module import time.
        from ..summa.trace import STEP_A_BCAST, STEP_B_BCAST

        with comms.row.step(STEP_A_BCAST):
            a = self.bcast_a(comms, a_tile, stage)
        with comms.col.step(STEP_B_BCAST):
            b = self.bcast_b(comms, b_batch, stage)
        return StagePrefetch.ready(a, b)


class DenseCollective(CommBackend):
    """Today's behaviour behind the interface: dense collectives.

    Every stage broadcasts the whole tile to every row/column member and
    the fiber exchange ships whole pieces — the cost model of the paper's
    Table II, now tagged ``backend="dense"`` in the tracker.
    """

    name = "dense"

    def bcast_a(self, comms, a_tile: SparseMatrix, stage: int) -> SparseMatrix:
        with comms.row.backend_scope(self.name):
            recv = self._call(
                comms.row, "bcast", lambda: comms.row.bcast(a_tile, root=stage)
            )
        if comms.row.rank != stage:
            self._charge_recv(recv)
        return recv

    def bcast_b(self, comms, b_batch: SparseMatrix, stage: int) -> SparseMatrix:
        with comms.col.backend_scope(self.name):
            recv = self._call(
                comms.col, "bcast", lambda: comms.col.bcast(b_batch, root=stage)
            )
        if comms.col.rank != stage:
            self._charge_recv(recv)
        return recv

    def fiber_exchange(self, comms, sendlist: list) -> list:
        with comms.fiber.backend_scope(self.name):
            received = self._call(
                comms.fiber, "alltoallv",
                lambda: comms.fiber.alltoallv(sendlist),
            )
        self._charge_recv(received)
        return received

    def prefetch_stage(
        self, comms, a_tile: SparseMatrix, b_batch: SparseMatrix, stage: int
    ) -> StagePrefetch:
        """Issue both broadcasts as nonblocking ``ibcast``-shaped
        fan-outs, tagged by stage so in-flight stages never cross-match."""
        from ..summa.trace import STEP_A_BCAST, STEP_B_BCAST

        with comms.row.step(STEP_A_BCAST), comms.row.backend_scope(self.name):
            a_req = self._ibcast(comms.row, a_tile, stage)
        with comms.col.step(STEP_B_BCAST), comms.col.backend_scope(self.name):
            b_req = self._ibcast(comms.col, b_batch, stage)
        return StagePrefetch(a_req, b_req)


def get_backend(backend) -> CommBackend:
    """Resolve a backend name, class or instance to a fresh-enough instance.

    Accepts ``"dense"`` / ``"sparse"``, a :class:`CommBackend` subclass
    (instantiated), or an existing instance (returned as-is — caller is
    responsible for per-rank isolation).  ``"auto"`` must be resolved by
    the driver (:func:`repro.summa.batched_summa3d`) before reaching the
    SPMD core, because the choice needs global matrix statistics.
    """
    from .sparse_p2p import SparseP2P

    registry = {DenseCollective.name: DenseCollective, SparseP2P.name: SparseP2P}
    if isinstance(backend, CommBackend):
        return backend
    if isinstance(backend, type) and issubclass(backend, CommBackend):
        return backend()
    if isinstance(backend, str):
        if backend == "auto":
            raise CommError(
                "backend 'auto' must be resolved by the driver; "
                "the SPMD core accepts only concrete backends"
            )
        if backend in registry:
            return registry[backend]()
    raise CommError(
        f"unknown communication backend {backend!r}; "
        f"expected one of {sorted(registry)} or a CommBackend"
    )


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` (besides ``"auto"``)."""
    from .sparse_p2p import SparseP2P

    return (DenseCollective.name, SparseP2P.name)
