"""Pluggable communication backends for the distributed SpGEMM layer.

The paper's communication model charges every SUMMA stage the full dense
collective cost.  SpComm3D (Abubaker & Hoefler) shows that 3D sparse
kernels can avoid most of that volume with sparsity-aware point-to-point
exchange.  This subsystem abstracts *how* SUMMA moves data so both worlds
coexist behind one knob:

* :class:`DenseCollective` (``"dense"``) — whole-tile broadcasts and
  ``alltoallv`` fiber exchange, the paper's Table II behaviour;
* :class:`SparseP2P` (``"sparse"``) — a symbolic prologue derives a
  :class:`CommPlan` from peer occupancy masks, then only the needed tile
  segments travel point-to-point;
* ``"auto"`` — the planner picks per multiplication via the extended
  α–β model (:func:`repro.summa.planner.choose_backend`).

Both backends produce bit-identical products; they differ only in bytes
on the wire and message counts, which the tracker separates by backend
tag (:meth:`repro.simmpi.CommTracker.by_backend`).
"""

from .backend import CommBackend, DenseCollective, available_backends, get_backend
from .plan import CommPlan, pack_mask, unpack_mask
from .sparse_p2p import SparseP2P

__all__ = [
    "CommBackend",
    "CommPlan",
    "DenseCollective",
    "SparseP2P",
    "available_backends",
    "get_backend",
    "pack_mask",
    "unpack_mask",
]
