"""Sparsity-aware point-to-point communication backend (SpComm3D-style).

Dense SUMMA broadcasts ship whole tiles to every row/column member even
though a receiver only touches the A columns matched by nonzeros of its
incoming B operand (and vice versa).  This backend runs the symbolic
prologue of :mod:`repro.comm.plan` to learn each peer's occupancy
structure, then replaces each broadcast with metered ``isend``/``recv``
pairs carrying only the needed tile segments.

Cost shape versus :class:`~repro.comm.backend.DenseCollective`:

* **bandwidth** shrinks by the needed fraction (large on hypersparse
  operands, where most tile columns/rows are empty);
* **latency** grows: a stage root sends ``sqrt(p/l) - 1`` individual
  messages instead of one ``log``-depth broadcast tree;
* a small **plan overhead** is paid per batch (bit-packed masks over the
  row and column communicators, metered under the ``Comm-Plan`` step).

The planner's extended α–β model (:mod:`repro.model.predictor`) encodes
exactly this trade-off, which is how ``backend="auto"`` chooses.
"""

from __future__ import annotations

import numpy as np

from ..simmpi.comm import Request
from ..sparse.matrix import SparseMatrix
from ..sparse.ops import mask_columns, mask_rows, nonempty_columns, nonempty_rows
from .backend import CommBackend, StagePrefetch
from .plan import CommPlan, pack_mask, unpack_mask


def _occupied_columns(tile) -> np.ndarray:
    """Column-occupancy mask; dense panels are fully occupied (no
    nonzero structure to thin — every column is needed)."""
    if isinstance(tile, SparseMatrix):
        return nonempty_columns(tile)
    return np.ones(tile.shape[1], dtype=bool)


def _occupied_rows(tile) -> np.ndarray:
    """Row-occupancy mask; dense panels are fully occupied."""
    if isinstance(tile, SparseMatrix):
        return nonempty_rows(tile)
    return np.ones(tile.shape[0], dtype=bool)


class SparseP2P(CommBackend):
    """Point-to-point exchange of only the tile segments receivers need.

    Per-rank state: the static half of the plan (A occupancy never
    changes within a run) is built once; the B half is rebuilt every
    batch, because each batch selects different B columns.
    """

    name = "sparse"

    def __init__(self) -> None:
        self.plan: CommPlan | None = None
        self._a_col_masks: list | None = None
        self._b_requests: list | None = None

    def revoke(self) -> None:
        """Drop the exchange plan and occupancy masks: they were built
        against a membership that no longer exists, and the repaired
        grid's re-entry re-runs the symbolic prologue from scratch."""
        self.plan = None
        self._a_col_masks = None
        self._b_requests = None

    # ------------------------------------------------------------------ #
    # symbolic prologue
    # ------------------------------------------------------------------ #

    def prepare_batch(self, comms, a_tile: SparseMatrix, b_batch: SparseMatrix) -> None:
        if not isinstance(a_tile, SparseMatrix) and not isinstance(
            b_batch, SparseMatrix
        ):
            # both operands dense (SDDMM): nothing to thin, no plan to
            # build — every bcast takes the collective fallback.  Skipped
            # identically on every rank, so the prologue collectives
            # simply never happen.
            self.plan = None
            return
        row, col = comms.row, comms.col
        with comms.world.backend_scope(self.name):
            if self._a_col_masks is None:
                # static half: A-tile occupancy along the row comm, then
                # tell col-peer t which of its B rows this rank needs
                # (the nonempty columns of row-peer t's A tile).  A dense
                # operand reports full occupancy, so the counterpart is
                # shipped whole — correct, and the plan collectives stay
                # in lockstep across ranks.
                packed = self._call(
                    row, "allgather",
                    lambda: row.allgather(pack_mask(_occupied_columns(a_tile))),
                )
                self._a_col_masks = [unpack_mask(p) for p in packed]
                received = self._call(
                    col, "alltoall",
                    lambda: col.alltoall([
                        pack_mask(self._a_col_masks[t]) for t in range(col.size)
                    ]),
                )
                self._b_requests = [unpack_mask(p) for p in received]

            # per-batch half: B-batch occupancy along the col comm, then
            # tell row-peer t which of its A columns this rank needs
            # (the nonempty rows of col-peer t's B batch).
            packed = self._call(
                col, "allgather",
                lambda: col.allgather(pack_mask(_occupied_rows(b_batch))),
            )
            b_row_masks = [unpack_mask(p) for p in packed]
            received = self._call(
                row, "alltoall",
                lambda: row.alltoall([
                    pack_mask(b_row_masks[t]) for t in range(row.size)
                ]),
            )
            a_requests = [unpack_mask(p) for p in received]

            self.plan = CommPlan.derive(
                a_col_masks=self._a_col_masks,
                b_row_masks=b_row_masks,
                row_rank=row.rank,
                col_rank=col.rank,
            )
            self.plan.fill_requests(a_requests, self._b_requests)

    # ------------------------------------------------------------------ #
    # data movement
    # ------------------------------------------------------------------ #

    def bcast_a(self, comms, a_tile: SparseMatrix, stage: int) -> SparseMatrix:
        row = comms.row
        if not isinstance(a_tile, SparseMatrix):
            # dense operands ride collectives even on the sparse backend
            with row.backend_scope(self.name):
                recv = self._call(
                    row, "bcast", lambda: row.bcast(a_tile, root=stage)
                )
            if row.rank != stage:
                self._charge_recv(recv)
            return recv
        with row.backend_scope(self.name):
            if row.rank == stage:
                for t in range(row.size):
                    if t != stage:
                        # retry per individual send: a failed attempt never
                        # enqueued anything, so re-sending is exact-once
                        self._call(row, "send", lambda t=t: row.isend(
                            mask_columns(a_tile, self.plan.a_requests[t]),
                            dest=t, tag=stage,
                        ))
                return a_tile
            recv = self._call(
                row, "recv", lambda: row.recv(stage, tag=stage)
            )
        self._charge_recv(recv)
        return recv

    def bcast_b(self, comms, b_batch: SparseMatrix, stage: int) -> SparseMatrix:
        col = comms.col
        if not isinstance(b_batch, SparseMatrix):
            with col.backend_scope(self.name):
                recv = self._call(
                    col, "bcast", lambda: col.bcast(b_batch, root=stage)
                )
            if col.rank != stage:
                self._charge_recv(recv)
            return recv
        with col.backend_scope(self.name):
            if col.rank == stage:
                for t in range(col.size):
                    if t != stage:
                        self._call(col, "send", lambda t=t: col.isend(
                            mask_rows(b_batch, self.plan.b_requests[t]),
                            dest=t, tag=stage,
                        ))
                return b_batch
            recv = self._call(
                col, "recv", lambda: col.recv(stage, tag=stage)
            )
        self._charge_recv(recv)
        return recv

    def fiber_exchange(self, comms, sendlist: list) -> list:
        # fiber pieces are exact output partials — nothing to filter —
        # but the variable-size exchange meters true per-destination
        # volumes under the sparse tag.
        with comms.fiber.backend_scope(self.name):
            received = self._call(
                comms.fiber, "alltoallv",
                lambda: comms.fiber.alltoallv(sendlist),
            )
        self._charge_recv(received)
        return received

    def prefetch_stage(
        self, comms, a_tile: SparseMatrix, b_batch: SparseMatrix, stage: int
    ) -> StagePrefetch:
        """Issue the masked stage sends without waiting: the root's
        ``isend`` fan-out buffers immediately and non-roots hold an
        ``irecv`` request, so the previous stage's multiply overlaps the
        segment transfers.  The within-batch plan is already in place
        (stage 0 of every batch runs blocking, after ``prepare_batch``)."""
        from ..summa.trace import STEP_A_BCAST, STEP_B_BCAST

        row, col = comms.row, comms.col
        with row.step(STEP_A_BCAST), row.backend_scope(self.name):
            if not isinstance(a_tile, SparseMatrix):
                # dense operand: nonblocking collective-shaped fan-out
                a_req = self._ibcast(row, a_tile, stage)
            elif row.rank == stage:
                for t in range(row.size):
                    if t != stage:
                        self._call(row, "send", lambda t=t: row.isend(
                            mask_columns(a_tile, self.plan.a_requests[t]),
                            dest=t, tag=stage,
                        ))
                a_req = Request(ready=True, value=a_tile)
            else:
                a_req = self._guard(row, "recv", row.irecv(stage, tag=stage))
        with col.step(STEP_B_BCAST), col.backend_scope(self.name):
            if not isinstance(b_batch, SparseMatrix):
                b_req = self._ibcast(col, b_batch, stage)
            elif col.rank == stage:
                for t in range(col.size):
                    if t != stage:
                        self._call(col, "send", lambda t=t: col.isend(
                            mask_rows(b_batch, self.plan.b_requests[t]),
                            dest=t, tag=stage,
                        ))
                b_req = Request(ready=True, value=b_batch)
            else:
                b_req = self._guard(col, "recv", col.irecv(stage, tag=stage))
        return StagePrefetch(a_req, b_req)
