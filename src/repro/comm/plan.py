"""Symbolic communication planning for the sparse point-to-point backend.

Before any numeric data moves, :class:`~repro.comm.SparseP2P` runs a cheap
structural prologue: ranks exchange *bit-packed occupancy masks* of their
tiles (which columns of the local A tile are nonempty, which rows of the
local B batch are nonempty) and derive a :class:`CommPlan` — for every
peer, exactly which segments of the local tile that peer will actually
touch during the SUMMA stages.

The derivation mirrors SpComm3D's sparsity-aware exchange:

* receiver (i, j, k) multiplies ``a_recv @ b_recv`` at stage ``s``, where
  ``a_recv`` is the A tile of row-peer ``s`` and ``b_recv`` the B batch of
  column-peer ``s``;
* column ``c`` of ``a_recv`` is touched iff row ``c`` of ``b_recv`` is
  nonempty, so the columns of A a receiver needs are the nonempty-row mask
  of its *column* peer's B batch;
* an entry of ``b_recv`` with row index ``r`` contributes iff column ``r``
  of ``a_recv`` is nonempty, so the rows of B a receiver needs are the
  nonempty-column mask of its *row* peer's A tile.

Dropping the complementary entries is correctness-neutral: every dropped
nonzero participates in **zero** partial products, so the local multiply
emits the exact same product stream and the result is bit-identical to the
dense exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def pack_mask(mask: np.ndarray) -> tuple[int, np.ndarray]:
    """Bit-pack a boolean occupancy mask for the wire (8 entries/byte)."""
    mask = np.asarray(mask, dtype=bool)
    return int(mask.shape[0]), np.packbits(mask)


def unpack_mask(payload: tuple[int, np.ndarray]) -> np.ndarray:
    """Inverse of :func:`pack_mask`."""
    n, packed = payload
    if n == 0:
        return np.zeros(0, dtype=bool)
    return np.unpackbits(packed, count=n).astype(bool)


@dataclass
class CommPlan:
    """One rank's sparsity-aware exchange plan for one batch.

    Attributes
    ----------
    a_requests:
        Per row-comm peer ``t``: boolean mask over *this rank's* A-tile
        columns that peer ``t`` needs (valid when this rank is the stage
        root on its row communicator).  ``None`` for the self entry.
    b_requests:
        Per col-comm peer ``t``: boolean mask over *this rank's* B-batch
        rows that peer ``t`` needs.
    a_needed:
        Per stage ``s``: mask over the columns of the A tile arriving from
        row-peer ``s`` that this rank will touch (receiver view).
    b_needed:
        Per stage ``s``: mask over the rows of the B batch arriving from
        col-peer ``s``.
    """

    a_requests: list[np.ndarray | None] = field(default_factory=list)
    b_requests: list[np.ndarray | None] = field(default_factory=list)
    a_needed: list[np.ndarray] = field(default_factory=list)
    b_needed: list[np.ndarray] = field(default_factory=list)

    @classmethod
    def derive(
        cls,
        *,
        a_col_masks: list[np.ndarray],
        b_row_masks: list[np.ndarray],
        row_rank: int,
        col_rank: int,
    ) -> "CommPlan":
        """Build the receiver-side halves of the plan from allgathered
        occupancy masks.

        ``a_col_masks[s]`` is the nonempty-column mask of the A tile held
        by row-comm member ``s``; ``b_row_masks[s]`` the nonempty-row mask
        of the B batch held by col-comm member ``s``.  The request halves
        (what *peers* need from this rank) are filled in by the request
        exchange — see :meth:`fill_requests`.
        """
        return cls(
            a_requests=[None] * len(a_col_masks),
            b_requests=[None] * len(b_row_masks),
            # stage s multiplies A from row-peer s by B from col-peer s:
            # the B mask selects A columns, the A mask selects B rows.
            a_needed=[np.asarray(m, dtype=bool) for m in b_row_masks],
            b_needed=[np.asarray(m, dtype=bool) for m in a_col_masks],
        )

    def fill_requests(
        self,
        a_requests: list[np.ndarray | None],
        b_requests: list[np.ndarray | None],
    ) -> None:
        """Attach the root-side request masks received from peers."""
        self.a_requests = list(a_requests)
        self.b_requests = list(b_requests)

    # ------------------------------------------------------------------ #
    # introspection (benchmarks / tests)
    # ------------------------------------------------------------------ #

    def needed_fraction_a(self) -> float:
        """Mean fraction of incoming A-tile columns actually needed."""
        return _mean_fraction(self.a_needed)

    def needed_fraction_b(self) -> float:
        """Mean fraction of incoming B-batch rows actually needed."""
        return _mean_fraction(self.b_needed)


def _mean_fraction(masks: list[np.ndarray]) -> float:
    total = sum(int(m.shape[0]) for m in masks)
    if total == 0:
        return 0.0
    return sum(int(m.sum()) for m in masks) / total
