"""Membership, failure agreement and grid repair for the simulated MPI.

This is the ULFM-style survivor side of a rank crash.  The engine
attaches a :class:`Membership` to the :class:`~repro.simmpi.comm.World`
when healing is enabled; from then on:

1. A crashing rank's runner calls :meth:`Membership.declare_dead`, which
   records the death, bumps ``world.revoke_epoch`` (revoking every
   communicator of older epochs) and wakes all blocked ranks.
2. Survivors observe the revocation as
   :class:`~repro.errors.RankRevokedError` at their next operation entry
   or inside the rendezvous they are blocked in, and call
   :meth:`Membership.agree`.
3. The agreement is deterministic: every surviving holder of the latest
   decision votes for the current revoke epoch; the *last* voter to
   arrive computes the new :class:`HealDecision` under the lock —
   replacing each dead grid position either with a parked **spare** rank
   (``mode="spare"``) or with a freshly **respawned** rank oversubscribed
   onto the lowest surviving host (``mode="shrink"``, the ULFM
   shrink-then-respawn strategy) — publishes it, and wakes everyone.
4. All participants (survivors, promoted spares, respawns) re-enter the
   run from the decision's ``restart_batch`` on epoch-``e``
   communicators (see :mod:`repro.resilience.heal`).

The logical 3D grid is deliberately **preserved** in both modes: partial
floating-point reductions do not compose across grid geometries, so a
geometric shrink could not stay bit-identical to the fault-free run.
``mode="shrink"`` therefore shrinks the *host pool*, not the grid.
"""

from __future__ import annotations

import threading
import time

from ..errors import CommError, HealError
from .comm import SimComm, World


class HealDecision:
    """One published agreement outcome.

    ``members`` maps grid position -> global rank holding it.  ``hosts``
    maps grid position -> host id (initially its own position; a
    respawned position is oversubscribed onto a survivor's host).
    ``mode`` is ``"initial"``, ``"spare"``, ``"shrink"`` or ``"failed"``.
    """

    __slots__ = ("epoch", "members", "restart_batch", "mode", "dead",
                 "promoted", "hosts", "reason")

    def __init__(self, epoch, members, restart_batch, mode, dead=(),
                 promoted=None, hosts=None, reason=""):
        self.epoch = int(epoch)
        self.members = tuple(members)
        self.restart_batch = int(restart_batch)
        self.mode = mode
        self.dead = tuple(dead)                    # ((position, global_rank), ...)
        self.promoted = dict(promoted or {})       # global rank -> position
        self.hosts = dict(hosts or {})             # position -> host id
        self.reason = reason

    def describe(self) -> dict:
        return {
            "epoch": self.epoch,
            "mode": self.mode,
            "restart_batch": self.restart_batch,
            "dead": [{"position": p, "rank": g} for p, g in self.dead],
            "promoted": {int(g): int(p) for g, p in self.promoted.items()},
            "hosts": {int(p): int(h) for p, h in self.hosts.items()},
        }


def epoch_comm(world, decision: HealDecision, position: int) -> SimComm:
    """World communicator of ``decision``'s epoch for one grid position.

    Built from the world's own communicator class (``world.comm_class``,
    default :class:`SimComm`), so the process world's healing bodies get
    :class:`~repro.mp.comm.MpComm` handles on the repaired grid.
    """
    epoch = decision.epoch
    comm_id = ("world",) if epoch == 0 else ("world", "epoch", epoch)
    cls = getattr(world, "comm_class", SimComm)
    return cls(world, comm_id, decision.members, position, epoch=epoch)


def comm_epoch(comm_id: tuple) -> int:
    """Membership epoch a communicator id belongs to.

    Epoch-``e`` world communicators are ``("world", "epoch", e)`` and
    every derived communicator (split/dup) appends to its parent's id,
    so the epoch is recoverable from the prefix; ids not rooted in an
    epoch-tagged world communicator are epoch 0.
    """
    if len(comm_id) >= 3 and comm_id[0] == "world" and comm_id[1] == "epoch":
        return int(comm_id[2])
    return 0


def compute_decision(
    epoch: int,
    prev: HealDecision,
    dead: set,
    mode: str,
    restart_batch: int,
    *,
    parked: list,
    alloc_rank,
    max_rounds: int,
) -> tuple[HealDecision, list[tuple[int, int]]]:
    """Deterministic repair of ``prev``'s grid for revoke ``epoch``.

    The pure half of the agreement protocol, shared by the threaded
    :class:`Membership` (last voter computes under the lock) and the
    process world's parent-side coordinator (computes once all survivor
    votes arrive).  ``parked`` is the mutable spare-rank pool (popped in
    park order); ``alloc_rank()`` allocates a fresh global rank for a
    shrink respawn.  Returns ``(decision, respawns)`` where ``respawns``
    lists ``(global_rank, position)`` pairs the caller must launch; a
    non-repairable grid yields a ``mode="failed"`` decision.
    """
    def failed(reason: str) -> tuple[HealDecision, list]:
        return HealDecision(
            epoch, prev.members, prev.restart_batch, "failed", reason=reason,
        ), []

    if epoch > max_rounds:
        return failed(f"heal round budget exhausted ({max_rounds})")
    members = list(prev.members)
    hosts = dict(prev.hosts)
    dead_positions = [(p, g) for p, g in enumerate(members) if g in dead]
    promoted: dict[int, int] = {}
    respawns: list[tuple[int, int]] = []
    for position, _ in dead_positions:
        if mode == "spare":
            if not parked:
                return failed(
                    f"no spare rank left for grid position {position}"
                )
            spare = parked.pop(0)
            members[position] = spare
            promoted[spare] = position
            hosts[position] = spare  # the spare brings its own host
        else:  # shrink: respawn on the lowest surviving host
            alive_hosts = [hosts[q] for q, m in enumerate(members)
                           if m not in dead and q != position]
            if not alive_hosts:
                return failed("no surviving host to respawn onto")
            fresh = alloc_rank()
            members[position] = fresh
            promoted[fresh] = position
            hosts[position] = min(alive_hosts)
            respawns.append((fresh, position))
    decision = HealDecision(
        epoch, members, restart_batch, mode,
        dead=dead_positions, promoted=promoted, hosts=hosts,
    )
    return decision, respawns


class Membership:
    """Survivor-set agreement state attached to a healing ``World``.

    All mutation happens under ``cv``.  ``world.revoke_epoch`` is the
    only piece read lock-free (a monotonic int on the comm hot path).
    """

    def __init__(self, world: World, nprocs: int, mode: str, ctx,
                 first_batch: int = 0, max_rounds: int = 8) -> None:
        if mode not in ("spare", "shrink"):
            raise HealError(f"unknown heal mode {mode!r}")
        self.world = world
        self.nprocs = int(nprocs)
        self.mode = mode
        self.ctx = ctx                      # driver hooks (HealContext)
        self.max_rounds = int(max_rounds)
        self.cv = threading.Condition()
        self.dead: set[int] = set()
        self.healed: dict[int, BaseException] = {}   # position -> crash exc
        self.decisions: dict[int, HealDecision] = {
            0: HealDecision(0, tuple(range(nprocs)), first_batch, "initial",
                            hosts={p: p for p in range(nprocs)})
        }
        self.latest = 0
        self.votes: dict[int, set[int]] = {}
        self.parked: list[int] = []                  # parked spare global ranks
        self.assignments: dict[int, tuple[int, int]] = {}  # spare -> (pos, epoch)
        self.finished = False
        self.active = 0                              # live worker bodies
        self.body = None                             # registered healing body
        self.spawn = None                            # engine thread spawner
        self._next_rank = None                       # respawn rank allocator

    # ------------------------------------------------------------------ #
    # engine-side lifecycle
    # ------------------------------------------------------------------ #

    def wake(self) -> None:
        with self.cv:
            self.cv.notify_all()

    def register_body(self, body) -> None:
        """First caller wins; all positions run the same SPMD body."""
        with self.cv:
            if self.body is None:
                self.body = body

    def worker_started(self, n: int = 1) -> None:
        with self.cv:
            self.active += n

    def worker_done(self) -> None:
        with self.cv:
            self.active -= 1
            self.cv.notify_all()

    def wait_idle(self) -> None:
        """Block until every worker body (primary, promoted, respawned)
        has returned — only then can no further promotion happen."""
        with self.cv:
            while self.active > 0:
                self.cv.wait(0.5)

    def finish(self) -> None:
        """Release parked spares that were never promoted."""
        with self.cv:
            self.finished = True
            self.cv.notify_all()

    def alloc_rank(self) -> int:
        """Fresh global rank for a respawned thread (caller holds cv).
        The engine pre-sets ``_next_rank`` past its spare ranks."""
        if self._next_rank is None:
            self._next_rank = self.nprocs
        rank = self._next_rank
        self._next_rank = rank + 1
        return rank

    # ------------------------------------------------------------------ #
    # failure notification
    # ------------------------------------------------------------------ #

    def declare_dead(self, global_rank: int, exc: BaseException) -> None:
        """Record a rank's death and revoke all current communicators."""
        with self.cv:
            self.dead.add(global_rank)
            prev = self.decisions[self.latest]
            if global_rank in prev.members:
                self.healed[prev.members.index(global_rank)] = exc
            self.world.revoke_epoch += 1
            self.cv.notify_all()
        # Wake every blocked rank so the revocation is observed promptly.
        self.world.wake_all()

    # ------------------------------------------------------------------ #
    # spare parking
    # ------------------------------------------------------------------ #

    def park(self, global_rank: int, timeout: float | None = None):
        """Park a spare rank until it is promoted.  Returns the promoted
        decision (whose ``promoted`` names this rank's position) or
        ``None`` when the run ends without needing this spare."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cv:
            self.parked.append(global_rank)
            self.cv.notify_all()
            while True:
                assigned = self.assignments.get(global_rank)
                if assigned is not None:
                    _, epoch = assigned
                    return self.decisions[epoch]
                if self.finished or self.world.failed.is_set():
                    return None
                if deadline is not None and time.monotonic() >= deadline:
                    return None
                self.cv.wait(0.25)

    # ------------------------------------------------------------------ #
    # the agreement protocol
    # ------------------------------------------------------------------ #

    def current_decision(self) -> HealDecision:
        with self.cv:
            return self.decisions[self.latest]

    def agree(self, global_rank: int) -> HealDecision:
        """Join the survivor agreement for the current revoke epoch.

        Deterministic: participants are the surviving holders of the
        latest decision; each votes for the epoch it observes (re-voting
        if a further death advances it mid-wait); the last arriving voter
        computes and publishes the :class:`HealDecision` under the lock.
        Raises :class:`~repro.errors.HealError` when the heal cannot
        proceed (capacity, round budget, agreement timeout).
        """
        world = self.world
        deadline = time.monotonic() + world.timeout
        with self.cv:
            while True:
                if world.failed.is_set():
                    raise CommError("heal agreement aborted: a peer rank failed")
                epoch = world.revoke_epoch
                decision = self.decisions.get(epoch)
                if decision is not None:
                    return self._adopt(decision, global_rank)
                voters = self.votes.setdefault(epoch, set())
                voters.add(global_rank)
                prev = self.decisions[self.latest]
                alive = {m for m in prev.members if m not in self.dead}
                if alive <= voters:
                    decision = self._decide(epoch, prev)
                    self.cv.notify_all()
                    return self._adopt(decision, global_rank)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    world.abort()
                    raise HealError(
                        f"heal agreement for epoch {epoch} timed out: "
                        f"{len(voters)}/{len(alive)} survivors voted"
                    ).with_context(
                        rank=global_rank, epoch=epoch,
                        voted=sorted(voters), expected=sorted(alive),
                    )
                self.cv.wait(min(remaining, 0.25))

    def _adopt(self, decision: HealDecision, global_rank: int) -> HealDecision:
        if decision.mode == "failed":
            raise HealError(decision.reason).with_context(
                rank=global_rank, epoch=decision.epoch,
            )
        return decision

    def _decide(self, epoch: int, prev: HealDecision) -> HealDecision:
        """Compute, publish and act on the decision (caller holds cv)."""
        decision, respawns = compute_decision(
            epoch, prev, self.dead, self.mode, self.ctx.restart_point(),
            parked=self.parked, alloc_rank=self.alloc_rank,
            max_rounds=self.max_rounds,
        )
        self.decisions[epoch] = decision
        self.latest = epoch
        self.ctx.on_decision(decision)
        if decision.mode == "failed":
            self.cv.notify_all()
            return decision
        # Count the replacements as live workers *before* publishing, so
        # the engine's wait_idle can never observe a gap.
        self.active += len(decision.promoted)
        for spare, position in decision.promoted.items():
            if (spare, position) not in respawns:
                self.assignments[spare] = (position, epoch)
        for fresh, position in respawns:
            self.spawn(fresh, position)
        return decision
