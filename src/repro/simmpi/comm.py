"""Simulated MPI communicators.

A :class:`SimComm` is one rank's handle on a communicator, mirroring the
mpi4py API surface the SUMMA algorithms need: ``barrier``, ``bcast``,
``allreduce``, ``allgather``, ``gather``, ``scatter``, ``alltoall``,
``alltoallv``, ``send``/``recv``/``isend``/``irecv``/``ibcast`` and ``split``.  Ranks run as threads (see
:mod:`repro.simmpi.engine`); collectives rendezvous through
generation-counted slots, so the same program order on every member lines
up automatically — exactly the SPMD contract of MPI.

Determinism: reductions combine contributions in rank order, and all
payloads pass by reference (ranks must treat received objects as
read-only, as real MPI buffers would be after a receive).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any

import numpy as np

from ..errors import CommError, CorruptPayloadError, HangError, RankRevokedError
from .serialization import (
    CHECKSUM_NBYTES,
    Envelope,
    payload_checksum,
    payload_nbytes,
    wrap_payload,
)
from .tracker import CommTracker

#: seconds a rank waits inside a collective before declaring deadlock.
DEFAULT_TIMEOUT = 120.0

#: extra delivery attempts per message before a checksum mismatch becomes
#: a hard :class:`~repro.errors.CorruptPayloadError`.
MAX_REDELIVERIES = 3


class _Slot:
    """Rendezvous state for one collective instance on one communicator.

    Point-to-point messages reuse the same structure with ``tag`` set:
    one slot per in-flight message, queued in send (``seq``) order.
    """

    __slots__ = ("contrib", "complete", "taken", "tag")

    def __init__(self, tag: int | None = None) -> None:
        self.contrib: dict[int, Any] = {}
        self.complete = False
        self.taken = 0
        self.tag = tag


class _CommContext:
    """Shared (cross-thread) state of one communicator."""

    __slots__ = ("cv", "slots", "seq")

    def __init__(self) -> None:
        self.cv = threading.Condition()
        self.slots: dict[int, _Slot] = {}
        self.seq = 0  # monotonic id source for point-to-point messages


class _WaitInfo:
    """One blocked rank's entry in the wait-for graph.

    ``pending`` lists the *global* ranks this rank is still waiting on —
    the outgoing edges of the wait-for graph.  ``since`` and ``op_id``
    identify this particular wait instance: the watchdog only declares
    deadlock when the exact same cycle (same ranks, same wait instances)
    is observed on two consecutive sweeps.
    """

    __slots__ = ("rank", "op", "comm_id", "tag", "op_id", "pending",
                 "since", "heartbeat")

    def __init__(self, rank, op, comm_id, tag, op_id, pending, since,
                 heartbeat) -> None:
        self.rank = rank
        self.op = op
        self.comm_id = comm_id
        self.tag = tag
        self.op_id = op_id
        self.pending = tuple(pending)
        self.since = since
        self.heartbeat = heartbeat

    def describe(self) -> dict:
        return {
            "rank": self.rank,
            "op": self.op,
            "comm": str(self.comm_id),
            "tag": self.tag,
            "op_id": self.op_id,
            "pending": list(self.pending),
            "blocked_s": round(max(time.monotonic() - self.since, 0.0), 3),
            "heartbeat": self.heartbeat,
        }


class World:
    """Process-global state of one SPMD run: contexts, tracker, failure flag.

    ``injector`` is an optional
    :class:`~repro.simmpi.faults.FaultInjector` consulted at the entry of
    every communicator operation and at every enveloped delivery.
    ``checksums`` enables per-message envelopes
    (:class:`~repro.simmpi.serialization.Envelope`) on broadcast,
    point-to-point and all-to-all payloads; it defaults to on exactly when
    an injector is present, so fault-free runs keep the seed wire format.
    """

    def __init__(self, nprocs: int, tracker: CommTracker | None = None,
                 timeout: float = DEFAULT_TIMEOUT, injector=None,
                 checksums: bool | None = None) -> None:
        self.nprocs = nprocs
        self.tracker = tracker if tracker is not None else CommTracker()
        self.timeout = timeout
        self.injector = injector
        self.checksums = bool(
            checksums if checksums is not None else injector is not None
        )
        self.failed = threading.Event()
        self._contexts: dict[tuple, _CommContext] = {}
        self._ctx_lock = threading.Lock()
        self._tls = threading.local()
        #: current communicator epoch; bumped by Membership.declare_dead.
        #: Read lock-free on the op hot path (monotonic int, GIL-atomic).
        self.revoke_epoch = 0
        #: Membership/heal state (None unless the engine enables healing).
        self.membership = None
        #: wait-for graph: global rank -> _WaitInfo of its current block.
        self._waits: dict[int, _WaitInfo] = {}
        self._wait_lock = threading.Lock()
        #: ranks whose threads have returned (feeds peer-exited diagnosis).
        self._finished_ranks: set[int] = set()
        #: per-rank operation-entry counters (progress heartbeats). Each
        #: key is written by exactly one thread, so a plain dict suffices.
        self._heartbeats: dict[int, int] = {}
        self.watchdog_interval = max(0.05, min(1.0, timeout / 20.0))

    def context(self, comm_id: tuple) -> _CommContext:
        with self._ctx_lock:
            ctx = self._contexts.get(comm_id)
            if ctx is None:
                ctx = self._contexts[comm_id] = _CommContext()
            return ctx

    def wake_all(self) -> None:
        """Wake every rank blocked in any rendezvous (revocation/abort)."""
        with self._ctx_lock:
            contexts = list(self._contexts.values())
        for ctx in contexts:
            with ctx.cv:
                ctx.cv.notify_all()

    def abort(self) -> None:
        """Mark the run failed and wake every waiting rank."""
        self.failed.set()
        self.wake_all()
        if self.membership is not None:
            self.membership.wake()

    # ------------------------------------------------------------------ #
    # watchdog: wait-for graph of blocked ranks
    # ------------------------------------------------------------------ #

    def heartbeat(self, global_rank: int) -> int:
        beat = self._heartbeats.get(global_rank, 0) + 1
        self._heartbeats[global_rank] = beat
        return beat

    def mark_finished(self, global_rank: int) -> None:
        with self._wait_lock:
            self._finished_ranks.add(global_rank)

    def register_wait(self, global_rank: int, info: _WaitInfo) -> None:
        with self._wait_lock:
            self._waits[global_rank] = info

    def clear_wait(self, global_rank: int) -> None:
        with self._wait_lock:
            self._waits.pop(global_rank, None)

    def wait_snapshot(self) -> tuple[dict[int, _WaitInfo], set[int]]:
        with self._wait_lock:
            return dict(self._waits), set(self._finished_ranks)

    def hang_dump(self, ranks=None) -> dict[int, dict]:
        """Per-rank wait records for a :class:`~repro.errors.HangError`."""
        waits, _ = self.wait_snapshot()
        if ranks is not None:
            waits = {r: w for r, w in waits.items() if r in set(ranks)}
        return {r: w.describe() for r, w in sorted(waits.items())}

    def watchdog_diagnose(self, global_rank: int):
        """Diagnose a definite hang observable from ``global_rank``.

        Returns ``("peer-exited", gone_peers, None)`` when a pending peer's
        thread has already returned and nothing (no heal layer) can replace
        it; ``("deadlock", cycle, signature)`` when the wait-for graph has
        a cycle through ``global_rank`` (the caller must observe the same
        signature on two consecutive sweeps before firing, so a cycle that
        resolves itself between sweeps never trips the watchdog); else
        ``None`` — possibly slow, not provably hung.
        """
        waits, finished = self.wait_snapshot()
        info = waits.get(global_rank)
        if info is None:
            return None
        if self.membership is None:
            gone = tuple(p for p in info.pending if p in finished)
            if gone:
                return ("peer-exited", gone, None)
        cycle = self._find_cycle(waits, global_rank)
        if cycle is not None:
            sig = tuple((r, waits[r].op_id, waits[r].since) for r in cycle)
            return ("deadlock", tuple(cycle), sig)
        return None

    @staticmethod
    def _find_cycle(waits: dict[int, _WaitInfo], start: int):
        """DFS over blocked ranks for a wait-for cycle through ``start``.
        Returns the rank list of the cycle (beginning at ``start``) or
        ``None``.  Only ranks currently registered as blocked are nodes —
        a computing (unblocked) rank breaks every path through it.
        """
        visited: set[int] = set()

        def dfs(rank: int, trail: list[int]):
            info = waits.get(rank)
            if info is None:
                return None
            for peer in info.pending:
                if peer == start:
                    return trail + [rank]
                if peer in trail or peer in visited:
                    continue
                visited.add(peer)
                found = dfs(peer, trail + [rank])
                if found is not None:
                    return found
            return None

        return dfs(start, [])

    @property
    def step_label(self) -> str:
        return getattr(self._tls, "step", "")

    @step_label.setter
    def step_label(self, value: str) -> None:
        self._tls.step = value

    @property
    def backend_label(self) -> str:
        """Communication-backend tag ("" / "dense" / "sparse") attached to
        every event this thread records — set by :mod:`repro.comm`."""
        return getattr(self._tls, "backend", "")

    @backend_label.setter
    def backend_label(self, value: str) -> None:
        self._tls.backend = value

    @property
    def ledger(self):
        """This rank thread's :class:`~repro.mem.MemoryLedger` (or ``None``).

        Thread-local like :attr:`step_label`: each SPMD rank installs its
        own ledger at body entry, and every payload the thread *receives*
        is charged as a momentary ``recv_buffer`` spike at the delivery
        chokepoint — the accounting SpComm3D argues for: where the bytes
        land, not where a driver sums them afterwards."""
        return getattr(self._tls, "ledger", None)

    @ledger.setter
    def ledger(self, value) -> None:
        self._tls.ledger = value


class SimComm:
    """One rank's communicator handle.

    Parameters
    ----------
    world:
        Shared :class:`World`.
    comm_id:
        Hashable identity shared by all members (contexts key off it).
    members:
        Global ranks belonging to this communicator, in local-rank order.
    rank:
        This process's local rank within the communicator.
    epoch:
        Membership epoch this communicator belongs to.  When the world's
        ``revoke_epoch`` advances past it (a member died and the heal
        layer revoked the old grid), every operation on this communicator
        raises :class:`~repro.errors.RankRevokedError`.
    """

    __slots__ = ("world", "comm_id", "members", "rank", "_opseq", "epoch")

    def __init__(self, world: World, comm_id: tuple, members: tuple[int, ...],
                 rank: int, epoch: int = 0):
        self.world = world
        self.comm_id = comm_id
        self.members = tuple(members)
        self.rank = int(rank)
        self._opseq = 0
        self.epoch = int(epoch)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def global_rank(self) -> int:
        return self.members[self.rank]

    def __repr__(self) -> str:
        return f"SimComm(id={self.comm_id}, rank={self.rank}/{self.size})"

    # ------------------------------------------------------------------ #
    # step labelling (feeds the tracker)
    # ------------------------------------------------------------------ #

    @contextmanager
    def step(self, label: str):
        """Label all communication inside the block for metering."""
        prev = self.world.step_label
        self.world.step_label = label
        try:
            yield
        finally:
            self.world.step_label = prev

    @contextmanager
    def backend_scope(self, label: str):
        """Tag all communication inside the block with a backend name
        (``"dense"`` / ``"sparse"``) so :meth:`CommTracker.by_backend`
        can compare how much each backend moved."""
        prev = self.world.backend_label
        self.world.backend_label = label
        try:
            yield
        finally:
            self.world.backend_label = prev

    # ------------------------------------------------------------------ #
    # the rendezvous primitive
    # ------------------------------------------------------------------ #

    def _exchange(self, payload, op: str = "collective") -> tuple[dict[int, Any], bool]:
        """Contribute ``payload``; return (all contributions, completed_here).

        ``completed_here`` is True on exactly one rank (the last to arrive)
        — used so each collective is metered exactly once.
        """
        ctx = self.world.context(self.comm_id)
        op_id = self._opseq
        self._opseq += 1
        with ctx.cv:
            slot = ctx.slots.get(op_id)
            if slot is None:
                slot = ctx.slots[op_id] = _Slot()
            if self.rank in slot.contrib:
                raise CommError(
                    f"rank {self.rank} participated twice in collective {op_id} "
                    f"on {self.comm_id} — mismatched program order"
                )
            slot.contrib[self.rank] = payload
            completed_here = len(slot.contrib) == self.size
            if completed_here:
                slot.complete = True
                ctx.cv.notify_all()
            else:
                self._blocked_wait(
                    ctx, op, tag=None, op_id=op_id,
                    ready=lambda: slot.complete,
                    pending=lambda: (
                        self.members[r] for r in range(self.size)
                        if r not in slot.contrib
                    ),
                    abort_msg="collective aborted: a peer rank failed",
                )
            result = slot.contrib
            slot.taken += 1
            if slot.taken == self.size:
                del ctx.slots[op_id]
        return result, completed_here

    def _check_revoked(self) -> None:
        """Raise when the heal layer revoked this communicator's epoch."""
        world = self.world
        if world.membership is not None and world.revoke_epoch > self.epoch:
            raise RankRevokedError(
                f"rank {self.global_rank}: communicator {self.comm_id} "
                f"(epoch {self.epoch}) revoked at epoch {world.revoke_epoch}"
            ).with_context(
                rank=self.global_rank, comm=str(self.comm_id),
                epoch=self.epoch, revoke_epoch=world.revoke_epoch,
            )

    def _blocked_wait(self, ctx: _CommContext, op: str, *, tag, op_id,
                      ready, pending, abort_msg: str) -> None:
        """Wait under ``ctx.cv`` until ``ready()`` — watchdog-supervised.

        Registers this rank in the world's wait-for graph (with the
        current ``pending()`` peer set) each sweep, diagnoses cyclic
        deadlock / exited peers via :meth:`World.watchdog_diagnose`, and
        enforces the flat-timeout backstop.  A deadlock only fires after
        the identical cycle is seen on two consecutive sweeps.  The
        caller must hold ``ctx.cv``; ``ready``/``pending`` run under it.
        """
        world = self.world
        me = self.global_rank
        since = time.monotonic()
        deadline = since + world.timeout
        interval = world.watchdog_interval
        next_check = since + interval
        last_sig = None
        try:
            while not ready():
                if world.failed.is_set():
                    raise CommError(abort_msg)
                self._check_revoked()
                pend = tuple(pending())
                world.register_wait(me, _WaitInfo(
                    rank=me, op=op, comm_id=self.comm_id, tag=tag,
                    op_id=op_id, pending=pend, since=since,
                    heartbeat=world._heartbeats.get(me, 0),
                ))
                now = time.monotonic()
                if now >= deadline:
                    world.abort()
                    raise self._hang_error(
                        "timeout", op, pend, tag=tag, op_id=op_id, since=since
                    )
                if now >= next_check:
                    diag = world.watchdog_diagnose(me)
                    if diag is not None:
                        kind, nodes, sig = diag
                        if kind == "peer-exited":
                            world.abort()
                            raise self._hang_error(
                                "peer-exited", op, pend, tag=tag,
                                op_id=op_id, since=since, cycle=nodes,
                            )
                        if sig is not None and sig == last_sig:
                            world.abort()
                            raise self._hang_error(
                                "deadlock", op, pend, tag=tag,
                                op_id=op_id, since=since, cycle=nodes,
                            )
                        last_sig = sig
                    else:
                        last_sig = None
                    next_check = now + interval
                ctx.cv.wait(min(max(deadline - now, 0.001), interval, 0.5))
        finally:
            world.clear_wait(me)

    def _hang_error(self, kind: str, op: str, pend, *, tag, op_id, since,
                    cycle=()) -> HangError:
        world = self.world
        me = self.global_rank
        dump = world.hang_dump()
        dump.setdefault(me, _WaitInfo(
            rank=me, op=op, comm_id=self.comm_id, tag=tag, op_id=op_id,
            pending=pend, since=since,
            heartbeat=world._heartbeats.get(me, 0),
        ).describe())
        if kind == "deadlock":
            chain = " -> ".join(f"rank {r}" for r in (*cycle, cycle[0]))
            message = f"deadlock: wait-for cycle {chain}"
        elif kind == "peer-exited":
            who = ", ".join(str(r) for r in (cycle or pend))
            message = (
                f"rank {me}: {op} waits on rank(s) {who} whose thread(s) "
                "already returned and can never arrive"
            )
        else:
            message = (
                f"rank {me}: {op} on {self.comm_id} timed out after "
                f"{world.timeout:g}s waiting on rank(s) "
                f"{', '.join(str(r) for r in pend)}"
            )
        for r, rec in sorted(dump.items()):
            message += (
                f"\n  rank {r}: {rec['op']} on {rec['comm']}"
                + (f" tag {rec['tag']}" if rec["tag"] is not None else "")
                + f" op #{rec['op_id']} waiting on {rec['pending']}"
                + f" for {rec['blocked_s']}s (heartbeat {rec['heartbeat']})"
            )
        return HangError(message, kind=kind, cycle=cycle, dump=dump).with_context(
            rank=me, op=op, peers=list(pend), tag=tag, op_id=op_id,
            comm=str(self.comm_id),
        )

    def _record(
        self,
        op: str,
        nbytes: int,
        total_bytes: int | None = None,
        comm_size: int | None = None,
    ) -> None:
        self.world.tracker.record(
            self.world.step_label,
            op,
            self.size if comm_size is None else comm_size,
            nbytes,
            total_bytes,
            backend=self.world.backend_label,
        )

    # ------------------------------------------------------------------ #
    # fault injection + per-message integrity
    # ------------------------------------------------------------------ #

    def _inject(self, op: str) -> None:
        """Operation-entry hook — heartbeat, revocation check, fault
        injection.  Runs before ``_opseq`` advances or any shared state is
        touched, so a raise here leaves the operation perfectly retryable
        on this rank alone (peers just keep waiting in the rendezvous)."""
        world = self.world
        world.heartbeat(self.global_rank)
        self._check_revoked()
        injector = world.injector
        if injector is not None:
            injector.on_attempt(self.global_rank, op, world.step_label)

    def _wrap(self, obj):
        """Envelope ``obj`` with its checksum when integrity is on."""
        return wrap_payload(obj) if self.world.checksums else obj

    def _deliver(self, obj, op: str):
        """Unwrap a possibly-enveloped received payload for this rank.

        Each delivery passes through the injector (which may hand back a
        corrupted copy) and is verified against the envelope checksum; a
        mismatch meters a redelivery — the retransmission a real transport
        would perform — and tries again, up to :data:`MAX_REDELIVERIES`
        extra attempts.  The slot keeps the *original* payload, so
        redelivery always heals injected corruption."""
        ledger = self.world.ledger
        if ledger is not None:
            ledger.touch(
                "recv_buffer",
                payload_nbytes(obj.payload if isinstance(obj, Envelope) else obj),
            )
        if not isinstance(obj, Envelope):
            if self.world.injector is not None:
                return self.world.injector.on_delivery(
                    self.global_rank, op, obj, self.world.step_label
                )
            return obj
        injector = self.world.injector
        for attempt in range(1 + MAX_REDELIVERIES):
            payload = obj.payload
            if injector is not None:
                payload = injector.on_delivery(
                    self.global_rank, op, payload, self.world.step_label
                )
            if payload_checksum(payload) == obj.crc:
                return payload
            if attempt == MAX_REDELIVERIES:
                break
            # checksum mismatch: meter the point-to-point retransmission
            # and record the recovery event before redelivering
            nbytes = payload_nbytes(obj.payload) + CHECKSUM_NBYTES
            self._record("redelivery", nbytes, nbytes, comm_size=2)
            if injector is not None:
                injector.record_retry(
                    self.global_rank, op, self.world.step_label,
                    attempt + 1, 0.0, kind="redelivery",
                )
        raise CorruptPayloadError(
            f"rank {self.global_rank}: {op} payload failed checksum "
            f"{obj.crc:#010x} after {MAX_REDELIVERIES} redeliveries"
        ).with_context(
            rank=self.global_rank, op=op, step=self.world.step_label,
            comm=str(self.comm_id), crc=f"{obj.crc:#010x}",
            redeliveries=MAX_REDELIVERIES,
        )

    # ------------------------------------------------------------------ #
    # collectives
    # ------------------------------------------------------------------ #

    def barrier(self) -> None:
        """Synchronise all members."""
        self._inject("barrier")
        _, last = self._exchange(None, "barrier")
        if last:
            self._record("barrier", 0, 0)

    def bcast(self, obj, root: int = 0):
        """Broadcast ``obj`` from local rank ``root`` to all members."""
        self._check_root(root)
        self._inject("bcast")
        payload = self._wrap(obj) if self.rank == root else None
        contrib, last = self._exchange(payload, "bcast")
        result = contrib[root]
        if last:
            nbytes = payload_nbytes(result)
            self._record("bcast", nbytes, nbytes * max(self.size - 1, 0))
        if self.rank == root:
            return obj  # root keeps its own reference, like MPI_Bcast
        return self._deliver(result, "bcast")

    def allgather(self, obj) -> list:
        """Every member receives the list of all contributions (rank order)."""
        self._inject("allgather")
        contrib, last = self._exchange(obj, "allgather")
        if last:
            sizes = [payload_nbytes(v) for v in contrib.values()]
            self._record("allgather", max(sizes, default=0),
                         sum(sizes) * max(self.size - 1, 0))
        return [contrib[r] for r in range(self.size)]

    def gather(self, obj, root: int = 0) -> list | None:
        """Root receives the list of contributions; others get ``None``."""
        self._check_root(root)
        self._inject("gather")
        contrib, last = self._exchange(obj, "gather")
        if last:
            sizes = [payload_nbytes(v) for v in contrib.values()]
            self._record("gather", max(sizes, default=0), sum(sizes))
        if self.rank == root:
            return [contrib[r] for r in range(self.size)]
        return None

    def scatter(self, objs, root: int = 0):
        """Root provides a list of ``size`` payloads; member ``i`` gets the
        ``i``-th."""
        self._check_root(root)
        self._inject("scatter")
        if self.rank == root:
            objs = list(objs)
            if len(objs) != self.size:
                raise CommError(
                    f"scatter needs {self.size} payloads, got {len(objs)}"
                )
        contrib, last = self._exchange(objs if self.rank == root else None, "scatter")
        payloads = contrib[root]
        if last:
            sizes = [payload_nbytes(v) for v in payloads]
            self._record("scatter", max(sizes, default=0), sum(sizes))
        return payloads[self.rank]

    def allreduce(self, value, op: str = "sum"):
        """Reduce scalars or same-shape ndarrays across members.

        ``op`` is ``"sum"``, ``"max"`` or ``"min"``; combination is in rank
        order so floating-point results are deterministic.
        """
        self._inject("allreduce")
        contrib, last = self._exchange(value, "allreduce")
        if last:
            nbytes = payload_nbytes(value)
            self._record("allreduce", nbytes, nbytes * max(self.size - 1, 0))
        values = [contrib[r] for r in range(self.size)]
        return _reduce(values, op)

    def reduce(self, value, op: str = "sum", root: int = 0):
        """Like :meth:`allreduce` but only ``root`` receives the result."""
        self._check_root(root)
        self._inject("reduce")
        contrib, last = self._exchange(value, "reduce")
        if last:
            nbytes = payload_nbytes(value)
            self._record("gather", nbytes, nbytes * max(self.size - 1, 0))
        if self.rank != root:
            return None
        return _reduce([contrib[r] for r in range(self.size)], op)

    def alltoall(self, sendlist) -> list:
        """Personalised all-to-all: member ``i`` sends ``sendlist[j]`` to
        member ``j`` and receives a list indexed by source rank."""
        sendlist = list(sendlist)
        if len(sendlist) != self.size:
            raise CommError(
                f"alltoall needs {self.size} payloads, got {len(sendlist)}"
            )
        self._inject("alltoall")
        contrib, last = self._exchange([self._wrap(x) for x in sendlist], "alltoall")
        if last:
            per_rank = [
                sum(payload_nbytes(x) for x in contrib[r]) for r in range(self.size)
            ]
            self._record("alltoall", max(per_rank, default=0), sum(per_rank))
        return [
            self._deliver(contrib[src][self.rank], "alltoall")
            for src in range(self.size)
        ]

    def alltoallv(self, sendlist, counts=None) -> list:
        """Variable-size personalised all-to-all (MPI_Alltoallv semantics).

        Two calling conventions:

        * ``alltoallv(sendlist)`` — like :meth:`alltoall`, ``sendlist[j]``
          is the (arbitrarily sized) payload for member ``j``; member
          ``i`` receives a list indexed by source rank.
        * ``alltoallv(flat, counts)`` — MPI-style: ``flat`` is a flat
          sequence of items and ``counts[j]`` says how many consecutive
          items go to member ``j`` (``sum(counts) == len(flat)``); member
          ``i`` receives a list of per-source item *lists*.

        Metering differs from :meth:`alltoall`: the per-process ``nbytes``
        is the *actual* maximum any member sends (not assumed uniform),
        and the event op is ``"alltoallv"`` so the α–β model can apply
        variable-size costs.
        """
        sendlist = _normalize_alltoallv(sendlist, counts, self.size)
        self._inject("alltoallv")
        contrib, last = self._exchange([self._wrap(x) for x in sendlist], "alltoallv")
        if last:
            per_rank = [
                sum(payload_nbytes(x) for x in contrib[r]) for r in range(self.size)
            ]
            self._record("alltoallv", max(per_rank, default=0), sum(per_rank))
        return [
            self._deliver(contrib[src][self.rank], "alltoallv")
            for src in range(self.size)
        ]

    # ------------------------------------------------------------------ #
    # communicator management
    # ------------------------------------------------------------------ #

    def split(self, color: int, key: int | None = None) -> "SimComm":
        """MPI_Comm_split: members sharing ``color`` form a new communicator,
        ordered by ``(key, old local rank)``."""
        if key is None:
            key = self.rank
        op_marker = self._opseq  # consistent across members (same program order)
        contrib, _ = self._exchange((int(color), int(key)), "split")
        mine = (int(color), int(key))
        group = sorted(
            (ck[1], r) for r, ck in contrib.items() if ck[0] == mine[0]
        )
        local_ranks = [r for _, r in group]
        members = tuple(self.members[r] for r in local_ranks)
        new_rank = local_ranks.index(self.rank)
        comm_id = (*self.comm_id, op_marker, mine[0])
        # type(self) so process-world subclasses split into their own kind
        return type(self)(self.world, comm_id, members, new_rank, epoch=self.epoch)

    def dup(self) -> "SimComm":
        """Duplicate the communicator (fresh collective sequence space)."""
        return self.split(0, self.rank)

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #

    def isend(self, obj, dest: int, tag: int = 0) -> "Request":
        """Nonblocking send.  The simulated send buffers immediately, so
        the request is born complete; the object models MPI semantics
        (communication/computation overlap) for algorithm structure."""
        self.send(obj, dest, tag)
        return Request(ready=True)

    def ibcast(self, obj, root: int = 0, tag: int = 0) -> "Request":
        """Nonblocking broadcast built on the tag-matched point-to-point
        layer: the root fans ``obj`` out with :meth:`isend` (buffered, so
        its request is born complete and carries ``obj`` as its value);
        every other member gets an :meth:`irecv` request it can wait on
        after overlapped computation.

        Unlike :meth:`bcast` there is no rendezvous — the root returns
        immediately — so a stage's broadcast can be *issued* while the
        previous stage's multiply runs (software double-buffering).  The
        ``tag`` keeps concurrent in-flight broadcasts (e.g. stage ``s``
        and the prefetched stage ``s+1``) from matching each other's
        messages.

        Metering: the root's fan-out records ``size - 1`` individual
        ``send`` events of ``nbytes`` each — the same total bytes as one
        ``bcast`` event of ``nbytes * (size - 1)``.
        """
        self._check_root(root)
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.isend(obj, dest, tag)
            return Request(ready=True, value=obj)
        return self.irecv(root, tag)

    def irecv(self, source: int, tag: int = 0) -> "Request":
        """Nonblocking receive: returns a :class:`Request` whose
        :meth:`~Request.wait` yields the message and whose
        :meth:`~Request.test` probes without blocking.  The caller
        computes in between — the overlap pattern of pipelined
        algorithms.

        Matching follows MPI: messages between one (source, dest) pair
        are queued in send order, a receive takes the *earliest* message
        whose tag matches, and :meth:`~Request.test` claims the message
        atomically — two outstanding requests can never complete against
        the same message, and a ``test()`` never blocks.
        """
        return Request(
            wait_fn=lambda: self.recv(source, tag),
            try_fn=lambda: self._try_recv(source, tag),
        )

    def _p2p_context(self, src: int, dst: int) -> _CommContext:
        """The shared message queue for one directed (src, dst) pair.

        One queue per pair — not per (pair, tag) — so that tag matching
        happens at *receive* time against the send-ordered queue, exactly
        MPI's non-overtaking rule: a receive takes the earliest matching
        message, and messages with other tags stay queued untouched.
        """
        return self.world.context((*self.comm_id, "p2p", src, dst))

    def _match(self, ctx: _CommContext, tag: int):
        """Earliest deliverable slot key matching ``tag``, else None.
        Caller must hold ``ctx.cv``."""
        ready = [
            k for k, s in ctx.slots.items()
            if s.complete and s.taken == 0 and s.tag == tag
        ]
        return min(ready) if ready else None

    def _try_recv(self, source: int, tag: int) -> tuple[bool, Any]:
        """Atomically claim the earliest matching message if one is
        deliverable; returns ``(claimed, obj_or_None)`` without blocking."""
        self._check_root(source, "source")
        ctx = self._p2p_context(self.members[source], self.global_rank)
        with ctx.cv:
            key = self._match(ctx, tag)
            if key is None:
                return False, None
            slot = ctx.slots.pop(key)
            slot.taken = 1
            obj = slot.contrib[0]
        return True, self._deliver(obj, "recv")

    def send(self, obj, dest: int, tag: int = 0) -> None:
        """Blocking-buffered send to local rank ``dest``."""
        self._check_root(dest, "dest")
        self._inject("send")
        payload = self._wrap(obj)
        ctx = self._p2p_context(self.global_rank, self.members[dest])
        with ctx.cv:
            seq = ctx.seq
            ctx.seq += 1
            slot = ctx.slots[seq] = _Slot(tag=int(tag))
            slot.contrib[0] = payload
            slot.complete = True
            ctx.cv.notify_all()
        self._record("send", payload_nbytes(payload), comm_size=2)

    def recv(self, source: int, tag: int = 0):
        """Blocking receive from local rank ``source``.

        Delivery is FIFO per (source, tag): among in-flight messages from
        ``source``, the earliest one bearing ``tag`` is taken; messages
        with other tags are left for their own receives (MPI tag
        matching).
        """
        self._check_root(source, "source")
        self._inject("recv")
        ctx = self._p2p_context(self.members[source], self.global_rank)
        matched: dict[str, int] = {}

        def ready() -> bool:
            key = self._match(ctx, tag)
            if key is None:
                return False
            matched["key"] = key
            return True

        with ctx.cv:
            self._blocked_wait(
                ctx, "recv", tag=tag, op_id=ctx.seq,
                ready=ready,
                pending=lambda: (self.members[source],),
                abort_msg="recv aborted: a peer rank failed",
            )
            slot = ctx.slots.pop(matched["key"])
            slot.taken = 1
            obj = slot.contrib[0]
        return self._deliver(obj, "recv")

    # ------------------------------------------------------------------ #

    def _check_root(self, root: int, name: str = "root") -> None:
        if not 0 <= root < self.size:
            raise CommError(f"{name} {root} out of range [0, {self.size})")


class Request:
    """Handle for a nonblocking operation (mpi4py-style).

    ``wait()`` blocks until completion and returns the received object
    (``None`` for sends); ``test()`` returns ``(done, value_or_None)``
    and never blocks: it atomically claims the matching message via the
    communicator's ``_try_recv`` (a probe-then-receive pair would race
    with other requests on the same source and block inside ``test``).
    """

    __slots__ = ("_wait_fn", "_try_fn", "_done", "_value")

    def __init__(
        self, *, ready: bool = False, wait_fn=None, try_fn=None, value=None
    ) -> None:
        self._wait_fn = wait_fn
        self._try_fn = try_fn
        self._done = ready
        self._value = value

    def wait(self):
        if not self._done:
            if self._wait_fn is not None:
                self._value = self._wait_fn()
            self._done = True
        return self._value

    def test(self) -> tuple[bool, object]:
        """Non-blocking completion check; completes the receive when the
        matching message has arrived."""
        if self._done:
            return True, self._value
        if self._try_fn is not None:
            claimed, value = self._try_fn()
            if claimed:
                self._done = True
                self._value = value
                return True, value
            return False, None
        return True, self.wait()


def _reduce(values: list, op: str):
    if not values:
        raise CommError("reduction over empty contribution set")
    first = values[0]
    if isinstance(first, np.ndarray):
        stack = np.stack(values)
        if op == "sum":
            return stack.sum(axis=0)
        if op == "max":
            return stack.max(axis=0)
        if op == "min":
            return stack.min(axis=0)
    else:
        if op == "sum":
            out = values[0]
            for v in values[1:]:
                out = out + v
            return out
        if op == "max":
            return max(values)
        if op == "min":
            return min(values)
    raise CommError(f"unknown reduction op {op!r}")


def _normalize_alltoallv(sendlist, counts, size: int) -> list:
    """Normalise the two ``alltoallv`` calling conventions to one
    per-destination payload list of length ``size`` (shared between the
    threaded and process-backed communicators so validation and
    count-splitting behave identically)."""
    if counts is not None:
        counts = [int(c) for c in counts]
        if len(counts) != size:
            raise CommError(
                f"alltoallv needs {size} counts, got {len(counts)}"
            )
        flat = list(sendlist)
        if sum(counts) != len(flat):
            raise CommError(
                f"alltoallv counts sum to {sum(counts)} but "
                f"{len(flat)} items were supplied"
            )
        bounds = np.concatenate(([0], np.cumsum(counts)))
        return [
            flat[int(bounds[j]) : int(bounds[j + 1])] for j in range(size)
        ]
    sendlist = list(sendlist)
    if len(sendlist) != size:
        raise CommError(
            f"alltoallv needs {size} payloads, got {len(sendlist)}"
        )
    return sendlist
